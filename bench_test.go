// Benchmarks regenerating every table and figure of the paper's evaluation
// (§7). Each benchmark runs the corresponding harness experiment and prints
// the paper-formatted result once; `go test -bench=. -benchmem` therefore
// reproduces the full evaluation at CI scale. cmd/bench runs the same
// experiments at full benchmark scale.
//
// DESIGN.md §4 maps each benchmark to the paper's experiment; EXPERIMENTS.md
// records paper-vs-measured outcomes.
package neurocard_test

import (
	"fmt"
	"sync"
	"testing"

	"neurocard/internal/harness"
)

// benchOpts uses the CI-sized configuration so the whole suite completes in
// minutes on a laptop-class machine.
func benchOpts() harness.Options { return harness.Quick() }

var printOnce sync.Map

// runExperiment executes fn once per benchmark (results are deterministic,
// so b.N repetitions re-measure the same computation) and prints the
// formatted table on the first run.
func runExperiment(b *testing.B, name string, fn func() (string, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := fn()
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
			fmt.Printf("\n%s\n", out)
		}
	}
}

// BenchmarkTable1_WorkloadStats regenerates Table 1 (workload statistics:
// table counts, full-join sizes, column counts, max domains).
func BenchmarkTable1_WorkloadStats(b *testing.B) {
	o := benchOpts()
	runExperiment(b, "table1", func() (string, error) { return harness.Table1(o) })
}

// BenchmarkFigure6_SelectivityDistribution regenerates Figure 6 (the query
// selectivity spectra of the three workloads).
func BenchmarkFigure6_SelectivityDistribution(b *testing.B) {
	o := benchOpts()
	runExperiment(b, "fig6", func() (string, error) { return harness.Figure6(o) })
}

// BenchmarkTable2_JOBLight regenerates Table 2 (JOB-light Q-errors for
// Postgres-style histograms, IBJS, MSCN, DeepDB-style SPNs, NeuroCard).
func BenchmarkTable2_JOBLight(b *testing.B) {
	o := benchOpts()
	runExperiment(b, "table2", func() (string, error) {
		s, _, err := harness.Table2(o)
		return s, err
	})
}

// BenchmarkTable3_JOBLightRanges regenerates Table 3 (JOB-light-ranges
// Q-errors including NeuroCard-large).
func BenchmarkTable3_JOBLightRanges(b *testing.B) {
	o := benchOpts()
	runExperiment(b, "table3", func() (string, error) {
		s, _, err := harness.Table3(o)
		return s, err
	})
}

// BenchmarkTable4_JOBM regenerates Table 4 (JOB-M Q-errors at 16 tables
// with multi-key joins).
func BenchmarkTable4_JOBM(b *testing.B) {
	o := benchOpts()
	runExperiment(b, "table4", func() (string, error) {
		s, _, err := harness.Table4(o)
		return s, err
	})
}

// BenchmarkTable5_Ablations regenerates Table 5 (sampler bias, factorization
// bits, model size, per-table independence, and no-model ablations).
func BenchmarkTable5_Ablations(b *testing.B) {
	o := benchOpts()
	runExperiment(b, "table5", func() (string, error) { return harness.Table5(o) })
}

// BenchmarkTable6_Updates regenerates Table 6 (stale vs fast-update vs
// retrain across five partition ingests).
func BenchmarkTable6_Updates(b *testing.B) {
	o := benchOpts()
	runExperiment(b, "table6", func() (string, error) { return harness.Table6(o) })
}

// BenchmarkFigure7a_AccuracyVsTuples regenerates Figure 7a (p99 accuracy as
// a function of tuples trained).
func BenchmarkFigure7a_AccuracyVsTuples(b *testing.B) {
	o := benchOpts()
	runExperiment(b, "fig7a", func() (string, error) { return harness.Figure7a(o) })
}

// BenchmarkFigure7b_SamplerThroughput regenerates Figure 7b (training
// throughput vs sampling threads).
func BenchmarkFigure7b_SamplerThroughput(b *testing.B) {
	o := benchOpts()
	runExperiment(b, "fig7b", func() (string, error) { return harness.Figure7b(o) })
}

// BenchmarkFigure7c_TrainingTime regenerates Figure 7c (wall-clock
// construction time: MSCN vs DeepDB-style SPN vs NeuroCard).
func BenchmarkFigure7c_TrainingTime(b *testing.B) {
	o := benchOpts()
	runExperiment(b, "fig7c", func() (string, error) { return harness.Figure7c(o) })
}

// BenchmarkFigure7d_InferenceLatency regenerates Figure 7d (inference
// latency distribution over JOB-light-ranges queries).
func BenchmarkFigure7d_InferenceLatency(b *testing.B) {
	o := benchOpts()
	runExperiment(b, "fig7d", func() (string, error) { return harness.Figure7d(o) })
}
