// Command bench runs the paper's full evaluation suite (§7) and prints each
// table and figure in the paper's format. Select experiments with -exp, and
// scale with -quick (seconds) or the default benchmark options (minutes).
//
//	go run ./cmd/bench -quick                 # fast smoke run, all experiments
//	go run ./cmd/bench -exp table2,table5     # full-scale selected experiments
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"neurocard/internal/harness"
)

// main delegates to realMain so failures exit through the deferred profile
// writers: a CPU profile is only serialized at StopCPUProfile, and the run
// most worth profiling is often exactly the one whose gate fails.
func main() {
	os.Exit(realMain())
}

func realMain() int {
	quick := flag.Bool("quick", false, "run the CI-sized configuration (seconds per experiment)")
	exp := flag.String("exp", "all", "comma-separated experiments: table1,fig6,table2,table3,table4,table5,table6,fig7a,fig7b,fig7c,fig7d,train,serve,chaos,ci,acc,drift")
	evalWorkers := flag.Int("evalworkers", 0, "concurrent estimation goroutines for batch-capable estimators (0 = option default)")
	serveClients := flag.Int("serveclients", 0, "exp serve/ci: concurrent closed-loop load-test clients (0 = option default)")
	serveRequests := flag.Int("serverequests", 0, "exp serve/ci: single-query requests per load-test phase (0 = option default)")
	jsonOut := flag.Bool("json", false, "exp ci/acc: write BENCH_<kind>.json result files")
	outDir := flag.String("out", ".", "exp ci/acc: directory for -json result files")
	gateDir := flag.String("gate", "", "exp ci/acc: baseline directory; fail on regression beyond -maxregress")
	maxRegress := flag.Float64("maxregress", 0.20, "exp ci: allowed fractional regression of normalized throughput")
	maxAccRegress := flag.Float64("maxaccregress", 0.25, "exp acc: allowed fractional growth of p95 q-error")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the experiments) to this file")
	flag.Parse()

	// Profiles turn perf-PR claims into evidence: run the same experiment
	// before and after and diff the flame graphs instead of guessing.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Printf("cpuprofile: %v", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Printf("cpuprofile: %v", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}()
	}

	o := harness.Default()
	if *quick {
		o = harness.Quick()
	}
	if *evalWorkers > 0 {
		o.EvalWorkers = *evalWorkers
	}
	if *serveClients > 0 {
		o.ServeClients = *serveClients
	}
	if *serveRequests > 0 {
		o.ServeRequests = *serveRequests
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	rc := 0
	run := func(name string, fn func() (string, error)) {
		if rc != 0 || (!all && !want[name]) {
			return
		}
		start := time.Now()
		out, err := fn()
		if err != nil {
			log.Printf("%s: %v", name, err)
			rc = 1
			return
		}
		fmt.Printf("%s\n(%s in %s)\n\n", out, name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() (string, error) { return harness.Table1(o) })
	run("fig6", func() (string, error) { return harness.Figure6(o) })
	run("table2", func() (string, error) { s, _, err := harness.Table2(o); return s, err })
	run("table3", func() (string, error) { s, _, err := harness.Table3(o); return s, err })
	run("table4", func() (string, error) { s, _, err := harness.Table4(o); return s, err })
	run("table5", func() (string, error) { return harness.Table5(o) })
	run("table6", func() (string, error) { return harness.Table6(o) })
	run("fig7a", func() (string, error) { return harness.Figure7a(o) })
	run("fig7b", func() (string, error) { return harness.Figure7b(o) })
	run("fig7c", func() (string, error) { return harness.Figure7c(o) })
	run("fig7d", func() (string, error) { return harness.Figure7d(o) })
	run("train", func() (string, error) { return harness.TrainThroughput(o) })
	run("serve", func() (string, error) {
		res, err := harness.ServeLoad(o)
		if err != nil {
			return "", err
		}
		return res.Report, nil
	})
	// The fault-injection acceptance run: inject panics, NaN estimates, and
	// kernel stalls into a live serving stack and gate on the fault-tolerance
	// invariants (zero malformed responses, bounded p99, clean recovery, torn
	// checkpoint writes contained). Runs only on explicit request, like ci.
	if want["chaos"] && rc == 0 {
		start := time.Now()
		res, err := harness.ChaosLoad(o)
		if res != nil {
			fmt.Printf("%s", res.Report)
		}
		if err != nil {
			log.Printf("chaos: %v", err)
			rc = 1
		} else {
			fmt.Printf("(chaos in %s)\n\n", time.Since(start).Round(time.Millisecond))
		}
	}
	// The CI benchmark-regression gate: measure, optionally write JSON,
	// compare normalized throughput against the committed baseline. Runs
	// only on explicit request — `-exp all` already measures serving and
	// training through the serve/train experiments.
	if want["ci"] && rc == 0 {
		out, err := harness.RunCIBench(o, *jsonOut, *outDir, *gateDir, *maxRegress)
		fmt.Print(out)
		if err != nil {
			log.Printf("ci: %v", err)
			rc = 1
		}
	}
	// The accuracy-regression gate: score the fixed-seed golden workload
	// (disjunctive and null-aware queries included) and compare p95 q-error
	// against the committed baseline. Like `ci`, runs only on request.
	if want["acc"] && rc == 0 {
		out, err := harness.RunAccuracyBench(o, *jsonOut, *outDir, *gateDir, *maxAccRegress)
		fmt.Print(out)
		if err != nil {
			log.Printf("acc: %v", err)
			rc = 1
		}
	}
	// The accuracy-under-drift gate: pour a skewed append through the ingest
	// journal, refresh, and require the refreshed model to beat the stale one
	// on exactly relabeled truth. Self-relative (no baseline); like `acc`,
	// runs only on request.
	if want["drift"] && rc == 0 {
		out, err := harness.RunDriftBench(o, *jsonOut, *outDir)
		fmt.Print(out)
		if err != nil {
			log.Printf("drift: %v", err)
			rc = 1
		}
	}
	return rc
}
