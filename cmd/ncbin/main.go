// Command ncbin is a client for neurocardd's binary wire protocol. It reads
// the same JSON estimate-request document that POST /v1/estimate accepts on
// stdin, re-encodes it as a binary frame (Content-Type
// application/x-neurocard-bin), and prints the server's answer as the
// equivalent JSON response — so the two protocols can be diffed with nothing
// but a shell:
//
//	echo '{"query":{"tables":["title"]},"seed":42}' | ncbin -addr http://localhost:8642
//
// A seeded request must print the identical estimate through ncbin and
// through curl; the CI smoke test relies on exactly that.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"

	"neurocard/internal/query"
	"neurocard/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ncbin: ")
	addr := flag.String("addr", "http://localhost:8642", "server base URL")
	flag.Parse()

	dec := json.NewDecoder(os.Stdin)
	dec.DisallowUnknownFields()
	var req server.EstimateRequest
	if err := dec.Decode(&req); err != nil {
		log.Fatalf("decode request: %v", err)
	}
	single := req.Query != nil
	if single == (len(req.Queries) > 0) {
		log.Fatal("exactly one of \"query\" or \"queries\" must be set")
	}
	qjs := req.Queries
	if single {
		qjs = []server.QueryJSON{*req.Query}
	}
	queries := make([]query.Query, len(qjs))
	for i := range qjs {
		q, err := server.DecodeQuery(qjs[i])
		if err != nil {
			log.Fatalf("query %d: %v", i, err)
		}
		queries[i] = q
	}

	frame := server.AppendBinRequest(nil, req.Model, req.Seed, queries)
	resp, err := http.Post(*addr+"/v1/estimate", server.ContentTypeBinary, bytes.NewReader(frame))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "ncbin: status %d: %s\n", resp.StatusCode, body)
		os.Exit(1)
	}
	br, err := server.DecodeBinResponse(body)
	if err != nil {
		log.Fatalf("decode response: %v", err)
	}

	out := server.EstimateResponse{Model: br.Model, Count: len(br.Ests), Errors: br.Errs}
	if single && len(br.Ests) == 1 {
		out.Est = &br.Ests[0]
	} else {
		out.Ests = br.Ests
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}
