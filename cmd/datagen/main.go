// Command datagen generates and inspects the synthetic IMDB datasets used
// by the benchmarks: prints per-table shapes, dictionary sizes, full-join
// statistics, and the partition layout used by the update study.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"neurocard/internal/datagen"
	"neurocard/internal/sampler"
)

func main() {
	schemaName := flag.String("schema", "joblight", "schema to generate: joblight | jobm")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	seed := flag.Int64("seed", 42, "generator seed")
	parts := flag.Int("partitions", 0, "if > 0, also show the update-study partition layout")
	flag.Parse()

	cfg := datagen.Config{Seed: *seed, Scale: *scale}
	var (
		d   *datagen.Dataset
		err error
	)
	switch *schemaName {
	case "joblight":
		d, err = datagen.JOBLight(cfg)
	case "jobm":
		d, err = datagen.JOBM(cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown schema %q\n", *schemaName)
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("schema %s (scale %.2f, seed %d): %d tables, root %q\n\n",
		*schemaName, *scale, *seed, d.Schema.NumTables(), d.Schema.Root())
	fmt.Printf("%-18s %9s %6s   %s\n", "table", "rows", "cols", "columns (dict sizes)")
	for _, tname := range d.Schema.Tables() {
		t := d.Schema.Table(tname)
		fmt.Printf("%-18s %9d %6d   ", tname, t.NumRows(), t.NumCols())
		for i, c := range t.Columns() {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%s(%d)", c.Name(), c.DictSize()-1)
		}
		fmt.Println()
	}

	smp, err := sampler.New(d.Schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull outer join: |J| = %.6g rows (join counts computed without materialization)\n", smp.JoinSize())

	if *parts > 0 {
		snaps, err := d.Snapshots(*parts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%d time-ordered snapshots (title range-partitioned on production_year):\n", *parts)
		for i, s := range snaps {
			fmt.Printf("  snapshot %d: title=%d rows, cast_info=%d rows\n",
				i+1, s.Table("title").NumRows(), s.Table("cast_info").NumRows())
		}
	}
}
