// Command neurocard trains a NeuroCard estimator on a synthetic IMDB schema
// and evaluates it on the matching benchmark workload, optionally saving
// the trained model. It is the end-to-end entry point for trying the
// estimator outside the benchmark harness.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"neurocard"
	"neurocard/internal/datagen"
	"neurocard/internal/workload"
)

func main() {
	schemaName := flag.String("schema", "joblight", "schema: joblight | jobm")
	scale := flag.Float64("scale", 0.5, "dataset scale factor")
	seed := flag.Int64("seed", 42, "seed")
	tuples := flag.Int("tuples", 200_000, "training tuples")
	hidden := flag.Int("hidden", 128, "model hidden width (d_ff)")
	embed := flag.Int("embed", 16, "embedding width (d_emb)")
	factBits := flag.Int("factbits", 12, "factorization bits (0 = off)")
	psamples := flag.Int("psamples", 256, "progressive samples per query")
	workers := flag.Int("workers", 8, "sampler threads")
	evalWorkers := flag.Int("evalworkers", runtime.GOMAXPROCS(0), "concurrent estimation goroutines")
	ranges := flag.Bool("ranges", false, "evaluate JOB-light-ranges instead of JOB-light")
	rich := flag.Bool("rich", false, "evaluate the disjunctive/null-aware (OR, !=, NOT IN, BETWEEN, IS [NOT] NULL) workload variant")
	nQueries := flag.Int("queries", 200, "ranges workload size")
	savePath := flag.String("save", "", "write a full-estimator checkpoint (servable by neurocardd) to this file")
	skipEval := flag.Bool("noeval", false, "skip workload evaluation (train + save only)")
	flag.Parse()

	cfg := datagen.Config{Seed: *seed, Scale: *scale}
	var (
		d   *datagen.Dataset
		err error
	)
	if *schemaName == "jobm" {
		d, err = datagen.JOBM(cfg)
	} else {
		d, err = datagen.JOBLight(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}

	ncfg := neurocard.DefaultConfig()
	ncfg.Model.Hidden = *hidden
	ncfg.Model.EmbedDim = *embed
	ncfg.FactBits = *factBits
	ncfg.ContentCols = d.ContentCols
	ncfg.PSamples = *psamples
	ncfg.SamplerWorkers = *workers
	ncfg.Seed = *seed

	start := time.Now()
	est, err := neurocard.Build(d.Schema, ncfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared join counts for %d tables: |J| = %.4g (%.1fs)\n",
		d.Schema.NumTables(), est.JoinSize(), time.Since(start).Seconds())

	start = time.Now()
	loss, err := est.Train(*tuples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d tuples in %.1fs: loss %.3f nats/tuple, model %.2f MB\n",
		*tuples, time.Since(start).Seconds(), loss, float64(est.Bytes())/(1<<20))

	if *savePath != "" {
		// Atomic save: a crash mid-write must never clobber an existing
		// checkpoint with a torn one.
		if err := neurocard.SaveEstimatorFile(est, *savePath); err != nil {
			log.Fatal(err)
		}
		st, err := os.Stat(*savePath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpoint saved to %s (%.2f MB)\n", *savePath, float64(st.Size())/(1<<20))
	}
	if *skipEval {
		return
	}

	var wl *workload.Workload
	switch {
	case *schemaName == "jobm" && *rich:
		wl, err = workload.JOBMRich(d, *seed+2)
	case *schemaName == "jobm":
		wl, err = workload.JOBM(d, *seed+2)
	case *ranges && *rich:
		wl, err = workload.JOBLightRangesRich(d, *nQueries, *seed+1)
	case *ranges:
		wl, err = workload.JOBLightRanges(d, *nQueries, *seed+1)
	case *rich:
		wl, err = workload.JOBLightRich(d, *seed)
	default:
		wl, err = workload.JOBLight(d, *seed)
	}
	if err != nil {
		log.Fatal(err)
	}

	queries := make([]neurocard.Query, len(wl.Queries))
	for i, lq := range wl.Queries {
		queries[i] = lq.Query
	}
	start = time.Now()
	ests, err := neurocard.EstimateBatch(est, queries, *evalWorkers)
	if err != nil {
		log.Fatal(err)
	}
	dt := time.Since(start)
	qerrs := make([]float64, len(ests))
	for i, got := range ests {
		qerrs[i] = workload.QError(got, wl.Queries[i].TrueCard)
	}
	fmt.Printf("\n%s: %d queries in %.1fs (%.0f ms/query, %.1f queries/sec on %d workers)\n",
		wl.Name, len(wl.Queries), dt.Seconds(), dt.Seconds()*1000/float64(len(wl.Queries)),
		float64(len(wl.Queries))/dt.Seconds(), *evalWorkers)
	fmt.Printf("q-errors: %s\n", workload.Summarize(qerrs))
}
