// Command neurocard trains a NeuroCard estimator on a synthetic IMDB schema
// and evaluates it on the matching benchmark workload, optionally saving
// the trained model. It is the end-to-end entry point for trying the
// estimator outside the benchmark harness.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"neurocard"
	"neurocard/internal/datagen"
	"neurocard/internal/shard"
	"neurocard/internal/workload"
)

func main() {
	schemaName := flag.String("schema", "joblight", "schema: joblight | jobm")
	scale := flag.Float64("scale", 0.5, "dataset scale factor")
	seed := flag.Int64("seed", 42, "seed")
	tuples := flag.Int("tuples", 200_000, "training tuples")
	hidden := flag.Int("hidden", 128, "model hidden width (d_ff)")
	embed := flag.Int("embed", 16, "embedding width (d_emb)")
	factBits := flag.Int("factbits", 12, "factorization bits (0 = off)")
	psamples := flag.Int("psamples", 256, "progressive samples per query")
	workers := flag.Int("workers", 8, "sampler threads")
	evalWorkers := flag.Int("evalworkers", runtime.GOMAXPROCS(0), "concurrent estimation goroutines")
	ranges := flag.Bool("ranges", false, "evaluate JOB-light-ranges instead of JOB-light")
	rich := flag.Bool("rich", false, "evaluate the disjunctive/null-aware (OR, !=, NOT IN, BETWEEN, IS [NOT] NULL) workload variant")
	nQueries := flag.Int("queries", 200, "ranges workload size")
	savePath := flag.String("save", "", "write a full-estimator checkpoint (servable by neurocardd) to this file")
	skipEval := flag.Bool("noeval", false, "skip workload evaluation (train + save only)")
	shards := flag.Int("shards", 1, "train a fleet of N sub-schema shard estimators instead of one monolithic model (requires -save-shards)")
	logical := flag.String("logical", "fleet", "logical model name for -shards; checkpoints and the manifest are named after it")
	saveShards := flag.String("save-shards", "", "directory for the -shards checkpoints plus <logical>.manifest.json (servable as one logical model by neurocardd)")
	flag.Parse()

	cfg := datagen.Config{Seed: *seed, Scale: *scale}
	var (
		d   *datagen.Dataset
		err error
	)
	if *schemaName == "jobm" {
		d, err = datagen.JOBM(cfg)
	} else {
		d, err = datagen.JOBLight(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}

	ncfg := neurocard.DefaultConfig()
	ncfg.Model.Hidden = *hidden
	ncfg.Model.EmbedDim = *embed
	ncfg.FactBits = *factBits
	ncfg.ContentCols = d.ContentCols
	ncfg.PSamples = *psamples
	ncfg.SamplerWorkers = *workers
	ncfg.Seed = *seed

	if *shards > 1 {
		if *saveShards == "" {
			log.Fatal("-shards requires -save-shards")
		}
		trainSharded(d, ncfg, *shards, *logical, *saveShards, *tuples, *evalWorkers, *skipEval, *seed)
		return
	}

	start := time.Now()
	est, err := neurocard.Build(d.Schema, ncfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared join counts for %d tables: |J| = %.4g (%.1fs)\n",
		d.Schema.NumTables(), est.JoinSize(), time.Since(start).Seconds())

	start = time.Now()
	loss, err := est.Train(*tuples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d tuples in %.1fs: loss %.3f nats/tuple, model %.2f MB\n",
		*tuples, time.Since(start).Seconds(), loss, float64(est.Bytes())/(1<<20))

	if *savePath != "" {
		// Atomic save: a crash mid-write must never clobber an existing
		// checkpoint with a torn one.
		if err := neurocard.SaveEstimatorFile(est, *savePath); err != nil {
			log.Fatal(err)
		}
		st, err := os.Stat(*savePath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpoint saved to %s (%.2f MB)\n", *savePath, float64(st.Size())/(1<<20))
	}
	if *skipEval {
		return
	}

	var wl *workload.Workload
	switch {
	case *schemaName == "jobm" && *rich:
		wl, err = workload.JOBMRich(d, *seed+2)
	case *schemaName == "jobm":
		wl, err = workload.JOBM(d, *seed+2)
	case *ranges && *rich:
		wl, err = workload.JOBLightRangesRich(d, *nQueries, *seed+1)
	case *ranges:
		wl, err = workload.JOBLightRanges(d, *nQueries, *seed+1)
	case *rich:
		wl, err = workload.JOBLightRich(d, *seed)
	default:
		wl, err = workload.JOBLight(d, *seed)
	}
	if err != nil {
		log.Fatal(err)
	}

	queries := make([]neurocard.Query, len(wl.Queries))
	for i, lq := range wl.Queries {
		queries[i] = lq.Query
	}
	start = time.Now()
	ests, err := neurocard.EstimateBatch(est, queries, *evalWorkers)
	if err != nil {
		log.Fatal(err)
	}
	dt := time.Since(start)
	qerrs := make([]float64, len(ests))
	for i, got := range ests {
		qerrs[i] = workload.QError(got, wl.Queries[i].TrueCard)
	}
	fmt.Printf("\n%s: %d queries in %.1fs (%.0f ms/query, %.1f queries/sec on %d workers)\n",
		wl.Name, len(wl.Queries), dt.Seconds(), dt.Seconds()*1000/float64(len(wl.Queries)),
		float64(len(wl.Queries))/dt.Seconds(), *evalWorkers)
	fmt.Printf("q-errors: %s\n", workload.Summarize(qerrs))
}

// trainSharded partitions the schema into n shards, trains one estimator
// per shard concurrently (full tuple budget each, seeds offset per shard),
// writes the checkpoints plus the manifest into dir, and scores the composed
// fleet on the benchmark workload unless -noeval.
func trainSharded(d *datagen.Dataset, base neurocard.Config, n int, logical, dir string,
	tuples, evalWorkers int, skipEval bool, seed int64) {
	parts, err := shard.Partition(d.Schema, n)
	if err != nil {
		log.Fatal(err)
	}
	man, err := shard.Build(d.Schema, logical, parts)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	ests := make([]*neurocard.Estimator, len(man.Shards))
	errs := make([]error, len(man.Shards))
	var wg sync.WaitGroup
	for i, sp := range man.Shards {
		wg.Add(1)
		go func(i int, sp shard.Spec) {
			defer wg.Done()
			sub, err := d.Schema.SubSchema(sp.Tables)
			if err != nil {
				errs[i] = err
				return
			}
			cfg := base
			cfg.ContentCols = make(map[string][]string, len(sp.Tables))
			for _, tb := range sp.Tables {
				if cols, ok := d.ContentCols[tb]; ok {
					cfg.ContentCols[tb] = cols
				}
			}
			cfg.Seed = seed + 1_000_003*int64(i)
			est, err := neurocard.Build(sub, cfg)
			if err != nil {
				errs[i] = err
				return
			}
			if _, err := est.Train(tuples); err != nil {
				errs[i] = err
				return
			}
			ests[i] = est
		}(i, sp)
	}
	wg.Wait()
	byName := make(map[string]*neurocard.Estimator, len(man.Shards))
	for i, sp := range man.Shards {
		if errs[i] != nil {
			log.Fatalf("shard %s: %v", sp.Name, errs[i])
		}
		path := filepath.Join(dir, sp.Checkpoint)
		if err := neurocard.SaveEstimatorFile(ests[i], path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shard %s (%s): model %.2f MB -> %s\n",
			sp.Name, strings.Join(sp.Tables, ","), float64(ests[i].Bytes())/(1<<20), path)
		byName[sp.Name] = ests[i]
	}
	manPath := shard.ManifestPath(dir, logical)
	if err := man.Write(manPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d shards in %.1fs; manifest %s (serve with neurocardd -models %s -load-manifest %s)\n",
		len(man.Shards), time.Since(start).Seconds(), manPath, dir, logical)
	if skipEval {
		return
	}

	comp, err := shard.NewComposite(man, byName)
	if err != nil {
		log.Fatal(err)
	}
	wl, err := workload.JOBLight(d, seed)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	qerrs := make([]float64, len(wl.Queries))
	werrs := make([]error, len(wl.Queries))
	var next atomic.Int64
	if evalWorkers < 1 {
		evalWorkers = 1
	}
	for k := 0; k < evalWorkers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(wl.Queries) {
					return
				}
				got, err := comp.EstimateIndexedSerial(wl.Queries[i].Query, int64(i))
				if err != nil {
					werrs[i] = err
					continue
				}
				qerrs[i] = workload.QError(got, wl.Queries[i].TrueCard)
			}
		}()
	}
	wg.Wait()
	for i, err := range werrs {
		if err != nil {
			log.Fatalf("%s: %v", wl.Queries[i].Query, err)
		}
	}
	dt := time.Since(start)
	fmt.Printf("\n%s (sharded x%d): %d queries in %.1fs\n", wl.Name, len(man.Shards), len(wl.Queries), dt.Seconds())
	fmt.Printf("q-errors: %s\n", workload.Summarize(qerrs))
}
