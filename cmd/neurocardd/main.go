// Command neurocardd is the NeuroCard serving daemon: it loads full-estimator
// checkpoints (written by `neurocard -save` or neurocard.SaveEstimator) into
// a hot-swappable model registry and serves cardinality estimates over an
// HTTP JSON API.
//
//	neurocardd -addr :8642 -models ./models -load imdb
//
// Endpoints:
//
//	POST /v1/estimate            single or batch estimates, optionally seeded;
//	                             Content-Type application/x-neurocard-bin
//	                             selects the compact binary wire protocol
//	GET  /v1/models              loaded models and their metadata
//	POST /v1/models/{name}/load  (re)load <models>/<name>.ckpt, atomic hot swap
//	GET  /healthz                liveness + readiness
//	GET  /metrics                Prometheus text: latency histogram + quantile
//	                             summary, SLO gauges, coalescer batch/queue/
//	                             window histograms, session-pool occupancy
//
// Concurrent single-query requests are coalesced per model: up to
// -fuse-batch of them fuse into one batched run over the pooled sessions,
// collected over an adaptive -fuse-window that decays to zero when idle.
// Each fused query keeps its own randomness stream, so coalescing never
// changes any result. A full -fuse-queue answers 429 + Retry-After.
//
// Example round trip:
//
//	curl -s localhost:8642/v1/estimate -d '{
//	  "query": {"tables": ["title","movie_companies"],
//	            "filters": [{"table":"title","col":"production_year","op":">=","int":1990}]},
//	  "seed": 42}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"neurocard/internal/server"
)

func main() {
	addr := flag.String("addr", ":8642", "listen address")
	modelsDir := flag.String("models", "models", "directory of <name>.ckpt checkpoints")
	load := flag.String("load", "", "comma-separated model names to load at startup (first becomes default)")
	workers := flag.Int("workers", 0, "batch estimate concurrency (0 = GOMAXPROCS)")
	maxBatch := flag.Int("maxbatch", 1024, "maximum queries per estimate request")
	fuseBatch := flag.Int("fuse-batch", 0, "max single-query requests fused per coalesced flush (0 = default 64)")
	fuseWindow := flag.Duration("fuse-window", 0, "max latency budget the coalescer holds a batch open; adaptive, decays when idle (0 = default 1.5ms, negative disables the window)")
	fuseQueue := flag.Int("fuse-queue", 0, "pending coalesced requests per model before 429 backpressure (0 = default 1024)")
	noCoalesce := flag.Bool("no-coalesce", false, "serve single-query requests inline instead of coalescing them")
	sloP99 := flag.Duration("slo-p99", 0, "p99 request-latency SLO target exported on /metrics (0 = default 25ms)")
	pprofAddr := flag.String("pprof", "", "listen address for net/http/pprof (e.g. localhost:6060); empty disables")
	flag.Parse()

	// Profiling is opt-in and served on its own listener so the debug
	// endpoints never share a port with production traffic.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			srv := &http.Server{Addr: *pprofAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	srv := server.New(server.Config{
		ModelsDir:     *modelsDir,
		Workers:       *workers,
		MaxBatch:      *maxBatch,
		FuseMaxBatch:  *fuseBatch,
		FuseWindow:    *fuseWindow,
		FuseQueue:     *fuseQueue,
		NoCoalesce:    *noCoalesce,
		SLOLatencyP99: *sloP99,
	})
	defer srv.Close()
	if *load != "" {
		for i, name := range strings.Split(*load, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			start := time.Now()
			entry, err := srv.Registry().Load(name, "")
			if err != nil {
				log.Fatalf("preload %q: %v", name, err)
			}
			if i == 0 {
				if err := srv.Registry().SetDefault(name); err != nil {
					log.Fatal(err)
				}
			}
			log.Printf("loaded model %q from %s in %s (|J| = %.4g, %d tables)",
				name, entry.Path, time.Since(start).Round(time.Millisecond),
				entry.Est.JoinSize(), entry.Est.NumTables())
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		log.Printf("neurocardd listening on %s (models dir %s, %d loaded)",
			*addr, *modelsDir, srv.Registry().Len())
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
}
