// Command neurocardd is the NeuroCard serving daemon: it loads full-estimator
// checkpoints (written by `neurocard -save` or neurocard.SaveEstimator) into
// a hot-swappable model registry and serves cardinality estimates over an
// HTTP JSON API.
//
//	neurocardd -addr :8642 -models ./models -load imdb
//
// Endpoints:
//
//	POST /v1/estimate            single or batch estimates, optionally seeded;
//	                             Content-Type application/x-neurocard-bin
//	                             selects the compact binary wire protocol
//	GET  /v1/models              loaded models and their metadata
//	POST /v1/models/{name}/load  (re)load <models>/<name>.ckpt, atomic hot swap;
//	                             {"manifest": true} loads <name>.manifest.json
//	                             plus its shard checkpoints as one logical model
//	POST /v1/models/{name}/ingest
//	                             append rows (JSON or binary); acknowledged only
//	                             after a durable (fsync) write-ahead journal
//	                             append — requires -journal
//	DELETE /v1/models/{name}     unload a model or logical model (the default
//	                             re-elects; shards of an unloaded logical stay)
//	GET  /healthz                combined health summary
//	GET  /livez                  liveness probe (always 200 while serving HTTP)
//	GET  /readyz                 readiness probe (503 until a model is loaded;
//	                             degraded-but-serving stays 200)
//	GET  /metrics                Prometheus text: latency histogram + quantile
//	                             summary, SLO gauges, coalescer batch/queue/
//	                             window histograms, session-pool occupancy,
//	                             breaker state, fault counters
//
// Concurrent single-query requests are coalesced per model: up to
// -fuse-batch of them fuse into one batched run over the pooled sessions,
// collected over an adaptive -fuse-window that decays to zero when idle.
// Each fused query keeps its own randomness stream, so coalescing never
// changes any result. A full -fuse-queue answers 429 + Retry-After.
//
// Sharded fleets (written by `neurocard -shards N -save-shards DIR`) serve
// as logical models: -load-manifest (or a manifest load via the API) loads
// every shard checkpoint a manifest lists and publishes the group under the
// logical name. Estimates addressed to it are split per shard, composed with
// the manifest's cross-shard join factors, and each shard keeps its own
// breaker, fallback, and hot-swap lifecycle.
//
// Online ingest (-journal DIR) gives every preloaded model a segmented,
// checksummed write-ahead row journal under DIR/<model>/: appended rows are
// fsynced before the ack, replayed after a crash (torn tails are truncated and
// quarantined), and folded into the serving estimator at startup. A background
// loop (-refresh-interval) absorbs journaled rows into a new model generation:
// clone the checkpoint, apply the rows incrementally, fine-tune on
// -refresh-tuples samples, re-checkpoint, and hot-swap — the journal is pruned
// only once the checkpoint is durable. -max-staleness bounds how long an acked
// row may wait for a refresh before /readyz reports the model degraded (still
// 200: stale models keep serving).
//
// Serving is fault-tolerant by default: -request-timeout bounds every
// estimate end to end (clients tighten per request with X-Deadline-Ms; expiry
// answers 504), a per-model circuit breaker (-breaker-*) trips on model
// faults and routes traffic to a histogram fallback estimator (responses
// marked "degraded": true; disable with -no-fallback), and SIGTERM drains
// in-flight requests before exiting 0. The -faults flag (or the
// NEUROCARD_FAULTS env var) arms the fault-injection layer for chaos testing
// — never set it in production.
//
// Example round trip:
//
//	curl -s localhost:8642/v1/estimate -d '{
//	  "query": {"tables": ["title","movie_companies"],
//	            "filters": [{"table":"title","col":"production_year","op":">=","int":1990}]},
//	  "seed": 42}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"neurocard/internal/core"
	"neurocard/internal/faultinject"
	"neurocard/internal/server"
)

func main() {
	addr := flag.String("addr", ":8642", "listen address")
	modelsDir := flag.String("models", "models", "directory of <name>.ckpt checkpoints")
	load := flag.String("load", "", "comma-separated model names to load at startup (first becomes default)")
	loadManifest := flag.String("load-manifest", "", "comma-separated logical model names: load <models>/<name>.manifest.json plus every shard checkpoint it lists, serving the group as one model")
	workers := flag.Int("workers", 0, "batch estimate concurrency (0 = GOMAXPROCS)")
	precision := flag.String("precision", "", "serving precision for loaded models: float64 or float32 (empty keeps each checkpoint's own); per-load overrides via the load API")
	maxBatch := flag.Int("maxbatch", 1024, "maximum queries per estimate request")
	fuseBatch := flag.Int("fuse-batch", 0, "max single-query requests fused per coalesced flush (0 = default 64)")
	fuseWindow := flag.Duration("fuse-window", 0, "max latency budget the coalescer holds a batch open; adaptive, decays when idle (0 = default 1.5ms, negative disables the window)")
	fuseQueue := flag.Int("fuse-queue", 0, "pending coalesced requests per model before 429 backpressure (0 = default 1024)")
	noCoalesce := flag.Bool("no-coalesce", false, "serve single-query requests inline instead of coalescing them")
	sloP99 := flag.Duration("slo-p99", 0, "p99 request-latency SLO target exported on /metrics (0 = default 25ms)")
	pprofAddr := flag.String("pprof", "", "listen address for net/http/pprof (e.g. localhost:6060); empty disables")
	requestTimeout := flag.Duration("request-timeout", 0, "end-to-end budget per estimate request; expiry answers 504 (0 = unbounded)")
	breakerWindow := flag.Int("breaker-window", 0, "circuit-breaker rolling outcome window per model (0 = default 20)")
	breakerMinSamples := flag.Int("breaker-min-samples", 0, "outcomes required before the breaker can trip (0 = default 10)")
	breakerThreshold := flag.Float64("breaker-threshold", 0, "failure rate that opens the breaker (0 = default 0.5, negative disables breakers)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "first open->half-open delay, doubling per reopen (0 = default 1s)")
	breakerProbes := flag.Int("breaker-probes", 0, "half-open probe budget; all must succeed to close (0 = default 3)")
	noFallback := flag.Bool("no-fallback", false, "disable the histogram fallback estimator; an open breaker then answers 503")
	journal := flag.String("journal", "", "root directory for per-model write-ahead row journals; enables POST /v1/models/{name}/ingest for preloaded models (empty disables ingest)")
	maxStaleness := flag.Duration("max-staleness", 0, "oldest an acknowledged-but-unabsorbed row may get before /readyz reports the model degraded (0 = staleness never degrades readiness)")
	refreshInterval := flag.Duration("refresh-interval", 30*time.Second, "how often the background loop absorbs journaled rows into a refreshed model generation (0 disables automatic refresh)")
	refreshTuples := flag.Int("refresh-tuples", 2048, "fine-tuning samples per background refresh (0 = absorb rows without fine-tuning)")
	faults := flag.String("faults", os.Getenv("NEUROCARD_FAULTS"),
		"CHAOS TESTING ONLY: arm fault injection, e.g. estimate-panic=0.05,kernel-delay=0.05:2ms,estimate-nan=0.05,ckpt-truncate=0.5,seed=1")
	flag.Parse()

	var defaultPrecision core.Precision
	if *precision != "" {
		p, err := core.ParsePrecision(*precision)
		if err != nil {
			log.Fatalf("-precision: %v", err)
		}
		defaultPrecision = p
	}

	if *faults != "" {
		spec, err := faultinject.ParseSpec(*faults)
		if err != nil {
			log.Fatalf("-faults: %v", err)
		}
		faultinject.Arm(spec)
		log.Printf("FAULT INJECTION ARMED: %s", *faults)
	}

	// Profiling is opt-in and served on its own listener so the debug
	// endpoints never share a port with production traffic.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			srv := &http.Server{Addr: *pprofAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	srv := server.New(server.Config{
		ModelsDir:         *modelsDir,
		Workers:           *workers,
		MaxBatch:          *maxBatch,
		FuseMaxBatch:      *fuseBatch,
		FuseWindow:        *fuseWindow,
		FuseQueue:         *fuseQueue,
		NoCoalesce:        *noCoalesce,
		SLOLatencyP99:     *sloP99,
		RequestTimeout:    *requestTimeout,
		BreakerWindow:     *breakerWindow,
		BreakerMinSamples: *breakerMinSamples,
		BreakerThreshold:  *breakerThreshold,
		BreakerCooldown:   *breakerCooldown,
		BreakerProbes:     *breakerProbes,
		NoFallback:        *noFallback,
		DefaultPrecision:  defaultPrecision,
		JournalDir:        *journal,
		MaxStaleness:      *maxStaleness,
	})
	defer srv.Close()
	var preloaded []string
	if *load != "" {
		for i, name := range strings.Split(*load, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			start := time.Now()
			entry, err := srv.Registry().Load(name, "")
			if err != nil {
				log.Fatalf("preload %q: %v", name, err)
			}
			if i == 0 {
				if err := srv.Registry().SetDefault(name); err != nil {
					log.Fatal(err)
				}
			}
			preloaded = append(preloaded, name)
			log.Printf("loaded model %q from %s in %s (|J| = %.4g, %d tables, %s serving)",
				name, entry.Path, time.Since(start).Round(time.Millisecond),
				entry.Est.JoinSize(), entry.Est.NumTables(), entry.Est.Precision())
		}
	}
	if *loadManifest != "" {
		for _, name := range strings.Split(*loadManifest, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			start := time.Now()
			lg, err := srv.Registry().LoadLogical(name, "")
			if err != nil {
				log.Fatalf("preload manifest %q: %v", name, err)
			}
			log.Printf("loaded logical model %q from %s in %s (%d shards over %d tables)",
				name, lg.Path, time.Since(start).Round(time.Millisecond),
				len(lg.Man.Shards), len(lg.Man.Tables()))
		}
	}

	// Ingest journals open (and replay) before the listener starts: replay
	// folds acknowledged-but-unabsorbed rows into the serving estimators,
	// which is only safe while no requests hold them.
	refreshDone := make(chan struct{})
	refreshStopped := make(chan struct{})
	if *journal != "" {
		for _, name := range preloaded {
			start := time.Now()
			recovered, err := srv.EnableIngest(name)
			if err != nil {
				log.Fatalf("ingest journal for %q: %v", name, err)
			}
			log.Printf("ingest enabled for %q (journal %s, %d rows replayed in %s)",
				name, *journal, recovered, time.Since(start).Round(time.Millisecond))
		}
		if *refreshInterval > 0 {
			go func() {
				defer close(refreshStopped)
				tick := time.NewTicker(*refreshInterval)
				defer tick.Stop()
				for {
					select {
					case <-refreshDone:
						return
					case <-tick.C:
						if err := srv.RefreshStale(*refreshTuples); err != nil {
							log.Printf("background refresh: %v", err)
						}
					}
				}
			}()
		} else {
			close(refreshStopped)
		}
	} else {
		close(refreshStopped)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		log.Printf("neurocardd listening on %s (models dir %s, %d loaded)",
			*addr, *modelsDir, srv.Registry().Len())
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	// Graceful drain: stop accepting connections and wait for in-flight
	// requests to complete (bounded), then stop the coalescer goroutines.
	// Ordering matters — closing the coalescers first would fail the very
	// requests the drain is waiting on with 503s.
	log.Printf("shutting down: draining in-flight requests")
	close(refreshDone)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	// Wait for an in-flight background refresh before Close tears down the
	// journals it may be pruning.
	<-refreshStopped
	srv.Close()
	log.Printf("drained, exiting")
}
