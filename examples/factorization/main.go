// Command factorization demonstrates §5's lossless column factorization: a
// high-cardinality column is bit-sliced into subcolumns, shrinking the
// model by an order of magnitude while range filters still evaluate
// correctly through the per-subcolumn constraint translation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"neurocard"
)

func main() {
	// One table with a 50,000-distinct-value ID-like column plus a small
	// categorical column correlated with it.
	b, err := neurocard.NewTableBuilder("events", []neurocard.ColSpec{
		{Name: "user_id", Kind: neurocard.KindInt},
		{Name: "region", Kind: neurocard.KindInt},
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const users = 50_000
	for i := 0; i < 120_000; i++ {
		uid := rng.Intn(users)
		region := uid * 8 / users // region strictly determined by ID band
		if rng.Intn(10) == 0 {
			region = rng.Intn(8)
		}
		b.MustAppend(neurocard.Int(int64(uid)), neurocard.Int(int64(region)))
	}
	sch, err := neurocard.NewSchema([]*neurocard.Table{b.MustBuild()}, "events", nil)
	if err != nil {
		log.Fatal(err)
	}

	q := neurocard.Query{
		Tables: []string{"events"},
		Filters: []neurocard.Filter{
			{Table: "events", Col: "user_id", Op: neurocard.OpLt, Val: neurocard.Int(10_000)},
			{Table: "events", Col: "region", Op: neurocard.OpEq, Val: neurocard.Int(1)},
		},
	}
	truth, err := neurocard.TrueCardinality(sch, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\ntrue cardinality: %.0f\n\n", q, truth)
	fmt.Printf("%-12s %12s %12s %10s\n", "fact bits", "model size", "estimate", "q-error")

	for _, bits := range []int{0, 14, 10, 8} {
		cfg := neurocard.DefaultConfig()
		cfg.FactBits = bits
		cfg.Model.Hidden = 48
		cfg.Model.EmbedDim = 16
		cfg.BatchSize = 512
		cfg.PSamples = 512
		est, err := neurocard.Build(sch, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := est.Train(120_000); err != nil {
			log.Fatal(err)
		}
		got, err := est.Estimate(q)
		if err != nil {
			log.Fatal(err)
		}
		qe := got / truth
		if qe < 1 {
			qe = truth / got
		}
		label := fmt.Sprint(bits)
		if bits == 0 {
			label = "none"
		}
		fmt.Printf("%-12s %10.1fKB %12.1f %10.2f\n",
			label, float64(est.Bytes())/1024, got, qe)
	}
	fmt.Println("\nLower factorization bits shrink the embedding tables (smaller model)")
	fmt.Println("at a modest accuracy cost — the §7.5 group (B) trade-off.")
}
