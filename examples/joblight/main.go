// Command joblight reproduces the paper's headline workflow on the bundled
// synthetic IMDB: generate the 6-table JOB-light star schema, train one
// NeuroCard model over the full outer join of all six tables, and report
// the Q-error distribution over the 70-query JOB-light workload against
// exact ground truth.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"neurocard"
	"neurocard/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 0.3, "dataset scale factor")
	tuples := flag.Int("tuples", 150_000, "training tuples")
	psamples := flag.Int("psamples", 256, "progressive samples per query")
	flag.Parse()

	d, err := neurocard.SyntheticJOBLight(neurocard.SyntheticConfig{Seed: 42, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("JOB-light schema: %d tables, title has %d rows\n",
		d.Schema.NumTables(), d.Schema.Table("title").NumRows())

	cfg := neurocard.DefaultConfig()
	cfg.ContentCols = d.ContentCols
	cfg.PSamples = *psamples
	cfg.SamplerWorkers = 8
	start := time.Now()
	est, err := neurocard.Build(d.Schema, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("|J| = %.3g rows; join counts + model built in %s\n",
		est.JoinSize(), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	loss, err := est.Train(*tuples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d tuples in %s (final loss %.3f nats/tuple, model %.1f KB)\n",
		*tuples, time.Since(start).Round(time.Millisecond), loss, float64(est.Bytes())/1024)

	wl, err := workload.JOBLight(d, 42)
	if err != nil {
		log.Fatal(err)
	}
	var qerrs []float64
	worst := 0
	for i, lq := range wl.Queries {
		got, err := est.Estimate(lq.Query)
		if err != nil {
			log.Fatal(err)
		}
		qe := workload.QError(got, lq.TrueCard)
		qerrs = append(qerrs, qe)
		if qe > qerrs[worst] {
			worst = i
		}
	}
	s := workload.Summarize(qerrs)
	fmt.Printf("\nJOB-light Q-errors over %d queries: %s\n", len(qerrs), s)
	sort.Float64s(qerrs)
	fmt.Printf("hardest query: %s (q-error %.2f)\n", wl.Queries[worst].Query, qerrs[len(qerrs)-1])
}
