// Command quickstart is the smallest end-to-end NeuroCard walkthrough:
// build two joined tables, train a single autoregressive model on the full
// outer join, and estimate cardinalities for queries over any table subset
// — comparing each estimate with the exact answer.
package main

import (
	"fmt"
	"log"

	"neurocard"
)

func main() {
	// 1. Tables: movies and their per-movie ratings (a PK-FK join with
	// skewed fanout — popular movies have more ratings).
	mb, err := neurocard.NewTableBuilder("movies", []neurocard.ColSpec{
		{Name: "id", Kind: neurocard.KindInt},
		{Name: "year", Kind: neurocard.KindInt},
		{Name: "genre", Kind: neurocard.KindStr},
	})
	if err != nil {
		log.Fatal(err)
	}
	genres := []string{"drama", "comedy", "action"}
	for i := 1; i <= 200; i++ {
		year := 1970 + (i*7)%55
		genre := genres[i%3]
		if year > 2000 {
			genre = genres[i%2] // correlation: recent titles skew drama/comedy
		}
		yearVal := neurocard.Int(int64(year))
		if i%17 == 0 {
			yearVal = neurocard.Null // some titles have unknown years
		}
		mb.MustAppend(neurocard.Int(int64(i)), yearVal, neurocard.Str(genre))
	}
	rb, err := neurocard.NewTableBuilder("ratings", []neurocard.ColSpec{
		{Name: "movie_id", Kind: neurocard.KindInt},
		{Name: "score", Kind: neurocard.KindInt},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 200; i++ {
		for j := 0; j <= i%5; j++ { // fanout 1..5 correlated with id
			rb.MustAppend(neurocard.Int(int64(i)), neurocard.Int(int64(40+(i+j)%60)))
		}
	}

	// 2. Schema: a join tree over the two tables.
	sch, err := neurocard.NewSchema(
		[]*neurocard.Table{mb.MustBuild(), rb.MustBuild()},
		"movies",
		[]neurocard.Edge{{LeftTable: "movies", LeftCol: "id", RightTable: "ratings", RightCol: "movie_id"}},
	)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Build + train: join counts are precomputed, then the ResMADE model
	// streams uniform samples of the full outer join.
	cfg := neurocard.DefaultConfig()
	cfg.Model.Hidden = 48
	cfg.Model.EmbedDim = 8
	cfg.BatchSize = 256
	cfg.PSamples = 512
	est, err := neurocard.Build(sch, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full outer join size |J| = %.0f rows\n", est.JoinSize())
	if _, err := est.Train(60_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model size: %.1f KB\n\n", float64(est.Bytes())/1024)

	// 4. Estimate: one model answers joins AND single-table queries.
	queries := []neurocard.Query{
		{
			Tables: []string{"movies", "ratings"},
			Filters: []neurocard.Filter{
				{Table: "movies", Col: "year", Op: neurocard.OpGe, Val: neurocard.Int(2000)},
				{Table: "ratings", Col: "score", Op: neurocard.OpGe, Val: neurocard.Int(80)},
			},
		},
		{
			Tables: []string{"movies"},
			Filters: []neurocard.Filter{
				{Table: "movies", Col: "genre", Op: neurocard.OpEq, Val: neurocard.Str("drama")},
			},
		},
		{
			Tables: []string{"ratings"},
			Filters: []neurocard.Filter{
				{Table: "ratings", Col: "score", Op: neurocard.OpLt, Val: neurocard.Int(50)},
			},
		},
		// Disjunction: very old OR very recent titles (an OR group compiles
		// to a region union on one column).
		{
			Tables: []string{"movies"},
			Filters: []neurocard.Filter{
				{Table: "movies", Col: "year", Op: neurocard.OpLe, Val: neurocard.Int(1975),
					Or: []neurocard.Filter{{Op: neurocard.OpGe, Val: neurocard.Int(2015)}}},
			},
		},
		// Null-aware: titles with unknown year, joined through to ratings.
		{
			Tables: []string{"movies", "ratings"},
			Filters: []neurocard.Filter{
				{Table: "movies", Col: "year", Op: neurocard.OpIsNull},
			},
		},
		// Negation + BETWEEN: non-drama titles from a year band.
		{
			Tables: []string{"movies"},
			Filters: []neurocard.Filter{
				{Table: "movies", Col: "genre", Op: neurocard.OpNeq, Val: neurocard.Str("drama")},
				{Table: "movies", Col: "year", Op: neurocard.OpBetween,
					Val: neurocard.Int(1980), Hi: neurocard.Int(1995)},
			},
		},
	}
	for _, q := range queries {
		est1, err := est.Estimate(q)
		if err != nil {
			log.Fatal(err)
		}
		truth, err := neurocard.TrueCardinality(sch, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-90s est=%8.1f  true=%6.0f\n", q, est1, truth)
	}
}
