// Command updates demonstrates §7.6's incremental maintenance: the database
// grows through time-ordered partition ingests, and a single NeuroCard
// model is kept accurate with fast updates (a few gradient steps on 1% of
// the original sample budget) instead of full retraining.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"neurocard"
	"neurocard/internal/exec"
	"neurocard/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 0.2, "dataset scale factor")
	tuples := flag.Int("tuples", 80_000, "initial training tuples")
	flag.Parse()

	d, err := neurocard.SyntheticJOBLight(neurocard.SyntheticConfig{Seed: 7, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	snaps, err := d.Snapshots(5)
	if err != nil {
		log.Fatal(err)
	}

	// Evaluation queries drawn from the full dataset; truth is recomputed
	// against each snapshot.
	wl, err := workload.JOBLight(d, 3)
	if err != nil {
		log.Fatal(err)
	}
	queries := wl.Queries[:25]

	cfg := neurocard.DefaultConfig()
	cfg.ContentCols = d.ContentCols
	cfg.PSamples = 200
	// The domain schema (full dataset) fixes the dictionaries so snapshots
	// stay encodable as data grows.
	est, err := neurocard.BuildWithDomain(d.Schema, snaps[0], cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := est.Train(*tuples); err != nil {
		log.Fatal(err)
	}

	report := func(stage string, snap *neurocard.Schema) {
		var qerrs []float64
		for _, lq := range queries {
			truth, err := exec.Cardinality(snap, lq.Query)
			if err != nil {
				log.Fatal(err)
			}
			got, err := est.Estimate(lq.Query)
			if err != nil {
				log.Fatal(err)
			}
			qerrs = append(qerrs, workload.QError(got, truth))
		}
		s := workload.Summarize(qerrs)
		fmt.Printf("%-28s |J|=%10.4g   p50=%6.2f  p95=%8.2f\n", stage, est.JoinSize(), s.Median, s.P95)
	}

	report("initial (partition 1)", snaps[0])
	for i := 1; i < len(snaps); i++ {
		// Stale accuracy: new data arrived, model not yet updated. The
		// estimator still scales by the OLD |J|, which is the §7.6 "stale"
		// failure mode.
		start := time.Now()
		if err := est.UpdateData(snaps[i]); err != nil {
			log.Fatal(err)
		}
		if _, err := est.Train(*tuples / 100); err != nil { // 1% fast update
			log.Fatal(err)
		}
		fmt.Printf("-- ingested partition %d; fast update took %s\n",
			i+1, time.Since(start).Round(time.Millisecond))
		report(fmt.Sprintf("after fast update %d", i), snaps[i])
	}
}
