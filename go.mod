module neurocard

go 1.24
