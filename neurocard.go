// Package neurocard is a from-scratch Go implementation of NeuroCard
// ("NeuroCard: One Cardinality Estimator for All Tables", VLDB 2020): a
// single deep autoregressive density model trained on unbiased samples of
// the full outer join of all tables in a schema, answering cardinality
// queries over any connected subset of tables with no independence
// assumptions.
//
// The package exposes the complete pipeline:
//
//	tables  → Builder / NewSchema          (column store + join tree)
//	build   → Build(schema, config)        (join counts + sampler + ResMADE)
//	train   → Estimator.Train(nTuples)     (maximum likelihood on join samples)
//	query   → Estimator.Estimate(query)    (progressive sampling + schema subsetting)
//	truth   → TrueCardinality(schema, q)   (exact executor, for evaluation)
//
// A minimal end-to-end example lives in examples/quickstart; the full
// benchmark suite reproducing the paper's evaluation is in bench_test.go
// and cmd/bench.
package neurocard

import (
	"io"
	"math/rand"

	"neurocard/internal/core"
	"neurocard/internal/datagen"
	"neurocard/internal/exec"
	"neurocard/internal/made"
	"neurocard/internal/query"
	"neurocard/internal/schema"
	"neurocard/internal/table"
	"neurocard/internal/value"
)

// Value is a typed scalar cell: NULL, int64, or string.
type Value = value.Value

// Null is the SQL NULL value.
var Null = value.Null

// Int builds an integer Value.
func Int(v int64) Value { return value.Int(v) }

// Str builds a string Value.
func Str(s string) Value { return value.Str(s) }

// Value kinds, for ColSpec declarations.
const (
	KindInt = value.KindInt
	KindStr = value.KindStr
)

// ColSpec declares a column when building tables.
type ColSpec = table.ColSpec

// Builder accumulates rows into an immutable dictionary-encoded Table.
type Builder = table.Builder

// Table is an immutable column-store table with lazily built join indexes.
type Table = table.Table

// NewTableBuilder starts building a table.
func NewTableBuilder(name string, specs []ColSpec) (*Builder, error) {
	return table.NewBuilder(name, specs)
}

// Edge declares an equi-join relationship between two tables' int columns.
type Edge = schema.Edge

// Schema is a validated join tree over a set of tables.
type Schema = schema.Schema

// NewSchema validates tables and join edges into a schema rooted at root.
// The edges must form a tree spanning all tables.
func NewSchema(tables []*Table, root string, edges []Edge) (*Schema, error) {
	return schema.New(tables, root, edges)
}

// Op is a filter comparison operator.
type Op = query.Op

// Supported filter operators.
const (
	OpEq        = query.OpEq
	OpLt        = query.OpLt
	OpLe        = query.OpLe
	OpGt        = query.OpGt
	OpGe        = query.OpGe
	OpIn        = query.OpIn
	OpNeq       = query.OpNeq
	OpNotIn     = query.OpNotIn
	OpBetween   = query.OpBetween
	OpIsNull    = query.OpIsNull
	OpIsNotNull = query.OpIsNotNull
)

// Filter is a single-column predicate clause: Table.Col Op Val, Col IN/NOT
// IN Set, Col BETWEEN Val AND Hi, or Col IS [NOT] NULL — optionally widened
// into a disjunction via Or (alternatives on the same column).
type Filter = query.Filter

// Query is an inner equi-join over a connected table subset plus a
// conjunction of filter clauses (each clause may be an OR group).
type Query = query.Query

// ModelConfig sets the ResMADE architecture and optimizer.
type ModelConfig = made.Config

// Config assembles an estimator: model architecture, factorization bits,
// modeled columns, training batch/workers, and progressive-sample count.
type Config = core.Config

// DefaultConfig returns a CPU-friendly configuration mirroring the paper's
// base setup.
func DefaultConfig() Config { return core.DefaultConfig() }

// Estimator is a trained NeuroCard cardinality estimator.
type Estimator = core.Estimator

// Build prepares the join sampler (Exact-Weight join counts), the
// factorized encoder, and an untrained model for the schema. Call Train
// before Estimate.
func Build(sch *Schema, cfg Config) (*Estimator, error) {
	return core.Build(sch, cfg)
}

// BuildWithDomain builds against a dictionary-defining domain schema while
// modeling a (possibly filtered) data snapshot — the setup for incremental
// update workflows.
func BuildWithDomain(domain, data *Schema, cfg Config) (*Estimator, error) {
	return core.BuildWithDomain(domain, data, cfg)
}

// TrueCardinality computes the exact result count of a query (linear-time
// dynamic programming over the join tree). Used for evaluation and for
// labeling supervised baselines.
func TrueCardinality(sch *Schema, q Query) (float64, error) {
	return exec.Cardinality(sch, q)
}

// InnerJoinSize returns the unfiltered inner-join row count of a table set.
func InnerJoinSize(sch *Schema, tables []string) (float64, error) {
	return exec.InnerJoinSize(sch, tables)
}

// SaveEstimator writes a full-estimator checkpoint: schema metadata and
// dictionaries, the encoder/factorization configuration, the sampler's
// join-count tables, and the model weights at full precision. The resulting
// file restores to a ready-to-serve estimator with LoadEstimator (or a
// neurocardd model load), producing estimates identical to the original's at
// a fixed seed.
func SaveEstimator(e *Estimator, w io.Writer) error {
	return core.SaveCheckpoint(e, w)
}

// SaveEstimatorFile writes a full-estimator checkpoint to path atomically:
// the bytes land in a same-directory temp file that is fsynced and renamed
// over path only after a fully successful write, so a crash (or failed disk)
// mid-save can never leave a torn checkpoint where a loadable one — or
// nothing — used to be.
func SaveEstimatorFile(e *Estimator, path string) error {
	return core.WriteCheckpointFile(e, path)
}

// LoadEstimator restores a checkpoint written by SaveEstimator to a
// ready-to-serve estimator: Estimate/EstimateBatch work immediately, and
// Train/UpdateData continue to work for incremental updates after a restart.
func LoadEstimator(r io.Reader) (*Estimator, error) {
	return core.LoadCheckpoint(r)
}

// SaveModel serializes a trained estimator's model weights (float32).
//
// Deprecated: the weights alone cannot answer queries — restoring requires
// rebuilding the schema, encoder, and join counts exactly as trained. Use
// SaveEstimator, which captures the whole estimator.
func SaveModel(e *Estimator, w io.Writer) error {
	return e.Model().Save(w)
}

// LoadModel deserializes model weights saved by SaveModel. The result is a
// bare density model, not a serving-ready estimator.
//
// Deprecated: use LoadEstimator with a SaveEstimator checkpoint; it restores
// a complete estimator that can serve queries and keep training.
func LoadModel(r io.Reader) (*made.Model, error) {
	return made.Load(r)
}

// SyntheticConfig controls the bundled synthetic IMDB generator.
type SyntheticConfig = datagen.Config

// SyntheticDataset bundles a generated schema with its filterable columns.
type SyntheticDataset = datagen.Dataset

// SyntheticJOBLight generates the 6-table JOB-light star schema with
// planted correlations (the paper's IMDB substitute; see DESIGN.md).
func SyntheticJOBLight(cfg SyntheticConfig) (*SyntheticDataset, error) {
	return datagen.JOBLight(cfg)
}

// SyntheticJOBM generates the 16-table JOB-M snowflake schema.
func SyntheticJOBM(cfg SyntheticConfig) (*SyntheticDataset, error) {
	return datagen.JOBM(cfg)
}

// EstimateSeeded runs one estimate with an explicit sample count and RNG
// seed (deterministic; useful in tests and examples).
func EstimateSeeded(e *Estimator, q Query, samples int, seed int64) (float64, error) {
	return e.EstimateWithSamples(q, samples, rand.New(rand.NewSource(seed)))
}

// EstimateBatch estimates many queries concurrently on up to `workers`
// goroutines (≤ 0 uses GOMAXPROCS), each worker owning a reusable inference
// session. Query i's randomness derives from (config seed, i), so results
// are identical run to run regardless of scheduling — the serving-side
// throughput API for evaluating workloads or answering optimizer traffic.
func EstimateBatch(e *Estimator, queries []Query, workers int) ([]float64, error) {
	return e.EstimateBatch(queries, workers)
}
