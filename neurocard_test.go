package neurocard_test

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"neurocard"
)

// buildToy assembles a 3-table schema through the public API only.
func buildToy(t *testing.T) *neurocard.Schema {
	t.Helper()
	mb, err := neurocard.NewTableBuilder("movies", []neurocard.ColSpec{
		{Name: "id", Kind: neurocard.KindInt},
		{Name: "year", Kind: neurocard.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 30; i++ {
		mb.MustAppend(neurocard.Int(int64(i)), neurocard.Int(int64(1980+i%40)))
	}
	rb, err := neurocard.NewTableBuilder("ratings", []neurocard.ColSpec{
		{Name: "movie_id", Kind: neurocard.KindInt},
		{Name: "score", Kind: neurocard.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 30; i++ {
		for j := 0; j < i%4; j++ {
			rb.MustAppend(neurocard.Int(int64(i)), neurocard.Int(int64(50+i%50)))
		}
	}
	tb, err := neurocard.NewTableBuilder("tags", []neurocard.ColSpec{
		{Name: "movie_id", Kind: neurocard.KindInt},
		{Name: "tag", Kind: neurocard.KindStr},
	})
	if err != nil {
		t.Fatal(err)
	}
	tags := []string{"drama", "comedy", "noir"}
	for i := 1; i <= 30; i += 2 {
		tb.MustAppend(neurocard.Int(int64(i)), neurocard.Str(tags[i%3]))
	}
	sch, err := neurocard.NewSchema(
		[]*neurocard.Table{mb.MustBuild(), rb.MustBuild(), tb.MustBuild()},
		"movies",
		[]neurocard.Edge{
			{LeftTable: "movies", LeftCol: "id", RightTable: "ratings", RightCol: "movie_id"},
			{LeftTable: "movies", LeftCol: "id", RightTable: "tags", RightCol: "movie_id"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

// TestPublicAPIEndToEnd drives the whole public surface: build, train,
// estimate, compare against the exact executor, and round-trip the model.
func TestPublicAPIEndToEnd(t *testing.T) {
	sch := buildToy(t)
	cfg := neurocard.DefaultConfig()
	cfg.Model.Hidden = 32
	cfg.Model.EmbedDim = 8
	cfg.Model.Blocks = 1
	cfg.Model.LR = 5e-3
	cfg.BatchSize = 128
	cfg.PSamples = 400
	cfg.SamplerWorkers = 2
	est, err := neurocard.Build(sch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Train(30_000); err != nil {
		t.Fatal(err)
	}
	q := neurocard.Query{
		Tables: []string{"movies", "ratings"},
		Filters: []neurocard.Filter{
			{Table: "movies", Col: "year", Op: neurocard.OpGe, Val: neurocard.Int(2000)},
		},
	}
	truth, err := neurocard.TrueCardinality(sch, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := est.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	truth = math.Max(truth, 1)
	if qerr := math.Max(got/truth, truth/got); qerr > 3 {
		t.Errorf("estimate %v vs truth %v (q-error %.2f)", got, truth, qerr)
	}
	// String-filter query through a different table subset.
	q2 := neurocard.Query{
		Tables: []string{"movies", "tags"},
		Filters: []neurocard.Filter{
			{Table: "tags", Col: "tag", Op: neurocard.OpEq, Val: neurocard.Str("drama")},
		},
	}
	if _, err := est.Estimate(q2); err != nil {
		t.Fatal(err)
	}
	// Deterministic seeded estimation.
	a, err := neurocard.EstimateSeeded(est, q, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := neurocard.EstimateSeeded(est, q, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("seeded estimates differ: %v vs %v", a, b)
	}
	// Model persistence (deprecated weights-only path still works).
	var buf bytes.Buffer
	if err := neurocard.SaveModel(est, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := neurocard.LoadModel(&buf); err != nil {
		t.Fatal(err)
	}
	// Full-estimator checkpoint: the restored estimator serves the same
	// seeded estimates and can keep training.
	var ckpt bytes.Buffer
	if err := neurocard.SaveEstimator(est, &ckpt); err != nil {
		t.Fatal(err)
	}
	restored, err := neurocard.LoadEstimator(bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := neurocard.EstimateSeeded(est, q, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	gotR, err := neurocard.EstimateSeeded(restored, q, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotR-want) > 1e-9*math.Max(1, want) {
		t.Errorf("restored estimator: %v, want %v", gotR, want)
	}
	if _, err := restored.Train(2_000); err != nil {
		t.Errorf("restored estimator cannot train: %v", err)
	}
	// Atomic file save: byte-identical to the streaming writer, restores the
	// same, and leaves no temp debris behind.
	path := filepath.Join(t.TempDir(), "est.ckpt")
	if err := neurocard.SaveEstimatorFile(est, path); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, ckpt.Bytes()) {
		t.Errorf("SaveEstimatorFile bytes differ from SaveEstimator (%d vs %d)", len(onDisk), ckpt.Len())
	}
	fromFile, err := neurocard.LoadEstimator(bytes.NewReader(onDisk))
	if err != nil {
		t.Fatal(err)
	}
	gotF, err := neurocard.EstimateSeeded(fromFile, q, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotF-want) > 1e-9*math.Max(1, want) {
		t.Errorf("file-restored estimator: %v, want %v", gotF, want)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("atomic save left temp debris: %v", entries)
	}
	if _, err := neurocard.InnerJoinSize(sch, []string{"movies", "ratings"}); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticGenerators(t *testing.T) {
	d, err := neurocard.SyntheticJOBLight(neurocard.SyntheticConfig{Seed: 1, Scale: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if d.Schema.NumTables() != 6 {
		t.Errorf("JOB-light tables = %d", d.Schema.NumTables())
	}
	m, err := neurocard.SyntheticJOBM(neurocard.SyntheticConfig{Seed: 1, Scale: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if m.Schema.NumTables() != 16 {
		t.Errorf("JOB-M tables = %d", m.Schema.NumTables())
	}
}
