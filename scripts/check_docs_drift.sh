#!/usr/bin/env bash
# Docs-drift guard: every flag cmd/neurocardd defines must be documented in
# README.md (and, informationally, anywhere flags are tabulated). The daemon
# is the system's public surface, so a flag that exists only in --help is a
# doc bug. Run from the repo root; CI runs it in the lint job.
set -euo pipefail
cd "$(dirname "$0")/.."

main=cmd/neurocardd/main.go
readme=README.md

# Flag names as the daemon registers them: flag.String("name", ...) etc.
flags=$(grep -oE 'flag\.(String|Int|Bool|Duration|Float64)\("[a-z0-9-]+"' "$main" |
  sed -E 's/.*\("([a-z0-9-]+)"/\1/' | sort -u)

if [ -z "$flags" ]; then
  echo "check_docs_drift: no flags parsed from $main — extraction regex drifted" >&2
  exit 1
fi

missing=0
for f in $flags; do
  # Documented means the literal `-flag` appears in README (table cell,
  # backticks, or prose). Word-boundary match so -fuse-batch doesn't
  # satisfy -fuse.
  if ! grep -qE -- "-$f([^a-z0-9-]|$)" "$readme"; then
    echo "undocumented daemon flag: -$f (add it to $readme)" >&2
    missing=1
  fi
done

count=$(echo "$flags" | wc -l)
if [ "$missing" -ne 0 ]; then
  echo "check_docs_drift: FAIL — $readme is missing daemon flags (of $count total)" >&2
  exit 1
fi
echo "check_docs_drift: OK — all $count cmd/neurocardd flags documented in $readme"
