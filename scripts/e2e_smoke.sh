#!/usr/bin/env bash
# End-to-end serving smoke test: train a tiny synthetic model, save a
# full-estimator checkpoint, start the serving daemon, and assert that a
# POST /v1/estimate round trip returns a finite positive cardinality.
# Run from the repository root; used by the CI e2e-smoke job.
set -euo pipefail

ADDR="${NEUROCARDD_ADDR:-127.0.0.1:18642}"
WORKDIR="$(mktemp -d)"
MODELS="$WORKDIR/models"
mkdir -p "$MODELS"

cleanup() {
    [[ -n "${DAEMON_PID:-}" ]] && kill "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "=== training tiny model + writing checkpoint"
go run ./cmd/neurocard -scale 0.05 -tuples 4096 -hidden 48 -embed 8 \
    -psamples 64 -workers 2 -noeval -save "$MODELS/joblight.ckpt"

echo "=== starting neurocardd on $ADDR"
go build -o "$WORKDIR/neurocardd" ./cmd/neurocardd
"$WORKDIR/neurocardd" -addr "$ADDR" -models "$MODELS" -load joblight &
DAEMON_PID=$!

for i in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "daemon exited early" >&2
        exit 1
    fi
    sleep 0.2
done

echo "=== healthz"
HEALTH=$(curl -sf "http://$ADDR/healthz")
echo "$HEALTH"
echo "$HEALTH" | grep -q '"ready":true'

echo "=== single estimate round trip"
RESP=$(curl -sf "http://$ADDR/v1/estimate" -d '{
  "query": {"tables": ["title","movie_companies"],
            "filters": [{"table":"title","col":"production_year","op":">=","int":1990}]},
  "seed": 42}')
echo "$RESP"

EST=$(echo "$RESP" | sed -n 's/.*"est":\([0-9.eE+-]*\).*/\1/p')
if [[ -z "$EST" ]]; then
    echo "no estimate in response" >&2
    exit 1
fi
# Finite positive check (rejects 0, negatives, NaN, Inf — none of which
# survive the sed extraction or the awk comparison).
awk -v est="$EST" 'BEGIN { exit !(est > 0 && est < 1e30) }'
echo "estimate $EST is finite and positive"

echo "=== disjunctive (OR group) estimate round trip"
OR_RESP=$(curl -sf "http://$ADDR/v1/estimate" -d '{
  "query": {"tables": ["title"],
            "filters": [{"table":"title","col":"production_year","op":">=","int":2000,
                         "or": [{"op":"<","int":1950}]}]},
  "seed": 42}')
echo "$OR_RESP"
OR_EST=$(echo "$OR_RESP" | sed -n 's/.*"est":\([0-9.eE+-]*\).*/\1/p')
if [[ -z "$OR_EST" ]]; then
    echo "no estimate in OR response" >&2
    exit 1
fi
awk -v est="$OR_EST" 'BEGIN { exit !(est > 0 && est < 1e30) }'
echo "OR estimate $OR_EST is finite and positive"

echo "=== null-aware (IS NULL) estimate round trip"
NULL_RESP=$(curl -sf "http://$ADDR/v1/estimate" -d '{
  "query": {"tables": ["title"],
            "filters": [{"table":"title","col":"production_year","op":"IS NULL"}]},
  "seed": 42}')
echo "$NULL_RESP"
NULL_EST=$(echo "$NULL_RESP" | sed -n 's/.*"est":\([0-9.eE+-]*\).*/\1/p')
if [[ -z "$NULL_EST" ]]; then
    echo "no estimate in IS NULL response" >&2
    exit 1
fi
awk -v est="$NULL_EST" 'BEGIN { exit !(est > 0 && est < 1e30) }'
echo "IS NULL estimate $NULL_EST is finite and positive"

echo "=== batch estimate round trip"
BATCH=$(curl -sf "http://$ADDR/v1/estimate" -d '{
  "queries": [{"tables": ["title"]},
              {"tables": ["title","movie_keyword"],
               "filters": [{"table":"title","col":"kind_id","op":"=","int":1}]}],
  "seed": 7}')
echo "$BATCH"
echo "$BATCH" | grep -q '"count":2'

echo "=== binary protocol round trip (ncbin vs curl, same seeded request)"
go build -o "$WORKDIR/ncbin" ./cmd/ncbin
BIN_REQ='{
  "query": {"tables": ["title","movie_companies"],
            "filters": [{"table":"title","col":"production_year","op":">=","int":1990}]},
  "seed": 42}'
BIN_RESP=$(echo "$BIN_REQ" | "$WORKDIR/ncbin" -addr "http://$ADDR")
echo "$BIN_RESP"
BIN_EST=$(echo "$BIN_RESP" | sed -n 's/.*"est":\([0-9.eE+-]*\).*/\1/p')
if [[ -z "$BIN_EST" ]]; then
    echo "no estimate in binary response" >&2
    exit 1
fi
# The same seeded query through the binary protocol must produce the exact
# same estimate the JSON protocol produced above — the wire format must not
# perturb results, coalesced or not.
if [[ "$BIN_EST" != "$EST" ]]; then
    echo "binary estimate $BIN_EST != JSON estimate $EST" >&2
    exit 1
fi
echo "binary estimate $BIN_EST matches JSON estimate exactly"

echo "=== metrics"
curl -sf "http://$ADDR/metrics" | grep -E 'neurocard_estimate_queries_total|neurocard_sessions' | head -4
curl -sf "http://$ADDR/metrics" | grep -q 'neurocard_binary_requests_total 1'
curl -sf "http://$ADDR/metrics" | grep -q 'neurocard_slo_p99_target_seconds'
curl -sf "http://$ADDR/metrics" | grep -q 'neurocard_fused_batch_size_count'
echo "binary-protocol and coalescer metrics present"

echo "e2e smoke OK"
