#!/usr/bin/env bash
# End-to-end serving smoke test: train a tiny synthetic model, save a
# full-estimator checkpoint, start the serving daemon, assert that a
# POST /v1/estimate round trip returns a finite positive cardinality, and
# assert that SIGTERM drains in-flight requests before the daemon exits 0.
# A second act restarts the daemon with -journal, acknowledges an ingested
# row, kills the process with SIGKILL, and asserts the row is replayed and
# absorbed into a refreshed model generation on restart.
# Run from the repository root; used by the CI e2e-smoke job.
set -euo pipefail

ADDR="${NEUROCARDD_ADDR:-127.0.0.1:18642}"
WORKDIR="$(mktemp -d)"
MODELS="$WORKDIR/models"
mkdir -p "$MODELS"

cleanup() {
    [[ -n "${DAEMON_PID:-}" ]] && kill "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "=== training tiny model + writing checkpoint"
go run ./cmd/neurocard -scale 0.05 -tuples 4096 -hidden 48 -embed 8 \
    -psamples 64 -workers 2 -noeval -save "$MODELS/joblight.ckpt"

echo "=== training two-shard fleet + writing manifest"
go run ./cmd/neurocard -scale 0.05 -tuples 4096 -hidden 48 -embed 8 \
    -psamples 64 -workers 2 -noeval \
    -shards 2 -logical fleet -save-shards "$MODELS"
test -f "$MODELS/fleet.manifest.json"
test -f "$MODELS/fleet-s0.ckpt"
test -f "$MODELS/fleet-s1.ckpt"

echo "=== starting neurocardd on $ADDR"
go build -o "$WORKDIR/neurocardd" ./cmd/neurocardd
# The fault-tolerance flags ride along to prove they parse and serve.
"$WORKDIR/neurocardd" -addr "$ADDR" -models "$MODELS" -load joblight \
    -load-manifest fleet -request-timeout 30s -breaker-cooldown 2s &
DAEMON_PID=$!

# Readiness probe: /readyz answers 503 until the model is loaded.
for i in $(seq 1 50); do
    if curl -sf "http://$ADDR/readyz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "daemon exited early" >&2
        exit 1
    fi
    sleep 0.2
done

echo "=== health surfaces"
curl -sf "http://$ADDR/livez" | grep -q '"status":"alive"'
READY=$(curl -sf "http://$ADDR/readyz")
echo "$READY"
echo "$READY" | grep -q '"ready":true'
echo "$READY" | grep -q '"degraded":false'
HEALTH=$(curl -sf "http://$ADDR/healthz")
echo "$HEALTH"
echo "$HEALTH" | grep -q '"ready":true'

echo "=== single estimate round trip"
RESP=$(curl -sf "http://$ADDR/v1/estimate" -d '{
  "query": {"tables": ["title","movie_companies"],
            "filters": [{"table":"title","col":"production_year","op":">=","int":1990}]},
  "seed": 42}')
echo "$RESP"

EST=$(echo "$RESP" | sed -n 's/.*"est":\([0-9.eE+-]*\).*/\1/p')
if [[ -z "$EST" ]]; then
    echo "no estimate in response" >&2
    exit 1
fi
# Finite positive check (rejects 0, negatives, NaN, Inf — none of which
# survive the sed extraction or the awk comparison).
awk -v est="$EST" 'BEGIN { exit !(est > 0 && est < 1e30) }'
echo "estimate $EST is finite and positive"

echo "=== disjunctive (OR group) estimate round trip"
OR_RESP=$(curl -sf "http://$ADDR/v1/estimate" -d '{
  "query": {"tables": ["title"],
            "filters": [{"table":"title","col":"production_year","op":">=","int":2000,
                         "or": [{"op":"<","int":1950}]}]},
  "seed": 42}')
echo "$OR_RESP"
OR_EST=$(echo "$OR_RESP" | sed -n 's/.*"est":\([0-9.eE+-]*\).*/\1/p')
if [[ -z "$OR_EST" ]]; then
    echo "no estimate in OR response" >&2
    exit 1
fi
awk -v est="$OR_EST" 'BEGIN { exit !(est > 0 && est < 1e30) }'
echo "OR estimate $OR_EST is finite and positive"

echo "=== null-aware (IS NULL) estimate round trip"
NULL_RESP=$(curl -sf "http://$ADDR/v1/estimate" -d '{
  "query": {"tables": ["title"],
            "filters": [{"table":"title","col":"production_year","op":"IS NULL"}]},
  "seed": 42}')
echo "$NULL_RESP"
NULL_EST=$(echo "$NULL_RESP" | sed -n 's/.*"est":\([0-9.eE+-]*\).*/\1/p')
if [[ -z "$NULL_EST" ]]; then
    echo "no estimate in IS NULL response" >&2
    exit 1
fi
awk -v est="$NULL_EST" 'BEGIN { exit !(est > 0 && est < 1e30) }'
echo "IS NULL estimate $NULL_EST is finite and positive"

echo "=== batch estimate round trip"
BATCH=$(curl -sf "http://$ADDR/v1/estimate" -d '{
  "queries": [{"tables": ["title"]},
              {"tables": ["title","movie_keyword"],
               "filters": [{"table":"title","col":"kind_id","op":"=","int":1}]}],
  "seed": 7}')
echo "$BATCH"
echo "$BATCH" | grep -q '"count":2'

echo "=== binary protocol round trip (ncbin vs curl, same seeded request)"
go build -o "$WORKDIR/ncbin" ./cmd/ncbin
BIN_REQ='{
  "query": {"tables": ["title","movie_companies"],
            "filters": [{"table":"title","col":"production_year","op":">=","int":1990}]},
  "seed": 42}'
BIN_RESP=$(echo "$BIN_REQ" | "$WORKDIR/ncbin" -addr "http://$ADDR")
echo "$BIN_RESP"
BIN_EST=$(echo "$BIN_RESP" | sed -n 's/.*"est":\([0-9.eE+-]*\).*/\1/p')
if [[ -z "$BIN_EST" ]]; then
    echo "no estimate in binary response" >&2
    exit 1
fi
# The same seeded query through the binary protocol must produce the exact
# same estimate the JSON protocol produced above — the wire format must not
# perturb results, coalesced or not.
if [[ "$BIN_EST" != "$EST" ]]; then
    echo "binary estimate $BIN_EST != JSON estimate $EST" >&2
    exit 1
fi
echo "binary estimate $BIN_EST matches JSON estimate exactly"

echo "=== metrics"
# Buffer the exposition once: piping curl straight into `head` trips
# pipefail when head closes the pipe before curl finishes writing.
METRICS=$(curl -sf "http://$ADDR/metrics")
echo "$METRICS" | { grep -E 'neurocard_estimate_queries_total|neurocard_sessions' || true; } | head -4
echo "$METRICS" | grep -q 'neurocard_binary_requests_total 1'
echo "$METRICS" | grep -q 'neurocard_slo_p99_target_seconds'
echo "$METRICS" | grep -q 'neurocard_fused_batch_size_count'
echo "binary-protocol and coalescer metrics present"

echo "=== fault-tolerance surfaces"
# Malformed client deadline is rejected up front.
DL_STATUS=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/v1/estimate" \
    -H 'X-Deadline-Ms: soon' -d '{"query": {"tables": ["title"]}}')
if [[ "$DL_STATUS" != "400" ]]; then
    echo "bad X-Deadline-Ms answered $DL_STATUS, want 400" >&2
    exit 1
fi
# A healthy closed breaker and the fault counters are on /metrics.
METRICS=$(curl -sf "http://$ADDR/metrics")
echo "$METRICS" | grep -q 'neurocard_breaker_state{model="joblight"} 0'
echo "$METRICS" | grep -q 'neurocard_request_timeouts_total'
echo "$METRICS" | grep -q 'neurocard_fallback_total'
echo "$METRICS" | grep -q 'neurocard_checkpoints_quarantined_total 0'
echo "breaker and fault counters present"
# This daemon runs without -journal, so the ingest route must refuse with 503
# rather than acknowledge rows it cannot make durable.
ING_STATUS=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/v1/models/joblight/ingest" \
    -d '{"tables":[{"table":"movie_keyword","columns":["movie_id","keyword_id"],"rows":[[1,1]]}]}')
if [[ "$ING_STATUS" != "503" ]]; then
    echo "ingest without -journal answered $ING_STATUS, want 503" >&2
    exit 1
fi
echo "ingest without a journal refused with 503"

echo "=== sharded logical model: routed estimate round trip"
# All six tables span both shards of any two-way partition, so this
# estimate exercises the planner split plus the cross-shard combiner.
FLEET_REQ='{
  "model": "fleet",
  "query": {"tables": ["title","cast_info","movie_companies","movie_info","movie_keyword","movie_info_idx"],
            "filters": [{"table":"title","col":"production_year","op":">=","int":1990}]},
  "seed": 42}'
FLEET_RESP=$(curl -sf "http://$ADDR/v1/estimate" -d "$FLEET_REQ")
echo "$FLEET_RESP"
FLEET_EST=$(echo "$FLEET_RESP" | sed -n 's/.*"est":\([0-9.eE+-]*\).*/\1/p')
if [[ -z "$FLEET_EST" ]]; then
    echo "no estimate in sharded response" >&2
    exit 1
fi
awk -v est="$FLEET_EST" 'BEGIN { exit !(est > 0 && est < 1e30) }'
echo "sharded estimate $FLEET_EST is finite and positive"
METRICS=$(curl -sf "http://$ADDR/metrics")
echo "$METRICS" | grep -q 'neurocard_shard_routed_total{logical="fleet",shard="fleet-s0"}'
echo "$METRICS" | grep -q 'neurocard_shard_routed_total{logical="fleet",shard="fleet-s1"}'
echo "$METRICS" | grep -q 'neurocard_logical_queries_total'
echo "per-shard routing counters present"

echo "=== sharded logical model: per-shard hot swap keeps seeded estimates"
curl -sf -X POST "http://$ADDR/v1/models/fleet-s1/load" >/dev/null
SWAP_RESP=$(curl -sf "http://$ADDR/v1/estimate" -d "$FLEET_REQ")
SWAP_EST=$(echo "$SWAP_RESP" | sed -n 's/.*"est":\([0-9.eE+-]*\).*/\1/p')
if [[ "$SWAP_EST" != "$FLEET_EST" ]]; then
    echo "sharded estimate changed across identical hot swap: $SWAP_EST != $FLEET_EST" >&2
    exit 1
fi
echo "seeded sharded estimate unchanged across shard hot swap"

echo "=== sharded logical model: DELETE + reload round trip"
curl -sf -X DELETE "http://$ADDR/v1/models/fleet" | grep -q '"unloaded":"fleet"'
GONE_STATUS=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/v1/estimate" -d "$FLEET_REQ")
if [[ "$GONE_STATUS" != "404" ]]; then
    echo "estimate on unloaded fleet answered $GONE_STATUS, want 404" >&2
    exit 1
fi
curl -sf -X POST "http://$ADDR/v1/models/fleet/load" -d '{"manifest": true}' >/dev/null
RELOAD_RESP=$(curl -sf "http://$ADDR/v1/estimate" -d "$FLEET_REQ")
RELOAD_EST=$(echo "$RELOAD_RESP" | sed -n 's/.*"est":\([0-9.eE+-]*\).*/\1/p')
if [[ "$RELOAD_EST" != "$FLEET_EST" ]]; then
    echo "sharded estimate changed across unload/reload: $RELOAD_EST != $FLEET_EST" >&2
    exit 1
fi
echo "fleet unloaded (404), reloaded from manifest, estimate unchanged"

echo "=== SIGTERM drains in-flight requests and exits 0"
# Launch a large batch so a request is very likely mid-flight when the
# signal lands, then assert both that the response completed and that the
# daemon exited cleanly.
Q='{"tables":["title","movie_companies"],"filters":[{"table":"title","col":"production_year","op":">=","int":1990}]}'
QS="$Q"
for i in $(seq 2 512); do QS="$QS,$Q"; done
printf '{"queries":[%s],"seed":7}' "$QS" > "$WORKDIR/big_batch.json"
curl -s "http://$ADDR/v1/estimate" -d @"$WORKDIR/big_batch.json" \
    -o "$WORKDIR/inflight.json" &
CURL_PID=$!
sleep 0.05
kill -TERM "$DAEMON_PID"
set +e
wait "$DAEMON_PID"
DAEMON_RC=$?
wait "$CURL_PID"
CURL_RC=$?
set -e
DAEMON_PID=""
if [[ "$CURL_RC" != "0" ]]; then
    echo "in-flight request failed during graceful shutdown (curl rc $CURL_RC)" >&2
    exit 1
fi
grep -q '"count":512' "$WORKDIR/inflight.json"
if [[ "$DAEMON_RC" != "0" ]]; then
    echo "daemon exited $DAEMON_RC after SIGTERM, want 0" >&2
    exit 1
fi
echo "in-flight batch completed and daemon exited 0"

echo "=== online ingest: durable ack survives kill -9, replay + refresh on restart"
JOURNALS="$WORKDIR/journals"
# Act one: refresh disabled, so the acknowledged rows are still only in the
# journal when the process dies — the restart exercises the pure replay path.
"$WORKDIR/neurocardd" -addr "$ADDR" -models "$MODELS" -load joblight \
    -journal "$JOURNALS" -max-staleness 1h -refresh-interval 0 &
DAEMON_PID=$!
for i in $(seq 1 50); do
    curl -sf "http://$ADDR/readyz" >/dev/null 2>&1 && break
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "ingest daemon exited early" >&2
        exit 1
    fi
    sleep 0.2
done

# Ingest validates values against the frozen column dictionaries, and the
# synthetic generator leaves some title ids without keyword rows — scan low
# movie ids until one acks. A 400 means "not in this model's dictionary";
# anything else is a real failure.
ACKED_MID=""
for MID in $(seq 1 40); do
    ING_STATUS=$(curl -s -o "$WORKDIR/ingest.json" -w '%{http_code}' \
        "http://$ADDR/v1/models/joblight/ingest" \
        -d "{\"tables\":[{\"table\":\"movie_keyword\",\"columns\":[\"movie_id\",\"keyword_id\"],\"rows\":[[$MID,1]]}]}")
    if [[ "$ING_STATUS" == "200" ]]; then
        ACKED_MID=$MID
        break
    fi
    if [[ "$ING_STATUS" != "400" ]]; then
        echo "ingest movie_id=$MID answered $ING_STATUS, want 200 or 400" >&2
        cat "$WORKDIR/ingest.json" >&2
        exit 1
    fi
done
if [[ -z "$ACKED_MID" ]]; then
    echo "no ingestible movie_id found in 1..40" >&2
    exit 1
fi
cat "$WORKDIR/ingest.json"
grep -q '"durable":true' "$WORKDIR/ingest.json"
grep -q '"rows":1' "$WORKDIR/ingest.json"
# Buffer the exposition (grep -q closing the pipe early trips pipefail).
METRICS=$(curl -sf "http://$ADDR/metrics")
echo "$METRICS" | grep -q 'neurocard_ingest_staleness_rows{model="joblight"} 1'
echo "row for movie_id=$ACKED_MID durably acknowledged and pending"

# kill -9: no drain, no journal close. The fsync-before-ack contract means the
# row must still be there when a new process replays the journal.
kill -9 "$DAEMON_PID"
set +e
wait "$DAEMON_PID"
set -e
DAEMON_PID=""

# Act two: restart with the background refresh armed. Replay happens before
# the listener opens, then the refresh loop absorbs the replayed row into a
# new model generation.
"$WORKDIR/neurocardd" -addr "$ADDR" -models "$MODELS" -load joblight \
    -journal "$JOURNALS" -max-staleness 1h \
    -refresh-interval 250ms -refresh-tuples 0 > "$WORKDIR/restart.log" 2>&1 &
DAEMON_PID=$!
for i in $(seq 1 50); do
    curl -sf "http://$ADDR/readyz" >/dev/null 2>&1 && break
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "restarted daemon exited early" >&2
        cat "$WORKDIR/restart.log" >&2
        exit 1
    fi
    sleep 0.2
done
grep -q '1 rows replayed' "$WORKDIR/restart.log"
echo "journal replayed the acknowledged row after kill -9"

# The refresh loop hot-swaps a new generation (data_generation 1 -> 2).
GEN_OK=""
for i in $(seq 1 50); do
    METRICS=$(curl -sf "http://$ADDR/metrics" || true)
    if echo "$METRICS" | grep -q 'neurocard_data_generation{model="joblight"} 2'; then
        GEN_OK=1
        break
    fi
    sleep 0.2
done
if [[ -z "$GEN_OK" ]]; then
    echo "refresh never produced data generation 2" >&2
    curl -s "http://$ADDR/metrics" | grep 'neurocard_\(data_generation\|refresh\|ingest\)' >&2 || true
    exit 1
fi
POST_RESP=$(curl -sf "http://$ADDR/v1/estimate" -d '{
  "query": {"tables": ["title","movie_keyword"],
            "filters": [{"table":"movie_keyword","col":"keyword_id","op":"=","int":1}]},
  "seed": 42}')
echo "$POST_RESP"
POST_EST=$(echo "$POST_RESP" | sed -n 's/.*"est":\([0-9.eE+-]*\).*/\1/p')
if [[ -z "$POST_EST" ]]; then
    echo "no estimate from the refreshed generation" >&2
    exit 1
fi
awk -v est="$POST_EST" 'BEGIN { exit !(est > 0 && est < 1e30) }'
echo "refreshed generation serves: estimate $POST_EST is finite and positive"
kill -TERM "$DAEMON_PID"
set +e
wait "$DAEMON_PID"
INGEST_RC=$?
set -e
DAEMON_PID=""
if [[ "$INGEST_RC" != "0" ]]; then
    echo "ingest daemon exited $INGEST_RC after SIGTERM, want 0" >&2
    exit 1
fi
echo "ingest daemon drained and exited 0"

echo "e2e smoke OK"
