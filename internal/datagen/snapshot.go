package datagen

import (
	"fmt"
	"sort"

	"neurocard/internal/schema"
	"neurocard/internal/table"
)

// factTables lists the tables partitioned alongside title (those carrying a
// movie_id foreign key). Dimension tables are stable across snapshots.
var factTables = map[string]bool{
	"cast_info":       true,
	"movie_companies": true,
	"movie_info":      true,
	"movie_keyword":   true,
	"movie_info_idx":  true,
	"aka_title":       true,
}

// Snapshots splits the dataset into n time-ordered snapshots by
// range-partitioning title on production_year (§7.6's update protocol):
// snapshot i contains the titles of partitions 0..i and the fact rows
// referencing them. All snapshots share the full dataset's dictionaries
// (table.Filter), so one estimator can be incrementally updated across
// ingests.
func (d *Dataset) Snapshots(n int) ([]*schema.Schema, error) {
	if n < 1 {
		return nil, fmt.Errorf("datagen: need at least one partition, got %d", n)
	}
	years := append([]int(nil), d.titleYears...)
	sort.Ints(years)
	// Year boundary of partition i: the year at quantile (i+1)/n.
	bounds := make([]int, n)
	for i := 0; i < n; i++ {
		idx := (i + 1) * len(years) / n
		if idx >= len(years) {
			idx = len(years) - 1
		}
		bounds[i] = years[idx]
	}
	bounds[n-1] = years[len(years)-1] + 1 // final snapshot holds everything

	title := d.Schema.Table("title")
	idCol := title.MustCol("id")

	snaps := make([]*schema.Schema, n)
	for i := 0; i < n; i++ {
		maxYear := bounds[i]
		keepTitle := make([]bool, title.NumRows())
		keepIDs := make(map[int64]bool)
		for row := 0; row < title.NumRows(); row++ {
			if d.titleYears[row] <= maxYear {
				keepTitle[row] = true
				if id, ok := idCol.Int(row); ok {
					keepIDs[id] = true
				}
			}
		}
		var tables []*table.Table
		for _, tname := range d.Schema.Tables() {
			t := d.Schema.Table(tname)
			switch {
			case tname == "title":
				tables = append(tables, t.Filter(func(row int) bool { return keepTitle[row] }))
			case factTables[tname]:
				mid := t.MustCol("movie_id")
				tables = append(tables, t.Filter(func(row int) bool {
					v, ok := mid.Int(row)
					return ok && keepIDs[v]
				}))
			default:
				tables = append(tables, t)
			}
		}
		snap, err := schema.New(tables, d.root, d.edges)
		if err != nil {
			return nil, fmt.Errorf("datagen: snapshot %d: %w", i, err)
		}
		snaps[i] = snap
	}
	return snaps, nil
}
