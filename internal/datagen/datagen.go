// Package datagen synthesizes the IMDB-like datasets the evaluation runs
// on. The real IMDB snapshot is unavailable in this environment, so the
// generator reproduces the property the paper's experiments depend on:
// strong inter-column and inter-table correlations (year↔kind↔company
// type↔info type, skewed Zipf fanouts, correlated NULLs) that
// independence-assuming estimators systematically mis-estimate (§7.1;
// DESIGN.md records the substitution).
//
// Two schemas are produced, mirroring the paper's workloads:
//
//   - JOBLight: the 6-table star schema (title + 5 fact tables joining on
//     movie_id) used by JOB-light and JOB-light-ranges.
//   - JOBM: a 16-table snowflake with multi-key joins (dimension tables
//     for persons, companies, keywords, info/kind/role types) used by JOB-M.
//
// Generation is deterministic given Config.Seed. Snapshots partitions the
// database by title.production_year for the §7.6 update study, preserving
// dictionaries so models can be updated incrementally.
package datagen

import (
	"fmt"
	"math/rand"

	"neurocard/internal/schema"
	"neurocard/internal/table"
	"neurocard/internal/value"
)

// Config controls dataset size and randomness.
type Config struct {
	Seed int64
	// Scale multiplies every table's row count; 1.0 ≈ 4k titles with ~30
	// child rows each (full outer join ≈ 10^7 rows).
	Scale float64
}

// DefaultConfig returns the benchmark-scale configuration.
func DefaultConfig() Config { return Config{Seed: 42, Scale: 1.0} }

// Dataset bundles a generated schema with workload metadata.
type Dataset struct {
	Schema *schema.Schema
	// ContentCols lists the filterable columns per table (the columns the
	// estimator models and workloads place predicates on).
	ContentCols map[string][]string
	// titleYears caches production years by title row for partitioning.
	titleYears []int
	// edges replays schema construction for snapshots.
	edges []schema.Edge
	root  string
}

const (
	minYear = 1930
	maxYear = 2025
	nKinds  = 7
	nRoles  = 11
	nInfoMI = 70 // info_type ids used by movie_info
	nInfoII = 14 // info_type ids used by movie_info_idx (99..112)
)

// gen wraps the RNG with the correlated-choice helpers.
type gen struct {
	rng *rand.Rand
}

func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// year draws a production year skewed toward recent decades.
func (g *gen) year() int {
	// Mixture: 70% recent (1990+), 30% uniform over the full range.
	if g.rng.Float64() < 0.7 {
		span := maxYear - 1990
		return 1990 + int(float64(span)*g.rng.Float64()*g.rng.Float64()) // quadratic skew to newest
	}
	return minYear + g.rng.Intn(maxYear-minYear+1)
}

// kindFor correlates kind with year: older titles are mostly kind 1
// (movie); newer ones spread across tv kinds.
func (g *gen) kindFor(year int) int {
	recent := float64(year-minYear) / float64(maxYear-minYear)
	switch {
	case g.rng.Float64() > recent: // old: movie-heavy
		return 1
	case g.rng.Float64() < 0.5:
		return 2 + g.rng.Intn(2) // tv series / episode
	default:
		return 1 + g.rng.Intn(nKinds)
	}
}

// zipf draws from [1, n] with a Zipf-ish skew.
func (g *gen) zipf(n int, s float64) int {
	if n <= 1 {
		return 1
	}
	z := rand.NewZipf(g.rng, s, 1, uint64(n-1))
	return int(z.Uint64()) + 1
}

// pcode renders a phonetic-code-like string ("A123"…"Z623") correlated with
// the given seed value so string-range filters carry signal.
func (g *gen) pcode(corr int) string {
	letter := byte('A' + (corr+g.rng.Intn(6))%26)
	return fmt.Sprintf("%c%03d", letter, g.rng.Intn(624))
}

func scaled(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 10 {
		n = 10
	}
	return n
}

type titleRow struct {
	id      int
	kind    int
	year    int
	episode int // 0 = NULL
	season  int // 0 = NULL
	pcode   string
	nullPC  bool
	popular float64 // latent popularity driving fanouts
}

// generateTitles creates the shared title dimension.
func generateTitles(g *gen, n int) []titleRow {
	rows := make([]titleRow, n)
	for i := range rows {
		y := g.year()
		k := g.kindFor(y)
		tr := titleRow{id: i + 1, kind: k, year: y}
		// Episodes: only tv kinds carry episode/season numbers.
		if k >= 3 && g.rng.Float64() < 0.8 {
			tr.season = 1 + g.rng.Intn(15)
			tr.episode = 1 + g.rng.Intn(60)
		}
		tr.nullPC = g.rng.Float64() < 0.1
		tr.pcode = g.pcode(k * (y % 7))
		// Popularity: recent movies are disproportionately popular.
		recent := float64(y-minYear) / float64(maxYear-minYear)
		tr.popular = 0.25 + 1.5*recent*g.rng.Float64()
		if k == 1 {
			tr.popular *= 1.4
		}
		rows[i] = tr
	}
	return rows
}

func buildTitle(titles []titleRow) *table.Table {
	b := table.MustBuilder("title", []table.ColSpec{
		{Name: "id", Kind: value.KindInt},
		{Name: "kind_id", Kind: value.KindInt},
		{Name: "production_year", Kind: value.KindInt},
		{Name: "episode_nr", Kind: value.KindInt},
		{Name: "season_nr", Kind: value.KindInt},
		{Name: "phonetic_code", Kind: value.KindStr},
	})
	for _, tr := range titles {
		ep, se, pc := value.Null, value.Null, value.Null
		if tr.episode > 0 {
			ep = value.Int(int64(tr.episode))
			se = value.Int(int64(tr.season))
		}
		if !tr.nullPC {
			pc = value.Str(tr.pcode)
		}
		b.MustAppend(value.Int(int64(tr.id)), value.Int(int64(tr.kind)),
			value.Int(int64(tr.year)), ep, se, pc)
	}
	return b.MustBuild()
}

// fanout maps popularity to a per-title child row count with the given mean.
func (g *gen) fanout(popular float64, mean float64, zeroProb float64) int {
	if g.rng.Float64() < zeroProb {
		return 0
	}
	f := popular * mean * (0.5 + g.rng.Float64())
	n := int(f)
	if g.rng.Float64() < f-float64(n) {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}
