package datagen

import (
	"fmt"

	"neurocard/internal/schema"
	"neurocard/internal/table"
	"neurocard/internal/value"
)

// JOBM generates the 16-table snowflake schema for the JOB-M workload:
// the JOB-light star plus dimension tables reached through multiple join
// keys per fact table (cast_info joins name, role_type, and char_name in
// addition to title; movie_companies joins company_name and company_type;
// movie_info/movie_info_idx join their info_type dimensions; movie_keyword
// joins keyword; aka_title adds a sixth fact table).
//
// info_type is joined by both movie_info and movie_info_idx in real IMDB,
// which would form a cycle; per §2 ("If a query joins a table multiple
// times, our framework duplicates that table in the schema") it appears
// twice as info_type_mi and info_type_mii.
func JOBM(cfg Config) (*Dataset, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	g := &gen{rng: newRNG(cfg.Seed + 1)}
	titles := generateTitles(g, scaled(2500, cfg.Scale))

	nCompanies := scaled(600, cfg.Scale)
	nKeywords := scaled(1200, cfg.Scale)

	title := buildTitle(titles)
	castInfo := buildCastInfo(g, titles, true)
	nPersons := len(titles) * 3 / 4
	nChars := len(titles) / 2
	movieCompanies := buildMovieCompanies(g, titles, nCompanies)
	movieInfo := buildMovieInfo(g, titles)
	movieKeyword := buildMovieKeyword(g, titles, nKeywords)
	movieInfoIdx := buildMovieInfoIdx(g, titles)
	akaTitle := buildAkaTitle(g, titles)

	kindType := buildKindType()
	roleType := buildRoleType()
	name := buildName(g, nPersons)
	charName := buildCharName(g, nChars)
	companyName := buildCompanyName(g, nCompanies)
	companyType := buildCompanyType()
	infoTypeMI := buildInfoType("info_type_mi", 1, nInfoMI)
	infoTypeMII := buildInfoType("info_type_mii", 99, nInfoII)

	edges := []schema.Edge{
		{LeftTable: "title", LeftCol: "id", RightTable: "cast_info", RightCol: "movie_id"},
		{LeftTable: "title", LeftCol: "id", RightTable: "movie_companies", RightCol: "movie_id"},
		{LeftTable: "title", LeftCol: "id", RightTable: "movie_info", RightCol: "movie_id"},
		{LeftTable: "title", LeftCol: "id", RightTable: "movie_keyword", RightCol: "movie_id"},
		{LeftTable: "title", LeftCol: "id", RightTable: "movie_info_idx", RightCol: "movie_id"},
		{LeftTable: "title", LeftCol: "id", RightTable: "aka_title", RightCol: "movie_id"},
		{LeftTable: "title", LeftCol: "kind_id", RightTable: "kind_type", RightCol: "id"},
		{LeftTable: "cast_info", LeftCol: "person_id", RightTable: "name", RightCol: "id"},
		{LeftTable: "cast_info", LeftCol: "role_id", RightTable: "role_type", RightCol: "id"},
		{LeftTable: "cast_info", LeftCol: "person_role_id", RightTable: "char_name", RightCol: "id"},
		{LeftTable: "movie_companies", LeftCol: "company_id", RightTable: "company_name", RightCol: "id"},
		{LeftTable: "movie_companies", LeftCol: "company_type_id", RightTable: "company_type", RightCol: "id"},
		{LeftTable: "movie_info", LeftCol: "info_type_id", RightTable: "info_type_mi", RightCol: "id"},
		{LeftTable: "movie_info_idx", LeftCol: "info_type_id", RightTable: "info_type_mii", RightCol: "id"},
		{LeftTable: "movie_keyword", LeftCol: "keyword_id", RightTable: "keyword", RightCol: "id"},
	}
	keyword := buildKeyword(g, nKeywords)
	sch, err := schema.New(
		[]*table.Table{
			title, castInfo, movieCompanies, movieInfo, movieKeyword, movieInfoIdx,
			akaTitle, kindType, roleType, name, charName, companyName, companyType,
			infoTypeMI, infoTypeMII, keyword,
		},
		"title", edges,
	)
	if err != nil {
		return nil, err
	}
	years := make([]int, len(titles))
	for i, tr := range titles {
		years[i] = tr.year
	}
	return &Dataset{
		Schema: sch,
		ContentCols: map[string][]string{
			"title":           {"production_year", "episode_nr", "season_nr", "phonetic_code"},
			"cast_info":       {"nr_order"},
			"movie_companies": {},
			"movie_info":      {"info_val"},
			"movie_keyword":   {},
			"movie_info_idx":  {"info_val"},
			"aka_title":       {"kind_id"},
			"kind_type":       {"kind"},
			"role_type":       {"role"},
			"name":            {"gender", "name_pcode"},
			"char_name":       {"name_pcode"},
			"company_name":    {"country_code"},
			"company_type":    {"kind"},
			"info_type_mi":    {"info"},
			"info_type_mii":   {"info"},
			"keyword":         {"phonetic_code"},
		},
		titleYears: years,
		edges:      edges,
		root:       "title",
	}, nil
}

func buildAkaTitle(g *gen, titles []titleRow) *table.Table {
	b := table.MustBuilder("aka_title", []table.ColSpec{
		{Name: "movie_id", Kind: value.KindInt},
		{Name: "kind_id", Kind: value.KindInt},
	})
	for _, tr := range titles {
		// Popular international titles get aliases.
		if g.rng.Float64() < 0.25*tr.popular {
			n := 1 + g.rng.Intn(3)
			for j := 0; j < n; j++ {
				b.MustAppend(value.Int(int64(tr.id)), value.Int(int64(tr.kind)))
			}
		}
	}
	return b.MustBuild()
}

func buildKindType() *table.Table {
	b := table.MustBuilder("kind_type", []table.ColSpec{
		{Name: "id", Kind: value.KindInt},
		{Name: "kind", Kind: value.KindStr},
	})
	kinds := []string{"movie", "tv movie", "tv series", "episode", "video movie", "video game", "short"}
	for i, k := range kinds {
		b.MustAppend(value.Int(int64(i+1)), value.Str(k))
	}
	return b.MustBuild()
}

func buildRoleType() *table.Table {
	b := table.MustBuilder("role_type", []table.ColSpec{
		{Name: "id", Kind: value.KindInt},
		{Name: "role", Kind: value.KindStr},
	})
	roles := []string{"actor", "actress", "producer", "writer", "cinematographer",
		"composer", "costume designer", "director", "editor", "miscellaneous crew", "guest"}
	for i, r := range roles {
		b.MustAppend(value.Int(int64(i+1)), value.Str(r))
	}
	return b.MustBuild()
}

func buildName(g *gen, n int) *table.Table {
	b := table.MustBuilder("name", []table.ColSpec{
		{Name: "id", Kind: value.KindInt},
		{Name: "gender", Kind: value.KindStr},
		{Name: "name_pcode", Kind: value.KindStr},
	})
	for i := 1; i <= n; i++ {
		gender := value.Str("m")
		switch {
		case g.rng.Float64() < 0.35:
			gender = value.Str("f")
		case g.rng.Float64() < 0.1:
			gender = value.Null
		}
		b.MustAppend(value.Int(int64(i)), gender, value.Str(g.pcode(i%13)))
	}
	return b.MustBuild()
}

func buildCharName(g *gen, n int) *table.Table {
	b := table.MustBuilder("char_name", []table.ColSpec{
		{Name: "id", Kind: value.KindInt},
		{Name: "name_pcode", Kind: value.KindStr},
	})
	for i := 1; i <= n; i++ {
		pc := value.Value(value.Str(g.pcode(i % 9)))
		if g.rng.Float64() < 0.15 {
			pc = value.Null
		}
		b.MustAppend(value.Int(int64(i)), pc)
	}
	return b.MustBuild()
}

func buildCompanyName(g *gen, n int) *table.Table {
	b := table.MustBuilder("company_name", []table.ColSpec{
		{Name: "id", Kind: value.KindInt},
		{Name: "country_code", Kind: value.KindStr},
	})
	countries := []string{"[us]", "[gb]", "[de]", "[fr]", "[jp]", "[in]", "[it]", "[ca]", "[es]", "[au]"}
	for i := 1; i <= n; i++ {
		// Low-id (frequent) companies are overwhelmingly US; the tail is
		// international — correlating country with join frequency.
		var cc value.Value
		if i <= n/4 {
			cc = value.Str(countries[g.zipf(3, 2.0)-1])
		} else {
			cc = value.Str(countries[g.rng.Intn(len(countries))])
		}
		if g.rng.Float64() < 0.05 {
			cc = value.Null
		}
		b.MustAppend(value.Int(int64(i)), cc)
	}
	return b.MustBuild()
}

func buildCompanyType() *table.Table {
	b := table.MustBuilder("company_type", []table.ColSpec{
		{Name: "id", Kind: value.KindInt},
		{Name: "kind", Kind: value.KindStr},
	})
	b.MustAppend(value.Int(1), value.Str("production companies"))
	b.MustAppend(value.Int(2), value.Str("distributors"))
	return b.MustBuild()
}

func buildInfoType(name string, lo, n int) *table.Table {
	b := table.MustBuilder(name, []table.ColSpec{
		{Name: "id", Kind: value.KindInt},
		{Name: "info", Kind: value.KindStr},
	})
	for i := 0; i < n; i++ {
		b.MustAppend(value.Int(int64(lo+i)), value.Str(fmt.Sprintf("info-%03d", lo+i)))
	}
	return b.MustBuild()
}

func buildKeyword(g *gen, n int) *table.Table {
	b := table.MustBuilder("keyword", []table.ColSpec{
		{Name: "id", Kind: value.KindInt},
		{Name: "phonetic_code", Kind: value.KindStr},
	})
	for i := 1; i <= n; i++ {
		b.MustAppend(value.Int(int64(i)), value.Str(g.pcode(i%17)))
	}
	return b.MustBuild()
}
