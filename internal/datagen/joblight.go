package datagen

import (
	"neurocard/internal/schema"
	"neurocard/internal/table"
	"neurocard/internal/value"
)

// JOBLight generates the 6-table star schema of the JOB-light workloads:
// title at the root, with cast_info, movie_companies, movie_info,
// movie_keyword, and movie_info_idx all joining on title.id = movie_id.
func JOBLight(cfg Config) (*Dataset, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	g := &gen{rng: newRNG(cfg.Seed)}
	titles := generateTitles(g, scaled(4000, cfg.Scale))

	title := buildTitle(titles)
	castInfo := buildCastInfo(g, titles, false)
	movieCompanies := buildMovieCompanies(g, titles, scaled(800, cfg.Scale))
	movieInfo := buildMovieInfo(g, titles)
	movieKeyword := buildMovieKeyword(g, titles, scaled(1500, cfg.Scale))
	movieInfoIdx := buildMovieInfoIdx(g, titles)

	edges := []schema.Edge{
		{LeftTable: "title", LeftCol: "id", RightTable: "cast_info", RightCol: "movie_id"},
		{LeftTable: "title", LeftCol: "id", RightTable: "movie_companies", RightCol: "movie_id"},
		{LeftTable: "title", LeftCol: "id", RightTable: "movie_info", RightCol: "movie_id"},
		{LeftTable: "title", LeftCol: "id", RightTable: "movie_keyword", RightCol: "movie_id"},
		{LeftTable: "title", LeftCol: "id", RightTable: "movie_info_idx", RightCol: "movie_id"},
	}
	sch, err := schema.New(
		[]*table.Table{title, castInfo, movieCompanies, movieInfo, movieKeyword, movieInfoIdx},
		"title", edges,
	)
	if err != nil {
		return nil, err
	}
	years := make([]int, len(titles))
	for i, tr := range titles {
		years[i] = tr.year
	}
	return &Dataset{
		Schema: sch,
		ContentCols: map[string][]string{
			"title":           {"kind_id", "production_year", "episode_nr", "season_nr", "phonetic_code"},
			"cast_info":       {"role_id", "nr_order"},
			"movie_companies": {"company_id", "company_type_id"},
			"movie_info":      {"info_type_id", "info_val"},
			"movie_keyword":   {"keyword_id"},
			"movie_info_idx":  {"info_type_id", "info_val"},
		},
		titleYears: years,
		edges:      edges,
		root:       "title",
	}, nil
}

// buildCastInfo emits cast rows whose count tracks popularity and whose
// role distribution correlates with billing order (low nr_order ⇒ lead
// roles). withPersons adds the JOB-M join keys to name/role_type/char_name.
func buildCastInfo(g *gen, titles []titleRow, withPersons bool) *table.Table {
	specs := []table.ColSpec{
		{Name: "movie_id", Kind: value.KindInt},
		{Name: "role_id", Kind: value.KindInt},
		{Name: "nr_order", Kind: value.KindInt},
	}
	nPersons := len(titles) * 3 / 4
	nChars := len(titles) / 2
	if withPersons {
		specs = append(specs,
			table.ColSpec{Name: "person_id", Kind: value.KindInt},
			table.ColSpec{Name: "person_role_id", Kind: value.KindInt},
		)
	}
	b := table.MustBuilder("cast_info", specs)
	for _, tr := range titles {
		n := g.fanout(tr.popular, 8, 0.06)
		for j := 0; j < n; j++ {
			order := j + 1
			// Lead positions are actors/actresses; later ones crew.
			var role int
			switch {
			case order <= 2:
				role = 1 + g.rng.Intn(2) // actor/actress
			case order <= 5:
				role = 1 + g.rng.Intn(4)
			default:
				role = 1 + g.rng.Intn(nRoles)
			}
			row := []value.Value{
				value.Int(int64(tr.id)),
				value.Int(int64(role)),
				value.Int(int64(order)),
			}
			if withPersons {
				// Person popularity is Zipf: stars appear in many casts.
				pid := g.zipf(nPersons, 1.4)
				var prid value.Value = value.Null
				if role <= 2 && g.rng.Float64() < 0.8 {
					prid = value.Int(int64(g.zipf(nChars, 1.3)))
				}
				row = append(row, value.Int(int64(pid)), prid)
			}
			b.MustAppend(row...)
		}
	}
	return b.MustBuild()
}

// buildMovieCompanies correlates company_type with kind (tv kinds skew to
// type 2 = distributor) and company choice with year buckets.
func buildMovieCompanies(g *gen, titles []titleRow, nCompanies int) *table.Table {
	b := table.MustBuilder("movie_companies", []table.ColSpec{
		{Name: "movie_id", Kind: value.KindInt},
		{Name: "company_id", Kind: value.KindInt},
		{Name: "company_type_id", Kind: value.KindInt},
	})
	for _, tr := range titles {
		n := g.fanout(tr.popular, 4, 0.1)
		for j := 0; j < n; j++ {
			ctype := 1
			if tr.kind >= 3 || g.rng.Float64() < 0.3 {
				ctype = 2
			}
			// Era-correlated company pools: modern era uses the low-id
			// (frequent) companies more heavily.
			var cid int
			if tr.year >= 1990 {
				cid = g.zipf(nCompanies, 1.6)
			} else {
				cid = nCompanies/3 + g.zipf(nCompanies*2/3, 1.2)
			}
			if cid > nCompanies {
				cid = nCompanies
			}
			b.MustAppend(value.Int(int64(tr.id)), value.Int(int64(cid)), value.Int(int64(ctype)))
		}
	}
	return b.MustBuild()
}

// buildMovieInfo correlates info_type with kind and info_val with year.
func buildMovieInfo(g *gen, titles []titleRow) *table.Table {
	b := table.MustBuilder("movie_info", []table.ColSpec{
		{Name: "movie_id", Kind: value.KindInt},
		{Name: "info_type_id", Kind: value.KindInt},
		{Name: "info_val", Kind: value.KindInt},
	})
	for _, tr := range titles {
		n := g.fanout(tr.popular, 7, 0.08)
		for j := 0; j < n; j++ {
			// TV kinds use a different band of info types than movies.
			var it int
			if tr.kind >= 3 {
				it = 1 + g.rng.Intn(nInfoMI/2)
			} else {
				it = nInfoMI/4 + 1 + g.rng.Intn(nInfoMI*3/4)
			}
			iv := (tr.year-minYear)*10 + g.rng.Intn(200) // year-correlated payload
			b.MustAppend(value.Int(int64(tr.id)), value.Int(int64(it)), value.Int(int64(iv)))
		}
	}
	return b.MustBuild()
}

// buildMovieKeyword draws Zipf keywords with a kind-dependent pool.
func buildMovieKeyword(g *gen, titles []titleRow, nKeywords int) *table.Table {
	b := table.MustBuilder("movie_keyword", []table.ColSpec{
		{Name: "movie_id", Kind: value.KindInt},
		{Name: "keyword_id", Kind: value.KindInt},
	})
	for _, tr := range titles {
		n := g.fanout(tr.popular, 6, 0.12)
		for j := 0; j < n; j++ {
			kw := g.zipf(nKeywords, 1.5)
			if tr.kind >= 3 { // tv keywords live in a shifted band
				kw = (kw + nKeywords/3) % nKeywords
				if kw == 0 {
					kw = nKeywords
				}
			}
			b.MustAppend(value.Int(int64(tr.id)), value.Int(int64(kw)))
		}
	}
	return b.MustBuild()
}

// buildMovieInfoIdx emits ratings-like rows: info types 99..112 with values
// correlated with year and kind (recent movies rate higher).
func buildMovieInfoIdx(g *gen, titles []titleRow) *table.Table {
	b := table.MustBuilder("movie_info_idx", []table.ColSpec{
		{Name: "movie_id", Kind: value.KindInt},
		{Name: "info_type_id", Kind: value.KindInt},
		{Name: "info_val", Kind: value.KindInt},
	})
	for _, tr := range titles {
		n := g.fanout(tr.popular, 2, 0.25)
		for j := 0; j < n; j++ {
			it := 99 + g.rng.Intn(nInfoII)
			base := 40 + (tr.year-minYear)/3
			if tr.kind == 1 {
				base += 10
			}
			iv := base + g.rng.Intn(30)
			b.MustAppend(value.Int(int64(tr.id)), value.Int(int64(it)), value.Int(int64(iv)))
		}
	}
	return b.MustBuild()
}
