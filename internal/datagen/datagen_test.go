package datagen

import (
	"testing"

	"neurocard/internal/sampler"
	"neurocard/internal/value"
)

func smallCfg() Config { return Config{Seed: 7, Scale: 0.05} }

func TestJOBLightShape(t *testing.T) {
	d, err := JOBLight(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	s := d.Schema
	want := []string{"title", "cast_info", "movie_companies", "movie_info", "movie_keyword", "movie_info_idx"}
	if s.NumTables() != 6 {
		t.Fatalf("tables = %v", s.Tables())
	}
	for _, name := range want {
		if s.Table(name) == nil {
			t.Fatalf("missing table %q", name)
		}
		if _, ok := d.ContentCols[name]; !ok {
			t.Errorf("no content columns declared for %q", name)
		}
	}
	if s.Root() != "title" {
		t.Errorf("root = %q", s.Root())
	}
	// Star schema: every non-root joins title directly.
	for _, name := range want[1:] {
		e, ok := s.Parent(name)
		if !ok || e.Parent != "title" || e.ParentCol != "id" || e.ChildCol != "movie_id" {
			t.Errorf("parent of %q = %+v", name, e)
		}
	}
	// Sampler must accept the schema (non-empty full join).
	smp, err := sampler.New(s)
	if err != nil {
		t.Fatal(err)
	}
	if smp.JoinSize() < float64(s.Table("title").NumRows()) {
		t.Errorf("|J| = %v is smaller than title", smp.JoinSize())
	}
}

func TestJOBMShape(t *testing.T) {
	d, err := JOBM(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	s := d.Schema
	if s.NumTables() != 16 {
		t.Fatalf("JOB-M has %d tables, want 16: %v", s.NumTables(), s.Tables())
	}
	// Multi-key joins: cast_info carries four distinct join keys.
	keys := s.JoinKeys("cast_info")
	if len(keys) != 4 {
		t.Errorf("cast_info join keys = %v", keys)
	}
	if _, err := sampler.New(s); err != nil {
		t.Fatal(err)
	}
	// The duplicated info_type dimensions must be distinct tables.
	if s.Table("info_type_mi") == nil || s.Table("info_type_mii") == nil {
		t.Error("duplicated info_type tables missing")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := JOBLight(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := JOBLight(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range a.Schema.Tables() {
		ta, tb := a.Schema.Table(name), b.Schema.Table(name)
		if ta.NumRows() != tb.NumRows() {
			t.Fatalf("%s: %d vs %d rows", name, ta.NumRows(), tb.NumRows())
		}
		for _, col := range ta.Columns() {
			cb := tb.MustCol(col.Name())
			for r := 0; r < ta.NumRows(); r++ {
				if col.ID(r) != cb.ID(r) {
					t.Fatalf("%s.%s row %d differs between runs", name, col.Name(), r)
				}
			}
		}
	}
}

func TestScale(t *testing.T) {
	small, _ := JOBLight(Config{Seed: 1, Scale: 0.05})
	big, _ := JOBLight(Config{Seed: 1, Scale: 0.2})
	ns := small.Schema.Table("title").NumRows()
	nb := big.Schema.Table("title").NumRows()
	if nb <= ns*2 {
		t.Errorf("scale not respected: %d vs %d titles", ns, nb)
	}
}

// TestForeignKeysResolve: every fact movie_id exists in title.
func TestForeignKeysResolve(t *testing.T) {
	d, err := JOBLight(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	title := d.Schema.Table("title")
	ids := make(map[int64]bool)
	idCol := title.MustCol("id")
	for r := 0; r < title.NumRows(); r++ {
		v, _ := idCol.Int(r)
		ids[v] = true
	}
	for _, name := range []string{"cast_info", "movie_companies", "movie_info", "movie_keyword", "movie_info_idx"} {
		mt := d.Schema.Table(name)
		mid := mt.MustCol("movie_id")
		for r := 0; r < mt.NumRows(); r++ {
			v, ok := mid.Int(r)
			if !ok {
				t.Fatalf("%s row %d has NULL movie_id", name, r)
			}
			if !ids[v] {
				t.Fatalf("%s row %d references missing title %d", name, r, v)
			}
		}
	}
}

// TestPlantedCorrelation: kind and production_year must be correlated —
// the property that separates learned estimators from independence
// assumptions in the benchmarks.
func TestPlantedCorrelation(t *testing.T) {
	d, err := JOBLight(Config{Seed: 3, Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	title := d.Schema.Table("title")
	kind := title.MustCol("kind_id")
	year := title.MustCol("production_year")
	oldMovies, oldAll, newMovies, newAll := 0, 0, 0, 0
	for r := 0; r < title.NumRows(); r++ {
		k, _ := kind.Int(r)
		y, _ := year.Int(r)
		if y < 1970 {
			oldAll++
			if k == 1 {
				oldMovies++
			}
		} else if y > 2010 {
			newAll++
			if k == 1 {
				newMovies++
			}
		}
	}
	if oldAll == 0 || newAll == 0 {
		t.Fatal("year distribution degenerate")
	}
	oldFrac := float64(oldMovies) / float64(oldAll)
	newFrac := float64(newMovies) / float64(newAll)
	if oldFrac < newFrac+0.15 {
		t.Errorf("kind⊥year: P(movie|old)=%.2f vs P(movie|new)=%.2f — correlation too weak", oldFrac, newFrac)
	}
}

func TestSnapshots(t *testing.T) {
	d, err := JOBLight(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := d.Snapshots(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 5 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	prev := 0
	for i, s := range snaps {
		n := s.Table("title").NumRows()
		if n < prev {
			t.Errorf("snapshot %d shrank: %d < %d", i, n, prev)
		}
		prev = n
		// Dictionary stability: same dict size as the full dataset.
		full := d.Schema.Table("title").MustCol("production_year").DictSize()
		if got := s.Table("title").MustCol("production_year").DictSize(); got != full {
			t.Errorf("snapshot %d: dictionary size %d, want %d", i, got, full)
		}
		// Fact tables reference only retained titles.
		idCol := s.Table("title").MustCol("id")
		ids := make(map[int64]bool)
		for r := 0; r < s.Table("title").NumRows(); r++ {
			v, _ := idCol.Int(r)
			ids[v] = true
		}
		ci := s.Table("cast_info")
		mid := ci.MustCol("movie_id")
		for r := 0; r < ci.NumRows(); r++ {
			if v, ok := mid.Int(r); ok && !ids[v] {
				t.Fatalf("snapshot %d: cast_info references pruned title %d", i, v)
			}
		}
	}
	// Final snapshot = full dataset.
	if snaps[4].Table("title").NumRows() != d.Schema.Table("title").NumRows() {
		t.Errorf("last snapshot incomplete: %d vs %d titles",
			snaps[4].Table("title").NumRows(), d.Schema.Table("title").NumRows())
	}
	if _, err := d.Snapshots(0); err == nil {
		t.Error("Snapshots(0) accepted")
	}
}

// TestValueDomains: generated values stay inside their documented domains.
func TestValueDomains(t *testing.T) {
	d, err := JOBLight(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	title := d.Schema.Table("title")
	kind := title.MustCol("kind_id")
	year := title.MustCol("production_year")
	for r := 0; r < title.NumRows(); r++ {
		if k, _ := kind.Int(r); k < 1 || k > nKinds {
			t.Fatalf("kind %d out of range", k)
		}
		if y, _ := year.Int(r); y < minYear || y > maxYear {
			t.Fatalf("year %d out of range", y)
		}
	}
	mii := d.Schema.Table("movie_info_idx")
	it := mii.MustCol("info_type_id")
	for r := 0; r < mii.NumRows(); r++ {
		if v, _ := it.Int(r); v < 99 || v > 112 {
			t.Fatalf("movie_info_idx info_type %d out of range", v)
		}
	}
	_ = value.Null // document value import for NULL-bearing columns
}
