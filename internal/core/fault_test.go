package core_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"neurocard/internal/core"
	"neurocard/internal/faultinject"
	"neurocard/internal/query"
)

// TestDeadlineCancelsMidSampling: a context that expires while progressive
// sampling is between columns must stop the estimate with the context's
// error, and an already-expired context must fail before sampling starts.
func TestDeadlineCancelsMidSampling(t *testing.T) {
	est := trainedEstimator(t)
	q := query.Query{Tables: []string{"A", "B", "C"}}

	// Already cancelled: fails up front.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := est.EstimateSeededIndexedCtx(cancelled, q, 1, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err = %v, want context.Canceled", err)
	}

	// Expires mid-sampling: every kernel pass stalls 20ms, so a 5ms deadline
	// survives at most the first inter-column check.
	faultinject.Arm(faultinject.Config{Seed: 2, KernelDelayProb: 1, KernelDelay: 20 * time.Millisecond})
	defer faultinject.Disarm()
	ctx, cancel2 := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel2()
	start := time.Now()
	_, err := est.EstimateSeededIndexedCtx(ctx, q, 1, 2)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline ctx: err = %v, want context.DeadlineExceeded", err)
	}
	// The full plan has many columns; cooperative cancellation must bail out
	// well before all of them stall for 20ms each.
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("cancellation took %v; sampling did not stop at the deadline", elapsed)
	}
	faultinject.Disarm()

	// The estimator still serves normally afterwards.
	if _, err := est.EstimateSeededIndexedCtx(context.Background(), q, 1, 3); err != nil {
		t.Fatalf("estimate after deadline failures: %v", err)
	}

	// Per-item contexts in a batch: one expired item fails positionally, the
	// rest of the batch completes.
	items := []core.BatchItem{
		{Query: q, Seed: 1, Idx: 10},
		{Query: q, Seed: 1, Idx: 11, Ctx: cancelled},
		{Query: q, Seed: 1, Idx: 12},
	}
	ests, errs := est.EstimateItems(items, 2)
	if !errors.Is(errs[1], context.Canceled) {
		t.Fatalf("item 1 err = %v, want context.Canceled", errs[1])
	}
	for _, i := range []int{0, 2} {
		if errs[i] != nil || ests[i] < 1 {
			t.Fatalf("item %d = (%g, %v), want a live estimate", i, ests[i], errs[i])
		}
	}
}

// TestEstimatePanicPositional: an injected panic inside an estimate must
// surface as an ErrEstimatePanic positional error — never unwind the batch
// worker — and the estimator (and its session pool) must keep serving
// correctly afterwards.
func TestEstimatePanicPositional(t *testing.T) {
	est := trainedEstimator(t)
	q := query.Query{Tables: []string{"B", "C"}}

	faultinject.Arm(faultinject.Config{Seed: 3, EstimatePanicProb: 1})
	items := []core.BatchItem{
		{Query: q, Seed: 1, Idx: 1},
		{Query: q, Seed: 1, Idx: 2},
		{Query: q, Seed: 1, Idx: 3},
	}
	_, errs := est.EstimateItems(items, 2)
	for i, err := range errs {
		if !errors.Is(err, core.ErrEstimatePanic) {
			t.Fatalf("item %d err = %v, want ErrEstimatePanic", i, err)
		}
	}
	if _, err := est.EstimateSeededIndexedCtx(context.Background(), q, 1, 4); !errors.Is(err, core.ErrEstimatePanic) {
		t.Fatalf("single-path err = %v, want ErrEstimatePanic", err)
	}
	faultinject.Disarm()

	// Recovery: fresh sessions, correct results, unchanged determinism.
	want, err := est.EstimateSeededIndexedCtx(context.Background(), q, 9, 9)
	if err != nil {
		t.Fatalf("estimate after panics: %v", err)
	}
	got, err := est.EstimateSeededIndexed(q, 9, 9)
	if err != nil || got != want {
		t.Fatalf("post-panic determinism: (%g, %v), want (%g, nil)", got, err, want)
	}
}

// TestWriteCheckpointFileTruncationNeverClobbers: a torn checkpoint save must
// fail loudly, leave the previous checkpoint byte-identical, and leave no
// temp-file debris; a later healthy save must land atomically and reload.
func TestWriteCheckpointFileTruncationNeverClobbers(t *testing.T) {
	est := checkpointEstimator(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")

	if err := core.WriteCheckpointFile(est, path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Arm(faultinject.Config{Seed: 1, CheckpointTruncateProb: 1, CheckpointTruncateAt: 64})
	err = core.WriteCheckpointFile(est, path)
	faultinject.Disarm()
	if !errors.Is(err, faultinject.ErrInjectedTruncation) {
		t.Fatalf("torn save err = %v, want ErrInjectedTruncation", err)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(before) {
		t.Fatal("torn save modified the existing checkpoint")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "model.ckpt" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("directory after torn save = %v, want just model.ckpt", names)
	}

	// A healthy save over the old file still works and reloads.
	if err := core.WriteCheckpointFile(est, path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := core.LoadCheckpoint(f); err != nil {
		t.Fatalf("reload after atomic save: %v", err)
	}
}
