package core

import (
	"fmt"
	"sync"

	"neurocard/internal/nn"
	"neurocard/internal/query"
)

// inferSession is the reusable inference context progressive sampling runs
// on: a token matrix with wildcard defaults, per-column conditional reads,
// and row compaction. It is generic over the serving element width so the
// float32 path runs the whole sampling loop at float32 without ever mixing
// widths. *made.InferSessionOf[T] implements it natively (cached trunk,
// zero-alloc buffers); genericSession adapts any other ProbSource at
// float64.
type inferSession[T nn.Elem] interface {
	Cap() int
	Reset(rows int)
	TokenRow(r int) []int32
	SetToken(r, col int, tok int32)
	Probs(col int) *nn.MatG[T]
	CompactRows(dst, src int)
	Shrink(rows int)
	// Replicate fans a single-row batch out to rows identical rows — the
	// lazy fan-out point of progressive sampling (see inferState.sample).
	Replicate(rows int)
	// SetSerial selects inline kernel execution for sessions owned by
	// concurrent batch workers (see DESIGN.md §1.2).
	SetSerial(on bool)
}

// genericSession adapts a plain ProbSource (e.g. the exact oracle) to the
// session interface with preallocated token and output buffers, so the
// rewritten sampling loop — including active-row compaction — runs
// identically over non-MADE conditional sources. ProbSource is a float64
// contract, so generic sources always serve at float64.
type genericSession struct {
	src     ProbSource
	n, cap  int
	b       int
	tokens  [][]int32 // row slices over backing; reordered by compaction
	backing []int32
	out     nn.Mat
	outFull []float64
}

func newGenericSession(src ProbSource, maxRows int) *genericSession {
	if maxRows < 1 {
		maxRows = 1
	}
	n := src.NumCols()
	maxDom := 0
	for i := 0; i < n; i++ {
		if d := src.DomainSize(i); d > maxDom {
			maxDom = d
		}
	}
	s := &genericSession{
		src:     src,
		n:       n,
		cap:     maxRows,
		tokens:  make([][]int32, maxRows),
		backing: make([]int32, maxRows*n),
		outFull: make([]float64, maxRows*maxDom),
	}
	for r := range s.tokens {
		s.tokens[r] = s.backing[r*n : (r+1)*n]
	}
	return s
}

func (s *genericSession) Cap() int { return s.cap }

func (s *genericSession) Reset(rows int) {
	s.b = rows
	for r := 0; r < rows; r++ {
		row := s.tokens[r]
		for i := range row {
			row[i] = MaskToken
		}
	}
}

func (s *genericSession) TokenRow(r int) []int32 { return s.tokens[r] }

func (s *genericSession) SetToken(r, col int, tok int32) { s.tokens[r][col] = tok }

func (s *genericSession) Probs(col int) *nn.Mat {
	dom := s.src.DomainSize(col)
	s.out.Rows, s.out.Cols = s.b, dom
	s.out.Data = s.outFull[:s.b*dom]
	s.src.Conditional(s.tokens[:s.b], col, &s.out)
	return &s.out
}

func (s *genericSession) CompactRows(dst, src int) {
	s.tokens[dst], s.tokens[src] = s.tokens[src], s.tokens[dst]
}

func (s *genericSession) Shrink(rows int) { s.b = rows }

// Replicate copies the single active row's tokens into rows [1, rows).
func (s *genericSession) Replicate(rows int) {
	if s.b != 1 {
		panic(fmt.Sprintf("core: genericSession.Replicate from %d rows, want 1", s.b))
	}
	if rows < 1 || rows > s.cap {
		panic(fmt.Sprintf("core: genericSession.Replicate %d rows, capacity %d", rows, s.cap))
	}
	row0 := s.tokens[0]
	for r := 1; r < rows; r++ {
		copy(s.tokens[r], row0)
	}
	s.b = rows
}

// SetSerial is a no-op: generic sources control their own parallelism.
func (s *genericSession) SetSerial(bool) {}

// inferStateOf bundles a session with the per-row sampling weights and the
// sampling scratch — region translation, probability prefix sums, and the
// plan-cache key — pooled together so a whole Estimate call touches no
// fresh heap. Per-row weights stay float64 at every serving width: weight
// products of very selective queries underflow float32 long before they
// stop mattering to the estimate (DESIGN.md §1.4); only the per-column
// mass/draw arithmetic runs at width T.
//
// A checked-out state doubles as the estimator's engineSession handle: it
// carries back-references to its estimator and pool, so the precision-
// agnostic serving entry points never name the element type.
type inferStateOf[T nn.Elem] struct {
	e      *Estimator
	pool   *sessionPool[T]
	sess   inferSession[T]
	w      []float64
	ranges []query.IDRange // SubRegionAppend scratch, grown on demand
	cdf    []T             // per-row probability prefix sums (buildCDF)
	key    []byte          // canonical query bytes for the plan cache
}

// inferState is the float64 instantiation — the width the reference kernel
// tests and the default serving path run at.
type inferState = inferStateOf[float64]

// sessionPool hands out inferStates sized for a requested row count,
// recycling returned ones. Each concurrent Estimate (or EstimateBatch
// worker) holds its own state; the pool itself is just a free list.
type sessionPool[T nn.Elem] struct {
	mu    sync.Mutex
	free  []*inferStateOf[T]
	inUse int // states currently checked out (serving-side occupancy metric)
	newFn func(rows int) inferSession[T]
}

func newSessionPool[T nn.Elem](newFn func(rows int) inferSession[T]) *sessionPool[T] {
	return &sessionPool[T]{newFn: newFn}
}

// get checks out a state with at least the requested row capacity. Serial
// mode is (re)stated on every checkout — sessions carry no sticky kernel
// mode from previous owners: pass serial=true when the caller already runs
// many estimates concurrently (one goroutine per worker beats workers ×
// kernel chunks), false to let single queries use the parallel kernel pool.
func (p *sessionPool[T]) get(rows int, serial bool) *inferStateOf[T] {
	p.mu.Lock()
	for i := len(p.free) - 1; i >= 0; i-- {
		st := p.free[i]
		if st.sess.Cap() >= rows {
			p.free = append(p.free[:i], p.free[i+1:]...)
			p.inUse++
			p.mu.Unlock()
			st.sess.SetSerial(serial)
			return st
		}
	}
	p.inUse++
	p.mu.Unlock()
	st := &inferStateOf[T]{
		pool:   p,
		sess:   p.newFn(rows),
		w:      make([]float64, rows),
		ranges: make([]query.IDRange, 0, 16),
	}
	st.sess.SetSerial(serial)
	return st
}

func (p *sessionPool[T]) put(st *inferStateOf[T]) {
	p.mu.Lock()
	p.free = append(p.free, st)
	p.inUse--
	p.mu.Unlock()
}

// discard releases a checkout without returning the state to the free list.
// Used after a panic was recovered mid-estimate: the session's scratch may be
// in an arbitrary half-mutated shape, so it is dropped for the GC and the
// next get builds a fresh one.
func (p *sessionPool[T]) discard() {
	p.mu.Lock()
	p.inUse--
	p.mu.Unlock()
}

// stats reports the pool's current free and checked-out session counts.
func (p *sessionPool[T]) stats() (free, inUse int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free), p.inUse
}

// release returns the state to its pool (the engineSession contract).
func (st *inferStateOf[T]) release() { st.pool.put(st) }

// discard drops the state after a recovered panic (the engineSession
// contract): its scratch may be half-mutated, so it never re-enters the
// free list.
func (st *inferStateOf[T]) discard() { st.pool.discard() }
