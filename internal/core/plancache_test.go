package core

import (
	"sync"
	"testing"

	"neurocard/internal/datagen"
	"neurocard/internal/query"
	"neurocard/internal/workload"
)

// cacheTestEstimator builds a small real-model estimator over the synthetic
// JOB-light schema with the given plan-cache bound.
func cacheTestEstimator(t testing.TB, planCache int) (*Estimator, []query.Query) {
	t.Helper()
	d, err := datagen.JOBLight(datagen.Config{Seed: 3, Scale: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.JOBLight(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ContentCols = d.ContentCols
	cfg.Model.Hidden = 24
	cfg.Model.EmbedDim = 6
	cfg.Model.Blocks = 1
	cfg.PSamples = 32
	cfg.PlanCache = planCache
	est, err := Build(d.Schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]query.Query, len(wl.Queries))
	for i, lq := range wl.Queries {
		qs[i] = lq.Query
	}
	return est, qs
}

// TestPlanCacheHitsAndEviction walks the LRU through hit, miss, and eviction
// transitions and checks every counter.
func TestPlanCacheHitsAndEviction(t *testing.T) {
	est, qs := cacheTestEstimator(t, 2)
	q0, q1, q2 := qs[0], qs[1], qs[2]

	expect := func(hits, misses, evictions int64, size int) {
		t.Helper()
		s := est.PlanCacheStats()
		if s.Hits != hits || s.Misses != misses || s.Evictions != evictions || s.Size != size {
			t.Fatalf("stats = %+v, want hits=%d misses=%d evictions=%d size=%d", s, hits, misses, evictions, size)
		}
	}

	if _, err := est.Estimate(q0); err != nil {
		t.Fatal(err)
	}
	expect(0, 1, 0, 1)
	if _, err := est.Estimate(q0); err != nil {
		t.Fatal(err)
	}
	expect(1, 1, 0, 1)
	if _, err := est.Estimate(q1); err != nil {
		t.Fatal(err)
	}
	expect(1, 2, 0, 2)
	// Capacity 2: inserting a third plan evicts the LRU tail (q0).
	if _, err := est.Estimate(q2); err != nil {
		t.Fatal(err)
	}
	expect(1, 3, 1, 2)
	if _, err := est.Estimate(q0); err != nil {
		t.Fatal(err)
	}
	expect(1, 4, 2, 2)
	if s := est.PlanCacheStats(); s.Cap != 2 {
		t.Fatalf("cap = %d, want 2", s.Cap)
	}
}

// TestPlanCacheDefaultCap: PlanCache 0 selects the default bound.
func TestPlanCacheDefaultCap(t *testing.T) {
	est, _ := cacheTestEstimator(t, 0)
	if s := est.PlanCacheStats(); s.Cap != defaultPlanCacheCap {
		t.Fatalf("cap = %d, want default %d", s.Cap, defaultPlanCacheCap)
	}
}

// TestPlanCacheClearedOnUpdateData: rebinding a data snapshot drops cached
// plans (defensively — plans only depend on the domain schema).
func TestPlanCacheClearedOnUpdateData(t *testing.T) {
	est, qs := cacheTestEstimator(t, 0)
	if _, err := est.Estimate(qs[0]); err != nil {
		t.Fatal(err)
	}
	if s := est.PlanCacheStats(); s.Size != 1 {
		t.Fatalf("size = %d, want 1", s.Size)
	}
	if err := est.UpdateData(est.data); err != nil {
		t.Fatal(err)
	}
	if s := est.PlanCacheStats(); s.Size != 0 {
		t.Fatalf("size after UpdateData = %d, want 0", s.Size)
	}
	// The cleared cache keeps serving correct plans.
	if _, err := est.Estimate(qs[0]); err != nil {
		t.Fatal(err)
	}
}

// TestPlanCacheHitPathNoAllocs: the satellite allocation budget — a cache
// hit (canonical key build + LRU lookup) must not touch the heap.
func TestPlanCacheHitPathNoAllocs(t *testing.T) {
	est, qs := cacheTestEstimator(t, 0)
	st := est.eng.acquire(est.psamples(), false).(*inferState)
	defer st.release()
	q := qs[0]
	if _, err := st.planFor(q); err != nil { // warm: compile + grow key scratch
		t.Fatal(err)
	}
	var err error
	allocs := testing.AllocsPerRun(200, func() {
		if _, err = st.planFor(q); err != nil {
			return
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("plan-cache hit path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestPlanCacheConcurrentChurnDeterministic runs concurrent seeded batches
// with a cache bound smaller than the query set, forcing constant concurrent
// eviction, re-insertion, and hits of shared plans; results must equal the
// sequential EstimateIndexed answers bit-for-bit. Run under -race in CI.
func TestPlanCacheConcurrentChurnDeterministic(t *testing.T) {
	est, qs := cacheTestEstimator(t, 2)
	qs = qs[:5]
	want := make([]float64, len(qs))
	for i, q := range qs {
		got, err := est.EstimateIndexed(q, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = got
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				got, err := est.EstimateBatchSeeded(qs, 3, est.cfg.Seed)
				if err != nil {
					t.Errorf("batch: %v", err)
					return
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("query %d: %.17g != %.17g under churn", i, got[i], want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if s := est.PlanCacheStats(); s.Evictions == 0 {
		t.Fatalf("expected cache churn, stats = %+v", s)
	}
}

// TestPlanCacheKeyDistinguishesQueries: queries that differ only in literal,
// operator, or OR structure must not share cache slots — a collision would
// silently serve the wrong plan.
func TestPlanCacheKeyDistinguishesQueries(t *testing.T) {
	est, qs := cacheTestEstimator(t, 0)
	base := qs[0]
	variants := []query.Query{base}
	if len(base.Filters) > 0 {
		alt := base
		alt.Filters = append([]query.Filter(nil), base.Filters...)
		f := alt.Filters[0]
		f.Op = query.OpNeq
		alt.Filters[0] = f
		variants = append(variants, alt)

		or := base
		or.Filters = append([]query.Filter(nil), base.Filters...)
		g := or.Filters[0]
		g.Or = []query.Filter{{Op: query.OpIsNull}}
		or.Filters[0] = g
		variants = append(variants, or)
	}
	variants = append(variants, query.Query{Tables: base.Tables})
	for _, q := range variants {
		if _, err := est.Estimate(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	if s := est.PlanCacheStats(); s.Size != len(variants) {
		t.Fatalf("cache size = %d, want %d distinct plans", s.Size, len(variants))
	}
}

// narrowWideQueries builds the narrow/wide sampling benchmark pair: an
// equality on the root table's first content column vs its ≠ complement.
func narrowWideQueries(t testing.TB, d *datagen.Dataset) (narrow, wide query.Query) {
	t.Helper()
	tbl := d.Schema.Root()
	var col string
	for _, c := range d.ContentCols[tbl] {
		col = c
		break
	}
	c := d.Schema.Table(tbl).Col(col)
	if c == nil || c.DictSize() < 4 {
		t.Fatalf("root table %q has no usable content column", tbl)
	}
	v := c.ValueForID(1)
	narrow = query.Query{Tables: []string{tbl},
		Filters: []query.Filter{{Table: tbl, Col: col, Op: query.OpEq, Val: v}}}
	wide = query.Query{Tables: []string{tbl},
		Filters: []query.Filter{{Table: tbl, Col: col, Op: query.OpNeq, Val: v}}}
	return narrow, wide
}

// BenchmarkPlanCompile measures an uncached plan compilation (the miss
// path): region compilation, fanout-key resolution, and plan assembly.
func BenchmarkPlanCompile(b *testing.B) {
	est, qs := cacheTestEstimator(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.compilePlan(qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCacheHit measures the steady-state hit path: canonical key
// build plus LRU lookup. The allocs/op column must read 0.
func BenchmarkPlanCacheHit(b *testing.B) {
	est, qs := cacheTestEstimator(b, 0)
	st := est.eng.acquire(est.psamples(), false).(*inferState)
	defer st.release()
	for _, q := range qs {
		if _, err := st.planFor(q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.planFor(qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSampleConstrained exercises the constrained-draw kernel through
// single-table estimates: "narrow" is an equality region (direct scan),
// "wide" a ≠ complement spanning nearly the whole dictionary (CDF path).
func BenchmarkSampleConstrained(b *testing.B) {
	d, err := datagen.JOBLight(datagen.Config{Seed: 3, Scale: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ContentCols = d.ContentCols
	cfg.PSamples = 128
	est, err := Build(d.Schema, cfg)
	if err != nil {
		b.Fatal(err)
	}
	narrow, wide := narrowWideQueries(b, d)
	for name, q := range map[string]query.Query{"narrow": narrow, "wide": wide} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := est.EstimateIndexed(q, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
