package core

import (
	"testing"

	"neurocard/internal/datagen"
	"neurocard/internal/ingest"
	"neurocard/internal/sampler"
	"neurocard/internal/value"
)

// TestUpdateDataAppend: the ingest path — incremental join-count maintenance
// must land the estimator in the same state a full UpdateData would, while
// the invalidation counter and data generation advance.
func TestUpdateDataAppend(t *testing.T) {
	d, err := datagen.JOBLight(datagen.Config{Seed: 3, Scale: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ContentCols = d.ContentCols
	cfg.Model.Hidden = 24
	cfg.Model.EmbedDim = 6
	cfg.Model.Blocks = 1
	cfg.PSamples = 32
	est, err := Build(d.Schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g := est.DataGeneration(); g != 1 {
		t.Fatalf("generation after build = %d, want 1", g)
	}
	if s := est.PlanCacheStats(); s.Invalidations != 0 {
		t.Fatalf("invalidations after build = %d, want 0", s.Invalidations)
	}

	// Prime the plan cache with one query.
	_, qs := cacheTestEstimator(t, 0)
	if _, err := est.Estimate(qs[0]); err != nil {
		t.Fatal(err)
	}
	if s := est.PlanCacheStats(); s.Size != 1 {
		t.Fatalf("cache size = %d, want 1", s.Size)
	}

	mk := d.Schema.Table("movie_keyword")
	batch := &ingest.RowBatch{Tables: []ingest.TableRows{{
		Table:   "movie_keyword",
		Columns: []string{"movie_id", "keyword_id"},
		Rows: [][]value.Value{
			{mk.MustCol("movie_id").ValueForID(1), mk.MustCol("keyword_id").ValueForID(1)},
			{value.Null, mk.MustCol("keyword_id").ValueForID(2)},
		},
	}}}
	merged, err := ingest.Apply(d.Schema, []*ingest.RowBatch{batch})
	if err != nil {
		t.Fatal(err)
	}
	if err := est.UpdateDataAppend(merged); err != nil {
		t.Fatalf("UpdateDataAppend: %v", err)
	}
	if g := est.DataGeneration(); g != 2 {
		t.Fatalf("generation after append = %d, want 2", g)
	}
	s := est.PlanCacheStats()
	if s.Invalidations != 1 {
		t.Fatalf("invalidations after append = %d, want 1", s.Invalidations)
	}
	if s.Size != 0 {
		t.Fatalf("cache size after append = %d, want 0", s.Size)
	}

	// Incrementally maintained join size must equal the full recompute's.
	full, err := sampler.New(merged)
	if err != nil {
		t.Fatal(err)
	}
	if est.JoinSize() != full.JoinSize() {
		t.Fatalf("incremental |J| %v != full recompute %v", est.JoinSize(), full.JoinSize())
	}

	// The estimator keeps serving after the swap.
	if _, err := est.Estimate(qs[0]); err != nil {
		t.Fatalf("estimate after append: %v", err)
	}
	if s := est.PlanCacheStats(); s.Invalidations != 1 || s.Size != 1 {
		t.Fatalf("post-append serving stats = %+v", s)
	}

	// A non-extension (rows removed) is rejected and leaves state untouched.
	snaps, err := d.Snapshots(2)
	if err != nil {
		t.Fatal(err)
	}
	gen := est.DataGeneration()
	if err := est.UpdateDataAppend(snaps[0]); err == nil {
		t.Fatal("shrunken snapshot accepted by UpdateDataAppend")
	}
	if est.DataGeneration() != gen {
		t.Fatal("failed append bumped the data generation")
	}
}
