// Package core assembles NeuroCard itself: the encoder that turns sampled
// full-outer-join rows into model token tuples (content columns factorized
// per §5, plus the §6 virtual columns — per-table indicators and per-join-key
// fanouts), the training loop that streams unbiased join samples into the
// autoregressive model, and the probabilistic inference algorithms
// (progressive sampling with schema-subsetting corrections) that turn the
// learned density into cardinality estimates.
//
// # Estimator lifecycle
//
// Build wires schema, sampler, encoder, and model into an Estimator; Train
// streams deterministic unbiased join samples through the model (bit-
// identical weights for any SamplerWorkers setting); Estimate and its
// indexed/batch variants run progressive sampling on pooled zero-alloc
// inference sessions with per-query (seed, index) randomness, so results
// are reproducible regardless of scheduling. Save/LoadEstimator round-trip
// the whole estimator — dictionaries, encoder state, join counts, float64
// weights — into a single checkpoint.
//
// # Serving precision
//
// Config.Precision (or SetPrecision at runtime) selects the element width
// the session pool serves at: PrecisionFloat64 (the default, bit-pinned to
// the reference kernels) or PrecisionFloat32 (converted-weight SSE kernels,
// gated on golden-workload q-error — DESIGN.md §1.4). The choice is a pure
// serving concern: training, checkpoints, and estimate accumulation stay
// float64, ServingWeightBytes reports the resident kernel bytes (halved at
// float32), and switching widths is lossless because the float64 masters
// are never modified.
package core
