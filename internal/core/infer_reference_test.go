package core

import (
	"math"
	"math/rand"
	"testing"

	"neurocard/internal/datagen"
	"neurocard/internal/query"
	"neurocard/internal/workload"
)

// This file keeps the pre-overhaul progressive-sampling kernel as a
// behavioral reference: eager batch materialization (all nSamples rows from
// the first step), per-row linear region scans for mass and draws, and a
// naive left-to-right weight sum. The lazy fan-out / CDF kernel must agree
// with it to the repo's 1e-9 convention on the golden workload — the two
// kernels consume the RNG stream identically (one Float64 per per-row draw,
// in row order), so only floating-point reassociation separates them.

// sampleReference is the old kernel, verbatim modulo the compiledPlan type.
func (e *Estimator) sampleReference(st *inferState, cp *compiledPlan, nSamples int, rng *rand.Rand) float64 {
	sess, w := st.sess, st.w[:nSamples]
	sess.Reset(nSamples)
	for i := range w {
		w[i] = 1
	}
	active := nSamples

	for pi := range cp.cols {
		if active == 0 {
			break
		}
		p := &cp.cols[pi]
		switch p.mode {
		case modeSkip:
			continue

		case modeIndicatorOne:
			probs := sess.Probs(p.mc.FlatOffset)
			for r := 0; r < active; r++ {
				w[r] *= probs.At(r, 1)
				sess.SetToken(r, p.mc.FlatOffset, 1)
			}
			active = compactZero(sess, w, active)

		case modeConstrain:
			active = e.sampleConstrainedReference(st, p, w, active, rng)

		case modeFanoutDivide:
			nsub := p.mc.Fact.NumSubs()
			for j := 0; j < nsub; j++ {
				flat := p.mc.FlatOffset + j
				probs := sess.Probs(flat)
				for r := 0; r < active; r++ {
					sess.SetToken(r, flat, drawFullReference(probs.Row(r), rng))
				}
			}
			for r := 0; r < active; r++ {
				sub := sess.TokenRow(r)[p.mc.FlatOffset : p.mc.FlatOffset+nsub]
				fan := float64(p.mc.Fact.Decode(sub)) + 1
				w[r] /= fan
			}
		}
	}

	sum := 0.0
	for r := 0; r < active; r++ {
		sum += w[r]
	}
	card := sum / float64(nSamples) * e.joinSize
	if card < 1 {
		card = 1
	}
	return card
}

// sampleConstrainedReference: two O(span) scans per row per subcolumn.
func (e *Estimator) sampleConstrainedReference(st *inferState, p *colPlan, w []float64, active int, rng *rand.Rand) int {
	sess := st.sess
	nsub := p.mc.Fact.NumSubs()
	for j := 0; j < nsub && active > 0; j++ {
		flat := p.mc.FlatOffset + j
		probs := sess.Probs(flat)
		for r := 0; r < active; r++ {
			colToks := sess.TokenRow(r)[p.mc.FlatOffset : p.mc.FlatOffset+nsub]
			prefix := p.mc.Fact.PrefixValue(colToks, j)
			sub := p.mc.Fact.SubRegionAppend(st.ranges, p.region, j, prefix)
			if cap(sub) > cap(st.ranges) {
				st.ranges = sub
			}
			if len(sub) == 0 {
				w[r] = 0
				continue
			}
			pr := probs.Row(r)
			mass := 0.0
			for _, iv := range sub {
				for t := iv.Lo; t <= iv.Hi; t++ {
					mass += pr[t]
				}
			}
			if mass <= 0 {
				w[r] = 0
				continue
			}
			w[r] *= mass
			u := rng.Float64() * mass
			var chosen int32 = sub[len(sub)-1].Hi
			acc := 0.0
		draw:
			for _, iv := range sub {
				for t := iv.Lo; t <= iv.Hi; t++ {
					acc += pr[t]
					if acc > u {
						chosen = t
						break draw
					}
				}
			}
			sess.SetToken(r, flat, chosen)
		}
		active = compactZero(sess, w, active)
	}
	return active
}

// drawFullReference samples by running-sum scan.
func drawFullReference(probs []float64, rng *rand.Rand) int32 {
	u := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if acc > u {
			return int32(i)
		}
	}
	return int32(len(probs) - 1)
}

// estimateReference mirrors estimateSeeded on the reference kernel.
func (e *Estimator) estimateReference(q query.Query, idx int64) (float64, error) {
	st := e.eng.acquire(e.psamples(), false).(*inferState)
	defer st.release()
	cp, err := e.compilePlan(q)
	if err != nil {
		return 0, err
	}
	if cp.empty {
		return 1, nil
	}
	rng := rand.New(rand.NewSource(mixSeed(e.cfg.Seed, idx)))
	return e.sampleReference(st, cp, e.psamples(), rng), nil
}

// TestKernelMatchesReferenceOnGolden runs the full 200-query golden workload
// — conjunctive, disjunctive, negated, BETWEEN, and null-aware predicates —
// plus join-only queries (no filters, which the lazy kernel never fans out
// or fans out on a fanout column) through both kernels and holds them to
// 1e-9 relative agreement at identical (seed, index) randomness.
func TestKernelMatchesReferenceOnGolden(t *testing.T) {
	d, err := datagen.JOBLight(datagen.Config{Seed: 42, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Golden(d, 200, 20260728)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ContentCols = d.ContentCols
	cfg.Model.Hidden = 48
	cfg.Model.EmbedDim = 8
	cfg.Model.Blocks = 1
	cfg.PSamples = 128
	cfg.Seed = 7
	est, err := Build(d.Schema, cfg)
	if err != nil {
		t.Fatal(err)
	}

	queries := make([]query.Query, 0, len(wl.Queries)+3)
	for _, lq := range wl.Queries {
		queries = append(queries, lq.Query)
	}
	// Join-only edge cases: single root table, a two-table join, the full
	// join (no fanout divides at all — the batch never materializes).
	tables := est.domain.Tables()
	queries = append(queries,
		query.Query{Tables: tables[:1]},
		query.Query{Tables: tables[:2]},
		query.Query{Tables: tables},
	)

	for i, q := range queries {
		want, err := est.estimateReference(q, int64(i))
		if err != nil {
			t.Fatalf("reference on %s: %v", q, err)
		}
		got, err := est.EstimateIndexed(q, int64(i))
		if err != nil {
			t.Fatalf("new kernel on %s: %v", q, err)
		}
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("query %d %s: new kernel %.17g, reference %.17g", i, q, got, want)
		}
	}
}

// TestKernelDeterministicRunToRun: the same (seed, index) must yield
// bit-identical estimates across repeated calls on reused pooled sessions —
// the CDF scratch and lazy fan-out leave no state behind.
func TestKernelDeterministicRunToRun(t *testing.T) {
	d, err := datagen.JOBLight(datagen.Config{Seed: 1, Scale: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Golden(d, 24, 99)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ContentCols = d.ContentCols
	cfg.Model.Hidden = 32
	cfg.Model.EmbedDim = 6
	cfg.Model.Blocks = 1
	cfg.PSamples = 64
	est, err := Build(d.Schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, lq := range wl.Queries {
		first, err := est.EstimateIndexed(lq.Query, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 2; run++ {
			again, err := est.EstimateIndexed(lq.Query, int64(i))
			if err != nil {
				t.Fatal(err)
			}
			if again != first {
				t.Fatalf("query %d run %d: %.17g != %.17g", i, run, again, first)
			}
		}
	}
}
