package core_test

import (
	"math"
	"testing"

	"neurocard/internal/core"
	"neurocard/internal/exec"
	"neurocard/internal/query"
	"neurocard/internal/value"
)

// TestPerTableAblation checks the Table 5 (D) estimator: per-table models
// combine under independence, so single-table estimates are accurate while
// cross-table correlation is lost by construction.
func TestPerTableAblation(t *testing.T) {
	s := figure4(t)
	cfg := core.DefaultConfig()
	cfg.Model.Hidden = 24
	cfg.Model.EmbedDim = 6
	cfg.Model.Blocks = 1
	cfg.Model.LR = 5e-3
	cfg.BatchSize = 64
	cfg.PSamples = 400
	cfg.SamplerWorkers = 1
	cfg.ContentCols = allColumns(s)
	per, err := core.BuildPerTable(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := per.Train(8_000); err != nil {
		t.Fatal(err)
	}
	if per.Bytes() <= 0 {
		t.Error("per-table size accounting broken")
	}
	if per.Name() == "" {
		t.Error("empty name")
	}

	// Single-table query: accurate (only one model involved).
	q := query.Query{
		Tables:  []string{"B"},
		Filters: []query.Filter{{Table: "B", Col: "x", Op: query.OpEq, Val: value.Int(2)}},
	}
	want, err := exec.Cardinality(s, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := per.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if qe := math.Max(got/want, want/got); qe > 1.8 {
		t.Errorf("single-table estimate %v vs %v (q-error %.2f)", got, want, qe)
	}

	// Unfiltered join: exact inner size, so estimate is exact.
	q2 := query.Query{Tables: []string{"A", "B", "C"}}
	want, err = exec.Cardinality(s, q2)
	if err != nil {
		t.Fatal(err)
	}
	got, err = per.Estimate(q2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.5 {
		t.Errorf("unfiltered join estimate %v, want %v", got, want)
	}

	// Errors propagate.
	if _, err := per.Estimate(query.Query{Tables: []string{"A", "C"}}); err == nil {
		t.Error("disconnected query accepted")
	}
}
