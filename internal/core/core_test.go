package core_test

import (
	"math"
	"math/rand"
	"testing"

	"neurocard/internal/core"
	"neurocard/internal/exec"
	"neurocard/internal/oracle"
	"neurocard/internal/query"
	"neurocard/internal/schema"
	"neurocard/internal/table"
	"neurocard/internal/testutil"
	"neurocard/internal/value"
)

// figure4 builds the paper's running example with one extra content column
// on A so content encoding is exercised.
func figure4(t *testing.T) *schema.Schema {
	t.Helper()
	a := table.MustBuilder("A", []table.ColSpec{
		{Name: "x", Kind: value.KindInt},
		{Name: "year", Kind: value.KindInt},
	})
	a.MustAppend(value.Int(1), value.Int(1990))
	a.MustAppend(value.Int(2), value.Int(2000))
	b := table.MustBuilder("B", []table.ColSpec{
		{Name: "x", Kind: value.KindInt}, {Name: "y", Kind: value.KindInt},
	})
	b.MustAppend(value.Int(1), value.Int(1))
	b.MustAppend(value.Int(2), value.Int(2))
	b.MustAppend(value.Int(2), value.Int(3))
	c := table.MustBuilder("C", []table.ColSpec{{Name: "y", Kind: value.KindInt}})
	c.MustAppend(value.Int(3))
	c.MustAppend(value.Int(3))
	c.MustAppend(value.Int(4))
	s, err := schema.New(
		[]*table.Table{a.MustBuild(), b.MustBuild(), c.MustBuild()},
		"A",
		[]schema.Edge{
			{LeftTable: "A", LeftCol: "x", RightTable: "B", RightCol: "x"},
			{LeftTable: "B", LeftCol: "y", RightTable: "C", RightCol: "y"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEncoderColumnLayout(t *testing.T) {
	s := figure4(t)
	enc, err := core.NewEncoder(s, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	cols := enc.Columns()
	// Content: A.year only (x, B.x, B.y, C.y are join keys).
	// Indicators: A, B, C. Fanouts: only B.x and C.y have max fanout > 1
	// (A.x is unique; B.y is unique within B).
	var kinds []string
	for _, mc := range cols {
		kinds = append(kinds, mc.Kind.String()+":"+mc.Table+"."+mc.Col)
	}
	want := []string{
		"content:A.year",
		"indicator:A.", "indicator:B.", "indicator:C.",
		"fanout:B.x", "fanout:C.y",
	}
	if len(kinds) != len(want) {
		t.Fatalf("columns = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("columns = %v, want %v", kinds, want)
		}
	}
	// Flat domains: year dict (2 vals + NULL = 3), indicators 2,2,2,
	// fanouts B.x max 2 → dom 2, C.y max 2 → dom 2.
	doms := enc.FlatDomains()
	wantDoms := []int{3, 2, 2, 2, 2, 2}
	for i := range wantDoms {
		if doms[i] != wantDoms[i] {
			t.Fatalf("flat domains = %v, want %v", doms, wantDoms)
		}
	}
}

func TestEncoderExplicitColumns(t *testing.T) {
	s := figure4(t)
	enc, err := core.NewEncoder(s, map[string][]string{"A": {"year", "x"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, mc := range enc.Columns() {
		if mc.Kind == core.KindContent {
			n++
		}
	}
	if n != 2 {
		t.Errorf("content columns = %d, want 2 (explicit selection)", n)
	}
	if _, err := core.NewEncoder(s, map[string][]string{"A": {"zzz"}}, 0); err == nil {
		t.Error("unknown content column accepted")
	}
}

func TestEncodeJoinRows(t *testing.T) {
	s := figure4(t)
	enc, err := core.NewEncoder(s, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.BruteForceFullJoin(s)
	if err != nil {
		t.Fatal(err)
	}
	encoded, err := enc.EncodeJoinRows(s, rows)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4c, row ⟨A=2, B=(2,c), C=c⟩: year=2000 (ID 2), indicators all 1,
	// F_{B.x}=2 (token 1), F_{C.y}=2 (token 1).
	found := false
	for i, r := range rows {
		if r[0] == 1 && r[1] == 2 && (r[2] == 0 || r[2] == 1) {
			e := encoded[i]
			want := []int32{2, 1, 1, 1, 1, 1}
			for j := range want {
				if e[j] != want[j] {
					t.Fatalf("encoded row = %v, want %v", e, want)
				}
			}
			found = true
		}
	}
	if !found {
		t.Fatal("expected join row not materialized")
	}
	// Orphan row ⟨C=d⟩: year NULL (0), indicators 0,0,1, fanouts: B.x NULL→1
	// (token 0), C.y: d appears once → fanout 1 (token 0).
	found = false
	for i, r := range rows {
		if r[0] == -1 && r[1] == -1 && r[2] == 2 {
			e := encoded[i]
			want := []int32{0, 0, 0, 1, 0, 0}
			for j := range want {
				if e[j] != want[j] {
					t.Fatalf("orphan encoded = %v, want %v", e, want)
				}
			}
			found = true
		}
	}
	if !found {
		t.Fatal("orphan row not materialized")
	}
}

// allColumns models every column of every table (join keys included), so
// random queries that filter keys are exercised end to end.
func allColumns(s *schema.Schema) map[string][]string {
	m := make(map[string][]string)
	for _, tname := range s.Tables() {
		for _, c := range s.Table(tname).Columns() {
			m[tname] = append(m[tname], c.Name())
		}
	}
	return m
}

// oracleEstimator builds an estimator whose conditionals are exact.
func oracleEstimator(t *testing.T, s *schema.Schema, factBits, psamples int, seed int64) *core.Estimator {
	t.Helper()
	enc, err := core.NewEncoder(s, allColumns(s), factBits)
	if err != nil {
		t.Fatal(err)
	}
	src, err := oracle.NewExact(s, enc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.PSamples = psamples
	cfg.Seed = seed
	est, err := core.NewFromParts(s, s, enc, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// TestOracleInferencePaperQueries: with exact conditionals and the paper's
// Figure 4 data, progressive sampling must converge to the §6 worked
// answers.
func TestOracleInferencePaperQueries(t *testing.T) {
	s := figure4(t)
	est := oracleEstimator(t, s, 0, 4000, 7)
	cases := []struct {
		q    query.Query
		want float64
	}{
		{query.Query{
			Tables:  []string{"A", "B", "C"},
			Filters: []query.Filter{{Table: "A", Col: "x", Op: query.OpEq, Val: value.Int(2)}},
		}, 2},
		{query.Query{
			Tables:  []string{"A"},
			Filters: []query.Filter{{Table: "A", Col: "x", Op: query.OpEq, Val: value.Int(2)}},
		}, 1},
		{query.Query{Tables: []string{"B"}}, 3},
		{query.Query{Tables: []string{"B", "C"}}, 2},
		{query.Query{
			Tables:  []string{"A", "B"},
			Filters: []query.Filter{{Table: "A", Col: "year", Op: query.OpGe, Val: value.Int(1995)}},
		}, 2},
	}
	for _, tc := range cases {
		got, err := est.Estimate(tc.q)
		if err != nil {
			t.Fatalf("%s: %v", tc.q, err)
		}
		if math.Abs(got-tc.want) > 0.25*tc.want+0.05 {
			t.Errorf("%s: estimate %v, want ≈ %v", tc.q, got, tc.want)
		}
	}
}

// TestOracleInferenceRandomSchemas: progressive sampling with exact
// conditionals approximates the true cardinality across random schemas,
// random queries, and factorization settings — the end-to-end validation of
// region translation + indicators + fanout scaling over the encoder.
func TestOracleInferenceRandomSchemas(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cfg := testutil.DefaultSchemaConfig()
	cfg.MaxRows = 5
	checked, failures := 0, 0
	for iter := 0; iter < 25; iter++ {
		s := testutil.RandomSchema(rng, cfg)
		factBits := []int{0, 2, 3}[iter%3]
		est := oracleEstimator(t, s, factBits, 3000, int64(iter))
		for qi := 0; qi < 4; qi++ {
			q := testutil.RandomQuery(rng, s, 2)
			want, err := exec.Cardinality(s, q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := est.Estimate(q)
			if err != nil {
				t.Fatalf("iter %d (%s): %v", iter, q, err)
			}
			checked++
			wantClamped := math.Max(want, 1)
			qerr := math.Max(got/wantClamped, wantClamped/got)
			if qerr > 1.35 {
				failures++
				t.Logf("iter %d factBits %d %s: estimate %v, true %v (q-error %.2f)",
					iter, factBits, q, got, want, qerr)
			}
		}
	}
	// Monte Carlo tolerance: nearly all estimates must be tight; with exact
	// conditionals any systematic error would fail many queries at once.
	if failures > checked/20 {
		t.Errorf("%d of %d oracle-backed estimates off by > 1.35×", failures, checked)
	}
}

// nullFigure4 is the Figure 4 schema with NULLs planted in A.year and B.y's
// content so null-aware predicates have mass to select.
func nullFigure4(t *testing.T) *schema.Schema {
	t.Helper()
	a := table.MustBuilder("A", []table.ColSpec{
		{Name: "x", Kind: value.KindInt},
		{Name: "year", Kind: value.KindInt},
	})
	a.MustAppend(value.Int(1), value.Int(1990))
	a.MustAppend(value.Int(2), value.Int(2000))
	a.MustAppend(value.Int(2), value.Null)
	a.MustAppend(value.Int(3), value.Int(2010))
	b := table.MustBuilder("B", []table.ColSpec{
		{Name: "x", Kind: value.KindInt}, {Name: "v", Kind: value.KindInt},
	})
	b.MustAppend(value.Int(1), value.Int(10))
	b.MustAppend(value.Int(2), value.Null)
	b.MustAppend(value.Int(2), value.Int(20))
	b.MustAppend(value.Int(3), value.Int(30))
	s, err := schema.New(
		[]*table.Table{a.MustBuild(), b.MustBuild()},
		"A",
		[]schema.Edge{{LeftTable: "A", LeftCol: "x", RightTable: "B", RightCol: "x"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestOracleInferenceNewOps: with exact conditionals, progressive sampling
// must converge to the executor's answer for every new operator —
// disjunctions, negations, BETWEEN, and null tests — on a schema with real
// NULL content values.
func TestOracleInferenceNewOps(t *testing.T) {
	s := nullFigure4(t)
	est := oracleEstimator(t, s, 0, 4000, 11)
	queries := []query.Query{
		{Tables: []string{"A"},
			Filters: []query.Filter{{Table: "A", Col: "year", Op: query.OpIsNull}}},
		{Tables: []string{"A"},
			Filters: []query.Filter{{Table: "A", Col: "year", Op: query.OpIsNotNull}}},
		{Tables: []string{"A"},
			Filters: []query.Filter{{Table: "A", Col: "year", Op: query.OpNeq, Val: value.Int(2000)}}},
		{Tables: []string{"A"},
			Filters: []query.Filter{{Table: "A", Col: "year", Op: query.OpNotIn,
				Set: []value.Value{value.Int(1990), value.Int(2010)}}}},
		{Tables: []string{"A"},
			Filters: []query.Filter{{Table: "A", Col: "year", Op: query.OpBetween,
				Val: value.Int(1995), Hi: value.Int(2005)}}},
		{Tables: []string{"A"},
			Filters: []query.Filter{{Table: "A", Col: "year", Op: query.OpEq, Val: value.Int(1990),
				Or: []query.Filter{{Op: query.OpIsNull}}}}},
		{Tables: []string{"A", "B"},
			Filters: []query.Filter{
				{Table: "A", Col: "year", Op: query.OpIsNull,
					Or: []query.Filter{{Op: query.OpGe, Val: value.Int(2005)}}},
				{Table: "B", Col: "v", Op: query.OpIsNotNull}}},
		{Tables: []string{"A", "B"},
			Filters: []query.Filter{{Table: "B", Col: "v", Op: query.OpIsNull}}},
	}
	for _, q := range queries {
		want, err := exec.Cardinality(s, q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		got, err := est.Estimate(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		wantClamped := math.Max(want, 1)
		if qerr := math.Max(got/wantClamped, wantClamped/got); qerr > 1.3 {
			t.Errorf("%s: estimate %v, true %v (q-error %.2f)", q, got, want, qerr)
		}
	}
}

func TestEstimateErrors(t *testing.T) {
	s := figure4(t)
	est := oracleEstimator(t, s, 0, 100, 1)
	if _, err := est.Estimate(query.Query{Tables: []string{"A", "C"}}); err == nil {
		t.Error("disconnected query accepted")
	}
	if _, err := est.Estimate(query.Query{
		Tables:  []string{"A"},
		Filters: []query.Filter{{Table: "B", Col: "y", Op: query.OpEq, Val: value.Int(1)}},
	}); err == nil {
		t.Error("filter outside join accepted")
	}
	// Empty region → estimate 1 (true cardinality 0, lower bound 1).
	got, err := est.Estimate(query.Query{
		Tables:  []string{"A"},
		Filters: []query.Filter{{Table: "A", Col: "year", Op: query.OpEq, Val: value.Int(1234)}},
	})
	if err != nil || got != 1 {
		t.Errorf("empty-region estimate = %v, %v; want 1", got, err)
	}
}

// TestUnmodeledFilterRejected: estimators refuse filters on columns outside
// their content set rather than silently ignoring them.
func TestUnmodeledFilterRejected(t *testing.T) {
	s := figure4(t)
	enc, err := core.NewEncoder(s, map[string][]string{"A": {"year"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	src, err := oracle.NewExact(s, enc)
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.NewFromParts(s, s, enc, src, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, err = est.Estimate(query.Query{
		Tables:  []string{"A"},
		Filters: []query.Filter{{Table: "A", Col: "x", Op: query.OpEq, Val: value.Int(2)}},
	})
	if err == nil {
		t.Error("filter on unmodeled column accepted")
	}
}

// TestTrainedEndToEnd trains a real ResMADE on the Figure 4 schema and
// checks estimates are within a loose Q-error bound — the full pipeline
// (sampler → encoder → training → inference) working together.
func TestTrainedEndToEnd(t *testing.T) {
	s := figure4(t)
	cfg := core.DefaultConfig()
	cfg.Model.Hidden = 32
	cfg.Model.EmbedDim = 8
	cfg.Model.Blocks = 1
	cfg.Model.LR = 5e-3
	cfg.BatchSize = 128
	cfg.PSamples = 800
	cfg.SamplerWorkers = 2
	cfg.Seed = 3
	cfg.ContentCols = allColumns(s)
	est, err := core.Build(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if est.JoinSize() != 5 {
		t.Fatalf("|J| = %v", est.JoinSize())
	}
	loss, err := est.Train(40_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(loss) || loss <= 0 {
		t.Fatalf("final loss = %v", loss)
	}
	cases := []query.Query{
		{Tables: []string{"A", "B", "C"},
			Filters: []query.Filter{{Table: "A", Col: "x", Op: query.OpEq, Val: value.Int(2)}}},
		{Tables: []string{"B"}},
		{Tables: []string{"A", "B"}},
	}
	for _, q := range cases {
		want, err := exec.Cardinality(s, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := est.Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
		want = math.Max(want, 1)
		qerr := math.Max(got/want, want/got)
		if qerr > 2.5 {
			t.Errorf("%s: estimate %v, true %v (q-error %.2f)", q, got, want, qerr)
		}
	}
	if est.Bytes() <= 0 || est.Model() == nil {
		t.Error("model accounting broken")
	}
}

// TestUpdateData: snapshots sharing dictionaries rebind cleanly; foreign
// tables with different dictionaries are rejected.
func TestUpdateData(t *testing.T) {
	s := figure4(t)
	est := oracleEstimator(t, s, 0, 100, 1)
	// Snapshot: drop A's second row (dictionaries preserved by Filter).
	aSnap := s.Table("A").Filter(func(row int) bool { return row == 0 })
	snap, err := schema.New(
		[]*table.Table{aSnap, s.Table("B"), s.Table("C")},
		"A",
		[]schema.Edge{
			{LeftTable: "A", LeftCol: "x", RightTable: "B", RightCol: "x"},
			{LeftTable: "B", LeftCol: "y", RightTable: "C", RightCol: "y"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := est.UpdateData(snap); err != nil {
		t.Fatalf("UpdateData on snapshot: %v", err)
	}
	// |J| changed: A=1 row joins B=(1,a) [C null]; orphans: B=(2,b),(2,c)
	// each with their C matches... recompute via brute force.
	rows, err := exec.BruteForceFullJoin(snap)
	if err != nil {
		t.Fatal(err)
	}
	if est.JoinSize() != float64(len(rows)) {
		t.Errorf("|J| after update = %v, want %v", est.JoinSize(), len(rows))
	}
	// Foreign table (fresh dictionaries) must be rejected.
	a2 := table.MustBuilder("A", []table.ColSpec{
		{Name: "x", Kind: value.KindInt},
		{Name: "year", Kind: value.KindInt},
	})
	a2.MustAppend(value.Int(1), value.Int(1990))
	foreign, err := schema.New(
		[]*table.Table{a2.MustBuild(), s.Table("B"), s.Table("C")},
		"A",
		[]schema.Edge{
			{LeftTable: "A", LeftCol: "x", RightTable: "B", RightCol: "x"},
			{LeftTable: "B", LeftCol: "y", RightTable: "C", RightCol: "y"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := est.UpdateData(foreign); err == nil {
		t.Error("foreign dictionaries accepted")
	}
}
