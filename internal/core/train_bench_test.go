package core_test

import (
	"testing"

	"neurocard/internal/core"
	"neurocard/internal/datagen"
)

// BenchmarkTrainThroughput is the construction-cost baseline tracked in
// EXPERIMENTS.md: end-to-end training steps (sampler → encoder → gradient
// step) on a small synthetic JOB-light instance. One op is one gradient step
// of BatchSize tuples; tuples/sec is reported alongside allocs/op so
// training-path regressions are visible the same way serving ones are.
func BenchmarkTrainThroughput(b *testing.B) {
	d, err := datagen.JOBLight(datagen.Config{Seed: 1, Scale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.ContentCols = d.ContentCols
	cfg.BatchSize = 256
	cfg.SamplerWorkers = 1
	est, err := core.Build(d.Schema, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := est.Train(b.N * cfg.BatchSize); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*cfg.BatchSize)/b.Elapsed().Seconds(), "tuples/sec")
}
