package core

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// defaultPlanCacheCap bounds the compiled-plan cache when Config.PlanCache
// is zero. Serving traffic repeats a bounded set of query shapes (the
// optimizer re-asks the same templates with the same literals far more often
// than it invents new ones), so a few thousand entries cover steady state
// while keeping worst-case memory at a few MB of regions.
const defaultPlanCacheCap = 4096

// compiledPlan is the immutable result of compiling one query: the
// per-column sampling actions plus the empty-region shortcut. Plans are
// shared by every pooled session concurrently — nothing in a compiledPlan is
// written after construction.
type compiledPlan struct {
	cols  []colPlan
	empty bool
}

// planCacheEntry is one LRU slot.
type planCacheEntry struct {
	key  string
	plan *compiledPlan
}

// planCache is a bounded, concurrency-safe LRU over compiled plans, keyed by
// query.AppendKey bytes. The hit path takes one mutex, performs an
// allocation-free map lookup (string(key) conversion in a map index does not
// escape), and moves the entry to the LRU front — no allocation, which keeps
// the repeated-query serving path zero-alloc end to end.
//
// Plans depend only on the estimator's domain schema and encoder, both fixed
// for the estimator's lifetime, so entries never go stale in place. The two
// mutation paths both swap whole objects: UpdateData clears the cache
// defensively, and a serving hot swap replaces the entire estimator (the
// registry's immutable-entry contract), arriving with a fresh, empty cache.
type planCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element // values are *planCacheEntry
	lru *list.List               // front = most recently used

	hits, misses, evictions, invalidations atomic.Int64
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = defaultPlanCacheCap
	}
	return &planCache{
		cap: capacity,
		m:   make(map[string]*list.Element, capacity),
		lru: list.New(),
	}
}

// get returns the cached plan for key, or nil on a miss.
func (c *planCache) get(key []byte) *compiledPlan {
	c.mu.Lock()
	if el, ok := c.m[string(key)]; ok {
		c.lru.MoveToFront(el)
		p := el.Value.(*planCacheEntry).plan
		c.mu.Unlock()
		c.hits.Add(1)
		return p
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return nil
}

// put inserts a plan, evicting from the LRU tail when over capacity. A
// concurrent insert of the same key wins-first: the existing entry is kept
// (both compilations of one key are interchangeable).
func (c *planCache) put(key []byte, p *compiledPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[string(key)]; ok {
		c.lru.MoveToFront(el)
		return
	}
	ks := string(key)
	c.m[ks] = c.lru.PushFront(&planCacheEntry{key: ks, plan: p})
	for len(c.m) > c.cap {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.m, tail.Value.(*planCacheEntry).key)
		c.evictions.Add(1)
	}
}

// clear drops every entry (counters survive — they are lifetime totals).
func (c *planCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[string]*list.Element, c.cap)
	c.lru.Init()
}

// invalidate is clear plus an invalidation count: the data-swap paths
// (UpdateData, UpdateDataAppend) call it so /metrics can distinguish
// refresh-driven cache drops from capacity eviction.
func (c *planCache) invalidate() {
	c.invalidations.Add(1)
	c.clear()
}

// len returns the current entry count.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// PlanCacheStats is a point-in-time snapshot of the compiled-plan cache,
// exposed per model on the serving daemon's /metrics endpoint.
type PlanCacheStats struct {
	Hits, Misses, Evictions, Invalidations int64
	Size, Cap                              int
}

// PlanCacheStats reports the estimator's compiled-plan cache counters.
func (e *Estimator) PlanCacheStats() PlanCacheStats {
	return PlanCacheStats{
		Hits:          e.plans.hits.Load(),
		Misses:        e.plans.misses.Load(),
		Evictions:     e.plans.evictions.Load(),
		Invalidations: e.plans.invalidations.Load(),
		Size:          e.plans.len(),
		Cap:           e.plans.cap,
	}
}
