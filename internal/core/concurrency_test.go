package core_test

import (
	"sync"
	"testing"

	"neurocard/internal/core"
	"neurocard/internal/query"
	"neurocard/internal/value"
)

// batchQueries is a small mixed workload over the figure4 schema: joins of
// every size, filters, an empty-region filter, and repeated queries (which
// must still get independent per-index seeds).
func batchQueries() []query.Query {
	return []query.Query{
		{Tables: []string{"A", "B", "C"},
			Filters: []query.Filter{{Table: "A", Col: "x", Op: query.OpEq, Val: value.Int(2)}}},
		{Tables: []string{"B"}},
		{Tables: []string{"B", "C"}},
		{Tables: []string{"A", "B"},
			Filters: []query.Filter{{Table: "A", Col: "year", Op: query.OpGe, Val: value.Int(1995)}}},
		{Tables: []string{"A"},
			Filters: []query.Filter{{Table: "A", Col: "year", Op: query.OpEq, Val: value.Int(1234)}}},
		{Tables: []string{"A", "B", "C"}},
		{Tables: []string{"B"}},
		{Tables: []string{"A", "B", "C"},
			Filters: []query.Filter{{Table: "A", Col: "x", Op: query.OpEq, Val: value.Int(2)}}},
	}
}

// trainedEstimator builds a small real-model estimator (untrained weights
// still define a valid distribution, which is all determinism tests need).
func trainedEstimator(t *testing.T) *core.Estimator {
	t.Helper()
	s := figure4(t)
	cfg := core.DefaultConfig()
	cfg.Model.Hidden = 24
	cfg.Model.EmbedDim = 6
	cfg.Model.Blocks = 1
	cfg.PSamples = 64
	cfg.Seed = 5
	cfg.ContentCols = allColumns(s)
	est, err := core.Build(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// TestEstimateBatchDeterministic: batch estimation must return identical
// results run to run, across worker counts, and must match the sequential
// EstimateIndexed path — regardless of goroutine interleaving. Run under
// -race in CI.
func TestEstimateBatchDeterministic(t *testing.T) {
	for _, mk := range []struct {
		name  string
		build func(t *testing.T) *core.Estimator
	}{
		{"made", trainedEstimator},
		{"oracle", func(t *testing.T) *core.Estimator {
			return oracleEstimator(t, figure4(t), 2, 64, 5)
		}},
	} {
		t.Run(mk.name, func(t *testing.T) {
			est := mk.build(t)
			qs := batchQueries()
			want := make([]float64, len(qs))
			for i, q := range qs {
				got, err := est.EstimateIndexed(q, int64(i))
				if err != nil {
					t.Fatalf("EstimateIndexed %d: %v", i, err)
				}
				want[i] = got
			}
			for _, workers := range []int{1, 4, 16} {
				for run := 0; run < 3; run++ {
					got, err := est.EstimateBatch(qs, workers)
					if err != nil {
						t.Fatalf("EstimateBatch(workers=%d): %v", workers, err)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("workers=%d run=%d query %d: %v != %v",
								workers, run, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestEstimateBatchErrors: a bad query yields an error but does not poison
// the rest of the batch.
func TestEstimateBatchErrors(t *testing.T) {
	est := oracleEstimator(t, figure4(t), 0, 32, 1)
	qs := batchQueries()
	bad := append(append([]query.Query(nil), qs...),
		query.Query{Tables: []string{"A", "C"}}) // disconnected
	ests, err := est.EstimateBatch(bad, 4)
	if err == nil {
		t.Fatal("disconnected query in batch accepted")
	}
	if len(ests) != len(bad) {
		t.Fatalf("estimates length %d, want %d", len(ests), len(bad))
	}
	for i := range qs {
		if ests[i] < 1 {
			t.Errorf("query %d estimate %v despite unrelated error", i, ests[i])
		}
	}
}

// TestConcurrentEstimateRaceFree hammers the plain Estimate API from many
// goroutines; -race verifies the pooled sessions never share state.
func TestConcurrentEstimateRaceFree(t *testing.T) {
	est := trainedEstimator(t)
	qs := batchQueries()[:4] // valid queries only
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				if _, err := est.Estimate(qs[(g+k)%len(qs)]); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestEstimateCounterDeterministic: two estimators built identically produce
// the same sequence of sequential Estimate results (the atomic counter
// replaces the old shared-RNG draw without changing determinism).
func TestEstimateCounterDeterministic(t *testing.T) {
	a := trainedEstimator(t)
	b := trainedEstimator(t)
	q := batchQueries()[0]
	for k := 0; k < 3; k++ {
		ea, err := a.Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
		eb, err := b.Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
		if ea != eb {
			t.Fatalf("call %d: %v != %v", k, ea, eb)
		}
	}
}

// TestTrainDeterministicAcrossWorkers: training batch k's content is a pure
// function of (seed, k) and gradient steps consume batches in sequence
// order, so the entire trajectory — losses, weights, and downstream
// estimates — must be identical for any sampler worker count. Run under
// -race in CI (it also exercises the batch ring's reorder path).
func TestTrainDeterministicAcrossWorkers(t *testing.T) {
	s := figure4(t)
	train := func(workers int) (float64, float64, *core.Estimator) {
		cfg := core.DefaultConfig()
		cfg.Model.Hidden = 24
		cfg.Model.EmbedDim = 6
		cfg.Model.Blocks = 1
		cfg.BatchSize = 32
		cfg.PSamples = 64
		cfg.Seed = 9
		cfg.SamplerWorkers = workers
		cfg.ContentCols = allColumns(s)
		est, err := core.Build(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		loss, err := est.Train(32 * 12)
		if err != nil {
			t.Fatal(err)
		}
		probe, err := est.Estimate(query.Query{Tables: []string{"A", "B"}})
		if err != nil {
			t.Fatal(err)
		}
		return loss, probe, est
	}
	lossRef, probeRef, _ := train(1)
	for _, workers := range []int{2, 4} {
		loss, probe, _ := train(workers)
		if loss != lossRef || probe != probeRef {
			t.Fatalf("workers=%d: loss %v / estimate %v, want %v / %v",
				workers, loss, probe, lossRef, probeRef)
		}
	}
}
