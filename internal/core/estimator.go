package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"neurocard/internal/faultinject"
	"neurocard/internal/made"
	"neurocard/internal/query"
	"neurocard/internal/sampler"
	"neurocard/internal/schema"
)

// ErrEstimatePanic wraps a panic recovered inside one estimate: the serving
// paths convert it into a positional error for that query instead of letting
// it kill the process (or a coalescer fuser). The session the panic ran on is
// discarded, not pooled, since its scratch may be mid-mutation.
var ErrEstimatePanic = errors.New("core: estimate panicked")

// Config assembles a NeuroCard estimator.
type Config struct {
	Model made.Config

	// FactBits is the §5 factorization budget in bits per subcolumn;
	// 0 disables factorization.
	FactBits int

	// ContentCols selects the modeled columns per table. Nil models every
	// non-join-key column.
	ContentCols map[string][]string

	// Training.
	BatchSize      int     // tuples per gradient step
	WildcardProb   float64 // wildcard-skipping masking probability per tuple
	SamplerWorkers int     // parallel join-sampling threads feeding training
	Seed           int64

	// PSamples is the number of progressive samples per Estimate call.
	PSamples int

	// PlanCache bounds the compiled-plan LRU cache (entries); 0 selects the
	// default capacity. Repeated query shapes — the serving norm — skip
	// planning entirely on a hit.
	PlanCache int

	// Precision selects the serving element width (DESIGN.md §1.4). The
	// zero value serves at float64, aliasing the trainable parameters;
	// PrecisionFloat32 serves on a float32 kernel set converted once at
	// load. Training and checkpoints are float64 regardless.
	Precision Precision
}

// DefaultConfig returns a configuration scaled for CPU training, mirroring
// the paper's base setup (batch 2048 scaled down, 512 progressive samples,
// wildcard skipping on).
func DefaultConfig() Config {
	return Config{
		Model:          made.DefaultConfig(),
		FactBits:       12,
		BatchSize:      512,
		WildcardProb:   0.5,
		SamplerWorkers: 4,
		Seed:           1,
		PSamples:       512,
	}
}

// Estimator is a NeuroCard join cardinality estimator: one autoregressive
// density model over the full outer join of all tables in a schema,
// answering queries over any connected subset of tables.
type Estimator struct {
	domain *schema.Schema // defines dictionaries / token spaces
	data   *schema.Schema // current snapshot being modeled
	enc    *Encoder
	view   *dataView
	smp    *sampler.Sampler

	model     ProbSource
	trainable *made.Model // nil when model is an external source (oracle)

	joinSize float64
	cfg      Config
	rng      *rand.Rand // training-time randomness only; never used by Estimate

	eng     engine       // serving engine: session pool at the configured precision
	plans   *planCache   // compiled plans keyed by canonical query bytes
	qcount  atomic.Int64 // per-query seed counter for Estimate
	dataGen atomic.Int64 // snapshot generation: bumped by every UpdateData*
}

// initSessions wires the per-estimator serving runtime: a session pool at
// the configured serving precision, bound to the estimator's conditional
// source — MADE models get native zero-alloc sessions (float64 views alias
// the trainable parameters; float32 sessions share the model's converted
// snapshot), anything else (e.g. the exact oracle) goes through the float64
// generic adapter — plus the compiled-plan cache shared by all sessions.
// Plans carry no element-width state, so the cache survives a precision
// switch (SetPrecision re-runs only the pool wiring).
func (e *Estimator) initSessions() {
	if e.plans == nil {
		e.plans = newPlanCache(e.cfg.PlanCache)
	}
	m, isMade := e.model.(*made.Model)
	if e.cfg.Precision.resolve() == PrecisionFloat32 && isMade {
		e.eng = &poolEngine[float32]{e: e, pool: newSessionPool(func(rows int) inferSession[float32] {
			return m.NewInferSession32(rows)
		})}
		return
	}
	e.eng = &poolEngine[float64]{e: e, pool: newSessionPool(func(rows int) inferSession[float64] {
		if isMade {
			return m.NewInferSession(rows)
		}
		return newGenericSession(e.model, rows)
	})}
}

// Build constructs an untrained estimator over the schema: prepares the join
// sampler (join count tables), derives the encoder, and initializes the
// model. The same schema serves as domain and initial data snapshot.
func Build(sch *schema.Schema, cfg Config) (*Estimator, error) {
	return BuildWithDomain(sch, sch, cfg)
}

// BuildWithDomain separates the dictionary-defining domain schema from the
// data snapshot to model — the setup for the §7.6 update study, where
// partitioned snapshots of a database share the full database's
// dictionaries.
func BuildWithDomain(domain, data *schema.Schema, cfg Config) (*Estimator, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 512
	}
	if cfg.PSamples <= 0 {
		cfg.PSamples = 512
	}
	if cfg.SamplerWorkers <= 0 {
		cfg.SamplerWorkers = 1
	}
	prec, err := ParsePrecision(string(cfg.Precision))
	if err != nil {
		return nil, err
	}
	cfg.Precision = prec
	enc, err := NewEncoder(domain, cfg.ContentCols, cfg.FactBits)
	if err != nil {
		return nil, err
	}
	model, err := made.New(cfg.Model, enc.FlatDomains())
	if err != nil {
		return nil, err
	}
	e := &Estimator{
		domain:    domain,
		enc:       enc,
		model:     model,
		trainable: model,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
	e.initSessions()
	if err := e.UpdateData(data); err != nil {
		return nil, err
	}
	e.plans.invalidations.Store(0) // construction is not an invalidation
	return e, nil
}

// NewFromParts wires an estimator around an externally provided conditional
// source (e.g. the exact oracle) for testing inference algorithms in
// isolation from training.
func NewFromParts(domain, data *schema.Schema, enc *Encoder, src ProbSource, cfg Config) (*Estimator, error) {
	if src.NumCols() != enc.NumFlat() {
		return nil, fmt.Errorf("core: source has %d columns, encoder %d", src.NumCols(), enc.NumFlat())
	}
	if cfg.PSamples <= 0 {
		cfg.PSamples = 512
	}
	prec, err := ParsePrecision(string(cfg.Precision))
	if err != nil {
		return nil, err
	}
	if prec == PrecisionFloat32 {
		if _, ok := src.(*made.Model); !ok {
			return nil, fmt.Errorf("core: float32 serving requires a MADE model (conditional source %T serves float64 only)", src)
		}
	}
	cfg.Precision = prec
	e := &Estimator{
		domain: domain,
		enc:    enc,
		model:  src,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	e.initSessions()
	if err := e.UpdateData(data); err != nil {
		return nil, err
	}
	e.plans.invalidations.Store(0) // construction is not an invalidation
	return e, nil
}

// UpdateData points the estimator at a new data snapshot: join counts are
// recomputed (seconds, linear in data) and the fanout/content accessors are
// rebound. The model is untouched — follow with Train for an incremental
// update or retrain from scratch (§7.6's fast-update vs retrain).
func (e *Estimator) UpdateData(data *schema.Schema) error {
	view, err := e.enc.bind(data)
	if err != nil {
		return err
	}
	smp, err := sampler.New(data)
	if err != nil {
		return err
	}
	e.swapSnapshot(data, view, smp)
	return nil
}

// UpdateDataAppend is UpdateData for the ingest path: data must extend the
// current snapshot by appended rows (shared dictionaries, current rows as a
// prefix of every table — what ingest.Apply produces). The join counts are
// maintained incrementally (cost proportional to the appended rows and the
// ancestor rows they touch, not the dataset), with a result bit-identical to
// the full recompute UpdateData performs.
func (e *Estimator) UpdateDataAppend(data *schema.Schema) error {
	view, err := e.enc.bind(data)
	if err != nil {
		return err
	}
	smp, err := sampler.NewAppended(e.smp, data)
	if err != nil {
		return err
	}
	e.swapSnapshot(data, view, smp)
	return nil
}

func (e *Estimator) swapSnapshot(data *schema.Schema, view *dataView, smp *sampler.Sampler) {
	e.data = data
	e.view = view
	e.smp = smp
	e.joinSize = smp.JoinSize()
	e.dataGen.Add(1)
	// Compiled plans depend only on the domain schema's dictionaries and the
	// encoder, both of which a snapshot rebind leaves untouched — but a data
	// swap is rare and cold, so drop the cache defensively anyway. The drop is
	// counted: operators watching plan-cache hit rates need to tell routine
	// eviction from refresh-driven invalidation.
	e.plans.invalidate()
}

// DataGeneration returns the number of data-snapshot swaps this estimator has
// absorbed (1 after construction; each UpdateData/UpdateDataAppend adds one).
func (e *Estimator) DataGeneration() int64 { return e.dataGen.Load() }

// RebaseAppended promotes the current data snapshot to be the estimator's
// domain schema, re-deriving the encoder over it — the step that makes an
// estimator checkpointable again after UpdateDataAppend (checkpoints require
// domain == data). It succeeds only when the appended rows left the encoder
// shape unchanged: dictionaries are frozen by the ingest contract, but a new
// row can raise a join key's fanout beyond the old domain maximum, in which
// case the trained model no longer matches the re-derived shape and the
// caller must fall back to serving in memory (estimates stay valid — the
// encoder clamps out-of-domain fanouts) and retrain before checkpointing.
func (e *Estimator) RebaseAppended() error {
	if e.domain == e.data {
		return nil
	}
	enc, err := NewEncoder(e.data, e.cfg.ContentCols, e.cfg.FactBits)
	if err != nil {
		return fmt.Errorf("core: rebase: %w", err)
	}
	if err := equalDoms(enc.FlatDomains(), e.enc.FlatDomains()); err != nil {
		return fmt.Errorf("core: rebase: appended rows changed the encoder shape (fanout domain grew): %w", err)
	}
	view, err := enc.bind(e.data)
	if err != nil {
		return fmt.Errorf("core: rebase: %w", err)
	}
	e.domain = e.data
	e.enc = enc
	e.view = view
	// Plans hold references into the old encoder; recompile against the new one.
	e.plans.invalidate()
	return nil
}

// JoinSize returns |J| of the current snapshot's full outer join.
func (e *Estimator) JoinSize() float64 { return e.joinSize }

// Schema returns the data snapshot the estimator currently models — the
// serving layer uses it to build always-available fallback estimators (e.g.
// per-column histograms) next to the model.
func (e *Estimator) Schema() *schema.Schema { return e.data }

// Config returns the estimator's configuration (as normalized by Build or
// restored from a checkpoint).
func (e *Estimator) Config() Config { return e.cfg }

// SessionPoolStats reports the inference-session pool's free and checked-out
// counts — the serving daemon's occupancy metric.
func (e *Estimator) SessionPoolStats() (free, inUse int) { return e.eng.stats() }

// NumTables returns the number of tables in the modeled schema.
func (e *Estimator) NumTables() int { return e.domain.NumTables() }

// Encoder exposes the column encoding (for tools and diagnostics).
func (e *Estimator) Encoder() *Encoder { return e.enc }

// Model returns the trainable model, or nil for oracle-backed estimators.
func (e *Estimator) Model() *made.Model { return e.trainable }

// Bytes reports the model size using the paper's float32 accounting.
func (e *Estimator) Bytes() int {
	if e.trainable == nil {
		return 0
	}
	return e.trainable.Bytes()
}

// tailMean returns the mean of the final 10% of per-step losses.
func tailMean(tail []float64) float64 {
	n := len(tail) / 10
	if n < 1 {
		n = 1
	}
	sum := 0.0
	for _, l := range tail[len(tail)-n:] {
		sum += l
	}
	return sum / float64(n)
}

// Train streams approximately nTuples uniform samples of the full outer join
// through the model (maximum likelihood, §3.2). Sampling runs on
// cfg.SamplerWorkers goroutines concurrently with gradient computation,
// mirroring the paper's background sampling threads; batch buffers cycle
// through a fixed ring and gradient steps run on a reusable made.TrainSession,
// so the steady-state loop allocates nothing per step.
//
// Batch k's content is derived from (seed, k) alone and batches are
// consumed in sequence order, so the training trajectory is fully
// determined by the configured seed — independent of the sampler worker
// count and goroutine scheduling. It returns the mean training loss
// (nats/tuple) over the final 10% of steps.
func (e *Estimator) Train(nTuples int) (float64, error) {
	if e.trainable == nil {
		return 0, fmt.Errorf("core: estimator has no trainable model")
	}
	steps := (nTuples + e.cfg.BatchSize - 1) / e.cfg.BatchSize
	if steps < 1 {
		steps = 1
	}
	ts := e.trainable.NewTrainSession(e.cfg.BatchSize)
	batches, free := e.streamBatches(steps)
	// Reorder ring: workers finish out of order, gradient steps must not.
	// In-flight indexes always span < ringSlots (each holds a distinct ring
	// buffer), so slot collisions are impossible.
	slots := e.ringSlots()
	pending := make([]*trainBatch, slots)
	next := int64(0)
	tail := make([]float64, 0, steps)
	for tb := range batches {
		pending[tb.idx%int64(slots)] = tb
		for {
			nb := pending[next%int64(slots)]
			if nb == nil || nb.idx != next {
				break
			}
			pending[next%int64(slots)] = nil
			tail = append(tail, ts.Step(nb.toks, e.cfg.WildcardProb))
			free <- nb
			next++
		}
	}
	return tailMean(tail), nil
}

// TrainWithDraw trains on join rows produced by a custom draw function (in
// sampler table order, sampler.NullRow for NULL) instead of the unbiased
// Exact-Weight sampler. Used by the Table 5 (A) ablation, which feeds the
// model IBJS-style biased samples to measure the cost of violating the §4
// uniformity requirement.
func (e *Estimator) TrainWithDraw(nTuples int, draw func(rng *rand.Rand, out []int32)) (float64, error) {
	if e.trainable == nil {
		return 0, fmt.Errorf("core: estimator has no trainable model")
	}
	steps := (nTuples + e.cfg.BatchSize - 1) / e.cfg.BatchSize
	rng := rand.New(rand.NewSource(e.rng.Int63()))
	ts := e.trainable.NewTrainSession(e.cfg.BatchSize)
	tb := e.newTrainBatch()
	tail := make([]float64, 0, steps)
	for s := 0; s < steps; s++ {
		for i := range tb.rows {
			draw(rng, tb.rows[i])
		}
		e.enc.encodeRowsInto(e.view, tb.rows, tb.toks)
		tail = append(tail, ts.Step(tb.toks, e.cfg.WildcardProb))
	}
	return tailMean(tail), nil
}

// trainBatch is one slot of the training batch ring: sampled join rows and
// their encoded model tokens, both fully overwritten each reuse, plus the
// batch's position in the deterministic training sequence.
type trainBatch struct {
	idx  int64     // sequence number; content is a pure function of (seed, idx)
	rows [][]int32 // sampler table order
	toks [][]int32 // flat model tokens
}

// ringSlots is the training ring size: enough for every sampler worker to
// hold one buffer plus two queued ahead of the trainer.
func (e *Estimator) ringSlots() int { return e.cfg.SamplerWorkers + 2 }

// newTrainBatch allocates one ring slot sized for the configured batch.
func (e *Estimator) newTrainBatch() *trainBatch {
	bs := e.cfg.BatchSize
	nt := len(e.smp.Tables())
	nflat := e.enc.NumFlat()
	tb := &trainBatch{rows: make([][]int32, bs), toks: make([][]int32, bs)}
	rowBacking := make([]int32, bs*nt)
	tokBacking := make([]int32, bs*nflat)
	for i := 0; i < bs; i++ {
		tb.rows[i] = rowBacking[i*nt : (i+1)*nt]
		tb.toks[i] = tokBacking[i*nflat : (i+1)*nflat]
	}
	return tb
}

// streamBatches launches sampler workers producing encoded training batches.
// Buffers circulate through the returned free channel instead of being
// allocated per step: the consumer must send each received batch back after
// its gradient step. The ring holds ringSlots() buffers so samplers can run
// ahead of the trainer without unbounded memory.
//
// Each batch is sampled from an RNG reseeded to mix(baseSeed, batchIdx), so
// its content depends only on the configured seed and its sequence number —
// never on which worker produced it. Workers claim a ring buffer before
// drawing an index, which guarantees the lowest outstanding index is always
// held by a running worker and the in-order consumer cannot starve the ring.
func (e *Estimator) streamBatches(steps int) (<-chan *trainBatch, chan<- *trainBatch) {
	workers := e.cfg.SamplerWorkers
	ch := make(chan *trainBatch, workers)
	free := make(chan *trainBatch, e.ringSlots())
	for i := 0; i < e.ringSlots(); i++ {
		free <- e.newTrainBatch()
	}
	var produced atomic.Int64
	var wg sync.WaitGroup
	baseSeed := e.rng.Int63()
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := rand.NewSource(0)
			rng := rand.New(src)
			for {
				tb := <-free
				idx := produced.Add(1) - 1
				if idx >= int64(steps) {
					free <- tb
					return
				}
				src.Seed(mixSeed(baseSeed, idx))
				tb.idx = idx
				for i := range tb.rows {
					e.smp.Sample(rng, tb.rows[i])
				}
				e.enc.encodeRowsInto(e.view, tb.rows, tb.toks)
				ch <- tb
			}
		}()
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	return ch, free
}

// mixSeed derives a per-query RNG seed from the configured seed and a query
// index (splitmix64-style finalizer), so estimates depend only on (seed,
// index) — never on goroutine interleaving or shared RNG state.
func mixSeed(seed, idx int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(idx+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Estimate returns the estimated cardinality of q using the configured
// number of progressive samples. Safe for concurrent use: each call draws a
// unique index from an atomic counter and runs on its own pooled session.
func (e *Estimator) Estimate(q query.Query) (float64, error) {
	return e.EstimateIndexed(q, e.qcount.Add(1))
}

// psamples returns the configured progressive-sample count, clamped so
// every estimation path draws at least one sample.
func (e *Estimator) psamples() int {
	if e.cfg.PSamples < 1 {
		return 1
	}
	return e.cfg.PSamples
}

// EstimateIndexed runs one estimate whose randomness is fully determined by
// the configured seed and idx, independent of concurrency and call order —
// the primitive EstimateBatch workers and parallel evaluation harnesses use
// to get run-to-run identical results.
func (e *Estimator) EstimateIndexed(q query.Query, idx int64) (float64, error) {
	st := e.eng.acquire(e.psamples(), false)
	defer st.release()
	return st.estimateSeeded(context.Background(), q, e.cfg.Seed, idx)
}

// EstimateIndexedSerial is EstimateIndexed for callers that already run many
// estimates concurrently (parallel evaluation harnesses): the session
// executes its kernels inline, so W concurrent callers schedule W goroutines
// instead of W × kernel chunks. Results are identical to EstimateIndexed —
// kernel results do not depend on chunking.
func (e *Estimator) EstimateIndexedSerial(q query.Query, idx int64) (float64, error) {
	st := e.eng.acquire(e.psamples(), true)
	defer st.release()
	return st.estimateSeeded(context.Background(), q, e.cfg.Seed, idx)
}

// estimateSeeded is the shared single-query path over a held session — plan,
// empty-region shortcut, index-derived RNG, sampling — with an explicit base
// seed: the query's randomness is fully determined by (seed, idx). The
// serving API uses this to honor client-supplied seeds without touching the
// configured seed. ctx is checked cooperatively between sampling steps, so a
// request whose deadline expires mid-sampling returns ctx.Err() promptly
// instead of finishing the whole progressive-sampling pass.
func (st *inferStateOf[T]) estimateSeeded(ctx context.Context, q query.Query, seed, idx int64) (float64, error) {
	if faultinject.Enabled() {
		faultinject.MaybePanicEstimate()
	}
	cp, err := st.planFor(q)
	if err != nil {
		return 0, err
	}
	if cp.empty {
		// A filter matches no dictionary value: true cardinality is 0; the
		// Q-error convention lower-bounds estimates at 1.
		return 1, nil
	}
	rng := rand.New(rand.NewSource(mixSeed(seed, idx)))
	est, err := st.sample(ctx, cp, st.e.psamples(), rng)
	if err != nil {
		return 0, err
	}
	if faultinject.Enabled() && faultinject.MaybeNaNEstimate() {
		est = math.NaN()
	}
	return est, nil
}

// estimateSafe runs estimateSeeded under panic recovery: a panic anywhere in
// planning or sampling — including one re-raised from a kernel-pool chunk —
// becomes an ErrEstimatePanic-wrapped error. The caller must treat a
// panicked=true return as poisoning the session (discard it, do not pool it).
func (st *inferStateOf[T]) estimateSafe(ctx context.Context, q query.Query, seed, idx int64) (est float64, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			est, err, panicked = 0, fmt.Errorf("%w: %v", ErrEstimatePanic, r), true
		}
	}()
	est, err = st.estimateSeeded(ctx, q, seed, idx)
	return est, err, false
}

// EstimateBatch estimates all queries concurrently on up to `workers`
// goroutines (≤ 0 means GOMAXPROCS), each owning one inference session for
// its lifetime. Query i is seeded by (cfg.Seed, i), so results are identical
// run to run regardless of scheduling. Returns estimates aligned with
// queries and the first error encountered (by query index).
func (e *Estimator) EstimateBatch(queries []query.Query, workers int) ([]float64, error) {
	return e.EstimateBatchSeeded(queries, workers, e.cfg.Seed)
}

// EstimateBatchSeeded is EstimateBatch with an explicit base seed: query i's
// randomness derives from (seed, i) instead of (config seed, i). The serving
// API uses it to give clients reproducible batch estimates on demand.
func (e *Estimator) EstimateBatchSeeded(queries []query.Query, workers int, seed int64) ([]float64, error) {
	items := make([]BatchItem, len(queries))
	for i, q := range queries {
		items[i] = BatchItem{Query: q, Seed: seed, Idx: int64(i)}
	}
	ests, errs := e.EstimateItems(items, workers)
	for _, err := range errs {
		if err != nil {
			return ests, err
		}
	}
	return ests, nil
}

// BatchItem is one query of a fused batch that carries its own randomness
// source, so queries from independent callers can share a batch run without
// their results depending on who else is in the batch. A seeded serving
// request that would run alone as EstimateSeededIndexed(q, seed, 0) fuses as
// {Query: q, Seed: seed, Idx: 0} and produces the identical estimate.
type BatchItem struct {
	Query query.Query
	Seed  int64 // base seed; ignored when Auto
	Idx   int64 // RNG stream index under Seed; ignored when Auto
	// Auto draws (config seed, next atomic query index) at execution time —
	// the unseeded Estimate() semantics for callers that want a fresh
	// independent sample per call.
	Auto bool
	// Ctx, when non-nil, bounds this item: an item whose context is already
	// done fails positionally without running, and expiry mid-sampling is
	// detected between sampling steps. Items from independent requests fused
	// into one batch each keep their own deadline.
	Ctx context.Context
}

// EstimateItems estimates every item on up to `workers` pooled sessions
// (≤ 0 means GOMAXPROCS) and returns estimates and errors aligned with
// items: one bad query fails positionally instead of poisoning the batch.
// Item randomness comes from each item's own (Seed, Idx) pair, so results
// are independent of batch composition, worker count, and scheduling — the
// property the serving daemon's cross-request coalescer is built on.
//
// Fault containment: a panic inside any item's estimate is recovered into an
// ErrEstimatePanic positional error (the worker swaps its possibly-poisoned
// session for a fresh one and keeps going), and an item whose Ctx is done
// fails with its context error — before starting when already expired, or at
// the next inter-step check when it expires mid-sampling.
func (e *Estimator) EstimateItems(items []BatchItem, workers int) ([]float64, []error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	ests := make([]float64, len(items))
	errs := make([]error, len(items))
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// With several workers, each runs its kernels inline so the
			// batch never schedules workers × kernel-chunk goroutines.
			serial := workers > 1
			st := e.eng.acquire(e.psamples(), serial)
			defer func() { st.release() }()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				it := &items[i]
				ctx := it.Ctx
				if ctx == nil {
					ctx = context.Background()
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				seed, idx := it.Seed, it.Idx
				if it.Auto {
					seed, idx = e.cfg.Seed, e.qcount.Add(1)
				}
				var panicked bool
				ests[i], errs[i], panicked = st.estimateSafe(ctx, it.Query, seed, idx)
				if panicked {
					st.discard()
					st = e.eng.acquire(e.psamples(), serial)
				}
			}
		}()
	}
	wg.Wait()
	return ests, errs
}

// EstimateSeededIndexed runs one estimate whose randomness derives from the
// caller's (seed, idx) pair — the single-query seeded serving path.
func (e *Estimator) EstimateSeededIndexed(q query.Query, seed, idx int64) (float64, error) {
	st := e.eng.acquire(e.psamples(), false)
	defer st.release()
	return st.estimateSeeded(context.Background(), q, seed, idx)
}

// EstimateSeededIndexedCtx is EstimateSeededIndexed bounded by ctx and
// hardened for serving: deadline expiry mid-sampling returns ctx.Err(), and
// a panic inside the estimate is recovered into an ErrEstimatePanic error
// (the session it poisoned is discarded rather than pooled).
func (e *Estimator) EstimateSeededIndexedCtx(ctx context.Context, q query.Query, seed, idx int64) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	st := e.eng.acquire(e.psamples(), false)
	est, err, panicked := st.estimateSafe(ctx, q, seed, idx)
	if panicked {
		st.discard()
	} else {
		st.release()
	}
	return est, err
}

// EstimateCtx is Estimate bounded by ctx with the same panic hardening as
// EstimateSeededIndexedCtx — the serving daemon's unseeded single-query path.
func (e *Estimator) EstimateCtx(ctx context.Context, q query.Query) (float64, error) {
	return e.EstimateSeededIndexedCtx(ctx, q, e.cfg.Seed, e.qcount.Add(1))
}
