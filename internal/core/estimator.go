package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"neurocard/internal/made"
	"neurocard/internal/query"
	"neurocard/internal/sampler"
	"neurocard/internal/schema"
)

// Config assembles a NeuroCard estimator.
type Config struct {
	Model made.Config

	// FactBits is the §5 factorization budget in bits per subcolumn;
	// 0 disables factorization.
	FactBits int

	// ContentCols selects the modeled columns per table. Nil models every
	// non-join-key column.
	ContentCols map[string][]string

	// Training.
	BatchSize      int     // tuples per gradient step
	WildcardProb   float64 // wildcard-skipping masking probability per tuple
	SamplerWorkers int     // parallel join-sampling threads feeding training
	Seed           int64

	// PSamples is the number of progressive samples per Estimate call.
	PSamples int
}

// DefaultConfig returns a configuration scaled for CPU training, mirroring
// the paper's base setup (batch 2048 scaled down, 512 progressive samples,
// wildcard skipping on).
func DefaultConfig() Config {
	return Config{
		Model:          made.DefaultConfig(),
		FactBits:       12,
		BatchSize:      512,
		WildcardProb:   0.5,
		SamplerWorkers: 4,
		Seed:           1,
		PSamples:       512,
	}
}

// Estimator is a NeuroCard join cardinality estimator: one autoregressive
// density model over the full outer join of all tables in a schema,
// answering queries over any connected subset of tables.
type Estimator struct {
	domain *schema.Schema // defines dictionaries / token spaces
	data   *schema.Schema // current snapshot being modeled
	enc    *Encoder
	view   *dataView
	smp    *sampler.Sampler

	model     ProbSource
	trainable *made.Model // nil when model is an external source (oracle)

	joinSize float64
	cfg      Config
	rng      *rand.Rand

	mu sync.Mutex // guards Estimate's shared rng
}

// Build constructs an untrained estimator over the schema: prepares the join
// sampler (join count tables), derives the encoder, and initializes the
// model. The same schema serves as domain and initial data snapshot.
func Build(sch *schema.Schema, cfg Config) (*Estimator, error) {
	return BuildWithDomain(sch, sch, cfg)
}

// BuildWithDomain separates the dictionary-defining domain schema from the
// data snapshot to model — the setup for the §7.6 update study, where
// partitioned snapshots of a database share the full database's
// dictionaries.
func BuildWithDomain(domain, data *schema.Schema, cfg Config) (*Estimator, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 512
	}
	if cfg.PSamples <= 0 {
		cfg.PSamples = 512
	}
	if cfg.SamplerWorkers <= 0 {
		cfg.SamplerWorkers = 1
	}
	enc, err := NewEncoder(domain, cfg.ContentCols, cfg.FactBits)
	if err != nil {
		return nil, err
	}
	model, err := made.New(cfg.Model, enc.FlatDomains())
	if err != nil {
		return nil, err
	}
	e := &Estimator{
		domain:    domain,
		enc:       enc,
		model:     model,
		trainable: model,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
	if err := e.UpdateData(data); err != nil {
		return nil, err
	}
	return e, nil
}

// NewFromParts wires an estimator around an externally provided conditional
// source (e.g. the exact oracle) for testing inference algorithms in
// isolation from training.
func NewFromParts(domain, data *schema.Schema, enc *Encoder, src ProbSource, cfg Config) (*Estimator, error) {
	if src.NumCols() != enc.NumFlat() {
		return nil, fmt.Errorf("core: source has %d columns, encoder %d", src.NumCols(), enc.NumFlat())
	}
	if cfg.PSamples <= 0 {
		cfg.PSamples = 512
	}
	e := &Estimator{
		domain: domain,
		enc:    enc,
		model:  src,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	if err := e.UpdateData(data); err != nil {
		return nil, err
	}
	return e, nil
}

// UpdateData points the estimator at a new data snapshot: join counts are
// recomputed (seconds, linear in data) and the fanout/content accessors are
// rebound. The model is untouched — follow with Train for an incremental
// update or retrain from scratch (§7.6's fast-update vs retrain).
func (e *Estimator) UpdateData(data *schema.Schema) error {
	view, err := e.enc.bind(data)
	if err != nil {
		return err
	}
	smp, err := sampler.New(data)
	if err != nil {
		return err
	}
	e.data = data
	e.view = view
	e.smp = smp
	e.joinSize = smp.JoinSize()
	return nil
}

// JoinSize returns |J| of the current snapshot's full outer join.
func (e *Estimator) JoinSize() float64 { return e.joinSize }

// Encoder exposes the column encoding (for tools and diagnostics).
func (e *Estimator) Encoder() *Encoder { return e.enc }

// Model returns the trainable model, or nil for oracle-backed estimators.
func (e *Estimator) Model() *made.Model { return e.trainable }

// Bytes reports the model size using the paper's float32 accounting.
func (e *Estimator) Bytes() int {
	if e.trainable == nil {
		return 0
	}
	return e.trainable.Bytes()
}

// Train streams approximately nTuples uniform samples of the full outer join
// through the model (maximum likelihood, §3.2). Sampling runs on
// cfg.SamplerWorkers goroutines concurrently with gradient computation,
// mirroring the paper's background sampling threads. It returns the mean
// training loss (nats/tuple) over the final 10% of steps.
func (e *Estimator) Train(nTuples int) (float64, error) {
	if e.trainable == nil {
		return 0, fmt.Errorf("core: estimator has no trainable model")
	}
	steps := (nTuples + e.cfg.BatchSize - 1) / e.cfg.BatchSize
	if steps < 1 {
		steps = 1
	}
	batches := e.streamBatches(steps)
	var tail []float64
	for batch := range batches {
		loss := e.trainable.TrainStep(batch, e.cfg.WildcardProb)
		tail = append(tail, loss)
	}
	n := len(tail) / 10
	if n < 1 {
		n = 1
	}
	sum := 0.0
	for _, l := range tail[len(tail)-n:] {
		sum += l
	}
	return sum / float64(n), nil
}

// TrainWithDraw trains on join rows produced by a custom draw function (in
// sampler table order, sampler.NullRow for NULL) instead of the unbiased
// Exact-Weight sampler. Used by the Table 5 (A) ablation, which feeds the
// model IBJS-style biased samples to measure the cost of violating the §4
// uniformity requirement.
func (e *Estimator) TrainWithDraw(nTuples int, draw func(rng *rand.Rand, out []int32)) (float64, error) {
	if e.trainable == nil {
		return 0, fmt.Errorf("core: estimator has no trainable model")
	}
	steps := (nTuples + e.cfg.BatchSize - 1) / e.cfg.BatchSize
	rng := rand.New(rand.NewSource(e.rng.Int63()))
	nt := len(e.smp.Tables())
	var tail []float64
	for s := 0; s < steps; s++ {
		rows := make([][]int32, e.cfg.BatchSize)
		for i := range rows {
			rows[i] = make([]int32, nt)
			draw(rng, rows[i])
		}
		loss := e.trainable.TrainStep(e.enc.encodeRows(e.view, rows), e.cfg.WildcardProb)
		tail = append(tail, loss)
	}
	n := len(tail) / 10
	if n < 1 {
		n = 1
	}
	sum := 0.0
	for _, l := range tail[len(tail)-n:] {
		sum += l
	}
	return sum / float64(n), nil
}

// streamBatches launches sampler workers producing encoded training batches.
func (e *Estimator) streamBatches(steps int) <-chan [][]int32 {
	workers := e.cfg.SamplerWorkers
	ch := make(chan [][]int32, workers)
	var produced atomic.Int64
	var wg sync.WaitGroup
	baseSeed := e.rng.Int63()
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(baseSeed + int64(wkr)*7_654_321))
			nt := len(e.smp.Tables())
			for {
				if produced.Add(1) > int64(steps) {
					return
				}
				rows := make([][]int32, e.cfg.BatchSize)
				for i := range rows {
					rows[i] = make([]int32, nt)
					e.smp.Sample(rng, rows[i])
				}
				ch <- e.enc.encodeRows(e.view, rows)
			}
		}(wkr)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	return ch
}

// Estimate returns the estimated cardinality of q using the configured
// number of progressive samples.
func (e *Estimator) Estimate(q query.Query) (float64, error) {
	e.mu.Lock()
	seed := e.rng.Int63()
	e.mu.Unlock()
	return e.EstimateWithSamples(q, e.cfg.PSamples, rand.New(rand.NewSource(seed)))
}
