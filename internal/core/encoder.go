package core

import (
	"fmt"

	"neurocard/internal/factor"
	"neurocard/internal/nn"
	"neurocard/internal/sampler"
	"neurocard/internal/schema"
	"neurocard/internal/table"
)

// MaskToken aliases the model's wildcard input token.
const MaskToken int32 = -1

// ProbSource provides the autoregressive conditionals progressive sampling
// integrates over. *made.Model implements it; internal/oracle provides an
// exact implementation for validating inference algorithms.
type ProbSource interface {
	NumCols() int
	DomainSize(i int) int
	// Conditional writes p(X_col | tokens_<col>) row-normalized into out
	// (len(tokens) × DomainSize(col)). Wildcard positions hold MaskToken.
	Conditional(tokens [][]int32, col int, out *nn.Mat)
}

// ColKind distinguishes the three kinds of learned columns.
type ColKind uint8

// Learned column kinds: base-table content, §6 indicator, §6 fanout.
const (
	KindContent ColKind = iota
	KindIndicator
	KindFanout
)

// String names the kind for diagnostics.
func (k ColKind) String() string {
	switch k {
	case KindContent:
		return "content"
	case KindIndicator:
		return "indicator"
	default:
		return "fanout"
	}
}

// ModelCol is one logical column of the learned joint distribution. Content
// and fanout columns may factorize into several flat subcolumns.
type ModelCol struct {
	Kind       ColKind
	Table      string
	Col        string // content column name, or the fanout's join-key column
	Fact       factor.Factorization
	FlatOffset int // index of the first flat (sub)column in the model
}

// Encoder maps sampled join rows to flat model tokens. It is built against a
// "domain schema" whose dictionaries define the token spaces; data snapshots
// derived via table.Filter share those dictionaries, which is what makes
// incremental updates (§7.6) possible without re-encoding the model.
type Encoder struct {
	domain   *schema.Schema
	tables   []string // sampler order (schema BFS)
	tIdx     map[string]int
	cols     []ModelCol
	flatDoms []int
	modeled  map[string]map[string]bool // table → content column → modeled
}

// NewEncoder builds the encoder. contentCols maps table name → modeled
// column names (in order); a nil map models every non-join-key column of
// every table. Join keys are never modeled directly — their information
// enters through indicators and fanouts, mirroring the paper's column
// counts (Table 1). factBits is the §5 factorization budget (0 disables).
func NewEncoder(domain *schema.Schema, contentCols map[string][]string, factBits int) (*Encoder, error) {
	e := &Encoder{
		domain: domain,
		tables: domain.Tables(),
		tIdx:   make(map[string]int),
	}
	for i, t := range e.tables {
		e.tIdx[t] = i
	}

	addCol := func(mc ModelCol) {
		mc.FlatOffset = len(e.flatDoms)
		for _, sz := range mc.Fact.Size {
			e.flatDoms = append(e.flatDoms, sz)
		}
		e.cols = append(e.cols, mc)
	}

	// Content columns, table by table in BFS order (§6: content first).
	for _, tname := range e.tables {
		t := domain.Table(tname)
		var names []string
		if contentCols != nil {
			names = contentCols[tname]
		} else {
			keys := make(map[string]bool)
			for _, k := range domain.JoinKeys(tname) {
				keys[k] = true
			}
			for _, c := range t.Columns() {
				if !keys[c.Name()] {
					names = append(names, c.Name())
				}
			}
		}
		for _, cn := range names {
			c := t.Col(cn)
			if c == nil {
				return nil, fmt.Errorf("core: table %q has no column %q", tname, cn)
			}
			addCol(ModelCol{
				Kind: KindContent, Table: tname, Col: cn,
				Fact: factor.New(c.DictSize(), factBits),
			})
		}
	}
	// Indicators (before fanouts, per §6's ordering discussion).
	for _, tname := range e.tables {
		addCol(ModelCol{
			Kind: KindIndicator, Table: tname,
			Fact: factor.New(2, 0),
		})
	}
	// Fanouts: one per (table, join key). Keys whose fanout is constant 1
	// (unique keys) are omitted — dividing by one never changes an estimate
	// (the paper's Figure 4 makes the same omission).
	for _, tname := range e.tables {
		t := domain.Table(tname)
		for _, key := range domain.JoinKeys(tname) {
			fans, err := t.Fanouts(key)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			maxFan := int32(1)
			for _, f := range fans {
				if f > maxFan {
					maxFan = f
				}
			}
			if maxFan == 1 {
				continue
			}
			// Token = fanout - 1 ∈ [0, maxFan); any snapshot's fanouts are
			// bounded by the domain schema's (subsets only shrink counts).
			addCol(ModelCol{
				Kind: KindFanout, Table: tname, Col: key,
				Fact: factor.New(int(maxFan), factBits),
			})
		}
	}
	if len(e.cols) == 0 {
		return nil, fmt.Errorf("core: encoder has no columns")
	}
	e.modeled = make(map[string]map[string]bool)
	for _, mc := range e.cols {
		if mc.Kind == KindContent {
			if e.modeled[mc.Table] == nil {
				e.modeled[mc.Table] = make(map[string]bool)
			}
			e.modeled[mc.Table][mc.Col] = true
		}
	}
	return e, nil
}

// Columns returns the logical model columns in autoregressive order.
func (e *Encoder) Columns() []ModelCol { return e.cols }

// FlatDomains returns the per-flat-subcolumn token domain sizes, the shape
// handed to the density model.
func (e *Encoder) FlatDomains() []int { return append([]int(nil), e.flatDoms...) }

// NumFlat returns the number of flat model columns.
func (e *Encoder) NumFlat() int { return len(e.flatDoms) }

// Tables returns the join-row table order expected by EncodeRows.
func (e *Encoder) Tables() []string { return e.tables }

// dataView binds the encoder to a concrete data snapshot: resolved column
// pointers and precomputed fanout arrays, with dictionary compatibility
// verified.
type dataView struct {
	contentCols []*table.Column // aligned with content ModelCols, in order
	fanouts     [][]int32       // aligned with fanout ModelCols, in order
	tIdx        []int           // per ModelCol: table position in join rows
}

// bind validates that data's dictionaries match the encoder's domain schema
// and resolves the per-column accessors.
func (e *Encoder) bind(data *schema.Schema) (*dataView, error) {
	v := &dataView{}
	for _, mc := range e.cols {
		ti, ok := e.tIdx[mc.Table]
		if !ok || data.Table(mc.Table) == nil {
			return nil, fmt.Errorf("core: data snapshot lacks table %q", mc.Table)
		}
		v.tIdx = append(v.tIdx, ti)
		switch mc.Kind {
		case KindContent:
			c := data.Table(mc.Table).Col(mc.Col)
			if c == nil {
				return nil, fmt.Errorf("core: data snapshot lacks column %s.%s", mc.Table, mc.Col)
			}
			if c.DictSize() != mc.Fact.Dom {
				return nil, fmt.Errorf("core: %s.%s dictionary size %d differs from domain schema's %d; snapshots must share dictionaries (table.Filter)",
					mc.Table, mc.Col, c.DictSize(), mc.Fact.Dom)
			}
			v.contentCols = append(v.contentCols, c)
		case KindFanout:
			fans, err := data.Table(mc.Table).Fanouts(mc.Col)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			v.fanouts = append(v.fanouts, fans)
		}
	}
	return v, nil
}

// encodeRows turns sampled join rows (sampler table order, NullRow for NULL)
// into freshly allocated flat model token tuples.
func (e *Encoder) encodeRows(v *dataView, rows [][]int32) [][]int32 {
	out := make([][]int32, len(rows))
	nflat := len(e.flatDoms)
	backing := make([]int32, len(rows)*nflat)
	for r := range rows {
		out[r] = backing[r*nflat : (r+1)*nflat]
	}
	e.encodeRowsInto(v, rows, out)
	return out
}

// encodeRowsInto encodes join rows into caller-provided token tuples (each
// len(e.flatDoms)), overwriting every slot — the training loop's batch-ring
// reuse path, which allocates nothing.
func (e *Encoder) encodeRowsInto(v *dataView, rows, out [][]int32) {
	for r, row := range rows {
		toks := out[r]
		ci, fi := 0, 0
		for mi, mc := range e.cols {
			base := row[v.tIdx[mi]]
			switch mc.Kind {
			case KindContent:
				var id int32 // NULL table ⇒ NULL value (dict ID 0)
				if base != sampler.NullRow {
					id = v.contentCols[ci].ID(int(base))
				}
				mc.Fact.Encode(id, toks[mc.FlatOffset:mc.FlatOffset+mc.Fact.NumSubs()])
				ci++
			case KindIndicator:
				if base != sampler.NullRow {
					toks[mc.FlatOffset] = 1
				} else {
					toks[mc.FlatOffset] = 0
				}
			case KindFanout:
				fan := int32(1)
				if base != sampler.NullRow {
					fan = v.fanouts[fi][base]
				}
				if int(fan) > mc.Fact.Dom {
					// Defensive clamp: cannot occur for snapshots of the
					// domain schema, but protects foreign data.
					fan = int32(mc.Fact.Dom)
				}
				mc.Fact.Encode(fan-1, toks[mc.FlatOffset:mc.FlatOffset+mc.Fact.NumSubs()])
				fi++
			}
		}
	}
}

// EncodeJoinRows is the exported encoding entry point used by the oracle and
// by tools: it binds data and encodes the given join rows.
func (e *Encoder) EncodeJoinRows(data *schema.Schema, rows [][]int32) ([][]int32, error) {
	v, err := e.bind(data)
	if err != nil {
		return nil, err
	}
	return e.encodeRows(v, rows), nil
}
