package core

import (
	"context"
	"fmt"
	"math/rand"

	"neurocard/internal/made"
	"neurocard/internal/nn"
	"neurocard/internal/query"
)

// Precision selects the element width of the serving kernels (DESIGN.md
// §1.4). Checkpoints and training always run float64 — precision only
// changes the inference path behind the session abstraction.
type Precision string

const (
	// PrecisionFloat64 serves on kernels that alias the trainable float64
	// parameters directly: zero conversion, bit-reproducible against the
	// reference kernels to the repo's 1e-9 equivalence convention. The
	// default.
	PrecisionFloat64 Precision = "float64"
	// PrecisionFloat32 serves on a float32 kernel set converted once from
	// the float64 masters at estimator load (made.Model.weights32): half the
	// resident serving-weight bytes and wider effective SIMD, gated by the
	// measured q-error delta rather than bit equivalence.
	PrecisionFloat32 Precision = "float32"
)

// ParsePrecision canonicalizes a user-facing precision spelling. The empty
// string selects the default (float64), so zero-valued configs — including
// checkpoints written before precision existed — keep their exact behavior.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "float64", "f64", "64":
		return PrecisionFloat64, nil
	case "float32", "f32", "32":
		return PrecisionFloat32, nil
	}
	return "", fmt.Errorf("core: unknown precision %q (want float64 or float32)", s)
}

// resolve maps the zero value to the default width without erroring; any
// string that is not exactly PrecisionFloat32 serves at float64 (construction
// paths validate spellings up front via ParsePrecision).
func (p Precision) resolve() Precision {
	if p == PrecisionFloat32 {
		return PrecisionFloat32
	}
	return PrecisionFloat64
}

// engineSession is one checked-out serving session, already bound to a
// concrete element width. The width-agnostic Estimator entry points run
// entirely against this seam; *inferStateOf[T] is the only implementation,
// so the interface costs one indirection at checkout and none inside the
// sampling loop.
type engineSession interface {
	estimateSeeded(ctx context.Context, q query.Query, seed, idx int64) (float64, error)
	estimateSafe(ctx context.Context, q query.Query, seed, idx int64) (est float64, err error, panicked bool)
	estimateWithSamples(ctx context.Context, q query.Query, nSamples int, rng *rand.Rand) (float64, error)
	release()
	discard()
}

// engine hands out serving sessions at the estimator's configured precision.
type engine interface {
	acquire(rows int, serial bool) engineSession
	stats() (free, inUse int)
}

// poolEngine binds a session pool at width T to its estimator: acquire
// stamps the estimator back-reference so a checked-out state can plan and
// sample without the caller ever naming T.
type poolEngine[T nn.Elem] struct {
	e    *Estimator
	pool *sessionPool[T]
}

func (en *poolEngine[T]) acquire(rows int, serial bool) engineSession {
	st := en.pool.get(rows, serial)
	st.e = en.e
	return st
}

func (en *poolEngine[T]) stats() (free, inUse int) { return en.pool.stats() }

// Precision reports the serving precision the estimator currently runs at.
func (e *Estimator) Precision() Precision { return e.cfg.Precision.resolve() }

// SetPrecision switches the serving precision, rebuilding the session pool
// at the new width; the compiled-plan cache carries no element-width state
// and survives the switch. Float32 serving requires a trainable MADE model
// (generic ProbSources speak float64 only). Not safe to call concurrently
// with in-flight estimates: sessions already checked out keep their old
// width until returned, so switch before serving traffic — the registry
// does this at model load.
func (e *Estimator) SetPrecision(p Precision) error {
	prec, err := ParsePrecision(string(p))
	if err != nil {
		return err
	}
	if prec == PrecisionFloat32 {
		if _, ok := e.model.(*made.Model); !ok {
			return fmt.Errorf("core: float32 serving requires a MADE model (conditional source %T serves float64 only)", e.model)
		}
	}
	e.cfg.Precision = prec
	e.initSessions()
	return nil
}

// ServingWeightBytes reports the resident bytes of the weights the serving
// kernels read: NumParams × 4 at float32, × 8 at float64. At float32 the
// float64 masters additionally stay resident for training and checkpointing
// — this gauge tracks the serving working set (what the per-query forward
// passes stream through cache), not total process memory.
func (e *Estimator) ServingWeightBytes() int {
	if e.trainable == nil {
		return 0
	}
	n := e.trainable.NumParams()
	if e.Precision() == PrecisionFloat32 {
		return n * 4
	}
	return n * 8
}
