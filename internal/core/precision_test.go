package core_test

import (
	"math"
	"testing"

	"neurocard/internal/core"
	"neurocard/internal/query"
	"neurocard/internal/value"
)

func TestParsePrecision(t *testing.T) {
	cases := []struct {
		in   string
		want core.Precision
	}{
		{"", core.PrecisionFloat64},
		{"float64", core.PrecisionFloat64},
		{"f64", core.PrecisionFloat64},
		{"64", core.PrecisionFloat64},
		{"float32", core.PrecisionFloat32},
		{"f32", core.PrecisionFloat32},
		{"32", core.PrecisionFloat32},
	}
	for _, tc := range cases {
		got, err := core.ParsePrecision(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePrecision(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"float16", "double", "FLOAT32", " float64"} {
		if _, err := core.ParsePrecision(bad); err == nil {
			t.Errorf("ParsePrecision(%q) accepted", bad)
		}
	}
}

// trainedFigure4 builds and briefly trains a MADE estimator over the paper's
// running example, the fixture the precision-switch tests share.
func trainedFigure4(t *testing.T, seed int64) *core.Estimator {
	t.Helper()
	s := figure4(t)
	cfg := core.DefaultConfig()
	cfg.Model.Hidden = 24
	cfg.Model.EmbedDim = 6
	cfg.Model.Blocks = 1
	cfg.PSamples = 256
	cfg.BatchSize = 64
	cfg.Seed = seed
	cfg.ContentCols = map[string][]string{"A": {"x", "year"}, "B": {"x", "y"}, "C": {"y"}}
	est, err := core.Build(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Train(512); err != nil {
		t.Fatal(err)
	}
	return est
}

// TestSetPrecisionSwitchesWidth covers the serving-width switch end to end:
// default reporting, weight-bytes halving at float32, round-tripping back to
// float64, and spelling validation.
func TestSetPrecisionSwitchesWidth(t *testing.T) {
	est := trainedFigure4(t, 21)
	if got := est.Precision(); got != core.PrecisionFloat64 {
		t.Fatalf("default precision = %v, want float64", got)
	}
	bytes64 := est.ServingWeightBytes()
	if bytes64 <= 0 || bytes64%8 != 0 {
		t.Fatalf("float64 ServingWeightBytes = %d, want positive multiple of 8", bytes64)
	}
	if err := est.SetPrecision("f32"); err != nil {
		t.Fatal(err)
	}
	if got := est.Precision(); got != core.PrecisionFloat32 {
		t.Fatalf("precision after SetPrecision(f32) = %v", got)
	}
	if got := est.ServingWeightBytes(); got != bytes64/2 {
		t.Fatalf("float32 ServingWeightBytes = %d, want half of %d", got, bytes64)
	}
	if err := est.SetPrecision("bfloat16"); err == nil {
		t.Fatal("SetPrecision accepted an unknown width")
	}
	if got := est.Precision(); got != core.PrecisionFloat32 {
		t.Fatalf("failed SetPrecision changed the width to %v", got)
	}
	if err := est.SetPrecision(core.PrecisionFloat64); err != nil {
		t.Fatal(err)
	}
	if got := est.ServingWeightBytes(); got != bytes64 {
		t.Fatalf("ServingWeightBytes after switching back = %d, want %d", got, bytes64)
	}
}

// TestSetPrecisionRejectsNonMade: generic ProbSources (the exact oracle)
// speak float64 only, so float32 serving must be refused without breaking
// the estimator.
func TestSetPrecisionRejectsNonMade(t *testing.T) {
	est := oracleEstimator(t, figure4(t), 0, 64, 9)
	if err := est.SetPrecision(core.PrecisionFloat32); err == nil {
		t.Fatal("float32 serving accepted for a non-MADE conditional source")
	}
	if _, err := est.Estimate(query.Query{Tables: []string{"B"}}); err != nil {
		t.Fatalf("estimator unusable after rejected SetPrecision: %v", err)
	}
}

// TestFloat32EstimatesTrackFloat64 re-serves the same seeded queries after a
// width switch and bounds the cross-width drift. The widths are not
// bit-comparable — a float32 conditional can flip a sampled token when the
// draw lands within rounding distance of a CDF boundary — so the assertion
// is the serving-level one the accuracy gate formalizes: per-query estimates
// within a small q-error factor of each other.
func TestFloat32EstimatesTrackFloat64(t *testing.T) {
	est := trainedFigure4(t, 33)
	queries := []query.Query{
		{Tables: []string{"A", "B", "C"}},
		{Tables: []string{"B"}},
		{Tables: []string{"A", "B"},
			Filters: []query.Filter{{Table: "A", Col: "year", Op: query.OpGe, Val: value.Int(1995)}}},
		{Tables: []string{"A", "B", "C"},
			Filters: []query.Filter{{Table: "A", Col: "x", Op: query.OpEq, Val: value.Int(2)}}},
	}
	ests64 := make([]float64, len(queries))
	for i, q := range queries {
		v, err := est.EstimateSeededIndexed(q, 7, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		ests64[i] = v
	}
	if err := est.SetPrecision(core.PrecisionFloat32); err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		v, err := est.EstimateSeededIndexed(q, 7, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(v) || v < 1 {
			t.Fatalf("query %d: float32 estimate %v", i, v)
		}
		qerr := math.Max(v/ests64[i], ests64[i]/v)
		if qerr > 1.5 {
			t.Errorf("query %d: float32 estimate %v vs float64 %v (q-error %.3f)", i, v, ests64[i], qerr)
		}
	}
}

// TestBuildWithConfiguredPrecision: Config.Precision selects the width at
// construction (the path checkpoints restore through), and a bad spelling is
// rejected up front.
func TestBuildWithConfiguredPrecision(t *testing.T) {
	s := figure4(t)
	cfg := core.DefaultConfig()
	cfg.Model.Hidden = 16
	cfg.Model.EmbedDim = 4
	cfg.PSamples = 64
	cfg.Seed = 2
	cfg.Precision = "f32"
	est, err := core.Build(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := est.Precision(); got != core.PrecisionFloat32 {
		t.Fatalf("built precision = %v, want float32", got)
	}
	if _, err := est.Estimate(query.Query{Tables: []string{"A"}}); err != nil {
		t.Fatal(err)
	}
	cfg.Precision = "half"
	if _, err := core.Build(s, cfg); err == nil {
		t.Fatal("Build accepted an unknown precision")
	}
}
