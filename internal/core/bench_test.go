package core_test

import (
	"math/rand"
	"testing"

	"neurocard/internal/core"
	"neurocard/internal/datagen"
	"neurocard/internal/query"
	"neurocard/internal/workload"
)

// benchEstimator builds an untrained (but fully wired) NeuroCard estimator
// over a small synthetic JOB-light instance plus a query workload. Untrained
// weights produce valid conditionals, so this measures pure inference cost.
func benchEstimator(b *testing.B, prec core.Precision) (*core.Estimator, []query.Query) {
	b.Helper()
	d, err := datagen.JOBLight(datagen.Config{Seed: 1, Scale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.ContentCols = d.ContentCols
	cfg.PSamples = 128
	cfg.Precision = prec
	est, err := core.Build(d.Schema, cfg)
	if err != nil {
		b.Fatal(err)
	}
	wl, err := workload.JOBLightRanges(d, 32, 7)
	if err != nil {
		b.Fatal(err)
	}
	qs := make([]query.Query, len(wl.Queries))
	for i, lq := range wl.Queries {
		qs[i] = lq.Query
	}
	return est, qs
}

// benchPrecisions are the serving widths every estimate benchmark runs at —
// the float64/float32 comparison tracked in EXPERIMENTS.md.
var benchPrecisions = []core.Precision{core.PrecisionFloat64, core.PrecisionFloat32}

// BenchmarkEstimateLatency is the serving-throughput baseline tracked in
// EXPERIMENTS.md: single-query progressive-sampling latency, per serving
// precision. It reports queries/sec alongside allocs/op so hot-path
// regressions are visible.
func BenchmarkEstimateLatency(b *testing.B) {
	for _, prec := range benchPrecisions {
		b.Run(string(prec), func(b *testing.B) {
			est, qs := benchEstimator(b, prec)
			rng := rand.New(rand.NewSource(3))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := est.EstimateWithSamples(qs[i%len(qs)], 128, rng); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
		})
	}
}

// BenchmarkEstimateBatch measures concurrent batch throughput across worker
// sessions (the serving configuration), per serving precision.
func BenchmarkEstimateBatch(b *testing.B) {
	for _, prec := range benchPrecisions {
		b.Run(string(prec), func(b *testing.B) {
			est, qs := benchEstimator(b, prec)
			b.ReportAllocs()
			b.ResetTimer()
			n := 0
			for n < b.N {
				if _, err := est.EstimateBatch(qs, 8); err != nil {
					b.Fatal(err)
				}
				n += len(qs)
			}
			b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "queries/sec")
		})
	}
}
