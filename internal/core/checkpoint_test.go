package core_test

import (
	"bytes"
	"math"
	"testing"

	"neurocard/internal/core"
)

// checkpointEstimator builds and briefly trains a small estimator with
// factorization enabled, so every checkpoint section (dictionaries,
// factorized encoder, join counts, trained weights) carries real state.
func checkpointEstimator(t *testing.T) *core.Estimator {
	t.Helper()
	s := figure4(t)
	cfg := core.DefaultConfig()
	cfg.Model.Hidden = 24
	cfg.Model.EmbedDim = 6
	cfg.Model.Blocks = 1
	cfg.FactBits = 1 // tiny domains: force multi-subcolumn factorization
	cfg.PSamples = 64
	cfg.BatchSize = 64
	cfg.Seed = 7
	cfg.ContentCols = allColumns(s)
	est, err := core.Build(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Train(512); err != nil {
		t.Fatal(err)
	}
	return est
}

// TestCheckpointRoundTripEquivalence: a restored estimator must produce
// estimates identical (to 1e-9; in fact bit-identical, since weights are
// stored at full precision) to the original's under fixed (seed, index)
// pairs, across single, seeded, and batch serving paths.
func TestCheckpointRoundTripEquivalence(t *testing.T) {
	orig := checkpointEstimator(t)
	var buf bytes.Buffer
	if err := core.SaveCheckpoint(orig, &buf); err != nil {
		t.Fatal(err)
	}
	restored, err := core.LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	if got, want := restored.JoinSize(), orig.JoinSize(); got != want {
		t.Fatalf("restored join size %g, want %g", got, want)
	}
	if got, want := restored.Bytes(), orig.Bytes(); got != want {
		t.Fatalf("restored model size %d, want %d", got, want)
	}

	queries := batchQueries()
	for i, q := range queries {
		want, err := orig.EstimateIndexed(q, int64(i))
		if err != nil {
			t.Fatalf("original estimate %d: %v", i, err)
		}
		got, err := restored.EstimateIndexed(q, int64(i))
		if err != nil {
			t.Fatalf("restored estimate %d: %v", i, err)
		}
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("query %d: restored estimate %.17g, want %.17g", i, got, want)
		}
	}

	// Seeded single-query path with a non-config seed.
	for i, q := range queries {
		want, err := orig.EstimateSeededIndexed(q, 1234, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.EstimateSeededIndexed(q, 1234, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("seeded query %d: restored %.17g, want %.17g", i, got, want)
		}
	}

	// Concurrent batch path.
	wantB, err := orig.EstimateBatchSeeded(queries, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := restored.EstimateBatchSeeded(queries, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantB {
		if math.Abs(gotB[i]-wantB[i]) > 1e-9*math.Max(1, math.Abs(wantB[i])) {
			t.Errorf("batch query %d: restored %.17g, want %.17g", i, gotB[i], wantB[i])
		}
	}
}

// TestCheckpointRestoredTrainable: a restored estimator is not a frozen
// serving artifact — it can keep training (the incremental-update workflow
// after a restart).
func TestCheckpointRestoredTrainable(t *testing.T) {
	orig := checkpointEstimator(t)
	var buf bytes.Buffer
	if err := core.SaveCheckpoint(orig, &buf); err != nil {
		t.Fatal(err)
	}
	restored, err := core.LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	loss, err := restored.Train(256)
	if err != nil {
		t.Fatalf("restored estimator cannot train: %v", err)
	}
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("restored training loss = %g", loss)
	}
	if _, err := restored.Estimate(batchQueries()[0]); err != nil {
		t.Fatalf("estimate after restored training: %v", err)
	}
}

// TestCheckpointCorruption: truncated or corrupted checkpoints must fail
// with an error on every prefix length — never panic, never return a
// silently wrong estimator.
func TestCheckpointCorruption(t *testing.T) {
	orig := checkpointEstimator(t)
	var buf bytes.Buffer
	if err := core.SaveCheckpoint(orig, &buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), full...)
		bad[0] ^= 0xFF
		if _, err := core.LoadCheckpoint(bytes.NewReader(bad)); err == nil {
			t.Fatal("corrupted magic accepted")
		}
	})

	t.Run("short-reads", func(t *testing.T) {
		// Every strict prefix must error. Step through the file densely near
		// the front (headers) and coarsely through the weight payload.
		step := 1
		for n := 0; n < len(full); n += step {
			if n > 256 {
				step = len(full) / 97
				if step < 1 {
					step = 1
				}
			}
			if _, err := core.LoadCheckpoint(bytes.NewReader(full[:n])); err == nil {
				t.Fatalf("truncated checkpoint of %d/%d bytes accepted", n, len(full))
			}
		}
	})

	t.Run("flipped-payload", func(t *testing.T) {
		// Flip bytes spread through the stream; every flip must either fail
		// to decode or fail a cross-validation check. (Flips inside weight
		// payload bytes can legitimately decode — those are covered by the
		// join-size and shape validations when they hit structured sections.)
		failed := 0
		tried := 0
		for _, pos := range []int{8, 12, 40, 80, 160} {
			if pos >= len(full) {
				continue
			}
			tried++
			bad := append([]byte(nil), full...)
			bad[pos] ^= 0x5A
			if _, err := core.LoadCheckpoint(bytes.NewReader(bad)); err != nil {
				failed++
			}
		}
		if tried > 0 && failed == 0 {
			t.Error("no corruption in the structured sections was detected")
		}
	})

	t.Run("trailing-garbage-ignored", func(t *testing.T) {
		// Extra bytes after the model section are tolerated: readers stop at
		// the end of the model section (streams may be padded by transports).
		padded := append(append([]byte(nil), full...), 0, 1, 2, 3)
		if _, err := core.LoadCheckpoint(bytes.NewReader(padded)); err != nil {
			t.Fatalf("trailing bytes rejected: %v", err)
		}
	})
}
