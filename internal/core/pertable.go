package core

import (
	"fmt"

	"neurocard/internal/exec"
	"neurocard/internal/query"
	"neurocard/internal/schema"
	"neurocard/internal/table"
)

// PerTable is the Table 5 (D) ablation: one autoregressive model per base
// table, with join queries estimated by combining per-table filter
// selectivities under an independence assumption —
// card(Q) = |inner join of Q| · Π_T P_T(filters on T). Losing the
// inter-table correlations is what the ablation measures.
type PerTable struct {
	sch  *schema.Schema
	ests map[string]*Estimator
}

// BuildPerTable constructs one single-table estimator per table of the
// schema. contentCols follows the same convention as Config.ContentCols.
func BuildPerTable(sch *schema.Schema, cfg Config) (*PerTable, error) {
	p := &PerTable{sch: sch, ests: make(map[string]*Estimator, sch.NumTables())}
	for i, tname := range sch.Tables() {
		t := sch.Table(tname)
		single, err := schema.New([]*table.Table{t}, tname, nil)
		if err != nil {
			return nil, err
		}
		tcfg := cfg
		tcfg.Seed = cfg.Seed + int64(i)*101
		if cfg.ContentCols != nil {
			cols, ok := cfg.ContentCols[tname]
			if !ok || len(cols) == 0 {
				// Table has no filterable columns: constant estimator.
				p.ests[tname] = nil
				continue
			}
			tcfg.ContentCols = map[string][]string{tname: cols}
		}
		est, err := Build(single, tcfg)
		if err != nil {
			return nil, fmt.Errorf("core: per-table model for %q: %w", tname, err)
		}
		p.ests[tname] = est
	}
	return p, nil
}

// Train streams nTuplesPerTable samples through every per-table model.
func (p *PerTable) Train(nTuplesPerTable int) error {
	for tname, est := range p.ests {
		if est == nil {
			continue
		}
		if _, err := est.Train(nTuplesPerTable); err != nil {
			return fmt.Errorf("core: training per-table model %q: %w", tname, err)
		}
	}
	return nil
}

// Bytes sums the per-table model sizes.
func (p *PerTable) Bytes() int {
	n := 0
	for _, est := range p.ests {
		if est != nil {
			n += est.Bytes()
		}
	}
	return n
}

// Name identifies the estimator in benchmark output.
func (p *PerTable) Name() string { return "one-ar-per-table" }

// Estimate multiplies per-table selectivities into the exact unfiltered
// join size (the independence combination the ablation studies).
func (p *PerTable) Estimate(q query.Query) (float64, error) {
	inner, err := exec.InnerJoinSize(p.sch, q.Tables)
	if err != nil {
		return 0, err
	}
	card := inner
	for _, tname := range q.Tables {
		filters := q.FiltersOn(tname)
		if len(filters) == 0 {
			continue
		}
		est := p.ests[tname]
		if est == nil {
			return 0, fmt.Errorf("core: table %q has no per-table model but carries filters", tname)
		}
		sub := query.Query{Tables: []string{tname}, Filters: filters}
		c, err := est.Estimate(sub)
		if err != nil {
			return 0, err
		}
		rows := float64(p.sch.Table(tname).NumRows())
		if rows > 0 {
			card *= c / rows
		}
	}
	if card < 1 {
		card = 1
	}
	return card, nil
}
