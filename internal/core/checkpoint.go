package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"neurocard/internal/faultinject"
	"neurocard/internal/made"
	"neurocard/internal/sampler"
	"neurocard/internal/schema"
	"neurocard/internal/table"
	"neurocard/internal/value"
)

// Checkpoint format: a full-estimator snapshot that restores to a
// ready-to-serve *Estimator across process restarts (the serving daemon's
// model files). Layout, in stream order:
//
//	magic     8 raw bytes ("NCRDCKPT")
//	header    gob: format version, normalized Config, join size, encoder shape
//	schema    gob: root, edges, tables (dictionaries + row IDs)
//	content   gob: explicit per-table modeled-column lists (encoder order)
//	weights   gob: per-table join-count vectors (sampler state)
//	model     gob: made full-precision section (float64 weights)
//
// Everything lives in one gob stream after the magic, so decode errors carry
// positions and truncated files fail cleanly. Weights are stored at full
// float64 precision — unlike the legacy model-only Save — because the format
// guarantees a restored estimator's estimates are bit-identical to the
// original's at a fixed seed.
const (
	checkpointMagic = "NCRDCKPT"

	// CheckpointVersion is the on-disk format version written by
	// SaveCheckpoint. LoadCheckpoint also reads version 1, which stored the
	// join-count tables as a gob map — randomized iteration order made two
	// saves of the same estimator byte-different; version 2 stores them as a
	// slice in schema table order so identical estimators save identically.
	CheckpointVersion = 2
)

// ckptHeader opens the checkpoint: version gate plus the two global scalars
// restore validates against (join size, encoder shape).
type ckptHeader struct {
	Version  int
	Config   Config // ContentCols cleared; the explicit section is authoritative
	JoinSize float64
	FlatDoms []int
}

// ckptColumn serializes one dictionary-encoded column.
type ckptColumn struct {
	Name    string
	Kind    uint8 // value.Kind
	IDs     []int32
	IntDict []int64
	StrDict []string
}

// ckptTable serializes one table's columns in declaration order.
type ckptTable struct {
	Name string
	Cols []ckptColumn
}

// ckptEdge mirrors schema.Edge.
type ckptEdge struct {
	LeftTable, LeftCol   string
	RightTable, RightCol string
}

// ckptSchema serializes the join tree with full table payloads.
type ckptSchema struct {
	Root   string
	Tables []ckptTable
	Edges  []ckptEdge
}

// ckptWeights serializes one table's join-count vector. Tables are written
// in schema order (not map order) so the byte stream is deterministic.
type ckptWeights struct {
	Table string
	W     []float64
}

// ckptContent pins down the modeled content columns of one table explicitly.
// Resolving the nil-ContentCols default ("model every non-join-key column")
// at save time makes restore independent of that convention ever changing.
type ckptContent struct {
	Table string
	Cols  []string
}

// SaveCheckpoint writes a full-estimator checkpoint: schema metadata
// (dictionaries and row IDs), the encoder/factorization configuration, the
// sampler's join-count tables, and the model weights at full precision.
//
// Version-1 checkpoints require the estimator's domain and data schemas to
// coincide (the standard Build path); snapshot-bound estimators
// (BuildWithDomain with distinct schemas) are not yet supported.
func SaveCheckpoint(e *Estimator, w io.Writer) error {
	if e.trainable == nil {
		return fmt.Errorf("core: checkpoint: estimator has no trainable model (oracle-backed estimators cannot be checkpointed)")
	}
	if e.domain != e.data {
		return fmt.Errorf("core: checkpoint: estimator models a data snapshot distinct from its domain schema; v%d checkpoints support Build estimators only", CheckpointVersion)
	}
	if _, err := io.WriteString(w, checkpointMagic); err != nil {
		return fmt.Errorf("core: checkpoint: write magic: %w", err)
	}
	enc := gob.NewEncoder(w)

	cfg := e.cfg
	cfg.ContentCols = nil // the explicit content section is authoritative
	hdr := ckptHeader{
		Version:  CheckpointVersion,
		Config:   cfg,
		JoinSize: e.joinSize,
		FlatDoms: e.enc.FlatDomains(),
	}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("core: checkpoint: encode header: %w", err)
	}
	if err := enc.Encode(snapshotSchema(e.domain)); err != nil {
		return fmt.Errorf("core: checkpoint: encode schema: %w", err)
	}
	if err := enc.Encode(snapshotContentCols(e.enc)); err != nil {
		return fmt.Errorf("core: checkpoint: encode content columns: %w", err)
	}
	if err := enc.Encode(snapshotWeights(e.domain, e.smp.Weights())); err != nil {
		return fmt.Errorf("core: checkpoint: encode join counts: %w", err)
	}
	if err := e.trainable.EncodeInto(enc); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	return nil
}

// WriteCheckpointFile saves a checkpoint to path crash-safely: the bytes go
// to a temp file in the destination directory, are fsynced, and only then
// renamed over path. A crash, full disk, or injected truncation at any point
// leaves either the complete new checkpoint or the previous file — never a
// torn one — so a failed save cannot clobber a model the daemon could still
// reload.
func WriteCheckpointFile(e *Estimator, path string) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: checkpoint: create temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	var w io.Writer = tmp
	if faultinject.Enabled() {
		w = faultinject.WrapCheckpointWriter(w)
	}
	if err = SaveCheckpoint(e, w); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("core: checkpoint: fsync: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("core: checkpoint: close temp file: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: checkpoint: rename into place: %w", err)
	}
	// Durability of the rename itself: fsync the directory. Best-effort —
	// some filesystems refuse directory fsync; the data file is already safe.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// snapshotSchema captures the join tree and every table's dictionary-encoded
// payload.
func snapshotSchema(sch *schema.Schema) ckptSchema {
	out := ckptSchema{Root: sch.Root()}
	for _, name := range sch.Tables() {
		t := sch.Table(name)
		ct := ckptTable{Name: name}
		for _, c := range t.Columns() {
			ct.Cols = append(ct.Cols, ckptColumn{
				Name:    c.Name(),
				Kind:    uint8(c.Kind()),
				IDs:     c.IDs(),
				IntDict: c.IntDict(),
				StrDict: c.StrDict(),
			})
		}
		out.Tables = append(out.Tables, ct)
		if pe, ok := sch.Parent(name); ok {
			out.Edges = append(out.Edges, ckptEdge{
				LeftTable: pe.Parent, LeftCol: pe.ParentCol,
				RightTable: name, RightCol: pe.ChildCol,
			})
		}
	}
	return out
}

// snapshotWeights orders the sampler's per-table join-count vectors by the
// schema's table order, making the encoded stream independent of Go's
// randomized map iteration.
func snapshotWeights(sch *schema.Schema, weights map[string][]float64) []ckptWeights {
	out := make([]ckptWeights, 0, len(weights))
	for _, t := range sch.Tables() {
		if w, ok := weights[t]; ok {
			out = append(out, ckptWeights{Table: t, W: w})
		}
	}
	return out
}

// snapshotContentCols lists each table's modeled content columns in encoder
// order. Every table gets an entry (possibly empty), so restore never falls
// back to the model-everything default.
func snapshotContentCols(enc *Encoder) []ckptContent {
	byTable := make(map[string][]string)
	for _, mc := range enc.Columns() {
		if mc.Kind == KindContent {
			byTable[mc.Table] = append(byTable[mc.Table], mc.Col)
		}
	}
	out := make([]ckptContent, 0, len(enc.Tables()))
	for _, t := range enc.Tables() {
		out = append(out, ckptContent{Table: t, Cols: byTable[t]})
	}
	return out
}

// LoadCheckpoint restores a checkpoint written by SaveCheckpoint to a
// ready-to-serve estimator: the schema (with dictionaries), encoder,
// join-count sampler, and model are all rebuilt and cross-validated, so a
// corrupted or truncated file fails with an error instead of serving wrong
// estimates. The restored estimator answers Estimate/EstimateBatch
// immediately and can keep training (Train, UpdateData) like the original.
func LoadCheckpoint(r io.Reader) (*Estimator, error) {
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("core: checkpoint: read magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("core: checkpoint: bad magic %q (not a NeuroCard checkpoint)", magic)
	}
	dec := gob.NewDecoder(r)

	var hdr ckptHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("core: checkpoint: decode header: %w", err)
	}
	if hdr.Version != 1 && hdr.Version != CheckpointVersion {
		return nil, fmt.Errorf("core: checkpoint: unsupported format version %d (want <= %d)", hdr.Version, CheckpointVersion)
	}

	var cs ckptSchema
	if err := dec.Decode(&cs); err != nil {
		return nil, fmt.Errorf("core: checkpoint: decode schema: %w", err)
	}
	sch, err := restoreSchema(cs)
	if err != nil {
		return nil, err
	}

	var contents []ckptContent
	if err := dec.Decode(&contents); err != nil {
		return nil, fmt.Errorf("core: checkpoint: decode content columns: %w", err)
	}
	cfg := hdr.Config
	cfg.ContentCols = make(map[string][]string, len(contents))
	for _, cc := range contents {
		cfg.ContentCols[cc.Table] = cc.Cols
	}

	enc, err := NewEncoder(sch, cfg.ContentCols, cfg.FactBits)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint: rebuild encoder: %w", err)
	}
	if err := equalDoms(enc.FlatDomains(), hdr.FlatDoms); err != nil {
		return nil, fmt.Errorf("core: checkpoint: encoder shape drifted from checkpoint: %w", err)
	}

	var weights map[string][]float64
	if hdr.Version == 1 {
		// v1 stored the join counts as a gob map.
		if err := dec.Decode(&weights); err != nil {
			return nil, fmt.Errorf("core: checkpoint: decode join counts: %w", err)
		}
	} else {
		var ws []ckptWeights
		if err := dec.Decode(&ws); err != nil {
			return nil, fmt.Errorf("core: checkpoint: decode join counts: %w", err)
		}
		weights = make(map[string][]float64, len(ws))
		for _, cw := range ws {
			weights[cw.Table] = cw.W
		}
	}
	smp, err := sampler.NewFromWeights(sch, weights)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	if !closeRel(smp.JoinSize(), hdr.JoinSize, 1e-9) {
		return nil, fmt.Errorf("core: checkpoint: restored join size %g differs from stored %g (corrupted join counts?)", smp.JoinSize(), hdr.JoinSize)
	}

	model, err := made.DecodeFrom(dec)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := equalDoms(model.Domains(), hdr.FlatDoms); err != nil {
		return nil, fmt.Errorf("core: checkpoint: model shape does not match encoder: %w", err)
	}

	view, err := enc.bind(sch)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	e := &Estimator{
		domain:    sch,
		data:      sch,
		enc:       enc,
		view:      view,
		smp:       smp,
		model:     model,
		trainable: model,
		joinSize:  smp.JoinSize(),
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
	e.initSessions()
	return e, nil
}

// restoreSchema rebuilds tables and the join tree from the serialized form.
func restoreSchema(cs ckptSchema) (*schema.Schema, error) {
	tables := make([]*table.Table, 0, len(cs.Tables))
	for _, ct := range cs.Tables {
		cols := make([]*table.Column, 0, len(ct.Cols))
		for _, cc := range ct.Cols {
			c, err := table.NewColumnFromRaw(cc.Name, value.Kind(cc.Kind), cc.IDs, cc.IntDict, cc.StrDict)
			if err != nil {
				return nil, fmt.Errorf("core: checkpoint: table %q: %w", ct.Name, err)
			}
			cols = append(cols, c)
		}
		t, err := table.NewFromColumns(ct.Name, cols)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint: %w", err)
		}
		tables = append(tables, t)
	}
	edges := make([]schema.Edge, 0, len(cs.Edges))
	for _, e := range cs.Edges {
		edges = append(edges, schema.Edge{
			LeftTable: e.LeftTable, LeftCol: e.LeftCol,
			RightTable: e.RightTable, RightCol: e.RightCol,
		})
	}
	sch, err := schema.New(tables, cs.Root, edges)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint: rebuild schema: %w", err)
	}
	return sch, nil
}

// equalDoms compares two domain-size vectors.
func equalDoms(got, want []int) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d flat columns, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("flat column %d has domain %d, want %d", i, got[i], want[i])
		}
	}
	return nil
}

// closeRel reports |a-b| <= tol·max(|a|,|b|) with exact equality accepted.
func closeRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*m
}
