package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"neurocard/internal/faultinject"
	"neurocard/internal/nn"
	"neurocard/internal/query"
)

// planMode describes how progressive sampling treats one logical column.
type planMode uint8

const (
	modeSkip         planMode = iota // wildcard: MASK input, no sampling
	modeConstrain                    // content column with a filter region
	modeIndicatorOne                 // queried table: require 1_T = 1
	modeFanoutDivide                 // omitted table's fanout key: sample & divide (Eq. 9)
)

type colPlan struct {
	mc     *ModelCol
	mode   planMode
	region query.Region // modeConstrain only, over dictionary IDs
	// sub0 is the first subcolumn's token region, precompiled at plan time:
	// before any token of the column is drawn the factorization prefix is 0
	// for every row, so the j=0 region is query-constant and per-row
	// SubRegion translation starts only at j=1.
	sub0 []query.IDRange
}

// compilePlan compiles a query into per-column actions (§6): filters become
// ID regions on content columns, queried tables constrain their indicators
// to 1, and each omitted table contributes exactly one fanout key to divide
// out — the key on its side of the edge toward the query subtree. The result
// is immutable and shared: Estimate paths fetch plans through the
// estimator's plan cache (planFor) and only compile on a miss. Plans carry
// no element-width state, so both precisions share one cache.
func (e *Estimator) compilePlan(q query.Query) (*compiledPlan, error) {
	if err := e.domain.ValidateQuerySet(q.Tables); err != nil {
		return nil, err
	}
	qset := make(map[string]bool, len(q.Tables))
	for _, t := range q.Tables {
		qset[t] = true
	}
	for _, f := range q.Filters {
		if !qset[f.Table] {
			return nil, fmt.Errorf("core: filter %s references table outside the join", f)
		}
	}
	regions := make(map[string]map[string]query.Region, len(q.Tables))
	for _, t := range q.Tables {
		regs, err := query.TableRegions(e.domain.Table(t), q)
		if err != nil {
			return nil, err
		}
		regions[t] = regs
	}
	// Every filtered column must be modeled; silently dropping a filter
	// would systematically overestimate.
	for _, f := range q.Filters {
		if !e.enc.modeled[f.Table][f.Col] {
			return nil, fmt.Errorf("core: filter %s references a column not modeled by the estimator; add it to ContentCols", f)
		}
	}
	// Fanout keys of omitted tables.
	divide := make(map[string]map[string]bool) // table → key col → divide
	for _, t := range e.domain.Tables() {
		if qset[t] {
			continue
		}
		key, err := e.domain.FanoutKey(t, qset)
		if err != nil {
			return nil, err
		}
		if divide[t] == nil {
			divide[t] = make(map[string]bool)
		}
		divide[t][key] = true
	}

	cp := &compiledPlan{cols: make([]colPlan, len(e.enc.cols))}
	for i := range e.enc.cols {
		mc := &e.enc.cols[i]
		p := colPlan{mc: mc, mode: modeSkip}
		switch mc.Kind {
		case KindContent:
			if r, ok := regions[mc.Table][mc.Col]; ok {
				p.mode = modeConstrain
				p.region = r
				p.sub0 = mc.Fact.SubRegion(r, 0, 0)
				if r.Empty() {
					cp.empty = true
				}
			}
		case KindIndicator:
			if qset[mc.Table] {
				p.mode = modeIndicatorOne
			}
		case KindFanout:
			if divide[mc.Table][mc.Col] {
				p.mode = modeFanoutDivide
			}
		}
		cp.cols[i] = p
	}
	return cp, nil
}

// planFor returns the compiled plan for q, consulting the estimator's
// bounded LRU first. The canonical key is built into the session state's
// scratch, so the hit path — the serving steady state — allocates nothing.
func (st *inferStateOf[T]) planFor(q query.Query) (*compiledPlan, error) {
	st.key = q.AppendKey(st.key[:0])
	if cp := st.e.plans.get(st.key); cp != nil {
		return cp, nil
	}
	cp, err := st.e.compilePlan(q)
	if err != nil {
		return nil, err
	}
	st.e.plans.put(st.key, cp)
	return cp, nil
}

// EstimateWithSamples runs progressive sampling (Eq. 5 extended per §5/§6)
// with the given number of Monte Carlo samples and returns the estimated
// cardinality, lower-bounded at 1. The sampling batch runs on a pooled
// inference session at the estimator's configured serving precision:
// scratch is reused across queries, rows whose weight hits zero are
// compacted out of the batch instead of being forward-passed dead, and the
// batch itself materializes lazily (see inferStateOf.sample).
func (e *Estimator) EstimateWithSamples(q query.Query, nSamples int, rng *rand.Rand) (float64, error) {
	if nSamples < 1 {
		nSamples = 1
	}
	st := e.eng.acquire(nSamples, false)
	defer st.release()
	return st.estimateWithSamples(context.Background(), q, nSamples, rng)
}

// estimateWithSamples resolves the plan and runs the sampling kernel — the
// engineSession entry the width-agnostic Estimator paths call.
func (st *inferStateOf[T]) estimateWithSamples(ctx context.Context, q query.Query, nSamples int, rng *rand.Rand) (float64, error) {
	cp, err := st.planFor(q)
	if err != nil {
		return 0, err
	}
	if cp.empty {
		// A filter matches no dictionary value: true cardinality is 0; the
		// Q-error convention lower-bounds estimates at 1.
		return 1, nil
	}
	return st.sample(ctx, cp, nSamples, rng)
}

// sample executes a compiled plan on a session-backed sampling batch.
// Single-threaded; concurrency comes from running many sessions.
//
// The batch fans out lazily: every sampling row starts bit-identical
// (all-MASK) and stays identical through every deterministic step — wildcard
// skips and 1_T indicator constraints — and through the shared forward pass
// of the first stochastic column. The session therefore runs one logical row
// until the first per-row draw, then Replicates tokens, preactivation, and
// cached trunk state to nSamples rows. Deterministic steps and the first
// constrained column's forward pass cost 1 row instead of nSamples; the
// weight product accumulated on the single row seeds every fanned-out row,
// so per-row weights are unchanged.
//
// Element widths: conditionals, region masses, and token draws run entirely
// at the session's width T; per-row weights stay float64 at every width
// (the products of selective queries underflow float32), with each mass
// widened exactly once at the multiply boundary. At T = float64 every
// conversion below is the identity, so the float64 path is bit-identical to
// the pre-generic kernel.
//
// Cancellation is cooperative: ctx is checked once per plan column — the
// granularity of one forward pass over the batch, the natural unit of work —
// so an expired deadline stops sampling within a column's worth of compute.
// The check is a few nanoseconds for context.Background(), which the
// non-serving paths pass.
func (st *inferStateOf[T]) sample(ctx context.Context, cp *compiledPlan, nSamples int, rng *rand.Rand) (float64, error) {
	sess, w := st.sess, st.w[:nSamples]
	sess.Reset(1)
	w0 := 1.0 // weight of the single pre-fan-out row
	active := 0
	fanPi := -1 // plan index of the column the batch fanned out on
	faults := faultinject.Enabled()

single:
	for pi := range cp.cols {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if faults {
			faultinject.MaybeDelayKernel()
		}
		p := &cp.cols[pi]
		switch p.mode {
		case modeSkip:
			continue

		case modeIndicatorOne:
			probs := sess.Probs(p.mc.FlatOffset)
			w0 *= float64(probs.At(0, 1))
			if w0 == 0 {
				return 1, nil
			}
			sess.SetToken(0, p.mc.FlatOffset, 1)

		case modeConstrain:
			sub := p.sub0
			if len(sub) == 0 {
				return 1, nil
			}
			flat := p.mc.FlatOffset
			probs := sess.Probs(flat)
			pr := probs.Row(0)
			// All rows share this row's distribution and region, so the
			// mass — and, in CDF mode, the prefix sums — are computed once.
			useCDF := useRegionCDF(sub, len(pr))
			var mass T
			if useCDF {
				st.buildCDF(pr)
				mass = regionMassCDF(st.cdf, sub)
			} else {
				mass = regionMassScan(pr, sub)
			}
			if mass <= 0 {
				return 1, nil
			}
			w0 *= float64(mass)
			sess.Replicate(nSamples)
			for r := 0; r < nSamples; r++ {
				w[r] = w0
				u := T(rng.Float64()) * mass
				var tok int32
				if useCDF {
					tok = drawRegionCDF(st.cdf, sub, u)
				} else {
					tok = drawRegionScan(pr, sub, u)
				}
				sess.SetToken(r, flat, tok)
			}
			active = st.sampleConstrained(p, w, nSamples, 1, rng)
			fanPi = pi
			break single

		case modeFanoutDivide:
			flat := p.mc.FlatOffset
			probs := sess.Probs(flat)
			cdf := st.buildCDF(probs.Row(0))
			sess.Replicate(nSamples)
			for r := 0; r < nSamples; r++ {
				w[r] = w0
				sess.SetToken(r, flat, drawCDF(cdf, T(rng.Float64())))
			}
			active = st.sampleFanout(p, w, nSamples, 1, rng)
			fanPi = pi
			break single
		}
	}

	if fanPi < 0 {
		// Every step was deterministic: the nSamples identical rows sum to
		// nSamples·w0 and the estimate closes without ever materializing them.
		card := w0 * st.e.joinSize
		if card < 1 {
			card = 1
		}
		return card, nil
	}

	for pi := fanPi + 1; pi < len(cp.cols) && active > 0; pi++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if faults {
			faultinject.MaybeDelayKernel()
		}
		p := &cp.cols[pi]
		switch p.mode {
		case modeSkip:
			continue

		case modeIndicatorOne:
			probs := sess.Probs(p.mc.FlatOffset)
			for r := 0; r < active; r++ {
				w[r] *= float64(probs.At(r, 1))
				sess.SetToken(r, p.mc.FlatOffset, 1)
			}
			active = compactZero(sess, w, active)

		case modeConstrain:
			active = st.sampleConstrained(p, w, active, 0, rng)

		case modeFanoutDivide:
			active = st.sampleFanout(p, w, active, 0, rng)
		}
	}

	// Kahan-compensated final summation: at serving-scale nSamples the naive
	// left-to-right sum loses low-order bits of the small per-row weights.
	sum, comp := 0.0, 0.0
	for r := 0; r < active; r++ {
		y := w[r] - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	card := sum / float64(nSamples) * st.e.joinSize
	if card < 1 {
		card = 1
	}
	return card, nil
}

// sampleConstrained draws one content column subcolumn-by-subcolumn inside
// its filter region, starting at subcolumn jStart (the lazy fan-out step
// handles j=0 itself), multiplying each sample's weight by the in-region
// probability mass (importance weighting). Rows whose region support is
// empty are compacted out between subcolumns. Returns the new active count.
func (st *inferStateOf[T]) sampleConstrained(p *colPlan, w []float64, active, jStart int, rng *rand.Rand) int {
	sess := st.sess
	nsub := p.mc.Fact.NumSubs()
	for j := jStart; j < nsub && active > 0; j++ {
		flat := p.mc.FlatOffset + j
		probs := sess.Probs(flat)
		for r := 0; r < active; r++ {
			sub := p.sub0 // j = 0: the prefix is 0 for every row
			if j > 0 {
				colToks := sess.TokenRow(r)[p.mc.FlatOffset : p.mc.FlatOffset+nsub]
				prefix := p.mc.Fact.PrefixValue(colToks, j)
				sub = p.mc.Fact.SubRegionAppend(st.ranges, p.region, j, prefix)
				if cap(sub) > cap(st.ranges) {
					st.ranges = sub // keep the grown scratch for later rows
				}
			}
			if len(sub) == 0 {
				w[r] = 0
				continue
			}
			mass, chosen, ok := st.drawRegion(probs.Row(r), sub, rng)
			if !ok {
				w[r] = 0
				continue
			}
			w[r] *= float64(mass)
			sess.SetToken(r, flat, chosen)
		}
		active = compactZero(sess, w, active)
	}
	return active
}

// sampleFanout draws an omitted table's fanout key subcolumn-by-subcolumn
// starting at jStart, then divides each row's weight by the decoded fanout
// (Eq. 9). Fanouts are ≥ 1, so no row dies here. Each per-row distribution
// is drawn from exactly once, so the early-exit scan beats building prefix
// sums (fanout mass concentrates at small tokens, where the scan exits
// almost immediately); drawScan and drawCDF select the same token for the
// same variate, so the choice is purely a cost one — the CDF pays off only
// where it is reused, i.e. the shared pre-fan-out draw in sample.
func (st *inferStateOf[T]) sampleFanout(p *colPlan, w []float64, active, jStart int, rng *rand.Rand) int {
	sess := st.sess
	nsub := p.mc.Fact.NumSubs()
	for j := jStart; j < nsub; j++ {
		flat := p.mc.FlatOffset + j
		probs := sess.Probs(flat)
		for r := 0; r < active; r++ {
			sess.SetToken(r, flat, drawScan(probs.Row(r), T(rng.Float64())))
		}
	}
	for r := 0; r < active; r++ {
		sub := sess.TokenRow(r)[p.mc.FlatOffset : p.mc.FlatOffset+nsub]
		fan := float64(p.mc.Fact.Decode(sub)) + 1
		w[r] /= fan
	}
	return active
}

// compactZero removes zero-weight rows by moving live tail rows into their
// slots, shrinking the session's active batch. Dead rows never see another
// forward pass.
func compactZero[T nn.Elem](sess inferSession[T], w []float64, active int) int {
	r := 0
	for r < active {
		if w[r] != 0 {
			r++
			continue
		}
		active--
		if r != active {
			w[r] = w[active]
			sess.CompactRows(r, active)
		}
	}
	sess.Shrink(active)
	return active
}

// ---- region mass and proportional draws ----
//
// Two interchangeable evaluation strategies, chosen per (row, subcolumn) by
// region width. Narrow regions (equality points, short ranges) scan their
// few in-region entries directly: O(span). Wide regions (complements, NOT
// IN, broad ranges, full fanout domains) first build the row's probability
// prefix sums into the state's CDF scratch — one O(domain) pass — after
// which every interval's mass is two lookups and every draw a binary search:
// O(intervals + log domain) instead of O(span) per draw. The scan
// accumulates with Kahan compensation; the CDF's interval-difference
// arithmetic differs from the scan only in rounding (≪ the 1e-9 kernel
// equivalence convention at float64). Everything below runs at the
// session's element width T — draws compare T against T, so selection
// never depends on a mixed-width comparison.

// cdfMinSpan is the region width below which the direct scan always wins —
// the prefix-sum build costs O(domain) regardless of the region.
const cdfMinSpan = 32

// useRegionCDF picks the CDF strategy for a region over a domain of size n.
func useRegionCDF(sub []query.IDRange, n int) bool {
	span := 0
	for _, iv := range sub {
		span += int(iv.Hi-iv.Lo) + 1
	}
	return span >= cdfMinSpan && 2*span >= n
}

// buildCDF fills the state's CDF scratch with the prefix sums of pr:
// cdf[i] = Σ pr[:i], so cdf has len(pr)+1 entries and a range [lo, hi] of
// tokens carries mass cdf[hi+1] - cdf[lo]. The partial sums are the exact
// running sums a sequential scan produces, so a CDF draw selects the same
// token a scan with the same u would.
func (st *inferStateOf[T]) buildCDF(pr []T) []T {
	if cap(st.cdf) < len(pr)+1 {
		st.cdf = make([]T, len(pr)+1)
	}
	cdf := st.cdf[:len(pr)+1]
	var acc T
	cdf[0] = 0
	for i, p := range pr {
		acc += p
		cdf[i+1] = acc
	}
	st.cdf = cdf
	return cdf
}

// regionMassScan sums pr over the region with Kahan compensation.
func regionMassScan[T nn.Elem](pr []T, sub []query.IDRange) T {
	var mass, comp T
	for _, iv := range sub {
		for _, p := range pr[iv.Lo : iv.Hi+1] {
			y := p - comp
			t := mass + y
			comp = (t - mass) - y
			mass = t
		}
	}
	return mass
}

// regionMassCDF sums the region's mass as interval differences over prefix
// sums: two lookups per interval.
func regionMassCDF[T nn.Elem](cdf []T, sub []query.IDRange) T {
	var mass T
	for _, iv := range sub {
		mass += cdf[iv.Hi+1] - cdf[iv.Lo]
	}
	return mass
}

// drawRegionScan selects the first token whose running in-region mass
// exceeds u, falling back to the region's last token when rounding leaves
// the total just below u.
func drawRegionScan[T nn.Elem](pr []T, sub []query.IDRange, u T) int32 {
	var acc T
	for _, iv := range sub {
		for t := iv.Lo; t <= iv.Hi; t++ {
			acc += pr[t]
			if acc > u {
				return t
			}
		}
	}
	return sub[len(sub)-1].Hi
}

// drawRegionCDF is drawRegionScan over prefix sums: a linear pass over the
// (few) intervals finds the target interval, then a binary search inside it
// finds the token — O(log span) where the scan is O(span).
func drawRegionCDF[T nn.Elem](cdf []T, sub []query.IDRange, u T) int32 {
	var acc T
	for _, iv := range sub {
		ivMass := cdf[iv.Hi+1] - cdf[iv.Lo]
		if acc+ivMass > u {
			// Smallest t in [Lo, Hi] with acc + (cdf[t+1]-cdf[Lo]) > u.
			target := u - acc + cdf[iv.Lo]
			span := int(iv.Hi-iv.Lo) + 1
			k := sort.Search(span, func(k int) bool { return cdf[int(iv.Lo)+k+1] > target })
			if k == span {
				k = span - 1 // rounding pushed the boundary past Hi
			}
			return iv.Lo + int32(k)
		}
		acc += ivMass
	}
	return sub[len(sub)-1].Hi
}

// drawCDF samples an index of a full (already normalized) distribution from
// its prefix sums by binary search: the smallest i with cdf[i+1] > u — the
// token an O(domain) running-sum scan would select, since the prefix sums
// are those running sums.
func drawCDF[T nn.Elem](cdf []T, u T) int32 {
	n := len(cdf) - 1
	i := sort.Search(n, func(i int) bool { return cdf[i+1] > u })
	if i == n {
		i = n - 1
	}
	return int32(i)
}

// drawScan is drawCDF without prefix sums: an early-exit running-sum scan,
// bit-identical in its selection (the running sums are the prefix sums).
// Used where a distribution is drawn from exactly once.
func drawScan[T nn.Elem](pr []T, u T) int32 {
	var acc T
	for i, p := range pr {
		acc += p
		if acc > u {
			return int32(i)
		}
	}
	return int32(len(pr) - 1)
}

// drawRegion computes a row's in-region mass and draws a token
// proportionally, choosing the scan or CDF strategy by region width. ok is
// false (and no randomness is consumed) when the region carries no mass.
func (st *inferStateOf[T]) drawRegion(pr []T, sub []query.IDRange, rng *rand.Rand) (mass T, chosen int32, ok bool) {
	if useRegionCDF(sub, len(pr)) {
		cdf := st.buildCDF(pr)
		mass = regionMassCDF(cdf, sub)
		if mass <= 0 {
			return 0, 0, false
		}
		return mass, drawRegionCDF(cdf, sub, T(rng.Float64())*mass), true
	}
	mass = regionMassScan(pr, sub)
	if mass <= 0 {
		return 0, 0, false
	}
	return mass, drawRegionScan(pr, sub, T(rng.Float64())*mass), true
}
