package core

import (
	"fmt"
	"math/rand"

	"neurocard/internal/query"
)

// planMode describes how progressive sampling treats one logical column.
type planMode uint8

const (
	modeSkip         planMode = iota // wildcard: MASK input, no sampling
	modeConstrain                    // content column with a filter region
	modeIndicatorOne                 // queried table: require 1_T = 1
	modeFanoutDivide                 // omitted table's fanout key: sample & divide (Eq. 9)
)

type colPlan struct {
	mc     *ModelCol
	mode   planMode
	region query.Region // modeConstrain only, over dictionary IDs
}

// plan compiles a query into per-column actions (§6): filters become ID
// regions on content columns, queried tables constrain their indicators to
// 1, and each omitted table contributes exactly one fanout key to divide
// out — the key on its side of the edge toward the query subtree.
func (e *Estimator) plan(q query.Query) ([]colPlan, bool, error) {
	if err := e.domain.ValidateQuerySet(q.Tables); err != nil {
		return nil, false, err
	}
	qset := make(map[string]bool, len(q.Tables))
	for _, t := range q.Tables {
		qset[t] = true
	}
	for _, f := range q.Filters {
		if !qset[f.Table] {
			return nil, false, fmt.Errorf("core: filter %s references table outside the join", f)
		}
	}
	regions := make(map[string]map[string]query.Region, len(q.Tables))
	for _, t := range q.Tables {
		regs, err := query.TableRegions(e.domain.Table(t), q)
		if err != nil {
			return nil, false, err
		}
		regions[t] = regs
	}
	// Every filtered column must be modeled; silently dropping a filter
	// would systematically overestimate.
	for _, f := range q.Filters {
		if !e.enc.modeled[f.Table][f.Col] {
			return nil, false, fmt.Errorf("core: filter %s references a column not modeled by the estimator; add it to ContentCols", f)
		}
	}
	// Fanout keys of omitted tables.
	divide := make(map[string]map[string]bool) // table → key col → divide
	for _, t := range e.domain.Tables() {
		if qset[t] {
			continue
		}
		key, err := e.domain.FanoutKey(t, qset)
		if err != nil {
			return nil, false, err
		}
		if divide[t] == nil {
			divide[t] = make(map[string]bool)
		}
		divide[t][key] = true
	}

	empty := false
	plans := make([]colPlan, len(e.enc.cols))
	for i := range e.enc.cols {
		mc := &e.enc.cols[i]
		p := colPlan{mc: mc, mode: modeSkip}
		switch mc.Kind {
		case KindContent:
			if r, ok := regions[mc.Table][mc.Col]; ok {
				p.mode = modeConstrain
				p.region = r
				if r.Empty() {
					empty = true
				}
			}
		case KindIndicator:
			if qset[mc.Table] {
				p.mode = modeIndicatorOne
			}
		case KindFanout:
			if divide[mc.Table][mc.Col] {
				p.mode = modeFanoutDivide
			}
		}
		plans[i] = p
	}
	return plans, empty, nil
}

// EstimateWithSamples runs progressive sampling (Eq. 5 extended per §5/§6)
// with the given number of Monte Carlo samples and returns the estimated
// cardinality, lower-bounded at 1. The sampling batch runs on a pooled
// inference session: scratch is reused across queries, and rows whose weight
// hits zero are compacted out of the batch instead of being forward-passed
// dead.
func (e *Estimator) EstimateWithSamples(q query.Query, nSamples int, rng *rand.Rand) (float64, error) {
	plans, empty, err := e.plan(q)
	if err != nil {
		return 0, err
	}
	if empty {
		// A filter matches no dictionary value: true cardinality is 0; the
		// Q-error convention lower-bounds estimates at 1.
		return 1, nil
	}
	if nSamples < 1 {
		nSamples = 1
	}
	st := e.sessions.get(nSamples, false)
	defer e.sessions.put(st)
	return e.sampleWithSession(st, plans, nSamples, rng), nil
}

// sampleWithSession executes a compiled plan on a session-backed sampling
// batch. Single-threaded; concurrency comes from running many sessions.
func (e *Estimator) sampleWithSession(st *inferState, plans []colPlan, nSamples int, rng *rand.Rand) float64 {
	sess, w := st.sess, st.w[:nSamples]
	sess.Reset(nSamples)
	for i := range w {
		w[i] = 1
	}
	active := nSamples

	for pi := range plans {
		if active == 0 {
			break
		}
		p := &plans[pi]
		switch p.mode {
		case modeSkip:
			continue

		case modeIndicatorOne:
			probs := sess.Probs(p.mc.FlatOffset)
			for r := 0; r < active; r++ {
				w[r] *= probs.At(r, 1)
				sess.SetToken(r, p.mc.FlatOffset, 1)
			}
			active = compactZero(sess, w, active)

		case modeConstrain:
			active = e.sampleConstrained(st, p, w, active, rng)

		case modeFanoutDivide:
			nsub := p.mc.Fact.NumSubs()
			for j := 0; j < nsub; j++ {
				flat := p.mc.FlatOffset + j
				probs := sess.Probs(flat)
				for r := 0; r < active; r++ {
					sess.SetToken(r, flat, drawFull(probs.Row(r), rng))
				}
			}
			for r := 0; r < active; r++ {
				sub := sess.TokenRow(r)[p.mc.FlatOffset : p.mc.FlatOffset+nsub]
				fan := float64(p.mc.Fact.Decode(sub)) + 1
				w[r] /= fan
			}
		}
	}

	sum := 0.0
	for r := 0; r < active; r++ {
		sum += w[r]
	}
	card := sum / float64(nSamples) * e.joinSize
	if card < 1 {
		card = 1
	}
	return card
}

// sampleConstrained draws one content column subcolumn-by-subcolumn inside
// its filter region, multiplying each sample's weight by the in-region
// probability mass (importance weighting). Rows whose region support is
// empty are compacted out between subcolumns. Returns the new active count.
func (e *Estimator) sampleConstrained(st *inferState, p *colPlan, w []float64, active int, rng *rand.Rand) int {
	sess := st.sess
	nsub := p.mc.Fact.NumSubs()
	for j := 0; j < nsub && active > 0; j++ {
		flat := p.mc.FlatOffset + j
		probs := sess.Probs(flat)
		for r := 0; r < active; r++ {
			colToks := sess.TokenRow(r)[p.mc.FlatOffset : p.mc.FlatOffset+nsub]
			prefix := p.mc.Fact.PrefixValue(colToks, j)
			sub := p.mc.Fact.SubRegionAppend(st.ranges, p.region, j, prefix)
			if cap(sub) > cap(st.ranges) {
				st.ranges = sub // keep the grown scratch for later rows
			}
			if len(sub) == 0 {
				w[r] = 0
				continue
			}
			pr := probs.Row(r)
			mass := 0.0
			for _, iv := range sub {
				for t := iv.Lo; t <= iv.Hi; t++ {
					mass += pr[t]
				}
			}
			if mass <= 0 {
				w[r] = 0
				continue
			}
			w[r] *= mass
			// Draw within the region proportionally to pr.
			u := rng.Float64() * mass
			var chosen int32 = sub[len(sub)-1].Hi
			acc := 0.0
		draw:
			for _, iv := range sub {
				for t := iv.Lo; t <= iv.Hi; t++ {
					acc += pr[t]
					if acc > u {
						chosen = t
						break draw
					}
				}
			}
			sess.SetToken(r, flat, chosen)
		}
		active = compactZero(sess, w, active)
	}
	return active
}

// compactZero removes zero-weight rows by moving live tail rows into their
// slots, shrinking the session's active batch. Dead rows never see another
// forward pass.
func compactZero(sess inferSession, w []float64, active int) int {
	r := 0
	for r < active {
		if w[r] != 0 {
			r++
			continue
		}
		active--
		if r != active {
			w[r] = w[active]
			sess.CompactRows(r, active)
		}
	}
	sess.Shrink(active)
	return active
}

// drawFull samples an index proportional to an (already normalized)
// probability vector.
func drawFull(probs []float64, rng *rand.Rand) int32 {
	u := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if acc > u {
			return int32(i)
		}
	}
	return int32(len(probs) - 1)
}
