package factor

import (
	"math/rand"
	"testing"

	"neurocard/internal/query"
)

func TestNoFactorizationForSmallDomains(t *testing.T) {
	f := New(100, 10) // needs 7 bits ≤ 10
	if f.Factored() || f.NumSubs() != 1 {
		t.Fatalf("unexpected factorization: %+v", f)
	}
	if f.Size[0] != 100 {
		t.Errorf("single subcolumn token space = %d, want 100 (tight)", f.Size[0])
	}
	out := make([]int32, 1)
	f.Encode(42, out)
	if out[0] != 42 || f.Decode(out) != 42 {
		t.Errorf("identity encode broken: %v", out)
	}
}

func TestPaperExampleShape(t *testing.T) {
	// §5: domain 10^6 with N=10 → two subcolumns; value 10^6-1... the paper
	// slices 1,000,000 (20 bits) into chunks of 10 bits → high 976, low 576
	// for value 999,999+1? Verify with the actual bit math on 999999.
	f := New(1_000_000, 10)
	if f.NumSubs() != 2 {
		t.Fatalf("subs = %d, want 2", f.NumSubs())
	}
	out := make([]int32, 2)
	f.Encode(999_999, out)
	// 999999 = 0b11110100001001000111111 (20 bits): high 10 bits 976, low 575.
	if out[0] != 999_999>>10 || out[1] != 999_999&1023 {
		t.Errorf("Encode(999999) = %v", out)
	}
	if f.Decode(out) != 999_999 {
		t.Errorf("Decode mismatch")
	}
	// Top subcolumn tight: Size[0] = 999999>>10 + 1.
	if f.Size[0] != 999_999>>10+1 || f.Size[1] != 1024 {
		t.Errorf("sizes = %v", f.Size)
	}
}

// TestRoundTripProperty: Encode∘Decode is the identity for random domains.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		dom := 1 + rng.Intn(100000)
		maxBits := 1 + rng.Intn(12)
		f := New(dom, maxBits)
		out := make([]int32, f.NumSubs())
		for probe := 0; probe < 50; probe++ {
			id := int32(rng.Intn(dom))
			f.Encode(id, out)
			for j, tok := range out {
				if int(tok) >= f.Size[j] {
					t.Fatalf("dom %d bits %d: token %d of subcol %d exceeds size %d",
						dom, maxBits, tok, j, f.Size[j])
				}
			}
			if got := f.Decode(out); got != id {
				t.Fatalf("dom %d bits %d: round trip %d → %v → %d", dom, maxBits, id, out, got)
			}
		}
	}
}

func TestWidthsRespectMaxBits(t *testing.T) {
	for _, dom := range []int{2, 17, 255, 256, 257, 65536, 1 << 20} {
		for _, b := range []int{1, 3, 8, 10} {
			f := New(dom, b)
			for j, w := range f.Width {
				if w > b {
					t.Errorf("dom %d bits %d: subcol %d width %d", dom, b, j, w)
				}
			}
			// Total coverage: product of sizes ≥ dom.
			prod := 1
			for _, s := range f.Size {
				prod *= s
				if prod >= dom {
					break
				}
			}
			if prod < dom {
				t.Errorf("dom %d bits %d: sizes %v cannot cover domain", dom, b, f.Size)
			}
		}
	}
}

// TestSubRegionExact is the §5 correctness property: for every ID in the
// domain, the ID lies in the region iff all of its subcolumn tokens are
// accepted by SubRegion given the ID's own prefix.
func TestSubRegionExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 150; iter++ {
		dom := 2 + rng.Intn(2000)
		maxBits := 1 + rng.Intn(6)
		f := New(dom, maxBits)
		// Random region: mark 1-3 intervals over [1, dom-1] (0 = NULL is
		// excluded, mirroring filter semantics), then derive the normalized
		// interval list from the membership bitmap so Region invariants
		// (sorted, disjoint) hold by construction.
		member := make([]bool, dom)
		for k := 0; k < 1+rng.Intn(3); k++ {
			lo := 1 + rng.Intn(dom-1)
			hi := lo + rng.Intn(dom/2+1)
			if hi > dom-1 {
				hi = dom - 1
			}
			for id := lo; id <= hi; id++ {
				member[id] = true
			}
		}
		var region query.Region
		for id := 1; id < dom; id++ {
			if member[id] {
				if n := len(region); n > 0 && region[n-1].Hi == int32(id-1) {
					region[n-1].Hi = int32(id)
				} else {
					region = append(region, query.IDRange{Lo: int32(id), Hi: int32(id)})
				}
			}
		}
		if len(region) == 0 {
			continue
		}

		tokens := make([]int32, f.NumSubs())
		for id := int32(0); id < int32(dom); id++ {
			f.Encode(id, tokens)
			allValid := true
			for j := 0; j < f.NumSubs(); j++ {
				sub := f.SubRegion(region, j, f.PrefixValue(tokens, j))
				ok := false
				for _, r := range sub {
					if tokens[j] >= r.Lo && tokens[j] <= r.Hi {
						ok = true
						break
					}
				}
				if !ok {
					allValid = false
					break
				}
			}
			if got, want := allValid, member[id]; got != want {
				t.Fatalf("dom %d bits %d region %v id %d: subcolumn acceptance %v, membership %v",
					dom, maxBits, region, id, got, want)
			}
		}
	}
}

// TestSubRegionMonotone: higher-level acceptance never cuts off IDs that the
// region contains (no false negatives at intermediate levels).
func TestSubRegionPaperWalkthrough(t *testing.T) {
	// col < 1,000,000 over a 2^20 domain with 10-bit slices: high-bits filter
	// relaxes to ≤ 976; if high == 976, low must be < 576, else wildcard.
	f := New(1<<20, 10)
	region := query.Region{{Lo: 0, Hi: 999_999}}

	top := f.SubRegion(region, 0, 0)
	if len(top) != 1 || top[0].Lo != 0 || top[0].Hi != 976 {
		t.Fatalf("top-level tokens = %v, want [0,976]", top)
	}
	// Drawn high bits = 976 → low bits < 576.
	low := f.SubRegion(region, 1, 976<<10)
	if len(low) != 1 || low[0].Lo != 0 || low[0].Hi != 575 {
		t.Fatalf("low tokens given 976 = %v, want [0,575]", low)
	}
	// Drawn high bits = 975 → all low bits valid (wildcard).
	low = f.SubRegion(region, 1, 975<<10)
	if len(low) != 1 || low[0].Lo != 0 || low[0].Hi != 1023 {
		t.Fatalf("low tokens given 975 = %v, want [0,1023]", low)
	}
}

func TestSubRegionEmpty(t *testing.T) {
	f := New(1000, 4)
	if got := f.SubRegion(nil, 0, 0); got != nil {
		t.Errorf("empty region produced %v", got)
	}
	// Region entirely below the drawn prefix.
	region := query.Region{{Lo: 1, Hi: 5}}
	if got := f.SubRegion(region, 1, 512); len(got) != 0 {
		t.Errorf("out-of-prefix region produced %v", got)
	}
}

func TestNewPanicsOnBadDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0, 4)
}
