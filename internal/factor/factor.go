// Package factor implements lossless column factorization (§5): a
// dictionary ID space of size |C| is bit-sliced into subcolumns of at most N
// bits (the "factorization bits" hyperparameter), high bits first, shrinking
// per-column embedding matrices from |C|·h to at most 2^N·h floats. Because
// the downstream density model is autoregressive, the joint over subcolumns
// p(sub1)·p(sub2|sub1)·… loses no information — hence "lossless".
//
// During progressive sampling, a filter region over original IDs must be
// translated into per-subcolumn token constraints given the tokens already
// drawn for higher subcolumns (the paper's high-bits/low-bits relaxation
// logic, generalized here to unions of ID intervals). SubRegion implements
// that translation exactly.
package factor

import (
	"fmt"
	"math/bits"

	"neurocard/internal/query"
)

// Factorization describes how one column's ID domain [0, Dom) splits into
// subcolumn tokens. A column with Dom ≤ 2^maxBits keeps a single subcolumn
// whose token space equals the original domain (no factorization).
type Factorization struct {
	Dom   int   // original domain size (dictionary size incl. NULL)
	Width []int // bit width per subcolumn, high bits first
	Size  []int // token domain per subcolumn (top is tight, lower are 2^width)
	shift []int // right-shift of each subcolumn within an ID
}

// New splits a domain of size dom into subcolumns of at most maxBits bits.
// maxBits ≤ 0 disables factorization (single subcolumn).
func New(dom, maxBits int) Factorization {
	if dom < 1 {
		panic(fmt.Sprintf("factor: domain size %d", dom))
	}
	need := bits.Len(uint(dom - 1)) // bits to represent dom-1
	if need == 0 {
		need = 1
	}
	if maxBits <= 0 || need <= maxBits {
		return Factorization{Dom: dom, Width: []int{need}, Size: []int{dom}, shift: []int{0}}
	}
	k := (need + maxBits - 1) / maxBits
	f := Factorization{Dom: dom, Width: make([]int, k), Size: make([]int, k), shift: make([]int, k)}
	top := need - (k-1)*maxBits
	f.Width[0] = top
	for j := 1; j < k; j++ {
		f.Width[j] = maxBits
	}
	s := need
	for j := 0; j < k; j++ {
		s -= f.Width[j]
		f.shift[j] = s
		f.Size[j] = 1 << f.Width[j]
	}
	// The top subcolumn is tight: its largest token is (dom-1) >> shift[0].
	f.Size[0] = int((dom-1)>>f.shift[0]) + 1
	return f
}

// NumSubs returns the number of subcolumns.
func (f Factorization) NumSubs() int { return len(f.Width) }

// Factored reports whether the column actually splits (> 1 subcolumn).
func (f Factorization) Factored() bool { return len(f.Width) > 1 }

// Encode splits an ID into subcolumn tokens (high bits first). out must have
// NumSubs() entries.
func (f Factorization) Encode(id int32, out []int32) {
	if id < 0 || int(id) >= f.Dom {
		panic(fmt.Sprintf("factor: id %d outside domain %d", id, f.Dom))
	}
	for j := range f.Width {
		out[j] = (id >> f.shift[j]) & int32(f.TokenMask(j))
	}
}

// TokenMask returns the token bit mask of subcolumn j (width bits of ones).
func (f Factorization) TokenMask(j int) int { return (1 << f.Width[j]) - 1 }

// Decode reassembles an ID from subcolumn tokens.
func (f Factorization) Decode(tokens []int32) int32 {
	var id int32
	for j, t := range tokens {
		id |= t << f.shift[j]
	}
	return id
}

// PrefixValue returns the partial ID formed by the first j tokens (the high
// bits already drawn during progressive sampling).
func (f Factorization) PrefixValue(tokens []int32, j int) int32 {
	var v int32
	for i := 0; i < j; i++ {
		v |= tokens[i] << f.shift[i]
	}
	return v
}

// SubRegion translates a region over original IDs into the valid token
// ranges for subcolumn j, given the higher subcolumn tokens already drawn
// (prefix = PrefixValue(tokens, j)). A token is valid iff some ID completion
// under it falls inside the region; at the last subcolumn this is exact, and
// at higher subcolumns it never excludes a valid completion — together the
// per-level constraints select exactly the region (§5, "Filters on
// subcolumns").
func (f Factorization) SubRegion(region query.Region, j int, prefix int32) []query.IDRange {
	return f.SubRegionAppend(nil, region, j, prefix)
}

// SubRegionAppend is SubRegion writing into dst's storage (overwriting its
// contents), so per-row calls on the inference hot path reuse one scratch
// buffer instead of allocating. The returned slice shares dst's backing
// array whenever capacity allows.
func (f Factorization) SubRegionAppend(dst []query.IDRange, region query.Region, j int, prefix int32) []query.IDRange {
	if len(region) == 0 {
		return nil
	}
	s := f.shift[j]
	maxTok := int32(f.Size[j] - 1)
	out := dst[:0]
	for _, iv := range region {
		if iv.Hi < prefix {
			continue
		}
		// token t covers IDs [prefix + t·span, prefix + t·span + span - 1]
		// (plus lower levels may further restrict).
		var lo int32
		if iv.Lo > prefix {
			lo = (iv.Lo - prefix) >> s
		}
		hi := (iv.Hi - prefix) >> s
		if hi > maxTok {
			hi = maxTok
		}
		if lo > maxTok || lo > hi {
			continue
		}
		out = append(out, query.IDRange{Lo: lo, Hi: hi})
	}
	return mergeRanges(out)
}

// mergeRanges sorts and merges overlapping/adjacent token ranges. Inputs
// from SubRegion are already sorted per interval but may overlap across
// region intervals after shifting.
func mergeRanges(rs []query.IDRange) []query.IDRange {
	if len(rs) <= 1 {
		return rs
	}
	// Insertion sort: range lists are tiny.
	for i := 1; i < len(rs); i++ {
		for k := i; k > 0 && rs[k].Lo < rs[k-1].Lo; k-- {
			rs[k], rs[k-1] = rs[k-1], rs[k]
		}
	}
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi+1 {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}
