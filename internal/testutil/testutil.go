// Package testutil provides shared generators and statistical helpers for
// the property-based tests that validate the join machinery: random tree
// schemas with small domains (so brute-force materialization stays
// tractable), random queries over them, and a chi-square uniformity check.
// Only test code imports this package.
package testutil

import (
	"fmt"
	"math"
	"math/rand"

	"neurocard/internal/query"
	"neurocard/internal/schema"
	"neurocard/internal/table"
	"neurocard/internal/value"
)

// RandomSchemaConfig bounds the generated schemas.
type RandomSchemaConfig struct {
	MaxTables  int     // ≥ 2
	MaxRows    int     // rows per table, ≥ 1
	KeyDomain  int     // join key values drawn from [0, KeyDomain)
	NullProb   float64 // probability a join key is NULL
	ExtraCols  int     // max additional non-key "content" columns per table
	ValDomain  int     // content values drawn from [0, ValDomain)
	AllowEmpty bool    // permit zero-row tables
}

// DefaultSchemaConfig keeps brute-force joins small but structurally varied.
func DefaultSchemaConfig() RandomSchemaConfig {
	return RandomSchemaConfig{
		MaxTables: 4,
		MaxRows:   6,
		KeyDomain: 4,
		NullProb:  0.15,
		ExtraCols: 2,
		ValDomain: 5,
	}
}

// RandomSchema generates a random tree schema with random table contents.
// Table i>0 attaches to a random earlier table; every table gets one key
// column per incident edge plus up to ExtraCols content columns.
func RandomSchema(rng *rand.Rand, cfg RandomSchemaConfig) *schema.Schema {
	nTables := 2 + rng.Intn(cfg.MaxTables-1)
	names := make([]string, nTables)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
	}
	// Tree shape: parent[i] < i.
	parent := make([]int, nTables)
	for i := 1; i < nTables; i++ {
		parent[i] = rng.Intn(i)
	}
	// Key columns: table i owns key column "k<i>" joining to its parent on
	// the parent's column "k<i>" too (each edge gets a dedicated column pair
	// so multi-child tables have multiple join keys).
	colsOf := make([][]table.ColSpec, nTables)
	for i := 0; i < nTables; i++ {
		if i > 0 {
			colsOf[i] = append(colsOf[i], table.ColSpec{Name: fmt.Sprintf("k%d", i), Kind: value.KindInt})
		}
		for j := i + 1; j < nTables; j++ {
			if parent[j] == i {
				colsOf[i] = append(colsOf[i], table.ColSpec{Name: fmt.Sprintf("k%d", j), Kind: value.KindInt})
			}
		}
		extra := rng.Intn(cfg.ExtraCols + 1)
		for e := 0; e < extra; e++ {
			colsOf[i] = append(colsOf[i], table.ColSpec{Name: fmt.Sprintf("c%d_%d", i, e), Kind: value.KindInt})
		}
		if len(colsOf[i]) == 0 { // root with no children and no extras
			colsOf[i] = append(colsOf[i], table.ColSpec{Name: fmt.Sprintf("c%d_0", i), Kind: value.KindInt})
		}
	}
	tables := make([]*table.Table, nTables)
	for i := 0; i < nTables; i++ {
		b := table.MustBuilder(names[i], colsOf[i])
		nRows := 1 + rng.Intn(cfg.MaxRows)
		if cfg.AllowEmpty && rng.Intn(8) == 0 {
			nRows = 0
		}
		for r := 0; r < nRows; r++ {
			row := make([]value.Value, len(colsOf[i]))
			for c, spec := range colsOf[i] {
				isKey := spec.Name[0] == 'k'
				if isKey && rng.Float64() < cfg.NullProb {
					row[c] = value.Null
				} else if isKey {
					row[c] = value.Int(int64(rng.Intn(cfg.KeyDomain)))
				} else if rng.Float64() < 0.1 {
					row[c] = value.Null
				} else {
					row[c] = value.Int(int64(rng.Intn(cfg.ValDomain)))
				}
			}
			b.MustAppend(row...)
		}
		tables[i] = b.MustBuild()
	}
	edges := make([]schema.Edge, 0, nTables-1)
	for i := 1; i < nTables; i++ {
		key := fmt.Sprintf("k%d", i)
		edges = append(edges, schema.Edge{
			LeftTable: names[parent[i]], LeftCol: key,
			RightTable: names[i], RightCol: key,
		})
	}
	s, err := schema.New(tables, names[0], edges)
	if err != nil {
		panic(fmt.Sprintf("testutil: generated invalid schema: %v", err))
	}
	return s
}

// RandomQuery builds a random query over a connected subtree of the schema
// with random filters on content and key columns.
func RandomQuery(rng *rand.Rand, s *schema.Schema, maxFilters int) query.Query {
	order := s.Tables()
	// Grow a connected subtree starting from a random table by repeatedly
	// adding adjacent tables.
	start := order[rng.Intn(len(order))]
	in := map[string]bool{start: true}
	tables := []string{start}
	for len(tables) < len(order) && rng.Float64() < 0.6 {
		var candidates []string
		for _, t := range order {
			if in[t] {
				continue
			}
			if e, ok := s.Parent(t); ok && in[e.Parent] {
				candidates = append(candidates, t)
			}
		}
		// Also allow adding a member's parent.
		for t := range in {
			if e, ok := s.Parent(t); ok && !in[e.Parent] {
				candidates = append(candidates, e.Parent)
			}
		}
		if len(candidates) == 0 {
			break
		}
		pick := candidates[rng.Intn(len(candidates))]
		in[pick] = true
		tables = append(tables, pick)
	}

	var filters []query.Filter
	nf := rng.Intn(maxFilters + 1)
	for f := 0; f < nf; f++ {
		tname := tables[rng.Intn(len(tables))]
		t := s.Table(tname)
		col := t.Columns()[rng.Intn(t.NumCols())]
		flt := RandomPredicate(rng, tname, col.Name())
		// Occasionally widen into an OR group on the same column.
		for rng.Intn(5) == 0 && len(flt.Or) < 2 {
			alt := RandomPredicate(rng, tname, col.Name())
			alt.Table, alt.Col = "", "" // inherited from the group
			flt.Or = append(flt.Or, alt)
		}
		filters = append(filters, flt)
	}
	return query.Query{Tables: tables, Filters: filters}
}

// RandomPredicate draws one random leaf predicate (no OR group) over small
// integer literals, covering the full operator set: comparisons, negations,
// memberships, BETWEEN, and null tests.
func RandomPredicate(rng *rand.Rand, tname, col string) query.Filter {
	ops := []query.Op{
		query.OpEq, query.OpLt, query.OpLe, query.OpGt, query.OpGe, query.OpIn,
		query.OpNeq, query.OpNotIn, query.OpBetween, query.OpIsNull, query.OpIsNotNull,
	}
	op := ops[rng.Intn(len(ops))]
	flt := query.Filter{Table: tname, Col: col, Op: op}
	switch op {
	case query.OpIn, query.OpNotIn:
		n := 1 + rng.Intn(3)
		flt.Set = make([]value.Value, n)
		for i := range flt.Set {
			flt.Set[i] = value.Int(int64(rng.Intn(8) - 1))
		}
	case query.OpBetween:
		lo := int64(rng.Intn(8) - 1)
		flt.Val = value.Int(lo)
		flt.Hi = value.Int(lo + int64(rng.Intn(5)-1)) // sometimes inverted
	case query.OpIsNull, query.OpIsNotNull:
	default:
		flt.Val = value.Int(int64(rng.Intn(8) - 1))
	}
	return flt
}

// RowKey renders a join-row vector as a map key for frequency counting.
func RowKey(row []int32) string {
	return fmt.Sprint(row)
}

// ChiSquareUniform checks whether observed counts over k categories with the
// given expected probabilities are consistent with those probabilities. It
// returns the chi-square statistic and whether it is below a loose threshold
// (mean + 6·sqrt(2·df), far beyond any reasonable significance level, so the
// test is stable under CI noise but still catches systematic bias).
func ChiSquareUniform(observed []int, probs []float64, total int) (float64, bool) {
	if len(observed) != len(probs) {
		panic("testutil: observed/probs length mismatch")
	}
	chi := 0.0
	df := 0.0
	for i := range observed {
		expect := probs[i] * float64(total)
		if expect < 1e-12 {
			if observed[i] > 0 {
				return math.Inf(1), false
			}
			continue
		}
		d := float64(observed[i]) - expect
		chi += d * d / expect
		df++
	}
	if df <= 1 {
		return chi, true
	}
	df--
	limit := df + 6*math.Sqrt(2*df)
	return chi, chi <= limit
}
