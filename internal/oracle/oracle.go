// Package oracle provides exact references for NeuroCard's probabilistic
// inference, usable only at toy scale:
//
//   - Exact: a core.ProbSource backed by the materialized full outer join,
//     returning the true autoregressive conditionals over encoded tokens.
//     Plugged into the estimator, it isolates the §5/§6 inference algorithms
//     (region translation, indicators, fanout scaling) from training noise.
//   - ExactCardinality: a direct evaluation of the paper's Eq. 9 over the
//     materialized join — the mathematical ground truth the progressive
//     sampling procedure estimates.
package oracle

import (
	"fmt"

	"neurocard/internal/core"
	"neurocard/internal/exec"
	"neurocard/internal/nn"
	"neurocard/internal/query"
	"neurocard/internal/sampler"
	"neurocard/internal/schema"
)

// Exact is an exact conditional source over the encoded full outer join.
type Exact struct {
	doms []int
	rows [][]int32 // encoded token tuples, one per full-join row
}

// NewExact materializes and encodes the full outer join. Exponential in
// schema size; intended for tests on small schemas.
func NewExact(data *schema.Schema, enc *core.Encoder) (*Exact, error) {
	joinRows, err := exec.BruteForceFullJoin(data)
	if err != nil {
		return nil, err
	}
	if len(joinRows) == 0 {
		return nil, fmt.Errorf("oracle: empty full join")
	}
	encoded, err := enc.EncodeJoinRows(data, joinRows)
	if err != nil {
		return nil, err
	}
	return &Exact{doms: enc.FlatDomains(), rows: encoded}, nil
}

// NumCols returns the number of flat model columns.
func (o *Exact) NumCols() int { return len(o.doms) }

// DomainSize returns the token domain of column i.
func (o *Exact) DomainSize(i int) int { return o.doms[i] }

// Conditional computes the exact p(X_col | matching prefix) by filtering the
// materialized rows: positions < col holding MaskToken are wildcards. A
// prefix with no support yields a uniform distribution (the trained model
// would return arbitrary probabilities there too; such samples carry zero
// importance weight).
func (o *Exact) Conditional(tokens [][]int32, col int, out *nn.Mat) {
	if out.Rows != len(tokens) || out.Cols != o.doms[col] {
		panic("oracle: Conditional dimension mismatch")
	}
	out.Zero()
	for r, q := range tokens {
		row := out.Row(r)
		n := 0
		for _, enc := range o.rows {
			match := true
			for c := 0; c < col; c++ {
				if q[c] != core.MaskToken && q[c] != enc[c] {
					match = false
					break
				}
			}
			if match {
				row[enc[col]]++
				n++
			}
		}
		if n == 0 {
			u := 1 / float64(len(row))
			for i := range row {
				row[i] = u
			}
			continue
		}
		inv := 1 / float64(n)
		for i := range row {
			row[i] *= inv
		}
	}
}

// ExactCardinality evaluates Eq. 9 directly over the materialized full outer
// join: |J| · E[ 1{filters} · Π_{T∈Q} 1_T / Π_{R∉Q} F_{R.key} ]. It is an
// independent implementation of the §6 schema-subsetting math (no encoder,
// no sampling) used to validate both the inference algorithms and the
// executor against each other.
func ExactCardinality(data *schema.Schema, q query.Query) (float64, error) {
	if err := data.ValidateQuerySet(q.Tables); err != nil {
		return 0, err
	}
	qset := make(map[string]bool, len(q.Tables))
	for _, t := range q.Tables {
		qset[t] = true
	}
	order := data.Tables()
	tIdx := make(map[string]int, len(order))
	for i, t := range order {
		tIdx[t] = i
	}
	// Compiled filter regions per queried table.
	regions := make(map[string]map[string]query.Region)
	for _, t := range q.Tables {
		regs, err := query.TableRegions(data.Table(t), q)
		if err != nil {
			return 0, err
		}
		regions[t] = regs
	}
	// Fanout keys and arrays for omitted tables.
	type fanRef struct {
		ti   int
		fans []int32
	}
	var fanRefs []fanRef
	for _, t := range order {
		if qset[t] {
			continue
		}
		key, err := data.FanoutKey(t, qset)
		if err != nil {
			return 0, err
		}
		fans, err := data.Table(t).Fanouts(key)
		if err != nil {
			return 0, err
		}
		fanRefs = append(fanRefs, fanRef{ti: tIdx[t], fans: fans})
	}

	joinRows, err := exec.BruteForceFullJoin(data)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, row := range joinRows {
		contrib := 1.0
		ok := true
		for _, t := range q.Tables {
			base := row[tIdx[t]]
			if base == sampler.NullRow {
				ok = false // indicator 1_T = 0
				break
			}
			if !query.Matches(data.Table(t), regions[t], int(base)) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, fr := range fanRefs {
			base := row[fr.ti]
			if base != sampler.NullRow {
				contrib /= float64(fr.fans[base])
			}
			// NULL omitted table ⇒ fanout 1 ⇒ no scaling.
		}
		total += contrib
	}
	return total, nil
}
