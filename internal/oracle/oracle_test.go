package oracle

import (
	"math"
	"math/rand"
	"testing"

	"neurocard/internal/exec"
	"neurocard/internal/query"
	"neurocard/internal/schema"
	"neurocard/internal/table"
	"neurocard/internal/testutil"
	"neurocard/internal/value"
)

// figure4 builds the paper's running example.
func figure4(t *testing.T) *schema.Schema {
	t.Helper()
	a := table.MustBuilder("A", []table.ColSpec{{Name: "x", Kind: value.KindInt}})
	a.MustAppend(value.Int(1))
	a.MustAppend(value.Int(2))
	b := table.MustBuilder("B", []table.ColSpec{
		{Name: "x", Kind: value.KindInt}, {Name: "y", Kind: value.KindInt},
	})
	b.MustAppend(value.Int(1), value.Int(1))
	b.MustAppend(value.Int(2), value.Int(2))
	b.MustAppend(value.Int(2), value.Int(3))
	c := table.MustBuilder("C", []table.ColSpec{{Name: "y", Kind: value.KindInt}})
	c.MustAppend(value.Int(3))
	c.MustAppend(value.Int(3))
	c.MustAppend(value.Int(4))
	s, err := schema.New(
		[]*table.Table{a.MustBuild(), b.MustBuild(), c.MustBuild()},
		"A",
		[]schema.Edge{
			{LeftTable: "A", LeftCol: "x", RightTable: "B", RightCol: "x"},
			{LeftTable: "B", LeftCol: "y", RightTable: "C", RightCol: "y"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestEquation9PaperExample reproduces the §6 worked examples: Q1 (full
// inner join, A.x=2) = 2 and Q2 (A only, A.x=2) = 1, including the
// 1/5·(1/2 + 1/4 + 1/4)·5 fanout-scaling arithmetic.
func TestEquation9PaperExample(t *testing.T) {
	s := figure4(t)
	q1 := query.Query{
		Tables:  []string{"A", "B", "C"},
		Filters: []query.Filter{{Table: "A", Col: "x", Op: query.OpEq, Val: value.Int(2)}},
	}
	if got, err := ExactCardinality(s, q1); err != nil || math.Abs(got-2) > 1e-9 {
		t.Errorf("Q1 via Eq.9 = %v, %v; want 2", got, err)
	}
	q2 := query.Query{
		Tables:  []string{"A"},
		Filters: []query.Filter{{Table: "A", Col: "x", Op: query.OpEq, Val: value.Int(2)}},
	}
	if got, err := ExactCardinality(s, q2); err != nil || math.Abs(got-1) > 1e-9 {
		t.Errorf("Q2 via Eq.9 = %v, %v; want 1", got, err)
	}
}

// TestEquation9MatchesExecutor is the central §6 validation: the
// indicator+fanout-scaling formula over the full outer join computes exactly
// the inner-join cardinality, for random schemas and random queries
// (including multi-key joins, NULL keys, and omitted subtrees on both
// sides).
func TestEquation9MatchesExecutor(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	cfg := testutil.DefaultSchemaConfig()
	for iter := 0; iter < 200; iter++ {
		s := testutil.RandomSchema(rng, cfg)
		q := testutil.RandomQuery(rng, s, 3)
		want, err := exec.Cardinality(s, q)
		if err != nil {
			t.Fatalf("iter %d (%s): %v", iter, q, err)
		}
		got, err := ExactCardinality(s, q)
		if err != nil {
			t.Fatalf("iter %d (%s): %v", iter, q, err)
		}
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("iter %d: Eq.9 = %v, executor = %v for %s (tables %v)",
				iter, got, want, q, s.Tables())
		}
	}
}
