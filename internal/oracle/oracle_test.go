package oracle

import (
	"math"
	"math/rand"
	"testing"

	"neurocard/internal/exec"
	"neurocard/internal/query"
	"neurocard/internal/schema"
	"neurocard/internal/table"
	"neurocard/internal/testutil"
	"neurocard/internal/value"
)

// figure4 builds the paper's running example.
func figure4(t *testing.T) *schema.Schema {
	t.Helper()
	a := table.MustBuilder("A", []table.ColSpec{{Name: "x", Kind: value.KindInt}})
	a.MustAppend(value.Int(1))
	a.MustAppend(value.Int(2))
	b := table.MustBuilder("B", []table.ColSpec{
		{Name: "x", Kind: value.KindInt}, {Name: "y", Kind: value.KindInt},
	})
	b.MustAppend(value.Int(1), value.Int(1))
	b.MustAppend(value.Int(2), value.Int(2))
	b.MustAppend(value.Int(2), value.Int(3))
	c := table.MustBuilder("C", []table.ColSpec{{Name: "y", Kind: value.KindInt}})
	c.MustAppend(value.Int(3))
	c.MustAppend(value.Int(3))
	c.MustAppend(value.Int(4))
	s, err := schema.New(
		[]*table.Table{a.MustBuild(), b.MustBuild(), c.MustBuild()},
		"A",
		[]schema.Edge{
			{LeftTable: "A", LeftCol: "x", RightTable: "B", RightCol: "x"},
			{LeftTable: "B", LeftCol: "y", RightTable: "C", RightCol: "y"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestEquation9PaperExample reproduces the §6 worked examples: Q1 (full
// inner join, A.x=2) = 2 and Q2 (A only, A.x=2) = 1, including the
// 1/5·(1/2 + 1/4 + 1/4)·5 fanout-scaling arithmetic.
func TestEquation9PaperExample(t *testing.T) {
	s := figure4(t)
	q1 := query.Query{
		Tables:  []string{"A", "B", "C"},
		Filters: []query.Filter{{Table: "A", Col: "x", Op: query.OpEq, Val: value.Int(2)}},
	}
	if got, err := ExactCardinality(s, q1); err != nil || math.Abs(got-2) > 1e-9 {
		t.Errorf("Q1 via Eq.9 = %v, %v; want 2", got, err)
	}
	q2 := query.Query{
		Tables:  []string{"A"},
		Filters: []query.Filter{{Table: "A", Col: "x", Op: query.OpEq, Val: value.Int(2)}},
	}
	if got, err := ExactCardinality(s, q2); err != nil || math.Abs(got-1) > 1e-9 {
		t.Errorf("Q2 via Eq.9 = %v, %v; want 1", got, err)
	}
}

// TestEquation9MatchesExecutor is the central §6 validation: the
// indicator+fanout-scaling formula over the full outer join computes exactly
// the inner-join cardinality, for random schemas and random queries
// (including multi-key joins, NULL keys, and omitted subtrees on both
// sides).
func TestEquation9MatchesExecutor(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	cfg := testutil.DefaultSchemaConfig()
	for iter := 0; iter < 200; iter++ {
		s := testutil.RandomSchema(rng, cfg)
		q := testutil.RandomQuery(rng, s, 3)
		want, err := exec.Cardinality(s, q)
		if err != nil {
			t.Fatalf("iter %d (%s): %v", iter, q, err)
		}
		got, err := ExactCardinality(s, q)
		if err != nil {
			t.Fatalf("iter %d (%s): %v", iter, q, err)
		}
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("iter %d: Eq.9 = %v, executor = %v for %s (tables %v)",
				iter, got, want, q, s.Tables())
		}
	}
}

// TestEquation9NewOpsGolden is the 200-query fixed-seed agreement check for
// the extended predicate set: random schemas with NULL-bearing columns,
// queries built only from the new operators (OR groups, ≠, NOT IN, BETWEEN,
// IS [NOT] NULL), executor and Eq.9 must agree exactly, and every new
// operator must actually be exercised.
func TestEquation9NewOpsGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	cfg := testutil.DefaultSchemaConfig()
	newOps := []query.Op{query.OpNeq, query.OpNotIn, query.OpBetween, query.OpIsNull, query.OpIsNotNull}
	seen := map[query.Op]int{}
	orGroups := 0
	for iter := 0; iter < 200; iter++ {
		s := testutil.RandomSchema(rng, cfg)
		base := testutil.RandomQuery(rng, s, 0) // join graph only
		// One to three filters drawn exclusively from the new operators.
		nf := 1 + rng.Intn(3)
		for f := 0; f < nf; f++ {
			tname := base.Tables[rng.Intn(len(base.Tables))]
			tbl := s.Table(tname)
			col := tbl.Columns()[rng.Intn(tbl.NumCols())].Name()
			var flt query.Filter
			for {
				flt = testutil.RandomPredicate(rng, tname, col)
				isNew := false
				for _, op := range newOps {
					if flt.Op == op {
						isNew = true
					}
				}
				if isNew {
					break
				}
			}
			if rng.Intn(3) == 0 {
				alt := testutil.RandomPredicate(rng, tname, col)
				alt.Table, alt.Col = "", ""
				flt.Or = append(flt.Or, alt)
				orGroups++
			}
			seen[flt.Op]++
			base.Filters = append(base.Filters, flt)
		}
		want, err := exec.Cardinality(s, base)
		if err != nil {
			t.Fatalf("iter %d (%s): %v", iter, base, err)
		}
		got, err := ExactCardinality(s, base)
		if err != nil {
			t.Fatalf("iter %d (%s): %v", iter, base, err)
		}
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("iter %d (%s): Eq.9 non-finite %v", iter, base, got)
		}
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("iter %d: Eq.9 = %v, executor = %v for %s", iter, got, want, base)
		}
	}
	for _, op := range newOps {
		if seen[op] == 0 {
			t.Errorf("operator %s never exercised over 200 queries", op)
		}
	}
	if orGroups == 0 {
		t.Error("no OR groups exercised over 200 queries")
	}
}
