package query

import (
	"bytes"
	"testing"

	"neurocard/internal/value"
)

// keyQueries enumerates queries that differ in exactly the dimensions the
// canonical key must distinguish: table sets (including concatenation
// traps), operators, literals, literal kinds, BETWEEN bounds, IN sets, and
// OR structure.
func keyQueries() []Query {
	f := func(op Op, v value.Value) Filter {
		return Filter{Table: "t", Col: "c", Op: op, Val: v}
	}
	return []Query{
		{Tables: []string{"ab"}},
		{Tables: []string{"a", "b"}},
		{Tables: []string{"b", "a"}},
		{Tables: []string{"t"}},
		{Tables: []string{"t"}, Filters: []Filter{f(OpEq, value.Int(1))}},
		{Tables: []string{"t"}, Filters: []Filter{f(OpEq, value.Int(2))}},
		{Tables: []string{"t"}, Filters: []Filter{f(OpNeq, value.Int(1))}},
		{Tables: []string{"t"}, Filters: []Filter{f(OpEq, value.Str("1"))}},
		{Tables: []string{"t"}, Filters: []Filter{{Table: "t", Col: "c", Op: OpBetween, Val: value.Int(1), Hi: value.Int(5)}}},
		{Tables: []string{"t"}, Filters: []Filter{{Table: "t", Col: "c", Op: OpBetween, Val: value.Int(1), Hi: value.Int(6)}}},
		{Tables: []string{"t"}, Filters: []Filter{{Table: "t", Col: "c", Op: OpIn, Val: value.Value{}, Set: []value.Value{value.Int(1), value.Int(2)}}}},
		{Tables: []string{"t"}, Filters: []Filter{{Table: "t", Col: "c", Op: OpIn, Set: []value.Value{value.Int(1), value.Int(3)}}}},
		{Tables: []string{"t"}, Filters: []Filter{{Table: "t", Col: "c", Op: OpIsNull}}},
		{Tables: []string{"t"}, Filters: []Filter{{Table: "t", Col: "c", Op: OpIsNotNull}}},
		{Tables: []string{"t"}, Filters: []Filter{f(OpEq, value.Int(1)), f(OpLt, value.Int(9))}},
		{Tables: []string{"t"}, Filters: []Filter{{
			Table: "t", Col: "c", Op: OpEq, Val: value.Int(1),
			Or: []Filter{{Op: OpIsNull}},
		}}},
		{Tables: []string{"t"}, Filters: []Filter{{
			Table: "t", Col: "c", Op: OpEq, Val: value.Int(1),
			Or: []Filter{{Op: OpEq, Val: value.Int(7)}},
		}}},
		{Tables: []string{"t"}, Filters: []Filter{{Table: "t", Col: "d", Op: OpEq, Val: value.Int(1)}}},
		{Tables: []string{"u"}, Filters: []Filter{{Table: "u", Col: "c", Op: OpEq, Val: value.Int(1)}}},
	}
}

// TestAppendKeyInjective: distinct queries produce distinct keys — a
// collision would serve one query's compiled plan for another.
func TestAppendKeyInjective(t *testing.T) {
	qs := keyQueries()
	keys := make([][]byte, len(qs))
	for i, q := range qs {
		keys[i] = q.AppendKey(nil)
	}
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if bytes.Equal(keys[i], keys[j]) {
				t.Fatalf("queries %d and %d share key %x:\n  %s\n  %s", i, j, keys[i], qs[i], qs[j])
			}
		}
	}
}

// TestAppendKeyDeterministic: the key is a pure function of the query and
// appends to the caller's scratch without disturbing existing bytes.
func TestAppendKeyDeterministic(t *testing.T) {
	for _, q := range keyQueries() {
		a := q.AppendKey(nil)
		b := q.AppendKey(make([]byte, 0, 256))
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: key depends on scratch capacity", q)
		}
		prefixed := q.AppendKey([]byte("prefix"))
		if !bytes.Equal(prefixed[:6], []byte("prefix")) || !bytes.Equal(prefixed[6:], a) {
			t.Fatalf("%s: AppendKey disturbed existing scratch bytes", q)
		}
	}
}
