package query

import (
	"testing"
)

// parseRegion decodes byte pairs into a normalized region over [0, maxID].
// Consumes up to nRanges pairs from data, returning the region and the rest.
func parseRegion(data []byte, maxID int32, nRanges int) (Region, []byte) {
	var rs []IDRange
	for i := 0; i < nRanges && len(data) >= 2; i++ {
		lo := int32(data[0]) % (maxID + 1)
		hi := int32(data[1]) % (maxID + 1)
		if lo > hi {
			lo, hi = hi, lo
		}
		rs = append(rs, IDRange{lo, hi})
		data = data[2:]
	}
	return normalize(rs), data
}

// member is the brute-force reference: a region as an explicit ID set.
func member(r Region, maxID int32) map[int32]bool {
	m := make(map[int32]bool)
	for id := int32(0); id <= maxID; id++ {
		if r.Contains(id) {
			m[id] = true
		}
	}
	return m
}

// checkWellFormed asserts the Region invariants: sorted, disjoint,
// non-adjacent, non-empty intervals.
func checkWellFormed(t *testing.T, r Region, label string) {
	t.Helper()
	for i, iv := range r {
		if iv.Lo > iv.Hi {
			t.Fatalf("%s: empty interval %v in %v", label, iv, r)
		}
		if i > 0 && iv.Lo <= r[i-1].Hi+1 {
			t.Fatalf("%s: intervals %v and %v overlap or touch in %v", label, r[i-1], iv, r)
		}
	}
}

// FuzzRegionAlgebra drives random unions, intersections, and complements
// over small ID domains and checks every result against brute-force set
// membership — the satellite property test for the predicate-compilation
// algebra. Seed corpus lives in testdata/fuzz/FuzzRegionAlgebra.
func FuzzRegionAlgebra(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{7, 1, 3, 2, 5})
	f.Add([]byte{31, 0, 0, 1, 31, 5, 9, 9, 5, 30, 31})
	f.Add([]byte{3, 0, 3, 0, 3, 1, 2, 2, 1})
	f.Add([]byte{16, 200, 100, 50, 255, 0, 16, 8, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			data = []byte{1}
		}
		maxID := int32(data[0])%32 + 1
		data = data[1:]
		a, data := parseRegion(data, maxID, 4)
		b, _ := parseRegion(data, maxID, 4)

		union := a.Union(b)
		inter := a.Intersect(b)
		compA := a.Complement(maxID)
		checkWellFormed(t, union, "union")
		checkWellFormed(t, inter, "intersect")
		checkWellFormed(t, compA, "complement")

		ma, mb := member(a, maxID), member(b, maxID)
		for id := int32(0); id <= maxID+2; id++ {
			if got, want := union.Contains(id), ma[id] || mb[id]; got != want {
				t.Fatalf("union(%v, %v).Contains(%d) = %v, want %v", a, b, id, got, want)
			}
			if got, want := inter.Contains(id), ma[id] && mb[id]; got != want {
				t.Fatalf("intersect(%v, %v).Contains(%d) = %v, want %v", a, b, id, got, want)
			}
			// Complement is within the non-NULL domain [1, maxID] only.
			want := id >= 1 && id <= maxID && !ma[id]
			if got := compA.Contains(id); got != want {
				t.Fatalf("complement(%v, %d).Contains(%d) = %v, want %v", a, maxID, id, got, want)
			}
		}
		if int64(len(member(union, maxID))) != union.Count() {
			t.Fatalf("union Count %d != members %d", union.Count(), len(member(union, maxID)))
		}

		// Algebraic identities on the composed results.
		if got := inter.Intersect(union); len(got) != len(inter) {
			for id := int32(0); id <= maxID; id++ {
				if got.Contains(id) != inter.Contains(id) {
					t.Fatalf("(a∩b)∩(a∪b) ≠ a∩b at %d", id)
				}
			}
		}
		if got := a.Intersect(compA); !got.Empty() {
			t.Fatalf("a ∩ ¬a = %v, want empty (a=%v)", got, a)
		}
		full := a.Union(compA)
		for id := int32(1); id <= maxID; id++ {
			if !full.Contains(id) {
				t.Fatalf("a ∪ ¬a misses non-NULL id %d (a=%v, ¬a=%v)", id, a, compA)
			}
		}
	})
}
