package query

import (
	"encoding/binary"
	"errors"
	"fmt"

	"neurocard/internal/value"
)

// Decode limits: a hostile frame must not be able to reserve unbounded
// memory before validation rejects it. Real queries sit far below all three.
const (
	maxKeyTables  = 1 << 12 // tables per query
	maxKeyFilters = 1 << 14 // filters per query / alternatives per group / set elements
	maxKeyString  = 1 << 20 // bytes per table, column, or string literal
)

// ErrKeyTruncated reports a key that ended mid-field — the caller's buffer
// holds a prefix of an encoding, not an encoding.
var ErrKeyTruncated = errors.New("query: truncated key encoding")

// DecodeKey parses one query from the canonical AppendKey byte encoding and
// returns it together with the unconsumed remainder of b. DecodeKey is the
// exact inverse of AppendKey — q.AppendKey(nil) round-trips through
// DecodeKey to an equal query — which is what lets the serving daemon's
// binary wire protocol reuse the plan-cache key encoding as its query
// format: one encoder on the client, and decoded queries hit the plan cache
// with the very bytes they arrived in.
//
// Unlike AppendKey (whose inputs are trusted in-process queries), DecodeKey
// validates as it reads: op bytes and value kinds must be in range, and
// counts and lengths are bounded so a hostile frame cannot reserve
// unbounded memory. Structural validation beyond that (tables connected,
// columns exist, OR groups on one column) stays with the query compiler,
// exactly as on the JSON path.
func DecodeKey(b []byte) (Query, []byte, error) {
	var q Query
	nTables, b, err := readCount(b, maxKeyTables, "tables")
	if err != nil {
		return Query{}, nil, err
	}
	if nTables > 0 {
		q.Tables = make([]string, nTables)
		for i := range q.Tables {
			if q.Tables[i], b, err = readString(b); err != nil {
				return Query{}, nil, err
			}
		}
	}
	nFilters, b, err := readCount(b, maxKeyFilters, "filters")
	if err != nil {
		return Query{}, nil, err
	}
	if nFilters > 0 {
		q.Filters = make([]Filter, nFilters)
		for i := range q.Filters {
			if q.Filters[i], b, err = decodeFilterKey(b, true); err != nil {
				return Query{}, nil, err
			}
		}
	}
	return q, b, nil
}

// decodeFilterKey parses one filter clause; allowOr guards nesting depth the
// same way the JSON decoder does (alternatives cannot carry alternatives).
func decodeFilterKey(b []byte, allowOr bool) (Filter, []byte, error) {
	var f Filter
	var err error
	if f.Table, b, err = readString(b); err != nil {
		return Filter{}, nil, err
	}
	if f.Col, b, err = readString(b); err != nil {
		return Filter{}, nil, err
	}
	if len(b) == 0 {
		return Filter{}, nil, ErrKeyTruncated
	}
	op := Op(b[0])
	b = b[1:]
	if op > OpIsNotNull {
		return Filter{}, nil, fmt.Errorf("query: invalid op byte %d in key encoding", uint8(op))
	}
	f.Op = op
	if f.Val, b, err = readValue(b); err != nil {
		return Filter{}, nil, err
	}
	if f.Hi, b, err = readValue(b); err != nil {
		return Filter{}, nil, err
	}
	nSet, b, err := readCount(b, maxKeyFilters, "set elements")
	if err != nil {
		return Filter{}, nil, err
	}
	if nSet > 0 {
		f.Set = make([]value.Value, nSet)
		for i := range f.Set {
			if f.Set[i], b, err = readValue(b); err != nil {
				return Filter{}, nil, err
			}
		}
	}
	nOr, b, err := readCount(b, maxKeyFilters, "or alternatives")
	if err != nil {
		return Filter{}, nil, err
	}
	if nOr > 0 {
		if !allowOr {
			return Filter{}, nil, fmt.Errorf("query: nested OR group in key encoding")
		}
		f.Or = make([]Filter, nOr)
		for i := range f.Or {
			if f.Or[i], b, err = decodeFilterKey(b, false); err != nil {
				return Filter{}, nil, err
			}
		}
	}
	return f, b, nil
}

// readCount reads a uvarint bounded by limit.
func readCount(b []byte, limit uint64, what string) (int, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, ErrKeyTruncated
	}
	if v > limit {
		return 0, nil, fmt.Errorf("query: %d %s in key encoding exceeds limit %d", v, what, limit)
	}
	return int(v), b[n:], nil
}

func readString(b []byte) (string, []byte, error) {
	n, b, err := readCount(b, maxKeyString, "string bytes")
	if err != nil {
		return "", nil, err
	}
	if len(b) < n {
		return "", nil, ErrKeyTruncated
	}
	return string(b[:n]), b[n:], nil
}

func readValue(b []byte) (value.Value, []byte, error) {
	if len(b) == 0 {
		return value.Value{}, nil, ErrKeyTruncated
	}
	k := value.Kind(b[0])
	b = b[1:]
	switch k {
	case value.KindNull:
		return value.Value{}, b, nil
	case value.KindInt:
		if len(b) < 8 {
			return value.Value{}, nil, ErrKeyTruncated
		}
		return value.Int(int64(binary.LittleEndian.Uint64(b))), b[8:], nil
	case value.KindStr:
		s, b, err := readString(b)
		if err != nil {
			return value.Value{}, nil, err
		}
		return value.Str(s), b, nil
	default:
		return value.Value{}, nil, fmt.Errorf("query: invalid value kind %d in key encoding", uint8(k))
	}
}
