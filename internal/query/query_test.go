package query

import (
	"math/rand"
	"testing"

	"neurocard/internal/table"
	"neurocard/internal/value"
)

// col builds a single-column table over the given int values (NULL for nil).
func col(t *testing.T, vals ...any) *table.Column {
	t.Helper()
	b := table.MustBuilder("t", []table.ColSpec{{Name: "c", Kind: value.KindInt}})
	for _, v := range vals {
		if v == nil {
			b.MustAppend(value.Null)
		} else {
			b.MustAppend(value.Int(int64(v.(int))))
		}
	}
	return b.MustBuild().MustCol("c")
}

func TestFilterRegionOps(t *testing.T) {
	// Dictionary: 10→1, 20→2, 30→3, 40→4 (plus NULL).
	c := col(t, 10, 20, 30, 40, nil)
	cases := []struct {
		f    Filter
		want Region
	}{
		{Filter{Op: OpEq, Val: value.Int(20)}, Region{{2, 2}}},
		{Filter{Op: OpEq, Val: value.Int(25)}, nil},
		{Filter{Op: OpLt, Val: value.Int(30)}, Region{{1, 2}}},
		{Filter{Op: OpLt, Val: value.Int(10)}, nil},
		{Filter{Op: OpLe, Val: value.Int(30)}, Region{{1, 3}}},
		{Filter{Op: OpLe, Val: value.Int(5)}, nil},
		{Filter{Op: OpGt, Val: value.Int(20)}, Region{{3, 4}}},
		{Filter{Op: OpGt, Val: value.Int(40)}, nil},
		{Filter{Op: OpGe, Val: value.Int(25)}, Region{{3, 4}}},
		{Filter{Op: OpGe, Val: value.Int(45)}, nil},
		{Filter{Op: OpIn, Set: []value.Value{value.Int(10), value.Int(30), value.Int(99)}}, Region{{1, 1}, {3, 3}}},
		{Filter{Op: OpIn, Set: []value.Value{value.Int(10), value.Int(20)}}, Region{{1, 2}}}, // adjacent merge
	}
	for _, tc := range cases {
		got, err := FilterRegion(c, tc.f)
		if err != nil {
			t.Errorf("%s: %v", tc.f, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("%s: region %v, want %v", tc.f, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: region %v, want %v", tc.f, got, tc.want)
			}
		}
	}
}

func TestFilterRegionNewOps(t *testing.T) {
	// Dictionary: 10→1, 20→2, 30→3, 40→4 (plus NULL).
	c := col(t, 10, 20, 30, 40, nil)
	cases := []struct {
		f    Filter
		want Region
	}{
		{Filter{Op: OpNeq, Val: value.Int(20)}, Region{{1, 1}, {3, 4}}},
		{Filter{Op: OpNeq, Val: value.Int(25)}, Region{{1, 4}}}, // literal absent: every non-NULL matches
		{Filter{Op: OpNotIn, Set: []value.Value{value.Int(10), value.Int(40)}}, Region{{2, 3}}},
		{Filter{Op: OpNotIn, Set: []value.Value{value.Int(99)}}, Region{{1, 4}}},
		{Filter{Op: OpBetween, Val: value.Int(15), Hi: value.Int(35)}, Region{{2, 3}}},
		{Filter{Op: OpBetween, Val: value.Int(20), Hi: value.Int(20)}, Region{{2, 2}}},
		{Filter{Op: OpBetween, Val: value.Int(35), Hi: value.Int(15)}, nil}, // inverted bounds
		{Filter{Op: OpIsNull}, Region{{0, 0}}},
		{Filter{Op: OpIsNotNull}, Region{{1, 4}}},
		// OR group: union of alternatives on the same column.
		{Filter{Op: OpEq, Val: value.Int(10), Or: []Filter{{Op: OpEq, Val: value.Int(30)}}}, Region{{1, 1}, {3, 3}}},
		{Filter{Op: OpLe, Val: value.Int(10), Or: []Filter{{Op: OpIsNull}}}, Region{{0, 1}}},
		{Filter{Op: OpGe, Val: value.Int(40), Or: []Filter{{Op: OpLt, Val: value.Int(20)}, {Op: OpEq, Val: value.Int(30)}}}, Region{{1, 1}, {3, 4}}},
	}
	for _, tc := range cases {
		tc.f.Table, tc.f.Col = "t", "c"
		got, err := FilterRegion(c, tc.f)
		if err != nil {
			t.Errorf("%s: %v", tc.f, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("%s: region %v, want %v", tc.f, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: region %v, want %v", tc.f, got, tc.want)
			}
		}
	}
}

func TestFilterRegionAllNullColumnNewOps(t *testing.T) {
	c := col(t, nil, nil)
	r, err := FilterRegion(c, Filter{Op: OpIsNull})
	if err != nil || !r.Contains(table.NullID) {
		t.Errorf("IS NULL on all-NULL column: region %v, err %v", r, err)
	}
	for _, f := range []Filter{
		{Op: OpIsNotNull},
		{Op: OpNeq, Val: value.Int(1)},
		{Op: OpNotIn, Set: []value.Value{value.Int(1)}},
	} {
		r, err := FilterRegion(c, f)
		if err != nil || !r.Empty() {
			t.Errorf("%s on all-NULL column: region %v, err %v", f, r, err)
		}
	}
}

func TestFilterRegionErrors(t *testing.T) {
	c := col(t, 10, 20)
	if _, err := FilterRegion(c, Filter{Op: OpEq, Val: value.Null}); err == nil {
		t.Error("NULL literal accepted")
	}
	if _, err := FilterRegion(c, Filter{Op: OpEq, Val: value.Str("x")}); err == nil {
		t.Error("kind mismatch accepted")
	}
	if _, err := FilterRegion(c, Filter{Op: OpIn}); err == nil {
		t.Error("empty IN accepted")
	}
	if _, err := FilterRegion(c, Filter{Op: OpNotIn}); err == nil {
		t.Error("empty NOT IN accepted")
	}
	if _, err := FilterRegion(c, Filter{Op: OpBetween, Val: value.Int(1), Hi: value.Null}); err == nil {
		t.Error("NULL BETWEEN bound accepted")
	}
	if _, err := FilterRegion(c, Filter{Op: Op(200), Val: value.Int(1)}); err == nil {
		t.Error("unknown op accepted")
	}
	// Malformed OR groups.
	if _, err := FilterRegion(c, Filter{Table: "t", Col: "c", Op: OpEq, Val: value.Int(10),
		Or: []Filter{{Table: "other", Op: OpEq, Val: value.Int(20)}}}); err == nil {
		t.Error("cross-table OR alternative accepted")
	}
	if _, err := FilterRegion(c, Filter{Table: "t", Col: "c", Op: OpEq, Val: value.Int(10),
		Or: []Filter{{Col: "d", Op: OpEq, Val: value.Int(20)}}}); err == nil {
		t.Error("cross-column OR alternative accepted")
	}
	if _, err := FilterRegion(c, Filter{Table: "t", Col: "c", Op: OpEq, Val: value.Int(10),
		Or: []Filter{{Op: OpEq, Val: value.Int(20), Or: []Filter{{Op: OpIsNull}}}}}); err == nil {
		t.Error("nested OR group accepted")
	}
}

func TestUnionAndComplement(t *testing.T) {
	a := Region{{1, 3}, {8, 10}}
	b := Region{{4, 5}, {9, 12}}
	got := a.Union(b)
	want := Region{{1, 5}, {8, 12}} // 3 and 4-5 merge (adjacent)
	if len(got) != len(want) {
		t.Fatalf("Union = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Union = %v, want %v", got, want)
		}
	}
	if u := Region(nil).Union(a); len(u) != len(a) {
		t.Errorf("nil Union = %v", u)
	}

	c := Region{{2, 3}, {7, 7}}.Complement(9)
	wantC := Region{{1, 1}, {4, 6}, {8, 9}}
	if len(c) != len(wantC) {
		t.Fatalf("Complement = %v, want %v", c, wantC)
	}
	for i := range wantC {
		if c[i] != wantC[i] {
			t.Fatalf("Complement = %v, want %v", c, wantC)
		}
	}
	// Complement never reintroduces NULL, even when the region holds it.
	if r := NullRegion().Complement(4); !r.Contains(1) || !r.Contains(4) || r.Contains(0) {
		t.Errorf("Complement of NULL region = %v", r)
	}
	if r := (Region{{1, 4}}).Complement(4); !r.Empty() {
		t.Errorf("Complement of full region = %v", r)
	}
	if r := Region(nil).Complement(4); r.Count() != 4 || r.Contains(0) {
		t.Errorf("Complement of empty region = %v", r)
	}
}

func TestRegionNeverContainsNull(t *testing.T) {
	c := col(t, 10, 20, nil)
	for _, f := range []Filter{
		{Op: OpLe, Val: value.Int(99)},
		{Op: OpGe, Val: value.Int(-99)},
		{Op: OpNeq, Val: value.Int(99)},
		{Op: OpNotIn, Set: []value.Value{value.Int(99)}},
		{Op: OpBetween, Val: value.Int(-99), Hi: value.Int(99)},
		{Op: OpIsNotNull},
	} {
		r, err := FilterRegion(c, f)
		if err != nil {
			t.Fatal(err)
		}
		if r.Contains(table.NullID) {
			t.Errorf("%s: region contains NULL", f)
		}
	}
}

func TestAllNullColumn(t *testing.T) {
	c := col(t, nil, nil)
	r, err := FilterRegion(c, Filter{Op: OpGe, Val: value.Int(0)})
	if err != nil || !r.Empty() {
		t.Errorf("region = %v, err = %v", r, err)
	}
}

func TestRegionContainsAndCount(t *testing.T) {
	r := Region{{2, 4}, {7, 7}, {10, 12}}
	wantIn := []int32{2, 3, 4, 7, 10, 11, 12}
	wantOut := []int32{0, 1, 5, 6, 8, 9, 13}
	for _, id := range wantIn {
		if !r.Contains(id) {
			t.Errorf("Contains(%d) = false", id)
		}
	}
	for _, id := range wantOut {
		if r.Contains(id) {
			t.Errorf("Contains(%d) = true", id)
		}
	}
	if got := r.Count(); got != 7 {
		t.Errorf("Count = %d", got)
	}
}

func TestIntersect(t *testing.T) {
	a := Region{{1, 5}, {10, 20}}
	b := Region{{3, 12}, {18, 30}}
	got := a.Intersect(b)
	want := Region{{3, 5}, {10, 12}, {18, 20}}
	if len(got) != len(want) {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Intersect = %v, want %v", got, want)
		}
	}
	if !a.Intersect(nil).Empty() {
		t.Error("intersect with empty not empty")
	}
}

// evalDirect evaluates one leaf predicate against a (possibly NULL) value
// using SQL semantics — the reference semantics FilterRegion must compile to.
func evalDirect(f Filter, v int64, notNull bool) bool {
	switch f.Op {
	case OpIsNull:
		return !notNull
	case OpIsNotNull:
		return notNull
	}
	if !notNull {
		return false // every comparison is false on NULL
	}
	switch f.Op {
	case OpEq:
		return v == f.Val.I
	case OpNeq:
		return v != f.Val.I
	case OpLt:
		return v < f.Val.I
	case OpLe:
		return v <= f.Val.I
	case OpGt:
		return v > f.Val.I
	case OpGe:
		return v >= f.Val.I
	case OpBetween:
		return v >= f.Val.I && v <= f.Hi.I
	case OpIn, OpNotIn:
		in := false
		for _, s := range f.Set {
			if s.I == v {
				in = true
			}
		}
		return in == (f.Op == OpIn)
	}
	return false
}

// randomLeaf draws one random leaf predicate over small int literals.
func randomLeaf(rng *rand.Rand) Filter {
	ops := []Op{OpEq, OpNeq, OpLt, OpLe, OpGt, OpGe, OpIn, OpNotIn, OpBetween, OpIsNull, OpIsNotNull}
	f := Filter{Op: ops[rng.Intn(len(ops))]}
	switch f.Op {
	case OpIn, OpNotIn:
		for k := 0; k < 1+rng.Intn(3); k++ {
			f.Set = append(f.Set, value.Int(int64(rng.Intn(17)-1)))
		}
	case OpBetween:
		f.Val = value.Int(int64(rng.Intn(17) - 1))
		f.Hi = value.Int(int64(rng.Intn(17) - 1))
	case OpIsNull, OpIsNotNull:
	default:
		f.Val = value.Int(int64(rng.Intn(17) - 1))
	}
	return f
}

// Property: for random dictionaries, filters (every operator, including OR
// groups), and probe rows, region membership matches direct SQL predicate
// evaluation on decoded values.
func TestRegionMatchesDirectEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 600; iter++ {
		n := 1 + rng.Intn(20)
		vals := make([]any, n)
		for i := range vals {
			if rng.Intn(10) == 0 {
				vals[i] = nil
			} else {
				vals[i] = rng.Intn(15)
			}
		}
		c := col(t, vals...)
		f := randomLeaf(rng)
		for k := 0; k < rng.Intn(3); k++ {
			f.Or = append(f.Or, randomLeaf(rng))
		}
		r, err := FilterRegion(c, f)
		if err != nil {
			t.Fatal(err)
		}
		for row := 0; row < n; row++ {
			v, notNull := c.Int(row)
			want := evalDirect(f, v, notNull)
			for _, alt := range f.Or {
				want = want || evalDirect(alt, v, notNull)
			}
			if got := r.Contains(c.ID(row)); got != want {
				t.Fatalf("%s on row value %v: region says %v, direct says %v",
					f, c.Value(row), got, want)
			}
		}
	}
}

func TestTableRegionsConjunction(t *testing.T) {
	b := table.MustBuilder("T", []table.ColSpec{
		{Name: "a", Kind: value.KindInt},
		{Name: "b", Kind: value.KindInt},
	})
	for i := 0; i < 10; i++ {
		b.MustAppend(value.Int(int64(i)), value.Int(int64(i%3)))
	}
	tbl := b.MustBuild()
	q := Query{
		Tables: []string{"T"},
		Filters: []Filter{
			{Table: "T", Col: "a", Op: OpGe, Val: value.Int(2)},
			{Table: "T", Col: "a", Op: OpLt, Val: value.Int(7)},
			{Table: "T", Col: "b", Op: OpEq, Val: value.Int(1)},
		},
	}
	regions, err := TableRegions(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	var matched []int
	for row := 0; row < tbl.NumRows(); row++ {
		if Matches(tbl, regions, row) {
			matched = append(matched, row)
		}
	}
	// Rows with 2 <= a < 7 and a%3 == 1: a = 4 only.
	want := []int{4}
	if len(matched) != len(want) || matched[0] != want[0] {
		t.Errorf("matched rows = %v, want %v", matched, want)
	}
}

func TestTableRegionsUnknownColumn(t *testing.T) {
	b := table.MustBuilder("T", []table.ColSpec{{Name: "a", Kind: value.KindInt}})
	b.MustAppend(value.Int(1))
	tbl := b.MustBuild()
	q := Query{Tables: []string{"T"}, Filters: []Filter{{Table: "T", Col: "zzz", Op: OpEq, Val: value.Int(1)}}}
	if _, err := TableRegions(tbl, q); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestQueryHelpers(t *testing.T) {
	q := Query{
		Tables: []string{"A", "B"},
		Filters: []Filter{
			{Table: "A", Col: "x", Op: OpEq, Val: value.Int(1)},
			{Table: "B", Col: "y", Op: OpLt, Val: value.Int(2)},
			{Table: "A", Col: "z", Op: OpGe, Val: value.Int(3)},
		},
	}
	if !q.HasTable("A") || q.HasTable("C") {
		t.Error("HasTable wrong")
	}
	if got := q.FiltersOn("A"); len(got) != 2 {
		t.Errorf("FiltersOn(A) = %v", got)
	}
	if got := q.String(); got == "" {
		t.Error("empty String()")
	}
	f := Filter{Table: "A", Col: "c", Op: OpIn, Set: []value.Value{value.Int(1), value.Int(2)}}
	if got := f.String(); got != "A.c IN (1,2)" {
		t.Errorf("Filter.String() = %q", got)
	}
}

func TestFilterStringNewOps(t *testing.T) {
	cases := []struct {
		f    Filter
		want string
	}{
		{Filter{Table: "A", Col: "c", Op: OpNeq, Val: value.Int(3)}, "A.c != 3"},
		{Filter{Table: "A", Col: "c", Op: OpNotIn, Set: []value.Value{value.Int(1), value.Int(2)}}, "A.c NOT IN (1,2)"},
		{Filter{Table: "A", Col: "c", Op: OpBetween, Val: value.Int(1), Hi: value.Int(9)}, "A.c BETWEEN 1 AND 9"},
		{Filter{Table: "A", Col: "c", Op: OpIsNull}, "A.c IS NULL"},
		{Filter{Table: "A", Col: "c", Op: OpIsNotNull}, "A.c IS NOT NULL"},
		{Filter{Table: "A", Col: "s", Op: OpEq, Val: value.Str("x"),
			Or: []Filter{{Op: OpIsNull}, {Op: OpEq, Val: value.Str("y")}}},
			`(A.s = "x" OR A.s IS NULL OR A.s = "y")`},
	}
	for _, tc := range cases {
		if got := tc.f.String(); got != tc.want {
			t.Errorf("Filter.String() = %q, want %q", got, tc.want)
		}
	}
	for op, want := range map[Op]string{
		OpNeq: "!=", OpNotIn: "NOT IN", OpBetween: "BETWEEN",
		OpIsNull: "IS NULL", OpIsNotNull: "IS NOT NULL",
	} {
		if got := op.String(); got != want {
			t.Errorf("Op.String() = %q, want %q", got, want)
		}
	}
}
