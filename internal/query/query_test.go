package query

import (
	"math/rand"
	"testing"

	"neurocard/internal/table"
	"neurocard/internal/value"
)

// col builds a single-column table over the given int values (NULL for nil).
func col(t *testing.T, vals ...any) *table.Column {
	t.Helper()
	b := table.MustBuilder("t", []table.ColSpec{{Name: "c", Kind: value.KindInt}})
	for _, v := range vals {
		if v == nil {
			b.MustAppend(value.Null)
		} else {
			b.MustAppend(value.Int(int64(v.(int))))
		}
	}
	return b.MustBuild().MustCol("c")
}

func TestFilterRegionOps(t *testing.T) {
	// Dictionary: 10→1, 20→2, 30→3, 40→4 (plus NULL).
	c := col(t, 10, 20, 30, 40, nil)
	cases := []struct {
		f    Filter
		want Region
	}{
		{Filter{Op: OpEq, Val: value.Int(20)}, Region{{2, 2}}},
		{Filter{Op: OpEq, Val: value.Int(25)}, nil},
		{Filter{Op: OpLt, Val: value.Int(30)}, Region{{1, 2}}},
		{Filter{Op: OpLt, Val: value.Int(10)}, nil},
		{Filter{Op: OpLe, Val: value.Int(30)}, Region{{1, 3}}},
		{Filter{Op: OpLe, Val: value.Int(5)}, nil},
		{Filter{Op: OpGt, Val: value.Int(20)}, Region{{3, 4}}},
		{Filter{Op: OpGt, Val: value.Int(40)}, nil},
		{Filter{Op: OpGe, Val: value.Int(25)}, Region{{3, 4}}},
		{Filter{Op: OpGe, Val: value.Int(45)}, nil},
		{Filter{Op: OpIn, Set: []value.Value{value.Int(10), value.Int(30), value.Int(99)}}, Region{{1, 1}, {3, 3}}},
		{Filter{Op: OpIn, Set: []value.Value{value.Int(10), value.Int(20)}}, Region{{1, 2}}}, // adjacent merge
	}
	for _, tc := range cases {
		got, err := FilterRegion(c, tc.f)
		if err != nil {
			t.Errorf("%s: %v", tc.f, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("%s: region %v, want %v", tc.f, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: region %v, want %v", tc.f, got, tc.want)
			}
		}
	}
}

func TestFilterRegionErrors(t *testing.T) {
	c := col(t, 10, 20)
	if _, err := FilterRegion(c, Filter{Op: OpEq, Val: value.Null}); err == nil {
		t.Error("NULL literal accepted")
	}
	if _, err := FilterRegion(c, Filter{Op: OpEq, Val: value.Str("x")}); err == nil {
		t.Error("kind mismatch accepted")
	}
	if _, err := FilterRegion(c, Filter{Op: OpIn}); err == nil {
		t.Error("empty IN accepted")
	}
	if _, err := FilterRegion(c, Filter{Op: Op(200), Val: value.Int(1)}); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestRegionNeverContainsNull(t *testing.T) {
	c := col(t, 10, 20, nil)
	for _, f := range []Filter{
		{Op: OpLe, Val: value.Int(99)},
		{Op: OpGe, Val: value.Int(-99)},
	} {
		r, err := FilterRegion(c, f)
		if err != nil {
			t.Fatal(err)
		}
		if r.Contains(table.NullID) {
			t.Errorf("%s: region contains NULL", f)
		}
	}
}

func TestAllNullColumn(t *testing.T) {
	c := col(t, nil, nil)
	r, err := FilterRegion(c, Filter{Op: OpGe, Val: value.Int(0)})
	if err != nil || !r.Empty() {
		t.Errorf("region = %v, err = %v", r, err)
	}
}

func TestRegionContainsAndCount(t *testing.T) {
	r := Region{{2, 4}, {7, 7}, {10, 12}}
	wantIn := []int32{2, 3, 4, 7, 10, 11, 12}
	wantOut := []int32{0, 1, 5, 6, 8, 9, 13}
	for _, id := range wantIn {
		if !r.Contains(id) {
			t.Errorf("Contains(%d) = false", id)
		}
	}
	for _, id := range wantOut {
		if r.Contains(id) {
			t.Errorf("Contains(%d) = true", id)
		}
	}
	if got := r.Count(); got != 7 {
		t.Errorf("Count = %d", got)
	}
}

func TestIntersect(t *testing.T) {
	a := Region{{1, 5}, {10, 20}}
	b := Region{{3, 12}, {18, 30}}
	got := a.Intersect(b)
	want := Region{{3, 5}, {10, 12}, {18, 20}}
	if len(got) != len(want) {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Intersect = %v, want %v", got, want)
		}
	}
	if !a.Intersect(nil).Empty() {
		t.Error("intersect with empty not empty")
	}
}

// Property: for random dictionaries, filters, and probe rows, region
// membership matches direct predicate evaluation on decoded values.
func TestRegionMatchesDirectEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := []Op{OpEq, OpLt, OpLe, OpGt, OpGe}
	for iter := 0; iter < 300; iter++ {
		n := 1 + rng.Intn(20)
		vals := make([]any, n)
		for i := range vals {
			if rng.Intn(10) == 0 {
				vals[i] = nil
			} else {
				vals[i] = rng.Intn(15)
			}
		}
		c := col(t, vals...)
		op := ops[rng.Intn(len(ops))]
		lit := int64(rng.Intn(17) - 1)
		r, err := FilterRegion(c, Filter{Op: op, Val: value.Int(lit)})
		if err != nil {
			t.Fatal(err)
		}
		for row := 0; row < n; row++ {
			v, notNull := c.Int(row)
			var want bool
			if notNull {
				switch op {
				case OpEq:
					want = v == lit
				case OpLt:
					want = v < lit
				case OpLe:
					want = v <= lit
				case OpGt:
					want = v > lit
				case OpGe:
					want = v >= lit
				}
			}
			if got := r.Contains(c.ID(row)); got != want {
				t.Fatalf("op %s lit %d row value %v: region says %v, direct says %v",
					op, lit, c.Value(row), got, want)
			}
		}
	}
}

func TestTableRegionsConjunction(t *testing.T) {
	b := table.MustBuilder("T", []table.ColSpec{
		{Name: "a", Kind: value.KindInt},
		{Name: "b", Kind: value.KindInt},
	})
	for i := 0; i < 10; i++ {
		b.MustAppend(value.Int(int64(i)), value.Int(int64(i%3)))
	}
	tbl := b.MustBuild()
	q := Query{
		Tables: []string{"T"},
		Filters: []Filter{
			{Table: "T", Col: "a", Op: OpGe, Val: value.Int(2)},
			{Table: "T", Col: "a", Op: OpLt, Val: value.Int(7)},
			{Table: "T", Col: "b", Op: OpEq, Val: value.Int(1)},
		},
	}
	regions, err := TableRegions(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	var matched []int
	for row := 0; row < tbl.NumRows(); row++ {
		if Matches(tbl, regions, row) {
			matched = append(matched, row)
		}
	}
	// Rows with 2 <= a < 7 and a%3 == 1: a = 4 only.
	want := []int{4}
	if len(matched) != len(want) || matched[0] != want[0] {
		t.Errorf("matched rows = %v, want %v", matched, want)
	}
}

func TestTableRegionsUnknownColumn(t *testing.T) {
	b := table.MustBuilder("T", []table.ColSpec{{Name: "a", Kind: value.KindInt}})
	b.MustAppend(value.Int(1))
	tbl := b.MustBuild()
	q := Query{Tables: []string{"T"}, Filters: []Filter{{Table: "T", Col: "zzz", Op: OpEq, Val: value.Int(1)}}}
	if _, err := TableRegions(tbl, q); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestQueryHelpers(t *testing.T) {
	q := Query{
		Tables: []string{"A", "B"},
		Filters: []Filter{
			{Table: "A", Col: "x", Op: OpEq, Val: value.Int(1)},
			{Table: "B", Col: "y", Op: OpLt, Val: value.Int(2)},
			{Table: "A", Col: "z", Op: OpGe, Val: value.Int(3)},
		},
	}
	if !q.HasTable("A") || q.HasTable("C") {
		t.Error("HasTable wrong")
	}
	if got := q.FiltersOn("A"); len(got) != 2 {
		t.Errorf("FiltersOn(A) = %v", got)
	}
	if got := q.String(); got == "" {
		t.Error("empty String()")
	}
	f := Filter{Table: "A", Col: "c", Op: OpIn, Set: []value.Value{value.Int(1), value.Int(2)}}
	if got := f.String(); got != "A.c IN (1,2)" {
		t.Errorf("Filter.String() = %q", got)
	}
}
