package query

import (
	"encoding/binary"

	"neurocard/internal/value"
)

// AppendKey appends a canonical byte encoding of the query to dst and
// returns the extended slice — the cache key the estimator's compiled-plan
// cache is built on. The encoding is injective (every field is
// length-prefixed or tagged, so distinct queries never collide) and
// deterministic (a pure function of the query's contents). It is not a wire
// format: semantically equal queries written differently — reordered tables,
// reordered filters — encode differently and simply occupy separate cache
// slots.
//
// Callers on the hot path pass a reused scratch slice; once grown to the
// workload's largest query, AppendKey allocates nothing.
func (q Query) AppendKey(dst []byte) []byte {
	dst = appendUvarint(dst, uint64(len(q.Tables)))
	for _, t := range q.Tables {
		dst = appendString(dst, t)
	}
	dst = appendUvarint(dst, uint64(len(q.Filters)))
	for _, f := range q.Filters {
		dst = f.appendKey(dst)
	}
	return dst
}

// appendKey encodes one filter clause, including its OR alternatives.
func (f Filter) appendKey(dst []byte) []byte {
	dst = appendString(dst, f.Table)
	dst = appendString(dst, f.Col)
	dst = append(dst, byte(f.Op))
	dst = appendValue(dst, f.Val)
	dst = appendValue(dst, f.Hi)
	dst = appendUvarint(dst, uint64(len(f.Set)))
	for _, v := range f.Set {
		dst = appendValue(dst, v)
	}
	dst = appendUvarint(dst, uint64(len(f.Or)))
	for _, alt := range f.Or {
		dst = alt.appendKey(dst)
	}
	return dst
}

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendValue(dst []byte, v value.Value) []byte {
	dst = append(dst, byte(v.K))
	switch v.K {
	case value.KindInt:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.I))
	case value.KindStr:
		dst = appendString(dst, v.S)
	}
	return dst
}
