package query

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"neurocard/internal/value"
)

// TestDecodeKeyRoundTrip: DecodeKey is the exact inverse of AppendKey over
// the same query corpus the injectivity test uses — decode(encode(q))
// re-encodes to the identical bytes and stringifies to the identical query.
func TestDecodeKeyRoundTrip(t *testing.T) {
	for i, q := range keyQueries() {
		key := q.AppendKey(nil)
		dec, rest, err := DecodeKey(key)
		if err != nil {
			t.Fatalf("query %d (%s): %v", i, q, err)
		}
		if len(rest) != 0 {
			t.Fatalf("query %d: %d bytes left over", i, len(rest))
		}
		if got := dec.AppendKey(nil); !bytes.Equal(got, key) {
			t.Fatalf("query %d: re-encode differs\n  want %x\n  got  %x", i, key, got)
		}
		if dec.String() != q.String() {
			t.Fatalf("query %d: decoded %s, want %s", i, dec, q)
		}
	}
}

// TestDecodeKeyConsecutive: multiple encodings concatenated in one buffer
// decode back in sequence — the binary wire protocol's framing.
func TestDecodeKeyConsecutive(t *testing.T) {
	qs := keyQueries()
	var buf []byte
	for _, q := range qs {
		buf = q.AppendKey(buf)
	}
	rest := buf
	for i, q := range qs {
		var dec Query
		var err error
		dec, rest, err = DecodeKey(rest)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if dec.String() != q.String() {
			t.Fatalf("query %d: decoded %s, want %s", i, dec, q)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
}

// TestDecodeKeyTruncation: every strict prefix of a valid encoding fails
// cleanly (no panic, no bogus success).
func TestDecodeKeyTruncation(t *testing.T) {
	q := Query{
		Tables: []string{"A", "B"},
		Filters: []Filter{
			{Table: "A", Col: "year", Op: OpBetween, Val: value.Int(1990), Hi: value.Int(2000)},
			{Table: "B", Col: "y", Op: OpIn, Set: []value.Value{value.Int(1), value.Str("two")},
				Or: []Filter{{Table: "B", Col: "y", Op: OpIsNull}}},
		},
	}
	key := q.AppendKey(nil)
	for n := 0; n < len(key); n++ {
		dec, rest, err := DecodeKey(key[:n])
		if err == nil && len(rest) == 0 {
			// A prefix may parse as a complete smaller query only if it
			// re-encodes to exactly those bytes — anything else is corruption
			// slipping through.
			if !bytes.Equal(dec.AppendKey(nil), key[:n]) {
				t.Fatalf("prefix %d/%d decoded to non-canonical %s", n, len(key), dec)
			}
		}
	}
	if _, _, err := DecodeKey(nil); !errors.Is(err, ErrKeyTruncated) {
		t.Fatalf("empty buffer: %v, want ErrKeyTruncated", err)
	}
}

// TestDecodeKeyRejectsCorruption: out-of-range op bytes, value kinds, and
// oversized counts are rejected with descriptive errors.
func TestDecodeKeyRejectsCorruption(t *testing.T) {
	// Direct construction: tables=0, filters=1, then a filter with op 0xEE.
	bad := []byte{0 /* nTables */, 1 /* nFilters */, 1, 't', 1, 'c', 0xEE}
	if _, _, err := DecodeKey(bad); err == nil || !strings.Contains(err.Error(), "invalid op byte") {
		t.Fatalf("corrupt op byte: %v", err)
	}

	// Invalid value kind byte.
	bad = []byte{0, 1, 1, 't', 1, 'c', byte(OpEq), 0xEE}
	if _, _, err := DecodeKey(bad); err == nil || !strings.Contains(err.Error(), "invalid value kind") {
		t.Fatalf("corrupt value kind: %v", err)
	}

	// A count beyond the decode limit must be rejected before allocation.
	bad = []byte{0xFF, 0xFF, 0xFF, 0x7F} // uvarint ≫ maxKeyTables
	if _, _, err := DecodeKey(bad); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized table count: %v", err)
	}

	// Nested OR groups cannot appear in well-formed keys; a handcrafted one
	// must be rejected.
	inner := Filter{Table: "t", Col: "c", Op: OpEq, Val: value.Int(1),
		Or: []Filter{{Table: "t", Col: "c", Op: OpIsNull}}}
	outer := Query{Tables: []string{"t"},
		Filters: []Filter{{Table: "t", Col: "c", Op: OpEq, Val: value.Int(2), Or: []Filter{inner}}}}
	nested := outer.AppendKey(nil)
	if _, _, err := DecodeKey(nested); err == nil || !strings.Contains(err.Error(), "nested OR") {
		t.Fatalf("nested OR: %v", err)
	}
}
