// Package query defines the query model shared by the estimator, the
// baselines, and the exact executor: a join over a connected subset of the
// schema's tables plus a conjunction of single-column predicate clauses
// (§3.3). A clause is either a single filter or an OR group of filters on
// one column.
//
// Filters are compiled into Regions — sorted disjoint intervals over a
// column's dictionary-ID space. Because dictionaries are sorted, every
// supported predicate maps to such a region: comparisons (=, ≠, <, ≤, >, ≥),
// memberships (IN, NOT IN), BETWEEN, and null tests (IS NULL, IS NOT NULL).
// NULL (dictionary ID 0) appears in a region only through IS NULL — every
// other predicate is false on NULL (SQL comparison semantics), so negations
// (≠, NOT IN) complement within the non-NULL ID range. Disjunctions are
// region unions, conjunctions are region intersections. Regions are the
// single predicate representation consumed by every component: the executor
// tests membership, histograms integrate over them, and progressive sampling
// translates them into per-subcolumn token constraints.
package query

import (
	"fmt"
	"sort"
	"strings"

	"neurocard/internal/table"
	"neurocard/internal/value"
)

// Op is a comparison operator.
type Op uint8

// Supported comparison operators.
const (
	OpEq Op = iota
	OpLt
	OpLe
	OpGt
	OpGe
	OpIn
	OpNeq
	OpNotIn
	OpBetween
	OpIsNull
	OpIsNotNull
)

// String returns the SQL spelling of the operator.
func (op Op) String() string {
	switch op {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpIn:
		return "IN"
	case OpNeq:
		return "!="
	case OpNotIn:
		return "NOT IN"
	case OpBetween:
		return "BETWEEN"
	case OpIsNull:
		return "IS NULL"
	case OpIsNotNull:
		return "IS NOT NULL"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Filter is a single-column predicate clause. For OpIn/OpNotIn, Set holds
// the membership list; for OpBetween, Val and Hi hold the inclusive bounds;
// OpIsNull/OpIsNotNull take no literal; otherwise Val holds the literal.
//
// A non-empty Or makes the clause a disjunction: it matches when the
// filter's own predicate or any alternative in Or matches. Alternatives
// must reference the same column (Table/Col empty means inherited) and may
// not nest further Or groups.
type Filter struct {
	Table string
	Col   string
	Op    Op
	Val   value.Value
	Hi    value.Value // OpBetween upper bound (inclusive)
	Set   []value.Value
	Or    []Filter
}

// String renders the filter in SQL-ish form.
func (f Filter) String() string {
	if len(f.Or) > 0 {
		parts := make([]string, 0, len(f.Or)+1)
		parts = append(parts, f.leafString())
		for _, alt := range f.Or {
			leaf := alt
			if leaf.Table == "" {
				leaf.Table = f.Table
			}
			if leaf.Col == "" {
				leaf.Col = f.Col
			}
			parts = append(parts, leaf.leafString())
		}
		return "(" + strings.Join(parts, " OR ") + ")"
	}
	return f.leafString()
}

// leafString renders the filter's own predicate, ignoring Or.
func (f Filter) leafString() string {
	switch f.Op {
	case OpIn, OpNotIn:
		parts := make([]string, len(f.Set))
		for i, v := range f.Set {
			parts[i] = v.String()
		}
		return fmt.Sprintf("%s.%s %s (%s)", f.Table, f.Col, f.Op, strings.Join(parts, ","))
	case OpBetween:
		return fmt.Sprintf("%s.%s BETWEEN %s AND %s", f.Table, f.Col, f.Val, f.Hi)
	case OpIsNull, OpIsNotNull:
		return fmt.Sprintf("%s.%s %s", f.Table, f.Col, f.Op)
	default:
		return fmt.Sprintf("%s.%s %s %s", f.Table, f.Col, f.Op, f.Val)
	}
}

// Query is an inner equi-join over Tables with conjunctive Filters (each of
// which may itself be an OR group on one column).
type Query struct {
	Tables  []string
	Filters []Filter
}

// String renders the query for logs.
func (q Query) String() string {
	parts := make([]string, len(q.Filters))
	for i, f := range q.Filters {
		parts[i] = f.String()
	}
	return fmt.Sprintf("JOIN(%s) WHERE %s", strings.Join(q.Tables, ","), strings.Join(parts, " AND "))
}

// HasTable reports whether the query joins the named table.
func (q Query) HasTable(name string) bool {
	for _, t := range q.Tables {
		if t == name {
			return true
		}
	}
	return false
}

// FiltersOn returns the filters referencing the given table.
func (q Query) FiltersOn(tbl string) []Filter {
	var out []Filter
	for _, f := range q.Filters {
		if f.Table == tbl {
			out = append(out, f)
		}
	}
	return out
}

// IDRange is a closed interval [Lo, Hi] of dictionary IDs.
type IDRange struct {
	Lo, Hi int32
}

// Region is a sorted list of disjoint, non-adjacent ID ranges. NULL (ID 0)
// appears only when the predicate explicitly selects it (IS NULL, possibly
// inside an OR group); every comparison predicate excludes it.
type Region []IDRange

// Empty reports whether the region contains no IDs.
func (r Region) Empty() bool { return len(r) == 0 }

// Contains reports whether id falls inside the region.
func (r Region) Contains(id int32) bool {
	i := sort.Search(len(r), func(i int) bool { return r[i].Hi >= id })
	return i < len(r) && r[i].Lo <= id
}

// Count returns the number of IDs covered.
func (r Region) Count() int64 {
	var n int64
	for _, iv := range r {
		n += int64(iv.Hi-iv.Lo) + 1
	}
	return n
}

// Intersect returns the intersection of two regions.
func (r Region) Intersect(o Region) Region {
	var out Region
	i, j := 0, 0
	for i < len(r) && j < len(o) {
		lo := max32(r[i].Lo, o[j].Lo)
		hi := min32(r[i].Hi, o[j].Hi)
		if lo <= hi {
			out = append(out, IDRange{lo, hi})
		}
		if r[i].Hi < o[j].Hi {
			i++
		} else {
			j++
		}
	}
	return out
}

// Union returns the union of two regions (disjunction of predicates).
func (r Region) Union(o Region) Region {
	if len(r) == 0 {
		return append(Region(nil), o...)
	}
	if len(o) == 0 {
		return append(Region(nil), r...)
	}
	all := make([]IDRange, 0, len(r)+len(o))
	all = append(all, r...)
	all = append(all, o...)
	return normalize(all)
}

// Complement returns the complement of the region within the non-NULL ID
// domain [1, maxID]. NULL (ID 0) is never part of the result: SQL negations
// (≠, NOT IN) are still false on NULL.
func (r Region) Complement(maxID int32) Region {
	var out Region
	next := int32(1)
	for _, iv := range r {
		if iv.Hi < 1 {
			continue // an IS NULL component contributes nothing to complement
		}
		lo := max32(iv.Lo, 1)
		if lo > next {
			hi := min32(lo-1, maxID)
			if next <= hi {
				out = append(out, IDRange{next, hi})
			}
		}
		if iv.Hi+1 > next {
			next = iv.Hi + 1
		}
		if next > maxID {
			return out
		}
	}
	if next <= maxID {
		out = append(out, IDRange{next, maxID})
	}
	return out
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// normalize sorts ranges, drops empties, and merges overlaps/adjacencies.
func normalize(rs []IDRange) Region {
	var valid []IDRange
	for _, r := range rs {
		if r.Lo <= r.Hi {
			valid = append(valid, r)
		}
	}
	if len(valid) == 0 {
		return nil
	}
	sort.Slice(valid, func(i, j int) bool { return valid[i].Lo < valid[j].Lo })
	out := Region{valid[0]}
	for _, r := range valid[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi+1 {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}

// FullRegion returns the region covering all non-NULL IDs of a column.
func FullRegion(c *table.Column) Region {
	n := int32(c.DictSize())
	if n <= 1 {
		return nil
	}
	return Region{{1, n - 1}}
}

// NullRegion is the region selecting exactly NULL (dictionary ID 0).
func NullRegion() Region { return Region{{table.NullID, table.NullID}} }

// FilterRegion compiles a filter clause into the region of matching
// dictionary IDs for the given column: the filter's own predicate unioned
// with every Or alternative. An empty region means no value can match.
func FilterRegion(c *table.Column, f Filter) (Region, error) {
	r, err := leafRegion(c, f)
	if err != nil {
		return nil, err
	}
	for _, alt := range f.Or {
		if alt.Table != "" && alt.Table != f.Table {
			return nil, fmt.Errorf("query: OR alternative %s references table %q, group is on %s.%s", alt, alt.Table, f.Table, f.Col)
		}
		if alt.Col != "" && alt.Col != f.Col {
			return nil, fmt.Errorf("query: OR alternative %s references column %q, group is on %s.%s", alt, alt.Col, f.Table, f.Col)
		}
		if len(alt.Or) > 0 {
			return nil, fmt.Errorf("query: nested OR group in filter %s", f)
		}
		ar, err := leafRegion(c, alt)
		if err != nil {
			return nil, err
		}
		r = r.Union(ar)
	}
	return r, nil
}

// leafRegion compiles a single predicate (no OR group) into its ID region.
func leafRegion(c *table.Column, f Filter) (Region, error) {
	maxID := int32(c.DictSize()) - 1
	if f.Op == OpIsNull {
		return NullRegion(), nil
	}
	if maxID < 1 {
		return nil, nil // column holds only NULLs; no non-NULL predicate matches
	}
	checkKind := func(v value.Value) error {
		if v.IsNull() {
			return fmt.Errorf("query: NULL literal in filter %s", f)
		}
		if v.K != c.Kind() {
			return fmt.Errorf("query: filter %s: %s literal on %s column", f, v.K, c.Kind())
		}
		return nil
	}
	switch f.Op {
	case OpEq:
		if err := checkKind(f.Val); err != nil {
			return nil, err
		}
		if id, ok := c.IDForValue(f.Val); ok {
			return Region{{id, id}}, nil
		}
		return nil, nil
	case OpNeq:
		if err := checkKind(f.Val); err != nil {
			return nil, err
		}
		if id, ok := c.IDForValue(f.Val); ok {
			return Region{{id, id}}.Complement(maxID), nil
		}
		return Region{{1, maxID}}, nil
	case OpLt:
		if err := checkKind(f.Val); err != nil {
			return nil, err
		}
		hi := c.LowerBoundID(f.Val) - 1
		return normalize([]IDRange{{1, hi}}), nil
	case OpLe:
		if err := checkKind(f.Val); err != nil {
			return nil, err
		}
		hi := c.UpperBoundID(f.Val) - 1
		return normalize([]IDRange{{1, hi}}), nil
	case OpGt:
		if err := checkKind(f.Val); err != nil {
			return nil, err
		}
		lo := c.UpperBoundID(f.Val)
		return normalize([]IDRange{{lo, maxID}}), nil
	case OpGe:
		if err := checkKind(f.Val); err != nil {
			return nil, err
		}
		lo := c.LowerBoundID(f.Val)
		return normalize([]IDRange{{lo, maxID}}), nil
	case OpBetween:
		if err := checkKind(f.Val); err != nil {
			return nil, err
		}
		if err := checkKind(f.Hi); err != nil {
			return nil, err
		}
		if f.Val.Compare(f.Hi) > 0 {
			return nil, nil // inverted bounds match nothing
		}
		lo := c.LowerBoundID(f.Val)
		hi := c.UpperBoundID(f.Hi) - 1
		return normalize([]IDRange{{lo, min32(hi, maxID)}}), nil
	case OpIn, OpNotIn:
		if len(f.Set) == 0 {
			return nil, fmt.Errorf("query: empty %s list in filter %s", f.Op, f)
		}
		var rs []IDRange
		for _, v := range f.Set {
			if err := checkKind(v); err != nil {
				return nil, err
			}
			if id, ok := c.IDForValue(v); ok {
				rs = append(rs, IDRange{id, id})
			}
		}
		r := normalize(rs)
		if f.Op == OpNotIn {
			return r.Complement(maxID), nil
		}
		return r, nil
	case OpIsNotNull:
		return Region{{1, maxID}}, nil
	default:
		return nil, fmt.Errorf("query: unsupported operator in filter %s", f)
	}
}

// TableRegions compiles all of a query's filters on one table into a map
// column name → region (conjunction = intersection). Columns without filters
// are absent from the map.
func TableRegions(t *table.Table, q Query) (map[string]Region, error) {
	out := make(map[string]Region)
	for _, f := range q.FiltersOn(t.Name()) {
		c := t.Col(f.Col)
		if c == nil {
			return nil, fmt.Errorf("query: table %q has no column %q", t.Name(), f.Col)
		}
		r, err := FilterRegion(c, f)
		if err != nil {
			return nil, err
		}
		if prev, ok := out[f.Col]; ok {
			r = prev.Intersect(r)
		}
		out[f.Col] = r
	}
	return out, nil
}

// Matches evaluates the compiled regions against one row of the table.
func Matches(t *table.Table, regions map[string]Region, row int) bool {
	for col, r := range regions {
		if !r.Contains(t.MustCol(col).ID(row)) {
			return false
		}
	}
	return true
}
