// Package value defines the typed scalar values stored in table columns and
// referenced by query filters. A Value is either NULL, a 64-bit integer, or a
// string. NULL never compares equal to anything (SQL semantics): equality and
// range predicates on NULL are false, and NULL join keys match no partner.
package value

import (
	"fmt"
	"strconv"
)

// Kind discriminates the contents of a Value.
type Kind uint8

const (
	// KindNull marks the SQL NULL value.
	KindNull Kind = iota
	// KindInt marks a 64-bit signed integer value.
	KindInt
	// KindStr marks a string value.
	KindStr
)

// String returns the kind name for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindStr:
		return "str"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a scalar cell value. The zero Value is NULL.
type Value struct {
	K Kind
	I int64
	S string
}

// Null is the SQL NULL value.
var Null = Value{}

// Int returns an integer Value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Str returns a string Value.
func Str(s string) Value { return Value{K: KindStr, S: s} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Compare orders two non-NULL values of the same kind: -1 if v < o, 0 if
// equal, +1 if v > o. Integers order numerically, strings lexicographically.
// Comparing NULLs or mismatched kinds panics: filters and dictionaries must
// be type-checked before comparison, so reaching here is a programming error.
func (v Value) Compare(o Value) int {
	if v.K != o.K || v.K == KindNull {
		panic(fmt.Sprintf("value: cannot compare %s with %s", v.K, o.K))
	}
	switch v.K {
	case KindInt:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		}
		return 0
	default: // KindStr
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		}
		return 0
	}
}

// Equal reports whether two values are identical. NULL equals NULL here
// (identity, not SQL three-valued logic); predicate evaluation handles NULL
// semantics separately.
func (v Value) Equal(o Value) bool {
	if v.K != o.K {
		return false
	}
	switch v.K {
	case KindNull:
		return true
	case KindInt:
		return v.I == o.I
	default:
		return v.S == o.S
	}
}

// String renders the value for logs and test failures.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	default:
		return strconv.Quote(v.S)
	}
}
