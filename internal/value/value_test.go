package value

import (
	"testing"
	"testing/quick"
)

func TestConstructorsAndIsNull(t *testing.T) {
	if !Null.IsNull() {
		t.Error("Null.IsNull() = false")
	}
	if Int(7).IsNull() || Str("x").IsNull() {
		t.Error("non-null values report IsNull")
	}
	if got := Int(-3); got.K != KindInt || got.I != -3 {
		t.Errorf("Int(-3) = %+v", got)
	}
	if got := Str("ab"); got.K != KindStr || got.S != "ab" {
		t.Errorf("Str(ab) = %+v", got)
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value is not NULL")
	}
}

func TestCompareInts(t *testing.T) {
	cases := []struct {
		a, b int64
		want int
	}{
		{1, 2, -1}, {2, 1, 1}, {5, 5, 0}, {-10, 3, -1}, {0, 0, 0},
	}
	for _, c := range cases {
		if got := Int(c.a).Compare(Int(c.b)); got != c.want {
			t.Errorf("Compare(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareStrings(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"a", "b", -1}, {"b", "a", 1}, {"same", "same", 0}, {"", "x", -1},
	}
	for _, c := range cases {
		if got := Str(c.a).Compare(Str(c.b)); got != c.want {
			t.Errorf("Compare(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareMismatchPanics(t *testing.T) {
	for _, pair := range [][2]Value{
		{Int(1), Str("1")},
		{Null, Int(1)},
		{Null, Null},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Compare(%v, %v) did not panic", pair[0], pair[1])
				}
			}()
			pair[0].Compare(pair[1])
		}()
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Null, Null, true},
		{Null, Int(0), false},
		{Int(1), Str("1"), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	if got := Null.String(); got != "NULL" {
		t.Errorf("Null.String() = %q", got)
	}
	if got := Int(-42).String(); got != "-42" {
		t.Errorf("Int(-42).String() = %q", got)
	}
	if got := Str("a b").String(); got != `"a b"` {
		t.Errorf("Str.String() = %q", got)
	}
}

// Property: Compare is antisymmetric and consistent with Equal for ints.
func TestCompareAntisymmetricProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Int(a), Int(b)
		c1, c2 := x.Compare(y), y.Compare(x)
		if c1 != -c2 {
			return false
		}
		return (c1 == 0) == x.Equal(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: string comparison is transitive on random triples.
func TestCompareTransitiveProperty(t *testing.T) {
	f := func(a, b, c string) bool {
		x, y, z := Str(a), Str(b), Str(c)
		if x.Compare(y) <= 0 && y.Compare(z) <= 0 {
			return x.Compare(z) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
