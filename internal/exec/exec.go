// Package exec computes exact query cardinalities — the ground truth every
// estimator is scored against. The fast path runs the Exact-Weight dynamic
// program over the query's join subtree with filters folded in (linear in
// the data size); a deliberately independent brute-force materializer
// provides the reference implementation used by property tests.
package exec

import (
	"fmt"

	"neurocard/internal/query"
	"neurocard/internal/sampler"
	"neurocard/internal/schema"
)

// Cardinality returns the exact row count of the inner equi-join query q
// against the schema, i.e. the value the paper calls card_actual.
func Cardinality(sch *schema.Schema, q query.Query) (float64, error) {
	filter, sub, err := compile(sch, q)
	if err != nil {
		return 0, err
	}
	in, err := sampler.NewInner(sub, filter)
	if err != nil {
		return 0, err
	}
	return in.Count(), nil
}

// InnerJoinSize returns the row count of the unfiltered inner join over the
// given table set (the denominator of the paper's Figure 6 selectivities).
func InnerJoinSize(sch *schema.Schema, tables []string) (float64, error) {
	sub, err := sch.SubSchema(tables)
	if err != nil {
		return 0, err
	}
	in, err := sampler.NewInner(sub, nil)
	if err != nil {
		return 0, err
	}
	return in.Count(), nil
}

// compile validates q and builds the per-row filter over its sub-schema.
func compile(sch *schema.Schema, q query.Query) (sampler.FilterFunc, *schema.Schema, error) {
	sub, err := sch.SubSchema(q.Tables)
	if err != nil {
		return nil, nil, err
	}
	regions := make(map[string]map[string]query.Region, len(q.Tables))
	for _, f := range q.Filters {
		if !q.HasTable(f.Table) {
			return nil, nil, fmt.Errorf("exec: filter %s references table outside the join", f)
		}
	}
	for _, name := range q.Tables {
		regs, err := query.TableRegions(sch.Table(name), q)
		if err != nil {
			return nil, nil, err
		}
		if len(regs) > 0 {
			regions[name] = regs
		}
	}
	filter := func(tbl string, row int) bool {
		regs, ok := regions[tbl]
		if !ok {
			return true
		}
		return query.Matches(sch.Table(tbl), regs, row)
	}
	return filter, sub, nil
}

// Selectivity returns card(q) / |inner join of q's tables|, the quantity
// plotted in Figure 6. The second return is the unfiltered inner-join size.
func Selectivity(sch *schema.Schema, q query.Query) (sel, innerSize float64, err error) {
	card, err := Cardinality(sch, q)
	if err != nil {
		return 0, 0, err
	}
	innerSize, err = InnerJoinSize(sch, q.Tables)
	if err != nil {
		return 0, 0, err
	}
	if innerSize == 0 {
		return 0, 0, nil
	}
	return card / innerSize, innerSize, nil
}

// BruteForceFullJoin materializes the full outer join of the schema as row
// vectors (one base-table row index per table in sch.Tables() order,
// sampler.NullRow where NULL). It is an intentionally independent
// implementation — a sequence of binary SQL full outer joins in BFS order —
// used to validate the DP and the sampler. Exponential; small inputs only.
func BruteForceFullJoin(sch *schema.Schema) ([][]int32, error) {
	order := sch.Tables()
	tIdx := make(map[string]int, len(order))
	for i, n := range order {
		tIdx[n] = i
	}

	// Seed with the root table's rows.
	root := sch.Table(order[0])
	rows := make([][]int32, 0, root.NumRows())
	for r := 0; r < root.NumRows(); r++ {
		row := newNullRow(len(order))
		row[0] = int32(r)
		rows = append(rows, row)
	}

	for ci := 1; ci < len(order); ci++ {
		child := order[ci]
		pe, _ := sch.Parent(child)
		pi := tIdx[pe.Parent]
		pcol := sch.Table(pe.Parent).MustCol(pe.ParentCol)
		ctbl := sch.Table(child)
		cix, err := ctbl.Index(pe.ChildCol)
		if err != nil {
			return nil, err
		}
		matched := make([]bool, ctbl.NumRows())
		var next [][]int32
		for _, row := range rows {
			prow := row[pi]
			var partners []int32
			if prow != sampler.NullRow {
				if v, notNull := pcol.Int(int(prow)); notNull {
					partners = cix.Rows(v)
				}
			}
			if len(partners) == 0 {
				next = append(next, row) // left row preserved, child NULL
				continue
			}
			for _, m := range partners {
				matched[m] = true
				dup := make([]int32, len(row))
				copy(dup, row)
				dup[ci] = m
				next = append(next, dup)
			}
		}
		// Right rows with no partner are preserved, NULL elsewhere.
		for m := 0; m < ctbl.NumRows(); m++ {
			if !matched[m] {
				row := newNullRow(len(order))
				row[ci] = int32(m)
				next = append(next, row)
			}
		}
		rows = next
	}
	return rows, nil
}

func newNullRow(n int) []int32 {
	row := make([]int32, n)
	for i := range row {
		row[i] = sampler.NullRow
	}
	return row
}

// BruteForceCardinality counts query results by materializing the full outer
// join of the query's sub-schema and keeping rows where every table is
// present and passes its filters. Reference implementation for tests.
func BruteForceCardinality(sch *schema.Schema, q query.Query) (float64, error) {
	filter, sub, err := compile(sch, q)
	if err != nil {
		return 0, err
	}
	rows, err := BruteForceFullJoin(sub)
	if err != nil {
		return 0, err
	}
	order := sub.Tables()
	count := 0.0
	for _, row := range rows {
		ok := true
		for i, name := range order {
			if row[i] == sampler.NullRow || !filter(name, int(row[i])) {
				ok = false
				break
			}
		}
		if ok {
			count++
		}
	}
	return count, nil
}

// Tables re-exports the sub-schema table order used by BruteForceFullJoin
// rows for a query (helper for tests).
func Tables(sch *schema.Schema, q query.Query) ([]string, error) {
	sub, err := sch.SubSchema(q.Tables)
	if err != nil {
		return nil, err
	}
	return sub.Tables(), nil
}
