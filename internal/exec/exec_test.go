package exec_test

import (
	"math/rand"
	"testing"

	"neurocard/internal/exec"
	"neurocard/internal/query"
	"neurocard/internal/schema"
	"neurocard/internal/table"
	"neurocard/internal/testutil"
	"neurocard/internal/value"
)

// paperSchema is Figure 4's schema with string-y columns mapped to ints.
func paperSchema(t *testing.T) *schema.Schema {
	t.Helper()
	a := table.MustBuilder("A", []table.ColSpec{{Name: "x", Kind: value.KindInt}})
	a.MustAppend(value.Int(1))
	a.MustAppend(value.Int(2))
	b := table.MustBuilder("B", []table.ColSpec{
		{Name: "x", Kind: value.KindInt}, {Name: "y", Kind: value.KindInt},
	})
	b.MustAppend(value.Int(1), value.Int(1))
	b.MustAppend(value.Int(2), value.Int(2))
	b.MustAppend(value.Int(2), value.Int(3))
	c := table.MustBuilder("C", []table.ColSpec{{Name: "y", Kind: value.KindInt}})
	c.MustAppend(value.Int(3))
	c.MustAppend(value.Int(3))
	c.MustAppend(value.Int(4))
	s, err := schema.New(
		[]*table.Table{a.MustBuild(), b.MustBuild(), c.MustBuild()},
		"A",
		[]schema.Edge{
			{LeftTable: "A", LeftCol: "x", RightTable: "B", RightCol: "x"},
			{LeftTable: "B", LeftCol: "y", RightTable: "C", RightCol: "y"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPaperQueries reproduces Figure 4d: Q1 (3-way join, A.x=2) = 2 rows;
// Q2 (A alone, A.x=2) = 1 row.
func TestPaperQueries(t *testing.T) {
	s := paperSchema(t)
	q1 := query.Query{
		Tables:  []string{"A", "B", "C"},
		Filters: []query.Filter{{Table: "A", Col: "x", Op: query.OpEq, Val: value.Int(2)}},
	}
	if got, err := exec.Cardinality(s, q1); err != nil || got != 2 {
		t.Errorf("Q1 = %v, %v; want 2", got, err)
	}
	q2 := query.Query{
		Tables:  []string{"A"},
		Filters: []query.Filter{{Table: "A", Col: "x", Op: query.OpEq, Val: value.Int(2)}},
	}
	if got, err := exec.Cardinality(s, q2); err != nil || got != 1 {
		t.Errorf("Q2 = %v, %v; want 1", got, err)
	}
}

func TestInnerJoinSize(t *testing.T) {
	s := paperSchema(t)
	cases := []struct {
		tables []string
		want   float64
	}{
		{[]string{"A"}, 2},
		{[]string{"A", "B"}, 3},
		{[]string{"B", "C"}, 2},
		{[]string{"A", "B", "C"}, 2},
	}
	for _, tc := range cases {
		got, err := exec.InnerJoinSize(s, tc.tables)
		if err != nil {
			t.Errorf("%v: %v", tc.tables, err)
			continue
		}
		if got != tc.want {
			t.Errorf("InnerJoinSize(%v) = %v, want %v", tc.tables, got, tc.want)
		}
	}
}

func TestSelectivity(t *testing.T) {
	s := paperSchema(t)
	q := query.Query{
		Tables:  []string{"A", "B"},
		Filters: []query.Filter{{Table: "A", Col: "x", Op: query.OpEq, Val: value.Int(1)}},
	}
	sel, inner, err := exec.Selectivity(s, q)
	if err != nil {
		t.Fatal(err)
	}
	if inner != 3 {
		t.Errorf("inner = %v, want 3", inner)
	}
	// A.x=1 joins one B row → card 1, selectivity 1/3.
	if sel != 1.0/3.0 {
		t.Errorf("selectivity = %v, want 1/3", sel)
	}
}

func TestCardinalityErrors(t *testing.T) {
	s := paperSchema(t)
	// Disconnected query.
	if _, err := exec.Cardinality(s, query.Query{Tables: []string{"A", "C"}}); err == nil {
		t.Error("disconnected query accepted")
	}
	// Filter on a table outside the join.
	q := query.Query{
		Tables:  []string{"A"},
		Filters: []query.Filter{{Table: "C", Col: "y", Op: query.OpEq, Val: value.Int(3)}},
	}
	if _, err := exec.Cardinality(s, q); err == nil {
		t.Error("out-of-join filter accepted")
	}
	// Filter on an unknown column.
	q2 := query.Query{
		Tables:  []string{"A"},
		Filters: []query.Filter{{Table: "A", Col: "zzz", Op: query.OpEq, Val: value.Int(3)}},
	}
	if _, err := exec.Cardinality(s, q2); err == nil {
		t.Error("unknown filter column accepted")
	}
}

// TestCardinalityMatchesBruteForce is the executor's core property: the DP
// count equals brute-force materialization + filtering on random schemas and
// random queries.
func TestCardinalityMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cfg := testutil.DefaultSchemaConfig()
	checked := 0
	for iter := 0; iter < 250; iter++ {
		s := testutil.RandomSchema(rng, cfg)
		q := testutil.RandomQuery(rng, s, 3)
		got, err := exec.Cardinality(s, q)
		if err != nil {
			t.Fatalf("iter %d (%s): %v", iter, q, err)
		}
		want, err := exec.BruteForceCardinality(s, q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iter %d: DP card = %v, brute force = %v for %s", iter, got, want, q)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no queries checked")
	}
}

// TestSingleTableCount sanity-checks the degenerate single-table case.
func TestSingleTableCount(t *testing.T) {
	s := paperSchema(t)
	q := query.Query{Tables: []string{"B"}, Filters: []query.Filter{
		{Table: "B", Col: "x", Op: query.OpEq, Val: value.Int(2)},
	}}
	if got, err := exec.Cardinality(s, q); err != nil || got != 2 {
		t.Errorf("card = %v, %v; want 2", got, err)
	}
	// Unfiltered single table = row count.
	if got, err := exec.Cardinality(s, query.Query{Tables: []string{"C"}}); err != nil || got != 3 {
		t.Errorf("card = %v, %v; want 3", got, err)
	}
}
