// Package ibjs implements Index-Based Join Sampling (Leis et al., §7.2): a
// per-query estimator that samples root tuples, walks the query's join tree
// through the base-table indexes, and scales counts up multiplicatively.
// The estimator is unbiased for counts but — as the paper stresses (§4.2) —
// its samples are neither uniform nor independent, so it collapses on
// low-selectivity queries (few or no sample hits) and, when adapted as a
// training-data source, teaches a density model the wrong distribution
// (Table 5, row A).
package ibjs

import (
	"fmt"
	"math/rand"

	"neurocard/internal/query"
	"neurocard/internal/sampler"
	"neurocard/internal/schema"
	"neurocard/internal/table"
)

// Estimator estimates per-query cardinalities by index-based join sampling.
type Estimator struct {
	sch        *schema.Schema
	sampleSize int
	rng        *rand.Rand
}

// New creates an IBJS estimator with the given per-query sample budget
// (the paper uses 10,000).
func New(sch *schema.Schema, sampleSize int, seed int64) *Estimator {
	if sampleSize <= 0 {
		sampleSize = 10000
	}
	return &Estimator{sch: sch, sampleSize: sampleSize, rng: rand.New(rand.NewSource(seed))}
}

// Name identifies the estimator in benchmark output.
func (e *Estimator) Name() string { return "ibjs" }

// Estimate samples root tuples of the query subtree and walks matches
// downward, multiplying by match counts (Horvitz-Thompson style scale-up).
func (e *Estimator) Estimate(q query.Query) (float64, error) {
	sub, err := e.sch.SubSchema(q.Tables)
	if err != nil {
		return 0, err
	}
	regions := make(map[string]map[string]query.Region, len(q.Tables))
	for _, t := range q.Tables {
		regs, err := query.TableRegions(e.sch.Table(t), q)
		if err != nil {
			return 0, err
		}
		regions[t] = regs
	}
	for _, f := range q.Filters {
		if !q.HasTable(f.Table) {
			return 0, fmt.Errorf("ibjs: filter %s outside join", f)
		}
	}
	root := sub.Root()
	rootTbl := sub.Table(root)
	if rootTbl.NumRows() == 0 {
		return 1, nil
	}
	total := 0.0
	for i := 0; i < e.sampleSize; i++ {
		row := e.rng.Intn(rootTbl.NumRows())
		v, err := e.walk(sub, regions, root, row)
		if err != nil {
			return 0, err
		}
		total += v
	}
	card := total / float64(e.sampleSize) * float64(rootTbl.NumRows())
	if card < 1 {
		card = 1
	}
	return card, nil
}

// walk returns an unbiased estimate of the number of join results rooted at
// this tuple: filter pass × Π_children (matchCount × walk(random match)).
func (e *Estimator) walk(sub *schema.Schema, regions map[string]map[string]query.Region, tname string, row int) (float64, error) {
	t := sub.Table(tname)
	if !query.Matches(t, regions[tname], row) {
		return 0, nil
	}
	est := 1.0
	for _, child := range sub.Children(tname) {
		pe, _ := sub.Parent(child)
		v, notNull := t.MustCol(pe.ParentCol).Int(row)
		if !notNull {
			return 0, nil
		}
		ix, err := sub.Table(child).Index(pe.ChildCol)
		if err != nil {
			return 0, err
		}
		matches := ix.Rows(v)
		if len(matches) == 0 {
			return 0, nil
		}
		pick := matches[e.rng.Intn(len(matches))]
		sub2, err := e.walk(sub, regions, child, int(pick))
		if err != nil {
			return 0, err
		}
		est *= float64(len(matches)) * sub2
		if est == 0 {
			return 0, nil
		}
	}
	return est, nil
}

// BiasedFullJoinDraw adapts IBJS into a full-outer-join training sampler for
// the Table 5 (A) ablation: root tuples are drawn uniformly (ignoring join
// counts) and each child match is picked uniformly, so heavy join keys are
// underrepresented and orphan rows never appear — a systematically biased
// approximation of the full-join distribution.
func BiasedFullJoinDraw(sch *schema.Schema) (func(rng *rand.Rand, out []int32), error) {
	order := sch.Tables()
	tIdx := make(map[string]int, len(order))
	for i, t := range order {
		tIdx[t] = i
	}
	type childRef struct {
		idx  int
		pcol *table.Column
		ix   *table.Index
	}
	children := make([][]childRef, len(order))
	for i, tname := range order {
		t := sch.Table(tname)
		for _, child := range sch.Children(tname) {
			pe, _ := sch.Parent(child)
			ix, err := sch.Table(child).Index(pe.ChildCol)
			if err != nil {
				return nil, err
			}
			children[i] = append(children[i], childRef{tIdx[child], t.MustCol(pe.ParentCol), ix})
		}
	}
	rootRows := sch.Table(order[0]).NumRows()
	if rootRows == 0 {
		return nil, fmt.Errorf("ibjs: empty root table")
	}
	var descend func(rng *rand.Rand, ti int, row int32, out []int32)
	descend = func(rng *rand.Rand, ti int, row int32, out []int32) {
		out[ti] = row
		for _, c := range children[ti] {
			v, notNull := c.pcol.Int(int(row))
			if !notNull {
				continue
			}
			matches := c.ix.Rows(v)
			if len(matches) == 0 {
				continue
			}
			descend(rng, c.idx, matches[rng.Intn(len(matches))], out)
		}
	}
	return func(rng *rand.Rand, out []int32) {
		for i := range out {
			out[i] = sampler.NullRow
		}
		descend(rng, 0, int32(rng.Intn(rootRows)), out)
	}, nil
}
