package spn

import (
	"fmt"
	"math/rand"

	"neurocard/internal/core"
	"neurocard/internal/exec"
	"neurocard/internal/query"
	"neurocard/internal/sampler"
	"neurocard/internal/schema"
)

// Config sets the DeepDB-style ensemble hyperparameters.
type Config struct {
	SampleRows   int     // full-join samples per subset model
	MinRows      int     // SPN: stop structure search below this many rows
	DepThreshold float64 // SPN: normalized MI threshold for column splits
	MaxDepth     int
	Seed         int64
}

// DefaultConfig mirrors DeepDB's recommended settings at our scale.
func DefaultConfig() Config {
	return Config{SampleRows: 20000, MinRows: 600, DepThreshold: 0.08, MaxDepth: 12, Seed: 1}
}

// subsetModel is one SPN over a table subset's full outer join.
type subsetModel struct {
	tables    []string
	tset      map[string]bool
	sub       *schema.Schema
	enc       *core.Encoder
	root      node
	contentIx map[string]map[string]int // table → column → flat index
	indicIx   map[string]int
	fanoutIx  map[string]map[string]int
}

// Estimator is an ensemble of per-subset SPNs with cross-subset
// independence.
type Estimator struct {
	sch     *schema.Schema
	cfg     Config
	subsets []*subsetModel
}

// JOBLightBaseSubsets returns DeepDB's base ensemble for the JOB-light star:
// one two-table model per fact table (title paired with each child).
func JOBLightBaseSubsets(sch *schema.Schema) [][]string {
	var out [][]string
	for _, child := range sch.Children(sch.Root()) {
		out = append(out, []string{sch.Root(), child})
	}
	return out
}

// JOBLightLargeSubsets adds two correlation-heavy three-table models,
// mirroring DeepDB-large.
func JOBLightLargeSubsets(sch *schema.Schema) [][]string {
	out := JOBLightBaseSubsets(sch)
	children := sch.Children(sch.Root())
	if len(children) >= 3 {
		out = append(out,
			[]string{sch.Root(), children[0], children[1]},
			[]string{sch.Root(), children[1], children[2]},
		)
	}
	return out
}

// New trains one SPN per table subset on unbiased full-join samples.
// contentCols declares the filterable columns per table.
func New(sch *schema.Schema, subsets [][]string, contentCols map[string][]string, cfg Config) (*Estimator, error) {
	if cfg.SampleRows <= 0 {
		cfg.SampleRows = 20000
	}
	if cfg.MinRows <= 0 {
		cfg.MinRows = 600
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 12
	}
	e := &Estimator{sch: sch, cfg: cfg}
	for si, tables := range subsets {
		sub, err := sch.SubSchema(tables)
		if err != nil {
			return nil, fmt.Errorf("spn: subset %v: %w", tables, err)
		}
		cc := make(map[string][]string, len(tables))
		for _, t := range tables {
			cc[t] = contentCols[t]
		}
		enc, err := core.NewEncoder(sub, cc, 0)
		if err != nil {
			return nil, err
		}
		smp, err := sampler.New(sub)
		if err != nil {
			return nil, err
		}
		rows := smp.SampleParallel(cfg.Seed+int64(si), 4, cfg.SampleRows)
		encoded, err := enc.EncodeJoinRows(sub, rows)
		if err != nil {
			return nil, err
		}
		lc := &learnConfig{
			minRows:      cfg.MinRows,
			depThreshold: cfg.DepThreshold,
			maxDepth:     cfg.MaxDepth,
			doms:         enc.FlatDomains(),
			rng:          rand.New(rand.NewSource(cfg.Seed + int64(si)*31)),
		}
		cols := make([]int, enc.NumFlat())
		for i := range cols {
			cols[i] = i
		}
		m := &subsetModel{
			tables:    tables,
			tset:      make(map[string]bool, len(tables)),
			sub:       sub,
			enc:       enc,
			root:      learn(encoded, cols, lc, 0),
			contentIx: make(map[string]map[string]int),
			indicIx:   make(map[string]int),
			fanoutIx:  make(map[string]map[string]int),
		}
		for _, t := range tables {
			m.tset[t] = true
		}
		for _, mc := range enc.Columns() {
			switch mc.Kind {
			case core.KindContent:
				if m.contentIx[mc.Table] == nil {
					m.contentIx[mc.Table] = make(map[string]int)
				}
				m.contentIx[mc.Table][mc.Col] = mc.FlatOffset
			case core.KindIndicator:
				m.indicIx[mc.Table] = mc.FlatOffset
			case core.KindFanout:
				if m.fanoutIx[mc.Table] == nil {
					m.fanoutIx[mc.Table] = make(map[string]int)
				}
				m.fanoutIx[mc.Table][mc.Col] = mc.FlatOffset
			}
		}
		e.subsets = append(e.subsets, m)
	}
	if len(e.subsets) == 0 {
		return nil, fmt.Errorf("spn: no subsets")
	}
	return e, nil
}

// Name identifies the estimator in benchmark output.
func (e *Estimator) Name() string { return "deepdb-spn" }

// Bytes reports the ensemble size.
func (e *Estimator) Bytes() int {
	n := 0
	for _, m := range e.subsets {
		n += m.root.bytes()
	}
	return n
}

// selectivity evaluates P(filters on `assigned` tables | join over S∩Q)
// within one subset model, using the §6 algebra: indicators constrain table
// presence, fanout keys of tables outside the overlap divide out.
func (m *subsetModel) selectivity(q query.Query, qset map[string]bool, assigned map[string]bool) (float64, error) {
	overlap := make(map[string]bool)
	var overlapList []string
	for _, t := range m.tables {
		if qset[t] {
			overlap[t] = true
			overlapList = append(overlapList, t)
		}
	}
	// The overlap must be a connected subtree of the subset schema for the
	// indicator algebra to apply; DeepDB's subset choice guarantees this for
	// star schemas (every subset contains the root).
	if err := m.sub.ValidateQuerySet(overlapList); err != nil {
		return 0, err
	}
	base := &evalCtx{regions: map[int][]query.IDRange{}, fanout: map[int]bool{}}
	for t := range overlap {
		base.regions[m.indicIx[t]] = []query.IDRange{{Lo: 1, Hi: 1}}
	}
	for _, t := range m.tables {
		if overlap[t] {
			continue
		}
		key, err := m.sub.FanoutKey(t, overlap)
		if err != nil {
			return 0, err
		}
		if ix, ok := m.fanoutIx[t][key]; ok {
			base.fanout[ix] = true
		}
	}
	denom := m.root.eval(base)
	if denom <= 0 {
		return 1, nil
	}
	// Numerator adds the filter regions of the assigned tables.
	num := &evalCtx{regions: map[int][]query.IDRange{}, fanout: base.fanout}
	for k, v := range base.regions {
		num.regions[k] = v
	}
	for _, f := range q.Filters {
		if !assigned[f.Table] {
			continue
		}
		ix, ok := m.contentIx[f.Table][f.Col]
		if !ok {
			return 0, fmt.Errorf("spn: column %s.%s not modeled", f.Table, f.Col)
		}
		c := m.sub.Table(f.Table).Col(f.Col)
		region, err := query.FilterRegion(c, f)
		if err != nil {
			return 0, err
		}
		if prev, ok := num.regions[ix]; ok {
			region = query.Region(prev).Intersect(region)
		}
		num.regions[ix] = region
	}
	sel := m.root.eval(num) / denom
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	return sel, nil
}

// Estimate covers the query's filtered tables with subset models, assigns
// each filtered table to exactly one model, multiplies the per-model
// conditional selectivities (cross-subset independence), and scales by the
// exact inner-join size of the query graph.
func (e *Estimator) Estimate(q query.Query) (float64, error) {
	if err := e.sch.ValidateQuerySet(q.Tables); err != nil {
		return 0, err
	}
	qset := make(map[string]bool, len(q.Tables))
	for _, t := range q.Tables {
		qset[t] = true
	}
	filtered := make(map[string]bool)
	for _, f := range q.Filters {
		if !qset[f.Table] {
			return 0, fmt.Errorf("spn: filter %s outside join", f)
		}
		filtered[f.Table] = true
	}
	inner, err := exec.InnerJoinSize(e.sch, q.Tables)
	if err != nil {
		return 0, err
	}
	// Greedy cover of filtered tables; assign each to its covering model.
	unassigned := make(map[string]bool, len(filtered))
	for t := range filtered {
		unassigned[t] = true
	}
	card := inner
	for len(unassigned) > 0 {
		var best *subsetModel
		var bestGain int
		for _, m := range e.subsets {
			gain := 0
			for t := range unassigned {
				if m.tset[t] {
					gain++
				}
			}
			if gain > bestGain {
				bestGain = gain
				best = m
			}
		}
		if best == nil {
			var missing []string
			for t := range unassigned {
				missing = append(missing, t)
			}
			return 0, fmt.Errorf("spn: no subset model covers tables %v", missing)
		}
		assigned := make(map[string]bool)
		for t := range unassigned {
			if best.tset[t] {
				assigned[t] = true
				delete(unassigned, t)
			}
		}
		sel, err := best.selectivity(q, qset, assigned)
		if err != nil {
			return 0, err
		}
		card *= sel
	}
	if card < 1 {
		card = 1
	}
	return card, nil
}
