// Package spn implements the DeepDB-style baseline of §7.2: sum-product
// networks learned per heuristically chosen table subset. Each subset model
// is trained on unbiased samples of the subset's full outer join (with §6
// indicator and fanout virtual columns) and answers sub-queries via the
// same schema-subsetting algebra NeuroCard uses; queries spanning multiple
// subsets combine per-subset conditional selectivities under an
// independence assumption — the structural limitation (D2/D3 in §8) that
// NeuroCard's single-model design removes, and the source of DeepDB's tail
// errors in Tables 2-3.
//
// The SPN learner follows the classic recipe: recursive column splits where
// an independence test finds decoupled column groups, row splits (k-means,
// k=2) otherwise, and histogram leaves.
package spn

import (
	"math"
	"math/rand"

	"neurocard/internal/query"
)

// node is one SPN node; eval computes E[Π indicator-selections × Π 1/fanout]
// under the node's distribution.
type node interface {
	eval(ctx *evalCtx) float64
	bytes() int
}

// evalCtx carries per-flat-column constraints for one evaluation.
type evalCtx struct {
	// regions[col] lists accepted tokens (nil = unconstrained).
	regions map[int][]query.IDRange
	// fanout[col] marks columns contributing E[1/(token+1)].
	fanout map[int]bool
}

// leaf is a token histogram of one column.
type leaf struct {
	col  int
	hist []float64 // probability per token
}

func (l *leaf) eval(ctx *evalCtx) float64 {
	region, constrained := ctx.regions[l.col]
	fan := ctx.fanout[l.col]
	if !constrained && !fan {
		return 1
	}
	total := 0.0
	if constrained {
		for _, iv := range region {
			for t := iv.Lo; t <= iv.Hi && int(t) < len(l.hist); t++ {
				p := l.hist[t]
				if fan {
					p /= float64(t) + 1
				}
				total += p
			}
		}
		return total
	}
	for t, p := range l.hist {
		total += p / float64(t+1)
	}
	return total
}

func (l *leaf) bytes() int { return 8*len(l.hist) + 8 }

// product multiplies independent child scopes.
type product struct{ children []node }

func (p *product) eval(ctx *evalCtx) float64 {
	out := 1.0
	for _, c := range p.children {
		out *= c.eval(ctx)
		if out == 0 {
			return 0
		}
	}
	return out
}

func (p *product) bytes() int {
	n := 16
	for _, c := range p.children {
		n += c.bytes()
	}
	return n
}

// sum mixes row clusters.
type sum struct {
	weights  []float64
	children []node
}

func (s *sum) eval(ctx *evalCtx) float64 {
	out := 0.0
	for i, c := range s.children {
		out += s.weights[i] * c.eval(ctx)
	}
	return out
}

func (s *sum) bytes() int {
	n := 16 + 8*len(s.weights)
	for _, c := range s.children {
		n += c.bytes()
	}
	return n
}

// learnConfig bounds the structure search.
type learnConfig struct {
	minRows      int
	depThreshold float64 // normalized mutual information threshold
	maxDepth     int
	doms         []int
	rng          *rand.Rand
}

// learn builds an SPN over the given rows restricted to cols.
func learn(rows [][]int32, cols []int, cfg *learnConfig, depth int) node {
	if len(cols) == 1 {
		return makeLeaf(rows, cols[0], cfg.doms[cols[0]])
	}
	if len(rows) < cfg.minRows || depth >= cfg.maxDepth {
		return leafProduct(rows, cols, cfg)
	}
	// Column split: group columns whose pairwise dependency exceeds the
	// threshold; independent groups become product children.
	groups := dependencyGroups(rows, cols, cfg)
	if len(groups) > 1 {
		p := &product{}
		for _, g := range groups {
			p.children = append(p.children, learn(rows, g, cfg, depth+1))
		}
		return p
	}
	// Row split: k-means (k=2) over normalized tokens.
	a, b := kmeansSplit(rows, cols, cfg)
	if len(a) == 0 || len(b) == 0 {
		return leafProduct(rows, cols, cfg)
	}
	total := float64(len(rows))
	return &sum{
		weights:  []float64{float64(len(a)) / total, float64(len(b)) / total},
		children: []node{learn(a, cols, cfg, depth+1), learn(b, cols, cfg, depth+1)},
	}
}

// leafProduct treats all columns as independent (base case).
func leafProduct(rows [][]int32, cols []int, cfg *learnConfig) node {
	p := &product{}
	for _, c := range cols {
		p.children = append(p.children, makeLeaf(rows, c, cfg.doms[c]))
	}
	return p
}

// makeLeaf builds a Laplace-smoothed token histogram.
func makeLeaf(rows [][]int32, col, dom int) *leaf {
	hist := make([]float64, dom)
	const alpha = 0.1
	total := alpha * float64(dom)
	for i := range hist {
		hist[i] = alpha
	}
	for _, r := range rows {
		hist[r[col]]++
		total++
	}
	inv := 1 / total
	for i := range hist {
		hist[i] *= inv
	}
	return &leaf{col: col, hist: hist}
}

// dependencyGroups computes connected components of the pairwise
// normalized-mutual-information graph above the threshold.
func dependencyGroups(rows [][]int32, cols []int, cfg *learnConfig) [][]int {
	n := len(cols)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	// Subsample rows for the test.
	sample := rows
	if len(sample) > 2000 {
		sample = make([][]int32, 2000)
		for i := range sample {
			sample[i] = rows[cfg.rng.Intn(len(rows))]
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if normalizedMI(sample, cols[i], cols[j]) > cfg.depThreshold {
				union(i, j)
			}
		}
	}
	byRoot := make(map[int][]int)
	for i, c := range cols {
		r := find(i)
		byRoot[r] = append(byRoot[r], c)
	}
	out := make([][]int, 0, len(byRoot))
	// Deterministic order: group containing the smallest column first.
	for i := 0; i < n; i++ {
		r := find(i)
		if g, ok := byRoot[r]; ok {
			out = append(out, g)
			delete(byRoot, r)
		}
	}
	return out
}

// normalizedMI estimates I(X;Y)/min(H(X),H(Y)) over the sample.
func normalizedMI(rows [][]int32, cx, cy int) float64 {
	type pair struct{ x, y int32 }
	joint := make(map[pair]float64)
	px := make(map[int32]float64)
	py := make(map[int32]float64)
	n := float64(len(rows))
	if n == 0 {
		return 0
	}
	for _, r := range rows {
		joint[pair{r[cx], r[cy]}]++
		px[r[cx]]++
		py[r[cy]]++
	}
	mi := 0.0
	for p, c := range joint {
		pxy := c / n
		mi += pxy * math.Log(pxy*n*n/(px[p.x]*py[p.y]))
	}
	hx, hy := 0.0, 0.0
	for _, c := range px {
		p := c / n
		hx -= p * math.Log(p)
	}
	for _, c := range py {
		p := c / n
		hy -= p * math.Log(p)
	}
	h := math.Min(hx, hy)
	if h < 1e-9 {
		return 0
	}
	return mi / h
}

// kmeansSplit partitions rows into two clusters over normalized tokens.
func kmeansSplit(rows [][]int32, cols []int, cfg *learnConfig) (a, b [][]int32) {
	norm := func(r []int32, c int) float64 {
		d := cfg.doms[c]
		if d <= 1 {
			return 0
		}
		return float64(r[c]) / float64(d-1)
	}
	// Initialize centroids k-means++-style: a random first row, then the
	// row farthest from it, so well-separated clusters are found reliably.
	c1 := rows[cfg.rng.Intn(len(rows))]
	cent1 := make([]float64, len(cols))
	for i, c := range cols {
		cent1[i] = norm(c1, c)
	}
	cent2 := make([]float64, len(cols))
	bestDist := -1.0
	for _, r := range rows {
		d := 0.0
		for i, c := range cols {
			v := norm(r, c)
			d += (v - cent1[i]) * (v - cent1[i])
		}
		if d > bestDist {
			bestDist = d
			for i, c := range cols {
				cent2[i] = norm(r, c)
			}
		}
	}
	assign := make([]bool, len(rows)) // true → cluster 2
	for iter := 0; iter < 8; iter++ {
		changed := false
		for ri, r := range rows {
			d1, d2 := 0.0, 0.0
			for i, c := range cols {
				v := norm(r, c)
				d1 += (v - cent1[i]) * (v - cent1[i])
				d2 += (v - cent2[i]) * (v - cent2[i])
			}
			want := d2 < d1
			if assign[ri] != want {
				assign[ri] = want
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		n1, n2 := 0.0, 0.0
		for i := range cent1 {
			cent1[i], cent2[i] = 0, 0
		}
		for ri, r := range rows {
			for i, c := range cols {
				v := norm(r, c)
				if assign[ri] {
					cent2[i] += v
				} else {
					cent1[i] += v
				}
			}
			if assign[ri] {
				n2++
			} else {
				n1++
			}
		}
		if n1 == 0 || n2 == 0 {
			break
		}
		for i := range cent1 {
			cent1[i] /= n1
			cent2[i] /= n2
		}
	}
	for ri, r := range rows {
		if assign[ri] {
			b = append(b, r)
		} else {
			a = append(a, r)
		}
	}
	// Degenerate clustering: force a median split so recursion progresses.
	if len(a) == 0 || len(b) == 0 {
		half := len(rows) / 2
		return rows[:half], rows[half:]
	}
	return a, b
}
