package spn

import (
	"math"
	"math/rand"
	"testing"

	"neurocard/internal/query"
)

func TestLeafEval(t *testing.T) {
	l := &leaf{col: 0, hist: []float64{0.5, 0.3, 0.2}}
	// Unconstrained, no fanout: mass 1.
	if got := l.eval(&evalCtx{regions: map[int][]query.IDRange{}, fanout: map[int]bool{}}); got != 1 {
		t.Errorf("unconstrained leaf = %v", got)
	}
	// Region [1,2]: 0.3 + 0.2.
	ctx := &evalCtx{
		regions: map[int][]query.IDRange{0: {{Lo: 1, Hi: 2}}},
		fanout:  map[int]bool{},
	}
	if got := l.eval(ctx); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("region leaf = %v, want 0.5", got)
	}
	// Fanout expectation: E[1/(t+1)] = 0.5/1 + 0.3/2 + 0.2/3.
	ctx = &evalCtx{regions: map[int][]query.IDRange{}, fanout: map[int]bool{0: true}}
	want := 0.5 + 0.15 + 0.2/3
	if got := l.eval(ctx); math.Abs(got-want) > 1e-12 {
		t.Errorf("fanout leaf = %v, want %v", got, want)
	}
	// Region + fanout combined.
	ctx = &evalCtx{
		regions: map[int][]query.IDRange{0: {{Lo: 1, Hi: 1}}},
		fanout:  map[int]bool{0: true},
	}
	if got := l.eval(ctx); math.Abs(got-0.15) > 1e-12 {
		t.Errorf("region+fanout leaf = %v, want 0.15", got)
	}
}

func TestProductAndSumEval(t *testing.T) {
	a := &leaf{col: 0, hist: []float64{0.5, 0.5}}
	b := &leaf{col: 1, hist: []float64{0.25, 0.75}}
	p := &product{children: []node{a, b}}
	ctx := &evalCtx{
		regions: map[int][]query.IDRange{0: {{Lo: 0, Hi: 0}}, 1: {{Lo: 1, Hi: 1}}},
		fanout:  map[int]bool{},
	}
	if got := p.eval(ctx); math.Abs(got-0.375) > 1e-12 {
		t.Errorf("product = %v, want 0.375", got)
	}
	s := &sum{weights: []float64{0.4, 0.6}, children: []node{a, b}}
	ctx = &evalCtx{
		regions: map[int][]query.IDRange{0: {{Lo: 0, Hi: 0}}, 1: {{Lo: 0, Hi: 0}}},
		fanout:  map[int]bool{},
	}
	want := 0.4*0.5*1 + 0.6*1*0.25 // each child only sees its own column's region
	_ = want
	// Careful: leaf a ignores col 1's region, leaf b ignores col 0's.
	got := s.eval(ctx)
	if math.Abs(got-(0.4*0.5+0.6*0.25)) > 1e-12 {
		t.Errorf("sum = %v", got)
	}
	if p.bytes() <= 0 || s.bytes() <= 0 {
		t.Error("bytes accounting broken")
	}
}

func TestMakeLeafSmoothing(t *testing.T) {
	rows := [][]int32{{0}, {0}, {1}}
	l := makeLeaf(rows, 0, 3)
	total := 0.0
	for _, p := range l.hist {
		if p <= 0 {
			t.Error("unsmoothed zero probability")
		}
		total += p
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("histogram sums to %v", total)
	}
	if l.hist[0] < l.hist[1] || l.hist[1] < l.hist[2] {
		t.Errorf("histogram ordering wrong: %v", l.hist)
	}
}

func TestNormalizedMI(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Independent columns: MI ≈ 0.
	var indep [][]int32
	for i := 0; i < 3000; i++ {
		indep = append(indep, []int32{int32(rng.Intn(4)), int32(rng.Intn(4))})
	}
	if mi := normalizedMI(indep, 0, 1); mi > 0.05 {
		t.Errorf("independent columns: MI = %v", mi)
	}
	// Deterministic dependency: MI ≈ 1.
	var dep [][]int32
	for i := 0; i < 3000; i++ {
		x := int32(rng.Intn(4))
		dep = append(dep, []int32{x, (x + 1) % 4})
	}
	if mi := normalizedMI(dep, 0, 1); mi < 0.9 {
		t.Errorf("dependent columns: MI = %v", mi)
	}
}

func TestDependencyGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Columns 0,1 dependent; column 2 independent.
	var rows [][]int32
	for i := 0; i < 2000; i++ {
		x := int32(rng.Intn(3))
		rows = append(rows, []int32{x, x, int32(rng.Intn(3))})
	}
	cfg := &learnConfig{depThreshold: 0.1, doms: []int{3, 3, 3}, rng: rng}
	groups := dependencyGroups(rows, []int{0, 1, 2}, cfg)
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want {0,1} and {2}", groups)
	}
	if len(groups[0]) != 2 || groups[0][0] != 0 || groups[0][1] != 1 {
		t.Errorf("first group = %v", groups[0])
	}
}

func TestKMeansSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := &learnConfig{doms: []int{10}, rng: rng}
	// Two well-separated clusters over one column.
	var rows [][]int32
	for i := 0; i < 100; i++ {
		rows = append(rows, []int32{int32(rng.Intn(2))})
		rows = append(rows, []int32{int32(8 + rng.Intn(2))})
	}
	a, b := kmeansSplit(rows, []int{0}, cfg)
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("degenerate split")
	}
	// Each side must be pure (all low or all high).
	pure := func(rs [][]int32) bool {
		low, high := 0, 0
		for _, r := range rs {
			if r[0] < 5 {
				low++
			} else {
				high++
			}
		}
		return low == 0 || high == 0
	}
	if !pure(a) || !pure(b) {
		t.Error("k-means did not separate the clusters")
	}
}

// TestLearnTotalMassOne: an SPN's unconstrained evaluation is 1 (a valid
// probability distribution) regardless of learned structure.
func TestLearnTotalMassOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var rows [][]int32
	for i := 0; i < 1500; i++ {
		x := int32(rng.Intn(5))
		rows = append(rows, []int32{x, (x * 2) % 5, int32(rng.Intn(3))})
	}
	cfg := &learnConfig{minRows: 100, depThreshold: 0.1, maxDepth: 6, doms: []int{5, 5, 3}, rng: rng}
	root := learn(rows, []int{0, 1, 2}, cfg, 0)
	got := root.eval(&evalCtx{regions: map[int][]query.IDRange{}, fanout: map[int]bool{}})
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("total mass = %v", got)
	}
	// Marginal of column 2 ≈ 1/3 per value despite row splits.
	for v := int32(0); v < 3; v++ {
		ctx := &evalCtx{regions: map[int][]query.IDRange{2: {{Lo: v, Hi: v}}}, fanout: map[int]bool{}}
		p := root.eval(ctx)
		if math.Abs(p-1.0/3) > 0.08 {
			t.Errorf("P(col2=%d) = %v, want ≈ 1/3", v, p)
		}
	}
}

// TestLearnCapturesCorrelation: a learned SPN assigns much higher mass to
// correlated value pairs than to impossible ones.
func TestLearnCapturesCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var rows [][]int32
	for i := 0; i < 4000; i++ {
		x := int32(rng.Intn(4))
		rows = append(rows, []int32{x, x})
	}
	cfg := &learnConfig{minRows: 200, depThreshold: 0.05, maxDepth: 8, doms: []int{4, 4}, rng: rng}
	root := learn(rows, []int{0, 1}, cfg, 0)
	match := root.eval(&evalCtx{
		regions: map[int][]query.IDRange{0: {{Lo: 1, Hi: 1}}, 1: {{Lo: 1, Hi: 1}}},
		fanout:  map[int]bool{},
	})
	mismatch := root.eval(&evalCtx{
		regions: map[int][]query.IDRange{0: {{Lo: 1, Hi: 1}}, 1: {{Lo: 2, Hi: 2}}},
		fanout:  map[int]bool{},
	})
	if match < 5*mismatch {
		t.Errorf("P(match)=%v not ≫ P(mismatch)=%v — correlation not captured", match, mismatch)
	}
}
