// Package baselines_test exercises every baseline estimator family against
// the same synthetic dataset and ground-truth executor, checking the
// contracts the evaluation depends on: estimates are finite and ≥ 1, error
// paths reject malformed queries, and accuracy is in a sane band for each
// family (loose bounds — the benchmark harness measures the real numbers).
package baselines_test

import (
	"math"
	"testing"

	"neurocard/internal/baselines/histogram"
	"neurocard/internal/baselines/ibjs"
	"neurocard/internal/baselines/mscn"
	"neurocard/internal/baselines/samplecard"
	"neurocard/internal/baselines/spn"
	"neurocard/internal/datagen"
	"neurocard/internal/query"
	"neurocard/internal/value"
	"neurocard/internal/workload"

	"math/rand"
)

type cardEstimator interface {
	Name() string
	Estimate(q query.Query) (float64, error)
}

var (
	testData *datagen.Dataset
	testWL   *workload.Workload
)

func setup(t *testing.T) (*datagen.Dataset, *workload.Workload) {
	t.Helper()
	if testData == nil {
		d, err := datagen.JOBLight(datagen.Config{Seed: 11, Scale: 0.08})
		if err != nil {
			t.Fatal(err)
		}
		w, err := workload.JOBLight(d, 21)
		if err != nil {
			t.Fatal(err)
		}
		testData, testWL = d, w
	}
	return testData, testWL
}

// checkEstimator runs an estimator over the workload and verifies basic
// contracts plus a median Q-error ceiling.
func checkEstimator(t *testing.T, est cardEstimator, wl *workload.Workload, medianCeiling float64) {
	t.Helper()
	var qerrs []float64
	for i, lq := range wl.Queries {
		got, err := est.Estimate(lq.Query)
		if err != nil {
			t.Fatalf("%s query %d (%s): %v", est.Name(), i, lq.Query, err)
		}
		if math.IsNaN(got) || math.IsInf(got, 0) || got < 1 {
			t.Fatalf("%s query %d: estimate %v", est.Name(), i, got)
		}
		qerrs = append(qerrs, workload.QError(got, lq.TrueCard))
	}
	s := workload.Summarize(qerrs)
	t.Logf("%s: %s", est.Name(), s)
	if s.Median > medianCeiling {
		t.Errorf("%s median q-error %v exceeds sanity ceiling %v", est.Name(), s.Median, medianCeiling)
	}
}

func TestHistogramEstimator(t *testing.T) {
	d, wl := setup(t)
	est := histogram.New(d.Schema, histogram.DefaultConfig())
	if est.Bytes() <= 0 {
		t.Error("zero statistics size")
	}
	checkEstimator(t, est, wl, 500)
}

func TestHistogramSingleColumnAccuracy(t *testing.T) {
	// On a single table with one equality filter, MCV statistics are
	// near-exact — the family's errors come from independence, not from the
	// per-column stats.
	d, _ := setup(t)
	est := histogram.New(d.Schema, histogram.DefaultConfig())
	q := query.Query{
		Tables:  []string{"title"},
		Filters: []query.Filter{{Table: "title", Col: "kind_id", Op: query.OpEq, Val: intVal(1)}},
	}
	got, err := est.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	// Count directly.
	want := 0.0
	kind := d.Schema.Table("title").MustCol("kind_id")
	for r := 0; r < d.Schema.Table("title").NumRows(); r++ {
		if v, ok := kind.Int(r); ok && v == 1 {
			want++
		}
	}
	if qe := workload.QError(got, want); qe > 1.05 {
		t.Errorf("MCV equality estimate %v vs true %v (q-error %v)", got, want, qe)
	}
}

func TestHistogramErrors(t *testing.T) {
	d, _ := setup(t)
	est := histogram.New(d.Schema, histogram.DefaultConfig())
	if _, err := est.Estimate(query.Query{Tables: []string{"cast_info", "movie_info"}}); err == nil {
		t.Error("disconnected query accepted")
	}
	q := query.Query{
		Tables:  []string{"title"},
		Filters: []query.Filter{{Table: "title", Col: "zzz", Op: query.OpEq, Val: intVal(1)}},
	}
	if _, err := est.Estimate(q); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestIBJSEstimator(t *testing.T) {
	d, wl := setup(t)
	est := ibjs.New(d.Schema, 3000, 5)
	checkEstimator(t, est, wl, 50)
}

func TestSampleCardEstimator(t *testing.T) {
	d, wl := setup(t)
	est := samplecard.New(d.Schema, 3000, 5)
	checkEstimator(t, est, wl, 20)
}

func TestMSCNEstimator(t *testing.T) {
	d, wl := setup(t)
	// Train on a disjoint query set generated with a different seed.
	train, err := workload.JOBLightRanges(d, 300, 99)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mscn.DefaultConfig()
	cfg.Epochs = 30
	est := mscn.New(d.Schema, d.ContentCols, cfg)
	if _, err := est.Estimate(wl.Queries[0].Query); err == nil {
		t.Error("untrained MSCN produced an estimate")
	}
	if err := est.Train(train.Queries); err != nil {
		t.Fatal(err)
	}
	if est.Bytes() <= 0 {
		t.Error("zero model size")
	}
	checkEstimator(t, est, wl, 60)
}

func TestSPNEstimator(t *testing.T) {
	d, wl := setup(t)
	cfg := spn.DefaultConfig()
	cfg.SampleRows = 8000
	est, err := spn.New(d.Schema, spn.JOBLightBaseSubsets(d.Schema), d.ContentCols, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if est.Bytes() <= 0 {
		t.Error("zero ensemble size")
	}
	checkEstimator(t, est, wl, 15)
}

func TestSPNSubsets(t *testing.T) {
	d, _ := setup(t)
	base := spn.JOBLightBaseSubsets(d.Schema)
	if len(base) != 5 {
		t.Errorf("base subsets = %d, want 5", len(base))
	}
	large := spn.JOBLightLargeSubsets(d.Schema)
	if len(large) != 7 {
		t.Errorf("large subsets = %d, want 7", len(large))
	}
}

func TestBiasedFullJoinDraw(t *testing.T) {
	d, _ := setup(t)
	draw, err := ibjs.BiasedFullJoinDraw(d.Schema)
	if err != nil {
		t.Fatal(err)
	}
	rng := newRand(3)
	out := make([]int32, d.Schema.NumTables())
	sawNull, sawFull := false, false
	for i := 0; i < 200; i++ {
		draw(rng, out)
		if out[0] < 0 {
			t.Fatal("biased draw produced NULL root (it never samples orphans)")
		}
		full := true
		for _, v := range out[1:] {
			if v < 0 {
				sawNull = true
				full = false
			}
		}
		if full {
			sawFull = true
		}
	}
	if !sawNull || !sawFull {
		t.Error("biased draw distribution degenerate")
	}
}

// TestBaselinesGoldenWorkload runs every baseline family over the 200-query
// fixed-seed golden workload — the one the accuracy gate scores — which
// mixes classic conjunctive filters with OR groups, negations, BETWEEN, and
// null tests. Contract: no errors, no panics, every estimate finite and ≥ 1
// (so every q-error is finite), and per-family medians within loose sanity
// bands.
func TestBaselinesGoldenWorkload(t *testing.T) {
	d, _ := setup(t)
	golden, err := workload.Golden(d, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	train, err := workload.JOBLightRangesRich(d, 200, 99)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := mscn.DefaultConfig()
	mcfg.Epochs = 20
	mscnEst := mscn.New(d.Schema, d.ContentCols, mcfg)
	if err := mscnEst.Train(train.Queries); err != nil {
		t.Fatal(err)
	}
	spnEst, err := spn.New(d.Schema, spn.JOBLightBaseSubsets(d.Schema), d.ContentCols, spn.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ests := []struct {
		est     cardEstimator
		ceiling float64
	}{
		{histogram.New(d.Schema, histogram.DefaultConfig()), 1000},
		{ibjs.New(d.Schema, 2000, 5), 200},
		{samplecard.New(d.Schema, 2000, 5), 100},
		{mscnEst, 200},
		{spnEst, 100},
	}
	for _, e := range ests {
		checkEstimator(t, e.est, golden, e.ceiling)
	}
}

func intVal(v int64) value.Value { return value.Int(v) }

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
