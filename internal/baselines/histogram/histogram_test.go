package histogram

import (
	"math"
	"math/rand"
	"testing"

	"neurocard/internal/query"
	"neurocard/internal/schema"
	"neurocard/internal/table"
	"neurocard/internal/value"
)

func singleColSchema(t *testing.T, vals []int64, nulls int) *schema.Schema {
	t.Helper()
	b := table.MustBuilder("t", []table.ColSpec{{Name: "c", Kind: value.KindInt}})
	for _, v := range vals {
		b.MustAppend(value.Int(v))
	}
	for i := 0; i < nulls; i++ {
		b.MustAppend(value.Null)
	}
	s, err := schema.New([]*table.Table{b.MustBuild()}, "t", nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSelectivityMatchesDirectCount: with ample bins/MCVs the statistics
// reproduce single-column predicate counts nearly exactly.
func TestSelectivityMatchesDirectCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 500)
	for i := range vals {
		vals[i] = int64(rng.Intn(40))
	}
	s := singleColSchema(t, vals, 25)
	est := New(s, Config{Bins: 64, MCVs: 64})
	total := float64(len(vals) + 25)
	for _, tc := range []struct {
		op  query.Op
		lit int64
	}{
		{query.OpEq, 7}, {query.OpLt, 20}, {query.OpGe, 30}, {query.OpLe, 0}, {query.OpGt, 39},
	} {
		q := query.Query{Tables: []string{"t"}, Filters: []query.Filter{
			{Table: "t", Col: "c", Op: tc.op, Val: value.Int(tc.lit)},
		}}
		got, err := est.Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for _, v := range vals {
			var m bool
			switch tc.op {
			case query.OpEq:
				m = v == tc.lit
			case query.OpLt:
				m = v < tc.lit
			case query.OpLe:
				m = v <= tc.lit
			case query.OpGt:
				m = v > tc.lit
			case query.OpGe:
				m = v >= tc.lit
			}
			if m {
				want++
			}
		}
		if want < 1 {
			want = 1
		}
		if math.Abs(got-want) > 0.05*total {
			t.Errorf("%s %d: estimate %v, true %v", tc.op, tc.lit, got, want)
		}
	}
}

// TestIndependenceAssumptionFails: on perfectly correlated columns the
// histogram estimator underestimates conjunctions — the documented failure
// mode the paper's comparison relies on.
func TestIndependenceAssumptionFails(t *testing.T) {
	b := table.MustBuilder("t", []table.ColSpec{
		{Name: "x", Kind: value.KindInt},
		{Name: "y", Kind: value.KindInt},
	})
	for i := 0; i < 400; i++ {
		v := int64(i % 8)
		b.MustAppend(value.Int(v), value.Int(v)) // y ≡ x
	}
	s, err := schema.New([]*table.Table{b.MustBuild()}, "t", nil)
	if err != nil {
		t.Fatal(err)
	}
	est := New(s, DefaultConfig())
	q := query.Query{Tables: []string{"t"}, Filters: []query.Filter{
		{Table: "t", Col: "x", Op: query.OpEq, Val: value.Int(3)},
		{Table: "t", Col: "y", Op: query.OpEq, Val: value.Int(3)},
	}}
	got, err := est.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	// True cardinality is 50; independence predicts 400·(1/8)² = 6.25.
	if got > 15 {
		t.Errorf("estimate %v — expected a strong underestimate (truth 50, AVI ≈ 6.25)", got)
	}
}

// TestJoinFormula: the Selinger estimate matches the exact size for a
// uniform key distribution (where the formula's assumptions hold).
func TestJoinFormula(t *testing.T) {
	a := table.MustBuilder("a", []table.ColSpec{{Name: "k", Kind: value.KindInt}})
	bb := table.MustBuilder("b", []table.ColSpec{{Name: "k", Kind: value.KindInt}})
	for i := 0; i < 100; i++ {
		a.MustAppend(value.Int(int64(i % 10)))
	}
	for i := 0; i < 60; i++ {
		bb.MustAppend(value.Int(int64(i % 10)))
	}
	s, err := schema.New(
		[]*table.Table{a.MustBuild(), bb.MustBuild()},
		"a",
		[]schema.Edge{{LeftTable: "a", LeftCol: "k", RightTable: "b", RightCol: "k"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	est := New(s, DefaultConfig())
	got, err := est.Estimate(query.Query{Tables: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	// Exact: 100·60/10 = 600; Selinger: 100·60/max(10,10) = 600.
	if math.Abs(got-600) > 1 {
		t.Errorf("join estimate %v, want 600", got)
	}
}

func TestAnalyzeEdgeCases(t *testing.T) {
	// All-NULL column.
	s := singleColSchema(t, nil, 10)
	est := New(s, DefaultConfig())
	got, err := est.Estimate(query.Query{Tables: []string{"t"}, Filters: []query.Filter{
		{Table: "t", Col: "c", Op: query.OpGe, Val: value.Int(0)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("all-NULL column estimate %v, want clamp to 1", got)
	}
	// Empty table.
	b := table.MustBuilder("e", []table.ColSpec{{Name: "c", Kind: value.KindInt}})
	se, err := schema.New([]*table.Table{b.MustBuild()}, "e", nil)
	if err != nil {
		t.Fatal(err)
	}
	est = New(se, DefaultConfig())
	if got, err := est.Estimate(query.Query{Tables: []string{"e"}}); err != nil || got != 1 {
		t.Errorf("empty table estimate = %v, %v", got, err)
	}
}
