// Package histogram implements the "real DBMS" baseline of §7.2: per-column
// statistics in the style of Postgres — most-common-value lists, equi-depth
// histograms, null fractions, and distinct counts — combined with the
// textbook independence heuristics: attribute-value independence across
// columns (selectivities multiply) and Selinger join selectivity
// 1/max(ndv_left, ndv_right) per equi-join edge.
//
// Its error profile is the point: single-column statistics are individually
// accurate, but the independence assumptions ignore exactly the
// correlations the synthetic IMDB plants, producing the systematically
// biased medians Table 2-4 report for Postgres.
package histogram

import (
	"fmt"
	"sort"

	"neurocard/internal/query"
	"neurocard/internal/schema"
	"neurocard/internal/table"
)

// Config sets the statistics resolution (Postgres defaults: 100 bins / MCVs).
type Config struct {
	Bins int // equi-depth histogram buckets per column
	MCVs int // most-common-value list length
}

// DefaultConfig mirrors Postgres' default_statistics_target = 100.
func DefaultConfig() Config { return Config{Bins: 100, MCVs: 100} }

type colStats struct {
	nullFrac float64
	ndv      float64
	mcvIDs   []int32   // dictionary IDs of the most common values
	mcvFreq  []float64 // fraction of all rows
	mcvTotal float64
	// Equi-depth histogram over the remaining (non-NULL, non-MCV) IDs:
	// bounds[i] .. bounds[i+1] each hold histFrac/(len(bounds)-1) of rows.
	bounds   []int32
	histFrac float64
	histNDV  float64
}

// Estimator is the per-column-statistics baseline.
type Estimator struct {
	sch   *schema.Schema
	stats map[string]map[string]*colStats
	rows  map[string]float64
	bytes int
}

// New collects statistics for every column of every table (the ANALYZE
// pass).
func New(sch *schema.Schema, cfg Config) *Estimator {
	if cfg.Bins <= 0 {
		cfg.Bins = 100
	}
	if cfg.MCVs < 0 {
		cfg.MCVs = 0
	}
	e := &Estimator{
		sch:   sch,
		stats: make(map[string]map[string]*colStats),
		rows:  make(map[string]float64),
	}
	for _, tname := range sch.Tables() {
		t := sch.Table(tname)
		e.rows[tname] = float64(t.NumRows())
		e.stats[tname] = make(map[string]*colStats)
		for _, c := range t.Columns() {
			cs := analyze(c, cfg)
			e.stats[tname][c.Name()] = cs
			e.bytes += 4*(len(cs.mcvIDs)+len(cs.bounds)) + 8*len(cs.mcvFreq) + 32
		}
	}
	return e
}

func analyze(c *table.Column, cfg Config) *colStats {
	n := c.NumRows()
	cs := &colStats{}
	if n == 0 {
		return cs
	}
	freq := make(map[int32]int)
	nulls := 0
	for row := 0; row < n; row++ {
		id := c.ID(row)
		if id == table.NullID {
			nulls++
			continue
		}
		freq[id]++
	}
	cs.nullFrac = float64(nulls) / float64(n)
	cs.ndv = float64(len(freq))
	type vf struct {
		id int32
		f  int
	}
	all := make([]vf, 0, len(freq))
	for id, f := range freq {
		all = append(all, vf{id, f})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].f != all[j].f {
			return all[i].f > all[j].f
		}
		return all[i].id < all[j].id
	})
	k := cfg.MCVs
	if k > len(all) {
		k = len(all)
	}
	inMCV := make(map[int32]bool, k)
	for _, e := range all[:k] {
		cs.mcvIDs = append(cs.mcvIDs, e.id)
		f := float64(e.f) / float64(n)
		cs.mcvFreq = append(cs.mcvFreq, f)
		cs.mcvTotal += f
		inMCV[e.id] = true
	}
	// Histogram over remaining IDs, equi-depth on row mass.
	var rest []int32
	for row := 0; row < n; row++ {
		id := c.ID(row)
		if id != table.NullID && !inMCV[id] {
			rest = append(rest, id)
		}
	}
	cs.histFrac = float64(len(rest)) / float64(n)
	cs.histNDV = float64(len(all) - k)
	if len(rest) > 0 {
		sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
		bins := cfg.Bins
		if bins > len(rest) {
			bins = len(rest)
		}
		cs.bounds = append(cs.bounds, rest[0])
		for b := 1; b <= bins; b++ {
			idx := b*len(rest)/bins - 1
			cs.bounds = append(cs.bounds, rest[idx])
		}
	}
	return cs
}

// Bytes reports the statistics footprint.
func (e *Estimator) Bytes() int { return e.bytes }

// Name identifies the estimator in benchmark output.
func (e *Estimator) Name() string { return "postgres-hist" }

// Estimate applies filter selectivities (attribute independence) on top of
// the Selinger join-size formula.
func (e *Estimator) Estimate(q query.Query) (float64, error) {
	if err := e.sch.ValidateQuerySet(q.Tables); err != nil {
		return 0, err
	}
	card := 1.0
	inQuery := make(map[string]bool, len(q.Tables))
	for _, t := range q.Tables {
		card *= e.rows[t]
		inQuery[t] = true
	}
	// Join selectivity per edge inside the query subtree.
	for _, t := range q.Tables {
		pe, ok := e.sch.Parent(t)
		if !ok || !inQuery[pe.Parent] {
			continue
		}
		left := e.stats[pe.Parent][pe.ParentCol]
		right := e.stats[t][pe.ChildCol]
		ndv := left.ndv
		if right.ndv > ndv {
			ndv = right.ndv
		}
		if ndv < 1 {
			ndv = 1
		}
		// NULL keys never join.
		card *= (1 - left.nullFrac) * (1 - right.nullFrac) / ndv
	}
	// Filter selectivities, multiplied under attribute independence.
	for _, f := range q.Filters {
		if !inQuery[f.Table] {
			return 0, fmt.Errorf("histogram: filter %s outside join", f)
		}
		t := e.sch.Table(f.Table)
		c := t.Col(f.Col)
		if c == nil {
			return 0, fmt.Errorf("histogram: unknown column %s.%s", f.Table, f.Col)
		}
		region, err := query.FilterRegion(c, f)
		if err != nil {
			return 0, err
		}
		card *= e.stats[f.Table][f.Col].regionSelectivity(region)
	}
	if card < 1 {
		card = 1
	}
	return card, nil
}

// regionSelectivity estimates the fraction of rows whose ID falls in the
// region: the null fraction when the region selects NULL (IS NULL, OR
// groups containing it), exact over the MCV list, interpolated over
// histogram buckets for the rest.
func (cs *colStats) regionSelectivity(region query.Region) float64 {
	if region.Empty() {
		return 0
	}
	sel := 0.0
	if region.Contains(table.NullID) {
		sel += cs.nullFrac
	}
	for i, id := range cs.mcvIDs {
		if region.Contains(id) {
			sel += cs.mcvFreq[i]
		}
	}
	if len(cs.bounds) >= 2 && cs.histFrac > 0 {
		perBin := cs.histFrac / float64(len(cs.bounds)-1)
		for b := 0; b+1 < len(cs.bounds); b++ {
			lo, hi := cs.bounds[b], cs.bounds[b+1]
			width := float64(hi-lo) + 1
			var overlap float64
			for _, iv := range region {
				olo, ohi := iv.Lo, iv.Hi
				if olo < lo {
					olo = lo
				}
				if ohi > hi {
					ohi = hi
				}
				if olo <= ohi {
					overlap += float64(ohi-olo) + 1
				}
			}
			if overlap > 0 {
				frac := overlap / width
				if frac > 1 {
					frac = 1
				}
				sel += perBin * frac
			}
		}
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}
