// Package samplecard is the Table 5 (E) ablation: uniform join samples as a
// standalone estimator, with no density model on top. Per query it draws
// simple random samples from the query's join graph using the Exact-Weight
// sampler (§4), executes the filters on them, and scales the hit fraction by
// the exact join-graph size. Its reasonable median but catastrophic tail
// (queries with zero hits) is what motivates layering an autoregressive
// model over the samples.
package samplecard

import (
	"fmt"
	"math/rand"

	"neurocard/internal/query"
	"neurocard/internal/sampler"
	"neurocard/internal/schema"
)

// Estimator answers queries from uniform join-graph samples only.
type Estimator struct {
	sch        *schema.Schema
	sampleSize int
	rng        *rand.Rand
	inner      map[string]*sampler.Inner
}

// New creates the sample-only estimator (the ablation uses 10^4 samples).
func New(sch *schema.Schema, sampleSize int, seed int64) *Estimator {
	if sampleSize <= 0 {
		sampleSize = 10000
	}
	return &Estimator{
		sch:        sch,
		sampleSize: sampleSize,
		rng:        rand.New(rand.NewSource(seed)),
		inner:      make(map[string]*sampler.Inner),
	}
}

// Name identifies the estimator in benchmark output.
func (e *Estimator) Name() string { return "join-samples-only" }

// Estimate draws uniform samples from the query's inner join and scales the
// filter hit rate by the exact join size.
func (e *Estimator) Estimate(q query.Query) (float64, error) {
	key := fmt.Sprint(q.Tables)
	in, ok := e.inner[key]
	if !ok {
		sub, err := e.sch.SubSchema(q.Tables)
		if err != nil {
			return 0, err
		}
		in, err = sampler.NewInner(sub, nil)
		if err != nil {
			return 0, err
		}
		e.inner[key] = in
	}
	regions := make(map[string]map[string]query.Region, len(q.Tables))
	for _, t := range q.Tables {
		regs, err := query.TableRegions(e.sch.Table(t), q)
		if err != nil {
			return 0, err
		}
		regions[t] = regs
	}
	for _, f := range q.Filters {
		if !q.HasTable(f.Table) {
			return 0, fmt.Errorf("samplecard: filter %s outside join", f)
		}
	}
	if in.Count() == 0 {
		return 1, nil
	}
	order := in.Tables()
	row := make([]int32, len(order))
	hits := 0
	for i := 0; i < e.sampleSize; i++ {
		if !in.Sample(e.rng, row) {
			break
		}
		pass := true
		for ti, tname := range order {
			if !query.Matches(e.sch.Table(tname), regions[tname], int(row[ti])) {
				pass = false
				break
			}
		}
		if pass {
			hits++
		}
	}
	card := float64(hits) / float64(e.sampleSize) * in.Count()
	if card < 1 {
		card = 1
	}
	return card, nil
}
