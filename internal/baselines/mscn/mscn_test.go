package mscn

import (
	"math"
	"testing"

	"neurocard/internal/query"
	"neurocard/internal/schema"
	"neurocard/internal/table"
	"neurocard/internal/value"
	"neurocard/internal/workload"
)

func toySchema(t *testing.T) (*schema.Schema, map[string][]string) {
	t.Helper()
	a := table.MustBuilder("a", []table.ColSpec{
		{Name: "id", Kind: value.KindInt},
		{Name: "x", Kind: value.KindInt},
	})
	bld := table.MustBuilder("b", []table.ColSpec{
		{Name: "a_id", Kind: value.KindInt},
		{Name: "y", Kind: value.KindInt},
	})
	for i := 1; i <= 40; i++ {
		a.MustAppend(value.Int(int64(i)), value.Int(int64(i%10)))
		for j := 0; j < i%3; j++ {
			bld.MustAppend(value.Int(int64(i)), value.Int(int64((i+j)%7)))
		}
	}
	s, err := schema.New(
		[]*table.Table{a.MustBuild(), bld.MustBuild()},
		"a",
		[]schema.Edge{{LeftTable: "a", LeftCol: "id", RightTable: "b", RightCol: "a_id"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s, map[string][]string{"a": {"x"}, "b": {"y"}}
}

func TestFeaturize(t *testing.T) {
	s, cc := toySchema(t)
	est := New(s, cc, DefaultConfig())
	q := query.Query{
		Tables: []string{"a", "b"},
		Filters: []query.Filter{
			{Table: "a", Col: "x", Op: query.OpEq, Val: value.Int(3)},
			{Table: "b", Col: "y", Op: query.OpGe, Val: value.Int(2)},
		},
	}
	preds, joint, err := est.featurize(q)
	if err != nil {
		t.Fatal(err)
	}
	if preds.Rows != 2 {
		t.Errorf("predicate rows = %d", preds.Rows)
	}
	// Table one-hots both set; join edge bit set.
	if joint[est.tblIdx["a"]] != 1 || joint[est.tblIdx["b"]] != 1 {
		t.Error("table one-hot missing")
	}
	if joint[len(est.tblIdx)] != 1 {
		t.Error("join edge bit missing")
	}
	// Bitmaps: some sampled a rows fail x=3, so not all bits set.
	bitOff := len(est.tblIdx) + len(est.edges) + est.cfg.Hidden
	ones := 0
	for _, v := range joint[bitOff:] {
		if v == 1 {
			ones++
		}
	}
	if ones == 0 || ones == 2*est.cfg.BitmapSize {
		t.Errorf("bitmap degenerate: %d ones", ones)
	}
}

func TestFeaturizeErrors(t *testing.T) {
	s, cc := toySchema(t)
	est := New(s, cc, DefaultConfig())
	if _, _, err := est.featurize(query.Query{Tables: []string{"a"}, Filters: []query.Filter{
		{Table: "b", Col: "y", Op: query.OpEq, Val: value.Int(1)},
	}}); err == nil {
		t.Error("filter outside join accepted")
	}
	if _, _, err := est.featurize(query.Query{Tables: []string{"a"}, Filters: []query.Filter{
		{Table: "a", Col: "id", Op: query.OpEq, Val: value.Int(1)},
	}}); err == nil {
		t.Error("unfeaturized column accepted")
	}
}

// TestGradientCheck validates the MSCN backward pass (shared predicate MLP,
// average pooling, joint MLP) against finite differences.
func TestGradientCheck(t *testing.T) {
	s, cc := toySchema(t)
	cfg := DefaultConfig()
	cfg.Hidden = 6
	cfg.BitmapSize = 4
	est := New(s, cc, cfg)
	q := query.Query{
		Tables: []string{"a", "b"},
		Filters: []query.Filter{
			{Table: "a", Col: "x", Op: query.OpLe, Val: value.Int(5)},
			{Table: "b", Col: "y", Op: query.OpEq, Val: value.Int(2)},
		},
	}
	preds, joint, err := est.featurize(q)
	if err != nil {
		t.Fatal(err)
	}
	const target = 0.37
	st := est.forward(preds, joint)
	est.backward(st, target)
	loss := func() float64 {
		st := est.forward(preds, joint)
		d := st.out - target
		return 0.5 * d * d
	}
	const eps = 1e-6
	for _, p := range est.params {
		for i := range p.Val.Data {
			orig := p.Val.Data[i]
			p.Val.Data[i] = orig + eps
			up := loss()
			p.Val.Data[i] = orig - eps
			down := loss()
			p.Val.Data[i] = orig
			numeric := (up - down) / (2 * eps)
			analytic := p.Grad.Data[i]
			if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, i, analytic, numeric)
			}
		}
	}
}

// TestTrainFitsTrainingSet: the regressor memorizes a small training set —
// the basic supervised contract.
func TestTrainFitsTrainingSet(t *testing.T) {
	s, cc := toySchema(t)
	cfg := DefaultConfig()
	cfg.Epochs = 200
	cfg.Hidden = 32
	est := New(s, cc, cfg)
	var queries []workload.LabeledQuery
	for v := int64(0); v < 10; v++ {
		q := query.Query{
			Tables:  []string{"a"},
			Filters: []query.Filter{{Table: "a", Col: "x", Op: query.OpLe, Val: value.Int(v)}},
		}
		// Count directly.
		card := 0.0
		x := s.Table("a").MustCol("x")
		for r := 0; r < s.Table("a").NumRows(); r++ {
			if xv, ok := x.Int(r); ok && xv <= v {
				card++
			}
		}
		queries = append(queries, workload.LabeledQuery{Query: q, TrueCard: card})
	}
	if err := est.Train(queries); err != nil {
		t.Fatal(err)
	}
	for _, lq := range queries {
		got, err := est.Estimate(lq.Query)
		if err != nil {
			t.Fatal(err)
		}
		if qe := workload.QError(got, lq.TrueCard); qe > 2 {
			t.Errorf("%s: estimate %v vs true %v (q-error %.2f)", lq.Query, got, lq.TrueCard, qe)
		}
	}
}
