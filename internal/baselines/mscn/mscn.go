// Package mscn implements the supervised query-driven baseline of §7.2, a
// simplified Multi-Set Convolutional Network (Kipf et al.): queries are
// featurized as a table set, a join-edge set, a predicate set (column
// one-hot, operator one-hot, normalized literal bounds) plus per-table
// sample bitmaps; a shared MLP embeds predicates which are average-pooled
// and concatenated with the other features into a regressor predicting
// normalized log-cardinality. Trained with MSE on executed queries, it
// inherits the family's core weakness: accuracy degrades on queries unlike
// its training distribution, and tail errors stay large.
package mscn

import (
	"fmt"
	"math"
	"math/rand"

	"neurocard/internal/nn"
	"neurocard/internal/query"
	"neurocard/internal/schema"
	"neurocard/internal/workload"
)

// Config sets the network and training hyperparameters.
type Config struct {
	Hidden     int // width of the predicate and output MLPs
	Epochs     int
	LR         float64
	BitmapSize int // sampled rows per table for the bitmap features
	Seed       int64
}

// DefaultConfig mirrors the paper's setup scaled to CPU training.
func DefaultConfig() Config {
	return Config{Hidden: 64, Epochs: 60, LR: 1e-3, BitmapSize: 64, Seed: 1}
}

type colRef struct{ tbl, col string }

// Estimator is the trained MSCN regressor.
type Estimator struct {
	sch    *schema.Schema
	cfg    Config
	cols   []colRef
	colIdx map[colRef]int
	tblIdx map[string]int
	edges  []string // child table name identifies its parent edge

	samples map[string][]int32 // per table: bitmap sample rows

	predW, predB *nn.Param // predicate MLP: predIn → Hidden
	outW1, outB1 *nn.Param // joint MLP layer 1
	outW2, outB2 *nn.Param // joint MLP layer 2 → scalar
	params       []*nn.Param
	opt          *nn.Adam

	predIn, jointIn int
	minLog, maxLog  float64
	trained         bool
}

// New builds an untrained MSCN over the schema. contentCols declares the
// filterable columns (the predicate one-hot vocabulary).
func New(sch *schema.Schema, contentCols map[string][]string, cfg Config) *Estimator {
	if cfg.Hidden <= 0 {
		cfg.Hidden = 64
	}
	if cfg.BitmapSize <= 0 {
		cfg.BitmapSize = 64
	}
	e := &Estimator{
		sch:     sch,
		cfg:     cfg,
		colIdx:  make(map[colRef]int),
		tblIdx:  make(map[string]int),
		samples: make(map[string][]int32),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i, t := range sch.Tables() {
		e.tblIdx[t] = i
		for _, c := range contentCols[t] {
			ref := colRef{t, c}
			e.colIdx[ref] = len(e.cols)
			e.cols = append(e.cols, ref)
		}
		if _, ok := sch.Parent(t); ok {
			e.edges = append(e.edges, t)
		}
		// Materialized base-table sample for bitmap features.
		n := sch.Table(t).NumRows()
		rows := make([]int32, cfg.BitmapSize)
		for j := range rows {
			if n > 0 {
				rows[j] = int32(rng.Intn(n))
			}
		}
		e.samples[t] = rows
	}
	// Column one-hot, op-class one-hot (point, lower, upper, negation,
	// between, null-test), OR-group flag, normalized lo/hi bounds, and the
	// compiled region's coverage fraction.
	e.predIn = len(e.cols) + 6 + 1 + 2 + 1
	nT := len(e.tblIdx)
	e.jointIn = nT + len(e.edges) + cfg.Hidden + nT*cfg.BitmapSize

	e.predW = nn.NewParam("predW", e.predIn, cfg.Hidden)
	e.predB = nn.NewParam("predB", 1, cfg.Hidden)
	e.outW1 = nn.NewParam("outW1", e.jointIn, cfg.Hidden)
	e.outB1 = nn.NewParam("outB1", 1, cfg.Hidden)
	e.outW2 = nn.NewParam("outW2", cfg.Hidden, 1)
	e.outB2 = nn.NewParam("outB2", 1, 1)
	e.predW.InitHe(rng, e.predIn)
	e.outW1.InitHe(rng, e.jointIn)
	e.outW2.InitHe(rng, cfg.Hidden)
	e.params = []*nn.Param{e.predW, e.predB, e.outW1, e.outB1, e.outW2, e.outB2}
	e.opt = nn.NewAdam(cfg.LR)
	return e
}

// Name identifies the estimator in benchmark output.
func (e *Estimator) Name() string { return "mscn" }

// Bytes reports the model size (float32 accounting) including bitmaps.
func (e *Estimator) Bytes() int {
	n := 0
	for _, p := range e.params {
		n += p.NumParams()
	}
	return n*4 + len(e.samples)*e.cfg.BitmapSize/8
}

// featurize converts a query into (predicate rows, joint feature vector
// without the pooled block filled in).
func (e *Estimator) featurize(q query.Query) (*nn.Mat, []float64, error) {
	if err := e.sch.ValidateQuerySet(q.Tables); err != nil {
		return nil, nil, err
	}
	inQ := make(map[string]bool, len(q.Tables))
	for _, t := range q.Tables {
		inQ[t] = true
	}
	// Predicate set.
	preds := nn.NewMat(maxInt(1, len(q.Filters)), e.predIn)
	for i, f := range q.Filters {
		if !inQ[f.Table] {
			return nil, nil, fmt.Errorf("mscn: filter %s outside join", f)
		}
		ci, ok := e.colIdx[colRef{f.Table, f.Col}]
		if !ok {
			return nil, nil, fmt.Errorf("mscn: unfeaturized column %s.%s", f.Table, f.Col)
		}
		c := e.sch.Table(f.Table).Col(f.Col)
		region, err := query.FilterRegion(c, f)
		if err != nil {
			return nil, nil, err
		}
		row := preds.Row(i)
		row[ci] = 1
		opOff := len(e.cols)
		switch f.Op {
		case query.OpLe, query.OpLt:
			row[opOff+1] = 1
		case query.OpGe, query.OpGt:
			row[opOff+2] = 1
		case query.OpNeq, query.OpNotIn:
			row[opOff+3] = 1
		case query.OpBetween:
			row[opOff+4] = 1
		case query.OpIsNull, query.OpIsNotNull:
			row[opOff+5] = 1
		default: // OpEq, OpIn
			row[opOff] = 1
		}
		if len(f.Or) > 0 {
			row[opOff+6] = 1
		}
		lo, hi := 0.0, 1.0
		if !region.Empty() {
			den := float64(c.DictSize() - 1)
			if den < 1 {
				den = 1
			}
			lo = float64(region[0].Lo) / den
			hi = float64(region[len(region)-1].Hi) / den
		} else {
			lo, hi = 1, 0 // impossible range signals empty region
		}
		row[opOff+7] = lo
		row[opOff+8] = hi
		row[opOff+9] = float64(region.Count()) / float64(c.DictSize())
	}
	// Joint features (pooled predicate block left zero; filled by caller).
	joint := make([]float64, e.jointIn)
	for _, t := range q.Tables {
		joint[e.tblIdx[t]] = 1
	}
	nT := len(e.tblIdx)
	for i, child := range e.edges {
		pe, _ := e.sch.Parent(child)
		if inQ[child] && inQ[pe.Parent] {
			joint[nT+i] = 1
		}
	}
	// Bitmaps: per table in the query, filter its sample rows.
	bitOff := nT + len(e.edges) + e.cfg.Hidden
	for _, t := range q.Tables {
		regs, err := query.TableRegions(e.sch.Table(t), q)
		if err != nil {
			return nil, nil, err
		}
		base := bitOff + e.tblIdx[t]*e.cfg.BitmapSize
		for j, row := range e.samples[t] {
			if e.sch.Table(t).NumRows() == 0 {
				continue
			}
			if query.Matches(e.sch.Table(t), regs, int(row)) {
				joint[base+j] = 1
			}
		}
	}
	return preds, joint, nil
}

// forward computes the scalar prediction and (optionally) caches
// intermediates for backprop.
type fwdState struct {
	preds, predH *nn.Mat
	joint, h1    *nn.Mat
	out          float64
}

func (e *Estimator) forward(preds *nn.Mat, joint []float64) *fwdState {
	st := &fwdState{preds: preds}
	st.predH = nn.NewMat(preds.Rows, e.cfg.Hidden)
	nn.MatMul(st.predH, preds, e.predW.Val)
	nn.AddBias(st.predH, e.predB.Val.Row(0))
	nn.ReluInPlace(st.predH)
	// Average pool into the joint vector.
	st.joint = nn.NewMat(1, e.jointIn)
	copy(st.joint.Row(0), joint)
	poolOff := len(e.tblIdx) + len(e.edges)
	inv := 1 / float64(preds.Rows)
	for r := 0; r < preds.Rows; r++ {
		row := st.predH.Row(r)
		for k := 0; k < e.cfg.Hidden; k++ {
			st.joint.Row(0)[poolOff+k] += row[k] * inv
		}
	}
	st.h1 = nn.NewMat(1, e.cfg.Hidden)
	nn.MatMul(st.h1, st.joint, e.outW1.Val)
	nn.AddBias(st.h1, e.outB1.Val.Row(0))
	nn.ReluInPlace(st.h1)
	out := e.outB2.Val.At(0, 0)
	for k := 0; k < e.cfg.Hidden; k++ {
		out += st.h1.At(0, k) * e.outW2.Val.At(k, 0)
	}
	st.out = out
	return st
}

// backward accumulates gradients of 0.5·(out-target)² into the parameters.
func (e *Estimator) backward(st *fwdState, target float64) float64 {
	diff := st.out - target
	// out = h1·outW2 + outB2
	e.outB2.Grad.Data[0] += diff
	dh1 := nn.NewMat(1, e.cfg.Hidden)
	for k := 0; k < e.cfg.Hidden; k++ {
		e.outW2.Grad.Data[k] += diff * st.h1.At(0, k)
		dh1.Data[k] = diff * e.outW2.Val.At(k, 0)
	}
	nn.ReluBackward(dh1, st.h1)
	nn.BiasGradAdd(e.outB1.Grad.Row(0), dh1)
	nn.MatMulATAdd(e.outW1.Grad, st.joint, dh1)
	dJoint := nn.NewMat(1, e.jointIn)
	nn.MatMulBT(dJoint, dh1, e.outW1.Val)
	// Pool backward: gradient spreads uniformly over predicate rows.
	poolOff := len(e.tblIdx) + len(e.edges)
	inv := 1 / float64(st.preds.Rows)
	dPredH := nn.NewMat(st.preds.Rows, e.cfg.Hidden)
	for r := 0; r < st.preds.Rows; r++ {
		for k := 0; k < e.cfg.Hidden; k++ {
			dPredH.Set(r, k, dJoint.At(0, poolOff+k)*inv)
		}
	}
	nn.ReluBackward(dPredH, st.predH)
	nn.BiasGradAdd(e.predB.Grad.Row(0), dPredH)
	nn.MatMulATAdd(e.predW.Grad, st.preds, dPredH)
	return 0.5 * diff * diff
}

// Train fits the regressor on executed training queries (features → true
// cardinalities). Labels are log-normalized over the training set's range.
func (e *Estimator) Train(queries []workload.LabeledQuery) error {
	if len(queries) == 0 {
		return fmt.Errorf("mscn: no training queries")
	}
	e.minLog, e.maxLog = math.Inf(1), math.Inf(-1)
	for _, lq := range queries {
		l := math.Log(math.Max(lq.TrueCard, 1))
		e.minLog = math.Min(e.minLog, l)
		e.maxLog = math.Max(e.maxLog, l)
	}
	if e.maxLog-e.minLog < 1e-9 {
		e.maxLog = e.minLog + 1
	}
	type sample struct {
		preds *nn.Mat
		joint []float64
		y     float64
	}
	samples := make([]sample, 0, len(queries))
	for _, lq := range queries {
		preds, joint, err := e.featurize(lq.Query)
		if err != nil {
			return err
		}
		y := (math.Log(math.Max(lq.TrueCard, 1)) - e.minLog) / (e.maxLog - e.minLog)
		samples = append(samples, sample{preds, joint, y})
	}
	rng := rand.New(rand.NewSource(e.cfg.Seed + 17))
	const batch = 32
	for epoch := 0; epoch < e.cfg.Epochs; epoch++ {
		rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
		for start := 0; start < len(samples); start += batch {
			end := minInt(start+batch, len(samples))
			for _, s := range samples[start:end] {
				st := e.forward(s.preds, s.joint)
				e.backward(st, s.y)
			}
			nn.ClipGradNorm(e.params, 5)
			e.opt.Step(e.params)
		}
	}
	e.trained = true
	return nil
}

// Estimate predicts the cardinality of a query.
func (e *Estimator) Estimate(q query.Query) (float64, error) {
	if !e.trained {
		return 0, fmt.Errorf("mscn: estimator not trained")
	}
	preds, joint, err := e.featurize(q)
	if err != nil {
		return 0, err
	}
	st := e.forward(preds, joint)
	y := st.out
	card := math.Exp(y*(e.maxLog-e.minLog) + e.minLog)
	if card < 1 || math.IsNaN(card) {
		card = 1
	}
	return card, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
