package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"neurocard/internal/core"
	"neurocard/internal/datagen"
	"neurocard/internal/faultinject"
	"neurocard/internal/ingest"
	"neurocard/internal/query"
	"neurocard/internal/server"
	"neurocard/internal/value"
	"neurocard/internal/workload"
)

// ChaosLoad is the fault-injection acceptance experiment (`cmd/bench -exp
// chaos`): stand up the serving stack exactly as ServeLoad does, arm the
// fault injector (estimate panics, kernel delays, NaN estimates), and drive a
// mixed JSON/binary closed-loop load against it. The daemon must ride the
// faults out:
//
//   - zero malformed responses — every reply is either a well-formed estimate
//     (possibly degraded, served by the fallback) or a known error status
//     (429/500/503/504) with a JSON error body;
//   - the process survives — /livez answers afterwards, and with the faults
//     disarmed the model path recovers to healthy (non-degraded) serving;
//   - latency stays bounded — the armed kernel delays cannot push client p99
//     past the deadline budget plus slack, because expiry answers 504;
//   - torn checkpoint writes never corrupt serving state — an injected
//     truncation fails the save with the original bytes intact, and a corrupt
//     file fed to the registry is quarantined, not retried;
//   - torn journal writes never lose acknowledged rows — an injected tear
//     answers 503 un-acked and rolls back in place, and a cold replay of the
//     journal recovers exactly the acknowledged rows.
//
// Any violated invariant returns an error (the CI chaos job gates on it).
type ChaosResult struct {
	Requests  int   // chaos-phase requests issued
	OK        int64 // 200s served by the model
	Degraded  int64 // 200s served by the fallback estimator
	Faulted   int64 // known error statuses (429/500/503/504)
	Malformed int64 // invariant violations (must be 0)
	P99       time.Duration
	Report    string
}

// chaosSpec is the armed fault mix: 5% of estimates panic, 5% come back NaN,
// and 5% of sampling kernels stall 2ms (long enough to trip tight deadlines,
// short enough to keep the run in seconds).
const chaosSpec = "estimate-panic=0.05,estimate-nan=0.05,kernel-delay=0.05:2ms"

// chaosDeadline is the per-request budget the server enforces during the
// chaos phase; the p99 gate is this plus generous scheduling slack.
const chaosDeadline = 500 * time.Millisecond

func ChaosLoad(o Options) (*ChaosResult, error) {
	d, err := datagen.JOBLight(datagen.Config{Seed: o.Seed, Scale: o.DataScale})
	if err != nil {
		return nil, err
	}
	tuples := o.TrainTuples
	if tuples > 20*o.BatchSize {
		tuples = 20 * o.BatchSize
	}
	est, _, err := BuildNeuroCard(d, o.Model, tuples, o)
	if err != nil {
		return nil, err
	}

	dir, err := os.MkdirTemp("", "neurocard-chaos")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "joblight.ckpt")
	if err := core.WriteCheckpointFile(est, ckpt); err != nil {
		return nil, err
	}

	// Aggressive breaker so the run actually visits open/half-open states,
	// with a short cooldown so the recovery check converges quickly.
	srv := server.New(server.Config{
		ModelsDir:         dir,
		Workers:           o.EvalWorkers,
		RequestTimeout:    chaosDeadline,
		BreakerWindow:     16,
		BreakerMinSamples: 8,
		BreakerThreshold:  0.5,
		BreakerCooldown:   100 * time.Millisecond,
		BreakerProbes:     3,
		JournalDir:        filepath.Join(dir, "journals"),
	})
	defer srv.Close()
	if _, err := srv.Registry().Load("joblight", ckpt); err != nil {
		return nil, err
	}
	if _, err := srv.EnableIngest("joblight"); err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	wl, err := workload.JOBLight(d, o.Seed)
	if err != nil {
		return nil, err
	}
	wire := make([]server.QueryJSON, len(wl.Queries))
	queries := make([]query.Query, len(wl.Queries))
	for i, lq := range wl.Queries {
		queries[i] = lq.Query
		if wire[i], err = server.EncodeQuery(lq.Query); err != nil {
			return nil, err
		}
	}

	// ---- chaos phase ----
	spec, err := faultinject.ParseSpec(chaosSpec + fmt.Sprintf(",seed=%d", o.Seed))
	if err != nil {
		return nil, err
	}
	faultinject.Arm(spec)
	defer faultinject.Disarm()

	res := &ChaosResult{Requests: o.ServeRequests}
	lats, firstMalformed := chaosLoop(client, ts.URL, wire, queries, o.ServeClients, o.ServeRequests, res)
	stats := faultinject.ReadStats()
	faultinject.Disarm()

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		res.P99 = lats[len(lats)*99/100]
	}

	// The report reflects whatever was measured before a gate fired, so a
	// failing run still ships its evidence.
	var b strings.Builder
	defer func() { res.Report = b.String() }()
	fmt.Fprintf(&b, "Chaos load test (%d clients, %d requests, faults %s)\n",
		o.ServeClients, o.ServeRequests, chaosSpec)
	fmt.Fprintf(&b, "injected: %d panics, %d NaNs, %d kernel delays\n",
		stats.Panics, stats.NaNs, stats.Delays)
	fmt.Fprintf(&b, "responses: %d ok, %d degraded (fallback), %d faulted (known errors), %d malformed\n",
		res.OK, res.Degraded, res.Faulted, res.Malformed)
	fmt.Fprintf(&b, "client p99 %s (budget %s)\n", res.P99, chaosDeadline)

	// ---- invariants ----
	if res.Malformed > 0 {
		return res, fmt.Errorf("chaos: %d malformed responses (first: %v)", res.Malformed, firstMalformed)
	}
	if res.OK+res.Degraded+res.Faulted != int64(res.Requests) {
		return res, fmt.Errorf("chaos: response accounting broken: %d+%d+%d != %d",
			res.OK, res.Degraded, res.Faulted, res.Requests)
	}
	if p99Bound := chaosDeadline*4 + time.Second; res.P99 > p99Bound {
		return res, fmt.Errorf("chaos: client p99 %s exceeds bound %s", res.P99, p99Bound)
	}

	// The process must still be alive and, with faults disarmed, recover to
	// healthy model serving: the open breaker's probes re-admit the model
	// within a few cooldowns.
	if status, err := getStatus(client, ts.URL+"/livez"); err != nil || status != http.StatusOK {
		return res, fmt.Errorf("chaos: liveness after faults: status %d, err %v", status, err)
	}
	if err := awaitRecovery(client, ts.URL, &wire[0]); err != nil {
		return res, fmt.Errorf("chaos: %w", err)
	}
	fmt.Fprintf(&b, "recovery: healthy (non-degraded) serving restored after disarm\n")

	// ---- torn checkpoint phase ----
	if err := tornCheckpointPhase(srv, est, dir, o.Seed); err != nil {
		return res, fmt.Errorf("chaos: %w", err)
	}
	fmt.Fprintf(&b, "checkpoints: torn write left original intact; corrupt load quarantined\n")

	// ---- torn journal phase (closes the server: keep it last) ----
	if err := tornJournalPhase(srv, ts, client, dir, o.Seed); err != nil {
		return res, fmt.Errorf("chaos: %w", err)
	}
	fmt.Fprintf(&b, "journal: torn append not acked and rolled back; replay recovered every acked row\n")
	return res, nil
}

// chaosLoop drives the closed-loop chaos clients: even workers speak JSON,
// odd workers the binary protocol, and every third request carries a tight
// client deadline so the 504 path is exercised alongside the server budget.
// Responses are classified, never failed on: the loop's job is to prove every
// reply is well-formed, not that every reply succeeds.
func chaosLoop(client *http.Client, baseURL string, wire []server.QueryJSON, queries []query.Query, clients, requests int, res *ChaosResult) ([]time.Duration, error) {
	if clients < 1 {
		clients = 1
	}
	var next atomic.Int64
	var malformed atomic.Int64
	var ok, degraded, faulted atomic.Int64
	var firstErr atomic.Pointer[error]
	lats := make([]time.Duration, requests)
	record := func(err error) {
		if err == nil {
			return
		}
		malformed.Add(1)
		firstErr.CompareAndSwap(nil, &err)
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var frame []byte
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				deadline := ""
				if i%3 == 0 {
					deadline = "50"
				}
				t0 := time.Now()
				var outcome chaosOutcome
				var err error
				if c%2 == 1 {
					frame = server.AppendBinRequest(frame[:0], "", nil, queries[i%len(queries):i%len(queries)+1])
					outcome, err = chaosBinRequest(client, baseURL, frame, deadline)
				} else {
					outcome, err = chaosJSONRequest(client, baseURL, &wire[i%len(wire)], deadline)
				}
				lats[i] = time.Since(t0)
				record(err)
				switch outcome {
				case outcomeOK:
					ok.Add(1)
				case outcomeDegraded:
					degraded.Add(1)
				case outcomeFaulted:
					faulted.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	res.OK, res.Degraded, res.Faulted, res.Malformed = ok.Load(), degraded.Load(), faulted.Load(), malformed.Load()
	if p := firstErr.Load(); p != nil {
		return lats, *p
	}
	return lats, nil
}

type chaosOutcome int

const (
	outcomeMalformed chaosOutcome = iota
	outcomeOK
	outcomeDegraded
	outcomeFaulted
)

// chaosStatusKnown lists the error statuses the fault model may legitimately
// answer with: backpressure, unmasked model faults, open breaker, deadline.
func chaosStatusKnown(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// chaosJSONRequest issues one JSON estimate and classifies the reply.
func chaosJSONRequest(client *http.Client, baseURL string, q *server.QueryJSON, deadlineMs string) (chaosOutcome, error) {
	body, err := json.Marshal(server.EstimateRequest{Query: q})
	if err != nil {
		return outcomeMalformed, err
	}
	req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/estimate", bytes.NewReader(body))
	if err != nil {
		return outcomeMalformed, err
	}
	req.Header.Set("Content-Type", "application/json")
	if deadlineMs != "" {
		req.Header.Set("X-Deadline-Ms", deadlineMs)
	}
	resp, err := client.Do(req)
	if err != nil {
		return outcomeMalformed, fmt.Errorf("transport: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return outcomeMalformed, fmt.Errorf("read body: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		if !chaosStatusKnown(resp.StatusCode) {
			return outcomeMalformed, fmt.Errorf("unexpected status %d: %s", resp.StatusCode, raw)
		}
		var er struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &er) != nil || er.Error == "" {
			return outcomeMalformed, fmt.Errorf("status %d without JSON error body: %s", resp.StatusCode, raw)
		}
		return outcomeFaulted, nil
	}
	var er server.EstimateResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		return outcomeMalformed, fmt.Errorf("200 with undecodable body: %w", err)
	}
	if er.Est == nil {
		return outcomeMalformed, fmt.Errorf("200 single estimate without est: %s", raw)
	}
	if !finiteEstimate(*er.Est) {
		return outcomeMalformed, fmt.Errorf("200 carried insane estimate %g", *er.Est)
	}
	if er.Degraded {
		return outcomeDegraded, nil
	}
	return outcomeOK, nil
}

// chaosBinRequest issues one binary estimate and classifies the reply.
func chaosBinRequest(client *http.Client, baseURL string, frame []byte, deadlineMs string) (chaosOutcome, error) {
	req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/estimate", bytes.NewReader(frame))
	if err != nil {
		return outcomeMalformed, err
	}
	req.Header.Set("Content-Type", server.ContentTypeBinary)
	if deadlineMs != "" {
		req.Header.Set("X-Deadline-Ms", deadlineMs)
	}
	resp, err := client.Do(req)
	if err != nil {
		return outcomeMalformed, fmt.Errorf("transport: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return outcomeMalformed, fmt.Errorf("read body: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		if !chaosStatusKnown(resp.StatusCode) {
			return outcomeMalformed, fmt.Errorf("unexpected status %d: %s", resp.StatusCode, raw)
		}
		return outcomeFaulted, nil
	}
	br, err := server.DecodeBinResponse(raw)
	if err != nil {
		return outcomeMalformed, fmt.Errorf("200 with undecodable binary frame: %w", err)
	}
	if len(br.Ests) != 1 {
		return outcomeMalformed, fmt.Errorf("binary response carries %d results, want 1", len(br.Ests))
	}
	for i, e := range br.Errs {
		if e != "" {
			return outcomeMalformed, fmt.Errorf("binary 200 with per-query error %d: %s", i, e)
		}
	}
	if !finiteEstimate(br.Ests[0]) {
		return outcomeMalformed, fmt.Errorf("binary 200 carried insane estimate %g", br.Ests[0])
	}
	if br.Degraded {
		return outcomeDegraded, nil
	}
	return outcomeOK, nil
}

func finiteEstimate(est float64) bool {
	return !math.IsNaN(est) && !math.IsInf(est, 0) && est > 0
}

// awaitRecovery polls the estimate path after faults are disarmed until a
// healthy (non-degraded) answer arrives: the breaker's half-open probes must
// re-admit the recovered model within a few cooldowns.
func awaitRecovery(client *http.Client, baseURL string, q *server.QueryJSON) error {
	deadline := time.Now().Add(10 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		outcome, err := chaosJSONRequest(client, baseURL, q, "")
		if err == nil && outcome == outcomeOK {
			return nil
		}
		last = fmt.Sprintf("outcome %d, err %v", outcome, err)
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("model did not recover to healthy serving after disarm (last: %s)", last)
}

// getStatus fetches a URL and returns only its status code.
func getStatus(client *http.Client, url string) (int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// tornJournalPhase proves the ingest ack contract under injected torn journal
// writes: an append the fault tears mid-record must answer 503 WITHOUT being
// acknowledged (the partial record is rolled back in place), later appends
// keep working, and replaying the journal after shutdown recovers exactly the
// acknowledged rows — zero acknowledged-row loss, zero phantom rows. Closes
// the HTTP server and the serving stack: run it as the last phase.
func tornJournalPhase(srv *server.Server, ts *httptest.Server, client *http.Client, dir string, seed int64) error {
	entry, err := srv.Registry().Get("joblight")
	if err != nil {
		return err
	}
	mk := entry.Est.Schema().Table("movie_keyword")
	if mk == nil {
		return fmt.Errorf("journal phase: schema has no movie_keyword table")
	}
	batch := func(n int) []byte {
		rows := make([][]value.Value, n)
		for i := range rows {
			rows[i] = []value.Value{
				mk.MustCol("movie_id").ValueForID(int32(i % 3)),
				mk.MustCol("keyword_id").ValueForID(int32(i % 5)),
			}
		}
		return ingest.EncodeBatch(nil, &ingest.RowBatch{Tables: []ingest.TableRows{{
			Table: "movie_keyword", Columns: []string{"movie_id", "keyword_id"}, Rows: rows,
		}}})
	}
	post := func(frame []byte) (int, server.IngestResponse, error) {
		resp, err := client.Post(ts.URL+"/v1/models/joblight/ingest", server.ContentTypeBinary, bytes.NewReader(frame))
		if err != nil {
			return 0, server.IngestResponse{}, err
		}
		defer resp.Body.Close()
		var ir server.IngestResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
				return resp.StatusCode, ir, fmt.Errorf("ack body: %w", err)
			}
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		return resp.StatusCode, ir, nil
	}

	var acked uint64
	for i := 1; i <= 3; i++ {
		status, ir, err := post(batch(i))
		if err != nil || status != http.StatusOK || !ir.Durable {
			return fmt.Errorf("journal phase: append %d: status %d, resp %+v, err %v", i, status, ir, err)
		}
		acked += uint64(ir.Rows)
	}

	// Every append is torn mid-record while armed: the server must refuse to
	// ack, and the journal must roll the partial bytes back in place.
	spec, err := faultinject.ParseSpec(fmt.Sprintf("journal-torn-write=1,seed=%d", seed))
	if err != nil {
		return err
	}
	faultinject.Arm(spec)
	status, ir, err := post(batch(4))
	stats := faultinject.ReadStats()
	faultinject.Disarm()
	if err != nil {
		return fmt.Errorf("journal phase: torn append transport: %w", err)
	}
	if status != http.StatusServiceUnavailable {
		return fmt.Errorf("journal phase: torn append answered %d (resp %+v), want 503 unacked", status, ir)
	}
	if stats.JournalTears == 0 {
		return fmt.Errorf("journal phase: fault armed but no tear injected")
	}

	// The rollback keeps the journal appendable without a restart.
	status, ir, err = post(batch(2))
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("journal phase: append after tear: status %d, err %v", status, err)
	}
	acked += uint64(ir.Rows)

	// Shut the stack down and replay the journal cold, exactly like the next
	// daemon start: every acknowledged row must come back, and the torn,
	// never-acked batch must not.
	ts.Close()
	srv.Close()
	j, res, err := ingest.Open(filepath.Join(dir, "journals", "joblight"), ingest.Options{})
	if err != nil {
		return fmt.Errorf("journal phase: reopen: %w", err)
	}
	defer j.Close()
	if res.Rows != acked {
		return fmt.Errorf("journal phase: replay recovered %d rows, acked %d", res.Rows, acked)
	}
	if len(res.Quarantined) != 0 {
		return fmt.Errorf("journal phase: rolled-back tear left quarantine files: %v", res.Quarantined)
	}
	return nil
}

// tornCheckpointPhase proves crash-safety of checkpoint I/O under injected
// truncation: a torn atomic save must fail without touching the published
// file, and a corrupt checkpoint handed to the registry must be quarantined
// rather than loaded or retried.
func tornCheckpointPhase(srv *server.Server, est *core.Estimator, dir string, seed int64) error {
	ckpt := filepath.Join(dir, "joblight.ckpt")
	before, err := os.ReadFile(ckpt)
	if err != nil {
		return err
	}

	spec, err := faultinject.ParseSpec(fmt.Sprintf("ckpt-truncate=1,seed=%d", seed))
	if err != nil {
		return err
	}
	faultinject.Arm(spec)
	saveErr := core.WriteCheckpointFile(est, ckpt)
	faultinject.Disarm()
	if saveErr == nil {
		return fmt.Errorf("torn checkpoint save reported success")
	}
	after, err := os.ReadFile(ckpt)
	if err != nil {
		return fmt.Errorf("checkpoint gone after torn save: %w", err)
	}
	if !bytes.Equal(before, after) {
		return fmt.Errorf("torn save mutated the published checkpoint (%d -> %d bytes)", len(before), len(after))
	}

	// A corrupt file fed to the registry is moved aside, and the healthy
	// generation keeps serving.
	bad := filepath.Join(dir, "torn.ckpt")
	if err := os.WriteFile(bad, after[:len(after)/3], 0o644); err != nil {
		return err
	}
	if _, err := srv.Registry().Load("torn", bad); err == nil {
		return fmt.Errorf("registry loaded a truncated checkpoint")
	}
	if _, err := os.Stat(bad + ".corrupt"); err != nil {
		return fmt.Errorf("truncated checkpoint not quarantined: %w", err)
	}
	if srv.Registry().Quarantined() == 0 {
		return fmt.Errorf("quarantine counter did not move")
	}
	return nil
}
