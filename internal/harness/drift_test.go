package harness

import (
	"strings"
	"testing"
)

// TestDriftBenchSmoke runs the accuracy-under-drift experiment at the
// smallest scale that still trains a usable model. The three self-relative
// gates (recovery, degradation, staleness) are asserted inside RunDriftBench;
// a nil error is the pass. Everything is seeded, so this cannot flake.
func TestDriftBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("drift bench skipped in -short mode")
	}
	o := tiny()
	out, err := RunDriftBench(o, true, t.TempDir())
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"qerr_p95_predrift", "qerr_p95_stale", "qerr_p95_refreshed", "rows_appended", "drift gate passed", "wrote "} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
