package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"neurocard/internal/core"
	"neurocard/internal/datagen"
	"neurocard/internal/query"
	"neurocard/internal/server"
	"neurocard/internal/workload"
)

// ServeLoadResult carries the measured serving numbers for the benchmark
// gate, alongside the formatted report.
type ServeLoadResult struct {
	SingleQPS float64 // queries/sec, closed loop, batch size 1, JSON
	BinaryQPS float64 // queries/sec, closed loop, batch size 1, binary wire
	BatchQPS  float64 // queries/sec, closed loop, batched requests, JSON
	Report    string
}

// ServeLoad is the end-to-end serving experiment: train a NeuroCard, write a
// full-estimator checkpoint, load it into the HTTP serving daemon's handler
// (in-process listener), and drive a closed-loop load test — o.ServeClients
// concurrent clients, each issuing the next request the moment its previous
// one returns. Phase one sends single-query requests; phase two batches
// o.ServeBatch queries per request (the optimizer-traffic shape). Before
// measuring, it verifies the served estimates match the in-process
// estimator's to 1e-9 — the load test doubles as a checkpoint round-trip
// check over the wire.
func ServeLoad(o Options) (*ServeLoadResult, error) {
	d, err := datagen.JOBLight(datagen.Config{Seed: o.Seed, Scale: o.DataScale})
	if err != nil {
		return nil, err
	}
	// Serving cost does not depend on training quality; a short training run
	// keeps -exp serve in seconds while still exercising trained weights.
	tuples := o.TrainTuples
	if tuples > 20*o.BatchSize {
		tuples = 20 * o.BatchSize
	}
	est, _, err := BuildNeuroCard(d, o.Model, tuples, o)
	if err != nil {
		return nil, err
	}

	dir, err := os.MkdirTemp("", "neurocard-serve")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "joblight.ckpt")
	f, err := os.Create(ckpt)
	if err != nil {
		return nil, err
	}
	if err := core.SaveCheckpoint(est, f); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}

	srv := server.New(server.Config{ModelsDir: dir, Workers: o.EvalWorkers})
	defer srv.Close()
	if _, err := srv.Registry().Load("joblight", ckpt); err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	wl, err := workload.JOBLight(d, o.Seed)
	if err != nil {
		return nil, err
	}
	wire := make([]server.QueryJSON, len(wl.Queries))
	for i, lq := range wl.Queries {
		if wire[i], err = server.EncodeQuery(lq.Query); err != nil {
			return nil, err
		}
	}

	queries := make([]query.Query, len(wl.Queries))
	for i, lq := range wl.Queries {
		queries[i] = lq.Query
	}

	// Wire-level equivalence check: served seeded estimates must equal the
	// original estimator's to 1e-9, and the binary protocol must agree with
	// JSON bit-for-bit (the coalescer fuses both, so this also certifies
	// that coalescing does not perturb results).
	client := ts.Client()
	nCheck := 8
	if nCheck > len(wire) {
		nCheck = len(wire)
	}
	for i := 0; i < nCheck; i++ {
		seed := int64(4242)
		got, err := postEstimate(client, ts.URL, server.EstimateRequest{
			Query: &wire[i], Seed: &seed,
		})
		if err != nil {
			return nil, fmt.Errorf("serve-load equivalence query %d: %w", i, err)
		}
		want, err := est.EstimateSeededIndexed(wl.Queries[i].Query, seed, 0)
		if err != nil {
			return nil, err
		}
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			return nil, fmt.Errorf("serve-load equivalence query %d: served %.17g, in-process %.17g", i, got, want)
		}
		frame := server.AppendBinRequest(nil, "", &seed, queries[i:i+1])
		bgot, err := postBinEstimate(client, ts.URL, frame)
		if err != nil {
			return nil, fmt.Errorf("serve-load binary equivalence query %d: %w", i, err)
		}
		if bgot != got {
			return nil, fmt.Errorf("serve-load binary equivalence query %d: binary %.17g, json %.17g", i, bgot, got)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Serving load test (closed loop, %d clients, JOB-light scale %g)\n",
		o.ServeClients, o.DataScale)
	fmt.Fprintf(&b, "%-18s %10s %10s %12s %12s %12s %12s\n",
		"mode", "requests", "q/s", "p50", "p95", "p99", "max")
	row := func(mode string, s *loadStats) {
		fmt.Fprintf(&b, "%-18s %10d %10.1f %12s %12s %12s %12s\n",
			mode, s.requests, s.qps, s.p50, s.p95, s.p99, s.max)
	}

	res := &ServeLoadResult{}
	single, err := closedLoop(client, ts.URL, wire, queries, protoJSON, 1, o.ServeClients, o.ServeRequests)
	if err != nil {
		return nil, err
	}
	res.SingleQPS = single.qps
	row("single", single)

	binSingle, err := closedLoop(client, ts.URL, wire, queries, protoBinary, 1, o.ServeClients, o.ServeRequests)
	if err != nil {
		return nil, err
	}
	res.BinaryQPS = binSingle.qps
	row("single-bin", binSingle)

	batchReqs := o.ServeRequests / o.ServeBatch
	if batchReqs < o.ServeClients {
		batchReqs = o.ServeClients
	}
	batch, err := closedLoop(client, ts.URL, wire, queries, protoJSON, o.ServeBatch, o.ServeClients, batchReqs)
	if err != nil {
		return nil, err
	}
	res.BatchQPS = batch.qps
	row(fmt.Sprintf("batch-%d", o.ServeBatch), batch)

	binBatch, err := closedLoop(client, ts.URL, wire, queries, protoBinary, o.ServeBatch, o.ServeClients, batchReqs)
	if err != nil {
		return nil, err
	}
	row(fmt.Sprintf("batch-%d-bin", o.ServeBatch), binBatch)

	// The load test round-robins a fixed workload, so after the first pass
	// every estimate should hit the compiled-plan cache; report the rate so
	// a keying or eviction regression is visible right in `-exp serve`.
	if entry, err := srv.Registry().Get(""); err == nil {
		s := entry.Est.PlanCacheStats()
		if total := s.Hits + s.Misses; total > 0 {
			fmt.Fprintf(&b, "plan cache: %d hits / %d misses (%.1f%% hit rate, %d cached)\n",
				s.Hits, s.Misses, 100*float64(s.Hits)/float64(total), s.Size)
		}
	}

	res.Report = b.String()
	return res, nil
}

// loadStats aggregates one closed-loop phase.
type loadStats struct {
	requests           int
	qps                float64
	p50, p95, p99, max time.Duration
}

// wireProto selects the request encoding a closed-loop phase drives.
type wireProto int

const (
	protoJSON wireProto = iota
	protoBinary
)

// closedLoop drives `clients` concurrent workers, each POSTing its next
// request (batchSize queries round-robin from the workload) as soon as the
// previous response arrives, until `requests` total requests have been
// issued. Request latencies are client-observed wall times. Binary workers
// reuse one frame buffer across requests, so the client side of the binary
// phase allocates nothing per request beyond the HTTP machinery.
func closedLoop(client *http.Client, baseURL string, wire []server.QueryJSON, queries []query.Query, proto wireProto, batchSize, clients, requests int) (*loadStats, error) {
	if clients < 1 {
		clients = 1
	}
	var next atomic.Int64
	lats := make([]time.Duration, requests)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var frame []byte
			qs := make([]query.Query, batchSize)
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				var err error
				t0 := time.Now()
				if proto == protoBinary {
					for j := 0; j < batchSize; j++ {
						qs[j] = queries[(i*batchSize+j)%len(queries)]
					}
					frame = server.AppendBinRequest(frame[:0], "", nil, qs)
					_, err = postBinEstimate(client, baseURL, frame)
				} else {
					var req server.EstimateRequest
					if batchSize == 1 {
						req.Query = &wire[i%len(wire)]
					} else {
						req.Queries = make([]server.QueryJSON, batchSize)
						for j := 0; j < batchSize; j++ {
							req.Queries[j] = wire[(i*batchSize+j)%len(wire)]
						}
					}
					_, err = postEstimate(client, baseURL, req)
				}
				if err != nil {
					errs[c] = fmt.Errorf("request %d: %w", i, err)
					return
				}
				lats[i] = time.Since(t0)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return &loadStats{
		requests: requests,
		qps:      float64(requests*batchSize) / elapsed.Seconds(),
		p50:      sorted[len(sorted)/2],
		p95:      sorted[len(sorted)*95/100],
		p99:      sorted[len(sorted)*99/100],
		max:      sorted[len(sorted)-1],
	}, nil
}

// postBinEstimate issues one binary-protocol estimate request and returns
// the first estimate.
func postBinEstimate(client *http.Client, baseURL string, frame []byte) (float64, error) {
	resp, err := client.Post(baseURL+"/v1/estimate", server.ContentTypeBinary, bytes.NewReader(frame))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		var er struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(body, &er)
		return 0, fmt.Errorf("status %d: %s", resp.StatusCode, er.Error)
	}
	br, err := server.DecodeBinResponse(body)
	if err != nil {
		return 0, err
	}
	if len(br.Ests) == 0 {
		return 0, fmt.Errorf("empty binary estimate response")
	}
	for i, e := range br.Errs {
		if e != "" {
			return 0, fmt.Errorf("query %d: %s", i, e)
		}
	}
	return br.Ests[0], nil
}

// postEstimate issues one estimate request and returns the first estimate.
func postEstimate(client *http.Client, baseURL string, req server.EstimateRequest) (float64, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(baseURL+"/v1/estimate", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var er struct {
		Est   *float64  `json:"est"`
		Ests  []float64 `json:"ests"`
		Error string    `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d: %s", resp.StatusCode, er.Error)
	}
	switch {
	case er.Est != nil:
		return *er.Est, nil
	case len(er.Ests) > 0:
		return er.Ests[0], nil
	default:
		return 0, fmt.Errorf("empty estimate response")
	}
}
