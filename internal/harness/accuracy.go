package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"neurocard/internal/core"
	"neurocard/internal/datagen"
	"neurocard/internal/workload"
)

// goldenSeed fixes the accuracy-gate workload independently of the harness
// seed: the gate compares runs against a committed baseline, so the query
// set must never drift with benchmark options.
const goldenSeed = 20260728

// goldenQueries is the size of the accuracy-gate workload.
const goldenQueries = 200

// f32QerrTolerance bounds how much worse the float32 serving path's golden
// p95 q-error may be than the float64 reference of the same run (0.10 =
// 10%). This is the float32 path's correctness gate: the bit-equivalence
// convention that guards the float64 kernels cannot apply across a width
// change, so the quantity that actually matters — estimate quality — is
// gated instead (DESIGN.md §1.4).
const f32QerrTolerance = 0.10

// shardQerrTolerance bounds how much worse the sharded (multi-estimator)
// serving path's golden p95 q-error may be than the monolithic model of the
// same run (1.0 = 2× the monolithic p95). Sharding trades accuracy on
// cross-shard joins — the combiner prices unfiltered crossings exactly but
// assumes filter selectivities are independent of the crossed join key — so
// the gate holds that trade to a factor instead of pretending it is free.
// Like the f32 gate this is a self-relative check: it needs no baseline
// entry and cannot drift with the model.
const shardQerrTolerance = 1.0

// CIAccuracyBench trains a CI-scale NeuroCard on the synthetic JOB-light
// dataset and scores it on the fixed-seed golden workload — 200 queries
// labeled by the exact executor, mixing classic conjunctive filters with
// disjunctive (OR groups), negated (≠, NOT IN), BETWEEN, and null-aware
// (IS [NOT] NULL) predicates. Metrics are q-error quantiles: machine-
// independent, and bit-reproducible because training and estimation are
// fully determined by the configured seed. RefScore is fixed at 1 — unlike
// the throughput benches there is no hardware drift to normalize away.
func CIAccuracyBench(o Options) (*BenchResult, error) {
	d, err := datagen.JOBLight(datagen.Config{Seed: o.Seed, Scale: o.DataScale})
	if err != nil {
		return nil, err
	}
	golden, err := workload.Golden(d, goldenQueries, goldenSeed)
	if err != nil {
		return nil, err
	}
	est, _, err := BuildNeuroCard(d, o.Model, o.TrainTuples, o)
	if err != nil {
		return nil, err
	}
	summary, _, err := EvaluateParallel(Named("neurocard", est), golden, o.EvalWorkers)
	if err != nil {
		return nil, err
	}
	// Same trained model, same workload, same (seed, index) randomness —
	// re-served at float32. The _f32 metrics quantify the full delta the
	// width change introduces (converted weights + float32 sampling
	// arithmetic); GateAccuracy holds the f32 p95 to within f32QerrTolerance
	// of this run's own float64 p95.
	if err := est.SetPrecision(core.PrecisionFloat32); err != nil {
		return nil, err
	}
	summary32, _, err := EvaluateParallel(Named("neurocard-f32", est), golden, o.EvalWorkers)
	if err != nil {
		return nil, err
	}
	// The same golden workload served by a two-shard fleet: per-shard
	// estimators trained on the partitioned schema, composed through the
	// manifest planner. The _sharded metrics quantify what sub-schema
	// routing plus cross-shard combining costs relative to this run's
	// monolithic model; GateAccuracy holds the sharded p95 to within
	// shardQerrTolerance of it.
	comp, _, _, err := BuildShardedNeuroCard(d, o.Model, o.TrainTuples, o, ShardedParts)
	if err != nil {
		return nil, err
	}
	summarySh, _, err := EvaluateParallel(Named("neurocard-sharded", comp), golden, o.EvalWorkers)
	if err != nil {
		return nil, err
	}
	metrics := map[string]float64{
		"qerr_median":         summary.Median,
		"qerr_p95":            summary.P95,
		"qerr_p99":            summary.P99,
		"qerr_max":            summary.Max,
		"qerr_median_f32":     summary32.Median,
		"qerr_p95_f32":        summary32.P95,
		"qerr_p99_f32":        summary32.P99,
		"qerr_max_f32":        summary32.Max,
		"qerr_median_sharded": summarySh.Median,
		"qerr_p95_sharded":    summarySh.P95,
		"qerr_p99_sharded":    summarySh.P99,
		"qerr_max_sharded":    summarySh.Max,
	}
	return &BenchResult{
		Bench:      "accuracy",
		GoVersion:  runtime.Version(),
		CPUs:       runtime.GOMAXPROCS(0),
		RefScore:   1,
		Metrics:    metrics,
		Normalized: metrics,
	}, nil
}

// GateAccuracy checks a current accuracy result two ways. Against the
// committed baseline: the gate fails when float64 p95 q-error grows by more
// than maxRegress (0.25 = 25%) — note the direction is inverted relative to
// the throughput gate, where smaller is worse. And self-relatively: the
// float32 serving path's p95 must stay within f32QerrTolerance of the same
// run's float64 p95 — a same-run comparison, so it needs no baseline entry
// and cannot drift with the model. The remaining quantiles are
// informational. A missing metric fails too: a gate that silently skips
// gates nothing.
func GateAccuracy(current, baseline *BenchResult, maxRegress float64) []string {
	var fails []string
	const key = "qerr_p95"
	base, okB := baseline.Metrics[key]
	cur, okC := current.Metrics[key]
	switch {
	case !okB:
		fails = append(fails, fmt.Sprintf("accuracy/%s: missing from baseline (update bench/baseline/%s)",
			key, BenchFileName("accuracy")))
	case !okC:
		fails = append(fails, fmt.Sprintf("accuracy/%s: missing from current run", key))
	case base < 1:
		fails = append(fails, fmt.Sprintf("accuracy/%s: invalid baseline %g (q-errors are ≥ 1)", key, base))
	case cur > base*(1+maxRegress):
		fails = append(fails, fmt.Sprintf("accuracy/%s: %0.4g vs baseline %0.4g (+%.1f%% > allowed %.0f%%)",
			key, cur, base, 100*(cur/base-1), 100*maxRegress))
	}
	const key32 = "qerr_p95_f32"
	cur32, ok32 := current.Metrics[key32]
	switch {
	case !ok32:
		fails = append(fails, fmt.Sprintf("accuracy/%s: missing from current run", key32))
	case okC && cur32 > cur*(1+f32QerrTolerance):
		fails = append(fails, fmt.Sprintf("accuracy/%s: %0.4g vs float64 %0.4g (+%.1f%% > allowed %.0f%%)",
			key32, cur32, cur, 100*(cur32/cur-1), 100*f32QerrTolerance))
	}
	const keySh = "qerr_p95_sharded"
	curSh, okSh := current.Metrics[keySh]
	switch {
	case !okSh:
		fails = append(fails, fmt.Sprintf("accuracy/%s: missing from current run", keySh))
	case okC && curSh > cur*(1+shardQerrTolerance):
		fails = append(fails, fmt.Sprintf("accuracy/%s: %0.4g vs monolithic %0.4g (%.2fx > allowed %.1fx)",
			keySh, curSh, cur, curSh/cur, 1+shardQerrTolerance))
	}
	return fails
}

// RunAccuracyBench measures accuracy on the golden workload, optionally
// writing BENCH_accuracy.json into outDir and gating p95 q-error against
// baselineDir. Unlike the throughput gate there is no CPU-count skip:
// q-errors at a fixed seed do not depend on the runner.
func RunAccuracyBench(o Options, writeJSON bool, outDir, baselineDir string, maxRegress float64) (string, error) {
	res, err := CIAccuracyBench(o)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(FormatBench(res))
	if writeJSON {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return b.String(), err
		}
		path := filepath.Join(outDir, BenchFileName(res.Bench))
		if err := WriteBenchJSON(path, res); err != nil {
			return b.String(), err
		}
		fmt.Fprintf(&b, "  wrote %s\n", path)
	}
	if baselineDir != "" {
		base, err := ReadBenchJSON(filepath.Join(baselineDir, BenchFileName(res.Bench)))
		if err != nil {
			return b.String(), fmt.Errorf("accuracy gate: %w", err)
		}
		if fails := GateAccuracy(res, base, maxRegress); len(fails) > 0 {
			return b.String(), fmt.Errorf("accuracy regression gate failed:\n  %s", strings.Join(fails, "\n  "))
		}
		fmt.Fprintf(&b, "accuracy gate passed (p95 threshold +%.0f%%)\n", 100*maxRegress)
	}
	return b.String(), nil
}
