package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"neurocard/internal/datagen"
	"neurocard/internal/workload"
)

// goldenSeed fixes the accuracy-gate workload independently of the harness
// seed: the gate compares runs against a committed baseline, so the query
// set must never drift with benchmark options.
const goldenSeed = 20260728

// goldenQueries is the size of the accuracy-gate workload.
const goldenQueries = 200

// CIAccuracyBench trains a CI-scale NeuroCard on the synthetic JOB-light
// dataset and scores it on the fixed-seed golden workload — 200 queries
// labeled by the exact executor, mixing classic conjunctive filters with
// disjunctive (OR groups), negated (≠, NOT IN), BETWEEN, and null-aware
// (IS [NOT] NULL) predicates. Metrics are q-error quantiles: machine-
// independent, and bit-reproducible because training and estimation are
// fully determined by the configured seed. RefScore is fixed at 1 — unlike
// the throughput benches there is no hardware drift to normalize away.
func CIAccuracyBench(o Options) (*BenchResult, error) {
	d, err := datagen.JOBLight(datagen.Config{Seed: o.Seed, Scale: o.DataScale})
	if err != nil {
		return nil, err
	}
	golden, err := workload.Golden(d, goldenQueries, goldenSeed)
	if err != nil {
		return nil, err
	}
	est, _, err := BuildNeuroCard(d, o.Model, o.TrainTuples, o)
	if err != nil {
		return nil, err
	}
	summary, _, err := EvaluateParallel(Named("neurocard", est), golden, o.EvalWorkers)
	if err != nil {
		return nil, err
	}
	metrics := map[string]float64{
		"qerr_median": summary.Median,
		"qerr_p95":    summary.P95,
		"qerr_p99":    summary.P99,
		"qerr_max":    summary.Max,
	}
	return &BenchResult{
		Bench:      "accuracy",
		GoVersion:  runtime.Version(),
		CPUs:       runtime.GOMAXPROCS(0),
		RefScore:   1,
		Metrics:    metrics,
		Normalized: metrics,
	}, nil
}

// GateAccuracy compares a current accuracy result against the committed
// baseline: the gate fails when p95 q-error grows by more than maxRegress
// (0.25 = 25%) — note the direction is inverted relative to the throughput
// gate, where smaller is worse. The remaining quantiles are informational.
// A missing metric fails too: a gate that silently skips gates nothing.
func GateAccuracy(current, baseline *BenchResult, maxRegress float64) []string {
	var fails []string
	const key = "qerr_p95"
	base, okB := baseline.Metrics[key]
	cur, okC := current.Metrics[key]
	switch {
	case !okB:
		fails = append(fails, fmt.Sprintf("accuracy/%s: missing from baseline (update bench/baseline/%s)",
			key, BenchFileName("accuracy")))
	case !okC:
		fails = append(fails, fmt.Sprintf("accuracy/%s: missing from current run", key))
	case base < 1:
		fails = append(fails, fmt.Sprintf("accuracy/%s: invalid baseline %g (q-errors are ≥ 1)", key, base))
	case cur > base*(1+maxRegress):
		fails = append(fails, fmt.Sprintf("accuracy/%s: %0.4g vs baseline %0.4g (+%.1f%% > allowed %.0f%%)",
			key, cur, base, 100*(cur/base-1), 100*maxRegress))
	}
	return fails
}

// RunAccuracyBench measures accuracy on the golden workload, optionally
// writing BENCH_accuracy.json into outDir and gating p95 q-error against
// baselineDir. Unlike the throughput gate there is no CPU-count skip:
// q-errors at a fixed seed do not depend on the runner.
func RunAccuracyBench(o Options, writeJSON bool, outDir, baselineDir string, maxRegress float64) (string, error) {
	res, err := CIAccuracyBench(o)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(FormatBench(res))
	if writeJSON {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return b.String(), err
		}
		path := filepath.Join(outDir, BenchFileName(res.Bench))
		if err := WriteBenchJSON(path, res); err != nil {
			return b.String(), err
		}
		fmt.Fprintf(&b, "  wrote %s\n", path)
	}
	if baselineDir != "" {
		base, err := ReadBenchJSON(filepath.Join(baselineDir, BenchFileName(res.Bench)))
		if err != nil {
			return b.String(), fmt.Errorf("accuracy gate: %w", err)
		}
		if fails := GateAccuracy(res, base, maxRegress); len(fails) > 0 {
			return b.String(), fmt.Errorf("accuracy regression gate failed:\n  %s", strings.Join(fails, "\n  "))
		}
		fmt.Fprintf(&b, "accuracy gate passed (p95 threshold +%.0f%%)\n", 100*maxRegress)
	}
	return b.String(), nil
}
