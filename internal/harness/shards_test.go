package harness

import (
	"testing"

	"neurocard/internal/datagen"
	"neurocard/internal/query"
	"neurocard/internal/value"
)

// TestBuildShardedNeuroCard exercises the parallel multi-shard fixture at
// the smallest scale: the auto-partition covers the schema, every shard
// trains, and the composed estimator is deterministic under the indexed
// interface (what parallel evaluation relies on).
func TestBuildShardedNeuroCard(t *testing.T) {
	if testing.Short() {
		t.Skip("shard fixture training skipped in -short mode")
	}
	o := tiny()
	o.TrainTuples = 8 * o.BatchSize
	d, err := datagen.JOBLight(datagen.Config{Seed: o.Seed, Scale: o.DataScale})
	if err != nil {
		t.Fatal(err)
	}
	comp, man, _, err := BuildShardedNeuroCard(d, o.Model, o.TrainTuples, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Shards) != 2 {
		t.Fatalf("auto-partition produced %d shards", len(man.Shards))
	}
	if got := len(man.Tables()); got != 6 {
		t.Fatalf("manifest covers %d tables, want 6", got)
	}

	queries := []query.Query{
		{Tables: []string{"title", "cast_info", "movie_keyword"}},
		{Tables: []string{"title", "movie_keyword"},
			Filters: []query.Filter{{Table: "title", Col: "production_year", Op: query.OpGe, Val: value.Int(1990)}}},
		{Tables: []string{"movie_keyword"}},
	}
	for i, q := range queries {
		pl, err := comp.Planner().Plan(q)
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		if len(pl.Subs) == 0 {
			t.Fatalf("plan %d has no sub-queries", i)
		}
		a, err := comp.EstimateIndexed(q, int64(i))
		if err != nil {
			t.Fatalf("estimate %d: %v", i, err)
		}
		b, err := comp.EstimateIndexed(q, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("query %d not deterministic: %.17g != %.17g", i, a, b)
		}
		if s, err := comp.EstimateIndexedSerial(q, int64(i)); err != nil || s != a {
			t.Fatalf("query %d serial variant: %.17g (err %v), want %.17g", i, s, err, a)
		}
		if a <= 0 {
			t.Fatalf("query %d estimate %g not positive", i, a)
		}
	}
}
