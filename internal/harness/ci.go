package harness

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"neurocard/internal/core"
	"neurocard/internal/datagen"
	"neurocard/internal/nn"
)

// BenchResult is one CI benchmark file (BENCH_serving.json /
// BENCH_training.json). Raw metrics are machine-dependent; the regression
// gate compares Normalized values — each raw metric divided by RefScore, a
// calibration microbenchmark measured in the same run — so a slower CI
// runner shifts both sides together instead of tripping the gate.
type BenchResult struct {
	Bench      string             `json:"bench"`
	GoVersion  string             `json:"go_version"`
	CPUs       int                `json:"cpus"`
	RefScore   float64            `json:"ref_score"`
	Metrics    map[string]float64 `json:"metrics"`
	Normalized map[string]float64 `json:"normalized"`
}

// RefScore measures a fixed dense-matmul workload (128³ multiply on the same
// kernels the estimator runs on) for ~300ms and returns matmuls/sec. It is
// the unit every gated metric is expressed in.
func RefScore() float64 {
	const dim = 128
	rng := rand.New(rand.NewSource(1))
	a, b, c := nn.NewMat(dim, dim), nn.NewMat(dim, dim), nn.NewMat(dim, dim)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
		b.Data[i] = rng.Float64()
	}
	// Warm up once, then measure.
	nn.MatMul(c, a, b)
	start := time.Now()
	n := 0
	for time.Since(start) < 300*time.Millisecond {
		nn.MatMul(c, a, b)
		n++
	}
	return float64(n) / time.Since(start).Seconds()
}

// normalize derives the gated metric map.
func normalize(metrics map[string]float64, ref float64) map[string]float64 {
	out := make(map[string]float64, len(metrics))
	for k, v := range metrics {
		out[k] = v / ref
	}
	return out
}

// CIServingBench measures serving throughput through the full HTTP stack
// (checkpoint save/load + closed-loop load test) at CI scale.
func CIServingBench(o Options) (*BenchResult, error) {
	ref := RefScore()
	res, err := ServeLoad(o)
	if err != nil {
		return nil, err
	}
	metrics := map[string]float64{
		"qps_single": res.SingleQPS,
		"qps_binary": res.BinaryQPS,
		"qps_batch":  res.BatchQPS,
	}
	return &BenchResult{
		Bench:      "serving",
		GoVersion:  runtime.Version(),
		CPUs:       runtime.GOMAXPROCS(0),
		RefScore:   ref,
		Metrics:    metrics,
		Normalized: normalize(metrics, ref),
	}, nil
}

// CITrainingBench measures the training hot path (sampler workers + batch
// ring + zero-alloc session) in tuples/sec at CI scale.
func CITrainingBench(o Options) (*BenchResult, error) {
	ref := RefScore()
	d, err := datagen.JOBLight(datagen.Config{Seed: o.Seed, Scale: o.DataScale})
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Model: o.Model, FactBits: o.FactBits, ContentCols: d.ContentCols,
		BatchSize: o.BatchSize, WildcardProb: 0.5, SamplerWorkers: o.SamplerWorkers,
		Seed: o.Seed, PSamples: o.PSamples,
	}
	est, err := core.Build(d.Schema, cfg)
	if err != nil {
		return nil, err
	}
	steps := 60
	tuples := steps * cfg.BatchSize
	// Warm-up pass (lazy caches, first allocations), then the measured run.
	if _, err := est.Train(5 * cfg.BatchSize); err != nil {
		return nil, err
	}
	start := time.Now()
	if _, err := est.Train(tuples); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	metrics := map[string]float64{
		"train_tuples_per_sec": float64(tuples) / elapsed.Seconds(),
	}
	return &BenchResult{
		Bench:      "training",
		GoVersion:  runtime.Version(),
		CPUs:       runtime.GOMAXPROCS(0),
		RefScore:   ref,
		Metrics:    metrics,
		Normalized: normalize(metrics, ref),
	}, nil
}

// WriteBenchJSON writes a result file (indented, trailing newline, stable
// key order via encoding/json map sorting).
func WriteBenchJSON(path string, r *BenchResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchJSON loads a result file.
func ReadBenchJSON(path string) (*BenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// BenchFileName returns the conventional file name for a bench kind.
func BenchFileName(bench string) string { return "BENCH_" + bench + ".json" }

// GateBench compares current against baseline and returns one line per
// normalized metric that regressed by more than maxRegress (0.20 = 20%).
// Metrics present on only one side are reported as failures too — a gate
// that silently skips a renamed metric gates nothing.
func GateBench(current, baseline *BenchResult, maxRegress float64) []string {
	var fails []string
	keys := make(map[string]bool)
	for k := range baseline.Normalized {
		keys[k] = true
	}
	for k := range current.Normalized {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		base, okB := baseline.Normalized[k]
		cur, okC := current.Normalized[k]
		switch {
		case !okB:
			fails = append(fails, fmt.Sprintf("%s/%s: missing from baseline (update bench/baseline/%s)",
				current.Bench, k, BenchFileName(current.Bench)))
		case !okC:
			fails = append(fails, fmt.Sprintf("%s/%s: missing from current run", current.Bench, k))
		case base <= 0:
			fails = append(fails, fmt.Sprintf("%s/%s: non-positive baseline %g", current.Bench, k, base))
		case cur < base*(1-maxRegress):
			fails = append(fails, fmt.Sprintf("%s/%s: normalized %0.4g vs baseline %0.4g (-%.1f%% > allowed %.0f%%)",
				current.Bench, k, cur, base, 100*(1-cur/base), 100*maxRegress))
		}
	}
	return fails
}

// FormatBench renders a result for logs: raw and normalized side by side.
func FormatBench(r *BenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CI bench %q (ref score %.1f matmuls/sec, %d CPUs, %s)\n",
		r.Bench, r.RefScore, r.CPUs, r.GoVersion)
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-24s %12.2f   (normalized %.5f)\n", k, r.Metrics[k], r.Normalized[k])
	}
	return b.String()
}

// RunCIBench runs both CI benchmarks, optionally writing JSON files into
// outDir and gating against baselineDir. It returns the combined report and
// an error when the gate fails.
func RunCIBench(o Options, writeJSON bool, outDir, baselineDir string, maxRegress float64) (string, error) {
	var b strings.Builder
	var fails []string
	if writeJSON {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return "", err
		}
	}
	for _, run := range []func(Options) (*BenchResult, error){CIServingBench, CITrainingBench} {
		res, err := run(o)
		if err != nil {
			return b.String(), err
		}
		b.WriteString(FormatBench(res))
		if writeJSON {
			path := filepath.Join(outDir, BenchFileName(res.Bench))
			if err := WriteBenchJSON(path, res); err != nil {
				return b.String(), err
			}
			fmt.Fprintf(&b, "  wrote %s\n", path)
		}
		if baselineDir != "" {
			basePath := filepath.Join(baselineDir, BenchFileName(res.Bench))
			base, err := ReadBenchJSON(basePath)
			if err != nil {
				return b.String(), fmt.Errorf("bench gate: %w", err)
			}
			if base.CPUs != res.CPUs {
				// ref_score normalization tracks single-machine drift well
				// but is not invariant across core counts (the calibration
				// matmul and the measured pipelines parallelize differently),
				// so a hard 20% gate against a different runner class would
				// flake in both directions. Skip loudly instead: the gate
				// bites once the baseline is regenerated on this runner class
				// (CI uploads the measured JSON as an artifact for exactly
				// that).
				fmt.Fprintf(&b, "  GATE SKIPPED for %q: baseline measured on %d CPUs, this run on %d — commit this run's %s (bench-results artifact) as the baseline for this runner class\n",
					res.Bench, base.CPUs, res.CPUs, BenchFileName(res.Bench))
				continue
			}
			fails = append(fails, GateBench(res, base, maxRegress)...)
		}
	}
	if len(fails) > 0 {
		return b.String(), fmt.Errorf("benchmark regression gate failed:\n  %s", strings.Join(fails, "\n  "))
	}
	if baselineDir != "" {
		fmt.Fprintf(&b, "bench gate passed (threshold %.0f%%)\n", 100*maxRegress)
	}
	return b.String(), nil
}
