package harness

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"neurocard/internal/datagen"
	"neurocard/internal/exec"
	"neurocard/internal/ingest"
	"neurocard/internal/server"
	"neurocard/internal/table"
	"neurocard/internal/value"
	"neurocard/internal/workload"

	"neurocard/internal/core"
)

// The accuracy-under-drift gate (`cmd/bench -exp drift`) answers the §7.6
// question for the ingest path: after the data distribution shifts, is a
// model refreshed through the write-ahead journal measurably better than the
// stale one, and close to pre-drift quality?
//
// All three gates are self-relative (same run, same seed, exact labels), so
// the experiment needs no committed baseline and cannot drift with the model:
//
//   - recovery: the refreshed model's p95 q-error on the post-drift workload
//     stays within driftRecoveryFactor of the same model's PRE-drift p95 —
//     absorbing the journal restores estimate quality;
//   - degradation: the stale model's post-drift p95 exceeds the refreshed
//     model's by at least driftStaleMargin — if serving stale were just as
//     good, the whole refresh pipeline would be dead weight;
//   - staleness is real: the stale p95 also exceeds its own pre-drift p95 —
//     the injected skew actually moved the answers.
const (
	driftRecoveryFactor = 1.5  // refreshed p95 ≤ 1.5 × pre-drift p95
	driftStaleMargin    = 1.10 // stale p95 ≥ 1.10 × refreshed p95
)

// driftAppendFactor sizes the skewed append relative to the table it lands
// on (1.0 = double movie_keyword), capped by the fanout headroom below.
const driftAppendFactor = 1.0

// driftIngestBatchRows bounds rows per ingest request, so the journal phase
// exercises multiple appends instead of one giant batch.
const driftIngestBatchRows = 512

// CIDriftBench runs the drift experiment end to end THROUGH the serving
// stack: train, checkpoint, serve; score the golden workload pre-drift; pour
// a skewed append through POST /ingest (durable journal acks); refresh into a
// new generation; relabel the workload on the drifted data with the exact
// executor; score the stale and refreshed models against the new truth.
func CIDriftBench(o Options) (*BenchResult, error) {
	d, err := datagen.JOBLight(datagen.Config{Seed: o.Seed, Scale: o.DataScale})
	if err != nil {
		return nil, err
	}
	golden, err := workload.Golden(d, goldenQueries, goldenSeed)
	if err != nil {
		return nil, err
	}
	est, _, err := BuildNeuroCard(d, o.Model, o.TrainTuples, o)
	if err != nil {
		return nil, err
	}
	preDrift, _, err := EvaluateParallel(Named("neurocard", est), golden, o.EvalWorkers)
	if err != nil {
		return nil, err
	}

	// Serve the trained model with ingest enabled. The registry loads its own
	// copy from the checkpoint; `est` stays frozen as the stale reference.
	dir, err := os.MkdirTemp("", "neurocard-drift")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if err := core.WriteCheckpointFile(est, filepath.Join(dir, "joblight.ckpt")); err != nil {
		return nil, err
	}
	srv := server.New(server.Config{
		ModelsDir:  dir,
		Workers:    o.EvalWorkers,
		JournalDir: filepath.Join(dir, "journals"),
	})
	defer srv.Close()
	if _, err := srv.Registry().Load("joblight", ""); err != nil {
		return nil, err
	}
	if _, err := srv.EnableIngest("joblight"); err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Skew two fact tables so the shift is visible across most of the golden
	// join graphs, not only the ones touching movie_keyword.
	var appended uint64
	for _, t := range []struct {
		name string
		cols []string
	}{
		{"movie_keyword", []string{"movie_id", "keyword_id"}},
		{"movie_companies", []string{"movie_id", "company_id", "company_type_id"}},
	} {
		n, err := driftIngest(ts, est.Schema().Table(t.name), t.name, t.cols)
		if err != nil {
			return nil, err
		}
		appended += n
	}
	refresh, err := srv.RefreshModel("joblight", o.TrainTuples/4)
	if err != nil {
		return nil, err
	}
	if !refresh.Refreshed || refresh.Rows != appended {
		return nil, fmt.Errorf("drift: refresh absorbed %d rows of %d appended (%+v)", refresh.Rows, appended, refresh)
	}
	entry, err := srv.Registry().Get("joblight")
	if err != nil {
		return nil, err
	}
	refreshed := entry.Est

	// Relabel the same queries on the drifted data — the exact executor over
	// the refreshed model's merged schema is the new ground truth.
	drifted := &workload.Workload{Name: golden.Name + "-drifted", Queries: make([]workload.LabeledQuery, len(golden.Queries))}
	for i, lq := range golden.Queries {
		card, err := exec.Cardinality(refreshed.Schema(), lq.Query)
		if err != nil {
			return nil, fmt.Errorf("drift: relabel %s: %w", lq.Query, err)
		}
		inner, err := exec.InnerJoinSize(refreshed.Schema(), lq.Query.Tables)
		if err != nil {
			return nil, fmt.Errorf("drift: relabel %s: %w", lq.Query, err)
		}
		drifted.Queries[i] = workload.LabeledQuery{Query: lq.Query, TrueCard: card, InnerSize: inner}
	}

	stale, _, err := EvaluateParallel(Named("neurocard-stale", est), drifted, o.EvalWorkers)
	if err != nil {
		return nil, err
	}
	fresh, _, err := EvaluateParallel(Named("neurocard-refreshed", refreshed), drifted, o.EvalWorkers)
	if err != nil {
		return nil, err
	}

	checkpointed := 0.0
	if refresh.Checkpointed {
		checkpointed = 1
	}
	metrics := map[string]float64{
		"qerr_median_predrift":  preDrift.Median,
		"qerr_p95_predrift":     preDrift.P95,
		"qerr_max_predrift":     preDrift.Max,
		"qerr_median_stale":     stale.Median,
		"qerr_p95_stale":        stale.P95,
		"qerr_max_stale":        stale.Max,
		"qerr_median_refreshed": fresh.Median,
		"qerr_p95_refreshed":    fresh.P95,
		"qerr_max_refreshed":    fresh.Max,
		"rows_appended":         float64(appended),
		"refresh_checkpointed":  checkpointed,
	}
	return &BenchResult{
		Bench:      "drift",
		GoVersion:  runtime.Version(),
		CPUs:       runtime.GOMAXPROCS(0),
		RefScore:   1,
		Metrics:    metrics,
		Normalized: metrics,
	}, nil
}

// driftIngest appends a hotspot-inversion skew to one fact table through the
// real ingest endpoint (binary wire, durable journal acks): previously COLD
// movie ids are filled up to the table's trained maximum fanout, coldest
// first, so join cardinalities through those keys inflate sharply while the
// rest of the distribution is untouched. cols[0] must be the movie_id join
// key; the remaining content columns cycle their dictionaries. Staying within
// the trained fanout domain matters twice over — the drift remains
// representable by the frozen encoder (so a fine-tuned refresh CAN recover,
// which is what the gate measures), and the refresh stays checkpointable.
func driftIngest(ts *httptest.Server, tbl *table.Table, name string, cols []string) (uint64, error) {
	if tbl == nil {
		return 0, fmt.Errorf("drift: schema has no %s table", name)
	}
	movieID := tbl.MustCol(cols[0])
	counts := make([]int, movieID.DictSize()) // per dictionary ID; [0] = NULL, unused
	for _, id := range movieID.IDs() {
		if id != table.NullID {
			counts[id]++
		}
	}
	maxFan := 0
	for _, c := range counts[1:] {
		if c > maxFan {
			maxFan = c
		}
	}
	// Coldest keys first (stable by ID: the plan must not depend on map
	// order), each filled to the trained maximum.
	order := make([]int32, 0, len(counts)-1)
	for id := int32(1); id < int32(len(counts)); id++ {
		order = append(order, id)
	}
	sort.SliceStable(order, func(i, j int) bool { return counts[order[i]] < counts[order[j]] })
	budget := int(float64(tbl.NumRows()) * driftAppendFactor)
	var plan []int32 // movie id per appended row
	for _, id := range order {
		for free := maxFan - counts[id]; free > 0 && len(plan) < budget; free-- {
			plan = append(plan, id)
		}
	}

	var appended uint64
	for sent := 0; sent < len(plan); {
		n := driftIngestBatchRows
		if rest := len(plan) - sent; rest < n {
			n = rest
		}
		rows := make([][]value.Value, n)
		for i := range rows {
			row := make([]value.Value, len(cols))
			row[0] = movieID.ValueForID(plan[sent+i])
			for ci := 1; ci < len(cols); ci++ {
				c := tbl.MustCol(cols[ci])
				// Dictionary IDs are 1-based (0 is NULL).
				row[ci] = c.ValueForID(int32((sent+i)%(c.DictSize()-1) + 1))
			}
			rows[i] = row
		}
		frame := ingest.EncodeBatch(nil, &ingest.RowBatch{Tables: []ingest.TableRows{{
			Table: name, Columns: cols, Rows: rows,
		}}})
		resp, err := http.Post(ts.URL+"/v1/models/joblight/ingest", server.ContentTypeBinary, bytes.NewReader(frame))
		if err != nil {
			return appended, err
		}
		ok := resp.StatusCode == http.StatusOK
		resp.Body.Close()
		if !ok {
			return appended, fmt.Errorf("drift: ingest %s batch at row %d: status %d", name, sent, resp.StatusCode)
		}
		appended += uint64(n)
		sent += n
	}
	return appended, nil
}

// GateDrift applies the three self-relative drift gates.
func GateDrift(r *BenchResult) []string {
	var fails []string
	pre, okPre := r.Metrics["qerr_p95_predrift"]
	st, okSt := r.Metrics["qerr_p95_stale"]
	fr, okFr := r.Metrics["qerr_p95_refreshed"]
	if !okPre || !okSt || !okFr {
		return []string{"drift: missing p95 metrics from current run"}
	}
	if fr > pre*driftRecoveryFactor {
		fails = append(fails, fmt.Sprintf("drift/recovery: refreshed p95 %0.4g vs pre-drift %0.4g (%.2fx > allowed %.1fx)",
			fr, pre, fr/pre, driftRecoveryFactor))
	}
	if st < fr*driftStaleMargin {
		fails = append(fails, fmt.Sprintf("drift/degradation: stale p95 %0.4g vs refreshed %0.4g (%.2fx < required %.2fx — refresh is not earning its keep)",
			st, fr, st/fr, driftStaleMargin))
	}
	if st <= pre {
		fails = append(fails, fmt.Sprintf("drift/staleness: stale p95 %0.4g did not exceed pre-drift %0.4g — the injected skew moved nothing",
			st, pre))
	}
	return fails
}

// RunDriftBench runs the drift experiment, optionally writing
// BENCH_drift.json into outDir, and applies the self-relative gates.
func RunDriftBench(o Options, writeJSON bool, outDir string) (string, error) {
	res, err := CIDriftBench(o)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(FormatBench(res))
	if writeJSON {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return b.String(), err
		}
		path := filepath.Join(outDir, BenchFileName(res.Bench))
		if err := WriteBenchJSON(path, res); err != nil {
			return b.String(), err
		}
		fmt.Fprintf(&b, "  wrote %s\n", path)
	}
	if fails := GateDrift(res); len(fails) > 0 {
		return b.String(), fmt.Errorf("drift gate failed:\n  %s", strings.Join(fails, "\n  "))
	}
	fmt.Fprintf(&b, "drift gate passed (recovery ≤ %.1fx pre-drift, stale ≥ %.2fx refreshed)\n",
		driftRecoveryFactor, driftStaleMargin)
	return b.String(), nil
}
