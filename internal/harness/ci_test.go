package harness

import (
	"path/filepath"
	"strings"
	"testing"
)

func benchResult(kind string, norm map[string]float64) *BenchResult {
	return &BenchResult{Bench: kind, RefScore: 1, Metrics: norm, Normalized: norm}
}

func TestGateBench(t *testing.T) {
	base := benchResult("serving", map[string]float64{"qps_single": 10, "qps_batch": 20})

	if fails := GateBench(benchResult("serving", map[string]float64{
		"qps_single": 9, "qps_batch": 17}), base, 0.20); len(fails) != 0 {
		t.Errorf("within-threshold run failed the gate: %v", fails)
	}
	fails := GateBench(benchResult("serving", map[string]float64{
		"qps_single": 7.9, "qps_batch": 20}), base, 0.20)
	if len(fails) != 1 || !strings.Contains(fails[0], "qps_single") {
		t.Errorf("regressed metric not caught: %v", fails)
	}
	// A metric missing from either side must fail rather than silently pass.
	if fails := GateBench(benchResult("serving", map[string]float64{
		"qps_single": 10}), base, 0.20); len(fails) != 1 {
		t.Errorf("missing current metric not caught: %v", fails)
	}
	if fails := GateBench(benchResult("serving", map[string]float64{
		"qps_single": 10, "qps_batch": 20, "qps_new": 1}), base, 0.20); len(fails) != 1 {
		t.Errorf("missing baseline metric not caught: %v", fails)
	}
	// Improvements never fail.
	if fails := GateBench(benchResult("serving", map[string]float64{
		"qps_single": 100, "qps_batch": 200}), base, 0.20); len(fails) != 0 {
		t.Errorf("improvement failed the gate: %v", fails)
	}
}

func TestGateAccuracy(t *testing.T) {
	base := benchResult("accuracy", map[string]float64{
		"qerr_median": 1.5, "qerr_p95": 4, "qerr_max": 40})

	// Within threshold (q-errors grow, but by < 25%; f32 within 10% and the
	// sharded path within 2x of the same run's float64) and improvements
	// pass.
	for _, cur := range []map[string]float64{
		{"qerr_median": 1.6, "qerr_p95": 4.9, "qerr_max": 100, "qerr_p95_f32": 5.3, "qerr_p95_sharded": 9.7},
		{"qerr_median": 1.1, "qerr_p95": 2, "qerr_max": 10, "qerr_p95_f32": 1.9, "qerr_p95_sharded": 1.5},
	} {
		if fails := GateAccuracy(benchResult("accuracy", cur), base, 0.25); len(fails) != 0 {
			t.Errorf("run %v failed the gate: %v", cur, fails)
		}
	}
	// p95 regression beyond threshold fails.
	fails := GateAccuracy(benchResult("accuracy", map[string]float64{
		"qerr_median": 1.5, "qerr_p95": 5.1, "qerr_max": 40, "qerr_p95_f32": 5.1, "qerr_p95_sharded": 5.1}), base, 0.25)
	if len(fails) != 1 || !strings.Contains(fails[0], "qerr_p95") {
		t.Errorf("p95 regression not caught: %v", fails)
	}
	// Float32 p95 drifting more than f32QerrTolerance past the same run's
	// float64 p95 fails, even when float64 itself is within the baseline.
	fails = GateAccuracy(benchResult("accuracy", map[string]float64{
		"qerr_p95": 4, "qerr_p95_f32": 4.5, "qerr_p95_sharded": 4}), base, 0.25)
	if len(fails) != 1 || !strings.Contains(fails[0], "qerr_p95_f32") {
		t.Errorf("f32 drift not caught: %v", fails)
	}
	// The sharded path drifting past shardQerrTolerance (2x) of the same
	// run's monolithic p95 fails on its own.
	fails = GateAccuracy(benchResult("accuracy", map[string]float64{
		"qerr_p95": 4, "qerr_p95_f32": 4, "qerr_p95_sharded": 8.5}), base, 0.25)
	if len(fails) != 1 || !strings.Contains(fails[0], "qerr_p95_sharded") {
		t.Errorf("sharded drift not caught: %v", fails)
	}
	// Missing metric on either side fails. An empty current run is missing
	// the float64, f32, and sharded p95s.
	if fails := GateAccuracy(benchResult("accuracy", map[string]float64{}), base, 0.25); len(fails) != 3 {
		t.Errorf("missing current p95s not caught: %v", fails)
	}
	if fails := GateAccuracy(benchResult("accuracy", map[string]float64{"qerr_p95": 4, "qerr_p95_sharded": 4}), base, 0.25); len(fails) != 1 ||
		!strings.Contains(fails[0], "qerr_p95_f32") {
		t.Errorf("missing current f32 p95 not caught: %v", fails)
	}
	if fails := GateAccuracy(benchResult("accuracy", map[string]float64{"qerr_p95": 4, "qerr_p95_f32": 4, "qerr_p95_sharded": 4}),
		benchResult("accuracy", map[string]float64{}), 0.25); len(fails) != 1 {
		t.Errorf("missing baseline p95 not caught: %v", fails)
	}
}

// TestAccuracyBenchSmoke runs the golden-workload accuracy bench end to end
// at the smallest scale: deterministic metrics, JSON written, gate pass
// against itself and fail against a tightened baseline.
func TestAccuracyBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy bench skipped in -short mode")
	}
	o := tiny()
	o.TrainTuples = 8 * o.BatchSize
	res, err := CIAccuracyBench(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"qerr_median", "qerr_p95", "qerr_p99", "qerr_max",
		"qerr_median_sharded", "qerr_p95_sharded", "qerr_p99_sharded", "qerr_max_sharded"} {
		v, ok := res.Metrics[k]
		if !ok || v < 1 {
			t.Fatalf("metric %s = %v (metrics %v)", k, v, res.Metrics)
		}
	}
	if res.Metrics["qerr_p95"] > res.Metrics["qerr_max"] {
		t.Fatalf("quantiles not monotone: %v", res.Metrics)
	}
	// The acceptance bound the self-gate enforces: the two-shard fleet's
	// golden p95 stays within 2x of the monolithic p95 of the same run.
	if sh, mono := res.Metrics["qerr_p95_sharded"], res.Metrics["qerr_p95"]; sh > 2*mono {
		t.Fatalf("sharded p95 %g exceeds 2x monolithic %g", sh, mono)
	}

	// Gate against itself via the full RunAccuracyBench path.
	dir := t.TempDir()
	if err := WriteBenchJSON(filepath.Join(dir, BenchFileName("accuracy")), res); err != nil {
		t.Fatal(err)
	}
	out, err := RunAccuracyBench(o, true, dir, dir, 0.25)
	if err != nil {
		t.Fatalf("self-gate failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "accuracy gate passed") {
		t.Errorf("missing pass line:\n%s", out)
	}

	// A tightened baseline must fail the gate.
	tight := *res
	tight.Metrics = map[string]float64{"qerr_p95": res.Metrics["qerr_p95"] / 2}
	if err := WriteBenchJSON(filepath.Join(dir, BenchFileName("accuracy")), &tight); err != nil {
		t.Fatal(err)
	}
	if _, err := RunAccuracyBench(o, false, dir, dir, 0.25); err == nil {
		t.Error("tightened baseline did not fail the gate")
	}
}

// TestServeLoadSmoke runs the closed-loop serving experiment at the smallest
// scale that exercises checkpoint save/load, the HTTP stack, both phases,
// and the built-in 1e-9 wire equivalence check.
func TestServeLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("serving load test skipped in -short mode")
	}
	o := tiny()
	o.TrainTuples = 4 * o.BatchSize
	o.ServeClients = 2
	o.ServeRequests = 16
	o.ServeBatch = 4
	res, err := ServeLoad(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.SingleQPS <= 0 || res.BatchQPS <= 0 {
		t.Fatalf("non-positive throughput: %+v", res)
	}
	for _, want := range []string{"single", "batch-4", "q/s"} {
		if !strings.Contains(res.Report, want) {
			t.Errorf("report missing %q:\n%s", want, res.Report)
		}
	}
}

func TestBenchJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, BenchFileName("serving"))
	in := &BenchResult{
		Bench: "serving", GoVersion: "go1.24.0", CPUs: 1, RefScore: 1000,
		Metrics:    map[string]float64{"qps_single": 64.5},
		Normalized: map[string]float64{"qps_single": 0.0645},
	}
	if err := WriteBenchJSON(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadBenchJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Bench != in.Bench || out.RefScore != in.RefScore ||
		out.Metrics["qps_single"] != in.Metrics["qps_single"] ||
		out.Normalized["qps_single"] != in.Normalized["qps_single"] {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	if _, err := ReadBenchJSON(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing baseline file read without error")
	}
}
