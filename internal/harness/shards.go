package harness

import (
	"fmt"
	"sync"
	"time"

	"neurocard/internal/core"
	"neurocard/internal/datagen"
	"neurocard/internal/made"
	"neurocard/internal/shard"
)

// ShardedParts is the JOB-light partition the harness fixtures use: the
// title hub stays with the heavily-filtered children, and movie_keyword —
// a single-column child whose keyword filter correlates least with the
// join key — detaches as its own shard. On a star schema every valid
// partition is "hub plus some children" against single-child shards (two
// detached children share no edge), and this split keeps the cross-shard
// independence assumption mild.
var ShardedParts = [][]string{
	{"title", "cast_info", "movie_companies", "movie_info", "movie_info_idx"},
	{"movie_keyword"},
}

// BuildShardedNeuroCard partitions the dataset's schema, trains one
// NeuroCard per shard concurrently (each shard gets the full tuple budget
// over its own sub-schema), and returns the composed estimator with its
// manifest. parts == nil auto-partitions into two shards.
func BuildShardedNeuroCard(d *datagen.Dataset, model made.Config, tuples int, o Options,
	parts [][]string) (*shard.Composite, *shard.Manifest, time.Duration, error) {
	if parts == nil {
		var err error
		if parts, err = shard.Partition(d.Schema, 2); err != nil {
			return nil, nil, 0, err
		}
	}
	man, err := shard.Build(d.Schema, "neurocard", parts)
	if err != nil {
		return nil, nil, 0, err
	}
	start := time.Now()
	ests := make(map[string]*core.Estimator, len(man.Shards))
	errs := make([]error, len(man.Shards))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, sp := range man.Shards {
		wg.Add(1)
		go func(i int, sp shard.Spec) {
			defer wg.Done()
			est, err := buildShardEstimator(d, sp, i, model, tuples, o)
			if err != nil {
				errs[i] = fmt.Errorf("shard %s: %w", sp.Name, err)
				return
			}
			mu.Lock()
			ests[sp.Name] = est
			mu.Unlock()
		}(i, sp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, 0, err
		}
	}
	comp, err := shard.NewComposite(man, ests)
	if err != nil {
		return nil, nil, 0, err
	}
	return comp, man, time.Since(start), nil
}

// buildShardEstimator trains one shard's estimator over the sub-schema
// induced by its tables, with the dataset's content columns restricted to
// them. The shard index offsets the training seed so shards draw distinct
// streams while the whole fleet stays reproducible from o.Seed.
func buildShardEstimator(d *datagen.Dataset, sp shard.Spec, idx int, model made.Config, tuples int, o Options) (*core.Estimator, error) {
	sub, err := d.Schema.SubSchema(sp.Tables)
	if err != nil {
		return nil, err
	}
	cc := make(map[string][]string, len(sp.Tables))
	for _, tb := range sp.Tables {
		if cols, ok := d.ContentCols[tb]; ok {
			cc[tb] = cols
		}
	}
	cfg := core.Config{
		Model:          model,
		FactBits:       o.FactBits,
		ContentCols:    cc,
		BatchSize:      o.BatchSize,
		WildcardProb:   0.5,
		SamplerWorkers: o.SamplerWorkers,
		Seed:           o.Seed + shardSeedStride*int64(idx),
		PSamples:       o.PSamples,
	}
	est, err := core.Build(sub, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := est.Train(tuples); err != nil {
		return nil, err
	}
	return est, nil
}

// shardSeedStride separates per-shard training seeds.
const shardSeedStride = 1_000_003
