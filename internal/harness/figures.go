package harness

import (
	"fmt"
	"strings"
	"time"

	"neurocard/internal/baselines/mscn"
	"neurocard/internal/baselines/spn"
	"neurocard/internal/core"
	"neurocard/internal/datagen"
	"neurocard/internal/workload"
)

// Figure7a reproduces "Accuracy vs Tuples Trained": p99 Q-error on both
// JOB-light workloads as training progresses through checkpoints.
func Figure7a(o Options) (string, error) {
	d, err := datagen.JOBLight(datagen.Config{Seed: o.Seed, Scale: o.DataScale})
	if err != nil {
		return "", err
	}
	light, err := workload.JOBLight(d, o.Seed)
	if err != nil {
		return "", err
	}
	rangesFull, err := workload.JOBLightRanges(d, o.RangesQueries, o.Seed+1)
	if err != nil {
		return "", err
	}
	ranges := subsetQueries(rangesFull, 100, o.Seed)

	cfg := core.Config{
		Model: o.Model, FactBits: o.FactBits, ContentCols: d.ContentCols,
		BatchSize: o.BatchSize, WildcardProb: 0.5, SamplerWorkers: o.SamplerWorkers,
		Seed: o.Seed, PSamples: o.PSamples,
	}
	est, err := core.Build(d.Schema, cfg)
	if err != nil {
		return "", err
	}
	const checkpoints = 7
	per := o.TrainTuples / checkpoints
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7a: Accuracy (p99 q-error) vs tuples trained\n")
	fmt.Fprintf(&b, "%12s %16s %16s\n", "tuples", "JOB-light", "JOB-light-ranges")
	for cp := 1; cp <= checkpoints; cp++ {
		if _, err := est.Train(per); err != nil {
			return "", err
		}
		sl, _, err := EvaluateParallel(Named("nc", est), light, o.EvalWorkers)
		if err != nil {
			return "", err
		}
		sr, _, err := EvaluateParallel(Named("nc", est), ranges, o.EvalWorkers)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%12d %16.3g %16.3g\n", cp*per, sl.P99, sr.P99)
	}
	return b.String(), nil
}

// Figure7b reproduces "Training Throughput vs Sampling Threads": end-to-end
// tuples/second of the sample→encode→gradient-step pipeline as the number
// of parallel sampling workers grows.
func Figure7b(o Options) (string, error) {
	d, err := datagen.JOBLight(datagen.Config{Seed: o.Seed, Scale: o.DataScale})
	if err != nil {
		return "", err
	}
	tuples := o.TrainTuples / 4
	if tuples < o.BatchSize*4 {
		tuples = o.BatchSize * 4
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7b: Training throughput vs sampling threads (%d tuples)\n", tuples)
	fmt.Fprintf(&b, "%8s %14s\n", "threads", "tuples/sec")
	for _, threads := range []int{1, 2, 4, 8, 16} {
		cfg := core.Config{
			Model: o.Model, FactBits: o.FactBits, ContentCols: d.ContentCols,
			BatchSize: o.BatchSize, WildcardProb: 0.5, SamplerWorkers: threads,
			Seed: o.Seed, PSamples: o.PSamples,
		}
		est, err := core.Build(d.Schema, cfg)
		if err != nil {
			return "", err
		}
		start := time.Now()
		if _, err := est.Train(tuples); err != nil {
			return "", err
		}
		dt := time.Since(start)
		fmt.Fprintf(&b, "%8d %14.0f\n", threads, float64(tuples)/dt.Seconds())
	}
	return b.String(), nil
}

// Figure7c reproduces the wall-clock training comparison for MSCN, the
// DeepDB-style SPN, and NeuroCard on both JOB-light workloads. MSCN's time
// includes executing its training queries to obtain labels (the dominant
// cost the paper reports separately).
func Figure7c(o Options) (string, error) {
	d, err := datagen.JOBLight(datagen.Config{Seed: o.Seed, Scale: o.DataScale})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7c: Wall-clock construction time\n")
	fmt.Fprintf(&b, "%-14s %14s\n", "method", "build time")

	// MSCN: label generation + training.
	start := time.Now()
	trainQ, err := workload.JOBLightRanges(d, o.MSCNTrainQueries, o.Seed+77)
	if err != nil {
		return "", err
	}
	mcfg := mscn.DefaultConfig()
	mcfg.Epochs = o.MSCNEpochs
	ms := mscn.New(d.Schema, d.ContentCols, mcfg)
	if err := ms.Train(trainQ.Queries); err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "%-14s %14s\n", "mscn", time.Since(start).Round(time.Millisecond))

	// DeepDB-style SPN ensemble.
	start = time.Now()
	scfg := spn.DefaultConfig()
	scfg.SampleRows = o.SPNSampleRows
	if _, err := spn.New(d.Schema, spn.JOBLightBaseSubsets(d.Schema), d.ContentCols, scfg); err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "%-14s %14s\n", "deepdb-spn", time.Since(start).Round(time.Millisecond))

	// NeuroCard: join counts + sampling + training.
	_, ncTime, err := BuildNeuroCard(d, o.Model, o.TrainTuples, o)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "%-14s %14s\n", "neurocard", ncTime.Round(time.Millisecond))
	return b.String(), nil
}

// Figure7d reproduces the inference-latency comparison (CDF quantiles) over
// JOB-light-ranges queries for the three learned estimators.
func Figure7d(o Options) (string, error) {
	d, err := datagen.JOBLight(datagen.Config{Seed: o.Seed, Scale: o.DataScale})
	if err != nil {
		return "", err
	}
	full, err := workload.JOBLightRanges(d, o.RangesQueries, o.Seed+1)
	if err != nil {
		return "", err
	}
	wl := subsetQueries(full, 200, o.Seed)

	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7d: Inference latency over %d JOB-light-ranges queries\n", len(wl.Queries))
	fmt.Fprintf(&b, "%-14s %10s %10s %10s\n", "method", "p50", "p95", "max")
	emit := func(name string, lats []time.Duration) {
		p50, p95, maxL := LatencyQuantiles(lats)
		fmt.Fprintf(&b, "%-14s %10s %10s %10s\n", name,
			p50.Round(time.Microsecond), p95.Round(time.Microsecond), maxL.Round(time.Microsecond))
	}

	trainQ, err := workload.JOBLightRanges(d, o.MSCNTrainQueries, o.Seed+77)
	if err != nil {
		return "", err
	}
	mcfg := mscn.DefaultConfig()
	mcfg.Epochs = o.MSCNEpochs
	ms := mscn.New(d.Schema, d.ContentCols, mcfg)
	if err := ms.Train(trainQ.Queries); err != nil {
		return "", err
	}
	// Figure 7d is a per-query latency CDF: evaluate sequentially so recorded
	// latencies are not inflated by queries time-sharing cores (EvalWorkers
	// affects throughput, not the paper's latency distribution).
	_, lats, err := EvaluateParallel(Named("mscn", ms), wl, 1)
	if err != nil {
		return "", err
	}
	emit("mscn", lats)

	scfg := spn.DefaultConfig()
	scfg.SampleRows = o.SPNSampleRows
	sp, err := spn.New(d.Schema, spn.JOBLightBaseSubsets(d.Schema), d.ContentCols, scfg)
	if err != nil {
		return "", err
	}
	if _, lats, err = EvaluateParallel(Named("deepdb-spn", sp), wl, 1); err != nil {
		return "", err
	}
	emit("deepdb-spn", lats)

	nc, _, err := BuildNeuroCard(d, o.Model, o.TrainTuples, o)
	if err != nil {
		return "", err
	}
	if _, lats, err = EvaluateParallel(Named("neurocard", nc), wl, 1); err != nil {
		return "", err
	}
	emit("neurocard", lats)
	return b.String(), nil
}
