package harness

import (
	"strings"
	"testing"
	"time"

	"neurocard/internal/made"
	"neurocard/internal/query"
	"neurocard/internal/workload"
)

// tiny returns the smallest options that still exercise every code path.
func tiny() Options {
	o := Quick()
	o.DataScale = 0.05
	o.Model = made.Config{EmbedDim: 8, Hidden: 48, Blocks: 1, LR: 3e-3, ClipNorm: 5, Seed: 1}
	o.FactBits = 9
	o.TrainTuples = 60_000
	o.PSamples = 128
	o.BatchSize = 256
	o.SamplerWorkers = 3
	o.LargeModel = made.Config{EmbedDim: 16, Hidden: 48, Blocks: 1, LR: 3e-3, ClipNorm: 5, Seed: 1}
	o.LargeTuples = 60_000
	o.IBJSSamples = 400
	o.SampleOnlyDraws = 400
	o.MSCNTrainQueries = 60
	o.MSCNEpochs = 8
	o.SPNSampleRows = 2_500
	o.RangesQueries = 36
	return o
}

func TestTable1(t *testing.T) {
	out, err := Table1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"JOB-light", "JOB-M", "Tables", "16"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure6(t *testing.T) {
	out, err := Figure6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "JOB-light-ranges") || !strings.Contains(out, "median") {
		t.Errorf("Figure6 output malformed:\n%s", out)
	}
}

func TestTable2EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end comparison skipped in -short mode")
	}
	out, rows, err := Table2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Name] = true
		if r.Summary.Max < 1 || r.Summary.Median < 1 {
			t.Errorf("%s: degenerate summary %+v", r.Name, r.Summary)
		}
	}
	for _, want := range []string{"postgres-hist", "ibjs", "mscn", "deepdb-spn", "neurocard"} {
		if !names[want] {
			t.Errorf("Table2 missing estimator %q:\n%s", want, out)
		}
	}
	// The paper's qualitative headline is about the tail: NeuroCard's p99
	// beats the independence-based and sampling baselines by large factors
	// (the median may slightly trail DeepDB-style models, §7.3.1).
	var pg, ib, nc Row
	for _, r := range rows {
		switch r.Name {
		case "postgres-hist":
			pg = r
		case "ibjs":
			ib = r
		case "neurocard":
			nc = r
		}
	}
	if nc.Summary.P99 > pg.Summary.P99 {
		t.Errorf("neurocard p99 %v worse than postgres %v", nc.Summary.P99, pg.Summary.P99)
	}
	if nc.Summary.P99 > ib.Summary.P99 {
		t.Errorf("neurocard p99 %v worse than ibjs %v", nc.Summary.P99, ib.Summary.P99)
	}
	if nc.Bytes <= 0 {
		t.Error("neurocard size missing")
	}
	t.Logf("\n%s", out)
}

func TestEvaluateAndFormat(t *testing.T) {
	wl := &workload.Workload{Name: "w"}
	// Formatting only: empty workloads produce empty summaries.
	sum, lats, err := Evaluate(Named("x", nullEstimator{}), wl)
	if err != nil || len(lats) != 0 {
		t.Fatalf("Evaluate on empty workload: %v %v", sum, err)
	}
	out := FormatTable("T", []Row{{Name: "a", Bytes: 2048, Summary: workload.Summary{Median: 1.5, P95: 2, P99: 3, Max: 4}}})
	if !strings.Contains(out, "2.0KB") || !strings.Contains(out, "1.5") {
		t.Errorf("FormatTable output: %s", out)
	}
}

type nullEstimator struct{}

func (nullEstimator) Estimate(q query.Query) (float64, error) { return 1, nil }

func TestLatencyQuantiles(t *testing.T) {
	lats := []time.Duration{3, 1, 2, 5, 4}
	p50, p95, max := LatencyQuantiles(lats)
	if p50 != 3 || max != 5 || p95 < p50 {
		t.Errorf("quantiles = %v %v %v", p50, p95, max)
	}
	if a, b, c := LatencyQuantiles(nil); a != 0 || b != 0 || c != 0 {
		t.Error("empty latency quantiles nonzero")
	}
}

func TestSubsetQueries(t *testing.T) {
	wl := &workload.Workload{Name: "w"}
	for i := 0; i < 10; i++ {
		wl.Queries = append(wl.Queries, workload.LabeledQuery{TrueCard: float64(i)})
	}
	sub := subsetQueries(wl, 4, 1)
	if len(sub.Queries) != 4 {
		t.Fatalf("subset = %d", len(sub.Queries))
	}
	if got := subsetQueries(wl, 20, 1); len(got.Queries) != 10 {
		t.Error("oversized subset should return original")
	}
}
