// Package harness runs the paper's evaluation (§7): it builds the datasets,
// workloads, NeuroCard, and every baseline, measures Q-error distributions,
// sizes, and wall-clock costs, and formats each result as the corresponding
// paper table or figure. bench_test.go and cmd/bench are thin wrappers over
// this package at different scales.
package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"neurocard/internal/core"
	"neurocard/internal/datagen"
	"neurocard/internal/made"
	"neurocard/internal/query"
	"neurocard/internal/workload"
)

// Estimator is the uniform interface every compared method implements.
type Estimator interface {
	Name() string
	Estimate(q query.Query) (float64, error)
}

// Options scales the experiments. Tests shrink everything; cmd/bench uses
// Default.
type Options struct {
	DataScale float64
	Seed      int64

	// NeuroCard.
	Model          made.Config
	FactBits       int
	TrainTuples    int
	PSamples       int
	BatchSize      int
	SamplerWorkers int
	EvalWorkers    int         // concurrent estimation goroutines for batch-capable estimators
	LargeModel     made.Config // NeuroCard-large (Table 3)
	LargeTuples    int

	// Baselines.
	IBJSSamples      int
	SampleOnlyDraws  int
	MSCNTrainQueries int
	MSCNEpochs       int
	SPNSampleRows    int

	// Workloads.
	RangesQueries int

	// Serving load test (ServeLoad).
	ServeClients  int // concurrent closed-loop clients
	ServeRequests int // total single-query requests per phase
	ServeBatch    int // queries per request in the batched phase
}

// Default returns the benchmark-scale options (minutes of CPU time).
func Default() Options {
	return Options{
		DataScale:        1.0,
		Seed:             42,
		Model:            made.Config{EmbedDim: 16, Hidden: 128, Blocks: 2, LR: 2e-3, ClipNorm: 5, Seed: 1},
		FactBits:         12,
		TrainTuples:      400_000,
		PSamples:         256,
		BatchSize:        512,
		SamplerWorkers:   8,
		EvalWorkers:      8,
		LargeModel:       made.Config{EmbedDim: 64, Hidden: 128, Blocks: 2, LR: 2e-3, ClipNorm: 5, Seed: 1},
		LargeTuples:      600_000,
		IBJSSamples:      10_000,
		SampleOnlyDraws:  10_000,
		MSCNTrainQueries: 1_000,
		MSCNEpochs:       60,
		SPNSampleRows:    30_000,
		RangesQueries:    1_000,
		ServeClients:     8,
		ServeRequests:    400,
		ServeBatch:       16,
	}
}

// Quick returns CI-sized options (seconds of CPU time) for tests and smoke
// runs. Accuracy numbers are noisier but orderings still hold.
func Quick() Options {
	o := Default()
	o.DataScale = 0.08
	o.Model = made.Config{EmbedDim: 8, Hidden: 64, Blocks: 1, LR: 3e-3, ClipNorm: 5, Seed: 1}
	o.FactBits = 10
	o.TrainTuples = 80_000
	o.PSamples = 128
	o.BatchSize = 256
	o.SamplerWorkers = 4
	o.EvalWorkers = 4
	o.LargeModel = made.Config{EmbedDim: 24, Hidden: 64, Blocks: 1, LR: 3e-3, ClipNorm: 5, Seed: 1}
	o.LargeTuples = 100_000
	o.IBJSSamples = 2_000
	o.SampleOnlyDraws = 2_000
	o.MSCNTrainQueries = 250
	o.MSCNEpochs = 25
	o.SPNSampleRows = 8_000
	o.RangesQueries = 120
	o.ServeClients = 4
	o.ServeRequests = 120
	o.ServeBatch = 8
	return o
}

// Row is one estimator's result in a comparison table.
type Row struct {
	Name      string
	Bytes     int
	Summary   workload.Summary
	BuildTime time.Duration
	Latencies []time.Duration
}

// MeanLatency averages the per-query estimation latencies.
func (r Row) MeanLatency() time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	var total time.Duration
	for _, l := range r.Latencies {
		total += l
	}
	return total / time.Duration(len(r.Latencies))
}

// Evaluate runs an estimator over a workload sequentially, collecting
// Q-errors and per-query latencies.
func Evaluate(est Estimator, wl *workload.Workload) (workload.Summary, []time.Duration, error) {
	return EvaluateParallel(est, wl, 1)
}

// indexedEstimator is implemented by estimators whose per-query randomness
// is derived from (seed, query index) — core.Estimator — making concurrent
// evaluation deterministic run to run.
type indexedEstimator interface {
	EstimateIndexed(q query.Query, idx int64) (float64, error)
}

// serialIndexedEstimator additionally offers an inline-kernel variant for
// concurrent callers (core.Estimator.EstimateIndexedSerial); parallel
// evaluation prefers it so workers × kernel-chunk goroutines never fight
// for the CPU. Results are identical to EstimateIndexed.
type serialIndexedEstimator interface {
	EstimateIndexedSerial(q query.Query, idx int64) (float64, error)
}

// EvaluateParallel runs a workload on up to `workers` goroutines when the
// estimator supports index-seeded estimation (falling back to sequential
// evaluation otherwise, since baseline estimators make no thread-safety
// promises). Q-errors are deterministic regardless of worker count;
// latencies are wall-clock per query under the configured concurrency.
func EvaluateParallel(est Estimator, wl *workload.Workload, workers int) (workload.Summary, []time.Duration, error) {
	idx, indexed := unwrap(est).(indexedEstimator)
	if !indexed || workers <= 1 {
		qerrs := make([]float64, 0, len(wl.Queries))
		lats := make([]time.Duration, 0, len(wl.Queries))
		for i, lq := range wl.Queries {
			start := time.Now()
			var got float64
			var err error
			if indexed {
				got, err = idx.EstimateIndexed(lq.Query, int64(i))
			} else {
				got, err = est.Estimate(lq.Query)
			}
			if err != nil {
				return workload.Summary{}, nil, fmt.Errorf("%s on %s: %w", est.Name(), lq.Query, err)
			}
			lats = append(lats, time.Since(start))
			qerrs = append(qerrs, workload.QError(got, lq.TrueCard))
		}
		return workload.Summarize(qerrs), lats, nil
	}

	if workers > len(wl.Queries) {
		workers = len(wl.Queries)
	}
	estimate := idx.EstimateIndexed
	if s, ok := unwrap(est).(serialIndexedEstimator); ok && workers > 1 {
		estimate = s.EstimateIndexedSerial
	}
	qerrs := make([]float64, len(wl.Queries))
	lats := make([]time.Duration, len(wl.Queries))
	errs := make([]error, len(wl.Queries))
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(wl.Queries) {
					return
				}
				lq := wl.Queries[i]
				start := time.Now()
				got, err := estimate(lq.Query, int64(i))
				lats[i] = time.Since(start)
				if err != nil {
					errs[i] = fmt.Errorf("%s on %s: %w", est.Name(), lq.Query, err)
					continue
				}
				qerrs[i] = workload.QError(got, lq.TrueCard)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return workload.Summary{}, nil, err
		}
	}
	return workload.Summarize(qerrs), lats, nil
}

// namedEstimator adapts core estimators to the Estimator interface.
type namedEstimator struct {
	name string
	est  interface {
		Estimate(q query.Query) (float64, error)
	}
}

func (n namedEstimator) Name() string { return n.name }
func (n namedEstimator) Estimate(q query.Query) (float64, error) {
	return n.est.Estimate(q)
}

// unwrap reveals the concrete estimator behind Named wrappers so capability
// interfaces (indexedEstimator) can be detected.
func unwrap(est Estimator) any {
	if ne, ok := est.(namedEstimator); ok {
		return ne.est
	}
	return est
}

// Named wraps any estimate function under a display name.
func Named(name string, est interface {
	Estimate(q query.Query) (float64, error)
}) Estimator {
	return namedEstimator{name, est}
}

// BuildNeuroCard trains a NeuroCard estimator for a dataset with the
// harness options, returning the estimator and its training wall-clock.
func BuildNeuroCard(d *datagen.Dataset, model made.Config, tuples int, o Options) (*core.Estimator, time.Duration, error) {
	cfg := core.Config{
		Model:          model,
		FactBits:       o.FactBits,
		ContentCols:    d.ContentCols,
		BatchSize:      o.BatchSize,
		WildcardProb:   0.5,
		SamplerWorkers: o.SamplerWorkers,
		Seed:           o.Seed,
		PSamples:       o.PSamples,
	}
	start := time.Now()
	est, err := core.Build(d.Schema, cfg)
	if err != nil {
		return nil, 0, err
	}
	if _, err := est.Train(tuples); err != nil {
		return nil, 0, err
	}
	return est, time.Since(start), nil
}

// FormatTable renders rows as the paper's error tables.
func FormatTable(title string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-22s %10s %10s %10s %10s %10s\n", "Estimator", "Size", "Median", "95th", "99th", "Max")
	for _, r := range rows {
		size := "-"
		if r.Bytes > 0 {
			size = fmtBytes(r.Bytes)
		}
		fmt.Fprintf(&b, "%-22s %10s %10.3g %10.3g %10.3g %10.3g\n",
			r.Name, size, r.Summary.Median, r.Summary.P95, r.Summary.P99, r.Summary.Max)
	}
	return b.String()
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// LatencyQuantiles summarizes a latency distribution (Figure 7d's CDF).
func LatencyQuantiles(lats []time.Duration) (p50, p95, max time.Duration) {
	if len(lats) == 0 {
		return
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	p50 = s[len(s)/2]
	p95 = s[len(s)*95/100]
	max = s[len(s)-1]
	return
}

// subsetQueries deterministically samples up to n queries from a workload
// (used to keep expensive sweeps bounded).
func subsetQueries(wl *workload.Workload, n int, seed int64) *workload.Workload {
	if n >= len(wl.Queries) {
		return wl
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(wl.Queries))[:n]
	sort.Ints(idx)
	out := &workload.Workload{Name: wl.Name}
	for _, i := range idx {
		out.Queries = append(out.Queries, wl.Queries[i])
	}
	return out
}
