package harness

import (
	"strings"
	"testing"
)

// TestChaosLoadSmoke runs the fault-injection experiment at the smallest
// scale that still injects every fault class and walks the breaker through
// open and back: the invariants (zero malformed responses, liveness,
// recovery, torn-checkpoint containment) are asserted inside ChaosLoad
// itself, so a nil error is the pass.
func TestChaosLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos load test skipped in -short mode")
	}
	o := tiny()
	o.TrainTuples = 4 * o.BatchSize
	o.ServeClients = 4
	o.ServeRequests = 64
	res, err := ChaosLoad(o)
	if err != nil {
		report := ""
		if res != nil {
			report = res.Report
		}
		t.Fatalf("%v\n%s", err, report)
	}
	if res.Malformed != 0 {
		t.Fatalf("malformed responses: %+v", res)
	}
	if res.OK+res.Degraded+res.Faulted != int64(res.Requests) {
		t.Fatalf("response accounting: %+v", res)
	}
	for _, want := range []string{"Chaos load test", "responses:", "recovery:", "checkpoints:"} {
		if !strings.Contains(res.Report, want) {
			t.Errorf("report missing %q:\n%s", want, res.Report)
		}
	}
}
