package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"neurocard/internal/baselines/histogram"
	"neurocard/internal/baselines/ibjs"
	"neurocard/internal/baselines/mscn"
	"neurocard/internal/baselines/samplecard"
	"neurocard/internal/baselines/spn"
	"neurocard/internal/core"
	"neurocard/internal/datagen"
	"neurocard/internal/exec"
	"neurocard/internal/sampler"
	"neurocard/internal/workload"
)

// Table1 reproduces the workload statistics table: table count, full-join
// row count, modeled column count, and maximum column domain per schema.
func Table1(o Options) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Workloads used in evaluation\n")
	fmt.Fprintf(&b, "%-18s %7s %14s %6s %9s\n", "Workload", "Tables", "Rows(fulljoin)", "Cols", "Dom.")
	for _, wk := range []struct {
		name string
		gen  func(datagen.Config) (*datagen.Dataset, error)
	}{
		{"JOB-light", datagen.JOBLight},
		{"JOB-light-ranges", datagen.JOBLight},
		{"JOB-M", datagen.JOBM},
	} {
		d, err := wk.gen(datagen.Config{Seed: o.Seed, Scale: o.DataScale})
		if err != nil {
			return "", err
		}
		smp, err := sampler.New(d.Schema)
		if err != nil {
			return "", err
		}
		cols, maxDom := 0, 0
		for t, cc := range d.ContentCols {
			cols += len(cc)
			for _, c := range cc {
				if ds := d.Schema.Table(t).MustCol(c).DictSize(); ds > maxDom {
					maxDom = ds
				}
			}
		}
		fmt.Fprintf(&b, "%-18s %7d %14.3g %6d %9d\n",
			wk.name, d.Schema.NumTables(), smp.JoinSize(), cols, maxDom)
	}
	return b.String(), nil
}

// Figure6 reproduces the selectivity-distribution figure as quantiles of
// log10 selectivity per workload.
func Figure6(o Options) (string, error) {
	dl, err := datagen.JOBLight(datagen.Config{Seed: o.Seed, Scale: o.DataScale})
	if err != nil {
		return "", err
	}
	dm, err := datagen.JOBM(datagen.Config{Seed: o.Seed, Scale: o.DataScale})
	if err != nil {
		return "", err
	}
	wls := make([]*workload.Workload, 0, 3)
	if wl, err := workload.JOBLight(dl, o.Seed); err == nil {
		wls = append(wls, wl)
	} else {
		return "", err
	}
	if wl, err := workload.JOBLightRanges(dl, o.RangesQueries, o.Seed+1); err == nil {
		wls = append(wls, wl)
	} else {
		return "", err
	}
	if wl, err := workload.JOBM(dm, o.Seed+2); err == nil {
		wls = append(wls, wl)
	} else {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: Distribution of query selectivity (log10)\n")
	fmt.Fprintf(&b, "%-18s %8s %8s %8s %8s %8s\n", "Workload", "min", "p25", "median", "p75", "max")
	for _, wl := range wls {
		sels := make([]float64, 0, len(wl.Queries))
		for _, lq := range wl.Queries {
			if s := lq.Selectivity(); s > 0 {
				sels = append(sels, s)
			}
		}
		sort.Float64s(sels)
		q := func(p float64) float64 { return log10(workload.Quantile(sels, p)) }
		fmt.Fprintf(&b, "%-18s %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			wl.Name, q(0), q(0.25), q(0.5), q(0.75), q(1))
	}
	return b.String(), nil
}

func log10(x float64) float64 {
	if x <= 0 {
		return -99
	}
	l := 0.0
	for x < 1 {
		x *= 10
		l--
	}
	for x >= 10 {
		x /= 10
		l++
	}
	// Linear interpolation within the decade is plenty for a summary table.
	return l + (x-1)/9
}

// Table2 reproduces the JOB-light comparison: Postgres-style histograms,
// IBJS, MSCN, DeepDB-style SPNs (base and large), and NeuroCard.
func Table2(o Options) (string, []Row, error) {
	d, err := datagen.JOBLight(datagen.Config{Seed: o.Seed, Scale: o.DataScale})
	if err != nil {
		return "", nil, err
	}
	wl, err := workload.JOBLight(d, o.Seed)
	if err != nil {
		return "", nil, err
	}
	rows, err := compareAll(d, wl, o, true)
	if err != nil {
		return "", nil, err
	}
	return FormatTable("Table 2: JOB-light, estimation errors", rows), rows, nil
}

// Table3 reproduces the JOB-light-ranges comparison including
// NeuroCard-large.
func Table3(o Options) (string, []Row, error) {
	d, err := datagen.JOBLight(datagen.Config{Seed: o.Seed, Scale: o.DataScale})
	if err != nil {
		return "", nil, err
	}
	wl, err := workload.JOBLightRanges(d, o.RangesQueries, o.Seed+1)
	if err != nil {
		return "", nil, err
	}
	rows, err := compareAll(d, wl, o, true)
	if err != nil {
		return "", nil, err
	}
	// NeuroCard-large.
	ncL, buildL, err := BuildNeuroCard(d, o.LargeModel, o.LargeTuples, o)
	if err != nil {
		return "", nil, err
	}
	sum, lats, err := EvaluateParallel(Named("neurocard-large", ncL), wl, o.EvalWorkers)
	if err != nil {
		return "", nil, err
	}
	rows = append(rows, Row{Name: "neurocard-large", Bytes: ncL.Bytes(), Summary: sum, BuildTime: buildL, Latencies: lats})
	return FormatTable("Table 3: JOB-light-ranges, estimation errors", rows), rows, nil
}

// Table4 reproduces the JOB-M comparison: per the paper, only Postgres and
// IBJS remain tractable as baselines at 16 tables.
func Table4(o Options) (string, []Row, error) {
	d, err := datagen.JOBM(datagen.Config{Seed: o.Seed, Scale: o.DataScale})
	if err != nil {
		return "", nil, err
	}
	wl, err := workload.JOBM(d, o.Seed+2)
	if err != nil {
		return "", nil, err
	}
	var rows []Row
	pg := histogram.New(d.Schema, histogram.DefaultConfig())
	sum, lats, err := EvaluateParallel(Named("postgres-hist", pg), wl, o.EvalWorkers)
	if err != nil {
		return "", nil, err
	}
	rows = append(rows, Row{Name: "postgres-hist", Bytes: pg.Bytes(), Summary: sum, Latencies: lats})

	ib := ibjs.New(d.Schema, o.IBJSSamples, o.Seed+3)
	sum, lats, err = EvaluateParallel(Named("ibjs", ib), wl, o.EvalWorkers)
	if err != nil {
		return "", nil, err
	}
	rows = append(rows, Row{Name: "ibjs", Summary: sum, Latencies: lats})

	nc, build, err := BuildNeuroCard(d, o.Model, o.TrainTuples, o)
	if err != nil {
		return "", nil, err
	}
	sum, lats, err = EvaluateParallel(Named("neurocard", nc), wl, o.EvalWorkers)
	if err != nil {
		return "", nil, err
	}
	rows = append(rows, Row{Name: "neurocard", Bytes: nc.Bytes(), Summary: sum, BuildTime: build, Latencies: lats})
	return FormatTable("Table 4: JOB-M, estimation errors", rows), rows, nil
}

// compareAll runs the shared JOB-light/-ranges estimator lineup.
func compareAll(d *datagen.Dataset, wl *workload.Workload, o Options, withSPNLarge bool) ([]Row, error) {
	var rows []Row

	pg := histogram.New(d.Schema, histogram.DefaultConfig())
	sum, lats, err := EvaluateParallel(Named("postgres-hist", pg), wl, o.EvalWorkers)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{Name: "postgres-hist", Bytes: pg.Bytes(), Summary: sum, Latencies: lats})

	ib := ibjs.New(d.Schema, o.IBJSSamples, o.Seed+3)
	sum, lats, err = EvaluateParallel(Named("ibjs", ib), wl, o.EvalWorkers)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{Name: "ibjs", Summary: sum, Latencies: lats})

	// MSCN: trained on freshly generated, executed queries (the supervised
	// protocol), disjoint seed from the evaluation workload.
	trainQ, err := workload.JOBLightRanges(d, o.MSCNTrainQueries, o.Seed+77)
	if err != nil {
		return nil, err
	}
	mcfg := mscn.DefaultConfig()
	mcfg.Epochs = o.MSCNEpochs
	mcfg.Seed = o.Seed
	ms := mscn.New(d.Schema, d.ContentCols, mcfg)
	msStart := time.Now()
	if err := ms.Train(trainQ.Queries); err != nil {
		return nil, err
	}
	msTime := time.Since(msStart)
	sum, lats, err = EvaluateParallel(Named("mscn", ms), wl, o.EvalWorkers)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{Name: "mscn", Bytes: ms.Bytes(), Summary: sum, BuildTime: msTime, Latencies: lats})

	scfg := spn.DefaultConfig()
	scfg.SampleRows = o.SPNSampleRows
	scfg.Seed = o.Seed
	spnStart := time.Now()
	sp, err := spn.New(d.Schema, spn.JOBLightBaseSubsets(d.Schema), d.ContentCols, scfg)
	if err != nil {
		return nil, err
	}
	spnTime := time.Since(spnStart)
	sum, lats, err = EvaluateParallel(Named("deepdb-spn", sp), wl, o.EvalWorkers)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{Name: "deepdb-spn", Bytes: sp.Bytes(), Summary: sum, BuildTime: spnTime, Latencies: lats})

	if withSPNLarge {
		spL, err := spn.New(d.Schema, spn.JOBLightLargeSubsets(d.Schema), d.ContentCols, scfg)
		if err != nil {
			return nil, err
		}
		sum, lats, err = EvaluateParallel(Named("deepdb-spn-large", spL), wl, o.EvalWorkers)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{Name: "deepdb-spn-large", Bytes: spL.Bytes(), Summary: sum, Latencies: lats})
	}

	nc, build, err := BuildNeuroCard(d, o.Model, o.TrainTuples, o)
	if err != nil {
		return nil, err
	}
	sum, lats, err = EvaluateParallel(Named("neurocard", nc), wl, o.EvalWorkers)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{Name: "neurocard", Bytes: nc.Bytes(), Summary: sum, BuildTime: build, Latencies: lats})
	return rows, nil
}

// Table5 reproduces the ablation study on JOB-light-ranges: the unbiased
// sampler (A), factorization bits (B), model sizes (C), per-table models
// (D), and raw join samples (E), reporting p50/p99 as the paper does.
func Table5(o Options) (string, error) {
	d, err := datagen.JOBLight(datagen.Config{Seed: o.Seed, Scale: o.DataScale})
	if err != nil {
		return "", err
	}
	full, err := workload.JOBLightRanges(d, o.RangesQueries, o.Seed+1)
	if err != nil {
		return "", err
	}
	wl := subsetQueries(full, maxAblationQueries(o), o.Seed)

	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: Ablations (JOB-light-ranges subset, %d queries)\n", len(wl.Queries))
	fmt.Fprintf(&b, "%-28s %10s %10s %10s\n", "Variant", "Size", "p50", "p99")
	emit := func(name string, bytes int, sum workload.Summary) {
		size := "-"
		if bytes > 0 {
			size = fmtBytes(bytes)
		}
		fmt.Fprintf(&b, "%-28s %10s %10.3g %10.3g\n", name, size, sum.Median, sum.P99)
	}
	p50p99 := func(est Estimator) (workload.Summary, error) {
		sum, _, err := EvaluateParallel(est, wl, o.EvalWorkers)
		return sum, err
	}

	// Base.
	base, _, err := BuildNeuroCard(d, o.Model, o.TrainTuples, o)
	if err != nil {
		return "", err
	}
	sum, err := p50p99(Named("base", base))
	if err != nil {
		return "", err
	}
	emit("base (unbiased, fact="+fmt.Sprint(o.FactBits)+")", base.Bytes(), sum)

	// (A) biased IBJS-style training sampler.
	cfgA := core.Config{
		Model: o.Model, FactBits: o.FactBits, ContentCols: d.ContentCols,
		BatchSize: o.BatchSize, WildcardProb: 0.5, SamplerWorkers: 1,
		Seed: o.Seed, PSamples: o.PSamples,
	}
	biased, err := core.Build(d.Schema, cfgA)
	if err != nil {
		return "", err
	}
	draw, err := ibjs.BiasedFullJoinDraw(d.Schema)
	if err != nil {
		return "", err
	}
	if _, err := biased.TrainWithDraw(o.TrainTuples, draw); err != nil {
		return "", err
	}
	if sum, err = p50p99(Named("A biased", biased)); err != nil {
		return "", err
	}
	emit("(A) biased sampler", biased.Bytes(), sum)

	// (B) factorization bits sweep.
	for _, bits := range factBitsSweep(o) {
		ob := o
		ob.FactBits = bits
		est, _, err := BuildNeuroCard(d, o.Model, o.TrainTuples, ob)
		if err != nil {
			return "", err
		}
		if sum, err = p50p99(Named("B", est)); err != nil {
			return "", err
		}
		label := fmt.Sprintf("(B) fact bits %d", bits)
		if bits == 0 {
			label = "(B) fact bits none"
		}
		emit(label, est.Bytes(), sum)
	}

	// (C) model size sweep: bigger embeddings, bigger hidden layers.
	bigEmb := o.Model
	bigEmb.EmbedDim *= 4
	estC1, _, err := BuildNeuroCard(d, bigEmb, o.TrainTuples, o)
	if err != nil {
		return "", err
	}
	if sum, err = p50p99(Named("C emb", estC1)); err != nil {
		return "", err
	}
	emit(fmt.Sprintf("(C) d_emb %d", bigEmb.EmbedDim), estC1.Bytes(), sum)
	bigFF := o.Model
	bigFF.Hidden *= 4
	estC2, _, err := BuildNeuroCard(d, bigFF, o.TrainTuples, o)
	if err != nil {
		return "", err
	}
	if sum, err = p50p99(Named("C dff", estC2)); err != nil {
		return "", err
	}
	emit(fmt.Sprintf("(C) d_ff %d", bigFF.Hidden), estC2.Bytes(), sum)

	// (D) one AR model per table, combined with independence.
	cfgD := core.Config{
		Model: o.Model, FactBits: o.FactBits, ContentCols: d.ContentCols,
		BatchSize: o.BatchSize, WildcardProb: 0.5, SamplerWorkers: 2,
		Seed: o.Seed, PSamples: o.PSamples,
	}
	per, err := core.BuildPerTable(d.Schema, cfgD)
	if err != nil {
		return "", err
	}
	if err := per.Train(o.TrainTuples / d.Schema.NumTables()); err != nil {
		return "", err
	}
	if sum, err = p50p99(per); err != nil {
		return "", err
	}
	emit("(D) one AR per table", per.Bytes(), sum)

	// (E) uniform join samples only, no model.
	sc := samplecard.New(d.Schema, o.SampleOnlyDraws, o.Seed+5)
	if sum, err = p50p99(sc); err != nil {
		return "", err
	}
	emit("(E) join samples only", 0, sum)

	return b.String(), nil
}

func maxAblationQueries(o Options) int {
	n := o.RangesQueries / 2
	if n < 40 {
		n = 40
	}
	return n
}

func factBitsSweep(o Options) []int {
	if o.FactBits >= 12 {
		return []int{10, 12, 0}
	}
	return []int{o.FactBits - 2, o.FactBits, 0}
}

// Table6 reproduces the update study: 5 time-ordered partitions of title,
// comparing a stale model, incremental fast updates (1% of the original
// tuples), and full retraining after every ingest.
func Table6(o Options) (string, error) {
	d, err := datagen.JOBLight(datagen.Config{Seed: o.Seed, Scale: o.DataScale})
	if err != nil {
		return "", err
	}
	snaps, err := d.Snapshots(5)
	if err != nil {
		return "", err
	}
	// Queries from the full dataset; truth re-labeled per snapshot.
	base, err := workload.JOBLight(d, o.Seed+9)
	if err != nil {
		return "", err
	}
	wl := subsetQueries(base, 30, o.Seed)

	cfg := core.Config{
		Model: o.Model, FactBits: o.FactBits, ContentCols: d.ContentCols,
		BatchSize: o.BatchSize, WildcardProb: 0.5, SamplerWorkers: o.SamplerWorkers,
		Seed: o.Seed, PSamples: o.PSamples,
	}
	relabel := func(snap int) (*workload.Workload, error) {
		out := &workload.Workload{Name: wl.Name}
		for _, lq := range wl.Queries {
			card, err := exec.Cardinality(snaps[snap], lq.Query)
			if err != nil {
				return nil, err
			}
			out.Queries = append(out.Queries, workload.LabeledQuery{
				Query: lq.Query, TrueCard: card, InnerSize: lq.InnerSize,
			})
		}
		return out, nil
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Table 6: Updating NeuroCard, fast and slow (JOB-light, %d queries)\n", len(wl.Queries))
	fmt.Fprintf(&b, "%-12s %12s %6s", "Strategy", "UpdateTime", "")
	for i := 1; i <= 5; i++ {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("ingest%d", i))
	}
	fmt.Fprintf(&b, "\n")

	evalSummaries := func(est *core.Estimator, update func(i int) (time.Duration, error)) ([]workload.Summary, time.Duration, error) {
		var out []workload.Summary
		var updTime time.Duration
		for i := 0; i < 5; i++ {
			if i > 0 && update != nil {
				dt, err := update(i)
				if err != nil {
					return nil, 0, err
				}
				updTime += dt
			}
			swl, err := relabel(i)
			if err != nil {
				return nil, 0, err
			}
			sum, _, err := EvaluateParallel(Named("nc", est), swl, o.EvalWorkers)
			if err != nil {
				return nil, 0, err
			}
			out = append(out, sum)
		}
		return out, updTime / 4, nil
	}
	writeRows := func(name string, updTime time.Duration, sums []workload.Summary) {
		upd := "-"
		if updTime > 0 {
			upd = updTime.Round(time.Millisecond).String()
		}
		fmt.Fprintf(&b, "%-12s %12s %6s", name, upd, "p95")
		for _, s := range sums {
			fmt.Fprintf(&b, " %8.3g", s.P95)
		}
		fmt.Fprintf(&b, "\n%-12s %12s %6s", "", "", "p50")
		for _, s := range sums {
			fmt.Fprintf(&b, " %8.3g", s.Median)
		}
		fmt.Fprintf(&b, "\n")
	}

	// Stale: trained once on the first snapshot. Note: the estimator keeps
	// the first snapshot's data, so estimates drift as truth moves.
	stale, err := core.BuildWithDomain(d.Schema, snaps[0], cfg)
	if err != nil {
		return "", err
	}
	if _, err := stale.Train(o.TrainTuples); err != nil {
		return "", err
	}
	sums, _, err := evalSummaries(stale, nil)
	if err != nil {
		return "", err
	}
	writeRows("stale", 0, sums)

	// Fast update: rebind data + 1% incremental gradient steps per ingest.
	fast, err := core.BuildWithDomain(d.Schema, snaps[0], cfg)
	if err != nil {
		return "", err
	}
	if _, err := fast.Train(o.TrainTuples); err != nil {
		return "", err
	}
	sums, updTime, err := evalSummaries(fast, func(i int) (time.Duration, error) {
		start := time.Now()
		if err := fast.UpdateData(snaps[i]); err != nil {
			return 0, err
		}
		if _, err := fast.Train(o.TrainTuples / 100); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	})
	if err != nil {
		return "", err
	}
	writeRows("fast update", updTime, sums)

	// Retrain: fresh full training after every ingest.
	retrain, err := core.BuildWithDomain(d.Schema, snaps[0], cfg)
	if err != nil {
		return "", err
	}
	if _, err := retrain.Train(o.TrainTuples); err != nil {
		return "", err
	}
	var rsums []workload.Summary
	var rTime time.Duration
	for i := 0; i < 5; i++ {
		if i > 0 {
			start := time.Now()
			fresh, err := core.BuildWithDomain(d.Schema, snaps[i], cfg)
			if err != nil {
				return "", err
			}
			if _, err := fresh.Train(o.TrainTuples); err != nil {
				return "", err
			}
			rTime += time.Since(start)
			retrain = fresh
		}
		swl, err := relabel(i)
		if err != nil {
			return "", err
		}
		sum, _, err := EvaluateParallel(Named("nc", retrain), swl, o.EvalWorkers)
		if err != nil {
			return "", err
		}
		rsums = append(rsums, sum)
	}
	writeRows("retrain", rTime/4, rsums)

	return b.String(), nil
}
