package harness

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"neurocard/internal/core"
	"neurocard/internal/datagen"
	"neurocard/internal/sampler"
)

// TrainThroughput measures the construction hot path (the Figure 7c cost
// axis, decomposed): join-sampling throughput, a single gradient step
// through the legacy per-call-allocating TrainStep versus the zero-alloc
// TrainSession with prefix-structured kernels, and the end-to-end training
// loop (sampler workers + batch ring + session). Reported per step:
// tuples/sec and heap allocations, the numbers tracked in EXPERIMENTS.md.
func TrainThroughput(o Options) (string, error) {
	d, err := datagen.JOBLight(datagen.Config{Seed: o.Seed, Scale: o.DataScale})
	if err != nil {
		return "", err
	}
	cfg := core.Config{
		Model: o.Model, FactBits: o.FactBits, ContentCols: d.ContentCols,
		BatchSize: o.BatchSize, WildcardProb: 0.5, SamplerWorkers: o.SamplerWorkers,
		Seed: o.Seed, PSamples: o.PSamples,
	}
	est, err := core.Build(d.Schema, cfg)
	if err != nil {
		return "", err
	}
	steps := o.TrainTuples / cfg.BatchSize
	if steps < 10 {
		steps = 10
	}
	if steps > 200 {
		steps = 200
	}
	rng := rand.New(rand.NewSource(o.Seed + 13))

	var b strings.Builder
	fmt.Fprintf(&b, "Training throughput (batch %d, %d steps/phase)\n", cfg.BatchSize, steps)
	fmt.Fprintf(&b, "%-24s %14s %14s\n", "phase", "tuples/sec", "allocs/step")

	measure := func(name string, stepTuples int, fn func()) {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		fn()
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		allocs := float64(after.Mallocs-before.Mallocs) / float64(steps)
		fmt.Fprintf(&b, "%-24s %14.0f %14.1f\n",
			name, float64(steps*stepTuples)/elapsed.Seconds(), allocs)
	}

	// Join sampling alone (the paper's Figure 7b axis, reuse path).
	smp, err := sampler.New(d.Schema)
	if err != nil {
		return "", err
	}
	nt := len(smp.Tables())
	rows := make([][]int32, cfg.BatchSize)
	backing := make([]int32, cfg.BatchSize*nt)
	for i := range rows {
		rows[i] = backing[i*nt : (i+1)*nt]
	}
	measure("sampler", cfg.BatchSize, func() {
		for s := 0; s < steps; s++ {
			smp.SampleBatchInto(rng, rows)
		}
	})

	// One encoded batch drives the isolated gradient-step comparison.
	smp.SampleBatchInto(rng, rows)
	toks, err := est.Encoder().EncodeJoinRows(d.Schema, rows)
	if err != nil {
		return "", err
	}
	model := est.Model()
	measure("step (legacy)", cfg.BatchSize, func() {
		for s := 0; s < steps; s++ {
			model.TrainStep(toks, cfg.WildcardProb)
		}
	})
	ts := model.NewTrainSession(cfg.BatchSize)
	measure("step (session)", cfg.BatchSize, func() {
		for s := 0; s < steps; s++ {
			ts.Step(toks, cfg.WildcardProb)
		}
	})

	// End-to-end: sampler workers feeding the batch ring and session.
	measure("end-to-end (session)", cfg.BatchSize, func() {
		if _, err := est.Train(steps * cfg.BatchSize); err != nil {
			panic(err)
		}
	})
	return b.String(), nil
}
