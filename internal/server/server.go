package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"net/http"
	"runtime"
	"strings"
	"time"

	"neurocard/internal/query"
	"neurocard/internal/value"
)

// Config tunes the serving daemon.
type Config struct {
	// ModelsDir is where relative model names resolve to checkpoint files
	// (<dir>/<name>.ckpt).
	ModelsDir string

	// Workers bounds the concurrency of batch estimates (≤0 = GOMAXPROCS).
	Workers int

	// MaxBatch caps queries per estimate request (default 1024).
	MaxBatch int

	// MaxBodyBytes caps request body sizes (default 8 MiB).
	MaxBodyBytes int64
}

// Server is the HTTP serving layer: a registry of loaded estimators plus the
// JSON API. Create with New, mount Handler on any http.Server.
type Server struct {
	cfg     Config
	reg     *Registry
	metrics *metrics
	mux     *http.ServeMux
}

// New creates a server with an empty registry.
func New(cfg Config) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	s := &Server{
		cfg:     cfg,
		reg:     NewRegistry(cfg.ModelsDir),
		metrics: newMetrics(),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("POST /v1/models/{name}/load", s.handleLoad)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Registry exposes the model registry (daemon preloading, tests).
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ---- wire types ----

// FilterJSON is one predicate of an estimate request. Exactly one of Int,
// Str, or Set must be present (Set for op "IN").
type FilterJSON struct {
	Table string  `json:"table"`
	Col   string  `json:"col"`
	Op    string  `json:"op"`
	Int   *int64  `json:"int,omitempty"`
	Str   *string `json:"str,omitempty"`
	Set   []any   `json:"set,omitempty"`
}

// QueryJSON is a join query over connected tables plus conjunctive filters.
type QueryJSON struct {
	Tables  []string     `json:"tables"`
	Filters []FilterJSON `json:"filters,omitempty"`
}

// EstimateRequest asks for cardinality estimates. Exactly one of Query
// (single) or Queries (batch) must be set. A Seed makes results reproducible:
// query i derives its randomness from (seed, i) regardless of concurrency.
type EstimateRequest struct {
	Model   string      `json:"model,omitempty"`
	Query   *QueryJSON  `json:"query,omitempty"`
	Queries []QueryJSON `json:"queries,omitempty"`
	Seed    *int64      `json:"seed,omitempty"`
	Workers int         `json:"workers,omitempty"`
}

// EstimateResponse carries the results. Est is set for single-query
// requests, Ests for batches.
type EstimateResponse struct {
	Model  string    `json:"model"`
	Est    *float64  `json:"est,omitempty"`
	Ests   []float64 `json:"ests,omitempty"`
	Count  int       `json:"count"`
	Micros int64     `json:"micros"`
}

// ModelInfo describes one registry entry.
type ModelInfo struct {
	Name        string  `json:"name"`
	Path        string  `json:"path"`
	Default     bool    `json:"default"`
	Generation  int     `json:"generation"`
	LoadedAt    string  `json:"loaded_at"`
	Tables      int     `json:"tables"`
	JoinSize    float64 `json:"join_size"`
	ModelBytes  int     `json:"model_bytes"`
	SamplesSeen int     `json:"samples_seen"`
	PSamples    int     `json:"psamples"`
}

// ModelsResponse lists loaded models.
type ModelsResponse struct {
	Models []ModelInfo `json:"models"`
}

// LoadRequest optionally overrides the checkpoint path and default flag for
// a model load.
type LoadRequest struct {
	Path        string `json:"path,omitempty"`
	MakeDefault bool   `json:"default,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ---- handlers ----

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	done := s.metrics.requestStart()
	var req EstimateRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		done(0, true)
		return
	}
	single := req.Query != nil
	if single == (len(req.Queries) > 0) {
		s.fail(w, http.StatusBadRequest, errors.New("exactly one of \"query\" or \"queries\" must be set"))
		done(0, true)
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("batch of %d queries exceeds limit %d", len(req.Queries), s.cfg.MaxBatch))
		done(0, true)
		return
	}
	entry, err := s.reg.Get(req.Model)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		done(0, true)
		return
	}

	qs := req.Queries
	if single {
		qs = []QueryJSON{*req.Query}
	}
	queries := make([]query.Query, len(qs))
	for i := range qs {
		q, err := decodeQuery(qs[i])
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
			done(0, true)
			return
		}
		queries[i] = q
	}

	// Client-supplied worker counts are capped at the core count: more
	// workers never help (each runs its kernels inline), and an uncapped
	// request could check out MaxBatch pooled sessions that the pool then
	// retains for the model's lifetime.
	maxWorkers := runtime.GOMAXPROCS(0)
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	if workers <= 0 || workers > maxWorkers {
		workers = maxWorkers
	}

	start := time.Now()
	var ests []float64
	switch {
	case single && req.Seed != nil:
		est, eerr := entry.Est.EstimateSeededIndexed(queries[0], *req.Seed, 0)
		ests, err = []float64{est}, eerr
	case single:
		est, eerr := entry.Est.Estimate(queries[0])
		ests, err = []float64{est}, eerr
	case req.Seed != nil:
		ests, err = entry.Est.EstimateBatchSeeded(queries, workers, *req.Seed)
	default:
		ests, err = entry.Est.EstimateBatch(queries, workers)
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		done(0, true)
		return
	}
	for i, est := range ests {
		if math.IsNaN(est) || math.IsInf(est, 0) || est <= 0 {
			s.fail(w, http.StatusInternalServerError, fmt.Errorf("query %d produced non-finite estimate %g", i, est))
			done(0, true)
			return
		}
	}

	resp := EstimateResponse{
		Model:  entry.Name,
		Count:  len(ests),
		Micros: time.Since(start).Microseconds(),
	}
	if single {
		resp.Est = &ests[0]
	} else {
		resp.Ests = ests
	}
	s.reply(w, http.StatusOK, resp)
	done(len(ests), false)
}

// modelInfo builds the wire description of a registry entry; the single
// constructor keeps the /v1/models listing and the load response consistent.
func modelInfo(e, def *Entry) ModelInfo {
	return ModelInfo{
		Name:        e.Name,
		Path:        e.Path,
		Default:     def != nil && def.Name == e.Name && def.Gen == e.Gen,
		Generation:  e.Gen,
		LoadedAt:    e.LoadedAt.UTC().Format(time.RFC3339Nano),
		Tables:      e.Est.NumTables(),
		JoinSize:    e.Est.JoinSize(),
		ModelBytes:  e.Est.Bytes(),
		SamplesSeen: e.Est.Model().SamplesSeen(),
		PSamples:    e.Est.Config().PSamples,
	}
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	entries, def := s.reg.List()
	resp := ModelsResponse{Models: make([]ModelInfo, 0, len(entries))}
	for _, e := range entries {
		resp.Models = append(resp.Models, modelInfo(e, def))
	}
	s.reply(w, http.StatusOK, resp)
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req LoadRequest
	if r.ContentLength != 0 {
		if err := s.decodeBody(w, r, &req); err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
	}
	entry, err := s.reg.Load(name, req.Path)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, fs.ErrNotExist) {
			status = http.StatusNotFound
		}
		s.fail(w, status, err)
		return
	}
	if req.MakeDefault {
		if err := s.reg.SetDefault(name); err != nil {
			s.fail(w, http.StatusInternalServerError, err)
			return
		}
	}
	s.metrics.loadsTotal.Add(1)
	_, def := s.reg.List()
	s.reply(w, http.StatusOK, modelInfo(entry, def))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status string `json:"status"`
		Models int    `json:"models"`
		Ready  bool   `json:"ready"`
		Uptime string `json:"uptime"`
	}
	n := s.reg.Len()
	s.reply(w, http.StatusOK, health{
		Status: "ok",
		Models: n,
		Ready:  n > 0,
		Uptime: time.Since(s.metrics.start).Round(time.Millisecond).String(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	entries, _ := s.reg.List()
	pools := make([]poolStat, 0, len(entries))
	for _, e := range entries {
		free, inUse := e.Est.SessionPoolStats()
		pools = append(pools, poolStat{model: e.Name, free: free, inUse: inUse})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(s.metrics.render(pools)))
}

// ---- helpers ----

func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	return nil
}

func (s *Server) reply(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.reply(w, status, errorResponse{Error: err.Error()})
}

// EncodeQuery converts an internal query into its wire form — the helper
// clients and the load-test harness use to build request bodies.
func EncodeQuery(q query.Query) (QueryJSON, error) {
	out := QueryJSON{Tables: q.Tables}
	for _, f := range q.Filters {
		fj := FilterJSON{Table: f.Table, Col: f.Col, Op: f.Op.String()}
		if f.Op == query.OpIn {
			for _, v := range f.Set {
				switch v.K {
				case value.KindInt:
					fj.Set = append(fj.Set, v.I)
				case value.KindStr:
					fj.Set = append(fj.Set, v.S)
				default:
					return QueryJSON{}, fmt.Errorf("filter %s: NULL in IN set has no wire form", f)
				}
			}
		} else {
			switch f.Val.K {
			case value.KindInt:
				i := f.Val.I
				fj.Int = &i
			case value.KindStr:
				s := f.Val.S
				fj.Str = &s
			default:
				return QueryJSON{}, fmt.Errorf("filter %s: NULL literal has no wire form", f)
			}
		}
		out.Filters = append(out.Filters, fj)
	}
	return out, nil
}

// decodeQuery converts the wire form into the internal query model.
func decodeQuery(qj QueryJSON) (query.Query, error) {
	q := query.Query{Tables: qj.Tables}
	for _, fj := range qj.Filters {
		f, err := decodeFilter(fj)
		if err != nil {
			return query.Query{}, err
		}
		q.Filters = append(q.Filters, f)
	}
	return q, nil
}

func decodeFilter(fj FilterJSON) (query.Filter, error) {
	op, err := decodeOp(fj.Op)
	if err != nil {
		return query.Filter{}, err
	}
	f := query.Filter{Table: fj.Table, Col: fj.Col, Op: op}
	if op == query.OpIn {
		if len(fj.Set) == 0 {
			return query.Filter{}, fmt.Errorf("filter %s.%s: IN requires a non-empty \"set\"", fj.Table, fj.Col)
		}
		if fj.Int != nil || fj.Str != nil {
			return query.Filter{}, fmt.Errorf("filter %s.%s: IN takes \"set\", not \"int\"/\"str\"", fj.Table, fj.Col)
		}
		for _, el := range fj.Set {
			v, err := decodeSetElement(el)
			if err != nil {
				return query.Filter{}, fmt.Errorf("filter %s.%s: %w", fj.Table, fj.Col, err)
			}
			f.Set = append(f.Set, v)
		}
		return f, nil
	}
	switch {
	case fj.Int != nil && fj.Str == nil && fj.Set == nil:
		f.Val = value.Int(*fj.Int)
	case fj.Str != nil && fj.Int == nil && fj.Set == nil:
		f.Val = value.Str(*fj.Str)
	default:
		return query.Filter{}, fmt.Errorf("filter %s.%s: exactly one of \"int\" or \"str\" must be set", fj.Table, fj.Col)
	}
	return f, nil
}

func decodeSetElement(el any) (value.Value, error) {
	switch v := el.(type) {
	case string:
		return value.Str(v), nil
	case int64: // EncodeQuery output used in-process, without a JSON round trip
		return value.Int(v), nil
	case float64:
		if v != math.Trunc(v) || math.Abs(v) > 1<<53 {
			return value.Value{}, fmt.Errorf("set element %v is not an exact integer", v)
		}
		return value.Int(int64(v)), nil
	default:
		return value.Value{}, fmt.Errorf("set element %v (%T) must be a string or integer", el, el)
	}
}

func decodeOp(op string) (query.Op, error) {
	switch strings.ToUpper(strings.TrimSpace(op)) {
	case "=", "==", "EQ":
		return query.OpEq, nil
	case "<", "LT":
		return query.OpLt, nil
	case "<=", "LE":
		return query.OpLe, nil
	case ">", "GT":
		return query.OpGt, nil
	case ">=", "GE":
		return query.OpGe, nil
	case "IN":
		return query.OpIn, nil
	default:
		return 0, fmt.Errorf("unknown operator %q (want =, <, <=, >, >=, IN)", op)
	}
}
