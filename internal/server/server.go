package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	hist "neurocard/internal/baselines/histogram"
	"neurocard/internal/core"
	"neurocard/internal/query"
	"neurocard/internal/value"
)

// Config tunes the serving daemon.
type Config struct {
	// ModelsDir is where relative model names resolve to checkpoint files
	// (<dir>/<name>.ckpt).
	ModelsDir string

	// Workers bounds the concurrency of batch estimates (≤0 = GOMAXPROCS).
	Workers int

	// MaxBatch caps queries per estimate request (default 1024).
	MaxBatch int

	// MaxBodyBytes caps request body sizes (default 8 MiB).
	MaxBodyBytes int64

	// FuseMaxBatch caps single-query requests fused per coalesced flush
	// (default 64).
	FuseMaxBatch int

	// FuseWindow is the maximum time a coalescer holds a batch open waiting
	// for concurrent requests to fuse (default 1.5ms). The effective window
	// adapts to load and decays to zero when traffic is a trickle.
	FuseWindow time.Duration

	// FuseQueue bounds pending coalesced requests per model; a full queue
	// answers 429 + Retry-After (default 1024).
	FuseQueue int

	// NoCoalesce serves single-query requests inline on their handler
	// goroutine instead of fusing them — the pre-coalescer behavior, kept
	// for A/B measurement and as an operational escape hatch.
	NoCoalesce bool

	// RequestTimeout bounds each estimate request end to end, including
	// coalescer queueing and sampling (0 = unbounded). Clients may tighten —
	// never loosen — their own budget with an X-Deadline-Ms header; expiry
	// answers 504 and increments neurocard_request_timeouts_total.
	RequestTimeout time.Duration

	// Breaker* tune the per-model circuit breaker. A negative
	// BreakerThreshold disables breakers entirely; zero values select the
	// defaults (window 20, min samples 10, threshold 0.5, cooldown 1s,
	// probes 3).
	BreakerWindow     int
	BreakerMinSamples int
	BreakerThreshold  float64
	BreakerCooldown   time.Duration
	BreakerProbes     int

	// NoFallback disables the per-model histogram shadow estimator; an open
	// breaker then answers 503 instead of serving degraded estimates.
	NoFallback bool

	// DefaultPrecision is the serving precision applied to model loads that
	// name none themselves (the daemon's -precision flag). Empty keeps each
	// checkpoint's stored precision. Per-load overrides come through
	// LoadRequest.Precision.
	DefaultPrecision core.Precision

	// SLOLatencyP99 is the p99 request-latency target exported on /metrics
	// as the SLO gauges (default 25ms).
	SLOLatencyP99 time.Duration

	// JournalDir is the root of the per-model write-ahead row journals
	// (<dir>/<model>/journal-*.seg). Empty disables ingest: the ingest
	// endpoint answers 503, because rows cannot be made durable.
	JournalDir string

	// MaxStaleness bounds how long an acknowledged row may wait for a model
	// refresh before /readyz reports the instance degraded (the -max-staleness
	// flag). 0 disables staleness gating.
	MaxStaleness time.Duration

	// Clock feeds the coalescer's window timer; nil means real time. Tests
	// inject a fake to drive window-timeout flushes deterministically.
	Clock Clock
}

// Server is the HTTP serving layer: a registry of loaded estimators plus the
// JSON and binary APIs. Create with New, mount Handler on any http.Server,
// and Close it on shutdown to stop the per-model coalescer goroutines.
type Server struct {
	cfg     Config
	reg     *Registry
	metrics *metrics
	mux     *http.ServeMux

	fusers    sync.Map // model name → *fuser
	ingests   sync.Map // model name → *ingestState
	closing   chan struct{}
	closeOnce sync.Once
}

// New creates a server with an empty registry.
func New(cfg Config) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.FuseMaxBatch <= 0 {
		cfg.FuseMaxBatch = 64
	}
	if cfg.FuseWindow == 0 {
		cfg.FuseWindow = 1500 * time.Microsecond
	} else if cfg.FuseWindow < 0 {
		cfg.FuseWindow = 0
	}
	if cfg.FuseQueue <= 0 {
		cfg.FuseQueue = 1024
	}
	if cfg.SLOLatencyP99 <= 0 {
		cfg.SLOLatencyP99 = 25 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	s := &Server{
		cfg:     cfg,
		reg:     NewRegistry(cfg.ModelsDir),
		metrics: newMetrics(cfg.SLOLatencyP99),
		mux:     http.NewServeMux(),
		closing: make(chan struct{}),
	}
	s.reg.defaultPrecision = cfg.DefaultPrecision
	if cfg.BreakerThreshold >= 0 {
		bc := breakerConfig{
			Window:     cfg.BreakerWindow,
			MinSamples: cfg.BreakerMinSamples,
			Threshold:  cfg.BreakerThreshold,
			Cooldown:   cfg.BreakerCooldown,
			Probes:     cfg.BreakerProbes,
		}
		s.reg.newBreaker = func() *breaker { return newBreaker(bc) }
	}
	if !cfg.NoFallback {
		s.reg.newFallback = func(est *core.Estimator) *hist.Estimator {
			sch := est.Schema()
			if sch == nil {
				return nil
			}
			return hist.New(sch, hist.DefaultConfig())
		}
	}
	s.mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("POST /v1/models/{name}/load", s.handleLoad)
	s.mux.HandleFunc("POST /v1/models/{name}/ingest", s.handleIngest)
	s.mux.HandleFunc("DELETE /v1/models/{name}", s.handleUnload)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /livez", s.handleLivez)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Close stops every coalescer goroutine, fails requests caught mid-queue
// with 503, and syncs + closes every ingest journal. Idempotent; the HTTP
// listener is the caller's to shut down.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.closing)
		s.closeIngest()
	})
}

// Registry exposes the model registry (daemon preloading, tests).
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the root HTTP handler: the route mux wrapped in
// panic-recovery middleware, so a handler bug answers one request with a 500
// instead of killing its connection (or, uncaught anywhere, the process).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler { // deliberate abort, not a fault
					panic(rec)
				}
				s.metrics.panicsTotal.Add(1)
				s.fail(w, http.StatusInternalServerError, fmt.Errorf("server: internal panic: %v", rec))
			}
		}()
		s.mux.ServeHTTP(w, r)
	})
}

// ---- wire types ----

// FilterJSON is one predicate clause of an estimate request. The value
// fields depend on the op: comparison ops ("=", "!=", "<", "<=", ">", ">=")
// take exactly one of "int" or "str"; "IN" / "NOT IN" take "set";
// "BETWEEN" takes "int"+"int2" or "str"+"str2" (inclusive bounds);
// "IS NULL" / "IS NOT NULL" take no value. "or" lists disjunctive
// alternatives on the same table/column — the clause matches when its own
// predicate or any alternative matches; alternatives cannot nest further.
type FilterJSON struct {
	Table string       `json:"table"`
	Col   string       `json:"col"`
	Op    string       `json:"op"`
	Int   *int64       `json:"int,omitempty"`
	Str   *string      `json:"str,omitempty"`
	Int2  *int64       `json:"int2,omitempty"`
	Str2  *string      `json:"str2,omitempty"`
	Set   []any        `json:"set,omitempty"`
	Or    []FilterJSON `json:"or,omitempty"`
}

// QueryJSON is a join query over connected tables plus conjunctive filters.
type QueryJSON struct {
	Tables  []string     `json:"tables"`
	Filters []FilterJSON `json:"filters,omitempty"`
}

// EstimateRequest asks for cardinality estimates. Exactly one of Query
// (single) or Queries (batch) must be set. A Seed makes results reproducible:
// query i derives its randomness from (seed, i) regardless of concurrency.
type EstimateRequest struct {
	Model   string      `json:"model,omitempty"`
	Query   *QueryJSON  `json:"query,omitempty"`
	Queries []QueryJSON `json:"queries,omitempty"`
	Seed    *int64      `json:"seed,omitempty"`
	Workers int         `json:"workers,omitempty"`
}

// EstimateResponse carries the results. Est is set for single-query
// requests, Ests for batches. A well-formed batch answers 200 even when some
// queries fail: Errors, when present, aligns positionally with Ests and
// holds "" for the queries that succeeded (their Ests entry is 0 otherwise).
type EstimateResponse struct {
	Model  string    `json:"model"`
	Est    *float64  `json:"est,omitempty"`
	Ests   []float64 `json:"ests,omitempty"`
	Errors []string  `json:"errors,omitempty"`
	// Degraded marks estimates served by the histogram fallback estimator
	// (model circuit open) rather than the neural model.
	Degraded bool  `json:"degraded,omitempty"`
	Count    int   `json:"count"`
	Micros   int64 `json:"micros"`
}

// ModelInfo describes one registry entry — a concrete model (Kind "model")
// or a logical model composed of shard entries (Kind "logical", with the
// shard names in Shards and the model-level fields zeroed).
type ModelInfo struct {
	Name       string   `json:"name"`
	Kind       string   `json:"kind"`
	Shards     []string `json:"shards,omitempty"`
	Path       string   `json:"path"`
	Default    bool     `json:"default"`
	Generation int      `json:"generation"`
	LoadedAt   string   `json:"loaded_at"`
	Tables     int      `json:"tables"`
	JoinSize   float64  `json:"join_size"`
	ModelBytes int      `json:"model_bytes"`
	// Precision is the entry's serving element width ("float64"/"float32");
	// WeightBytes the resident bytes of the weights its serving kernels read.
	Precision   string `json:"precision"`
	WeightBytes int    `json:"weight_bytes"`
	SamplesSeen int    `json:"samples_seen"`
	PSamples    int    `json:"psamples"`
}

// ModelsResponse lists loaded models.
type ModelsResponse struct {
	Models []ModelInfo `json:"models"`
}

// LoadRequest optionally overrides the checkpoint path, serving precision,
// and default flag for a model load. Precision ("float64"/"float32", empty =
// server default, failing that the checkpoint's own) is per load: reloading
// a model with a different precision hot-swaps its serving width.
type LoadRequest struct {
	Path        string `json:"path,omitempty"`
	Precision   string `json:"precision,omitempty"`
	MakeDefault bool   `json:"default,omitempty"`
	// Manifest loads <models>/<name>.manifest.json (or Path) as a logical
	// model: every shard checkpoint it lists is loaded (hot-swapping those
	// already present) and the group becomes addressable under name.
	Manifest bool `json:"manifest,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ---- handlers ----

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	done := s.metrics.requestStart()
	bin := strings.HasPrefix(r.Header.Get("Content-Type"), ContentTypeBinary)

	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		done(0, true)
		return
	}
	if cancel != nil {
		defer cancel()
	}

	var (
		model   string
		seed    *int64
		workers int
		single  bool
		queries []query.Query
		buf     *[]byte // binary scratch: holds the body, then the reply
	)
	if bin {
		s.metrics.binaryTotal.Add(1)
		buf = wireBufPool.Get().(*[]byte)
		defer func() {
			*buf = (*buf)[:0]
			wireBufPool.Put(buf)
		}()
		body, err := s.readBinBody(w, r, (*buf)[:0])
		*buf = body
		var breq BinRequest
		if err == nil {
			breq, err = DecodeBinRequest(body)
		}
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			done(0, true)
			return
		}
		model, seed, queries = breq.Model, breq.Seed, breq.Queries
		single = len(queries) == 1
	} else {
		var req EstimateRequest
		if err := s.decodeBody(w, r, &req); err != nil {
			s.fail(w, http.StatusBadRequest, err)
			done(0, true)
			return
		}
		single = req.Query != nil
		if single == (len(req.Queries) > 0) {
			s.fail(w, http.StatusBadRequest, errors.New("exactly one of \"query\" or \"queries\" must be set"))
			done(0, true)
			return
		}
		qs := req.Queries
		if single {
			qs = []QueryJSON{*req.Query}
		}
		queries = make([]query.Query, len(qs))
		for i := range qs {
			q, err := DecodeQuery(qs[i])
			if err != nil {
				s.fail(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
				done(0, true)
				return
			}
			queries[i] = q
		}
		model, seed, workers = req.Model, req.Seed, req.Workers
	}
	if len(queries) > s.cfg.MaxBatch {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("batch of %d queries exceeds limit %d", len(queries), s.cfg.MaxBatch))
		done(0, true)
		return
	}
	if lg := s.reg.GetLogical(model); lg != nil {
		s.serveLogical(ctx, w, lg, queries, seed, workers, single, bin, buf, done)
		return
	}
	entry, err := s.reg.Get(model)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		done(0, true)
		return
	}

	start := time.Now()
	if single {
		est, degraded, err := s.estimateSingle(ctx, entry, model, queries[0], seed)
		if err != nil {
			status := estimateStatus(err)
			if status == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			if status == http.StatusGatewayTimeout {
				s.metrics.timeoutsTotal.Add(1)
			}
			s.fail(w, status, err)
			done(0, true)
			return
		}
		if degraded {
			s.metrics.fallbackTotal.Add(1)
		}
		if bin {
			s.replyBin(w, buf, entry.Name, []float64{est}, nil, degraded)
		} else {
			s.reply(w, http.StatusOK, EstimateResponse{
				Model:    entry.Name,
				Est:      &est,
				Degraded: degraded,
				Count:    1,
				Micros:   time.Since(start).Microseconds(),
			})
		}
		done(1, false)
		return
	}

	// Batch: one registry resolution, one EstimateItems run over pooled
	// sessions (each worker holds one session across its queries), and
	// per-query positional errors — a bad query no longer poisons its
	// batchmates. Seeded batches reproduce EstimateBatchSeeded exactly:
	// query i draws from (seed, i); unseeded from (config seed, i).
	//
	// Degradation is whole-request: an open breaker answers the entire batch
	// from the fallback estimator with Degraded set; a closed breaker runs
	// the model and feeds every item's outcome back into the window.
	br := entry.Breaker
	degraded := false
	var ests []float64
	var errs []error
	if br != nil && !br.allow() {
		if entry.Fallback == nil {
			s.fail(w, http.StatusServiceUnavailable, errBreakerOpen)
			done(0, true)
			return
		}
		degraded = true
		ests = make([]float64, len(queries))
		errs = make([]error, len(queries))
		for i, q := range queries {
			ests[i], errs[i] = s.fallbackEstimate(entry, q)
		}
	} else {
		base := entry.Est.Config().Seed
		if seed != nil {
			base = *seed
		}
		items := make([]core.BatchItem, len(queries))
		for i, q := range queries {
			items[i] = core.BatchItem{Query: q, Seed: base, Idx: int64(i), Ctx: ctx}
		}
		ests, errs = entry.Est.EstimateItems(items, s.estimateWorkers(workers, len(items)))
	}
	var errStrings []string
	nOK := 0
	for i, est := range ests {
		qerr := errs[i]
		if qerr == nil && !finitePositive(est) {
			qerr = fmt.Errorf("%w %g", errNonFinite, est)
			s.metrics.nonfiniteTotal.Add(1)
		}
		if !degraded {
			if errors.Is(qerr, context.DeadlineExceeded) {
				s.metrics.timeoutsTotal.Add(1)
			}
			if br != nil {
				if modelFault(qerr) {
					br.record(true)
				} else if qerr == nil {
					br.record(false)
				}
			}
		}
		if qerr != nil {
			if errStrings == nil {
				errStrings = make([]string, len(ests))
			}
			errStrings[i] = qerr.Error()
			ests[i] = 0
			continue
		}
		nOK++
	}
	if degraded {
		s.metrics.fallbackTotal.Add(int64(nOK))
	}
	if bin {
		s.replyBin(w, buf, entry.Name, ests, errStrings, degraded)
	} else {
		s.reply(w, http.StatusOK, EstimateResponse{
			Model:    entry.Name,
			Ests:     ests,
			Errors:   errStrings,
			Degraded: degraded,
			Count:    len(ests),
			Micros:   time.Since(start).Microseconds(),
		})
	}
	done(nOK, errStrings != nil)
}

// requestContext derives the request's estimate budget: the server-wide
// RequestTimeout, optionally tightened (never loosened) by the client's
// X-Deadline-Ms header. The returned context also inherits client-disconnect
// cancellation from the http.Request.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	timeout := s.cfg.RequestTimeout
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("invalid X-Deadline-Ms header %q (want a positive integer)", h)
		}
		if d := time.Duration(ms) * time.Millisecond; timeout == 0 || d < timeout {
			timeout = d
		}
	}
	if timeout <= 0 {
		return r.Context(), nil, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	return ctx, cancel, nil
}

// estimateSingle serves one single-query estimate with the full
// fault-tolerance ladder. An open breaker short-circuits to the fallback
// estimator (degraded=true). Otherwise the model runs — through the
// coalescer by default, inline under NoCoalesce; both paths yield identical
// results for a seeded request ((seed, 0)) and independent samples for an
// unseeded one — and its outcome feeds the breaker: panics, non-finite
// estimates, and deadline expiries count as model faults, caller mistakes
// and backpressure do not. A model fault other than a timeout (the client's
// budget is spent; per the API contract expiry answers 504) is then masked
// by the fallback when one exists.
func (s *Server) estimateSingle(ctx context.Context, entry *Entry, model string, q query.Query, seed *int64) (est float64, degraded bool, err error) {
	br := entry.Breaker
	if br != nil && !br.allow() {
		if entry.Fallback == nil {
			return 0, false, errBreakerOpen
		}
		est, err = s.fallbackEstimate(entry, q)
		return est, err == nil, err
	}

	est, err = s.modelEstimate(ctx, entry, model, q, seed)
	if err == nil && !finitePositive(est) {
		err = fmt.Errorf("%w %g", errNonFinite, est)
		s.metrics.nonfiniteTotal.Add(1)
	}
	if br != nil {
		if modelFault(err) {
			br.record(true)
		} else if err == nil {
			br.record(false)
		}
	}
	if err != nil && entry.Fallback != nil && modelFault(err) && !errors.Is(err, context.DeadlineExceeded) {
		if fb, ferr := s.fallbackEstimate(entry, q); ferr == nil {
			return fb, true, nil
		}
	}
	return est, false, err
}

// modelEstimate runs one single-query estimate on the neural model.
func (s *Server) modelEstimate(ctx context.Context, entry *Entry, model string, q query.Query, seed *int64) (float64, error) {
	if !s.cfg.NoCoalesce {
		return s.coalesce(ctx, model, q, seed)
	}
	if seed != nil {
		return entry.Est.EstimateSeededIndexedCtx(ctx, q, *seed, 0)
	}
	return entry.Est.EstimateCtx(ctx, q)
}

// fallbackEstimate answers one query from the entry's histogram shadow
// estimator, applying the same sanity guard as the model path.
func (s *Server) fallbackEstimate(entry *Entry, q query.Query) (float64, error) {
	est, err := entry.Fallback.Estimate(q)
	if err != nil {
		return 0, err
	}
	if !finitePositive(est) {
		s.metrics.nonfiniteTotal.Add(1)
		return 0, fmt.Errorf("%w %g (fallback)", errNonFinite, est)
	}
	return est, nil
}

// finitePositive is the estimate sanity guard: anything else is an internal
// error and must never be served as a cardinality.
func finitePositive(est float64) bool {
	return !math.IsNaN(est) && !math.IsInf(est, 0) && est > 0
}

// modelFault reports whether an estimate error indicts the model itself —
// the outcomes that feed the circuit breaker. Caller mistakes (bad queries),
// backpressure, shutdown, and client disconnects do not.
func modelFault(err error) bool {
	return errors.Is(err, core.ErrEstimatePanic) ||
		errors.Is(err, errNonFinite) ||
		errors.Is(err, context.DeadlineExceeded)
}

// estimateStatus maps a single-query estimate error onto its HTTP status.
func estimateStatus(err error) int {
	switch {
	case errors.Is(err, errSaturated):
		return http.StatusTooManyRequests
	case errors.Is(err, errClosing), errors.Is(err, errBreakerOpen), errors.Is(err, errShardMissing):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, errNonFinite), errors.Is(err, core.ErrEstimatePanic):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// modelInfo builds the wire description of a registry entry; the single
// constructor keeps the /v1/models listing and the load response consistent.
func modelInfo(e, def *Entry) ModelInfo {
	return ModelInfo{
		Name:        e.Name,
		Kind:        "model",
		Path:        e.Path,
		Default:     def != nil && def.Name == e.Name && def.Gen == e.Gen,
		Generation:  e.Gen,
		LoadedAt:    e.LoadedAt.UTC().Format(time.RFC3339Nano),
		Tables:      e.Est.NumTables(),
		JoinSize:    e.Est.JoinSize(),
		ModelBytes:  e.Est.Bytes(),
		Precision:   string(e.Est.Precision()),
		WeightBytes: e.Est.ServingWeightBytes(),
		SamplesSeen: e.Est.Model().SamplesSeen(),
		PSamples:    e.Est.Config().PSamples,
	}
}

// logicalInfo builds the wire description of a logical model.
func logicalInfo(lg *Logical) ModelInfo {
	return ModelInfo{
		Name:       lg.Name,
		Kind:       "logical",
		Shards:     lg.Man.ShardNames(),
		Path:       lg.Path,
		Generation: lg.Gen,
		LoadedAt:   lg.LoadedAt.UTC().Format(time.RFC3339Nano),
		Tables:     len(lg.Man.Tables()),
	}
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	entries, def := s.reg.List()
	logicals := s.reg.ListLogical()
	resp := ModelsResponse{Models: make([]ModelInfo, 0, len(entries)+len(logicals))}
	for _, e := range entries {
		resp.Models = append(resp.Models, modelInfo(e, def))
	}
	for _, lg := range logicals {
		resp.Models = append(resp.Models, logicalInfo(lg))
	}
	s.reply(w, http.StatusOK, resp)
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req LoadRequest
	if r.ContentLength != 0 {
		if err := s.decodeBody(w, r, &req); err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
	}
	if req.Manifest {
		if req.Precision != "" || req.MakeDefault {
			s.fail(w, http.StatusBadRequest, errors.New("manifest loads take no precision or default flag; logical models are addressed by explicit name"))
			return
		}
		lg, err := s.reg.LoadLogical(name, req.Path)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, fs.ErrNotExist) {
				status = http.StatusNotFound
			}
			s.fail(w, status, err)
			return
		}
		s.metrics.loadsTotal.Add(1)
		s.reply(w, http.StatusOK, logicalInfo(lg))
		return
	}
	entry, err := s.reg.LoadPrecision(name, req.Path, core.Precision(req.Precision))
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, fs.ErrNotExist) {
			status = http.StatusNotFound
		}
		s.fail(w, status, err)
		return
	}
	if req.MakeDefault {
		if err := s.reg.SetDefault(name); err != nil {
			s.fail(w, http.StatusInternalServerError, err)
			return
		}
	}
	s.metrics.loadsTotal.Add(1)
	_, def := s.reg.List()
	s.reply(w, http.StatusOK, modelInfo(entry, def))
}

// handleUnload removes a model or logical model from serving. In-flight
// requests finish on the entry they hold; the per-model coalescer goroutine
// (if any) stays bound to the name and simply fails new work until a
// reload, matching hot-swap behavior.
func (s *Server) handleUnload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.Unload(name); err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	s.metrics.unloadsTotal.Add(1)
	s.reply(w, http.StatusOK, struct {
		Unloaded string `json:"unloaded"`
	}{name})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status   string `json:"status"`
		Models   int    `json:"models"`
		Ready    bool   `json:"ready"`
		Degraded bool   `json:"degraded"`
		Uptime   string `json:"uptime"`
	}
	n := s.reg.Len()
	s.reply(w, http.StatusOK, health{
		Status:   "ok",
		Models:   n,
		Ready:    n > 0,
		Degraded: s.degraded(),
		Uptime:   time.Since(s.metrics.start).Round(time.Millisecond).String(),
	})
}

// handleLivez is the liveness probe: the process is up and serving HTTP.
// Always 200 — restarts are for hung processes, not missing models.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	s.reply(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"alive"})
}

// handleReadyz is the readiness probe: 503 until a model is loaded (don't
// route traffic here yet), 200 otherwise — including degraded-but-serving,
// which is reported in the body for observability but keeps the instance in
// rotation, since it still answers every request (via the fallback).
//
// Degraded covers both causes — a non-closed breaker and ingest staleness
// beyond -max-staleness — with each reported in its own field so staleness
// never masks breaker state (and vice versa).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type readiness struct {
		Status   string `json:"status"`
		Ready    bool   `json:"ready"`
		Models   int    `json:"models"`
		Degraded bool   `json:"degraded"`
		// Breakers is true when any model's circuit breaker is not closed;
		// Stale lists models whose journaled rows exceed the staleness bound.
		Breakers bool     `json:"breakers,omitempty"`
		Stale    []string `json:"stale,omitempty"`
	}
	n := s.reg.Len()
	breakers := s.degraded()
	stale := s.staleModels()
	resp := readiness{
		Status:   "ok",
		Ready:    n > 0,
		Models:   n,
		Degraded: breakers || len(stale) > 0,
		Breakers: breakers,
		Stale:    stale,
	}
	status := http.StatusOK
	if !resp.Ready {
		resp.Status = "no models loaded"
		status = http.StatusServiceUnavailable
	} else if len(stale) > 0 {
		resp.Status = fmt.Sprintf("stale: %s behind by more than %s", strings.Join(stale, ", "), s.cfg.MaxStaleness)
	}
	s.reply(w, status, resp)
}

// degraded reports whether any model's breaker is currently not closed.
func (s *Server) degraded() bool {
	entries, _ := s.reg.List()
	for _, e := range entries {
		if e.Breaker != nil && e.Breaker.currentState() != breakerClosed {
			return true
		}
	}
	return false
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Entries and retired totals come from one consistent snapshot, and the
	// per-generation stats below are read from the snapshotted entry (not a
	// fresh registry lookup), so a hot swap racing the scrape can only make
	// this read miss the very newest generation's few counts — never count
	// a generation twice. Counters stay monotone.
	entries, retired := s.reg.Snapshot()
	pools := make([]poolStat, 0, len(entries))
	for _, e := range entries {
		free, inUse := e.Est.SessionPoolStats()
		ps := poolStat{
			model:       e.Name,
			free:        free,
			inUse:       inUse,
			plans:       e.Est.PlanCacheStats(),
			precision:   string(e.Est.Precision()),
			weightBytes: e.Est.ServingWeightBytes(),
			dataGen:     e.Est.DataGeneration(),
		}
		if e.Breaker != nil {
			ps.breakerState = e.Breaker.currentState()
			ps.breakerOpens = e.Breaker.opens.Load()
			ps.hasBreaker = true
		}
		if t, ok := retired[e.Name]; ok {
			ps.plans.Hits += t.PlanHits
			ps.plans.Misses += t.PlanMisses
			ps.plans.Evictions += t.PlanEvictions
			ps.plans.Invalidations += t.PlanInvalidations
			ps.dataGen += t.DataGenerations
			ps.breakerOpens += t.BreakerOpens
		}
		pools = append(pools, ps)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(s.metrics.render(pools, s.coalesceStats(), s.reg.Quarantined(), s.ingestStats())))
}

// ---- helpers ----

// readBinBody reads the whole request body into dst (a pooled scratch slice)
// without intermediate allocation, bounded by MaxBodyBytes.
func (s *Server) readBinBody(w http.ResponseWriter, r *http.Request, dst []byte) ([]byte, error) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := body.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, fmt.Errorf("read request: %w", err)
		}
	}
}

// replyBin writes a 200 binary estimate response, reusing the request's
// pooled scratch buffer for the encoding.
func (s *Server) replyBin(w http.ResponseWriter, buf *[]byte, model string, ests []float64, errs []string, degraded bool) {
	out := AppendBinResponse((*buf)[:0], model, ests, errs, degraded)
	*buf = out
	w.Header().Set("Content-Type", ContentTypeBinary)
	w.Header().Set("Content-Length", strconv.Itoa(len(out)))
	_, _ = w.Write(out)
}

func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	return nil
}

func (s *Server) reply(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.reply(w, status, errorResponse{Error: err.Error()})
}

// EncodeQuery converts an internal query into its wire form — the helper
// clients and the load-test harness use to build request bodies. The
// encoding is canonical: encode → JSON → decode → encode is the identity.
func EncodeQuery(q query.Query) (QueryJSON, error) {
	out := QueryJSON{Tables: q.Tables}
	for _, f := range q.Filters {
		fj, err := encodeFilter(f)
		if err != nil {
			return QueryJSON{}, err
		}
		out.Filters = append(out.Filters, fj)
	}
	return out, nil
}

// encodeFilter converts one filter clause, including its OR alternatives
// (emitted with the group's table/column made explicit).
func encodeFilter(f query.Filter) (FilterJSON, error) {
	fj := FilterJSON{Table: f.Table, Col: f.Col, Op: f.Op.String()}
	if err := encodeFilterValues(f, &fj); err != nil {
		return FilterJSON{}, err
	}
	for _, alt := range f.Or {
		if alt.Table == "" {
			alt.Table = f.Table
		}
		if alt.Col == "" {
			alt.Col = f.Col
		}
		aj, err := encodeFilter(alt)
		if err != nil {
			return FilterJSON{}, err
		}
		fj.Or = append(fj.Or, aj)
	}
	return fj, nil
}

// encodeFilterValues fills the op-appropriate value fields of fj.
func encodeFilterValues(f query.Filter, fj *FilterJSON) error {
	setInt := func(dst **int64, v int64) { i := v; *dst = &i }
	setStr := func(dst **string, v string) { s := v; *dst = &s }
	encodeVal := func(v value.Value, i **int64, s **string) error {
		switch v.K {
		case value.KindInt:
			setInt(i, v.I)
		case value.KindStr:
			setStr(s, v.S)
		default:
			return fmt.Errorf("filter %s: NULL literal has no wire form (use IS NULL)", f)
		}
		return nil
	}
	switch f.Op {
	case query.OpIsNull, query.OpIsNotNull:
		return nil
	case query.OpIn, query.OpNotIn:
		for _, v := range f.Set {
			switch v.K {
			case value.KindInt:
				fj.Set = append(fj.Set, v.I)
			case value.KindStr:
				fj.Set = append(fj.Set, v.S)
			default:
				return fmt.Errorf("filter %s: NULL in %s set has no wire form", f, f.Op)
			}
		}
		return nil
	case query.OpBetween:
		if err := encodeVal(f.Val, &fj.Int, &fj.Str); err != nil {
			return err
		}
		return encodeVal(f.Hi, &fj.Int2, &fj.Str2)
	default:
		return encodeVal(f.Val, &fj.Int, &fj.Str)
	}
}

// DecodeQuery converts the wire form into the internal query model — the
// inverse of EncodeQuery, exported so clients can verify round trips.
func DecodeQuery(qj QueryJSON) (query.Query, error) {
	q := query.Query{Tables: qj.Tables}
	for _, fj := range qj.Filters {
		f, err := decodeFilter(fj, true)
		if err != nil {
			return query.Query{}, err
		}
		q.Filters = append(q.Filters, f)
	}
	return q, nil
}

func decodeFilter(fj FilterJSON, allowOr bool) (query.Filter, error) {
	op, err := decodeOp(fj.Op)
	if err != nil {
		return query.Filter{}, err
	}
	f := query.Filter{Table: fj.Table, Col: fj.Col, Op: op}
	where := fmt.Sprintf("filter %s.%s", fj.Table, fj.Col)

	hasSecond := fj.Int2 != nil || fj.Str2 != nil
	switch op {
	case query.OpIsNull, query.OpIsNotNull:
		if fj.Int != nil || fj.Str != nil || hasSecond || len(fj.Set) > 0 {
			return query.Filter{}, fmt.Errorf("%s: %s takes no value", where, op)
		}
	case query.OpIn, query.OpNotIn:
		if len(fj.Set) == 0 {
			return query.Filter{}, fmt.Errorf("%s: %s requires a non-empty \"set\"", where, op)
		}
		if fj.Int != nil || fj.Str != nil || hasSecond {
			return query.Filter{}, fmt.Errorf("%s: %s takes \"set\", not \"int\"/\"str\"", where, op)
		}
		for _, el := range fj.Set {
			v, err := decodeSetElement(el)
			if err != nil {
				return query.Filter{}, fmt.Errorf("%s: %w", where, err)
			}
			f.Set = append(f.Set, v)
		}
	case query.OpBetween:
		if len(fj.Set) > 0 {
			return query.Filter{}, fmt.Errorf("%s: BETWEEN takes bounds, not \"set\"", where)
		}
		switch {
		case fj.Int != nil && fj.Int2 != nil && fj.Str == nil && fj.Str2 == nil:
			f.Val, f.Hi = value.Int(*fj.Int), value.Int(*fj.Int2)
		case fj.Str != nil && fj.Str2 != nil && fj.Int == nil && fj.Int2 == nil:
			f.Val, f.Hi = value.Str(*fj.Str), value.Str(*fj.Str2)
		default:
			return query.Filter{}, fmt.Errorf("%s: BETWEEN requires \"int\"+\"int2\" or \"str\"+\"str2\"", where)
		}
	default:
		if hasSecond {
			return query.Filter{}, fmt.Errorf("%s: \"int2\"/\"str2\" only apply to BETWEEN", where)
		}
		switch {
		case fj.Int != nil && fj.Str == nil && fj.Set == nil:
			f.Val = value.Int(*fj.Int)
		case fj.Str != nil && fj.Int == nil && fj.Set == nil:
			f.Val = value.Str(*fj.Str)
		default:
			return query.Filter{}, fmt.Errorf("%s: exactly one of \"int\" or \"str\" must be set", where)
		}
	}

	if len(fj.Or) > 0 && !allowOr {
		return query.Filter{}, fmt.Errorf("%s: \"or\" alternatives cannot nest", where)
	}
	for _, alt := range fj.Or {
		if alt.Table != "" && alt.Table != fj.Table {
			return query.Filter{}, fmt.Errorf("%s: \"or\" alternative references table %q", where, alt.Table)
		}
		if alt.Col != "" && alt.Col != fj.Col {
			return query.Filter{}, fmt.Errorf("%s: \"or\" alternative references column %q", where, alt.Col)
		}
		af, err := decodeFilter(alt, false)
		if err != nil {
			return query.Filter{}, err
		}
		f.Or = append(f.Or, af)
	}
	return f, nil
}

func decodeSetElement(el any) (value.Value, error) {
	switch v := el.(type) {
	case string:
		return value.Str(v), nil
	case int64: // EncodeQuery output used in-process, without a JSON round trip
		return value.Int(v), nil
	case float64:
		if v != math.Trunc(v) || math.Abs(v) > 1<<53 {
			return value.Value{}, fmt.Errorf("set element %v is not an exact integer", v)
		}
		return value.Int(int64(v)), nil
	default:
		return value.Value{}, fmt.Errorf("set element %v (%T) must be a string or integer", el, el)
	}
}

func decodeOp(op string) (query.Op, error) {
	// Case-insensitive with internal whitespace collapsed, so "is  null"
	// and "IS NULL" both parse.
	switch strings.Join(strings.Fields(strings.ToUpper(op)), " ") {
	case "=", "==", "EQ":
		return query.OpEq, nil
	case "!=", "<>", "NEQ":
		return query.OpNeq, nil
	case "<", "LT":
		return query.OpLt, nil
	case "<=", "LE":
		return query.OpLe, nil
	case ">", "GT":
		return query.OpGt, nil
	case ">=", "GE":
		return query.OpGe, nil
	case "IN":
		return query.OpIn, nil
	case "NOT IN", "NOTIN":
		return query.OpNotIn, nil
	case "BETWEEN":
		return query.OpBetween, nil
	case "IS NULL", "ISNULL":
		return query.OpIsNull, nil
	case "IS NOT NULL", "ISNOTNULL":
		return query.OpIsNotNull, nil
	default:
		return 0, fmt.Errorf("unknown operator %q (want =, !=, <, <=, >, >=, IN, NOT IN, BETWEEN, IS NULL, IS NOT NULL)", op)
	}
}
