package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"net/http"
	"runtime"
	"strings"
	"time"

	"neurocard/internal/query"
	"neurocard/internal/value"
)

// Config tunes the serving daemon.
type Config struct {
	// ModelsDir is where relative model names resolve to checkpoint files
	// (<dir>/<name>.ckpt).
	ModelsDir string

	// Workers bounds the concurrency of batch estimates (≤0 = GOMAXPROCS).
	Workers int

	// MaxBatch caps queries per estimate request (default 1024).
	MaxBatch int

	// MaxBodyBytes caps request body sizes (default 8 MiB).
	MaxBodyBytes int64
}

// Server is the HTTP serving layer: a registry of loaded estimators plus the
// JSON API. Create with New, mount Handler on any http.Server.
type Server struct {
	cfg     Config
	reg     *Registry
	metrics *metrics
	mux     *http.ServeMux
}

// New creates a server with an empty registry.
func New(cfg Config) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	s := &Server{
		cfg:     cfg,
		reg:     NewRegistry(cfg.ModelsDir),
		metrics: newMetrics(),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("POST /v1/models/{name}/load", s.handleLoad)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Registry exposes the model registry (daemon preloading, tests).
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ---- wire types ----

// FilterJSON is one predicate clause of an estimate request. The value
// fields depend on the op: comparison ops ("=", "!=", "<", "<=", ">", ">=")
// take exactly one of "int" or "str"; "IN" / "NOT IN" take "set";
// "BETWEEN" takes "int"+"int2" or "str"+"str2" (inclusive bounds);
// "IS NULL" / "IS NOT NULL" take no value. "or" lists disjunctive
// alternatives on the same table/column — the clause matches when its own
// predicate or any alternative matches; alternatives cannot nest further.
type FilterJSON struct {
	Table string       `json:"table"`
	Col   string       `json:"col"`
	Op    string       `json:"op"`
	Int   *int64       `json:"int,omitempty"`
	Str   *string      `json:"str,omitempty"`
	Int2  *int64       `json:"int2,omitempty"`
	Str2  *string      `json:"str2,omitempty"`
	Set   []any        `json:"set,omitempty"`
	Or    []FilterJSON `json:"or,omitempty"`
}

// QueryJSON is a join query over connected tables plus conjunctive filters.
type QueryJSON struct {
	Tables  []string     `json:"tables"`
	Filters []FilterJSON `json:"filters,omitempty"`
}

// EstimateRequest asks for cardinality estimates. Exactly one of Query
// (single) or Queries (batch) must be set. A Seed makes results reproducible:
// query i derives its randomness from (seed, i) regardless of concurrency.
type EstimateRequest struct {
	Model   string      `json:"model,omitempty"`
	Query   *QueryJSON  `json:"query,omitempty"`
	Queries []QueryJSON `json:"queries,omitempty"`
	Seed    *int64      `json:"seed,omitempty"`
	Workers int         `json:"workers,omitempty"`
}

// EstimateResponse carries the results. Est is set for single-query
// requests, Ests for batches.
type EstimateResponse struct {
	Model  string    `json:"model"`
	Est    *float64  `json:"est,omitempty"`
	Ests   []float64 `json:"ests,omitempty"`
	Count  int       `json:"count"`
	Micros int64     `json:"micros"`
}

// ModelInfo describes one registry entry.
type ModelInfo struct {
	Name        string  `json:"name"`
	Path        string  `json:"path"`
	Default     bool    `json:"default"`
	Generation  int     `json:"generation"`
	LoadedAt    string  `json:"loaded_at"`
	Tables      int     `json:"tables"`
	JoinSize    float64 `json:"join_size"`
	ModelBytes  int     `json:"model_bytes"`
	SamplesSeen int     `json:"samples_seen"`
	PSamples    int     `json:"psamples"`
}

// ModelsResponse lists loaded models.
type ModelsResponse struct {
	Models []ModelInfo `json:"models"`
}

// LoadRequest optionally overrides the checkpoint path and default flag for
// a model load.
type LoadRequest struct {
	Path        string `json:"path,omitempty"`
	MakeDefault bool   `json:"default,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ---- handlers ----

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	done := s.metrics.requestStart()
	var req EstimateRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		done(0, true)
		return
	}
	single := req.Query != nil
	if single == (len(req.Queries) > 0) {
		s.fail(w, http.StatusBadRequest, errors.New("exactly one of \"query\" or \"queries\" must be set"))
		done(0, true)
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("batch of %d queries exceeds limit %d", len(req.Queries), s.cfg.MaxBatch))
		done(0, true)
		return
	}
	entry, err := s.reg.Get(req.Model)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		done(0, true)
		return
	}

	qs := req.Queries
	if single {
		qs = []QueryJSON{*req.Query}
	}
	queries := make([]query.Query, len(qs))
	for i := range qs {
		q, err := DecodeQuery(qs[i])
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
			done(0, true)
			return
		}
		queries[i] = q
	}

	// Client-supplied worker counts are capped at the core count: more
	// workers never help (each runs its kernels inline), and an uncapped
	// request could check out MaxBatch pooled sessions that the pool then
	// retains for the model's lifetime.
	maxWorkers := runtime.GOMAXPROCS(0)
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	if workers <= 0 || workers > maxWorkers {
		workers = maxWorkers
	}

	start := time.Now()
	var ests []float64
	switch {
	case single && req.Seed != nil:
		est, eerr := entry.Est.EstimateSeededIndexed(queries[0], *req.Seed, 0)
		ests, err = []float64{est}, eerr
	case single:
		est, eerr := entry.Est.Estimate(queries[0])
		ests, err = []float64{est}, eerr
	case req.Seed != nil:
		ests, err = entry.Est.EstimateBatchSeeded(queries, workers, *req.Seed)
	default:
		ests, err = entry.Est.EstimateBatch(queries, workers)
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		done(0, true)
		return
	}
	for i, est := range ests {
		if math.IsNaN(est) || math.IsInf(est, 0) || est <= 0 {
			s.fail(w, http.StatusInternalServerError, fmt.Errorf("query %d produced non-finite estimate %g", i, est))
			done(0, true)
			return
		}
	}

	resp := EstimateResponse{
		Model:  entry.Name,
		Count:  len(ests),
		Micros: time.Since(start).Microseconds(),
	}
	if single {
		resp.Est = &ests[0]
	} else {
		resp.Ests = ests
	}
	s.reply(w, http.StatusOK, resp)
	done(len(ests), false)
}

// modelInfo builds the wire description of a registry entry; the single
// constructor keeps the /v1/models listing and the load response consistent.
func modelInfo(e, def *Entry) ModelInfo {
	return ModelInfo{
		Name:        e.Name,
		Path:        e.Path,
		Default:     def != nil && def.Name == e.Name && def.Gen == e.Gen,
		Generation:  e.Gen,
		LoadedAt:    e.LoadedAt.UTC().Format(time.RFC3339Nano),
		Tables:      e.Est.NumTables(),
		JoinSize:    e.Est.JoinSize(),
		ModelBytes:  e.Est.Bytes(),
		SamplesSeen: e.Est.Model().SamplesSeen(),
		PSamples:    e.Est.Config().PSamples,
	}
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	entries, def := s.reg.List()
	resp := ModelsResponse{Models: make([]ModelInfo, 0, len(entries))}
	for _, e := range entries {
		resp.Models = append(resp.Models, modelInfo(e, def))
	}
	s.reply(w, http.StatusOK, resp)
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req LoadRequest
	if r.ContentLength != 0 {
		if err := s.decodeBody(w, r, &req); err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
	}
	entry, err := s.reg.Load(name, req.Path)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, fs.ErrNotExist) {
			status = http.StatusNotFound
		}
		s.fail(w, status, err)
		return
	}
	if req.MakeDefault {
		if err := s.reg.SetDefault(name); err != nil {
			s.fail(w, http.StatusInternalServerError, err)
			return
		}
	}
	s.metrics.loadsTotal.Add(1)
	_, def := s.reg.List()
	s.reply(w, http.StatusOK, modelInfo(entry, def))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status string `json:"status"`
		Models int    `json:"models"`
		Ready  bool   `json:"ready"`
		Uptime string `json:"uptime"`
	}
	n := s.reg.Len()
	s.reply(w, http.StatusOK, health{
		Status: "ok",
		Models: n,
		Ready:  n > 0,
		Uptime: time.Since(s.metrics.start).Round(time.Millisecond).String(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	entries, _ := s.reg.List()
	pools := make([]poolStat, 0, len(entries))
	for _, e := range entries {
		free, inUse := e.Est.SessionPoolStats()
		pools = append(pools, poolStat{model: e.Name, free: free, inUse: inUse, plans: e.Est.PlanCacheStats()})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(s.metrics.render(pools)))
}

// ---- helpers ----

func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	return nil
}

func (s *Server) reply(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.reply(w, status, errorResponse{Error: err.Error()})
}

// EncodeQuery converts an internal query into its wire form — the helper
// clients and the load-test harness use to build request bodies. The
// encoding is canonical: encode → JSON → decode → encode is the identity.
func EncodeQuery(q query.Query) (QueryJSON, error) {
	out := QueryJSON{Tables: q.Tables}
	for _, f := range q.Filters {
		fj, err := encodeFilter(f)
		if err != nil {
			return QueryJSON{}, err
		}
		out.Filters = append(out.Filters, fj)
	}
	return out, nil
}

// encodeFilter converts one filter clause, including its OR alternatives
// (emitted with the group's table/column made explicit).
func encodeFilter(f query.Filter) (FilterJSON, error) {
	fj := FilterJSON{Table: f.Table, Col: f.Col, Op: f.Op.String()}
	if err := encodeFilterValues(f, &fj); err != nil {
		return FilterJSON{}, err
	}
	for _, alt := range f.Or {
		if alt.Table == "" {
			alt.Table = f.Table
		}
		if alt.Col == "" {
			alt.Col = f.Col
		}
		aj, err := encodeFilter(alt)
		if err != nil {
			return FilterJSON{}, err
		}
		fj.Or = append(fj.Or, aj)
	}
	return fj, nil
}

// encodeFilterValues fills the op-appropriate value fields of fj.
func encodeFilterValues(f query.Filter, fj *FilterJSON) error {
	setInt := func(dst **int64, v int64) { i := v; *dst = &i }
	setStr := func(dst **string, v string) { s := v; *dst = &s }
	encodeVal := func(v value.Value, i **int64, s **string) error {
		switch v.K {
		case value.KindInt:
			setInt(i, v.I)
		case value.KindStr:
			setStr(s, v.S)
		default:
			return fmt.Errorf("filter %s: NULL literal has no wire form (use IS NULL)", f)
		}
		return nil
	}
	switch f.Op {
	case query.OpIsNull, query.OpIsNotNull:
		return nil
	case query.OpIn, query.OpNotIn:
		for _, v := range f.Set {
			switch v.K {
			case value.KindInt:
				fj.Set = append(fj.Set, v.I)
			case value.KindStr:
				fj.Set = append(fj.Set, v.S)
			default:
				return fmt.Errorf("filter %s: NULL in %s set has no wire form", f, f.Op)
			}
		}
		return nil
	case query.OpBetween:
		if err := encodeVal(f.Val, &fj.Int, &fj.Str); err != nil {
			return err
		}
		return encodeVal(f.Hi, &fj.Int2, &fj.Str2)
	default:
		return encodeVal(f.Val, &fj.Int, &fj.Str)
	}
}

// DecodeQuery converts the wire form into the internal query model — the
// inverse of EncodeQuery, exported so clients can verify round trips.
func DecodeQuery(qj QueryJSON) (query.Query, error) {
	q := query.Query{Tables: qj.Tables}
	for _, fj := range qj.Filters {
		f, err := decodeFilter(fj, true)
		if err != nil {
			return query.Query{}, err
		}
		q.Filters = append(q.Filters, f)
	}
	return q, nil
}

func decodeFilter(fj FilterJSON, allowOr bool) (query.Filter, error) {
	op, err := decodeOp(fj.Op)
	if err != nil {
		return query.Filter{}, err
	}
	f := query.Filter{Table: fj.Table, Col: fj.Col, Op: op}
	where := fmt.Sprintf("filter %s.%s", fj.Table, fj.Col)

	hasSecond := fj.Int2 != nil || fj.Str2 != nil
	switch op {
	case query.OpIsNull, query.OpIsNotNull:
		if fj.Int != nil || fj.Str != nil || hasSecond || len(fj.Set) > 0 {
			return query.Filter{}, fmt.Errorf("%s: %s takes no value", where, op)
		}
	case query.OpIn, query.OpNotIn:
		if len(fj.Set) == 0 {
			return query.Filter{}, fmt.Errorf("%s: %s requires a non-empty \"set\"", where, op)
		}
		if fj.Int != nil || fj.Str != nil || hasSecond {
			return query.Filter{}, fmt.Errorf("%s: %s takes \"set\", not \"int\"/\"str\"", where, op)
		}
		for _, el := range fj.Set {
			v, err := decodeSetElement(el)
			if err != nil {
				return query.Filter{}, fmt.Errorf("%s: %w", where, err)
			}
			f.Set = append(f.Set, v)
		}
	case query.OpBetween:
		if len(fj.Set) > 0 {
			return query.Filter{}, fmt.Errorf("%s: BETWEEN takes bounds, not \"set\"", where)
		}
		switch {
		case fj.Int != nil && fj.Int2 != nil && fj.Str == nil && fj.Str2 == nil:
			f.Val, f.Hi = value.Int(*fj.Int), value.Int(*fj.Int2)
		case fj.Str != nil && fj.Str2 != nil && fj.Int == nil && fj.Int2 == nil:
			f.Val, f.Hi = value.Str(*fj.Str), value.Str(*fj.Str2)
		default:
			return query.Filter{}, fmt.Errorf("%s: BETWEEN requires \"int\"+\"int2\" or \"str\"+\"str2\"", where)
		}
	default:
		if hasSecond {
			return query.Filter{}, fmt.Errorf("%s: \"int2\"/\"str2\" only apply to BETWEEN", where)
		}
		switch {
		case fj.Int != nil && fj.Str == nil && fj.Set == nil:
			f.Val = value.Int(*fj.Int)
		case fj.Str != nil && fj.Int == nil && fj.Set == nil:
			f.Val = value.Str(*fj.Str)
		default:
			return query.Filter{}, fmt.Errorf("%s: exactly one of \"int\" or \"str\" must be set", where)
		}
	}

	if len(fj.Or) > 0 && !allowOr {
		return query.Filter{}, fmt.Errorf("%s: \"or\" alternatives cannot nest", where)
	}
	for _, alt := range fj.Or {
		if alt.Table != "" && alt.Table != fj.Table {
			return query.Filter{}, fmt.Errorf("%s: \"or\" alternative references table %q", where, alt.Table)
		}
		if alt.Col != "" && alt.Col != fj.Col {
			return query.Filter{}, fmt.Errorf("%s: \"or\" alternative references column %q", where, alt.Col)
		}
		af, err := decodeFilter(alt, false)
		if err != nil {
			return query.Filter{}, err
		}
		f.Or = append(f.Or, af)
	}
	return f, nil
}

func decodeSetElement(el any) (value.Value, error) {
	switch v := el.(type) {
	case string:
		return value.Str(v), nil
	case int64: // EncodeQuery output used in-process, without a JSON round trip
		return value.Int(v), nil
	case float64:
		if v != math.Trunc(v) || math.Abs(v) > 1<<53 {
			return value.Value{}, fmt.Errorf("set element %v is not an exact integer", v)
		}
		return value.Int(int64(v)), nil
	default:
		return value.Value{}, fmt.Errorf("set element %v (%T) must be a string or integer", el, el)
	}
}

func decodeOp(op string) (query.Op, error) {
	// Case-insensitive with internal whitespace collapsed, so "is  null"
	// and "IS NULL" both parse.
	switch strings.Join(strings.Fields(strings.ToUpper(op)), " ") {
	case "=", "==", "EQ":
		return query.OpEq, nil
	case "!=", "<>", "NEQ":
		return query.OpNeq, nil
	case "<", "LT":
		return query.OpLt, nil
	case "<=", "LE":
		return query.OpLe, nil
	case ">", "GT":
		return query.OpGt, nil
	case ">=", "GE":
		return query.OpGe, nil
	case "IN":
		return query.OpIn, nil
	case "NOT IN", "NOTIN":
		return query.OpNotIn, nil
	case "BETWEEN":
		return query.OpBetween, nil
	case "IS NULL", "ISNULL":
		return query.OpIsNull, nil
	case "IS NOT NULL", "ISNOTNULL":
		return query.OpIsNotNull, nil
	default:
		return 0, fmt.Errorf("unknown operator %q (want =, !=, <, <=, >, >=, IN, NOT IN, BETWEEN, IS NULL, IS NOT NULL)", op)
	}
}
