package server

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeNow is an injectable breaker clock so cooldown transitions are
// deterministic: tests advance time by hand instead of sleeping.
type fakeNow struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeNow) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeNow) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testBreaker builds a breaker with a small deterministic window: 4-sample
// minimum, 50% threshold, 1s cooldown doubling to an 8s cap, 2 probes, and
// zero jitter so retryAt is exact.
func testBreaker(c *fakeNow) *breaker {
	return newBreaker(breakerConfig{
		Window:      8,
		MinSamples:  4,
		Threshold:   0.5,
		Cooldown:    time.Second,
		MaxCooldown: 8 * time.Second,
		Probes:      2,
		now:         c.Now,
		jitter:      func() float64 { return 0 },
	})
}

func TestBreakerTripHalfOpenClose(t *testing.T) {
	clk := &fakeNow{t: time.Unix(0, 0)}
	b := testBreaker(clk)

	if got := b.currentState(); got != breakerClosed {
		t.Fatalf("initial state = %d, want closed", got)
	}
	// Below MinSamples nothing trips, even at 100% failure.
	b.record(true)
	b.record(true)
	b.record(true)
	if got := b.currentState(); got != breakerClosed {
		t.Fatalf("state after 3 failures (< MinSamples) = %d, want closed", got)
	}
	// Fourth outcome reaches MinSamples at 4/4 ≥ 0.5: trip.
	b.record(true)
	if got := b.currentState(); got != breakerOpen {
		t.Fatalf("state after 4/4 failures = %d, want open", got)
	}
	if got := b.opens.Load(); got != 1 {
		t.Fatalf("opens = %d, want 1", got)
	}

	// Open: denied until the cooldown elapses.
	if b.allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	clk.Advance(time.Second)

	// Half-open: exactly Probes admissions.
	if !b.allow() {
		t.Fatal("cooled-down breaker denied the first probe")
	}
	if got := b.currentState(); got != breakerHalfOpen {
		t.Fatalf("state after first probe admission = %d, want half-open", got)
	}
	if !b.allow() {
		t.Fatal("half-open breaker denied the second probe (budget 2)")
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a third probe beyond its budget")
	}

	// Both probes succeed: closed with a clean window and base cooldown.
	b.record(false)
	if got := b.currentState(); got != breakerHalfOpen {
		t.Fatalf("state after 1/2 probe successes = %d, want half-open", got)
	}
	b.record(false)
	if got := b.currentState(); got != breakerClosed {
		t.Fatalf("state after all probes succeeded = %d, want closed", got)
	}
	if !b.allow() {
		t.Fatal("re-closed breaker denied a request")
	}
	// The window was reset on close: three failures are again below
	// MinSamples and must not trip.
	b.record(true)
	b.record(true)
	b.record(true)
	if got := b.currentState(); got != breakerClosed {
		t.Fatalf("state after window reset + 3 failures = %d, want closed", got)
	}
}

func TestBreakerHalfOpenFailureDoublesCooldown(t *testing.T) {
	clk := &fakeNow{t: time.Unix(0, 0)}
	b := testBreaker(clk)

	for i := 0; i < 4; i++ {
		b.record(true)
	}
	if got := b.currentState(); got != breakerOpen {
		t.Fatalf("state = %d, want open", got)
	}

	// Probe fails: reopen with cooldown doubled to 2s.
	clk.Advance(time.Second)
	if !b.allow() {
		t.Fatal("probe denied after base cooldown")
	}
	b.record(true)
	if got := b.currentState(); got != breakerOpen {
		t.Fatalf("state after failed probe = %d, want open", got)
	}
	if got := b.opens.Load(); got != 2 {
		t.Fatalf("opens = %d, want 2", got)
	}
	clk.Advance(time.Second)
	if b.allow() {
		t.Fatal("breaker admitted a probe after 1s of a 2s doubled cooldown")
	}
	clk.Advance(time.Second)
	if !b.allow() {
		t.Fatal("probe denied after the doubled cooldown elapsed")
	}

	// Keep failing probes: the cooldown saturates at MaxCooldown (8s).
	b.record(true) // 4s
	clk.Advance(4 * time.Second)
	if !b.allow() {
		t.Fatal("probe denied after 4s cooldown")
	}
	b.record(true) // 8s
	clk.Advance(8 * time.Second)
	if !b.allow() {
		t.Fatal("probe denied after 8s cooldown")
	}
	b.record(true) // would be 16s, capped at 8s
	clk.Advance(8 * time.Second)
	if !b.allow() {
		t.Fatal("cooldown exceeded MaxCooldown: probe denied after the 8s cap")
	}

	// A successful probe run closes the breaker and restores the base cooldown.
	b.record(false)
	if !b.allow() {
		t.Fatal("second probe denied")
	}
	b.record(false)
	if got := b.currentState(); got != breakerClosed {
		t.Fatalf("state after successful probes = %d, want closed", got)
	}
	b.mu.Lock()
	cd := b.cooldown
	b.mu.Unlock()
	if cd != time.Second {
		t.Fatalf("cooldown after close = %v, want base 1s", cd)
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	clk := &fakeNow{t: time.Unix(0, 0)}
	b := testBreaker(clk)

	// Fill the 8-slot window with successes, then push failures: old
	// successes roll out, and the rate trips only when live failures reach
	// half the window.
	for i := 0; i < 8; i++ {
		b.record(false)
	}
	for i := 0; i < 3; i++ {
		b.record(true)
		if got := b.currentState(); got != breakerClosed {
			t.Fatalf("state after %d/8 failures = %d, want closed", i+1, got)
		}
	}
	b.record(true)
	if got := b.currentState(); got != breakerOpen {
		t.Fatalf("state after 4/8 failures = %d, want open", got)
	}
}

// TestBreakerConcurrent hammers one breaker from many goroutines (this is the
// -race exercise: allow's lock-free closed fast path racing record's
// transitions) and checks it lands in a coherent state.
func TestBreakerConcurrent(t *testing.T) {
	b := newBreaker(breakerConfig{
		Window:     16,
		MinSamples: 8,
		Threshold:  0.5,
		Cooldown:   time.Microsecond, // reopen fast so every state is visited
		Probes:     2,
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				if b.allow() {
					b.record(rng.Intn(2) == 0)
				}
			}
		}(g)
	}
	wg.Wait()
	if s := b.currentState(); s != breakerClosed && s != breakerHalfOpen && s != breakerOpen {
		t.Fatalf("breaker ended in impossible state %d", s)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < 0 || b.fails > b.ringLen || b.ringLen > len(b.ring) {
		t.Fatalf("window corrupted: fails=%d ringLen=%d cap=%d", b.fails, b.ringLen, len(b.ring))
	}
}

// TestPanicRecoveryMiddleware proves a panicking handler answers 500 and is
// counted, instead of killing the connection.
func TestPanicRecoveryMiddleware(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	s.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatalf("panicking handler broke the connection: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	var body strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		body.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	if !strings.Contains(body.String(), "internal panic") {
		t.Fatalf("body = %q, want an internal-panic error", body.String())
	}
	if got := s.metrics.panicsTotal.Load(); got != 1 {
		t.Fatalf("panicsTotal = %d, want 1", got)
	}
}
