package server_test

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"neurocard/internal/core"
	"neurocard/internal/faultinject"
	"neurocard/internal/query"
	"neurocard/internal/schema"
	"neurocard/internal/server"
	"neurocard/internal/shard"
)

// ---- fixture: a two-shard fleet over the fig4 schema ----

// trainShard trains a small estimator over the sub-schema induced by tables.
func trainShard(t *testing.T, sch *schema.Schema, tables []string, seed int64, tuples int) *core.Estimator {
	t.Helper()
	sub, err := sch.SubSchema(tables)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Model.Hidden = 24
	cfg.Model.EmbedDim = 6
	cfg.Model.Blocks = 1
	cfg.PSamples = 64
	cfg.BatchSize = 64
	cfg.Seed = seed
	all := map[string][]string{"A": {"x", "year"}, "B": {"x", "y"}, "C": {"y"}}
	cc := make(map[string][]string)
	for _, tb := range tables {
		cc[tb] = all[tb]
	}
	cfg.ContentCols = cc
	est, err := core.Build(sub, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Train(tuples); err != nil {
		t.Fatal(err)
	}
	return est
}

// buildFleet partitions fig4 into {A,B} and {C}, trains one estimator per
// shard, writes their checkpoints and the manifest into dir, and returns the
// manifest plus the in-memory estimators (the ground truth the served
// composition is checked against).
func buildFleet(t *testing.T, dir string) (*shard.Manifest, map[string]*core.Estimator) {
	t.Helper()
	sch := figure4(t)
	man, err := shard.Build(sch, "fleet", [][]string{{"A", "B"}, {"C"}})
	if err != nil {
		t.Fatal(err)
	}
	ests := make(map[string]*core.Estimator)
	for i, sp := range man.Shards {
		est := trainShard(t, sch, sp.Tables, int64(11+i), 256)
		ests[sp.Name] = est
		writeCheckpoint(t, dir, sp.Name, est)
	}
	if err := man.Write(shard.ManifestPath(dir, "fleet")); err != nil {
		t.Fatal(err)
	}
	return man, ests
}

func loadFleet(t *testing.T, ts *httptest.Server) server.ModelInfo {
	t.Helper()
	resp, body := post(t, ts.URL+"/v1/models/fleet/load", server.LoadRequest{Manifest: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("manifest load: %d %s", resp.StatusCode, body)
	}
	var info server.ModelInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	return info
}

// composedExpected replays the planner by hand: plan the query, run every
// sub-query through its shard's seeded path, multiply with the plan factor —
// the value the server must reproduce bit-for-bit modulo float rounding.
func composedExpected(t *testing.T, man *shard.Manifest, ests map[string]*core.Estimator,
	q query.Query, seed, idx int64) float64 {
	t.Helper()
	pl, err := shard.NewPlanner(man)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pl.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	est := plan.Factor
	for _, sub := range plan.Subs {
		v, err := ests[sub.Shard].EstimateSeededIndexed(sub.Query, seed, idx)
		if err != nil {
			t.Fatal(err)
		}
		est *= v
	}
	return est
}

func approxEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

var (
	crossQ  = server.QueryJSON{Tables: []string{"A", "B", "C"}, Filters: []server.FilterJSON{{Table: "A", Col: "year", Op: ">=", Int: ptrInt(1995)}}}
	s0OnlyQ = server.QueryJSON{Tables: []string{"A", "B"}, Filters: []server.FilterJSON{{Table: "B", Col: "y", Op: "<=", Int: ptrInt(2)}}}
	s1OnlyQ = server.QueryJSON{Tables: []string{"C"}}
)

func mustDecode(t *testing.T, qj server.QueryJSON) query.Query {
	t.Helper()
	q, err := server.DecodeQuery(qj)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// ---- manifest load, routing, composition ----

func TestLogicalManifestLoadAndRouting(t *testing.T) {
	srv, ts, dir := serveTest(t)
	man, ests := buildFleet(t, dir)

	info := loadFleet(t, ts)
	if info.Kind != "logical" || info.Name != "fleet" || info.Tables != 3 || info.Generation != 1 {
		t.Fatalf("manifest load info = %+v", info)
	}
	if len(info.Shards) != 2 || info.Shards[0] != "fleet-s0" || info.Shards[1] != "fleet-s1" {
		t.Fatalf("shards = %v", info.Shards)
	}
	// The two shard models were loaded alongside the logical entry.
	if srv.Registry().Len() != 2 {
		t.Fatalf("registry has %d models, want the 2 shards", srv.Registry().Len())
	}

	// /v1/models lists the shards and the logical model, kinds distinguished.
	resp, body := get(t, ts.URL+"/v1/models")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("models: %d", resp.StatusCode)
	}
	var list server.ModelsResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]string{}
	for _, mi := range list.Models {
		kinds[mi.Name] = mi.Kind
	}
	if kinds["fleet"] != "logical" || kinds["fleet-s0"] != "model" || kinds["fleet-s1"] != "model" {
		t.Fatalf("model kinds = %v", kinds)
	}

	// A cross-shard query composes per-shard seeded estimates with the
	// manifest's join factor; a single-shard query routes to that shard
	// alone. Both must match the hand-composed value.
	seed := int64(4242)
	for _, tc := range []struct {
		name string
		qj   server.QueryJSON
	}{{"cross-shard", crossQ}, {"s0-only", s0OnlyQ}, {"s1-only", s1OnlyQ}} {
		resp, body := post(t, ts.URL+"/v1/estimate", server.EstimateRequest{
			Model: "fleet", Query: &tc.qj, Seed: &seed,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d %s", tc.name, resp.StatusCode, body)
		}
		var er server.EstimateResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if er.Model != "fleet" || er.Est == nil || er.Degraded {
			t.Fatalf("%s response = %s", tc.name, body)
		}
		want := composedExpected(t, man, ests, mustDecode(t, tc.qj), seed, 0)
		if !approxEq(*er.Est, want) {
			t.Fatalf("%s: served %.17g, want composed %.17g", tc.name, *er.Est, want)
		}
	}

	// Routing counters: the cross-shard query touched both shards, the
	// single-shard queries exactly one each.
	exp := metricsBody(t, ts)
	if v := metricValue(t, exp, `neurocard_shard_routed_total{logical="fleet",shard="fleet-s0"}`); v != "2" {
		t.Fatalf("s0 routed = %s, want 2", v)
	}
	if v := metricValue(t, exp, `neurocard_shard_routed_total{logical="fleet",shard="fleet-s1"}`); v != "2" {
		t.Fatalf("s1 routed = %s, want 2", v)
	}
	if v := metricValue(t, exp, "neurocard_logical_queries_total"); v != "3" {
		t.Fatalf("logical queries = %s, want 3", v)
	}
}

func TestLogicalBatchSeededComposition(t *testing.T) {
	_, ts, dir := serveTest(t)
	man, ests := buildFleet(t, dir)
	loadFleet(t, ts)

	seed := int64(99)
	queries := []server.QueryJSON{crossQ, s0OnlyQ, s1OnlyQ, {Tables: []string{"A", "B", "C"}}}
	req := server.EstimateRequest{Model: "fleet", Queries: queries, Seed: &seed}
	resp, body := post(t, ts.URL+"/v1/estimate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var er server.EstimateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Ests) != len(queries) || er.Errors != nil {
		t.Fatalf("batch response = %s", body)
	}
	// Each query's randomness is (seed, original batch index) on every shard
	// it routes to — the per-shard grouping must not perturb it.
	for i, qj := range queries {
		want := composedExpected(t, man, ests, mustDecode(t, qj), seed, int64(i))
		if !approxEq(er.Ests[i], want) {
			t.Fatalf("query %d: served %.17g, want composed %.17g", i, er.Ests[i], want)
		}
	}

	// Re-issuing the identical request is bit-deterministic.
	_, body2 := post(t, ts.URL+"/v1/estimate", req)
	var er2 server.EstimateResponse
	if err := json.Unmarshal(body2, &er2); err != nil {
		t.Fatal(err)
	}
	for i := range er.Ests {
		if er.Ests[i] != er2.Ests[i] {
			t.Fatalf("repeat query %d: %.17g != %.17g", i, er2.Ests[i], er.Ests[i])
		}
	}

	// A planner-rejected query fails positionally without sinking the batch.
	bad := append([]server.QueryJSON{}, queries...)
	bad = append(bad, server.QueryJSON{Tables: []string{"A", "Z"}})
	resp, body = post(t, ts.URL+"/v1/estimate", server.EstimateRequest{Model: "fleet", Queries: bad, Seed: &seed})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial batch: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &er2); err != nil {
		t.Fatal(err)
	}
	if len(er2.Errors) != len(bad) || er2.Errors[len(bad)-1] == "" {
		t.Fatalf("partial batch errors = %v", er2.Errors)
	}
	for i := range queries {
		if er2.Errors[i] != "" || er2.Ests[i] != er.Ests[i] {
			t.Fatalf("partial batch query %d: est %.17g err %q", i, er2.Ests[i], er2.Errors[i])
		}
	}
}

func TestLogicalBinaryWire(t *testing.T) {
	_, ts, dir := serveTest(t)
	buildFleet(t, dir)
	loadFleet(t, ts)

	seed := int64(7)
	qjs := []server.QueryJSON{crossQ, s1OnlyQ}
	queries := []query.Query{mustDecode(t, qjs[0]), mustDecode(t, qjs[1])}

	// JSON reference answer.
	_, body := post(t, ts.URL+"/v1/estimate", server.EstimateRequest{Model: "fleet", Queries: qjs, Seed: &seed})
	var er server.EstimateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Ests) != 2 {
		t.Fatalf("json batch = %s", body)
	}

	// Binary wire: logical model names are plain strings on the wire, so
	// routing needs no protocol change — and the answers are bit-identical.
	frame := server.AppendBinRequest(nil, "fleet", &seed, queries)
	resp, bin := postBin(t, ts.URL+"/v1/estimate", frame)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary: %d %s", resp.StatusCode, bin)
	}
	if ct := resp.Header.Get("Content-Type"); ct != server.ContentTypeBinary {
		t.Fatalf("binary content type = %q", ct)
	}
	br, err := server.DecodeBinResponse(bin)
	if err != nil {
		t.Fatal(err)
	}
	if br.Model != "fleet" || len(br.Ests) != 2 || br.Errs != nil {
		t.Fatalf("binary response = %+v", br)
	}
	for i := range br.Ests {
		if br.Ests[i] != er.Ests[i] {
			t.Fatalf("binary est %d: %.17g != json %.17g", i, br.Ests[i], er.Ests[i])
		}
	}
}

// ---- per-shard hot swap ----

// TestLogicalShardHotSwapDeterminism reloads one shard repeatedly while
// concurrent seeded estimates run against the logical model: every answer
// must equal the baseline bit-for-bit, because the swapped-in checkpoint is
// identical and sub-query randomness is derived from (seed, index) only.
func TestLogicalShardHotSwapDeterminism(t *testing.T) {
	_, ts, dir := serveTest(t)
	buildFleet(t, dir)
	loadFleet(t, ts)

	seed := int64(5150)
	baselineReq := server.EstimateRequest{Model: "fleet", Query: &crossQ, Seed: &seed}
	_, body := post(t, ts.URL+"/v1/estimate", baselineReq)
	var base server.EstimateResponse
	if err := json.Unmarshal(body, &base); err != nil {
		t.Fatal(err)
	}
	if base.Est == nil {
		t.Fatalf("baseline = %s", body)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan string, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, body := post(t, ts.URL+"/v1/estimate", baselineReq)
				if resp.StatusCode != http.StatusOK {
					errCh <- string(body)
					return
				}
				var er server.EstimateResponse
				if err := json.Unmarshal(body, &er); err != nil || er.Est == nil || *er.Est != *base.Est {
					errCh <- string(body)
					return
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		resp, body := post(t, ts.URL+"/v1/models/fleet-s1/load", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("swap %d: %d %s", i, resp.StatusCode, body)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case bad := <-errCh:
		t.Fatalf("estimate diverged during shard hot swap: %s (baseline %.17g)", bad, *base.Est)
	default:
	}

	// The shard generation advanced; the logical entry is untouched.
	_, body = get(t, ts.URL+"/v1/models")
	var list server.ModelsResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	gens := map[string]int{}
	for _, mi := range list.Models {
		gens[mi.Name] = mi.Generation
	}
	if gens["fleet-s1"] != 4 || gens["fleet-s0"] != 1 || gens["fleet"] != 1 {
		t.Fatalf("generations after swaps = %v", gens)
	}
}

// ---- per-shard fault isolation ----

// TestLogicalShardBreakerIsolation trips one shard's breaker and checks the
// blast radius: only estimates routed through that shard degrade to its
// fallback; the other shard's queries are answered by its neural model,
// undegraded.
func TestLogicalShardBreakerIsolation(t *testing.T) {
	_, ts, dir := serveFault(t, aggressiveBreaker())
	buildFleet(t, dir)
	loadFleet(t, ts)

	// Trip fleet-s0's breaker with direct faulted requests to that shard
	// model; fleet-s1 sees none of them.
	armFaults(t, "estimate-nan=1")
	for i := int64(0); i < 4; i++ {
		q := s0OnlyQ
		resp, body := post(t, ts.URL+"/v1/estimate", server.EstimateRequest{Model: "fleet-s0", Query: &q, Seed: &i})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("faulted request %d: %d %s", i, resp.StatusCode, body)
		}
	}
	faultinject.Disarm()

	seed := int64(3)
	// Crossing query: the s0 sub-estimate comes from the fallback, so the
	// composed answer is degraded — but still well-formed and positive.
	resp, body := post(t, ts.URL+"/v1/estimate", server.EstimateRequest{Model: "fleet", Query: &crossQ, Seed: &seed})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("crossing estimate: %d %s", resp.StatusCode, body)
	}
	var er server.EstimateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !er.Degraded || er.Est == nil || *er.Est <= 0 {
		t.Fatalf("crossing response = %s, want degraded positive estimate", body)
	}
	// s1-only query: clean.
	resp, body = post(t, ts.URL+"/v1/estimate", server.EstimateRequest{Model: "fleet", Query: &s1OnlyQ, Seed: &seed})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("s1 estimate: %d %s", resp.StatusCode, body)
	}
	var clean server.EstimateResponse
	if err := json.Unmarshal(body, &clean); err != nil {
		t.Fatal(err)
	}
	if clean.Degraded {
		t.Fatalf("s1-only response degraded by s0's breaker: %s", body)
	}
	// Batch mixing both shapes: whole-response Degraded flag set, but both
	// answers present.
	resp, body = post(t, ts.URL+"/v1/estimate", server.EstimateRequest{
		Model: "fleet", Queries: []server.QueryJSON{crossQ, s1OnlyQ}, Seed: &seed})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed batch: %d %s", resp.StatusCode, body)
	}
	var mixed server.EstimateResponse
	if err := json.Unmarshal(body, &mixed); err != nil {
		t.Fatal(err)
	}
	if !mixed.Degraded || len(mixed.Ests) != 2 || mixed.Ests[0] <= 0 || mixed.Ests[1] <= 0 || mixed.Errors != nil {
		t.Fatalf("mixed batch response = %s", body)
	}

	exp := metricsBody(t, ts)
	if !strings.Contains(exp, `neurocard_breaker_state{model="fleet-s0"} 2`) {
		t.Fatalf("metrics missing open s0 breaker:\n%s", exp)
	}
	if !strings.Contains(exp, `neurocard_breaker_state{model="fleet-s1"} 0`) {
		t.Fatal("metrics missing closed s1 breaker")
	}
}

// Without a fallback, an open shard breaker fails only the estimates that
// need that shard — 503, while the rest of the fleet keeps serving.
func TestLogicalShardBreakerNoFallback(t *testing.T) {
	cfg := aggressiveBreaker()
	cfg.NoFallback = true
	_, ts, dir := serveFault(t, cfg)
	buildFleet(t, dir)
	loadFleet(t, ts)

	armFaults(t, "estimate-nan=1")
	for i := int64(0); i < 4; i++ {
		q := s0OnlyQ
		post(t, ts.URL+"/v1/estimate", server.EstimateRequest{Model: "fleet-s0", Query: &q, Seed: &i})
	}
	faultinject.Disarm()

	seed := int64(3)
	resp, body := post(t, ts.URL+"/v1/estimate", server.EstimateRequest{Model: "fleet", Query: &crossQ, Seed: &seed})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("crossing estimate with open s0: %d %s, want 503", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/v1/estimate", server.EstimateRequest{Model: "fleet", Query: &s1OnlyQ, Seed: &seed})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("s1 estimate with open s0: %d %s, want 200", resp.StatusCode, body)
	}
	// Batch: the crossing query fails positionally, the s1 query answers.
	resp, body = post(t, ts.URL+"/v1/estimate", server.EstimateRequest{
		Model: "fleet", Queries: []server.QueryJSON{crossQ, s1OnlyQ}, Seed: &seed})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed batch: %d %s", resp.StatusCode, body)
	}
	var er server.EstimateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Errors) != 2 || er.Errors[0] == "" || er.Errors[1] != "" || er.Ests[1] <= 0 {
		t.Fatalf("mixed batch response = %s", body)
	}
	if !strings.Contains(er.Errors[0], "circuit open") {
		t.Fatalf("crossing error = %q", er.Errors[0])
	}
}

// ---- unload ----

func TestLogicalUnloadAndShardMissing(t *testing.T) {
	_, ts, dir := serveTest(t)
	buildFleet(t, dir)
	loadFleet(t, ts)

	seed := int64(1)
	// Unloading one shard out from under the fleet: estimates that need it
	// answer 503 (the fleet is impaired, the query is fine); estimates that
	// route elsewhere keep working.
	resp, body := del(t, ts.URL+"/v1/models/fleet-s1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unload shard: %d %s", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/v1/estimate", server.EstimateRequest{Model: "fleet", Query: &crossQ, Seed: &seed})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("crossing estimate without s1: %d %s, want 503", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "shard model not loaded") {
		t.Fatalf("503 body = %s", body)
	}
	resp, _ = post(t, ts.URL+"/v1/estimate", server.EstimateRequest{Model: "fleet", Query: &s0OnlyQ, Seed: &seed})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("s0-only estimate without s1: %d, want 200", resp.StatusCode)
	}

	// Reloading the shard heals the fleet.
	resp, _ = post(t, ts.URL+"/v1/models/fleet-s1/load", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload shard: %d", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/v1/estimate", server.EstimateRequest{Model: "fleet", Query: &crossQ, Seed: &seed})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("crossing estimate after reload: %d", resp.StatusCode)
	}

	// Unloading the logical model removes the name but leaves the shard
	// models loaded and directly addressable.
	resp, body = del(t, ts.URL+"/v1/models/fleet")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unload fleet: %d %s", resp.StatusCode, body)
	}
	resp, _ = post(t, ts.URL+"/v1/estimate", server.EstimateRequest{Model: "fleet", Query: &crossQ, Seed: &seed})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("estimate on unloaded fleet: %d, want 404", resp.StatusCode)
	}
	q := s0OnlyQ
	resp, _ = post(t, ts.URL+"/v1/estimate", server.EstimateRequest{Model: "fleet-s0", Query: &q, Seed: &seed})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct shard estimate after fleet unload: %d", resp.StatusCode)
	}
	// Unloading something unknown is 404.
	resp, _ = del(t, ts.URL+"/v1/models/fleet")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double unload: %d, want 404", resp.StatusCode)
	}

	exp := metricsBody(t, ts)
	if v := metricValue(t, exp, "neurocard_model_unloads_total"); v != "2" {
		t.Fatalf("unloads total = %s, want 2", v)
	}
}

func TestUnloadDefaultReelection(t *testing.T) {
	_, ts, dir := serveTest(t)
	loadModel(t, ts, dir, "m1")
	loadModel(t, ts, dir, "m2")

	// m1 loaded first and is the default; unloading it re-elects m2.
	resp, body := del(t, ts.URL+"/v1/models/m1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unload m1: %d %s", resp.StatusCode, body)
	}
	_, body = get(t, ts.URL+"/v1/models")
	var list server.ModelsResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Models) != 1 || list.Models[0].Name != "m2" || !list.Models[0].Default {
		t.Fatalf("models after unload = %s", body)
	}
	// Default-addressed estimates keep working against the re-elected model.
	resp, _ = post(t, ts.URL+"/v1/estimate", server.EstimateRequest{Query: &server.QueryJSON{Tables: []string{"A"}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default estimate after re-election: %d", resp.StatusCode)
	}

	// Unloading the last model clears the default; default-addressed
	// estimates fail with 404 rather than hitting a dangling pointer.
	resp, _ = del(t, ts.URL+"/v1/models/m2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unload m2: %d", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/v1/estimate", server.EstimateRequest{Query: &server.QueryJSON{Tables: []string{"A"}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("default estimate with empty registry: %d, want 404", resp.StatusCode)
	}
}

// TestUnloadVsGetRace hammers Install/Unload against concurrent Get and
// default resolution; the race detector is the assertion.
func TestUnloadVsGetRace(t *testing.T) {
	srv, ts, dir := serveTest(t)
	est := buildEstimator(t, 5, 128)
	path := writeCheckpoint(t, dir, "r", est)
	reg := srv.Registry()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		defer close(stop)
		for i := 0; i < 100; i++ {
			if _, err := reg.Install("r", path, est); err != nil {
				t.Errorf("install: %v", err)
				return
			}
			if err := reg.Unload("r"); err != nil {
				t.Errorf("unload: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if e, err := reg.Get("r"); err == nil && e.Name != "r" {
					t.Errorf("got entry %q", e.Name)
					return
				}
				if e, err := reg.Get(""); err == nil && e == nil {
					t.Error("nil default entry without error")
					return
				}
			}
		}()
	}
	// HTTP estimates race the churn too: any of found/not-found is legal,
	// crashes and torn state are not.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, _ := post(t, ts.URL+"/v1/estimate", server.EstimateRequest{
				Model: "r", Query: &server.QueryJSON{Tables: []string{"A"}}})
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
				t.Errorf("estimate during churn: %d", resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()
}

// del issues an HTTP DELETE.
func del(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}
