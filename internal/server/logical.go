package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"neurocard/internal/core"
	"neurocard/internal/query"
	"neurocard/internal/shard"
)

// errShardMissing marks an estimate that needed a shard model the registry
// no longer holds (unloaded out from under its logical model). 503: the
// query is fine, the fleet is not.
var errShardMissing = errors.New("server: shard model not loaded")

// serveLogical answers an estimate request addressed to a logical model.
// Each query is split by the manifest's planner into per-shard sub-queries;
// every sub-query runs through the same fault ladder as a direct request to
// that shard — its breaker, coalescer, fallback, and sanity guard — and the
// results are multiplied together with the plan's cross-shard factor. Fault
// isolation is per shard: one open breaker degrades (or fails) only the
// queries that route through it, and the response's Degraded flag is set
// when any estimate leaned on a fallback. Shard entries are resolved per
// request, so each shard hot-swaps independently underneath the logical
// name; at a fixed seed, results are bit-deterministic across swaps of an
// identical checkpoint because every sub-query derives its randomness from
// (seed, query index) exactly like a direct request.
func (s *Server) serveLogical(ctx context.Context, w http.ResponseWriter, lg *Logical,
	queries []query.Query, seed *int64, workers int, single, bin bool, buf *[]byte,
	done func(int, bool)) {
	start := time.Now()
	if single {
		est, degraded, err := s.estimateLogical(ctx, lg, queries[0], seed)
		if err != nil {
			status := estimateStatus(err)
			if status == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			if status == http.StatusGatewayTimeout {
				s.metrics.timeoutsTotal.Add(1)
			}
			s.fail(w, status, err)
			done(0, true)
			return
		}
		if bin {
			s.replyBin(w, buf, lg.Name, []float64{est}, nil, degraded)
		} else {
			s.reply(w, http.StatusOK, EstimateResponse{
				Model:    lg.Name,
				Est:      &est,
				Degraded: degraded,
				Count:    1,
				Micros:   time.Since(start).Microseconds(),
			})
		}
		done(1, false)
		return
	}

	// Batch: plan every query, then run all sub-queries grouped per shard —
	// one registry resolution and one EstimateItems run per shard touched,
	// so a shard's pooled sessions see its whole slice of the batch at
	// once. Sub-query randomness is (seed, original query index) on every
	// shard, matching the monolithic batch convention per shard, so a
	// seeded batch is reproducible regardless of grouping.
	plans := make([]*shard.Plan, len(queries))
	errsOut := make([]error, len(queries))
	factors := make([]float64, len(queries))
	for i, q := range queries {
		pl, err := lg.Planner.Plan(q)
		if err != nil {
			errsOut[i] = err
			continue
		}
		plans[i] = pl
		factors[i] = pl.Factor
	}
	type pending struct {
		qi  int
		sub query.Query
	}
	byShard := make(map[string][]pending)
	var shardOrder []string
	for i, pl := range plans {
		if pl == nil {
			continue
		}
		for _, sub := range pl.Subs {
			if _, ok := byShard[sub.Shard]; !ok {
				shardOrder = append(shardOrder, sub.Shard)
			}
			byShard[sub.Shard] = append(byShard[sub.Shard], pending{i, sub.Query})
		}
	}
	anyDegraded := false
	for _, shardName := range shardOrder {
		work := byShard[shardName]
		s.metrics.routeToShard(lg.Name, shardName, int64(len(work)))
		entry, gerr := s.reg.Get(shardName)
		if gerr != nil {
			for _, p := range work {
				if errsOut[p.qi] == nil {
					errsOut[p.qi] = fmt.Errorf("shard %q: %w", shardName, errShardMissing)
				}
			}
			continue
		}
		br := entry.Breaker
		if br != nil && !br.allow() {
			// This shard's circuit is open: only its slice of the batch
			// degrades to the fallback (or fails without one); batchmates
			// routed elsewhere are untouched.
			for _, p := range work {
				if errsOut[p.qi] != nil {
					continue
				}
				if entry.Fallback == nil {
					errsOut[p.qi] = fmt.Errorf("shard %q: %w", shardName, errBreakerOpen)
					continue
				}
				fb, ferr := s.fallbackEstimate(entry, p.sub)
				if ferr != nil {
					errsOut[p.qi] = fmt.Errorf("shard %q: %w", shardName, ferr)
					continue
				}
				factors[p.qi] *= fb
				anyDegraded = true
				s.metrics.fallbackTotal.Add(1)
			}
			continue
		}
		base := entry.Est.Config().Seed
		if seed != nil {
			base = *seed
		}
		items := make([]core.BatchItem, len(work))
		for j, p := range work {
			items[j] = core.BatchItem{Query: p.sub, Seed: base, Idx: int64(p.qi), Ctx: ctx}
		}
		ests, errs := entry.Est.EstimateItems(items, s.estimateWorkers(workers, len(items)))
		for j, p := range work {
			serr := errs[j]
			if serr == nil && !finitePositive(ests[j]) {
				serr = fmt.Errorf("%w %g", errNonFinite, ests[j])
				s.metrics.nonfiniteTotal.Add(1)
			}
			if errors.Is(serr, context.DeadlineExceeded) {
				s.metrics.timeoutsTotal.Add(1)
			}
			if br != nil {
				if modelFault(serr) {
					br.record(true)
				} else if serr == nil {
					br.record(false)
				}
			}
			if serr != nil {
				if errsOut[p.qi] == nil {
					errsOut[p.qi] = fmt.Errorf("shard %q: %w", shardName, serr)
				}
				continue
			}
			factors[p.qi] *= ests[j]
		}
	}

	ests := make([]float64, len(queries))
	var errStrings []string
	nOK := 0
	for i := range queries {
		if errsOut[i] == nil && !finitePositive(factors[i]) {
			errsOut[i] = fmt.Errorf("%w %g (combined)", errNonFinite, factors[i])
			s.metrics.nonfiniteTotal.Add(1)
		}
		if errsOut[i] != nil {
			if errStrings == nil {
				errStrings = make([]string, len(queries))
			}
			errStrings[i] = errsOut[i].Error()
			continue
		}
		ests[i] = factors[i]
		nOK++
	}
	s.metrics.logicalQueries.Add(int64(nOK))
	if bin {
		s.replyBin(w, buf, lg.Name, ests, errStrings, anyDegraded)
	} else {
		s.reply(w, http.StatusOK, EstimateResponse{
			Model:    lg.Name,
			Ests:     ests,
			Errors:   errStrings,
			Degraded: anyDegraded,
			Count:    len(ests),
			Micros:   time.Since(start).Microseconds(),
		})
	}
	done(nOK, errStrings != nil)
}

// estimateLogical composes one query's estimate from its shard models,
// running each sub-query through estimateSingle (breaker, coalescer,
// fallback). The whole query fails on the first failing sub-estimate; a
// degraded sub-estimate degrades the composed result.
func (s *Server) estimateLogical(ctx context.Context, lg *Logical, q query.Query, seed *int64) (est float64, degraded bool, err error) {
	pl, err := lg.Planner.Plan(q)
	if err != nil {
		return 0, false, err
	}
	est = pl.Factor
	for _, sub := range pl.Subs {
		s.metrics.routeToShard(lg.Name, sub.Shard, 1)
		entry, gerr := s.reg.Get(sub.Shard)
		if gerr != nil {
			return 0, false, fmt.Errorf("shard %q: %w", sub.Shard, errShardMissing)
		}
		v, d, serr := s.estimateSingle(ctx, entry, sub.Shard, sub.Query, seed)
		if serr != nil {
			return 0, false, fmt.Errorf("shard %q: %w", sub.Shard, serr)
		}
		if d {
			degraded = true
			s.metrics.fallbackTotal.Add(1)
		}
		est *= v
	}
	if !finitePositive(est) {
		s.metrics.nonfiniteTotal.Add(1)
		return 0, false, fmt.Errorf("%w %g (combined)", errNonFinite, est)
	}
	s.metrics.logicalQueries.Add(1)
	return est, degraded, nil
}
