package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"neurocard/internal/faultinject"
	"neurocard/internal/query"
	"neurocard/internal/server"
)

// ---- helpers ----

// serveFault stands up a server with an explicit fault-tolerance config; the
// models dir is a fresh temp dir, as in serveTest.
func serveFault(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	cfg.ModelsDir = dir
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	srv := server.New(cfg)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, dir
}

// armFaults arms the fault-injection layer from a spec string and disarms it
// when the test ends. Tests using it must not run in parallel: the armed
// config is process-global.
func armFaults(t *testing.T, spec string) {
	t.Helper()
	cfg, err := faultinject.ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	faultinject.Arm(cfg)
	t.Cleanup(faultinject.Disarm)
}

// postHdr is post with extra request headers.
func postHdr(t *testing.T, url string, body any, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(http.MethodPost, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// loadModel trains, checkpoints, and loads fig4 under the given name.
func loadModel(t *testing.T, ts *httptest.Server, dir, name string) {
	t.Helper()
	writeCheckpoint(t, dir, name, buildEstimator(t, 7, 512))
	resp, body := post(t, ts.URL+"/v1/models/"+name+"/load", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load %s: %d %s", name, resp.StatusCode, body)
	}
}

func metricsBody(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	return string(body)
}

// metricValue extracts the value line "name v" (unlabeled) from an exposition.
func metricValue(t *testing.T, exposition, name string) string {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			return rest
		}
	}
	t.Fatalf("metric %s missing from exposition", name)
	return ""
}

var fullJoin = server.QueryJSON{Tables: []string{"A", "B", "C"}}

func singleEstimate(seed int64) server.EstimateRequest {
	q := fullJoin
	return server.EstimateRequest{Query: &q, Seed: &seed}
}

// ---- deadlines ----

func TestDeadlineOverHTTP(t *testing.T) {
	_, ts, dir := serveFault(t, server.Config{})
	loadModel(t, ts, dir, "fig4")

	// Malformed deadline header: rejected up front.
	resp, body := postHdr(t, ts.URL+"/v1/estimate", singleEstimate(1),
		map[string]string{"X-Deadline-Ms": "soon"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad header: %d %s", resp.StatusCode, body)
	}

	// Slow every sampling kernel and give the request a 1ms budget: the
	// cooperative cancellation inside the sampling loop must surface as 504.
	armFaults(t, "kernel-delay=1:20ms")
	start := time.Now()
	resp, body = postHdr(t, ts.URL+"/v1/estimate", singleEstimate(1),
		map[string]string{"X-Deadline-Ms": "1"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline expiry: %d %s, want 504", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("504 took %v; cancellation is not cooperative", elapsed)
	}
	var er errorBody
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Fatalf("504 body is not a JSON error: %s", body)
	}
	if got := metricValue(t, metricsBody(t, ts), "neurocard_request_timeouts_total"); got == "0" {
		t.Fatal("neurocard_request_timeouts_total did not increment on a 504")
	}

	// Faults off: the same request with the same deadline serves normally —
	// the timeout left no residue.
	faultinject.Disarm()
	resp, body = postHdr(t, ts.URL+"/v1/estimate", singleEstimate(1),
		map[string]string{"X-Deadline-Ms": "5000"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-timeout estimate: %d %s", resp.StatusCode, body)
	}
}

type errorBody struct {
	Error string `json:"error"`
}

func TestDeadlineInBatch(t *testing.T) {
	_, ts, dir := serveFault(t, server.Config{})
	loadModel(t, ts, dir, "fig4")

	armFaults(t, "kernel-delay=1:20ms")
	seed := int64(3)
	resp, body := postHdr(t, ts.URL+"/v1/estimate", server.EstimateRequest{
		Queries: []server.QueryJSON{fullJoin, fullJoin},
		Seed:    &seed,
	}, map[string]string{"X-Deadline-Ms": "1"})
	// Batches answer 200 with positional errors; expired items carry the
	// deadline error.
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var er server.EstimateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Errors) != 2 {
		t.Fatalf("batch response has no positional errors: %s", body)
	}
	for i, e := range er.Errors {
		if !strings.Contains(e, "deadline") {
			t.Fatalf("batch item %d error = %q, want deadline exceeded", i, e)
		}
	}
}

// ---- sanity guard + fallback ----

func TestNaNGuardServesFallbackDegraded(t *testing.T) {
	_, ts, dir := serveFault(t, server.Config{})
	loadModel(t, ts, dir, "fig4")

	// Every model estimate comes back NaN; the guard must reject it and the
	// histogram fallback must absorb the request, marked degraded.
	armFaults(t, "estimate-nan=1")
	resp, body := post(t, ts.URL+"/v1/estimate", singleEstimate(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate under NaN faults: %d %s", resp.StatusCode, body)
	}
	var er server.EstimateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !er.Degraded {
		t.Fatalf("NaN-masked response not marked degraded: %s", body)
	}
	if er.Est == nil || *er.Est <= 0 {
		t.Fatalf("degraded estimate missing or non-positive: %s", body)
	}

	exp := metricsBody(t, ts)
	if metricValue(t, exp, "neurocard_nonfinite_estimates_total") == "0" {
		t.Fatal("nonfinite guard did not count the NaN")
	}
	if metricValue(t, exp, "neurocard_fallback_total") == "0" {
		t.Fatal("fallback serve did not count")
	}
}

func TestNaNGuardWithoutFallbackIs500(t *testing.T) {
	_, ts, dir := serveFault(t, server.Config{NoFallback: true})
	loadModel(t, ts, dir, "fig4")

	armFaults(t, "estimate-nan=1")
	resp, body := post(t, ts.URL+"/v1/estimate", singleEstimate(1))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("NaN with no fallback: %d %s, want 500", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "non-finite") {
		t.Fatalf("body = %s, want the sanity-guard error", body)
	}
}

func TestInjectedPanicIsContained(t *testing.T) {
	srv, ts, dir := serveFault(t, server.Config{NoFallback: true})
	loadModel(t, ts, dir, "fig4")

	armFaults(t, "estimate-panic=1")
	resp, body := post(t, ts.URL+"/v1/estimate", singleEstimate(1))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("injected panic: %d %s, want 500", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "panic") {
		t.Fatalf("body = %s, want the estimate-panic error", body)
	}

	// The panic must not have leaked a session or killed the coalescer:
	// with faults off the very next request serves fine.
	faultinject.Disarm()
	resp, body = post(t, ts.URL+"/v1/estimate", singleEstimate(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic estimate: %d %s", resp.StatusCode, body)
	}
	_ = srv
}

// ---- circuit breaker over HTTP ----

// aggressiveBreaker trips after 4 outcomes at ≥50% failures and stays open
// effectively forever (1h cooldown), so tests observe the open state stably.
func aggressiveBreaker() server.Config {
	return server.Config{
		BreakerWindow:     4,
		BreakerMinSamples: 4,
		BreakerThreshold:  0.5,
		BreakerCooldown:   time.Hour,
		NoCoalesce:        true, // inline estimates: each request records exactly once
	}
}

func TestBreakerTripsToDegradedServing(t *testing.T) {
	_, ts, dir := serveFault(t, aggressiveBreaker())
	loadModel(t, ts, dir, "fig4")

	// Four NaN faults fill the window and trip the breaker; each is already
	// masked by the fallback, so clients only ever see well-formed answers.
	armFaults(t, "estimate-nan=1")
	for i := 0; i < 4; i++ {
		resp, body := post(t, ts.URL+"/v1/estimate", singleEstimate(int64(i)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d under faults: %d %s", i, resp.StatusCode, body)
		}
	}
	faultinject.Disarm()

	// Breaker is now open: requests serve from the fallback, degraded, even
	// though the model would be healthy again.
	resp, body := post(t, ts.URL+"/v1/estimate", singleEstimate(9))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open-breaker estimate: %d %s", resp.StatusCode, body)
	}
	var er server.EstimateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !er.Degraded || er.Est == nil || *er.Est <= 0 {
		t.Fatalf("open-breaker response = %s, want degraded fallback estimate", body)
	}

	// Batch requests degrade whole-request.
	seed := int64(1)
	resp, body = post(t, ts.URL+"/v1/estimate", server.EstimateRequest{
		Queries: []server.QueryJSON{fullJoin, fullJoin}, Seed: &seed,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open-breaker batch: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !er.Degraded || len(er.Ests) != 2 || er.Ests[0] <= 0 || er.Ests[1] <= 0 {
		t.Fatalf("open-breaker batch response = %s", body)
	}

	// The binary protocol carries the degraded flag too (wire round trip).
	q, err := server.DecodeQuery(fullJoin)
	if err != nil {
		t.Fatal(err)
	}
	frame := server.AppendBinRequest(nil, "", &seed, []query.Query{q})
	httpResp, err := http.Post(ts.URL+"/v1/estimate", server.ContentTypeBinary, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(httpResp.Body); err != nil {
		t.Fatal(err)
	}
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("binary open-breaker estimate: %d %s", httpResp.StatusCode, out.Bytes())
	}
	bresp, err := server.DecodeBinResponse(out.Bytes())
	if err != nil {
		t.Fatalf("binary response malformed while degraded: %v", err)
	}
	if !bresp.Degraded || len(bresp.Ests) != 1 || bresp.Ests[0] <= 0 {
		t.Fatalf("binary degraded response = %+v", bresp)
	}

	// Observability: breaker state + opens on /metrics, degraded on the
	// health surfaces — while /readyz keeps the instance in rotation.
	exp := metricsBody(t, ts)
	if !strings.Contains(exp, `neurocard_breaker_state{model="fig4"} 2`) {
		t.Fatalf("metrics missing open breaker state:\n%s", exp)
	}
	if !strings.Contains(exp, `neurocard_breaker_opens_total{model="fig4"} 1`) {
		t.Fatal("metrics missing breaker opens count")
	}
	resp, body = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded readyz = %d, want 200 (still serving)", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"degraded":true`) {
		t.Fatalf("readyz body = %s, want degraded:true", body)
	}
	resp, body = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"degraded":true`) {
		t.Fatalf("healthz = %d %s, want 200 + degraded:true", resp.StatusCode, body)
	}
}

func TestBreakerOpenWithoutFallbackIs503(t *testing.T) {
	cfg := aggressiveBreaker()
	cfg.NoFallback = true
	_, ts, dir := serveFault(t, cfg)
	loadModel(t, ts, dir, "fig4")

	armFaults(t, "estimate-nan=1")
	for i := 0; i < 4; i++ {
		resp, _ := post(t, ts.URL+"/v1/estimate", singleEstimate(int64(i)))
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d: %d, want 500 (no fallback to mask)", i, resp.StatusCode)
		}
	}
	faultinject.Disarm()

	resp, body := post(t, ts.URL+"/v1/estimate", singleEstimate(9))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker, no fallback: %d %s, want 503", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "circuit open") {
		t.Fatalf("503 body = %s", body)
	}
}

// TestFallbackQErrorSanity pins the fallback's usefulness: on the fig4
// schema its estimate for the full join must be within a modest q-error of
// the true cardinality (4 rows), not just finite.
func TestFallbackQErrorSanity(t *testing.T) {
	_, ts, dir := serveFault(t, aggressiveBreaker())
	loadModel(t, ts, dir, "fig4")

	armFaults(t, "estimate-nan=1")
	resp, body := post(t, ts.URL+"/v1/estimate", singleEstimate(1))
	faultinject.Disarm()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded estimate: %d %s", resp.StatusCode, body)
	}
	var er server.EstimateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !er.Degraded || er.Est == nil {
		t.Fatalf("expected a degraded fallback estimate, got %s", body)
	}
	const truth = 4.0 // |A ⋈ B ⋈ C| for the fig4 fixture
	qerr := *er.Est / truth
	if qerr < 1 {
		qerr = truth / *er.Est
	}
	if qerr > 10 {
		t.Fatalf("fallback q-error %.2f (est %g, truth %g) exceeds sanity bound 10", qerr, *er.Est, truth)
	}
}

// ---- health surfaces ----

func TestReadyzLivezLifecycle(t *testing.T) {
	_, ts, dir := serveFault(t, server.Config{})

	// No models: alive but not ready.
	resp, _ := get(t, ts.URL+"/livez")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("livez = %d, want 200 always", resp.StatusCode)
	}
	resp, body := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty readyz = %d %s, want 503", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"ready":false`) {
		t.Fatalf("empty readyz body = %s", body)
	}

	loadModel(t, ts, dir, "fig4")
	resp, body = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ready":true`) {
		t.Fatalf("loaded readyz = %d %s, want 200 ready", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"degraded":false`) {
		t.Fatalf("healthy readyz reports degraded: %s", body)
	}
}

// ---- checkpoint quarantine ----

func TestCorruptCheckpointQuarantined(t *testing.T) {
	_, ts, dir := serveFault(t, server.Config{})

	// A healthy model first: the failed reload below must not evict it.
	loadModel(t, ts, dir, "fig4")

	bad := filepath.Join(dir, "fig4.ckpt")
	if err := os.WriteFile(bad, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts.URL+"/v1/models/fig4/load", nil)
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("corrupt checkpoint loaded: %s", body)
	}
	if !strings.Contains(string(body), "quarantined") {
		t.Fatalf("load error does not mention quarantine: %s", body)
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatalf("corrupt file still at %s (err=%v), want renamed aside", bad, err)
	}
	if _, err := os.Stat(bad + ".corrupt"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if got := metricValue(t, metricsBody(t, ts), "neurocard_checkpoints_quarantined_total"); got != "1" {
		t.Fatalf("quarantine counter = %s, want 1", got)
	}

	// The previously-published generation still serves.
	resp, body = post(t, ts.URL+"/v1/estimate", singleEstimate(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate after failed reload: %d %s", resp.StatusCode, body)
	}
}
