package server

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// The per-model circuit breaker guards the serving path against a model that
// has started failing — panicking, timing out, or producing non-finite
// estimates. Each registry Entry carries its own breaker (a hot swap
// publishes a fresh one: a replacement model earns its own track record).
//
// States, exported on /metrics as neurocard_breaker_state:
//
//	closed (0)    normal serving; outcomes feed a rolling window, and a
//	              failure rate at or above the threshold trips the breaker
//	half-open (1) a bounded number of probe requests flow to the model; all
//	              must succeed to close, any failure reopens
//	open (2)      model traffic is short-circuited to the fallback estimator
//	              until a jittered, exponentially-growing cooldown elapses
const (
	breakerClosed int32 = iota
	breakerHalfOpen
	breakerOpen
)

// breakerConfig tunes one breaker. The zero value is completed by
// withDefaults.
type breakerConfig struct {
	Window      int           // rolling outcome window size
	MinSamples  int           // outcomes required before the rate can trip
	Threshold   float64       // failure rate in (0, 1] that opens the breaker
	Cooldown    time.Duration // first open→half-open delay; doubles per reopen
	MaxCooldown time.Duration // exponential-backoff cap
	Probes      int           // half-open probe budget

	now    func() time.Time // test seam; nil = time.Now
	jitter func() float64   // uniform [0, 1); nil = shared math/rand
}

func (c breakerConfig) withDefaults() breakerConfig {
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.MinSamples > c.Window {
		c.MinSamples = c.Window
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.MaxCooldown < c.Cooldown {
		c.MaxCooldown = 30 * time.Second
		if c.MaxCooldown < c.Cooldown {
			c.MaxCooldown = c.Cooldown
		}
	}
	if c.Probes <= 0 {
		c.Probes = 3
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.jitter == nil {
		c.jitter = rand.Float64
	}
	return c
}

// breaker is one model's circuit breaker. All transitions happen under mu;
// the state cell is additionally atomic so metrics scrapes never contend
// with the serving path.
type breaker struct {
	cfg   breakerConfig
	state atomic.Int32
	opens atomic.Int64 // lifetime closed/half-open → open transitions

	mu       sync.Mutex
	ring     []bool // rolling outcome window, true = failure
	ringLen  int    // outcomes currently held (≤ len(ring))
	ringPos  int    // next write position
	fails    int    // failures currently in the window
	cooldown time.Duration
	retryAt  time.Time // open: when the next probe may pass
	probes   int       // half-open: probe admissions remaining
	probeOK  int       // half-open: probe successes so far
}

func newBreaker(cfg breakerConfig) *breaker {
	cfg = cfg.withDefaults()
	return &breaker{cfg: cfg, ring: make([]bool, cfg.Window), cooldown: cfg.Cooldown}
}

// allow reports whether a request may reach the model right now. An open
// breaker whose cooldown has elapsed transitions to half-open and admits up
// to Probes requests; everything else it denies until the probes settle.
func (b *breaker) allow() bool {
	if b.state.Load() == breakerClosed {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state.Load() {
	case breakerClosed: // raced a close; admit
		return true
	case breakerOpen:
		if b.cfg.now().Before(b.retryAt) {
			return false
		}
		b.state.Store(breakerHalfOpen)
		b.probes = b.cfg.Probes
		b.probeOK = 0
		fallthrough
	default: // half-open
		if b.probes > 0 {
			b.probes--
			return true
		}
		return false
	}
}

// record feeds one model outcome back. Closed: the outcome enters the
// rolling window and may trip the breaker. Half-open: a failure reopens with
// doubled cooldown; Probes successes close it and reset the window. Open:
// stragglers from before the trip are dropped.
func (b *breaker) record(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state.Load() {
	case breakerClosed:
		if b.ringLen == len(b.ring) {
			if b.ring[b.ringPos] {
				b.fails--
			}
		} else {
			b.ringLen++
		}
		b.ring[b.ringPos] = failure
		if failure {
			b.fails++
		}
		b.ringPos = (b.ringPos + 1) % len(b.ring)
		if b.ringLen >= b.cfg.MinSamples && float64(b.fails) >= b.cfg.Threshold*float64(b.ringLen) {
			b.trip()
		}
	case breakerHalfOpen:
		if failure {
			b.cooldown *= 2
			if b.cooldown > b.cfg.MaxCooldown {
				b.cooldown = b.cfg.MaxCooldown
			}
			b.trip()
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.Probes {
			// Full probe budget succeeded: close with a clean window and the
			// base cooldown restored.
			b.state.Store(breakerClosed)
			b.ringLen, b.ringPos, b.fails = 0, 0, 0
			b.cooldown = b.cfg.Cooldown
		}
	}
}

// trip opens the breaker with a jittered retry time (mu held). Jitter keeps
// a fleet of replicas from probing a shared failing dependency in lockstep.
func (b *breaker) trip() {
	b.state.Store(breakerOpen)
	b.opens.Add(1)
	jittered := b.cooldown + time.Duration(b.cfg.jitter()*float64(b.cooldown)/2)
	b.retryAt = b.cfg.now().Add(jittered)
}

// currentState returns the breaker state for metrics/readiness, without
// taking the transition lock.
func (b *breaker) currentState() int32 { return b.state.Load() }
