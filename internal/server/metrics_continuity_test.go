package server_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"neurocard/internal/faultinject"
)

func metricInt(t *testing.T, exposition, name string) int64 {
	t.Helper()
	v := strings.TrimSpace(metricValue(t, exposition, name))
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("metric %s = %q: %v", name, v, err)
	}
	return n
}

// TestMetricsMonotoneAcrossHotSwaps drives three hot swaps and checks that
// the per-model lifetime counters — plan-cache hits/misses and breaker
// opens — never move backwards. Before the registry banked retired-
// generation totals, every swap silently reset them to the new entry's
// zeroed stats, which breaks Prometheus rate() over a reload.
func TestMetricsMonotoneAcrossHotSwaps(t *testing.T) {
	_, ts, dir := serveFault(t, aggressiveBreaker())
	loadModel(t, ts, dir, "m")

	const (
		hitsM   = `neurocard_plan_cache_hits_total{model="m"}`
		missesM = `neurocard_plan_cache_misses_total{model="m"}`
		opensM  = `neurocard_breaker_opens_total{model="m"}`
	)
	var prevHits, prevMisses, prevOpens int64
	for round := int64(0); round < 3; round++ {
		// Plan-cache traffic while the breaker is closed: the first estimate
		// of this generation misses, the repeat hits.
		for i := int64(0); i < 2; i++ {
			seed := round*10 + i
			resp, body := post(t, ts.URL+"/v1/estimate", singleEstimate(seed))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("round %d estimate %d: %d %s", round, i, resp.StatusCode, body)
			}
		}
		// Trip this generation's breaker: one open transition per round.
		armFaults(t, "estimate-nan=1")
		for i := int64(0); i < 4; i++ {
			post(t, ts.URL+"/v1/estimate", singleEstimate(100+round*10+i))
		}
		faultinject.Disarm()

		exp := metricsBody(t, ts)
		hits, misses, opens := metricInt(t, exp, hitsM), metricInt(t, exp, missesM), metricInt(t, exp, opensM)
		if hits < prevHits || misses < prevMisses || opens < prevOpens {
			t.Fatalf("round %d pre-swap counters moved backwards: hits %d<%d misses %d<%d opens %d<%d",
				round, hits, prevHits, misses, prevMisses, opens, prevOpens)
		}
		if opens != round+1 {
			t.Fatalf("round %d: opens = %d, want %d (one per generation, accumulated)", round, opens, round+1)
		}
		prevHits, prevMisses, prevOpens = hits, misses, opens

		// Hot swap; the counters must carry the retired generation forward.
		resp, body := post(t, ts.URL+"/v1/models/m/load", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("swap %d: %d %s", round, resp.StatusCode, body)
		}
		exp = metricsBody(t, ts)
		hits, misses, opens = metricInt(t, exp, hitsM), metricInt(t, exp, missesM), metricInt(t, exp, opensM)
		if hits < prevHits || misses < prevMisses || opens < prevOpens {
			t.Fatalf("swap %d reset counters: hits %d<%d misses %d<%d opens %d<%d",
				round, hits, prevHits, misses, prevMisses, opens, prevOpens)
		}
		prevHits, prevMisses, prevOpens = hits, misses, opens
	}
	// Every generation compiled its plans afresh, so the accumulated miss
	// count must reflect all three retired generations, not just the live one.
	if prevMisses < 3 {
		t.Fatalf("misses after 3 generations = %d, want >= 3", prevMisses)
	}
}

// TestMetricsScrapeDuringSwapRace scrapes /metrics concurrently with a hot-
// swap loop: counters must stay non-decreasing from any reader's point of
// view even mid-swap (the registry snapshots entries and retired totals
// under one lock), and the race detector must stay quiet.
func TestMetricsScrapeDuringSwapRace(t *testing.T) {
	_, ts, dir := serveTest(t)
	loadModel(t, ts, dir, "m")

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(0); i < 12; i++ {
			resp, body := post(t, ts.URL+"/v1/estimate", singleEstimate(i))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("estimate %d: %d %s", i, resp.StatusCode, body)
				return
			}
			resp, body = post(t, ts.URL+"/v1/models/m/load", nil)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("swap %d: %d %s", i, resp.StatusCode, body)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prevMisses, prevQueries int64
			for {
				select {
				case <-done:
					return
				default:
				}
				exp, ok := scrape(t, ts)
				if !ok {
					return
				}
				misses, ok1 := parseMetric(exp, `neurocard_plan_cache_misses_total{model="m"}`)
				queries, ok2 := parseMetric(exp, "neurocard_estimate_queries_total")
				if !ok1 || !ok2 {
					t.Errorf("scrape missing counters:\n%s", exp)
					return
				}
				if misses < prevMisses || queries < prevQueries {
					t.Errorf("scrape went backwards: misses %d<%d queries %d<%d",
						misses, prevMisses, queries, prevQueries)
					return
				}
				prevMisses, prevQueries = misses, queries
			}
		}()
	}
	wg.Wait()
}

// scrape fetches /metrics without t.Fatal (callers run on goroutines).
func scrape(t *testing.T, ts *httptest.Server) (string, bool) {
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Errorf("metrics scrape: %v", err)
		return "", false
	}
	defer resp.Body.Close()
	var out strings.Builder
	if _, err := io.Copy(&out, resp.Body); err != nil {
		t.Errorf("metrics scrape read: %v", err)
		return "", false
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("metrics scrape: %d", resp.StatusCode)
		return "", false
	}
	return out.String(), true
}

// parseMetric extracts an integer counter from an exposition, goroutine-safe.
func parseMetric(exposition, name string) (int64, bool) {
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			n, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			return n, err == nil
		}
	}
	return 0, false
}
