package server

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	hist "neurocard/internal/baselines/histogram"
	"neurocard/internal/core"
	"neurocard/internal/shard"
)

// Entry is one loaded model: an immutable snapshot handed out to requests.
// Entries are never mutated after publication — a reload publishes a new
// Entry — so a request that grabbed one keeps a consistent (estimator,
// metadata) pair for its whole lifetime regardless of concurrent swaps.
//
// Breaker and Fallback are the entry's fault-tolerance companions, built at
// install time (nil when the server disables them): the circuit breaker
// tracks this model generation's health — a hot swap starts a fresh breaker,
// since a replacement model deserves its own track record — and the
// histogram baseline answers in the model's stead while the breaker is open.
// The breaker's internal counters mutate, but the pointer itself is
// immutable like the rest of the entry.
type Entry struct {
	Name     string
	Path     string
	Est      *core.Estimator
	LoadedAt time.Time
	Gen      int // reload generation of this name, starting at 1

	Breaker  *breaker
	Fallback *hist.Estimator
}

// Registry maps model names to loaded estimators. Lookups by name take a
// read lock; the default model is an atomic pointer so the common hot path
// (no explicit model in the request) is lock-free. Hot swap replaces the
// published *Entry; in-flight requests keep serving from the entry they
// already hold (each estimator owns its session pool), and the old model is
// garbage-collected once the last request drains.
type Registry struct {
	dir string

	// Fault-tolerance factories, set by the owning Server before any load
	// (nil = feature off): newBreaker builds each entry's circuit breaker,
	// newFallback its shadow estimator.
	newBreaker  func() *breaker
	newFallback func(est *core.Estimator) *hist.Estimator

	// defaultPrecision is applied to every load that names no precision of
	// its own (Server Config.DefaultPrecision / the daemon's -precision
	// flag). Empty keeps each checkpoint's stored precision.
	defaultPrecision core.Precision

	quarantined atomic.Int64 // corrupt checkpoints moved aside by Load

	mu       sync.RWMutex
	models   map[string]*Entry
	logicals map[string]*Logical
	// retired accumulates the lifetime counters of replaced or unloaded
	// generations per model name, so the /metrics counters built from the
	// current entry's stats stay monotone across hot swaps.
	retired map[string]RetiredTotals
	def     atomic.Pointer[Entry]
}

// RetiredTotals carries the counters of a model name's retired generations.
// A hot swap publishes a fresh estimator (and breaker) whose counters start
// at zero; the registry banks the outgoing generation's totals here at swap
// time and the scrape path adds them back in, so neurocard_plan_cache_* and
// neurocard_breaker_opens_total never go backwards after a reload.
type RetiredTotals struct {
	PlanHits          int64
	PlanMisses        int64
	PlanEvictions     int64
	PlanInvalidations int64
	BreakerOpens      int64
	// DataGenerations accumulates retired generations' data-snapshot counts,
	// so neurocard_data_generation keeps climbing across hot swaps instead of
	// resetting with each fresh estimator.
	DataGenerations int64
}

// Logical groups shard entries into one servable logical model: the
// manifest's planner routes queries to shard names, which are resolved
// against the registry per request — so each shard hot-swaps independently
// and the logical model always serves the freshest generation of every
// shard. Immutable after publication, like Entry.
type Logical struct {
	Name     string
	Path     string // manifest file path
	Man      *shard.Manifest
	Planner  *shard.Planner
	LoadedAt time.Time
	Gen      int
}

// modelNameRE restricts registry names to path-safe tokens, so names can be
// mapped onto checkpoint files under the models directory without traversal.
var modelNameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]*$`)

// NewRegistry creates a registry resolving relative model names under dir
// (may be empty if models are always loaded from explicit paths).
func NewRegistry(dir string) *Registry {
	return &Registry{
		dir:      dir,
		models:   make(map[string]*Entry),
		logicals: make(map[string]*Logical),
		retired:  make(map[string]RetiredTotals),
	}
}

// Dir returns the registry's models directory.
func (r *Registry) Dir() string { return r.dir }

// CheckpointPath resolves the on-disk checkpoint file for a model name:
// <dir>/<name>.ckpt.
func (r *Registry) CheckpointPath(name string) string {
	return filepath.Join(r.dir, name+".ckpt")
}

// ValidateName rejects names that cannot be registry keys.
func ValidateName(name string) error {
	if !modelNameRE.MatchString(name) {
		return fmt.Errorf("server: invalid model name %q (want %s)", name, modelNameRE)
	}
	return nil
}

// Load reads the checkpoint at path (or the registry's conventional path for
// name when path is empty), restores the estimator at the registry's default
// precision, and publishes it under name. If the name exists, the entry is
// atomically replaced (hot swap); if no default model is set yet, the new
// entry becomes the default.
func (r *Registry) Load(name, path string) (*Entry, error) {
	return r.LoadPrecision(name, path, "")
}

// LoadPrecision is Load with an explicit serving precision for this model:
// checkpoints always store float64 weights, so precision is a per-load
// serving decision — float32 converts the kernel set once here, before the
// entry is published (conversion-at-load, DESIGN.md §1.4). Empty falls back
// to the registry default, and failing that the checkpoint's own stored
// precision. Two models at different precisions serve concurrently; a hot
// swap may change a model's precision without touching its checkpoint.
func (r *Registry) LoadPrecision(name, path string, prec core.Precision) (*Entry, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	if path == "" {
		path = r.CheckpointPath(name)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("server: load model %q: %w", name, err)
	}
	defer f.Close()
	est, err := core.LoadCheckpoint(f)
	if err != nil {
		// The file failed validation: quarantine it so a crashed or corrupt
		// checkpoint can't be retried forever (or silently picked up by a
		// restart), and keep whatever entry this name already serves — a
		// failed reload must never take down a healthy model.
		err = fmt.Errorf("server: load model %q: %w", name, err)
		qpath := path + ".corrupt"
		if renameErr := os.Rename(path, qpath); renameErr == nil {
			r.quarantined.Add(1)
			err = fmt.Errorf("%w (checkpoint quarantined to %s)", err, qpath)
		}
		return nil, err
	}
	if prec == "" {
		prec = r.defaultPrecision
	}
	if prec != "" {
		// A bad precision is a caller mistake, not a corrupt checkpoint: fail
		// the load without quarantining the file.
		if err := est.SetPrecision(prec); err != nil {
			return nil, fmt.Errorf("server: load model %q: %w", name, err)
		}
	}
	return r.Install(name, path, est)
}

// Quarantined reports how many corrupt checkpoints Load has moved aside.
func (r *Registry) Quarantined() int64 { return r.quarantined.Load() }

// Install publishes an already-restored estimator under name (the daemon's
// preload path and the test seam). Swap semantics match Load.
func (r *Registry) Install(name, path string, est *core.Estimator) (*Entry, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	e := &Entry{Name: name, Path: path, Est: est, LoadedAt: time.Now()}
	if r.newBreaker != nil {
		e.Breaker = r.newBreaker()
	}
	if r.newFallback != nil {
		// Built outside the lock: the ANALYZE pass scans every table.
		e.Fallback = r.newFallback(est)
	}
	r.mu.Lock()
	if _, clash := r.logicals[name]; clash {
		r.mu.Unlock()
		return nil, fmt.Errorf("server: name %q is a logical model", name)
	}
	e.Gen = 1
	if prev, ok := r.models[name]; ok {
		e.Gen = prev.Gen + 1
		r.retireLocked(prev)
	}
	r.models[name] = e
	// Become the default if there is none, or swap the default in place when
	// the default model itself was reloaded.
	if cur := r.def.Load(); cur == nil || cur.Name == name {
		r.def.Store(e)
	}
	r.mu.Unlock()
	return e, nil
}

// SetDefault marks an already-loaded model as the default for requests that
// name no model. Lookup and pointer store happen under the write lock so a
// concurrent Install of the same name cannot leave the default pointing at
// an entry the registry no longer holds.
func (r *Registry) SetDefault(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.models[name]
	if !ok {
		return fmt.Errorf("server: model %q is not loaded", name)
	}
	r.def.Store(e)
	return nil
}

// Get returns the named model, or the default when name is empty.
func (r *Registry) Get(name string) (*Entry, error) {
	if name == "" {
		if e := r.def.Load(); e != nil {
			return e, nil
		}
		return nil, fmt.Errorf("server: no model loaded")
	}
	r.mu.RLock()
	e, ok := r.models[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("server: model %q is not loaded", name)
	}
	return e, nil
}

// List returns all loaded entries sorted by name, plus the current default
// (nil if none).
func (r *Registry) List() ([]*Entry, *Entry) {
	r.mu.RLock()
	out := make([]*Entry, 0, len(r.models))
	for _, e := range r.models {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, r.def.Load()
}

// Len returns the number of loaded models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}

// retireLocked banks an outgoing entry's lifetime counters. Caller holds
// the write lock.
func (r *Registry) retireLocked(prev *Entry) {
	t := r.retired[prev.Name]
	ps := prev.Est.PlanCacheStats()
	t.PlanHits += ps.Hits
	t.PlanMisses += ps.Misses
	t.PlanEvictions += ps.Evictions
	t.PlanInvalidations += ps.Invalidations
	t.DataGenerations += prev.Est.DataGeneration()
	if prev.Breaker != nil {
		t.BreakerOpens += prev.Breaker.opens.Load()
	}
	r.retired[prev.Name] = t
}

// Snapshot returns the loaded entries (sorted by name) together with the
// retired-counter totals, captured under one read lock. The scrape path
// must take both in a single consistent view: reading entry stats first and
// retired totals second would double-count a generation retired between the
// two reads.
func (r *Registry) Snapshot() ([]*Entry, map[string]RetiredTotals) {
	r.mu.RLock()
	entries := make([]*Entry, 0, len(r.models))
	for _, e := range r.models {
		entries = append(entries, e)
	}
	retired := make(map[string]RetiredTotals, len(r.retired))
	for name, t := range r.retired {
		retired[name] = t
	}
	r.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries, retired
}

// Unload removes a model (or logical model) from the registry. In-flight
// requests holding the entry finish normally; new requests naming it get a
// not-loaded error. When the unloaded model was the default, the default is
// re-elected under the same write lock — the remaining model with the
// smallest name, or cleared when none remain — so Get("") never observes a
// default the registry no longer holds. The entry's counters are banked in
// the retired totals, keeping /metrics monotone across an unload/reload
// cycle. Unloading a logical model removes only the grouping; its shard
// entries stay loaded and individually addressable. Unloading a shard out
// from under a logical model is allowed — estimates needing that shard fail
// with 503 until it is reloaded.
func (r *Registry) Unload(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.logicals[name]; ok {
		delete(r.logicals, name)
		return nil
	}
	e, ok := r.models[name]
	if !ok {
		return fmt.Errorf("server: model %q is not loaded", name)
	}
	r.retireLocked(e)
	delete(r.models, name)
	if cur := r.def.Load(); cur != nil && cur.Name == name {
		var next *Entry
		for _, m := range r.models {
			if next == nil || m.Name < next.Name {
				next = m
			}
		}
		r.def.Store(next) // nil clears the default
	}
	return nil
}

// ManifestPath resolves the on-disk manifest file for a logical model name:
// <dir>/<name>.manifest.json.
func (r *Registry) ManifestPath(name string) string {
	return shard.ManifestPath(r.dir, name)
}

// LoadLogical reads a shard manifest (the registry's conventional path for
// name when path is empty), loads every shard checkpoint it lists —
// hot-swapping shards already present — and publishes the group under the
// logical name. Shard checkpoints resolve relative to the manifest's
// directory. A failed shard load aborts the logical publish but leaves any
// shards already loaded, matching the hot-swap contract: a failed reload
// never takes down a healthy model.
func (r *Registry) LoadLogical(name, path string) (*Logical, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	if path == "" {
		path = r.ManifestPath(name)
	}
	man, err := shard.Load(path)
	if err != nil {
		return nil, err
	}
	if man.Logical != name {
		return nil, fmt.Errorf("server: manifest %s describes logical model %q, not %q", path, man.Logical, name)
	}
	dir := filepath.Dir(path)
	for _, spec := range man.Shards {
		ckpt := spec.Checkpoint
		if ckpt == "" {
			ckpt = spec.Name + ".ckpt"
		}
		if !filepath.IsAbs(ckpt) {
			ckpt = filepath.Join(dir, ckpt)
		}
		if _, err := r.LoadPrecision(spec.Name, ckpt, ""); err != nil {
			return nil, fmt.Errorf("server: logical model %q: %w", name, err)
		}
	}
	return r.InstallLogical(name, path, man)
}

// InstallLogical publishes a manifest whose shard entries are already
// loaded (LoadLogical's tail and the preload/test seam). The logical name
// must not collide with a concrete model, and every shard it references
// must be present at publish time.
func (r *Registry) InstallLogical(name, path string, man *shard.Manifest) (*Logical, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	pl, err := shard.NewPlanner(man)
	if err != nil {
		return nil, err
	}
	lg := &Logical{Name: name, Path: path, Man: man, Planner: pl, LoadedAt: time.Now()}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, clash := r.models[name]; clash {
		return nil, fmt.Errorf("server: name %q is already a loaded model", name)
	}
	for _, spec := range man.Shards {
		if _, ok := r.models[spec.Name]; !ok {
			return nil, fmt.Errorf("server: logical model %q: shard %q is not loaded", name, spec.Name)
		}
	}
	lg.Gen = 1
	if prev, ok := r.logicals[name]; ok {
		lg.Gen = prev.Gen + 1
	}
	r.logicals[name] = lg
	return lg, nil
}

// GetLogical returns the named logical model, or nil when the name is not a
// logical model. Logical models are addressed by explicit name only — they
// never serve as the default model.
func (r *Registry) GetLogical(name string) *Logical {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.logicals[name]
}

// ListLogical returns the published logical models sorted by name.
func (r *Registry) ListLogical() []*Logical {
	r.mu.RLock()
	out := make([]*Logical, 0, len(r.logicals))
	for _, lg := range r.logicals {
		out = append(out, lg)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
