package server

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	hist "neurocard/internal/baselines/histogram"
	"neurocard/internal/core"
)

// Entry is one loaded model: an immutable snapshot handed out to requests.
// Entries are never mutated after publication — a reload publishes a new
// Entry — so a request that grabbed one keeps a consistent (estimator,
// metadata) pair for its whole lifetime regardless of concurrent swaps.
//
// Breaker and Fallback are the entry's fault-tolerance companions, built at
// install time (nil when the server disables them): the circuit breaker
// tracks this model generation's health — a hot swap starts a fresh breaker,
// since a replacement model deserves its own track record — and the
// histogram baseline answers in the model's stead while the breaker is open.
// The breaker's internal counters mutate, but the pointer itself is
// immutable like the rest of the entry.
type Entry struct {
	Name     string
	Path     string
	Est      *core.Estimator
	LoadedAt time.Time
	Gen      int // reload generation of this name, starting at 1

	Breaker  *breaker
	Fallback *hist.Estimator
}

// Registry maps model names to loaded estimators. Lookups by name take a
// read lock; the default model is an atomic pointer so the common hot path
// (no explicit model in the request) is lock-free. Hot swap replaces the
// published *Entry; in-flight requests keep serving from the entry they
// already hold (each estimator owns its session pool), and the old model is
// garbage-collected once the last request drains.
type Registry struct {
	dir string

	// Fault-tolerance factories, set by the owning Server before any load
	// (nil = feature off): newBreaker builds each entry's circuit breaker,
	// newFallback its shadow estimator.
	newBreaker  func() *breaker
	newFallback func(est *core.Estimator) *hist.Estimator

	// defaultPrecision is applied to every load that names no precision of
	// its own (Server Config.DefaultPrecision / the daemon's -precision
	// flag). Empty keeps each checkpoint's stored precision.
	defaultPrecision core.Precision

	quarantined atomic.Int64 // corrupt checkpoints moved aside by Load

	mu     sync.RWMutex
	models map[string]*Entry
	def    atomic.Pointer[Entry]
}

// modelNameRE restricts registry names to path-safe tokens, so names can be
// mapped onto checkpoint files under the models directory without traversal.
var modelNameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]*$`)

// NewRegistry creates a registry resolving relative model names under dir
// (may be empty if models are always loaded from explicit paths).
func NewRegistry(dir string) *Registry {
	return &Registry{dir: dir, models: make(map[string]*Entry)}
}

// Dir returns the registry's models directory.
func (r *Registry) Dir() string { return r.dir }

// CheckpointPath resolves the on-disk checkpoint file for a model name:
// <dir>/<name>.ckpt.
func (r *Registry) CheckpointPath(name string) string {
	return filepath.Join(r.dir, name+".ckpt")
}

// ValidateName rejects names that cannot be registry keys.
func ValidateName(name string) error {
	if !modelNameRE.MatchString(name) {
		return fmt.Errorf("server: invalid model name %q (want %s)", name, modelNameRE)
	}
	return nil
}

// Load reads the checkpoint at path (or the registry's conventional path for
// name when path is empty), restores the estimator at the registry's default
// precision, and publishes it under name. If the name exists, the entry is
// atomically replaced (hot swap); if no default model is set yet, the new
// entry becomes the default.
func (r *Registry) Load(name, path string) (*Entry, error) {
	return r.LoadPrecision(name, path, "")
}

// LoadPrecision is Load with an explicit serving precision for this model:
// checkpoints always store float64 weights, so precision is a per-load
// serving decision — float32 converts the kernel set once here, before the
// entry is published (conversion-at-load, DESIGN.md §1.4). Empty falls back
// to the registry default, and failing that the checkpoint's own stored
// precision. Two models at different precisions serve concurrently; a hot
// swap may change a model's precision without touching its checkpoint.
func (r *Registry) LoadPrecision(name, path string, prec core.Precision) (*Entry, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	if path == "" {
		path = r.CheckpointPath(name)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("server: load model %q: %w", name, err)
	}
	defer f.Close()
	est, err := core.LoadCheckpoint(f)
	if err != nil {
		// The file failed validation: quarantine it so a crashed or corrupt
		// checkpoint can't be retried forever (or silently picked up by a
		// restart), and keep whatever entry this name already serves — a
		// failed reload must never take down a healthy model.
		err = fmt.Errorf("server: load model %q: %w", name, err)
		qpath := path + ".corrupt"
		if renameErr := os.Rename(path, qpath); renameErr == nil {
			r.quarantined.Add(1)
			err = fmt.Errorf("%w (checkpoint quarantined to %s)", err, qpath)
		}
		return nil, err
	}
	if prec == "" {
		prec = r.defaultPrecision
	}
	if prec != "" {
		// A bad precision is a caller mistake, not a corrupt checkpoint: fail
		// the load without quarantining the file.
		if err := est.SetPrecision(prec); err != nil {
			return nil, fmt.Errorf("server: load model %q: %w", name, err)
		}
	}
	return r.Install(name, path, est)
}

// Quarantined reports how many corrupt checkpoints Load has moved aside.
func (r *Registry) Quarantined() int64 { return r.quarantined.Load() }

// Install publishes an already-restored estimator under name (the daemon's
// preload path and the test seam). Swap semantics match Load.
func (r *Registry) Install(name, path string, est *core.Estimator) (*Entry, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	e := &Entry{Name: name, Path: path, Est: est, LoadedAt: time.Now()}
	if r.newBreaker != nil {
		e.Breaker = r.newBreaker()
	}
	if r.newFallback != nil {
		// Built outside the lock: the ANALYZE pass scans every table.
		e.Fallback = r.newFallback(est)
	}
	r.mu.Lock()
	e.Gen = 1
	if prev, ok := r.models[name]; ok {
		e.Gen = prev.Gen + 1
	}
	r.models[name] = e
	// Become the default if there is none, or swap the default in place when
	// the default model itself was reloaded.
	if cur := r.def.Load(); cur == nil || cur.Name == name {
		r.def.Store(e)
	}
	r.mu.Unlock()
	return e, nil
}

// SetDefault marks an already-loaded model as the default for requests that
// name no model. Lookup and pointer store happen under the write lock so a
// concurrent Install of the same name cannot leave the default pointing at
// an entry the registry no longer holds.
func (r *Registry) SetDefault(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.models[name]
	if !ok {
		return fmt.Errorf("server: model %q is not loaded", name)
	}
	r.def.Store(e)
	return nil
}

// Get returns the named model, or the default when name is empty.
func (r *Registry) Get(name string) (*Entry, error) {
	if name == "" {
		if e := r.def.Load(); e != nil {
			return e, nil
		}
		return nil, fmt.Errorf("server: no model loaded")
	}
	r.mu.RLock()
	e, ok := r.models[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("server: model %q is not loaded", name)
	}
	return e, nil
}

// List returns all loaded entries sorted by name, plus the current default
// (nil if none).
func (r *Registry) List() ([]*Entry, *Entry) {
	r.mu.RLock()
	out := make([]*Entry, 0, len(r.models))
	for _, e := range r.models {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, r.def.Load()
}

// Len returns the number of loaded models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}
