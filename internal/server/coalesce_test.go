package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"neurocard/internal/core"
	"neurocard/internal/query"
	"neurocard/internal/schema"
	"neurocard/internal/table"
	"neurocard/internal/value"
)

// coalesceEstimator trains a small estimator for the white-box coalescer
// tests (the black-box suite has its own builder in package server_test).
func coalesceEstimator(t *testing.T, seed int64, tuples int) *core.Estimator {
	t.Helper()
	a := table.MustBuilder("A", []table.ColSpec{
		{Name: "x", Kind: value.KindInt},
		{Name: "year", Kind: value.KindInt},
	})
	a.MustAppend(value.Int(1), value.Int(1990))
	a.MustAppend(value.Int(2), value.Int(2000))
	a.MustAppend(value.Int(2), value.Null)
	b := table.MustBuilder("B", []table.ColSpec{
		{Name: "x", Kind: value.KindInt}, {Name: "y", Kind: value.KindInt},
	})
	b.MustAppend(value.Int(1), value.Int(1))
	b.MustAppend(value.Int(2), value.Int(2))
	b.MustAppend(value.Int(2), value.Int(3))
	c := table.MustBuilder("C", []table.ColSpec{{Name: "y", Kind: value.KindInt}})
	c.MustAppend(value.Int(3))
	c.MustAppend(value.Int(3))
	c.MustAppend(value.Int(4))
	sch, err := schema.New(
		[]*table.Table{a.MustBuild(), b.MustBuild(), c.MustBuild()},
		"A",
		[]schema.Edge{
			{LeftTable: "A", LeftCol: "x", RightTable: "B", RightCol: "x"},
			{LeftTable: "B", LeftCol: "y", RightTable: "C", RightCol: "y"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Model.Hidden = 24
	cfg.Model.EmbedDim = 6
	cfg.Model.Blocks = 1
	cfg.PSamples = 64
	cfg.BatchSize = 64
	cfg.Seed = seed
	cfg.ContentCols = map[string][]string{"A": {"x", "year"}, "B": {"x", "y"}, "C": {"y"}}
	est, err := core.Build(sch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Train(tuples); err != nil {
		t.Fatal(err)
	}
	return est
}

// fakeClock is a Clock whose timers only fire when the test says so. Each
// After call signals afterCalled, so tests can sequence "fuser is now holding
// the window open" deterministically.
type fakeClock struct {
	mu          sync.Mutex
	pending     []chan time.Time
	afterCalled chan struct{}
}

func newFakeClock() *fakeClock {
	return &fakeClock{afterCalled: make(chan struct{}, 64)}
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	c.pending = append(c.pending, ch)
	c.mu.Unlock()
	c.afterCalled <- struct{}{}
	return ch
}

// fire releases every timer created so far.
func (c *fakeClock) fire() {
	c.mu.Lock()
	pending := c.pending
	c.pending = nil
	c.mu.Unlock()
	for _, ch := range pending {
		ch <- time.Time{}
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestCoalesceWindowFlushFusesBatch drives the window-timeout flush with a
// fake clock: the fuser holds the window open until the test fires the timer,
// several requests arrive meanwhile, and one fused flush answers all of them
// — each with the result it would have produced alone (seeded requests fuse
// as (seed, 0), bit-identical to EstimateSeededIndexed).
func TestCoalesceWindowFlushFusesBatch(t *testing.T) {
	clock := newFakeClock()
	srv := New(Config{
		ModelsDir:  t.TempDir(),
		FuseWindow: time.Hour, // effectively "until the test fires it"
		Clock:      clock,
	})
	defer srv.Close()
	est := coalesceEstimator(t, 7, 256)
	if _, err := srv.reg.Install("m", "mem", est); err != nil {
		t.Fatal(err)
	}

	queries := []query.Query{
		{Tables: []string{"A", "B", "C"}},
		{Tables: []string{"A"}, Filters: []query.Filter{
			{Table: "A", Col: "year", Op: query.OpGe, Val: value.Int(1995)}}},
		{Tables: []string{"B", "C"}},
		{Tables: []string{"A", "B"}},
	}
	seed := int64(41)
	ests := make([]float64, len(queries))
	errs := make([]error, len(queries))
	var wg sync.WaitGroup

	// First request: the fuser opens a batch and parks on the window timer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ests[0], errs[0] = srv.coalesce(context.Background(), "m", queries[0], &seed)
	}()
	<-clock.afterCalled
	f := srv.fuserFor("m")
	waitFor(t, "first request collected", func() bool { return f.collected.Load() == 1 })

	// The rest arrive while the window is open and must join the same batch.
	for i := 1; i < len(queries); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ests[i], errs[i] = srv.coalesce(context.Background(), "m", queries[i], &seed)
		}(i)
	}
	waitFor(t, "all requests collected", func() bool {
		return f.collected.Load() == int64(len(queries))
	})
	clock.fire()
	wg.Wait()

	for i, q := range queries {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		want, err := est.EstimateSeededIndexed(q, seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ests[i]-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("query %d: coalesced %.17g, alone %.17g — fusing changed the result", i, ests[i], want)
		}
	}

	// Exactly one flush of the full batch.
	m := srv.metrics
	if n := m.fusedBatchSize.samples.Load(); n != 1 {
		t.Fatalf("fused flushes = %d, want 1", n)
	}
	if s := m.fusedBatchSize.sum(); s != float64(len(queries)) {
		t.Fatalf("fused batch total = %g, want %d", s, len(queries))
	}
}

// TestCoalesceBackpressure fills a tiny coalescer queue whose fuser never
// drains (installed without a running loop) and checks admission control:
// the overflow request gets 429 + Retry-After, and the queued request gets
// 503 when the server shuts down.
func TestCoalesceBackpressure(t *testing.T) {
	srv := New(Config{ModelsDir: t.TempDir(), FuseQueue: 1})
	est := coalesceEstimator(t, 7, 256)
	if _, err := srv.reg.Install("m", "mem", est); err != nil {
		t.Fatal(err)
	}
	// A dead fuser: requests enqueue, nothing ever flushes. fuserFor finds
	// it in the map and never starts a loop for it.
	srv.fusers.Store("m", &fuser{
		s:     srv,
		model: "m",
		queue: make(chan *pendingEstimate, srv.cfg.FuseQueue),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"model":"m","query":{"tables":["A"]}}`
	type result struct {
		status int
	}
	first := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", strings.NewReader(body))
		if err != nil {
			first <- result{-1}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		first <- result{resp.StatusCode}
	}()

	f, _ := srv.fusers.Load("m")
	waitFor(t, "queue to fill", func() bool { return len(f.(*fuser).queue) == 1 })

	// Queue is full: the next request must be rejected, not queued.
	resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rejBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated estimate: %d %s, want 429", resp.StatusCode, rejBody)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	var er struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rejBody, &er); err != nil || er.Error == "" {
		t.Fatalf("429 body %q", rejBody)
	}
	if n := srv.metrics.coalesceRejected.Load(); n != 1 {
		t.Fatalf("coalesceRejected = %d, want 1", n)
	}

	// Shutdown fails the queued request with 503.
	srv.Close()
	if r := <-first; r.status != http.StatusServiceUnavailable {
		t.Fatalf("queued request on shutdown: %d, want 503", r.status)
	}

	// And the rejection shows up on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "neurocard_coalesce_rejected_total 1") {
		t.Fatalf("metrics missing rejection counter:\n%s", mbody)
	}
}

// TestCoalesceAdaptiveWindowDecays checks the load-adaptive window: a fresh
// fuser starts with the full budget, and a trickle of one-query flushes
// drives the window to zero so idle traffic stops paying the batching
// latency.
func TestCoalesceAdaptiveWindowDecays(t *testing.T) {
	srv := New(Config{ModelsDir: t.TempDir(), FuseWindow: 2 * time.Millisecond})
	defer srv.Close()
	est := coalesceEstimator(t, 7, 256)
	if _, err := srv.reg.Install("m", "mem", est); err != nil {
		t.Fatal(err)
	}
	f := srv.fuserFor("m")
	if w := time.Duration(f.window.Load()); w != 2*time.Millisecond {
		t.Fatalf("fresh fuser window = %v, want the full 2ms budget", w)
	}
	q := query.Query{Tables: []string{"A"}}
	for i := 0; i < 3; i++ {
		if _, err := srv.coalesce(context.Background(), "m", q, nil); err != nil {
			t.Fatal(err)
		}
	}
	if w := time.Duration(f.window.Load()); w != 0 {
		t.Fatalf("window after a single-request trickle = %v, want 0", w)
	}
}

// TestCoalesceConcurrentHotSwap hammers the coalesced single-query path while
// the model hot-swaps under it — run with -race in CI. Every response must be
// a valid estimate from some generation; no torn state, no lost pendings.
func TestCoalesceConcurrentHotSwap(t *testing.T) {
	srv := New(Config{ModelsDir: t.TempDir(), FuseWindow: 500 * time.Microsecond})
	defer srv.Close()
	gens := []*core.Estimator{coalesceEstimator(t, 7, 256), coalesceEstimator(t, 11, 256)}
	if _, err := srv.reg.Install("m", "mem", gens[0]); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	seed := int64(9)
	req, _ := json.Marshal(EstimateRequest{
		Query: &QueryJSON{Tables: []string{"A", "B", "C"}},
		Seed:  &seed,
	})
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", strings.NewReader(string(req)))
				if err != nil {
					errs <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- httpError(resp.StatusCode, body)
					return
				}
				var er EstimateResponse
				if err := json.Unmarshal(body, &er); err != nil {
					errs <- err
					return
				}
				if er.Est == nil || *er.Est <= 0 || math.IsNaN(*er.Est) || math.IsInf(*er.Est, 0) {
					errs <- httpError(resp.StatusCode, body)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 12; i++ {
			if _, err := srv.reg.Install("m", "mem", gens[i%2]); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func httpError(status int, body []byte) error {
	return fmt.Errorf("status %d: %s", status, body)
}
