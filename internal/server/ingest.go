package server

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"neurocard/internal/core"
	"neurocard/internal/ingest"
	"neurocard/internal/value"
)

// ingestState is the per-model ingest bookkeeping: the write-ahead journal,
// the batches journaled but not yet absorbed into a checkpointed model
// generation, and the staleness/refresh counters /metrics exposes. One state
// per model NAME (not per entry), so counters survive hot swaps the same way
// the registry's retired totals do.
type ingestState struct {
	mu      sync.Mutex // guards j and pending
	j       *ingest.Journal
	pending []*ingest.RowBatch // acked batches not yet absorbed by a refresh

	rowsAcked        atomic.Uint64 // lifetime acknowledged rows (incl. replayed)
	pendingRows      atomic.Int64  // rows behind the serving checkpoint
	firstPendingUnix atomic.Int64  // unix nanos of the oldest unabsorbed ack; 0 = none

	refreshMu         sync.Mutex   // serializes refreshes for this model
	refreshes         atomic.Int64 // completed refresh cycles
	refreshFailures   atomic.Int64 // refresh cycles that failed before hot swap
	checkpointSkips   atomic.Int64 // refreshes that swapped in memory but could not checkpoint
	lastRefreshUnix   atomic.Int64 // unix nanos of the last successful refresh
	lastRefreshMicros atomic.Int64 // wall time of the last successful refresh
	replayQuarantined atomic.Int64 // journal files quarantined during replay
}

// errIngestDisabled answers ingest requests when no journal is configured:
// without a durable append there is nothing to acknowledge.
var errIngestDisabled = errors.New("server: ingest disabled (no journal directory configured)")

// EnableIngest opens (or creates) the named model's row journal under the
// server's journal directory, replays it, and folds the replayed rows into
// the model's serving state. Must be called after the model is loaded and
// BEFORE the server receives traffic: replay mutates the live estimator's
// data snapshot in place, which is only safe while no requests hold it.
// Returns the number of rows recovered from the journal.
func (s *Server) EnableIngest(name string) (recovered uint64, err error) {
	if s.cfg.JournalDir == "" {
		return 0, errIngestDisabled
	}
	entry, err := s.reg.Get(name)
	if err != nil {
		return 0, err
	}
	dir := filepath.Join(s.cfg.JournalDir, entry.Name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("server: ingest journal dir: %w", err)
	}
	j, res, err := ingest.Open(dir, ingest.Options{})
	if err != nil {
		return 0, fmt.Errorf("server: open ingest journal for %q: %w", entry.Name, err)
	}
	st := &ingestState{j: j, pending: res.Batches}
	st.rowsAcked.Store(res.Rows)
	st.pendingRows.Store(int64(res.Rows))
	st.replayQuarantined.Store(int64(len(res.Quarantined)))
	if len(res.Batches) > 0 {
		// Replayed rows were acknowledged before the crash/restart: they must
		// be visible to estimates now, not after the next refresh. The exact
		// ack times are not journaled, so staleness age restarts here.
		st.firstPendingUnix.Store(time.Now().UnixNano())
		merged, err := ingest.Apply(entry.Est.Schema(), res.Batches)
		if err != nil {
			j.Close()
			return 0, fmt.Errorf("server: replay ingest journal for %q: %w", entry.Name, err)
		}
		if err := entry.Est.UpdateDataAppend(merged); err != nil {
			j.Close()
			return 0, fmt.Errorf("server: replay ingest journal for %q: %w", entry.Name, err)
		}
	}
	if prev, loaded := s.ingests.Swap(entry.Name, st); loaded {
		prev.(*ingestState).j.Close()
	}
	return res.Rows, nil
}

// ingestStateFor returns the model's ingest state, or nil when ingest was
// never enabled for it.
func (s *Server) ingestStateFor(name string) *ingestState {
	v, ok := s.ingests.Load(name)
	if !ok {
		return nil
	}
	return v.(*ingestState)
}

// closeIngest closes every journal (Server.Close).
func (s *Server) closeIngest() {
	s.ingests.Range(func(_, v any) bool {
		st := v.(*ingestState)
		st.mu.Lock()
		st.j.Close()
		st.mu.Unlock()
		return true
	})
}

// ---- wire types ----

// IngestTableJSON carries appended rows for one table. Row values follow the
// filter-literal convention: JSON numbers must be exact integers, strings are
// dictionary strings, null is NULL. Values must already exist in the model's
// column dictionaries — ingest never grows the value domain (DESIGN.md §2.8).
type IngestTableJSON struct {
	Table   string   `json:"table"`
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
}

// IngestRequest appends rows to one or more tables as a single atomic,
// durable unit: the whole batch is journaled (fsync) before the ack, or none
// of it is.
type IngestRequest struct {
	Tables []IngestTableJSON `json:"tables"`
}

// IngestResponse acknowledges a durably journaled batch. Seq is the batch's
// journal sequence number; Durable is always true on a 2xx — the handler
// never acks before fsync.
type IngestResponse struct {
	Model   string `json:"model"`
	Seq     uint64 `json:"seq"`
	Rows    int    `json:"rows"`
	Durable bool   `json:"durable"`
	// Pending reports the model's staleness right after this ack: rows
	// journaled but not yet absorbed into a refreshed model generation.
	Pending int64 `json:"pending"`
}

// handleIngest is POST /v1/models/{name}/ingest: decode (JSON or binary),
// validate against the frozen dictionaries, append to the write-ahead
// journal, fsync, and only then acknowledge. A failed append answers 503 and
// the batch is NOT acknowledged — the client must retry; replay after a crash
// recovers exactly the acknowledged prefix.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if lg := s.reg.GetLogical(name); lg != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("server: logical model %q cannot ingest; append to its shard models", name))
		return
	}
	entry, err := s.reg.Get(name)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	st := s.ingestStateFor(entry.Name)
	if st == nil {
		s.fail(w, http.StatusServiceUnavailable, errIngestDisabled)
		return
	}

	var batch *ingest.RowBatch
	if strings.HasPrefix(r.Header.Get("Content-Type"), ContentTypeBinary) {
		body, err := s.readBinBody(w, r, nil)
		if err == nil {
			batch, err = ingest.DecodeBatch(body)
		}
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
	} else {
		var req IngestRequest
		if err := s.decodeBody(w, r, &req); err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		batch, err = decodeIngestRequest(req)
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
	}
	nRows := batch.NumRows()
	if nRows == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("server: ingest batch has no rows"))
		return
	}
	// Validation happens before journaling: a rejected batch must leave no
	// trace, so replay never has to re-validate against drifted state.
	if err := ingest.Validate(entry.Est.Schema(), batch); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	st.mu.Lock()
	seq, err := st.j.Append(batch)
	if err == nil {
		st.pending = append(st.pending, batch)
	}
	st.mu.Unlock()
	if err != nil {
		// Not acknowledged: the rows are not durable (a torn write was rolled
		// back, or the journal is broken). 503 tells the client to retry.
		s.metrics.ingestFailedTotal.Add(1)
		s.fail(w, http.StatusServiceUnavailable, fmt.Errorf("server: ingest not acknowledged: %w", err))
		return
	}
	st.rowsAcked.Add(uint64(nRows))
	if st.pendingRows.Add(int64(nRows)) == int64(nRows) {
		st.firstPendingUnix.Store(time.Now().UnixNano())
	}
	s.metrics.ingestRowsTotal.Add(int64(nRows))
	s.reply(w, http.StatusOK, IngestResponse{
		Model:   entry.Name,
		Seq:     seq,
		Rows:    nRows,
		Durable: true,
		Pending: st.pendingRows.Load(),
	})
}

// decodeIngestRequest converts the JSON wire form into a row batch.
func decodeIngestRequest(req IngestRequest) (*ingest.RowBatch, error) {
	if len(req.Tables) == 0 {
		return nil, errors.New("server: ingest request has no tables")
	}
	b := &ingest.RowBatch{Tables: make([]ingest.TableRows, len(req.Tables))}
	for i, tj := range req.Tables {
		tr := ingest.TableRows{Table: tj.Table, Columns: tj.Columns, Rows: make([][]value.Value, len(tj.Rows))}
		for ri, row := range tj.Rows {
			vals := make([]value.Value, len(row))
			for ci, raw := range row {
				v, err := decodeIngestValue(raw)
				if err != nil {
					return nil, fmt.Errorf("server: ingest table %q row %d col %d: %w", tj.Table, ri, ci, err)
				}
				vals[ci] = v
			}
			tr.Rows[ri] = vals
		}
		b.Tables[i] = tr
	}
	return b, nil
}

func decodeIngestValue(raw any) (value.Value, error) {
	switch v := raw.(type) {
	case nil:
		return value.Null, nil
	case string:
		return value.Str(v), nil
	case float64:
		if v != math.Trunc(v) || math.Abs(v) > 1<<53 {
			return value.Value{}, fmt.Errorf("value %v is not an exact integer", v)
		}
		return value.Int(int64(v)), nil
	default:
		return value.Value{}, fmt.Errorf("value %v (%T) must be an integer, string, or null", raw, raw)
	}
}

// ---- refresh ----

// RefreshResult summarizes one refresh cycle.
type RefreshResult struct {
	Refreshed     bool   // a new generation was hot-swapped in
	Rows          uint64 // journaled rows absorbed
	Checkpointed  bool   // the new generation was durably checkpointed (journal pruned)
	CheckpointErr string // why checkpointing was skipped, when it was
}

// RefreshModel folds the model's journaled rows into a new model generation:
// clone the serving checkpoint, apply the pending batches (incremental
// join-count maintenance), fine-tune on tuples samples, checkpoint the result
// crash-safely, hot-swap it through the registry, and prune fully absorbed
// journal segments. The serving estimator is never mutated — requests in
// flight keep the generation they hold.
//
// A refresh that cannot checkpoint (appends grew a fanout domain past what
// the trained model was shaped for) still hot-swaps the fine-tuned estimator
// — estimates stay valid via the encoder's fanout clamp — but keeps the
// journal intact, so the rows are replayed again on restart; the skip is
// reported in the result and counted on /metrics.
func (s *Server) RefreshModel(name string, tuples int) (RefreshResult, error) {
	entry, err := s.reg.Get(name)
	if err != nil {
		return RefreshResult{}, err
	}
	st := s.ingestStateFor(entry.Name)
	if st == nil {
		return RefreshResult{}, errIngestDisabled
	}
	st.refreshMu.Lock()
	defer st.refreshMu.Unlock()

	st.mu.Lock()
	pending := append([]*ingest.RowBatch(nil), st.pending...)
	st.mu.Unlock()
	if len(pending) == 0 {
		return RefreshResult{}, nil
	}
	absorbSeq := pending[len(pending)-1].Seq
	var absorbRows uint64
	for _, b := range pending {
		absorbRows += uint64(b.NumRows())
	}

	start := time.Now()
	fail := func(err error) (RefreshResult, error) {
		st.refreshFailures.Add(1)
		return RefreshResult{}, err
	}
	f, err := os.Open(entry.Path)
	if err != nil {
		return fail(fmt.Errorf("server: refresh %q: open checkpoint: %w", entry.Name, err))
	}
	clone, err := core.LoadCheckpoint(f)
	f.Close()
	if err != nil {
		return fail(fmt.Errorf("server: refresh %q: %w", entry.Name, err))
	}
	merged, err := ingest.Apply(clone.Schema(), pending)
	if err != nil {
		return fail(fmt.Errorf("server: refresh %q: apply journal: %w", entry.Name, err))
	}
	if err := clone.UpdateDataAppend(merged); err != nil {
		return fail(fmt.Errorf("server: refresh %q: %w", entry.Name, err))
	}
	if tuples > 0 {
		if _, err := clone.Train(tuples); err != nil {
			return fail(fmt.Errorf("server: refresh %q: fine-tune: %w", entry.Name, err))
		}
	}

	res := RefreshResult{Refreshed: true, Rows: absorbRows}
	if err := clone.RebaseAppended(); err != nil {
		res.CheckpointErr = err.Error()
	} else if err := core.WriteCheckpointFile(clone, entry.Path); err != nil {
		res.CheckpointErr = err.Error()
	} else {
		res.Checkpointed = true
	}

	if _, err := s.reg.Install(entry.Name, entry.Path, clone); err != nil {
		return fail(fmt.Errorf("server: refresh %q: %w", entry.Name, err))
	}

	if res.Checkpointed {
		st.mu.Lock()
		// Drop absorbed batches; anything appended during the refresh stays.
		// A non-checkpointed refresh keeps pending intact: the next refresh
		// clones the OLD checkpoint, so it must re-apply every batch, and
		// restart must still be able to replay them. Staleness therefore keeps
		// reporting those rows as behind — behind the durable checkpoint, which
		// they are — even though the hot-swapped estimator already serves them.
		kept := st.pending[:0]
		for _, b := range st.pending {
			if b.Seq > absorbSeq {
				kept = append(kept, b)
			}
		}
		st.pending = kept
		var keptRows int64
		for _, b := range kept {
			keptRows += int64(b.NumRows())
		}
		st.pendingRows.Store(keptRows)
		if keptRows == 0 {
			st.firstPendingUnix.Store(0)
		} else {
			st.firstPendingUnix.Store(start.UnixNano())
		}
		// The checkpoint now durably embeds every row up to absorbSeq: record
		// the watermark so a restart never double-applies them, and let the
		// journal prune fully covered segments.
		if err := st.j.MarkAbsorbed(absorbSeq); err != nil {
			res.CheckpointErr = fmt.Sprintf("mark absorbed: %v", err)
		}
		st.mu.Unlock()
	}

	if !res.Checkpointed {
		st.checkpointSkips.Add(1)
	}
	st.refreshes.Add(1)
	st.lastRefreshUnix.Store(time.Now().UnixNano())
	st.lastRefreshMicros.Store(time.Since(start).Microseconds())
	s.metrics.refreshTotal.Add(1)
	return res, nil
}

// RefreshStale runs one refresh pass over every ingest-enabled model that has
// pending journaled rows — the daemon's background loop body. Failures are
// collected, not fatal: one broken model must not starve the others' refresh.
func (s *Server) RefreshStale(tuples int) error {
	var names []string
	s.ingests.Range(func(k, v any) bool {
		if v.(*ingestState).pendingRows.Load() > 0 {
			names = append(names, k.(string))
		}
		return true
	})
	var errs []error
	for _, name := range names {
		if _, err := s.RefreshModel(name, tuples); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// ---- staleness ----

// ingestStat is one model's ingest/staleness snapshot for /metrics.
type ingestStat struct {
	model             string
	rowsAcked         uint64
	pendingRows       int64
	secondsBehind     float64
	journalRows       uint64
	journalSegments   int
	journalBytes      int64
	refreshes         int64
	refreshFailures   int64
	checkpointSkips   int64
	lastRefreshSecs   float64 // wall time of the last refresh; 0 = never
	replayQuarantined int64
}

// ingestStats samples every ingest-enabled model.
func (s *Server) ingestStats() []ingestStat {
	var out []ingestStat
	now := time.Now()
	s.ingests.Range(func(k, v any) bool {
		st := v.(*ingestState)
		st.mu.Lock()
		js := st.j.Stats()
		st.mu.Unlock()
		is := ingestStat{
			model:             k.(string),
			rowsAcked:         st.rowsAcked.Load(),
			pendingRows:       st.pendingRows.Load(),
			journalRows:       js.Rows,
			journalSegments:   js.Segments,
			journalBytes:      js.Bytes,
			refreshes:         st.refreshes.Load(),
			refreshFailures:   st.refreshFailures.Load(),
			checkpointSkips:   st.checkpointSkips.Load(),
			lastRefreshSecs:   float64(st.lastRefreshMicros.Load()) / 1e6,
			replayQuarantined: st.replayQuarantined.Load(),
		}
		if first := st.firstPendingUnix.Load(); first > 0 {
			is.secondsBehind = now.Sub(time.Unix(0, first)).Seconds()
		}
		out = append(out, is)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].model < out[j].model })
	return out
}

// staleModels lists ingest-enabled models whose oldest unabsorbed row is
// older than the configured maximum staleness (0 = staleness never degrades
// readiness).
func (s *Server) staleModels() []string {
	if s.cfg.MaxStaleness <= 0 {
		return nil
	}
	var stale []string
	now := time.Now()
	s.ingests.Range(func(k, v any) bool {
		st := v.(*ingestState)
		if first := st.firstPendingUnix.Load(); first > 0 && now.Sub(time.Unix(0, first)) > s.cfg.MaxStaleness {
			stale = append(stale, k.(string))
		}
		return true
	})
	sort.Strings(stale)
	return stale
}
