package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"neurocard/internal/ingest"
	"neurocard/internal/server"
	"neurocard/internal/value"
)

// serveIngestTest stands up a server with ingest enabled: a journal root and a
// (deliberately tiny) staleness bound so tests can watch /readyz degrade.
func serveIngestTest(t *testing.T, modelsDir, journalDir string, maxStaleness time.Duration) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := server.New(server.Config{
		ModelsDir:    modelsDir,
		Workers:      2,
		JournalDir:   journalDir,
		MaxStaleness: maxStaleness,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func ingestJSON(t *testing.T, ts *httptest.Server, model string, req server.IngestRequest) (*http.Response, server.IngestResponse) {
	t.Helper()
	resp, body := post(t, ts.URL+"/v1/models/"+model+"/ingest", req)
	var ir server.IngestResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &ir); err != nil {
			t.Fatalf("ingest response %s: %v", body, err)
		}
	}
	return resp, ir
}

// rowsC builds the canonical safe append for figure4: C rows with an existing
// dictionary value.
func rowsC(y int64, n int) server.IngestRequest {
	rows := make([][]any, n)
	for i := range rows {
		rows[i] = []any{float64(y)}
	}
	return server.IngestRequest{Tables: []server.IngestTableJSON{{
		Table: "C", Columns: []string{"y"}, Rows: rows,
	}}}
}

func TestServeIngestLifecycle(t *testing.T) {
	models, journals := t.TempDir(), t.TempDir()
	srv, ts := serveIngestTest(t, models, journals, time.Millisecond)
	writeCheckpoint(t, models, "fig4", buildEstimator(t, 7, 256))
	writeCheckpoint(t, models, "aux", buildEstimator(t, 8, 64))
	for _, name := range []string{"fig4", "aux"} {
		if resp, body := post(t, ts.URL+"/v1/models/"+name+"/load", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("load %s: %d %s", name, resp.StatusCode, body)
		}
	}
	recovered, err := srv.EnableIngest("fig4")
	if err != nil || recovered != 0 {
		t.Fatalf("EnableIngest on fresh journal: recovered %d, err %v", recovered, err)
	}

	entry, err := srv.Registry().Get("fig4")
	if err != nil {
		t.Fatal(err)
	}
	baseJoinSize := entry.Est.JoinSize()

	// Rejections must leave no journal trace and never acknowledge.
	for _, tc := range []struct {
		name  string
		url   string
		body  any
		wantC int
	}{
		{"unknown-model", "/v1/models/nope/ingest", rowsC(4, 1), http.StatusNotFound},
		{"ingest-not-enabled", "/v1/models/aux/ingest", rowsC(4, 1), http.StatusServiceUnavailable},
		{"no-tables", "/v1/models/fig4/ingest", server.IngestRequest{}, http.StatusBadRequest},
		{"no-rows", "/v1/models/fig4/ingest", server.IngestRequest{
			Tables: []server.IngestTableJSON{{Table: "C", Columns: []string{"y"}}}}, http.StatusBadRequest},
		{"unknown-table", "/v1/models/fig4/ingest", server.IngestRequest{
			Tables: []server.IngestTableJSON{{Table: "D", Columns: []string{"y"}, Rows: [][]any{{float64(4)}}}}}, http.StatusBadRequest},
		{"value-outside-dictionary", "/v1/models/fig4/ingest", rowsC(99, 1), http.StatusBadRequest},
		{"non-integer-number", "/v1/models/fig4/ingest", server.IngestRequest{
			Tables: []server.IngestTableJSON{{Table: "C", Columns: []string{"y"}, Rows: [][]any{{1.5}}}}}, http.StatusBadRequest},
	} {
		resp, body := post(t, ts.URL+tc.url, tc.body)
		if resp.StatusCode != tc.wantC {
			t.Fatalf("%s: status %d (want %d): %s", tc.name, resp.StatusCode, tc.wantC, body)
		}
	}

	// JSON ingest: acked only after the durable append, with the journal seq.
	resp, ir := ingestJSON(t, ts, "fig4", rowsC(4, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d", resp.StatusCode)
	}
	if ir.Seq != 1 || ir.Rows != 1 || !ir.Durable || ir.Pending != 1 {
		t.Fatalf("ingest response %+v", ir)
	}

	// Binary ingest shares the journal and sequence space. (A root append with
	// existing dictionary values keeps every fanout within its trained domain.)
	bin := ingest.EncodeBatch(nil, &ingest.RowBatch{Tables: []ingest.TableRows{{
		Table: "A", Columns: []string{"x", "year"},
		Rows: [][]value.Value{{value.Int(1), value.Int(1990)}},
	}}})
	binResp, err := http.Post(ts.URL+"/v1/models/fig4/ingest", server.ContentTypeBinary, bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	var ir2 server.IngestResponse
	if err := json.NewDecoder(binResp.Body).Decode(&ir2); err != nil {
		t.Fatal(err)
	}
	binResp.Body.Close()
	if binResp.StatusCode != http.StatusOK || ir2.Seq != 2 || ir2.Pending != 2 {
		t.Fatalf("binary ingest: %d %+v", binResp.StatusCode, ir2)
	}

	// With rows pending past MaxStaleness, readiness degrades — but stays 200:
	// the model still serves (degraded-but-serving, like an open breaker).
	time.Sleep(5 * time.Millisecond)
	resp, body := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz while stale: %d %s", resp.StatusCode, body)
	}
	var ready struct {
		Degraded bool     `json:"degraded"`
		Stale    []string `json:"stale"`
		Status   string   `json:"status"`
	}
	if err := json.Unmarshal(body, &ready); err != nil {
		t.Fatal(err)
	}
	if !ready.Degraded || len(ready.Stale) != 1 || ready.Stale[0] != "fig4" || !strings.Contains(ready.Status, "stale") {
		t.Fatalf("readyz while stale: %s", body)
	}

	// Refresh: absorb both batches into generation 2, durably checkpointed.
	res, err := srv.RefreshModel("fig4", 64)
	if err != nil {
		t.Fatalf("refresh: %v", err)
	}
	if !res.Refreshed || res.Rows != 2 || !res.Checkpointed || res.CheckpointErr != "" {
		t.Fatalf("refresh result %+v", res)
	}
	entry2, err := srv.Registry().Get("fig4")
	if err != nil {
		t.Fatal(err)
	}
	if entry2.Gen != 2 {
		t.Fatalf("refresh did not hot-swap: gen %d", entry2.Gen)
	}
	if got := entry2.Est.JoinSize(); got <= baseJoinSize {
		t.Fatalf("join size after absorbing appends: %g, want > %g", got, baseJoinSize)
	}

	// Absorbed rows clear staleness.
	resp, body = get(t, ts.URL+"/readyz")
	ready.Degraded, ready.Stale = false, nil
	if err := json.Unmarshal(body, &ready); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || ready.Degraded || len(ready.Stale) != 0 {
		t.Fatalf("readyz after refresh: %d %s", resp.StatusCode, body)
	}

	// The refreshed model keeps estimating.
	resp, body = post(t, ts.URL+"/v1/estimate", server.EstimateRequest{
		Query: &server.QueryJSON{Tables: []string{"A", "B", "C"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate after refresh: %d %s", resp.StatusCode, body)
	}

	// Pending restarts from zero for the next batch.
	if _, ir := ingestJSON(t, ts, "fig4", rowsC(4, 1)); ir.Seq != 3 || ir.Pending != 1 {
		t.Fatalf("ingest after refresh: %+v", ir)
	}

	_, body = get(t, ts.URL+"/metrics")
	for _, want := range []string{
		`neurocard_ingest_rows_acked_total 3`,
		`neurocard_ingest_model_rows_acked_total{model="fig4"} 3`,
		`neurocard_ingest_staleness_rows{model="fig4"} 1`,
		`neurocard_refresh_model_total{model="fig4"} 1`,
		`neurocard_refresh_checkpoint_skips_total{model="fig4"} 0`,
		`neurocard_data_generation{model="fig4"}`,
		`neurocard_plan_cache_invalidations_total{model="fig4"}`,
		`neurocard_ingest_journal_quarantined_total{model="fig4"} 0`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestServeIngestCrashRecovery drives the full durability story across two
// restarts: a checkpointed refresh must not replay (the absorbed watermark),
// and rows acked after the last refresh must replay exactly once.
func TestServeIngestCrashRecovery(t *testing.T) {
	models, journals := t.TempDir(), t.TempDir()

	// Server A: ingest one row, refresh (checkpointed), then "crash" — the
	// journal was fsynced per append, so no graceful close is needed.
	srvA, tsA := serveIngestTest(t, models, journals, 0)
	writeCheckpoint(t, models, "fig4", buildEstimator(t, 7, 256))
	post(t, tsA.URL+"/v1/models/fig4/load", nil)
	if _, err := srvA.EnableIngest("fig4"); err != nil {
		t.Fatal(err)
	}
	if resp, ir := ingestJSON(t, tsA, "fig4", rowsC(4, 1)); resp.StatusCode != http.StatusOK || ir.Seq != 1 {
		t.Fatalf("ingest on A: %d %+v", resp.StatusCode, ir)
	}
	res, err := srvA.RefreshModel("fig4", 32)
	if err != nil || !res.Checkpointed {
		t.Fatalf("refresh on A: %+v, %v", res, err)
	}
	entryA, _ := srvA.Registry().Get("fig4")
	refreshedJoinSize := entryA.Est.JoinSize()
	srvA.Close()
	tsA.Close()

	// Server B: the checkpoint embeds the absorbed row; the watermark keeps
	// replay from applying it a second time.
	srvB, tsB := serveIngestTest(t, models, journals, 0)
	post(t, tsB.URL+"/v1/models/fig4/load", nil)
	recovered, err := srvB.EnableIngest("fig4")
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 0 {
		t.Fatalf("recovered %d rows despite watermark (double-apply)", recovered)
	}
	entryB, _ := srvB.Registry().Get("fig4")
	if got := entryB.Est.JoinSize(); got != refreshedJoinSize {
		t.Fatalf("join size after restart %g, want checkpointed %g", got, refreshedJoinSize)
	}

	// Ack one more row on B, then crash WITHOUT refreshing: no Close, no
	// checkpoint — exactly the torn-down state a kill -9 leaves.
	if resp, ir := ingestJSON(t, tsB, "fig4", rowsC(4, 1)); resp.StatusCode != http.StatusOK || ir.Seq != 2 {
		t.Fatalf("ingest on B: %d %+v", resp.StatusCode, ir)
	}
	tsB.Close()

	// Server C: the unabsorbed ack must replay — acknowledged rows survive.
	srvC, tsC := serveIngestTest(t, models, journals, 0)
	defer srvC.Close()
	post(t, tsC.URL+"/v1/models/fig4/load", nil)
	recovered, err = srvC.EnableIngest("fig4")
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 1 {
		t.Fatalf("recovered %d rows, want exactly the 1 unabsorbed ack", recovered)
	}
	entryC, _ := srvC.Registry().Get("fig4")
	if got := entryC.Est.JoinSize(); got <= refreshedJoinSize {
		t.Fatalf("replayed row not folded in: join size %g, want > %g", got, refreshedJoinSize)
	}
	// The replayed row is pending again: the next refresh absorbs it.
	if res, err := srvC.RefreshModel("fig4", 0); err != nil || !res.Refreshed || res.Rows != 1 {
		t.Fatalf("refresh on C: %+v, %v", res, err)
	}
}

// TestServeIngestCheckpointSkip: appends that grow a fanout domain cannot be
// checkpointed under the trained model's shape. The refresh must still
// hot-swap (estimates stay valid via the encoder clamp) but keep the journal
// AND the pending set intact, so nothing is lost from later generations or
// restarts.
func TestServeIngestCheckpointSkip(t *testing.T) {
	models, journals := t.TempDir(), t.TempDir()
	srv, ts := serveIngestTest(t, models, journals, 0)
	writeCheckpoint(t, models, "fig4", buildEstimator(t, 7, 256))
	post(t, ts.URL+"/v1/models/fig4/load", nil)
	if _, err := srv.EnableIngest("fig4"); err != nil {
		t.Fatal(err)
	}

	// figure4 has two C rows with y=3 — a third grows C's fanout past the
	// encoder's domain, which a checkpoint cannot represent.
	if resp, _ := ingestJSON(t, ts, "fig4", rowsC(3, 1)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d", resp.StatusCode)
	}
	res, err := srv.RefreshModel("fig4", 32)
	if err != nil {
		t.Fatalf("refresh: %v", err)
	}
	if !res.Refreshed || res.Checkpointed || res.CheckpointErr == "" {
		t.Fatalf("refresh result %+v, want hot swap with checkpoint skip", res)
	}
	entry, _ := srv.Registry().Get("fig4")
	if entry.Gen != 2 {
		t.Fatalf("skip refresh did not hot-swap: gen %d", entry.Gen)
	}
	// Estimates keep working on the swapped generation.
	if resp, body := post(t, ts.URL+"/v1/estimate", server.EstimateRequest{
		Query: &server.QueryJSON{Tables: []string{"A", "B", "C"}},
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate after skip refresh: %d %s", resp.StatusCode, body)
	}
	// The un-checkpointed row still counts as pending: it is behind the
	// durable checkpoint even though the live estimator serves it.
	if _, ir := ingestJSON(t, ts, "fig4", rowsC(4, 1)); ir.Pending != 2 {
		t.Fatalf("pending after skip refresh: %+v", ir)
	}
	_, body := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(body), `neurocard_refresh_checkpoint_skips_total{model="fig4"} 1`) {
		t.Fatalf("checkpoint skip not counted:\n%s", body)
	}
	srv.Close()
	ts.Close()

	// Restart: with no durable checkpoint of the appends, BOTH rows replay.
	srv2, ts2 := serveIngestTest(t, models, journals, 0)
	defer srv2.Close()
	post(t, ts2.URL+"/v1/models/fig4/load", nil)
	recovered, err := srv2.EnableIngest("fig4")
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 2 {
		t.Fatalf("recovered %d rows, want 2 (nothing was checkpointed)", recovered)
	}
}
