package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"neurocard/internal/core"
	"neurocard/internal/query"
	"neurocard/internal/schema"
	"neurocard/internal/server"
	"neurocard/internal/table"
	"neurocard/internal/value"
)

// figure4 is the paper's running example with an extra content column, the
// same schema the core checkpoint tests use.
func figure4(t *testing.T) *schema.Schema {
	t.Helper()
	a := table.MustBuilder("A", []table.ColSpec{
		{Name: "x", Kind: value.KindInt},
		{Name: "year", Kind: value.KindInt},
	})
	a.MustAppend(value.Int(1), value.Int(1990))
	a.MustAppend(value.Int(2), value.Int(2000))
	a.MustAppend(value.Int(2), value.Null) // NULL year: exercised by IS NULL queries
	b := table.MustBuilder("B", []table.ColSpec{
		{Name: "x", Kind: value.KindInt}, {Name: "y", Kind: value.KindInt},
	})
	b.MustAppend(value.Int(1), value.Int(1))
	b.MustAppend(value.Int(2), value.Int(2))
	b.MustAppend(value.Int(2), value.Int(3))
	c := table.MustBuilder("C", []table.ColSpec{{Name: "y", Kind: value.KindInt}})
	c.MustAppend(value.Int(3))
	c.MustAppend(value.Int(3))
	c.MustAppend(value.Int(4))
	s, err := schema.New(
		[]*table.Table{a.MustBuild(), b.MustBuild(), c.MustBuild()},
		"A",
		[]schema.Edge{
			{LeftTable: "A", LeftCol: "x", RightTable: "B", RightCol: "x"},
			{LeftTable: "B", LeftCol: "y", RightTable: "C", RightCol: "y"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// buildEstimator trains a small estimator for serving tests.
func buildEstimator(t *testing.T, seed int64, tuples int) *core.Estimator {
	t.Helper()
	s := figure4(t)
	cfg := core.DefaultConfig()
	cfg.Model.Hidden = 24
	cfg.Model.EmbedDim = 6
	cfg.Model.Blocks = 1
	cfg.PSamples = 64
	cfg.BatchSize = 64
	cfg.Seed = seed
	cfg.ContentCols = map[string][]string{"A": {"x", "year"}, "B": {"x", "y"}, "C": {"y"}}
	est, err := core.Build(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Train(tuples); err != nil {
		t.Fatal(err)
	}
	return est
}

// writeCheckpoint saves an estimator under dir/<name>.ckpt.
func writeCheckpoint(t *testing.T, dir, name string, est *core.Estimator) string {
	t.Helper()
	path := filepath.Join(dir, name+".ckpt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := core.SaveCheckpoint(est, f); err != nil {
		t.Fatal(err)
	}
	return path
}

// serveTest stands up a server whose models dir is a fresh temp dir.
func serveTest(t *testing.T) (*server.Server, *httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	srv := server.New(server.Config{ModelsDir: dir, Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, dir
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func ptrInt(v int64) *int64 { return &v }

func TestServeEstimateRoundTrip(t *testing.T) {
	srv, ts, dir := serveTest(t)
	orig := buildEstimator(t, 7, 512)
	writeCheckpoint(t, dir, "fig4", orig)

	// Load via the HTTP API (conventional path resolution).
	resp, body := post(t, ts.URL+"/v1/models/fig4/load", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load: %d %s", resp.StatusCode, body)
	}
	var info server.ModelInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if !info.Default || info.Generation != 1 || info.Tables != 3 {
		t.Fatalf("load info = %+v", info)
	}
	if info.SamplesSeen == 0 {
		t.Fatalf("load response reports samples_seen 0 for a trained model: %+v", info)
	}
	if srv.Registry().Len() != 1 {
		t.Fatalf("registry has %d models", srv.Registry().Len())
	}

	// Seeded single estimate must equal the original estimator's result
	// through the same seeded path — the serving-side half of checkpoint
	// round-trip equivalence.
	seed := int64(1234)
	resp, body = post(t, ts.URL+"/v1/estimate", server.EstimateRequest{
		Query: &server.QueryJSON{Tables: []string{"A", "B", "C"},
			Filters: []server.FilterJSON{{Table: "A", Col: "year", Op: ">=", Int: ptrInt(1995)}}},
		Seed: &seed,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: %d %s", resp.StatusCode, body)
	}
	var er server.EstimateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Est == nil || er.Count != 1 {
		t.Fatalf("estimate response = %s", body)
	}
	want, err := orig.EstimateSeededIndexed(query.Query{
		Tables:  []string{"A", "B", "C"},
		Filters: []query.Filter{{Table: "A", Col: "year", Op: query.OpGe, Val: value.Int(1995)}},
	}, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(*er.Est-want) > 1e-9*math.Max(1, want) {
		t.Fatalf("served estimate %.17g, want %.17g", *er.Est, want)
	}
	if *er.Est <= 0 || math.IsInf(*er.Est, 0) || math.IsNaN(*er.Est) {
		t.Fatalf("served estimate %g is not finite positive", *er.Est)
	}
}

func TestServeBatchSeededDeterminism(t *testing.T) {
	_, ts, dir := serveTest(t)
	writeCheckpoint(t, dir, "fig4", buildEstimator(t, 7, 512))
	post(t, ts.URL+"/v1/models/fig4/load", nil)

	seed := int64(99)
	req := server.EstimateRequest{
		Queries: []server.QueryJSON{
			{Tables: []string{"A", "B", "C"}},
			{Tables: []string{"B"}},
			{Tables: []string{"B", "C"}},
			{Tables: []string{"A", "B"},
				Filters: []server.FilterJSON{{Table: "A", Col: "year", Op: "=", Int: ptrInt(2000)}}},
			{Tables: []string{"A"},
				Filters: []server.FilterJSON{{Table: "A", Col: "x", Op: "IN", Set: []any{float64(1), float64(2)}}}},
		},
		Seed:    &seed,
		Workers: 3,
	}
	var first []float64
	for trial := 0; trial < 3; trial++ {
		resp, body := post(t, ts.URL+"/v1/estimate", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch estimate: %d %s", resp.StatusCode, body)
		}
		var er server.EstimateResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if er.Count != len(req.Queries) || len(er.Ests) != len(req.Queries) {
			t.Fatalf("batch response = %s", body)
		}
		for i, est := range er.Ests {
			if est <= 0 || math.IsNaN(est) || math.IsInf(est, 0) {
				t.Fatalf("batch estimate %d = %g", i, est)
			}
		}
		if trial == 0 {
			first = er.Ests
			continue
		}
		for i := range first {
			if er.Ests[i] != first[i] {
				t.Fatalf("trial %d query %d: %g != %g (seeded batches must be deterministic)",
					trial, i, er.Ests[i], first[i])
			}
		}
	}
}

func TestServeHotSwapAndModels(t *testing.T) {
	_, ts, dir := serveTest(t)
	writeCheckpoint(t, dir, "m", buildEstimator(t, 7, 512))
	resp, body := post(t, ts.URL+"/v1/models/m/load", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load 1: %d %s", resp.StatusCode, body)
	}

	// Swap in a differently-trained model under the same name.
	writeCheckpoint(t, dir, "m", buildEstimator(t, 11, 1024))
	resp, body = post(t, ts.URL+"/v1/models/m/load", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load 2: %d %s", resp.StatusCode, body)
	}
	var info server.ModelInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Generation != 2 || !info.Default {
		t.Fatalf("after swap: %+v", info)
	}

	// Second model under another name, via explicit path.
	other := writeCheckpoint(t, dir, "other-src", buildEstimator(t, 3, 256))
	resp, body = post(t, ts.URL+"/v1/models/aux/load", server.LoadRequest{Path: other})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load aux: %d %s", resp.StatusCode, body)
	}

	resp, body = get(t, ts.URL+"/v1/models")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("models: %d", resp.StatusCode)
	}
	var list server.ModelsResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Models) != 2 {
		t.Fatalf("models = %s", body)
	}
	byName := map[string]server.ModelInfo{}
	for _, mi := range list.Models {
		byName[mi.Name] = mi
	}
	if !byName["m"].Default || byName["aux"].Default {
		t.Fatalf("default flags wrong: %s", body)
	}
	if byName["m"].Generation != 2 || byName["aux"].Generation != 1 {
		t.Fatalf("generations wrong: %s", body)
	}

	// Estimate against the non-default model by name.
	resp, body = post(t, ts.URL+"/v1/estimate", server.EstimateRequest{
		Model: "aux",
		Query: &server.QueryJSON{Tables: []string{"B"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate aux: %d %s", resp.StatusCode, body)
	}
}

func TestServeErrors(t *testing.T) {
	_, ts, dir := serveTest(t)

	// No model loaded yet.
	resp, _ := post(t, ts.URL+"/v1/estimate", server.EstimateRequest{
		Query: &server.QueryJSON{Tables: []string{"A"}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no-model estimate: %d", resp.StatusCode)
	}

	writeCheckpoint(t, dir, "m", buildEstimator(t, 7, 256))
	post(t, ts.URL+"/v1/models/m/load", nil)

	cases := []struct {
		name string
		body any
		want int
	}{
		{"neither-query-nor-queries", server.EstimateRequest{}, http.StatusBadRequest},
		{"both-query-and-queries", server.EstimateRequest{
			Query:   &server.QueryJSON{Tables: []string{"A"}},
			Queries: []server.QueryJSON{{Tables: []string{"A"}}}}, http.StatusBadRequest},
		{"unknown-model", server.EstimateRequest{Model: "nope",
			Query: &server.QueryJSON{Tables: []string{"A"}}}, http.StatusNotFound},
		{"unknown-op", server.EstimateRequest{
			Query: &server.QueryJSON{Tables: []string{"A"},
				Filters: []server.FilterJSON{{Table: "A", Col: "year", Op: "LIKE", Int: ptrInt(1)}}}},
			http.StatusBadRequest},
		{"missing-value", server.EstimateRequest{
			Query: &server.QueryJSON{Tables: []string{"A"},
				Filters: []server.FilterJSON{{Table: "A", Col: "year", Op: "="}}}},
			http.StatusBadRequest},
		{"is-null-with-value", server.EstimateRequest{
			Query: &server.QueryJSON{Tables: []string{"A"},
				Filters: []server.FilterJSON{{Table: "A", Col: "year", Op: "IS NULL", Int: ptrInt(1)}}}},
			http.StatusBadRequest},
		{"between-missing-hi", server.EstimateRequest{
			Query: &server.QueryJSON{Tables: []string{"A"},
				Filters: []server.FilterJSON{{Table: "A", Col: "year", Op: "BETWEEN", Int: ptrInt(1990)}}}},
			http.StatusBadRequest},
		{"nested-or", server.EstimateRequest{
			Query: &server.QueryJSON{Tables: []string{"A"},
				Filters: []server.FilterJSON{{Table: "A", Col: "year", Op: "=", Int: ptrInt(1990),
					Or: []server.FilterJSON{{Op: "=", Int: ptrInt(2000),
						Or: []server.FilterJSON{{Op: "IS NULL"}}}}}}}},
			http.StatusBadRequest},
		{"or-cross-column", server.EstimateRequest{
			Query: &server.QueryJSON{Tables: []string{"A"},
				Filters: []server.FilterJSON{{Table: "A", Col: "year", Op: "=", Int: ptrInt(1990),
					Or: []server.FilterJSON{{Col: "x", Op: "=", Int: ptrInt(1)}}}}}},
			http.StatusBadRequest},
		{"disconnected-join", server.EstimateRequest{
			Query: &server.QueryJSON{Tables: []string{"A", "C"}}}, http.StatusBadRequest},
		{"unknown-table", server.EstimateRequest{
			Query: &server.QueryJSON{Tables: []string{"Z"}}}, http.StatusBadRequest},
		{"unmodeled-filter-column", server.EstimateRequest{
			Query: &server.QueryJSON{Tables: []string{"A"},
				Filters: []server.FilterJSON{{Table: "A", Col: "nope", Op: "=", Int: ptrInt(1)}}}},
			http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := post(t, ts.URL+"/v1/estimate", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d (want %d): %s", tc.name, resp.StatusCode, tc.want, body)
		}
		var er struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q", tc.name, body)
		}
	}

	// Unknown JSON fields are rejected (catches client drift early).
	resp, _ = post(t, ts.URL+"/v1/estimate", map[string]any{
		"query": map[string]any{"tables": []string{"A"}}, "smaples": 12})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %d", resp.StatusCode)
	}

	// Path traversal in model names is rejected.
	resp, _ = post(t, ts.URL+"/v1/models/..%2Fevil/load", nil)
	if resp.StatusCode == http.StatusOK {
		t.Error("traversal model name accepted")
	}

	// Missing checkpoint file.
	resp, _ = post(t, ts.URL+"/v1/models/ghost/load", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing checkpoint: %d", resp.StatusCode)
	}
}

func TestServeHealthzAndMetrics(t *testing.T) {
	_, ts, dir := serveTest(t)
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var h struct {
		Status string `json:"status"`
		Ready  bool   `json:"ready"`
		Models int    `json:"models"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Ready || h.Models != 0 {
		t.Fatalf("empty healthz = %s", body)
	}

	writeCheckpoint(t, dir, "m", buildEstimator(t, 7, 256))
	post(t, ts.URL+"/v1/models/m/load", nil)
	for i := 0; i < 3; i++ {
		post(t, ts.URL+"/v1/estimate", server.EstimateRequest{
			Query: &server.QueryJSON{Tables: []string{"A", "B"}}})
	}
	post(t, ts.URL+"/v1/estimate", server.EstimateRequest{}) // one error

	_, body = get(t, ts.URL+"/healthz")
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if !h.Ready || h.Models != 1 {
		t.Fatalf("loaded healthz = %s", body)
	}

	_, body = get(t, ts.URL+"/metrics")
	text := string(body)
	for _, want := range []string{
		"neurocard_estimate_queries_total 3",
		"neurocard_estimate_requests_total 4",
		"neurocard_estimate_errors_total 1",
		"neurocard_model_loads_total 1",
		// All four requests — including the errored one — are observed: the
		// latency histogram must see the slow error tail.
		"neurocard_estimate_latency_seconds_count 4",
		// Latency summary: the SLO-facing quantile view of the same samples.
		`neurocard_request_latency_seconds{quantile="0.5"}`,
		`neurocard_request_latency_seconds{quantile="0.95"}`,
		`neurocard_request_latency_seconds{quantile="0.99"}`,
		"neurocard_request_latency_seconds_count 4",
		// SLO gauges: observed p99, configured target, and the breach flag.
		"neurocard_slo_p99_latency_seconds",
		"neurocard_slo_p99_target_seconds 0.025",
		"neurocard_slo_p99_breached",
		// Coalescer instruments: three single requests = three fused flushes
		// of batch size 1 through the default model's fuser.
		`neurocard_fused_batch_size_bucket{le="1"} 3`,
		"neurocard_fused_batch_size_count 3",
		"neurocard_coalesce_queue_depth_bucket",
		"neurocard_coalesce_window_seconds_bucket",
		"neurocard_coalesce_rejected_total 0",
		`neurocard_coalesce_queue_depth_current{model=""} 0`,
		`neurocard_coalesce_window_current_seconds{model=""}`,
		"neurocard_binary_requests_total 0",
		`neurocard_sessions_free{model="m"}`,
		`neurocard_sessions_in_use{model="m"} 0`,
		"neurocard_inflight_requests 0",
		// Three estimates of one query shape: first compiles, rest hit.
		`neurocard_plan_cache_hits_total{model="m"} 2`,
		`neurocard_plan_cache_misses_total{model="m"} 1`,
		`neurocard_plan_cache_evictions_total{model="m"} 0`,
		`neurocard_plan_cache_size{model="m"} 1`,
		`neurocard_plan_cache_capacity{model="m"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// richQuery is a disjunctive, null-aware query exercising every new wire op.
func richQuery() query.Query {
	return query.Query{
		Tables: []string{"A", "B"},
		Filters: []query.Filter{
			{Table: "A", Col: "year", Op: query.OpGe, Val: value.Int(1995),
				Or: []query.Filter{{Table: "A", Col: "year", Op: query.OpIsNull}}},
			{Table: "B", Col: "y", Op: query.OpNotIn, Set: []value.Value{value.Int(2)}},
			{Table: "A", Col: "x", Op: query.OpBetween, Val: value.Int(1), Hi: value.Int(2)},
			{Table: "B", Col: "x", Op: query.OpNeq, Val: value.Int(99)},
		},
	}
}

// TestWireRoundTripNewOps checks that disjunctive and null-aware queries
// survive the HTTP JSON wire format bit-identically: encode → JSON → decode
// → encode reproduces the exact same bytes, and the decoded query is the
// original.
func TestWireRoundTripNewOps(t *testing.T) {
	q := richQuery()
	qj, err := server.EncodeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	wire1, err := json.Marshal(qj)
	if err != nil {
		t.Fatal(err)
	}
	var back server.QueryJSON
	if err := json.Unmarshal(wire1, &back); err != nil {
		t.Fatal(err)
	}
	dec, err := server.DecodeQuery(back)
	if err != nil {
		t.Fatal(err)
	}
	if dec.String() != q.String() {
		t.Fatalf("decoded query %s, want %s", dec, q)
	}
	qj2, err := server.EncodeQuery(dec)
	if err != nil {
		t.Fatal(err)
	}
	wire2, err := json.Marshal(qj2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire1, wire2) {
		t.Fatalf("wire round trip not bit-identical:\n  first:  %s\n  second: %s", wire1, wire2)
	}
}

// TestServeNewOpsEndToEnd sends OR / IS NULL / BETWEEN / NOT IN queries
// through the HTTP API and checks the served estimates equal the in-process
// seeded path exactly.
func TestServeNewOpsEndToEnd(t *testing.T) {
	_, ts, dir := serveTest(t)
	orig := buildEstimator(t, 7, 512)
	writeCheckpoint(t, dir, "fig4", orig)
	post(t, ts.URL+"/v1/models/fig4/load", nil)

	queries := []query.Query{
		richQuery(),
		{Tables: []string{"A"}, Filters: []query.Filter{{Table: "A", Col: "year", Op: query.OpIsNull}}},
		{Tables: []string{"A"}, Filters: []query.Filter{{Table: "A", Col: "year", Op: query.OpIsNotNull}}},
	}
	seed := int64(77)
	for i, q := range queries {
		qj, err := server.EncodeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		resp, body := post(t, ts.URL+"/v1/estimate", server.EstimateRequest{Query: &qj, Seed: &seed})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d (%s): %d %s", i, q, resp.StatusCode, body)
		}
		var er server.EstimateResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		want, err := orig.EstimateSeededIndexed(q, seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		if er.Est == nil || math.Abs(*er.Est-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("query %d (%s): served %v, want %.17g", i, q, er.Est, want)
		}
	}
}

// TestServeSeededBatchDeterminismUnderSwap checks EstimateBatchSeeded stays
// deterministic while POST /v1/models/{name}/load hot-swaps concurrently —
// the seeded-path extension of TestServeConcurrentSwap, run under -race in
// CI. Every generation loads the same checkpoint, so seeded batch results
// must be bit-identical no matter which generation serves them or how the
// swap interleaves.
func TestServeSeededBatchDeterminismUnderSwap(t *testing.T) {
	_, ts, dir := serveTest(t)
	writeCheckpoint(t, dir, "m", buildEstimator(t, 7, 512))
	post(t, ts.URL+"/v1/models/m/load", nil)

	seed := int64(321)
	rq, err := server.EncodeQuery(richQuery())
	if err != nil {
		t.Fatal(err)
	}
	req := server.EstimateRequest{
		Queries: []server.QueryJSON{
			rq,
			{Tables: []string{"A", "B", "C"}},
			{Tables: []string{"A"},
				Filters: []server.FilterJSON{{Table: "A", Col: "year", Op: "IS NULL"}}},
		},
		Seed:    &seed,
		Workers: 2,
	}
	resp, body := post(t, ts.URL+"/v1/estimate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline batch: %d %s", resp.StatusCode, body)
	}
	var baseline server.EstimateResponse
	if err := json.Unmarshal(body, &baseline); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 12; i++ {
			resp, body := post(t, ts.URL+"/v1/models/m/load", nil)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("swap: %d %s", resp.StatusCode, body)
				return
			}
		}
	}()
	for k := 0; k < 3; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				resp, body := post(t, ts.URL+"/v1/estimate", req)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("seeded batch during swap: %d %s", resp.StatusCode, body)
					return
				}
				var er server.EstimateResponse
				if err := json.Unmarshal(body, &er); err != nil {
					errs <- err
					return
				}
				for j := range baseline.Ests {
					if er.Ests[j] != baseline.Ests[j] {
						errs <- fmt.Errorf("query %d: %g != %g during hot swap (seeded batches must be deterministic)",
							j, er.Ests[j], baseline.Ests[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServeConcurrentSwap hammers the estimate endpoint while hot-swapping
// the model under it — run under -race in CI. Every response must be a valid
// estimate from either generation; no request may observe a torn registry.
func TestServeConcurrentSwap(t *testing.T) {
	_, ts, dir := serveTest(t)
	writeCheckpoint(t, dir, "m", buildEstimator(t, 7, 256))
	post(t, ts.URL+"/v1/models/m/load", nil)
	writeCheckpoint(t, dir, "m", buildEstimator(t, 11, 256))

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, body := post(t, ts.URL+"/v1/estimate", server.EstimateRequest{
					Query: &server.QueryJSON{Tables: []string{"A", "B", "C"}}})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("estimate during swap: %d %s", resp.StatusCode, body)
					return
				}
			}
		}()
	}
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				resp, body := post(t, ts.URL+"/v1/models/m/load", nil)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("swap: %d %s", resp.StatusCode, body)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
