package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"neurocard/internal/query"
)

// ContentTypeBinary selects the compact length-prefixed binary protocol on
// POST /v1/estimate. Requests and responses share a 5-byte header (magic
// "NCB", version, flags); queries travel in the canonical query.AppendKey
// encoding (the plan-cache key bytes), results as fixed-width little-endian
// float64s. Error responses to malformed or rejected requests remain JSON
// with a non-200 status — clients check the status code before parsing.
const ContentTypeBinary = "application/x-neurocard-bin"

// Binary frame layout, version 1.
//
// Request:
//
//	[3]byte  magic "NCB"
//	byte     version (1)
//	byte     flags: bit0 = seeded (8-byte seed follows the model name)
//	uvarint  model name length, then that many bytes ("" = default model)
//	int64    seed, little-endian (only when flags bit0 is set)
//	uvarint  nQueries (≥ 1)
//	nQueries × query.AppendKey encodings
//
// Response (status 200 only):
//
//	[3]byte  magic "NCB"
//	byte     version (1)
//	byte     flags: bit0 = per-query error strings present,
//	         bit1 = degraded (served by the fallback estimator)
//	uvarint  model name length + bytes (the serving model)
//	uvarint  nResults
//	nResults × float64 estimates, little-endian (0 where that query errored)
//	flags bit0: nResults × (uvarint length + bytes) error strings ("" = ok)
//
// A request of n queries has single-request semantics when n == 1 (it is
// coalesced across requests like a JSON "query") and batch semantics when
// n > 1 (query i draws randomness from (seed, i), exactly like JSON
// "queries"), so the two protocols are result-identical for the same seed.
const (
	binMagic   = "NCB"
	binVersion = 1

	binFlagSeeded    = 1 << 0 // request: seed field present
	binFlagErrors    = 1 << 0 // response: per-query error section present
	binFlagDegraded  = 1 << 1 // response: served by the fallback estimator
	binHeaderLen     = len(binMagic) + 2
	maxBinModelBytes = 1 << 10
)

var errBinHeader = errors.New("server: not a binary estimate frame (want magic \"NCB\" version 1)")

// BinRequest is the decoded form of a binary estimate request.
type BinRequest struct {
	Model   string
	Seed    *int64
	Queries []query.Query
}

// BinResponse is the decoded form of a binary estimate response. Errs is nil
// when every query succeeded; otherwise it is positionally aligned with Ests
// and holds "" for the queries that succeeded. Degraded marks estimates
// served by the fallback estimator rather than the neural model.
type BinResponse struct {
	Model    string
	Ests     []float64
	Errs     []string
	Degraded bool
}

// appendBinHeader writes the shared frame header.
func appendBinHeader(dst []byte, flags byte) []byte {
	dst = append(dst, binMagic...)
	return append(dst, binVersion, flags)
}

// readBinHeader validates the shared frame header and returns the flags.
func readBinHeader(b []byte) (flags byte, rest []byte, err error) {
	if len(b) < binHeaderLen || string(b[:len(binMagic)]) != binMagic {
		return 0, nil, errBinHeader
	}
	if v := b[len(binMagic)]; v != binVersion {
		return 0, nil, fmt.Errorf("server: unsupported binary protocol version %d (have %d)", v, binVersion)
	}
	return b[len(binMagic)+1], b[binHeaderLen:], nil
}

// AppendBinRequest encodes a binary estimate request into dst and returns
// the extended slice — the client-side encoder (harness load generator,
// cmd/ncbin). With a reused dst it allocates nothing beyond slice growth.
func AppendBinRequest(dst []byte, model string, seed *int64, queries []query.Query) []byte {
	var flags byte
	if seed != nil {
		flags |= binFlagSeeded
	}
	dst = appendBinHeader(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(model)))
	dst = append(dst, model...)
	if seed != nil {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(*seed))
	}
	dst = binary.AppendUvarint(dst, uint64(len(queries)))
	for _, q := range queries {
		dst = q.AppendKey(dst)
	}
	return dst
}

// DecodeBinRequest parses a binary estimate request frame. The whole buffer
// must be consumed: trailing garbage means a corrupt or truncated frame.
func DecodeBinRequest(b []byte) (BinRequest, error) {
	var req BinRequest
	flags, b, err := readBinHeader(b)
	if err != nil {
		return BinRequest{}, err
	}
	if flags&^binFlagSeeded != 0 {
		return BinRequest{}, fmt.Errorf("server: unknown binary request flags %#x", flags)
	}
	if req.Model, b, err = readBinString(b, maxBinModelBytes); err != nil {
		return BinRequest{}, fmt.Errorf("server: binary request model: %w", err)
	}
	if flags&binFlagSeeded != 0 {
		if len(b) < 8 {
			return BinRequest{}, query.ErrKeyTruncated
		}
		seed := int64(binary.LittleEndian.Uint64(b))
		req.Seed = &seed
		b = b[8:]
	}
	n, consumed := binary.Uvarint(b)
	if consumed <= 0 {
		return BinRequest{}, query.ErrKeyTruncated
	}
	b = b[consumed:]
	if n < 1 {
		return BinRequest{}, errors.New("server: binary request carries no queries")
	}
	if n > uint64(len(b))+1 { // each query encodes to ≥ 2 bytes; cheap pre-check
		return BinRequest{}, query.ErrKeyTruncated
	}
	req.Queries = make([]query.Query, n)
	for i := range req.Queries {
		if req.Queries[i], b, err = query.DecodeKey(b); err != nil {
			return BinRequest{}, fmt.Errorf("server: binary request query %d: %w", i, err)
		}
	}
	if len(b) != 0 {
		return BinRequest{}, fmt.Errorf("server: %d trailing bytes after binary request", len(b))
	}
	return req, nil
}

// AppendBinResponse encodes a binary estimate response into dst and returns
// the extended slice — the server-side encoder, fed from a pooled buffer so
// the hot path allocates nothing.
func AppendBinResponse(dst []byte, model string, ests []float64, errs []string, degraded bool) []byte {
	var flags byte
	if errs != nil {
		flags |= binFlagErrors
	}
	if degraded {
		flags |= binFlagDegraded
	}
	dst = appendBinHeader(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(model)))
	dst = append(dst, model...)
	dst = binary.AppendUvarint(dst, uint64(len(ests)))
	for _, est := range ests {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(est))
	}
	if errs != nil {
		for _, e := range errs {
			dst = binary.AppendUvarint(dst, uint64(len(e)))
			dst = append(dst, e...)
		}
	}
	return dst
}

// DecodeBinResponse parses a binary estimate response frame — the
// client-side decoder.
func DecodeBinResponse(b []byte) (BinResponse, error) {
	var resp BinResponse
	flags, b, err := readBinHeader(b)
	if err != nil {
		return BinResponse{}, err
	}
	if flags&^(binFlagErrors|binFlagDegraded) != 0 {
		return BinResponse{}, fmt.Errorf("server: unknown binary response flags %#x", flags)
	}
	resp.Degraded = flags&binFlagDegraded != 0
	if resp.Model, b, err = readBinString(b, maxBinModelBytes); err != nil {
		return BinResponse{}, fmt.Errorf("server: binary response model: %w", err)
	}
	n, consumed := binary.Uvarint(b)
	if consumed <= 0 {
		return BinResponse{}, query.ErrKeyTruncated
	}
	b = b[consumed:]
	if n > uint64(len(b))/8 {
		return BinResponse{}, query.ErrKeyTruncated
	}
	resp.Ests = make([]float64, n)
	for i := range resp.Ests {
		resp.Ests[i] = math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	if flags&binFlagErrors != 0 {
		resp.Errs = make([]string, n)
		for i := range resp.Errs {
			if resp.Errs[i], b, err = readBinString(b, 1<<16); err != nil {
				return BinResponse{}, fmt.Errorf("server: binary response error %d: %w", i, err)
			}
		}
	}
	if len(b) != 0 {
		return BinResponse{}, fmt.Errorf("server: %d trailing bytes after binary response", len(b))
	}
	return resp, nil
}

// readBinString reads a uvarint-length-prefixed string bounded by limit.
func readBinString(b []byte, limit uint64) (string, []byte, error) {
	n, consumed := binary.Uvarint(b)
	if consumed <= 0 {
		return "", nil, query.ErrKeyTruncated
	}
	if n > limit {
		return "", nil, fmt.Errorf("string of %d bytes exceeds limit %d", n, limit)
	}
	b = b[consumed:]
	if uint64(len(b)) < n {
		return "", nil, query.ErrKeyTruncated
	}
	return string(b[:n]), b[n:], nil
}

// wireBufPool recycles request/response scratch buffers for the binary hot
// path: one Get covers reading the body and encoding the reply, so a
// steady-state binary estimate performs no per-request buffer allocation.
var wireBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}
