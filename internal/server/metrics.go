package server

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"neurocard/internal/core"
)

// latencyBuckets are the histogram upper bounds in seconds (Prometheus
// cumulative-bucket convention; +Inf is implicit).
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram with atomic counters, safe
// for concurrent observation without locks.
type histogram struct {
	counts  []atomic.Int64 // one per bucket, non-cumulative; last = +Inf
	sumNs   atomic.Int64
	samples atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	sec := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, sec)
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.samples.Add(1)
}

// metrics aggregates the serving counters exposed on /metrics.
type metrics struct {
	start time.Time

	reqLatency *histogram // per-request wall time (estimate endpoint)

	queriesTotal  atomic.Int64 // individual query estimates served
	requestsTotal atomic.Int64 // estimate HTTP requests served
	errorsTotal   atomic.Int64 // estimate requests answered with an error
	loadsTotal    atomic.Int64 // model (re)loads

	inflight     atomic.Int64 // estimate requests currently executing
	inflightPeak atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), reqLatency: newHistogram()}
}

// requestStart tracks an in-flight estimate request; call the returned
// function exactly once when it completes.
func (m *metrics) requestStart() (done func(queries int, err bool)) {
	cur := m.inflight.Add(1)
	for {
		peak := m.inflightPeak.Load()
		if cur <= peak || m.inflightPeak.CompareAndSwap(peak, cur) {
			break
		}
	}
	start := time.Now()
	return func(queries int, errored bool) {
		m.inflight.Add(-1)
		m.requestsTotal.Add(1)
		if errored {
			m.errorsTotal.Add(1)
			return
		}
		m.queriesTotal.Add(int64(queries))
		m.reqLatency.observe(time.Since(start))
	}
}

// poolStat is one model's session-pool occupancy and plan-cache snapshot.
type poolStat struct {
	model       string
	free, inUse int
	plans       core.PlanCacheStats
}

// render writes the Prometheus text exposition of every counter. pools
// carries the per-model session-pool occupancy sampled at scrape time.
func (m *metrics) render(pools []poolStat) string {
	var b strings.Builder
	uptime := time.Since(m.start).Seconds()
	queries := m.queriesTotal.Load()

	fmt.Fprintf(&b, "# HELP neurocard_estimate_latency_seconds Wall time of estimate requests.\n")
	fmt.Fprintf(&b, "# TYPE neurocard_estimate_latency_seconds histogram\n")
	cum := int64(0)
	for i, ub := range latencyBuckets {
		cum += m.reqLatency.counts[i].Load()
		fmt.Fprintf(&b, "neurocard_estimate_latency_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += m.reqLatency.counts[len(latencyBuckets)].Load()
	fmt.Fprintf(&b, "neurocard_estimate_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(&b, "neurocard_estimate_latency_seconds_sum %g\n", float64(m.reqLatency.sumNs.Load())/1e9)
	fmt.Fprintf(&b, "neurocard_estimate_latency_seconds_count %d\n", m.reqLatency.samples.Load())

	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("neurocard_estimate_queries_total", "Individual query estimates served.", queries)
	counter("neurocard_estimate_requests_total", "Estimate HTTP requests served.", m.requestsTotal.Load())
	counter("neurocard_estimate_errors_total", "Estimate requests answered with an error.", m.errorsTotal.Load())
	counter("neurocard_model_loads_total", "Model checkpoint (re)loads.", m.loadsTotal.Load())

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gauge("neurocard_inflight_requests", "Estimate requests currently executing.", float64(m.inflight.Load()))
	gauge("neurocard_inflight_requests_peak", "Peak concurrent estimate requests since start.", float64(m.inflightPeak.Load()))
	gauge("neurocard_uptime_seconds", "Seconds since server start.", uptime)
	qps := 0.0
	if uptime > 0 {
		qps = float64(queries) / uptime
	}
	gauge("neurocard_queries_per_second_lifetime", "Lifetime average estimate throughput.", qps)

	fmt.Fprintf(&b, "# HELP neurocard_sessions_in_use Inference sessions checked out per model.\n# TYPE neurocard_sessions_in_use gauge\n")
	for _, p := range pools {
		fmt.Fprintf(&b, "neurocard_sessions_in_use{model=%q} %d\n", p.model, p.inUse)
	}
	fmt.Fprintf(&b, "# HELP neurocard_sessions_free Idle pooled inference sessions per model.\n# TYPE neurocard_sessions_free gauge\n")
	for _, p := range pools {
		fmt.Fprintf(&b, "neurocard_sessions_free{model=%q} %d\n", p.model, p.free)
	}

	// Compiled-plan cache: hits/misses/evictions are lifetime counters,
	// size/capacity are point-in-time gauges. A healthy steady-state serving
	// workload shows hits ≫ misses — repeated query shapes skip planning.
	planCounter := func(name, help string, get func(core.PlanCacheStats) int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, p := range pools {
			fmt.Fprintf(&b, "%s{model=%q} %d\n", name, p.model, get(p.plans))
		}
	}
	planCounter("neurocard_plan_cache_hits_total", "Estimates served from a cached compiled plan.",
		func(s core.PlanCacheStats) int64 { return s.Hits })
	planCounter("neurocard_plan_cache_misses_total", "Estimates that compiled their plan.",
		func(s core.PlanCacheStats) int64 { return s.Misses })
	planCounter("neurocard_plan_cache_evictions_total", "Compiled plans evicted by the LRU bound.",
		func(s core.PlanCacheStats) int64 { return s.Evictions })
	fmt.Fprintf(&b, "# HELP neurocard_plan_cache_size Compiled plans currently cached per model.\n# TYPE neurocard_plan_cache_size gauge\n")
	for _, p := range pools {
		fmt.Fprintf(&b, "neurocard_plan_cache_size{model=%q} %d\n", p.model, p.plans.Size)
	}
	fmt.Fprintf(&b, "# HELP neurocard_plan_cache_capacity Compiled-plan cache bound per model.\n# TYPE neurocard_plan_cache_capacity gauge\n")
	for _, p := range pools {
		fmt.Fprintf(&b, "neurocard_plan_cache_capacity{model=%q} %d\n", p.model, p.plans.Cap)
	}
	return b.String()
}
