package server

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"neurocard/internal/core"
)

// latencyBuckets are the request-latency histogram upper bounds in seconds
// (Prometheus cumulative-bucket convention; +Inf is implicit).
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// fusedBatchBuckets bound the coalescer's fused-batch-size histogram.
var fusedBatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// queueDepthBuckets bound the coalescer's queue-depth-at-flush histogram.
var queueDepthBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// windowBuckets bound the adaptive-window histogram in seconds.
var windowBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.002, 0.005, 0.01}

// histogram is a fixed-bucket histogram with atomic counters, safe for
// concurrent observation without locks.
type histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // one per bucket, non-cumulative; last = +Inf
	sumBits atomic.Uint64  // float64 bits of the running sum
	samples atomic.Int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	h.samples.Add(1)
}

func (h *histogram) observeDuration(d time.Duration) { h.observe(d.Seconds()) }

func (h *histogram) sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// quantile estimates the q-quantile (0 < q < 1) from the bucket counts with
// linear interpolation inside the winning bucket — the standard
// histogram_quantile approximation. Returns 0 with no samples; observations
// beyond the last finite bound report that bound.
func (h *histogram) quantile(q float64) float64 {
	total := h.samples.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, ub := range h.bounds {
		c := h.counts[i].Load()
		if float64(cum)+float64(c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if c == 0 {
				return ub
			}
			return lo + (ub-lo)*(rank-float64(cum))/float64(c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// renderHistogram writes one histogram in Prometheus text exposition.
func renderHistogram(b *strings.Builder, name, help string, h *histogram) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := int64(0)
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=\"%g\"} %d\n", name, ub, cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %g\n", name, h.sum())
	fmt.Fprintf(b, "%s_count %d\n", name, h.samples.Load())
}

// metrics aggregates the serving counters exposed on /metrics.
type metrics struct {
	start time.Time

	sloP99 time.Duration // p99 latency SLO target (Config.SLOLatencyP99)

	reqLatency *histogram // per-request wall time (estimate endpoint)

	// Coalescer instruments, observed once per fused flush.
	fusedBatchSize     *histogram
	coalesceQueueDepth *histogram
	coalesceWindow     *histogram
	coalesceRejected   atomic.Int64 // admission-control 429s

	queriesTotal  atomic.Int64 // individual query estimates served
	requestsTotal atomic.Int64 // estimate HTTP requests served
	errorsTotal   atomic.Int64 // estimate requests answered with an error
	loadsTotal    atomic.Int64 // model (re)loads
	binaryTotal   atomic.Int64 // estimate requests on the binary protocol

	// Fault-tolerance counters.
	timeoutsTotal  atomic.Int64 // estimates failed on an expired deadline
	fallbackTotal  atomic.Int64 // query estimates served by the fallback estimator
	panicsTotal    atomic.Int64 // panics recovered in handlers/coalescer
	nonfiniteTotal atomic.Int64 // estimates rejected by the sanity guard

	// Sharded-serving counters.
	logicalQueries atomic.Int64 // query estimates composed from shard models
	unloadsTotal   atomic.Int64 // model/logical unloads via DELETE
	shardRouted    sync.Map     // "logical\x00shard" → *atomic.Int64 sub-queries routed

	// Ingest/refresh counters (server-wide; per-model detail rides on
	// ingestStat rows sampled at scrape time).
	ingestRowsTotal   atomic.Int64 // rows durably journaled and acknowledged
	ingestFailedTotal atomic.Int64 // ingest requests that failed to journal (not acked)
	refreshTotal      atomic.Int64 // model refresh cycles hot-swapped in

	inflight     atomic.Int64 // estimate requests currently executing
	inflightPeak atomic.Int64
}

func newMetrics(sloP99 time.Duration) *metrics {
	return &metrics{
		start:              time.Now(),
		sloP99:             sloP99,
		reqLatency:         newHistogram(latencyBuckets),
		fusedBatchSize:     newHistogram(fusedBatchBuckets),
		coalesceQueueDepth: newHistogram(queueDepthBuckets),
		coalesceWindow:     newHistogram(windowBuckets),
	}
}

// requestStart tracks an in-flight estimate request; call the returned
// function exactly once when it completes.
func (m *metrics) requestStart() (done func(queries int, err bool)) {
	cur := m.inflight.Add(1)
	for {
		peak := m.inflightPeak.Load()
		if cur <= peak || m.inflightPeak.CompareAndSwap(peak, cur) {
			break
		}
	}
	start := time.Now()
	return func(queries int, errored bool) {
		m.inflight.Add(-1)
		m.requestsTotal.Add(1)
		// Latency is observed for every terminal outcome: deadline expiries
		// and 500s are exactly the slow tail the SLO gauges must see.
		// queriesTotal stays success-only.
		m.reqLatency.observeDuration(time.Since(start))
		if errored {
			m.errorsTotal.Add(1)
			return
		}
		m.queriesTotal.Add(int64(queries))
	}
}

// routeToShard counts n sub-queries routed from a logical model to one of
// its shard models.
func (m *metrics) routeToShard(logical, shard string, n int64) {
	key := logical + "\x00" + shard
	c, ok := m.shardRouted.Load(key)
	if !ok {
		c, _ = m.shardRouted.LoadOrStore(key, new(atomic.Int64))
	}
	c.(*atomic.Int64).Add(n)
}

// poolStat is one model's session-pool occupancy, plan-cache, and breaker
// snapshot.
type poolStat struct {
	model        string
	free, inUse  int
	plans        core.PlanCacheStats
	precision    string // serving element width ("float64"/"float32")
	weightBytes  int    // resident serving-weight bytes (width × parameters)
	dataGen      int64  // estimator data-snapshot generation
	hasBreaker   bool
	breakerState int32 // breakerClosed / breakerHalfOpen / breakerOpen
	breakerOpens int64 // lifetime open transitions
}

// render writes the Prometheus text exposition of every counter. pools
// carries the per-model session-pool occupancy and fusers the per-model
// coalescer state, both sampled at scrape time.
func (m *metrics) render(pools []poolStat, fusers []CoalesceStats, quarantined int64, ingests []ingestStat) string {
	var b strings.Builder
	uptime := time.Since(m.start).Seconds()
	queries := m.queriesTotal.Load()

	renderHistogram(&b, "neurocard_estimate_latency_seconds",
		"Wall time of estimate requests.", m.reqLatency)

	// The same observations as a quantile summary: client-observed request
	// latency including coalescer queueing, the SLO-facing view.
	fmt.Fprintf(&b, "# HELP neurocard_request_latency_seconds Estimate request latency quantiles (incl. coalescer queueing).\n")
	fmt.Fprintf(&b, "# TYPE neurocard_request_latency_seconds summary\n")
	p99 := m.reqLatency.quantile(0.99)
	for _, q := range []struct {
		label string
		v     float64
	}{{"0.5", m.reqLatency.quantile(0.5)}, {"0.95", m.reqLatency.quantile(0.95)}, {"0.99", p99}} {
		fmt.Fprintf(&b, "neurocard_request_latency_seconds{quantile=%q} %g\n", q.label, q.v)
	}
	fmt.Fprintf(&b, "neurocard_request_latency_seconds_sum %g\n", m.reqLatency.sum())
	fmt.Fprintf(&b, "neurocard_request_latency_seconds_count %d\n", m.reqLatency.samples.Load())

	renderHistogram(&b, "neurocard_fused_batch_size",
		"Single-query requests fused per coalesced batch.", m.fusedBatchSize)
	renderHistogram(&b, "neurocard_coalesce_queue_depth",
		"Pending requests left in the coalescer queue at flush time.", m.coalesceQueueDepth)
	renderHistogram(&b, "neurocard_coalesce_window_seconds",
		"Adaptive collection window at flush time.", m.coalesceWindow)

	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("neurocard_estimate_queries_total", "Individual query estimates served.", queries)
	counter("neurocard_estimate_requests_total", "Estimate HTTP requests served.", m.requestsTotal.Load())
	counter("neurocard_estimate_errors_total", "Estimate requests answered with an error.", m.errorsTotal.Load())
	counter("neurocard_model_loads_total", "Model checkpoint (re)loads.", m.loadsTotal.Load())
	counter("neurocard_binary_requests_total", "Estimate requests on the binary wire protocol.", m.binaryTotal.Load())
	counter("neurocard_coalesce_rejected_total", "Estimate requests rejected by coalescer admission control (429).", m.coalesceRejected.Load())
	counter("neurocard_request_timeouts_total", "Query estimates failed on an expired deadline (504).", m.timeoutsTotal.Load())
	counter("neurocard_fallback_total", "Query estimates served by the fallback estimator while degraded.", m.fallbackTotal.Load())
	counter("neurocard_recovered_panics_total", "Panics recovered by the serving blast-radius guards.", m.panicsTotal.Load())
	counter("neurocard_nonfinite_estimates_total", "Estimates rejected by the NaN/Inf/non-positive sanity guard.", m.nonfiniteTotal.Load())
	counter("neurocard_checkpoints_quarantined_total", "Corrupt checkpoint files moved aside at load.", quarantined)
	counter("neurocard_logical_queries_total", "Query estimates composed from shard models.", m.logicalQueries.Load())
	counter("neurocard_model_unloads_total", "Models and logical models removed via the unload API.", m.unloadsTotal.Load())

	// Per-shard routing: sub-queries each logical model dispatched to each
	// shard model, the primary signal for shard-fleet load balancing.
	type routedRow struct {
		logical, shard string
		n              int64
	}
	var routed []routedRow
	m.shardRouted.Range(func(k, v any) bool {
		logical, shardName, _ := strings.Cut(k.(string), "\x00")
		routed = append(routed, routedRow{logical, shardName, v.(*atomic.Int64).Load()})
		return true
	})
	sort.Slice(routed, func(i, j int) bool {
		if routed[i].logical != routed[j].logical {
			return routed[i].logical < routed[j].logical
		}
		return routed[i].shard < routed[j].shard
	})
	fmt.Fprintf(&b, "# HELP neurocard_shard_routed_total Sub-queries routed per (logical model, shard model).\n# TYPE neurocard_shard_routed_total counter\n")
	for _, rr := range routed {
		fmt.Fprintf(&b, "neurocard_shard_routed_total{logical=%q,shard=%q} %d\n", rr.logical, rr.shard, rr.n)
	}

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	// The serving SLO, as three gauges: observed p99, the target, and a 0/1
	// breach flag alerting rules can consume directly.
	gauge("neurocard_slo_p99_latency_seconds", "Observed p99 estimate latency (SLO gauge).", p99)
	gauge("neurocard_slo_p99_target_seconds", "Configured p99 latency SLO target.", m.sloP99.Seconds())
	breached := 0.0
	if m.sloP99 > 0 && p99 > m.sloP99.Seconds() {
		breached = 1
	}
	gauge("neurocard_slo_p99_breached", "1 when observed p99 exceeds the SLO target.", breached)

	gauge("neurocard_inflight_requests", "Estimate requests currently executing.", float64(m.inflight.Load()))
	gauge("neurocard_inflight_requests_peak", "Peak concurrent estimate requests since start.", float64(m.inflightPeak.Load()))
	gauge("neurocard_uptime_seconds", "Seconds since server start.", uptime)
	qps := 0.0
	if uptime > 0 {
		qps = float64(queries) / uptime
	}
	gauge("neurocard_queries_per_second_lifetime", "Lifetime average estimate throughput.", qps)

	sort.Slice(fusers, func(i, j int) bool { return fusers[i].Model < fusers[j].Model })
	fmt.Fprintf(&b, "# HELP neurocard_coalesce_queue_depth_current Pending coalescer requests per model at scrape time.\n# TYPE neurocard_coalesce_queue_depth_current gauge\n")
	for _, f := range fusers {
		fmt.Fprintf(&b, "neurocard_coalesce_queue_depth_current{model=%q} %d\n", f.Model, f.QueueDepth)
	}
	fmt.Fprintf(&b, "# HELP neurocard_coalesce_window_current_seconds Adaptive collection window per model at scrape time.\n# TYPE neurocard_coalesce_window_current_seconds gauge\n")
	for _, f := range fusers {
		fmt.Fprintf(&b, "neurocard_coalesce_window_current_seconds{model=%q} %g\n", f.Model, f.Window.Seconds())
	}

	// Breaker state per model: 0 = closed (healthy), 1 = half-open (probing),
	// 2 = open (fallback serving). Absent for models without a breaker.
	fmt.Fprintf(&b, "# HELP neurocard_breaker_state Circuit breaker state per model (0 closed, 1 half-open, 2 open).\n# TYPE neurocard_breaker_state gauge\n")
	for _, p := range pools {
		if p.hasBreaker {
			fmt.Fprintf(&b, "neurocard_breaker_state{model=%q} %d\n", p.model, p.breakerState)
		}
	}
	fmt.Fprintf(&b, "# HELP neurocard_breaker_opens_total Circuit breaker open transitions per model.\n# TYPE neurocard_breaker_opens_total counter\n")
	for _, p := range pools {
		if p.hasBreaker {
			fmt.Fprintf(&b, "neurocard_breaker_opens_total{model=%q} %d\n", p.model, p.breakerOpens)
		}
	}

	fmt.Fprintf(&b, "# HELP neurocard_sessions_in_use Inference sessions checked out per model.\n# TYPE neurocard_sessions_in_use gauge\n")
	for _, p := range pools {
		fmt.Fprintf(&b, "neurocard_sessions_in_use{model=%q} %d\n", p.model, p.inUse)
	}
	fmt.Fprintf(&b, "# HELP neurocard_sessions_free Idle pooled inference sessions per model.\n# TYPE neurocard_sessions_free gauge\n")
	for _, p := range pools {
		fmt.Fprintf(&b, "neurocard_sessions_free{model=%q} %d\n", p.model, p.free)
	}

	// Serving precision per model: the weight-bytes gauge is the capacity-
	// planning number (float32 halves it), the precision label the switch
	// that explains a change after a reload.
	fmt.Fprintf(&b, "# HELP neurocard_model_weight_bytes Resident serving-weight bytes per model (element width x parameters).\n# TYPE neurocard_model_weight_bytes gauge\n")
	for _, p := range pools {
		fmt.Fprintf(&b, "neurocard_model_weight_bytes{model=%q} %d\n", p.model, p.weightBytes)
	}
	fmt.Fprintf(&b, "# HELP neurocard_model_precision_info Serving precision per model (value always 1; width in the precision label).\n# TYPE neurocard_model_precision_info gauge\n")
	for _, p := range pools {
		fmt.Fprintf(&b, "neurocard_model_precision_info{model=%q,precision=%q} 1\n", p.model, p.precision)
	}

	// Compiled-plan cache: hits/misses/evictions are lifetime counters,
	// size/capacity are point-in-time gauges. A healthy steady-state serving
	// workload shows hits ≫ misses — repeated query shapes skip planning.
	planCounter := func(name, help string, get func(core.PlanCacheStats) int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, p := range pools {
			fmt.Fprintf(&b, "%s{model=%q} %d\n", name, p.model, get(p.plans))
		}
	}
	planCounter("neurocard_plan_cache_hits_total", "Estimates served from a cached compiled plan.",
		func(s core.PlanCacheStats) int64 { return s.Hits })
	planCounter("neurocard_plan_cache_misses_total", "Estimates that compiled their plan.",
		func(s core.PlanCacheStats) int64 { return s.Misses })
	planCounter("neurocard_plan_cache_evictions_total", "Compiled plans evicted by the LRU bound.",
		func(s core.PlanCacheStats) int64 { return s.Evictions })
	planCounter("neurocard_plan_cache_invalidations_total", "Whole-cache drops caused by data-snapshot swaps (UpdateData/refresh).",
		func(s core.PlanCacheStats) int64 { return s.Invalidations })
	fmt.Fprintf(&b, "# HELP neurocard_plan_cache_size Compiled plans currently cached per model.\n# TYPE neurocard_plan_cache_size gauge\n")
	for _, p := range pools {
		fmt.Fprintf(&b, "neurocard_plan_cache_size{model=%q} %d\n", p.model, p.plans.Size)
	}
	fmt.Fprintf(&b, "# HELP neurocard_plan_cache_capacity Compiled-plan cache bound per model.\n# TYPE neurocard_plan_cache_capacity gauge\n")
	for _, p := range pools {
		fmt.Fprintf(&b, "neurocard_plan_cache_capacity{model=%q} %d\n", p.model, p.plans.Cap)
	}

	// Data-snapshot generation per model: bumps on every ingest replay and
	// refresh, the continuity signal pairing with the invalidation counter.
	fmt.Fprintf(&b, "# HELP neurocard_data_generation Data-snapshot generation of each model's estimator.\n# TYPE neurocard_data_generation gauge\n")
	for _, p := range pools {
		fmt.Fprintf(&b, "neurocard_data_generation{model=%q} %d\n", p.model, p.dataGen)
	}

	// Ingest + refresh: server-wide counters, then per-model journal,
	// staleness, and refresh detail for every ingest-enabled model.
	counter("neurocard_ingest_rows_acked_total", "Rows durably journaled and acknowledged.", m.ingestRowsTotal.Load())
	counter("neurocard_ingest_failed_total", "Ingest requests that failed to journal (not acknowledged).", m.ingestFailedTotal.Load())
	counter("neurocard_refresh_total", "Model refresh cycles hot-swapped in.", m.refreshTotal.Load())

	ingestCounter := func(name, help string, get func(ingestStat) int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, is := range ingests {
			fmt.Fprintf(&b, "%s{model=%q} %d\n", name, is.model, get(is))
		}
	}
	ingestGauge := func(name, help string, get func(ingestStat) float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, is := range ingests {
			fmt.Fprintf(&b, "%s{model=%q} %g\n", name, is.model, get(is))
		}
	}
	ingestCounter("neurocard_ingest_model_rows_acked_total", "Rows durably journaled and acknowledged per model.",
		func(is ingestStat) int64 { return int64(is.rowsAcked) })
	ingestGauge("neurocard_ingest_staleness_rows", "Acknowledged rows not yet absorbed into a refreshed model generation.",
		func(is ingestStat) float64 { return float64(is.pendingRows) })
	ingestGauge("neurocard_ingest_staleness_seconds", "Age of the oldest acknowledged row awaiting a refresh.",
		func(is ingestStat) float64 { return is.secondsBehind })
	ingestGauge("neurocard_ingest_journal_bytes", "On-disk size of the write-ahead row journal.",
		func(is ingestStat) float64 { return float64(is.journalBytes) })
	ingestGauge("neurocard_ingest_journal_rows", "Rows currently held in the write-ahead row journal (drops at prune).",
		func(is ingestStat) float64 { return float64(is.journalRows) })
	ingestGauge("neurocard_ingest_journal_segments", "Segment files in the write-ahead row journal.",
		func(is ingestStat) float64 { return float64(is.journalSegments) })
	ingestCounter("neurocard_ingest_journal_quarantined_total", "Journal files or tails quarantined during replay.",
		func(is ingestStat) int64 { return is.replayQuarantined })
	ingestCounter("neurocard_refresh_model_total", "Refresh cycles hot-swapped in per model.",
		func(is ingestStat) int64 { return is.refreshes })
	ingestCounter("neurocard_refresh_failures_total", "Refresh cycles that failed before hot swap.",
		func(is ingestStat) int64 { return is.refreshFailures })
	ingestCounter("neurocard_refresh_checkpoint_skips_total", "Refreshes that hot-swapped in memory but could not checkpoint.",
		func(is ingestStat) int64 { return is.checkpointSkips })
	ingestGauge("neurocard_refresh_lag_seconds", "Wall time of the last completed refresh cycle.",
		func(is ingestStat) float64 { return is.lastRefreshSecs })
	return b.String()
}
