package server_test

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"

	"neurocard/internal/server"
)

// TestServeTwoPrecisionsConcurrently loads the same checkpoint under two
// names — one at the daemon default (float64), one at float32 via the
// per-load override — and checks the registry serves both widths side by
// side: correct precision and weight-bytes metadata on /v1/models, the
// matching neurocard_model_weight_bytes and neurocard_model_precision_info
// gauges on /metrics (float32 exactly half), and concurrent estimates
// against both models under load.
func TestServeTwoPrecisionsConcurrently(t *testing.T) {
	_, ts, dir := serveTest(t)
	writeCheckpoint(t, dir, "wide", buildEstimator(t, 7, 512))
	writeCheckpoint(t, dir, "narrow", buildEstimator(t, 7, 512))

	resp, body := post(t, ts.URL+"/v1/models/wide/load", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load wide: %d %s", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/v1/models/narrow/load", server.LoadRequest{Precision: "float32"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load narrow: %d %s", resp.StatusCode, body)
	}

	// Metadata: same parameter count, so float32 weight bytes are exactly
	// half the float64 entry's.
	resp, body = get(t, ts.URL+"/v1/models")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("models: %d %s", resp.StatusCode, body)
	}
	var mr server.ModelsResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	infos := map[string]server.ModelInfo{}
	for _, m := range mr.Models {
		infos[m.Name] = m
	}
	wide, narrow := infos["wide"], infos["narrow"]
	if wide.Precision != "float64" || narrow.Precision != "float32" {
		t.Fatalf("precisions: wide %q, narrow %q", wide.Precision, narrow.Precision)
	}
	if wide.WeightBytes <= 0 || narrow.WeightBytes*2 != wide.WeightBytes {
		t.Fatalf("weight bytes: wide %d, narrow %d (want narrow = wide/2)",
			wide.WeightBytes, narrow.WeightBytes)
	}

	// The same numbers must surface as Prometheus gauges.
	resp, body = get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	metrics := string(body)
	for _, want := range []string{
		fmt.Sprintf(`neurocard_model_weight_bytes{model="wide"} %d`, wide.WeightBytes),
		fmt.Sprintf(`neurocard_model_weight_bytes{model="narrow"} %d`, narrow.WeightBytes),
		`neurocard_model_precision_info{model="wide",precision="float64"} 1`,
		`neurocard_model_precision_info{model="narrow",precision="float32"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Both widths must answer estimates concurrently; identical checkpoints
	// under the same seed keep the two widths within rounding of each other,
	// so a cross-model mixup (wrong pool, shared session) shows up as a
	// wildly different or invalid estimate.
	ests := map[string][]float64{"wide": make([]float64, 8), "narrow": make([]float64, 8)}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for model, out := range ests {
		for i := range out {
			wg.Add(1)
			go func(model string, i int, out []float64) {
				defer wg.Done()
				seed := int64(50 + i)
				resp, body := post(t, ts.URL+"/v1/estimate", server.EstimateRequest{
					Model: model,
					Query: &server.QueryJSON{Tables: []string{"A", "B", "C"}},
					Seed:  &seed,
				})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s estimate %d: %d %s", model, i, resp.StatusCode, body)
					return
				}
				var er server.EstimateResponse
				if err := json.Unmarshal(body, &er); err != nil {
					errs <- err
					return
				}
				if er.Est == nil || *er.Est < 1 || math.IsNaN(*er.Est) || math.IsInf(*er.Est, 0) {
					errs <- fmt.Errorf("%s estimate %d: bad response %s", model, i, body)
					return
				}
				out[i] = *er.Est
			}(model, i, out)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := range ests["wide"] {
		w, n := ests["wide"][i], ests["narrow"][i]
		if qerr := math.Max(w/n, n/w); qerr > 1.5 {
			t.Errorf("seed %d: float64 %g vs float32 %g (q-error %.3f)", 50+i, w, n, qerr)
		}
	}
}

// TestLoadPrecisionDefaultAndOverride checks the precedence chain: the
// server-wide default applies when a load names no precision, a per-load
// precision overrides it, and a bad spelling fails the load without
// registering anything.
func TestLoadPrecisionDefaultAndOverride(t *testing.T) {
	dir := t.TempDir()
	srv := server.New(server.Config{ModelsDir: dir, Workers: 2, DefaultPrecision: "float32"})
	defer srv.Close()
	writeCheckpoint(t, dir, "m", buildEstimator(t, 7, 256))

	entry, err := srv.Registry().Load("m", "")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(entry.Est.Precision()); got != "float32" {
		t.Fatalf("default-precision load serves %q, want float32", got)
	}
	entry, err = srv.Registry().LoadPrecision("m", "", "float64")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(entry.Est.Precision()); got != "float64" {
		t.Fatalf("per-load override serves %q, want float64", got)
	}
	if _, err := srv.Registry().LoadPrecision("m2", "", "float16"); err == nil {
		t.Fatal("bad precision accepted")
	}
	if _, err := srv.Registry().Get("m2"); err == nil {
		t.Fatal("failed load registered a model")
	}
}
