// Package server exposes trained NeuroCard estimators over an HTTP JSON API:
// a model registry with atomic hot swap, single/batch/seeded estimation on
// the pooled zero-alloc inference machinery, health and metrics endpoints,
// and a load-test harness hook. cmd/neurocardd is the daemon wrapper.
//
// # Request path
//
// Concurrent single-query requests coalesce into batched estimates through
// a per-model fuser (DESIGN.md §2.5); the same endpoint speaks a compact
// binary protocol. Requests carry deadlines end to end, a per-model circuit
// breaker routes repeated model failures to a histogram fallback estimator,
// and panics are contained per request (DESIGN.md §2.6). Coalescing and the
// wire format never change results: each query keeps its own (seed, index)
// randomness.
//
// # Models and precision
//
// Registry entries are immutable; a hot reload builds the replacement off
// to the side and swaps the pointer, so in-flight requests finish on the
// old model. Each load may choose its serving precision — the daemon-wide
// default (-precision), a per-load override (LoadRequest.Precision), or the
// checkpoint's own — and models at different widths serve concurrently.
// /metrics exports per-model resident kernel bytes
// (neurocard_model_weight_bytes) and the active width
// (neurocard_model_precision_info) alongside the latency, SLO, breaker,
// coalescer, and plan-cache series.
package server
