package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"neurocard/internal/core"
	"neurocard/internal/query"
)

// The request coalescer fuses concurrent single-query estimate requests into
// shared EstimateItems batches: one flush resolves the registry entry once,
// checks out pooled sessions once, and runs every fused query with its own
// (seed, idx) randomness, so coalescing never changes any individual result
// (a seeded request fused into a batch of 40 returns the bit-identical
// estimate it would have returned alone). Each model name has one fuser
// goroutine; requests enqueue into a bounded channel (admission control —
// a full queue answers 429 + Retry-After instead of growing latency without
// bound) and the fuser collects up to FuseMaxBatch queries or an adaptive
// latency window before flushing. The window tracks load: it opens toward
// FuseWindow while flushes are fusing many requests and decays to zero when
// traffic is a trickle, so an idle server's p50 never pays the batching
// budget. See DESIGN.md §2.5.

// Clock abstracts the coalescer's window timer so tests can hold a flush
// open deterministically. The zero Config uses the real time package.
type Clock interface {
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Coalescer sentinel errors, mapped onto HTTP statuses by the handler.
var (
	// errSaturated reports an admission-control rejection: the model's
	// pending queue is full. Handlers answer 429 with Retry-After.
	errSaturated = errors.New("server: estimate queue saturated, retry later")
	// errClosing reports a request caught in server shutdown.
	errClosing = errors.New("server: shutting down")
	// errNonFinite reports an estimate that failed the finiteness check —
	// an internal model error, not a caller mistake.
	errNonFinite = errors.New("server: non-finite estimate")
	// errBreakerOpen reports a request short-circuited by an open model
	// circuit with no fallback estimator to absorb it.
	errBreakerOpen = errors.New("server: model circuit open and no fallback estimator configured")
)

// fuseAdaptRamp is the fused-batch-size EWMA at which the adaptive window
// reaches its full configured budget; below it the window scales linearly
// down to zero at an EWMA of 1 (pure single-request trickle).
const fuseAdaptRamp = 16.0

// pendingEstimate is one enqueued single-query request waiting for a fused
// flush. Pooled: the done channel is reused across requests. ctx carries the
// request's deadline into the fused batch, so one slow straggler can expire
// mid-flush without touching its batchmates.
type pendingEstimate struct {
	q    query.Query
	ctx  context.Context
	seed int64
	auto bool // unseeded: draw (config seed, fresh index) at execution
	done chan fuseResult
}

type fuseResult struct {
	est float64
	err error
}

var pendingPool = sync.Pool{
	New: func() any { return &pendingEstimate{done: make(chan fuseResult, 1)} },
}

// fuser coalesces single-query requests addressed to one model name. The
// registry entry is resolved per flush, not per fuser, so hot swaps take
// effect on the very next batch.
type fuser struct {
	s     *Server
	model string
	queue chan *pendingEstimate

	ewma      float64      // fused-batch-size EWMA; loop goroutine only
	window    atomic.Int64 // current adaptive window, ns (metrics read it)
	collected atomic.Int64 // lifetime pendings admitted to a batch (tests poll it)
}

// fuserFor returns the model's fuser, starting its loop on first use.
func (s *Server) fuserFor(model string) *fuser {
	if f, ok := s.fusers.Load(model); ok {
		return f.(*fuser)
	}
	f := &fuser{
		s:     s,
		model: model,
		queue: make(chan *pendingEstimate, s.cfg.FuseQueue),
		ewma:  1,
	}
	// Start fully open: the first flushes under a fresh burst fuse
	// aggressively, and a trickle load decays the window to zero within a
	// few flushes (see adapt).
	f.window.Store(int64(s.cfg.FuseWindow))
	if actual, loaded := s.fusers.LoadOrStore(model, f); loaded {
		return actual.(*fuser)
	}
	go f.run()
	return f
}

// coalesce submits one single-query estimate to the model's fuser and waits
// for its fused result. seed == nil requests an independent unseeded sample
// (Estimate semantics); a non-nil seed reproduces EstimateSeededIndexed(q,
// *seed, 0) exactly.
func (s *Server) coalesce(ctx context.Context, model string, q query.Query, seed *int64) (float64, error) {
	// The handler resolved the model before calling us (404 fast path); the
	// flush re-resolves so it always serves the freshest hot-swapped entry.
	p := pendingPool.Get().(*pendingEstimate)
	p.q = q
	p.ctx = ctx
	if seed != nil {
		p.seed, p.auto = *seed, false
	} else {
		p.seed, p.auto = 0, true
	}
	f := s.fuserFor(model)
	select {
	case f.queue <- p:
	default:
		pendingPool.Put(p)
		s.metrics.coalesceRejected.Add(1)
		return 0, errSaturated
	}
	select {
	case res := <-p.done:
		p.q = query.Query{} // drop references before pooling
		p.ctx = nil
		pendingPool.Put(p)
		return res.est, res.err
	case <-s.closing:
		// The pending stays un-pooled: the fuser may still write its done
		// channel after we stop listening.
		return 0, errClosing
	case <-ctx.Done():
		// Deadline expired (or the client hung up) while queued or fused.
		// The pending stays un-pooled for the same reason as above; the
		// fused item carries ctx, so its sampling stops cooperatively too.
		return 0, ctx.Err()
	}
}

// run is the fuser loop: block for the first pending, drain opportunistically,
// then hold the batch open for the adaptive window (or until full), flush,
// repeat. The flush runs inline — arrivals during a flush buffer in the
// queue and form the next batch, which is exactly the pipelining that keeps
// sessions busy without oversubscribing the kernels.
func (f *fuser) run() {
	// Blast-radius containment: a panic anywhere in the loop (the estimate
	// itself is additionally guarded in flush) restarts the fuser goroutine
	// instead of leaving the model with a dead coalescer — queued requests
	// keep their place and the next iteration drains them.
	defer func() {
		if r := recover(); r != nil {
			f.s.metrics.panicsTotal.Add(1)
			select {
			case <-f.s.closing:
			default:
				go f.run()
			}
		}
	}()
	maxBatch := f.s.cfg.FuseMaxBatch
	batch := make([]*pendingEstimate, 0, maxBatch)
	items := make([]core.BatchItem, 0, maxBatch)
	for {
		select {
		case p := <-f.queue:
			batch = append(batch[:0], p)
			f.collected.Add(1)
		case <-f.s.closing:
			return
		}
		// Opportunistic non-blocking drain: whatever queued while the
		// previous flush ran fuses immediately, no window needed.
	drain:
		for len(batch) < maxBatch {
			select {
			case p := <-f.queue:
				batch = append(batch, p)
				f.collected.Add(1)
			default:
				break drain
			}
		}
		// Hold the batch open for the adaptive window to give concurrent
		// requests a chance to fuse. Skipped entirely when the window has
		// decayed to zero (idle) or the batch is already full.
		if w := time.Duration(f.window.Load()); w > 0 && len(batch) < maxBatch {
			timer := f.s.cfg.Clock.After(w)
		collect:
			for len(batch) < maxBatch {
				select {
				case p := <-f.queue:
					batch = append(batch, p)
					f.collected.Add(1)
				case <-timer:
					break collect
				case <-f.s.closing:
					f.failAll(batch, errClosing)
					return
				}
			}
		}
		f.adapt(len(batch))
		f.flush(batch, items[:0])
	}
}

// adapt updates the fused-batch-size EWMA and derives the next window:
// full budget at an EWMA of fuseAdaptRamp or more, linearly down to zero at
// an EWMA of 1 — so sustained concurrency keeps the window open while an
// idle or trickle load stops paying the latency budget within a few flushes.
func (f *fuser) adapt(batchSize int) {
	const alpha = 0.25
	f.ewma = (1-alpha)*f.ewma + alpha*float64(batchSize)
	frac := (f.ewma - 1) / (fuseAdaptRamp - 1)
	if frac < 0 {
		frac = 0
	} else if frac > 1 {
		frac = 1
	}
	f.window.Store(int64(frac * float64(f.s.cfg.FuseWindow)))
}

// flush resolves the model once, runs every pending query in a single
// EstimateItems call over the pooled sessions, and fans results back.
func (f *fuser) flush(batch []*pendingEstimate, items []core.BatchItem) {
	m := f.s.metrics
	m.fusedBatchSize.observe(float64(len(batch)))
	m.coalesceQueueDepth.observe(float64(len(f.queue)))
	m.coalesceWindow.observe(time.Duration(f.window.Load()).Seconds())

	entry, err := f.s.reg.Get(f.model)
	if err != nil {
		f.failAll(batch, err)
		return
	}
	for _, p := range batch {
		items = append(items, core.BatchItem{Query: p.q, Seed: p.seed, Auto: p.auto, Ctx: p.ctx})
	}
	ests, errs, panicErr := f.estimateItemsSafe(entry, items)
	if panicErr != nil {
		f.failAll(batch, panicErr)
		return
	}
	for i, p := range batch {
		res := fuseResult{est: ests[i], err: errs[i]}
		if res.err == nil && (math.IsNaN(res.est) || math.IsInf(res.est, 0) || res.est <= 0) {
			res.err = fmt.Errorf("%w %g", errNonFinite, res.est)
			m.nonfiniteTotal.Add(1)
		}
		p.done <- res
	}
}

// estimateItemsSafe runs the fused batch with a panic net. EstimateItems
// already converts per-item panics into positional errors; this guard is the
// second line of defense (a bug in EstimateItems itself, or in the registry
// entry) and turns a would-be fuser death into one failed batch. The recover
// fires before any done channel is written, so failAll never double-answers.
func (f *fuser) estimateItemsSafe(entry *Entry, items []core.BatchItem) (ests []float64, errs []error, panicErr error) {
	defer func() {
		if r := recover(); r != nil {
			f.s.metrics.panicsTotal.Add(1)
			panicErr = fmt.Errorf("%w: %v", core.ErrEstimatePanic, r)
		}
	}()
	ests, errs = entry.Est.EstimateItems(items, f.s.estimateWorkers(0, len(items)))
	return ests, errs, nil
}

// failAll answers every pending in batch with err.
func (f *fuser) failAll(batch []*pendingEstimate, err error) {
	for _, p := range batch {
		p.done <- fuseResult{err: err}
	}
}

// estimateWorkers bounds the concurrency of one estimate call: the client's
// requested workers (0 = server default = GOMAXPROCS), capped at the core
// count and the batch size.
func (s *Server) estimateWorkers(requested, batchLen int) int {
	maxWorkers := runtime.GOMAXPROCS(0)
	workers := requested
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	if workers <= 0 || workers > maxWorkers {
		workers = maxWorkers
	}
	if workers > batchLen {
		workers = batchLen
	}
	return workers
}

// CoalesceStats is a point-in-time snapshot of one model's fuser, surfaced
// on /metrics.
type CoalesceStats struct {
	Model      string
	QueueDepth int           // pendings waiting right now
	QueueCap   int           // admission-control bound
	Window     time.Duration // current adaptive collection window
}

// coalesceStats snapshots every active fuser, sorted by model name later by
// the metrics renderer (fusers iterates in map order).
func (s *Server) coalesceStats() []CoalesceStats {
	var out []CoalesceStats
	s.fusers.Range(func(k, v any) bool {
		f := v.(*fuser)
		out = append(out, CoalesceStats{
			Model:      k.(string),
			QueueDepth: len(f.queue),
			QueueCap:   cap(f.queue),
			Window:     time.Duration(f.window.Load()),
		})
		return true
	})
	return out
}
