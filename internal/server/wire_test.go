package server_test

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"

	"neurocard/internal/query"
	"neurocard/internal/server"
	"neurocard/internal/value"
)

// postBin sends a binary estimate frame and returns the response.
func postBin(t *testing.T, url string, frame []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, server.ContentTypeBinary, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// TestBinaryWireRoundTrip: encode → decode reproduces requests and responses
// exactly, for every flag combination.
func TestBinaryWireRoundTrip(t *testing.T) {
	queries := []query.Query{richQuery(), {Tables: []string{"B"}}}
	seed := int64(-7) // negative seeds must survive the unsigned encoding

	for _, tc := range []struct {
		name string
		seed *int64
	}{{"seeded", &seed}, {"unseeded", nil}} {
		frame := server.AppendBinRequest(nil, "m", tc.seed, queries)
		req, err := server.DecodeBinRequest(frame)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if req.Model != "m" || len(req.Queries) != len(queries) {
			t.Fatalf("%s: decoded %+v", tc.name, req)
		}
		if (req.Seed == nil) != (tc.seed == nil) || (req.Seed != nil && *req.Seed != *tc.seed) {
			t.Fatalf("%s: seed %v, want %v", tc.name, req.Seed, tc.seed)
		}
		for i := range queries {
			if req.Queries[i].String() != queries[i].String() {
				t.Fatalf("%s query %d: %s != %s", tc.name, i, req.Queries[i], queries[i])
			}
		}
	}

	for _, tc := range []struct {
		name string
		errs []string
	}{{"ok", nil}, {"partial-errors", []string{"", "query 1 failed"}}} {
		ests := []float64{1234.5678, math.SmallestNonzeroFloat64}
		frame := server.AppendBinResponse(nil, "m", ests, tc.errs, false)
		resp, err := server.DecodeBinResponse(frame)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if resp.Model != "m" || len(resp.Ests) != 2 {
			t.Fatalf("%s: decoded %+v", tc.name, resp)
		}
		for i := range ests {
			if resp.Ests[i] != ests[i] { // bit-exact, not approximate
				t.Fatalf("%s est %d: %.17g != %.17g", tc.name, i, resp.Ests[i], ests[i])
			}
		}
		if (resp.Errs == nil) != (tc.errs == nil) {
			t.Fatalf("%s: errs %v, want %v", tc.name, resp.Errs, tc.errs)
		}
		for i := range tc.errs {
			if resp.Errs[i] != tc.errs[i] {
				t.Fatalf("%s err %d: %q != %q", tc.name, i, resp.Errs[i], tc.errs[i])
			}
		}
	}
}

// TestBinaryWireRejectsCorruption: bad magic, versions, flags, truncations,
// and trailing garbage all fail cleanly.
func TestBinaryWireRejectsCorruption(t *testing.T) {
	good := server.AppendBinRequest(nil, "m", nil, []query.Query{{Tables: []string{"A"}}})

	if _, err := server.DecodeBinRequest([]byte("XYZ\x01\x00rest")); err == nil {
		t.Error("bad magic accepted")
	}
	vbad := bytes.Clone(good)
	vbad[3] = 99
	if _, err := server.DecodeBinRequest(vbad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: %v", err)
	}
	fbad := bytes.Clone(good)
	fbad[4] = 0x80
	if _, err := server.DecodeBinRequest(fbad); err == nil || !strings.Contains(err.Error(), "flags") {
		t.Errorf("unknown flags: %v", err)
	}
	if _, err := server.DecodeBinRequest(append(bytes.Clone(good), 0x00)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing bytes: %v", err)
	}
	for n := 0; n < len(good); n++ {
		if _, err := server.DecodeBinRequest(good[:n]); err == nil {
			t.Errorf("truncation at %d/%d accepted", n, len(good))
		}
	}

	goodResp := server.AppendBinResponse(nil, "m", []float64{1, 2}, []string{"", "x"}, false)
	for n := 0; n < len(goodResp); n++ {
		if _, err := server.DecodeBinResponse(goodResp[:n]); err == nil {
			t.Errorf("response truncation at %d/%d accepted", n, len(goodResp))
		}
	}
}

// TestServeBinaryEndToEnd drives POST /v1/estimate over the binary protocol
// and checks protocol equivalence: a seeded binary single and batch return
// bit-identical estimates to their JSON counterparts, and errors on
// malformed frames stay JSON with a 400.
func TestServeBinaryEndToEnd(t *testing.T) {
	_, ts, dir := serveTest(t)
	orig := buildEstimator(t, 7, 512)
	writeCheckpoint(t, dir, "fig4", orig)
	post(t, ts.URL+"/v1/models/fig4/load", nil)

	seed := int64(1234)
	q := richQuery()

	// Single query, seeded: binary == JSON == in-process (seed, 0).
	frame := server.AppendBinRequest(nil, "", &seed, []query.Query{q})
	resp, body := postBin(t, ts.URL+"/v1/estimate", frame)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary single: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != server.ContentTypeBinary {
		t.Fatalf("binary response Content-Type = %q", ct)
	}
	bresp, err := server.DecodeBinResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if bresp.Model != "fig4" || len(bresp.Ests) != 1 || bresp.Errs != nil {
		t.Fatalf("binary single response = %+v", bresp)
	}
	want, err := orig.EstimateSeededIndexed(q, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bresp.Ests[0]-want) > 1e-9*math.Max(1, want) {
		t.Fatalf("binary single = %.17g, in-process = %.17g", bresp.Ests[0], want)
	}
	qj, err := server.EncodeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	jresp, jbody := post(t, ts.URL+"/v1/estimate", server.EstimateRequest{Query: &qj, Seed: &seed})
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("json single: %d %s", jresp.StatusCode, jbody)
	}
	var jer server.EstimateResponse
	if err := json.Unmarshal(jbody, &jer); err != nil {
		t.Fatal(err)
	}
	if *jer.Est != bresp.Ests[0] {
		t.Fatalf("protocols disagree: json %.17g, binary %.17g", *jer.Est, bresp.Ests[0])
	}

	// Batch, seeded: same equivalence, per position.
	batch := []query.Query{q, {Tables: []string{"A", "B", "C"}}, {Tables: []string{"B"}}}
	frame = server.AppendBinRequest(frame[:0], "fig4", &seed, batch)
	resp, body = postBin(t, ts.URL+"/v1/estimate", frame)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary batch: %d %s", resp.StatusCode, body)
	}
	bresp, err = server.DecodeBinResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	jqs := make([]server.QueryJSON, len(batch))
	for i, bq := range batch {
		if jqs[i], err = server.EncodeQuery(bq); err != nil {
			t.Fatal(err)
		}
	}
	jresp, jbody = post(t, ts.URL+"/v1/estimate", server.EstimateRequest{Model: "fig4", Queries: jqs, Seed: &seed})
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("json batch: %d %s", jresp.StatusCode, jbody)
	}
	if err := json.Unmarshal(jbody, &jer); err != nil {
		t.Fatal(err)
	}
	if len(bresp.Ests) != len(batch) || len(jer.Ests) != len(batch) {
		t.Fatalf("batch sizes: binary %d, json %d", len(bresp.Ests), len(jer.Ests))
	}
	for i := range batch {
		if bresp.Ests[i] != jer.Ests[i] {
			t.Fatalf("batch query %d: binary %.17g, json %.17g", i, bresp.Ests[i], jer.Ests[i])
		}
	}

	// Malformed frame: JSON error, 400.
	resp, body = postBin(t, ts.URL+"/v1/estimate", []byte("not a frame"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage frame: %d", resp.StatusCode)
	}
	var er struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Fatalf("garbage frame error body %q", body)
	}

	// Unknown model: 404.
	frame = server.AppendBinRequest(nil, "nope", nil, []query.Query{{Tables: []string{"A"}}})
	resp, _ = postBin(t, ts.URL+"/v1/estimate", frame)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: %d", resp.StatusCode)
	}
}

// TestServeBatchPositionalErrors: a well-formed batch with a failing query
// answers 200 with per-query errors aligned to positions, instead of
// poisoning its batchmates — on both protocols.
func TestServeBatchPositionalErrors(t *testing.T) {
	_, ts, dir := serveTest(t)
	writeCheckpoint(t, dir, "fig4", buildEstimator(t, 7, 256))
	post(t, ts.URL+"/v1/models/fig4/load", nil)

	seed := int64(5)
	// Query 1 references an unmodeled column: plan compilation fails for it
	// (and only it) at estimate time, after the wire decode succeeded.
	bad := query.Query{Tables: []string{"A"},
		Filters: []query.Filter{{Table: "A", Col: "nope", Op: query.OpEq, Val: value.Int(1)}}}
	batch := []query.Query{{Tables: []string{"A", "B"}}, bad, {Tables: []string{"B"}}}

	frame := server.AppendBinRequest(nil, "", &seed, batch)
	resp, body := postBin(t, ts.URL+"/v1/estimate", frame)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary partial batch: %d %s", resp.StatusCode, body)
	}
	bresp, err := server.DecodeBinResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if bresp.Errs == nil || len(bresp.Errs) != 3 {
		t.Fatalf("binary errs = %v", bresp.Errs)
	}
	if bresp.Errs[0] != "" || bresp.Errs[1] == "" || bresp.Errs[2] != "" {
		t.Fatalf("binary positional errs = %q", bresp.Errs)
	}
	if bresp.Ests[0] <= 0 || bresp.Ests[1] != 0 || bresp.Ests[2] <= 0 {
		t.Fatalf("binary positional ests = %v", bresp.Ests)
	}

	jqs := make([]server.QueryJSON, len(batch))
	for i, q := range batch {
		if jqs[i], err = server.EncodeQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	jresp, jbody := post(t, ts.URL+"/v1/estimate", server.EstimateRequest{Queries: jqs, Seed: &seed})
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("json partial batch: %d %s", jresp.StatusCode, jbody)
	}
	var jer server.EstimateResponse
	if err := json.Unmarshal(jbody, &jer); err != nil {
		t.Fatal(err)
	}
	if len(jer.Errors) != 3 || jer.Errors[0] != "" || jer.Errors[1] == "" || jer.Errors[2] != "" {
		t.Fatalf("json positional errors = %q (%s)", jer.Errors, jbody)
	}
	// The healthy queries agree across protocols.
	if jer.Ests[0] != bresp.Ests[0] || jer.Ests[2] != bresp.Ests[2] {
		t.Fatalf("healthy ests disagree: json %v, binary %v", jer.Ests, bresp.Ests)
	}
	if jer.Errors[1] != bresp.Errs[1] {
		t.Fatalf("error strings disagree: json %q, binary %q", jer.Errors[1], bresp.Errs[1])
	}
}
