// Package faultinject provides process-wide fault-injection hooks the chaos
// harness uses to prove the serving stack degrades instead of dying: injected
// panics at estimate entry, delays inside the sampling kernel loop, NaN
// estimates, and torn checkpoint writes. Hooks are compiled into the hot
// paths permanently but cost a single atomic load when disarmed — the
// default — so production serving pays nothing for them.
//
// Arming is explicit (Arm, or ArmSpec from a flag/environment string) and
// global: the daemon arms from -faults / $NEUROCARD_FAULTS at startup, tests
// arm around the block under test and defer Disarm(). Decisions are
// deterministic for a fixed Config.Seed and injection order — each roll draws
// from a splitmix64 stream indexed by an atomic counter — so a chaos run's
// fault schedule is reproducible under identical interleaving.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Config selects the faults to inject and their rates. The zero value
// injects nothing even when armed.
type Config struct {
	// Seed derives the deterministic roll stream; 0 means 1.
	Seed int64

	// EstimatePanicProb is the probability that an estimate call panics at
	// entry (point: core estimate path).
	EstimatePanicProb float64

	// KernelDelayProb is the probability that one sampling-column kernel pass
	// stalls for KernelDelay (point: progressive-sampling column loop).
	KernelDelayProb float64
	KernelDelay     time.Duration

	// EstimateNaNProb is the probability that an estimate call returns NaN
	// instead of its computed value, exercising the serving sanity guards.
	EstimateNaNProb float64

	// CheckpointTruncateProb is the probability that a checkpoint write is
	// torn: the writer fails with ErrInjectedTruncation after
	// CheckpointTruncateAt bytes (default 256), simulating a crash or full
	// disk mid-save.
	CheckpointTruncateProb float64
	CheckpointTruncateAt   int

	// JournalTornWriteProb is the probability that one ingest-journal record
	// write is torn: the writer fails with ErrInjectedJournalTear after
	// JournalTornWriteAt bytes (default 7, inside the record framing),
	// simulating a crash mid-append. The row must not be acknowledged.
	JournalTornWriteProb float64
	JournalTornWriteAt   int
}

// Stats counts the faults injected since the last Arm.
type Stats struct {
	Panics       int64
	Delays       int64
	NaNs         int64
	Truncations  int64
	JournalTears int64
}

// ErrInjectedTruncation is the error a torn checkpoint writer reports.
var ErrInjectedTruncation = errors.New("faultinject: injected checkpoint truncation")

// ErrInjectedJournalTear is the error a torn journal-record writer reports.
var ErrInjectedJournalTear = errors.New("faultinject: injected journal torn write")

// PanicValue is the value injected panics carry, so recovery layers can
// distinguish (and tests can assert) injected panics from real ones.
const PanicValue = "faultinject: injected panic"

var (
	armed atomic.Bool
	cfg   atomic.Pointer[Config]
	rolls atomic.Uint64

	panics       atomic.Int64
	delays       atomic.Int64
	nans         atomic.Int64
	truncations  atomic.Int64
	journalTears atomic.Int64
)

// Enabled reports whether fault injection is armed. This is the only check
// hot paths perform when injection is off.
func Enabled() bool { return armed.Load() }

// Arm installs c and enables injection, resetting the stats counters.
func Arm(c Config) {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CheckpointTruncateAt <= 0 {
		c.CheckpointTruncateAt = 256
	}
	if c.JournalTornWriteAt <= 0 {
		c.JournalTornWriteAt = 7
	}
	panics.Store(0)
	delays.Store(0)
	nans.Store(0)
	truncations.Store(0)
	journalTears.Store(0)
	rolls.Store(0)
	cfg.Store(&c)
	armed.Store(true)
}

// Disarm disables injection. Counters keep their values for post-run reads.
func Disarm() { armed.Store(false) }

// ReadStats returns the fault counters accumulated since the last Arm.
func ReadStats() Stats {
	return Stats{
		Panics:       panics.Load(),
		Delays:       delays.Load(),
		NaNs:         nans.Load(),
		Truncations:  truncations.Load(),
		JournalTears: journalTears.Load(),
	}
}

// roll draws the next deterministic uniform in [0, 1): a splitmix64 stream
// over (seed, atomic counter), lock-free under concurrency.
func roll(seed int64) float64 {
	n := rolls.Add(1)
	z := uint64(seed) + 0x9e3779b97f4a7c15*n
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// MaybePanicEstimate panics with PanicValue at the estimate entry point when
// armed and the roll fires. Callers guard with Enabled().
func MaybePanicEstimate() {
	c := cfg.Load()
	if c == nil || c.EstimatePanicProb <= 0 || roll(c.Seed) >= c.EstimatePanicProb {
		return
	}
	panics.Add(1)
	panic(PanicValue)
}

// MaybeDelayKernel stalls one kernel pass when armed and the roll fires.
// Callers guard with Enabled().
func MaybeDelayKernel() {
	c := cfg.Load()
	if c == nil || c.KernelDelayProb <= 0 || roll(c.Seed) >= c.KernelDelayProb {
		return
	}
	delays.Add(1)
	time.Sleep(c.KernelDelay)
}

// MaybeNaNEstimate reports whether the estimate under way should return NaN.
// Callers guard with Enabled().
func MaybeNaNEstimate() bool {
	c := cfg.Load()
	if c == nil || c.EstimateNaNProb <= 0 || roll(c.Seed) >= c.EstimateNaNProb {
		return false
	}
	nans.Add(1)
	return true
}

// WrapCheckpointWriter wraps a checkpoint writer with the torn-write fault:
// when armed and the roll fires, the writer accepts CheckpointTruncateAt
// bytes and then fails with ErrInjectedTruncation — the shape of a crash or
// ENOSPC mid-save. Otherwise it returns w unchanged.
func WrapCheckpointWriter(w io.Writer) io.Writer {
	if !armed.Load() {
		return w
	}
	c := cfg.Load()
	if c == nil || c.CheckpointTruncateProb <= 0 || roll(c.Seed) >= c.CheckpointTruncateProb {
		return w
	}
	truncations.Add(1)
	return &truncatingWriter{w: w, remaining: c.CheckpointTruncateAt}
}

// WrapJournalWriter wraps an ingest-journal record writer with the torn-write
// fault: when armed and the roll fires, the writer accepts JournalTornWriteAt
// bytes of the record and then fails with ErrInjectedJournalTear — a crash
// mid-append that leaves a partial record on disk. Otherwise it returns w
// unchanged.
func WrapJournalWriter(w io.Writer) io.Writer {
	if !armed.Load() {
		return w
	}
	c := cfg.Load()
	if c == nil || c.JournalTornWriteProb <= 0 || roll(c.Seed) >= c.JournalTornWriteProb {
		return w
	}
	journalTears.Add(1)
	return &truncatingWriter{w: w, remaining: c.JournalTornWriteAt, fail: ErrInjectedJournalTear}
}

// truncatingWriter passes through its first `remaining` bytes, then fails.
type truncatingWriter struct {
	w         io.Writer
	remaining int
	fail      error // defaults to ErrInjectedTruncation
}

func (t *truncatingWriter) failErr() error {
	if t.fail != nil {
		return t.fail
	}
	return ErrInjectedTruncation
}

func (t *truncatingWriter) Write(p []byte) (int, error) {
	if t.remaining <= 0 {
		return 0, t.failErr()
	}
	if len(p) <= t.remaining {
		n, err := t.w.Write(p)
		t.remaining -= n
		return n, err
	}
	n, err := t.w.Write(p[:t.remaining])
	t.remaining -= n
	if err == nil {
		err = t.failErr()
	}
	return n, err
}

// ParseSpec parses the flag/env arming string: comma-separated key=value
// pairs. Keys:
//
//	estimate-panic=P        panic probability per estimate call
//	kernel-delay=P:DUR      delay probability per kernel pass and its duration
//	estimate-nan=P          NaN probability per estimate call
//	ckpt-truncate=P[:N]     torn-write probability per checkpoint save,
//	                        truncating after N bytes (default 256)
//	journal-torn-write=P[:N] torn-write probability per journal append,
//	                        tearing the record after N bytes (default 7)
//	seed=S                  deterministic roll stream seed
//
// Example: "estimate-panic=0.02,kernel-delay=0.05:5ms,estimate-nan=0.01".
func ParseSpec(spec string) (Config, error) {
	var c Config
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Config{}, fmt.Errorf("faultinject: %q is not key=value", part)
		}
		switch key {
		case "seed":
			s, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("faultinject: seed %q: %w", val, err)
			}
			c.Seed = s
		case "estimate-panic":
			p, err := parseProb(val)
			if err != nil {
				return Config{}, fmt.Errorf("faultinject: estimate-panic: %w", err)
			}
			c.EstimatePanicProb = p
		case "estimate-nan":
			p, err := parseProb(val)
			if err != nil {
				return Config{}, fmt.Errorf("faultinject: estimate-nan: %w", err)
			}
			c.EstimateNaNProb = p
		case "kernel-delay":
			probStr, durStr, ok := strings.Cut(val, ":")
			if !ok {
				return Config{}, fmt.Errorf("faultinject: kernel-delay wants P:DURATION, got %q", val)
			}
			p, err := parseProb(probStr)
			if err != nil {
				return Config{}, fmt.Errorf("faultinject: kernel-delay: %w", err)
			}
			d, err := time.ParseDuration(durStr)
			if err != nil || d <= 0 {
				return Config{}, fmt.Errorf("faultinject: kernel-delay duration %q invalid", durStr)
			}
			c.KernelDelayProb, c.KernelDelay = p, d
		case "ckpt-truncate":
			probStr, atStr, hasAt := strings.Cut(val, ":")
			p, err := parseProb(probStr)
			if err != nil {
				return Config{}, fmt.Errorf("faultinject: ckpt-truncate: %w", err)
			}
			c.CheckpointTruncateProb = p
			if hasAt {
				n, err := strconv.Atoi(atStr)
				if err != nil || n < 0 {
					return Config{}, fmt.Errorf("faultinject: ckpt-truncate offset %q invalid", atStr)
				}
				c.CheckpointTruncateAt = n
			}
		case "journal-torn-write":
			probStr, atStr, hasAt := strings.Cut(val, ":")
			p, err := parseProb(probStr)
			if err != nil {
				return Config{}, fmt.Errorf("faultinject: journal-torn-write: %w", err)
			}
			c.JournalTornWriteProb = p
			if hasAt {
				n, err := strconv.Atoi(atStr)
				if err != nil || n < 0 {
					return Config{}, fmt.Errorf("faultinject: journal-torn-write offset %q invalid", atStr)
				}
				c.JournalTornWriteAt = n
			}
		default:
			return Config{}, fmt.Errorf("faultinject: unknown fault %q (want estimate-panic, kernel-delay, estimate-nan, ckpt-truncate, journal-torn-write, seed)", key)
		}
	}
	return c, nil
}

// parseProb parses a probability in [0, 1].
func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %q must be in [0, 1]", s)
	}
	return p, nil
}
