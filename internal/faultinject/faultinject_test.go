package faultinject

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsInert(t *testing.T) {
	Disarm()
	if Enabled() {
		t.Fatal("Enabled() true without Arm")
	}
	var buf bytes.Buffer
	if w := WrapCheckpointWriter(&buf); w != &buf {
		t.Fatal("disarmed WrapCheckpointWriter must return the writer unchanged")
	}
}

func TestPanicInjection(t *testing.T) {
	Arm(Config{Seed: 7, EstimatePanicProb: 1})
	defer Disarm()
	defer func() {
		r := recover()
		if r != PanicValue {
			t.Fatalf("recovered %v, want %q", r, PanicValue)
		}
		if got := ReadStats().Panics; got != 1 {
			t.Fatalf("Panics = %d, want 1", got)
		}
	}()
	MaybePanicEstimate()
	t.Fatal("MaybePanicEstimate with probability 1 did not panic")
}

func TestNaNAndDelayRates(t *testing.T) {
	Arm(Config{Seed: 3, EstimateNaNProb: 0.5, KernelDelayProb: 1, KernelDelay: time.Microsecond})
	defer Disarm()
	fired := 0
	for i := 0; i < 1000; i++ {
		if MaybeNaNEstimate() {
			fired++
		}
	}
	if fired < 350 || fired > 650 {
		t.Fatalf("NaN injection fired %d/1000 times at p=0.5", fired)
	}
	MaybeDelayKernel()
	st := ReadStats()
	if st.NaNs != int64(fired) || st.Delays != 1 {
		t.Fatalf("stats = %+v, want NaNs=%d Delays=1", st, fired)
	}
}

func TestTruncatingWriter(t *testing.T) {
	Arm(Config{Seed: 1, CheckpointTruncateProb: 1, CheckpointTruncateAt: 10})
	defer Disarm()
	var buf bytes.Buffer
	w := WrapCheckpointWriter(&buf)
	if w == &buf {
		t.Fatal("armed truncation must wrap the writer")
	}
	n, err := w.Write(make([]byte, 8))
	if n != 8 || err != nil {
		t.Fatalf("first write = (%d, %v), want (8, nil)", n, err)
	}
	n, err = w.Write(make([]byte, 8))
	if n != 2 || !errors.Is(err, ErrInjectedTruncation) {
		t.Fatalf("overflow write = (%d, %v), want (2, ErrInjectedTruncation)", n, err)
	}
	if _, err := w.Write([]byte{1}); !errors.Is(err, ErrInjectedTruncation) {
		t.Fatalf("post-truncation write error = %v", err)
	}
	if buf.Len() != 10 {
		t.Fatalf("underlying writer got %d bytes, want 10", buf.Len())
	}
	if got := ReadStats().Truncations; got != 1 {
		t.Fatalf("Truncations = %d, want 1", got)
	}
}

func TestParseSpec(t *testing.T) {
	c, err := ParseSpec("estimate-panic=0.02, kernel-delay=0.05:5ms ,estimate-nan=0.01,ckpt-truncate=0.5:128,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed:                   9,
		EstimatePanicProb:      0.02,
		KernelDelayProb:        0.05,
		KernelDelay:            5 * time.Millisecond,
		EstimateNaNProb:        0.01,
		CheckpointTruncateProb: 0.5,
		CheckpointTruncateAt:   128,
	}
	if c != want {
		t.Fatalf("ParseSpec = %+v, want %+v", c, want)
	}
	for _, bad := range []string{"estimate-panic=2", "kernel-delay=0.1", "bogus=1", "estimate-panic", "kernel-delay=0.1:-3ms"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	if c, err := ParseSpec(""); err != nil || c != (Config{}) {
		t.Fatalf("empty spec = (%+v, %v), want zero config", c, err)
	}
}
