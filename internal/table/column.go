// Package table implements the column-store substrate NeuroCard is built on:
// typed columns with sorted dictionaries, tables with lazily built join-key
// indexes, and partition-friendly filtering that preserves dictionary
// stability (so a model trained on one snapshot can be incrementally updated
// after new data is ingested).
//
// Every column is dictionary-encoded. Dictionary ID 0 is reserved for NULL;
// IDs 1..n map to the distinct non-NULL values in sorted order, so a value
// range always corresponds to a contiguous ID interval. This property is what
// lets lossless column factorization (internal/factor) translate range
// filters into per-subcolumn token regions.
package table

import (
	"fmt"
	"sort"

	"neurocard/internal/value"
)

// NullID is the dictionary ID reserved for NULL in every column.
const NullID int32 = 0

// Column is an immutable dictionary-encoded column.
type Column struct {
	name string
	kind value.Kind // KindInt or KindStr

	ids []int32 // per-row dictionary IDs; NullID marks NULL

	// Exactly one of the dictionaries is populated, matching kind.
	// Both are sorted ascending; dictionary ID i+1 maps to dict[i].
	intDict []int64
	strDict []string
}

// Name returns the column name.
func (c *Column) Name() string { return c.name }

// Kind returns the value kind (KindInt or KindStr).
func (c *Column) Kind() value.Kind { return c.kind }

// NumRows returns the number of rows.
func (c *Column) NumRows() int { return len(c.ids) }

// DictSize returns the number of dictionary entries including NULL, i.e. the
// token domain size used by density models: NULL plus each distinct value.
func (c *Column) DictSize() int {
	if c.kind == value.KindInt {
		return len(c.intDict) + 1
	}
	return len(c.strDict) + 1
}

// ID returns the dictionary ID of the given row.
func (c *Column) ID(row int) int32 { return c.ids[row] }

// IDs exposes the backing ID slice. Callers must not modify it.
func (c *Column) IDs() []int32 { return c.ids }

// Value decodes the row into a Value.
func (c *Column) Value(row int) value.Value { return c.ValueForID(c.ids[row]) }

// ValueForID decodes a dictionary ID into a Value.
func (c *Column) ValueForID(id int32) value.Value {
	if id == NullID {
		return value.Null
	}
	if c.kind == value.KindInt {
		return value.Int(c.intDict[id-1])
	}
	return value.Str(c.strDict[id-1])
}

// Int returns the integer at row and whether it is non-NULL. It panics on
// string columns.
func (c *Column) Int(row int) (int64, bool) {
	if c.kind != value.KindInt {
		panic(fmt.Sprintf("table: column %q is not an int column", c.name))
	}
	id := c.ids[row]
	if id == NullID {
		return 0, false
	}
	return c.intDict[id-1], true
}

// IDForValue returns the dictionary ID of v, or (0, false) if v does not
// occur in the column. NULL maps to (NullID, true).
func (c *Column) IDForValue(v value.Value) (int32, bool) {
	if v.IsNull() {
		return NullID, true
	}
	if v.K != c.kind {
		return 0, false
	}
	if c.kind == value.KindInt {
		i := sort.Search(len(c.intDict), func(i int) bool { return c.intDict[i] >= v.I })
		if i < len(c.intDict) && c.intDict[i] == v.I {
			return int32(i) + 1, true
		}
		return 0, false
	}
	i := sort.Search(len(c.strDict), func(i int) bool { return c.strDict[i] >= v.S })
	if i < len(c.strDict) && c.strDict[i] == v.S {
		return int32(i) + 1, true
	}
	return 0, false
}

// LowerBoundID returns the smallest non-NULL dictionary ID whose value is
// >= v, or DictSize() if all values are smaller. It is the basis for
// translating range predicates into ID intervals.
func (c *Column) LowerBoundID(v value.Value) int32 {
	if v.K != c.kind {
		panic(fmt.Sprintf("table: %s bound on %s column %q", v.K, c.kind, c.name))
	}
	if c.kind == value.KindInt {
		return int32(sort.Search(len(c.intDict), func(i int) bool { return c.intDict[i] >= v.I })) + 1
	}
	return int32(sort.Search(len(c.strDict), func(i int) bool { return c.strDict[i] >= v.S })) + 1
}

// UpperBoundID returns the smallest non-NULL dictionary ID whose value is
// strictly > v, or DictSize() if none exists.
func (c *Column) UpperBoundID(v value.Value) int32 {
	if v.K != c.kind {
		panic(fmt.Sprintf("table: %s bound on %s column %q", v.K, c.kind, c.name))
	}
	if c.kind == value.KindInt {
		return int32(sort.Search(len(c.intDict), func(i int) bool { return c.intDict[i] > v.I })) + 1
	}
	return int32(sort.Search(len(c.strDict), func(i int) bool { return c.strDict[i] > v.S })) + 1
}

// MinValue and MaxValue return the smallest and largest non-NULL values.
// They panic on columns with no non-NULL values.
func (c *Column) MinValue() value.Value {
	if c.DictSize() <= 1 {
		panic(fmt.Sprintf("table: column %q has no non-NULL values", c.name))
	}
	return c.ValueForID(1)
}

// MaxValue returns the largest non-NULL value in the column.
func (c *Column) MaxValue() value.Value {
	n := c.DictSize()
	if n <= 1 {
		panic(fmt.Sprintf("table: column %q has no non-NULL values", c.name))
	}
	return c.ValueForID(int32(n - 1))
}

// withIDs returns a column sharing this column's dictionary but holding a
// different row set. Used by Table.Filter to build snapshots whose dictionary
// IDs remain stable across partitions.
func (c *Column) withIDs(ids []int32) *Column {
	return &Column{name: c.name, kind: c.kind, ids: ids, intDict: c.intDict, strDict: c.strDict}
}

// IntDict returns the sorted non-NULL integer dictionary (nil for string
// columns). Callers must not modify the slice. Exposed for serialization.
func (c *Column) IntDict() []int64 { return c.intDict }

// StrDict returns the sorted non-NULL string dictionary (nil for int
// columns). Callers must not modify the slice. Exposed for serialization.
func (c *Column) StrDict() []string { return c.strDict }

// NewColumnFromRaw reconstructs a column from its serialized parts: per-row
// dictionary IDs (NullID for NULL) and exactly one sorted dictionary matching
// kind. It validates what deserialization cannot take on faith — dictionary
// sort order and ID bounds — so a corrupted checkpoint fails here instead of
// panicking later inside inference.
func NewColumnFromRaw(name string, kind value.Kind, ids []int32, intDict []int64, strDict []string) (*Column, error) {
	var dictLen int
	switch kind {
	case value.KindInt:
		if strDict != nil {
			return nil, fmt.Errorf("table: raw column %q: int column carries a string dictionary", name)
		}
		if !sort.SliceIsSorted(intDict, func(i, j int) bool { return intDict[i] < intDict[j] }) {
			return nil, fmt.Errorf("table: raw column %q: int dictionary not sorted", name)
		}
		for i := 1; i < len(intDict); i++ {
			if intDict[i] == intDict[i-1] {
				return nil, fmt.Errorf("table: raw column %q: duplicate dictionary value %d", name, intDict[i])
			}
		}
		dictLen = len(intDict)
	case value.KindStr:
		if intDict != nil {
			return nil, fmt.Errorf("table: raw column %q: string column carries an int dictionary", name)
		}
		if !sort.StringsAreSorted(strDict) {
			return nil, fmt.Errorf("table: raw column %q: string dictionary not sorted", name)
		}
		for i := 1; i < len(strDict); i++ {
			if strDict[i] == strDict[i-1] {
				return nil, fmt.Errorf("table: raw column %q: duplicate dictionary value %q", name, strDict[i])
			}
		}
		dictLen = len(strDict)
	default:
		return nil, fmt.Errorf("table: raw column %q: invalid kind %s", name, kind)
	}
	for row, id := range ids {
		if id < 0 || int(id) > dictLen {
			return nil, fmt.Errorf("table: raw column %q: row %d has dictionary ID %d outside [0, %d]", name, row, id, dictLen)
		}
	}
	return &Column{name: name, kind: kind, ids: ids, intDict: intDict, strDict: strDict}, nil
}
