package table

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"neurocard/internal/value"
)

func buildSample(t *testing.T) *Table {
	t.Helper()
	b := MustBuilder("movies", []ColSpec{
		{Name: "id", Kind: value.KindInt},
		{Name: "year", Kind: value.KindInt},
		{Name: "code", Kind: value.KindStr},
	})
	b.MustAppend(value.Int(1), value.Int(1990), value.Str("b"))
	b.MustAppend(value.Int(2), value.Int(1985), value.Null)
	b.MustAppend(value.Int(3), value.Int(1990), value.Str("a"))
	b.MustAppend(value.Int(4), value.Null, value.Str("c"))
	return b.MustBuild()
}

func TestBuildBasics(t *testing.T) {
	tbl := buildSample(t)
	if tbl.NumRows() != 4 || tbl.NumCols() != 3 {
		t.Fatalf("got %d rows, %d cols", tbl.NumRows(), tbl.NumCols())
	}
	if tbl.Name() != "movies" {
		t.Errorf("Name = %q", tbl.Name())
	}
	if tbl.Col("nope") != nil {
		t.Error("Col(nope) != nil")
	}
}

func TestDictionarySortedAndNullZero(t *testing.T) {
	tbl := buildSample(t)
	year := tbl.MustCol("year")
	// Distinct years: 1985, 1990 (+NULL) → DictSize 3.
	if got := year.DictSize(); got != 3 {
		t.Fatalf("year DictSize = %d, want 3", got)
	}
	if year.ID(3) != NullID {
		t.Errorf("NULL year row has ID %d", year.ID(3))
	}
	// Sorted dictionary: 1985 → ID 1, 1990 → ID 2.
	if id, ok := year.IDForValue(value.Int(1985)); !ok || id != 1 {
		t.Errorf("IDForValue(1985) = %d,%v", id, ok)
	}
	if id, ok := year.IDForValue(value.Int(1990)); !ok || id != 2 {
		t.Errorf("IDForValue(1990) = %d,%v", id, ok)
	}
	code := tbl.MustCol("code")
	// Sorted strings a,b,c → IDs 1,2,3.
	for i, s := range []string{"a", "b", "c"} {
		if id, ok := code.IDForValue(value.Str(s)); !ok || id != int32(i+1) {
			t.Errorf("IDForValue(%q) = %d,%v", s, id, ok)
		}
	}
}

func TestValueRoundTrip(t *testing.T) {
	tbl := buildSample(t)
	want := [][]value.Value{
		{value.Int(1), value.Int(1990), value.Str("b")},
		{value.Int(2), value.Int(1985), value.Null},
		{value.Int(3), value.Int(1990), value.Str("a")},
		{value.Int(4), value.Null, value.Str("c")},
	}
	for r := range want {
		got := tbl.Row(r)
		for c := range want[r] {
			if !got[c].Equal(want[r][c]) {
				t.Errorf("row %d col %d: got %v want %v", r, c, got[c], want[r][c])
			}
		}
	}
}

func TestIDForValueMissing(t *testing.T) {
	tbl := buildSample(t)
	year := tbl.MustCol("year")
	if _, ok := year.IDForValue(value.Int(2000)); ok {
		t.Error("found ID for absent value")
	}
	if _, ok := year.IDForValue(value.Str("1990")); ok {
		t.Error("found ID for mismatched kind")
	}
	if id, ok := year.IDForValue(value.Null); !ok || id != NullID {
		t.Errorf("IDForValue(NULL) = %d,%v", id, ok)
	}
}

func TestBounds(t *testing.T) {
	tbl := buildSample(t)
	year := tbl.MustCol("year") // dict: [1985, 1990]
	cases := []struct {
		v      int64
		lb, ub int32 // LowerBoundID, UpperBoundID
	}{
		{1980, 1, 1},
		{1985, 1, 2},
		{1987, 2, 2},
		{1990, 2, 3},
		{1999, 3, 3},
	}
	for _, c := range cases {
		if got := year.LowerBoundID(value.Int(c.v)); got != c.lb {
			t.Errorf("LowerBoundID(%d) = %d, want %d", c.v, got, c.lb)
		}
		if got := year.UpperBoundID(value.Int(c.v)); got != c.ub {
			t.Errorf("UpperBoundID(%d) = %d, want %d", c.v, got, c.ub)
		}
	}
	if got := year.MinValue(); !got.Equal(value.Int(1985)) {
		t.Errorf("MinValue = %v", got)
	}
	if got := year.MaxValue(); !got.Equal(value.Int(1990)) {
		t.Errorf("MaxValue = %v", got)
	}
}

func TestIndex(t *testing.T) {
	b := MustBuilder("t", []ColSpec{{Name: "k", Kind: value.KindInt}})
	for _, v := range []int64{5, 3, 5, 7, 5} {
		b.MustAppend(value.Int(v))
	}
	b.MustAppend(value.Null)
	tbl := b.MustBuild()
	ix, err := tbl.Index("k")
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Rows(5); len(got) != 3 {
		t.Errorf("Rows(5) = %v", got)
	}
	if got := ix.Rows(3); len(got) != 1 || got[0] != 1 {
		t.Errorf("Rows(3) = %v", got)
	}
	if ix.Rows(99) != nil {
		t.Error("Rows(99) != nil")
	}
	if ix.NumKeys() != 3 {
		t.Errorf("NumKeys = %d (NULL must be excluded)", ix.NumKeys())
	}
	// Cached: same pointer on second call.
	ix2, _ := tbl.Index("k")
	if ix2 != ix {
		t.Error("index not cached")
	}
}

func TestIndexErrors(t *testing.T) {
	tbl := buildSample(t)
	if _, err := tbl.Index("code"); err == nil {
		t.Error("Index on string column did not fail")
	}
	if _, err := tbl.Index("missing"); err == nil {
		t.Error("Index on missing column did not fail")
	}
}

func TestFanouts(t *testing.T) {
	b := MustBuilder("t", []ColSpec{{Name: "k", Kind: value.KindInt}})
	for _, v := range []int64{5, 3, 5, 7, 5} {
		b.MustAppend(value.Int(v))
	}
	b.MustAppend(value.Null)
	tbl := b.MustBuild()
	f, err := tbl.Fanouts("k")
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{3, 1, 3, 1, 3, 1} // NULL row gets fanout 1
	for i := range want {
		if f[i] != want[i] {
			t.Errorf("fanout[%d] = %d, want %d", i, f[i], want[i])
		}
	}
}

func TestFilterPreservesDictionary(t *testing.T) {
	tbl := buildSample(t)
	sub := tbl.Filter(func(row int) bool { return row%2 == 0 }) // rows 0, 2
	if sub.NumRows() != 2 {
		t.Fatalf("filtered rows = %d", sub.NumRows())
	}
	// Dictionary stability: 1990 keeps ID 2 even though 1985 is gone.
	if id, ok := sub.MustCol("year").IDForValue(value.Int(1990)); !ok || id != 2 {
		t.Errorf("post-filter IDForValue(1990) = %d,%v", id, ok)
	}
	if id, ok := sub.MustCol("year").IDForValue(value.Int(1985)); !ok || id != 1 {
		t.Errorf("dictionary must retain filtered-out values: got %d,%v", id, ok)
	}
	if got := sub.MustCol("id").Value(1); !got.Equal(value.Int(3)) {
		t.Errorf("filtered row 1 id = %v", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("t", nil); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := NewBuilder("t", []ColSpec{{Name: "a", Kind: value.KindInt}, {Name: "a", Kind: value.KindInt}}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewBuilder("t", []ColSpec{{Name: "a", Kind: value.KindNull}}); err == nil {
		t.Error("null kind accepted")
	}
	b := MustBuilder("t", []ColSpec{{Name: "a", Kind: value.KindInt}})
	if err := b.Append(value.Int(1), value.Int(2)); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := b.Append(value.Str("x")); err == nil {
		t.Error("kind mismatch accepted")
	}
}

func TestEmptyTable(t *testing.T) {
	b := MustBuilder("t", []ColSpec{{Name: "a", Kind: value.KindInt}})
	tbl := b.MustBuild()
	if tbl.NumRows() != 0 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if tbl.MustCol("a").DictSize() != 1 {
		t.Errorf("empty column DictSize = %d, want 1 (NULL only)", tbl.MustCol("a").DictSize())
	}
	ix, err := tbl.Index("a")
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumKeys() != 0 {
		t.Error("empty index has keys")
	}
}

// Property: for any multiset of int64 values, building a column and decoding
// every row round-trips, and dictionary IDs are order-isomorphic to values.
func TestDictionaryRoundTripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		b := MustBuilder("t", []ColSpec{{Name: "v", Kind: value.KindInt}})
		for _, v := range vals {
			b.MustAppend(value.Int(v))
		}
		tbl := b.MustBuild()
		c := tbl.MustCol("v")
		for i, v := range vals {
			if got := c.Value(i); !got.Equal(value.Int(v)) {
				return false
			}
		}
		// Order isomorphism.
		for i := 0; i+1 < len(vals); i++ {
			a, bb := c.ID(i), c.ID(i+1)
			va, vb := vals[i], vals[i+1]
			if (a < bb) != (va < vb) || (a == bb) != (va == vb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: LowerBoundID/UpperBoundID agree with a linear scan of the sorted
// dictionary for random probe values.
func TestBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 100; iter++ {
		n := 1 + rng.Intn(30)
		b := MustBuilder("t", []ColSpec{{Name: "v", Kind: value.KindInt}})
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(50))
			b.MustAppend(value.Int(vals[i]))
		}
		c := b.MustBuild().MustCol("v")
		dict := make([]int64, 0, n)
		seen := map[int64]bool{}
		for _, v := range vals {
			if !seen[v] {
				seen[v] = true
				dict = append(dict, v)
			}
		}
		sort.Slice(dict, func(i, j int) bool { return dict[i] < dict[j] })
		probe := int64(rng.Intn(60)) - 5
		wantLB := int32(len(dict)) + 1
		for i, v := range dict {
			if v >= probe {
				wantLB = int32(i) + 1
				break
			}
		}
		wantUB := int32(len(dict)) + 1
		for i, v := range dict {
			if v > probe {
				wantUB = int32(i) + 1
				break
			}
		}
		if got := c.LowerBoundID(value.Int(probe)); got != wantLB {
			t.Fatalf("LowerBoundID(%d) = %d, want %d (dict %v)", probe, got, wantLB, dict)
		}
		if got := c.UpperBoundID(value.Int(probe)); got != wantUB {
			t.Fatalf("UpperBoundID(%d) = %d, want %d (dict %v)", probe, got, wantUB, dict)
		}
	}
}
