package table

import (
	"fmt"
	"sync"

	"neurocard/internal/value"
)

// Table is an immutable collection of equal-length columns plus lazily built
// join-key indexes. Tables are safe for concurrent use after construction.
type Table struct {
	name   string
	cols   []*Column
	byName map[string]int
	nrows  int

	mu      sync.Mutex
	indexes map[string]*Index
	fanouts map[string][]int32
}

func newTable(name string, cols []*Column) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("table %q: no columns", name)
	}
	t := &Table{
		name:    name,
		cols:    cols,
		byName:  make(map[string]int, len(cols)),
		nrows:   cols[0].NumRows(),
		indexes: make(map[string]*Index),
		fanouts: make(map[string][]int32),
	}
	for i, c := range cols {
		if c.NumRows() != t.nrows {
			return nil, fmt.Errorf("table %q: column %q has %d rows, want %d", name, c.Name(), c.NumRows(), t.nrows)
		}
		if _, dup := t.byName[c.Name()]; dup {
			return nil, fmt.Errorf("table %q: duplicate column %q", name, c.Name())
		}
		t.byName[c.Name()] = i
	}
	return t, nil
}

// NewFromColumns assembles a table directly from reconstructed columns
// (checkpoint restore). The same invariants as Builder.Build are enforced:
// at least one column, equal row counts, unique names.
func NewFromColumns(name string, cols []*Column) (*Table, error) {
	return newTable(name, cols)
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.nrows }

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.cols) }

// Columns returns the columns in declaration order. Callers must not modify
// the slice.
func (t *Table) Columns() []*Column { return t.cols }

// Col returns the named column, or nil if absent.
func (t *Table) Col(name string) *Column {
	i, ok := t.byName[name]
	if !ok {
		return nil
	}
	return t.cols[i]
}

// MustCol returns the named column or panics. Use where schema validation has
// already established existence.
func (t *Table) MustCol(name string) *Column {
	c := t.Col(name)
	if c == nil {
		panic(fmt.Sprintf("table %q: no column %q", t.name, name))
	}
	return c
}

// Row decodes all columns of a row. Intended for tests and tooling, not hot
// paths.
func (t *Table) Row(row int) []value.Value {
	out := make([]value.Value, len(t.cols))
	for i, c := range t.cols {
		out[i] = c.Value(row)
	}
	return out
}

// Index returns the join-key index for an int column, building and caching it
// on first use. The index maps each non-NULL key value to the rows holding
// it. It returns an error for unknown or non-int columns.
func (t *Table) Index(col string) (*Index, error) {
	c := t.Col(col)
	if c == nil {
		return nil, fmt.Errorf("table %q: no column %q", t.name, col)
	}
	if c.Kind() != value.KindInt {
		return nil, fmt.Errorf("table %q: join key column %q must be int, got %s", t.name, col, c.Kind())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ix, ok := t.indexes[col]; ok {
		return ix, nil
	}
	ix := buildIndex(c)
	t.indexes[col] = ix
	return ix, nil
}

// Fanouts returns, for each row, the frequency of that row's value within the
// given column (the paper's F_{T.k} virtual column), with 1 for NULL rows.
// The result is cached.
func (t *Table) Fanouts(col string) ([]int32, error) {
	t.mu.Lock()
	if f, ok := t.fanouts[col]; ok {
		t.mu.Unlock()
		return f, nil
	}
	t.mu.Unlock()

	ix, err := t.Index(col)
	if err != nil {
		return nil, err
	}
	c := t.MustCol(col)
	f := make([]int32, t.nrows)
	for row := 0; row < t.nrows; row++ {
		if v, ok := c.Int(row); ok {
			f[row] = int32(len(ix.Rows(v)))
		} else {
			f[row] = 1
		}
	}
	t.mu.Lock()
	t.fanouts[col] = f
	t.mu.Unlock()
	return f, nil
}

// Filter returns a new table holding only the rows for which keep returns
// true. Columns share their dictionaries with the original, so dictionary
// IDs (and therefore model encodings) remain stable — this is what makes
// partition snapshots usable for incremental model updates.
func (t *Table) Filter(keep func(row int) bool) *Table {
	var rows []int32
	for row := 0; row < t.nrows; row++ {
		if keep(row) {
			rows = append(rows, int32(row))
		}
	}
	cols := make([]*Column, len(t.cols))
	for i, c := range t.cols {
		ids := make([]int32, len(rows))
		for j, r := range rows {
			ids[j] = c.ids[r]
		}
		cols[i] = c.withIDs(ids)
	}
	nt, err := newTable(t.name, cols)
	if err != nil {
		// Filtering preserves the invariants newTable checks.
		panic(err)
	}
	return nt
}

// AppendRows returns a new table extending this one by the given rows, in
// order, after all existing rows. Columns share their dictionaries with the
// original (the same stability contract as Filter), which means every
// appended value must already occur in its column's dictionary — ingest over
// a frozen domain. Columns not listed receive NULL for the appended rows.
// The receiver is untouched; existing rows keep their indexes, so samplers
// and encoders built over the original table remain valid.
func (t *Table) AppendRows(columns []string, rows [][]value.Value) (*Table, error) {
	colIdx := make([]int, len(columns))
	seen := make(map[string]bool, len(columns))
	for i, name := range columns {
		j, ok := t.byName[name]
		if !ok {
			return nil, fmt.Errorf("table %q: append references unknown column %q", t.name, name)
		}
		if seen[name] {
			return nil, fmt.Errorf("table %q: append lists column %q twice", t.name, name)
		}
		seen[name] = true
		colIdx[i] = j
	}
	// Encode into per-column appended ID slices before touching anything, so
	// a bad value rejects the whole batch.
	ext := make([][]int32, len(t.cols))
	for j := range t.cols {
		ext[j] = make([]int32, len(rows)) // NullID for unlisted columns
	}
	for r, row := range rows {
		if len(row) != len(columns) {
			return nil, fmt.Errorf("table %q: append row %d has %d values, want %d", t.name, r, len(row), len(columns))
		}
		for i, v := range row {
			c := t.cols[colIdx[i]]
			id, ok := c.IDForValue(v)
			if !ok {
				return nil, fmt.Errorf("table %q: append row %d: value %s not in dictionary of column %q (ingest cannot grow dictionaries)",
					t.name, r, v, c.Name())
			}
			ext[colIdx[i]][r] = id
		}
	}
	cols := make([]*Column, len(t.cols))
	for j, c := range t.cols {
		ids := make([]int32, 0, len(c.ids)+len(rows))
		ids = append(ids, c.ids...)
		ids = append(ids, ext[j]...)
		cols[j] = c.withIDs(ids)
	}
	nt, err := newTable(t.name, cols)
	if err != nil {
		// Appending preserves the invariants newTable checks.
		panic(err)
	}
	return nt, nil
}

// Index maps non-NULL int join-key values to the rows containing them.
type Index struct {
	rows map[int64][]int32
}

func buildIndex(c *Column) *Index {
	m := make(map[int64][]int32)
	for row := 0; row < c.NumRows(); row++ {
		if v, ok := c.Int(row); ok {
			m[v] = append(m[v], int32(row))
		}
	}
	return &Index{rows: m}
}

// Rows returns the rows holding value v (nil if none). Callers must not
// modify the slice.
func (ix *Index) Rows(v int64) []int32 { return ix.rows[v] }

// Has reports whether any row holds value v.
func (ix *Index) Has(v int64) bool { return len(ix.rows[v]) > 0 }

// NumKeys returns the number of distinct non-NULL key values.
func (ix *Index) NumKeys() int { return len(ix.rows) }

// Keys calls fn for every distinct key value. Iteration order is unspecified.
func (ix *Index) Keys(fn func(v int64, rows []int32)) {
	for v, rows := range ix.rows {
		fn(v, rows)
	}
}
