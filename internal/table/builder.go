package table

import (
	"fmt"
	"sort"

	"neurocard/internal/value"
)

// ColSpec declares a column for the Builder.
type ColSpec struct {
	Name string
	Kind value.Kind // KindInt or KindStr
}

// Builder accumulates rows and produces an immutable Table with sorted
// dictionaries. The zero value is not usable; call NewBuilder.
type Builder struct {
	name  string
	specs []ColSpec
	// raw per-column data; exactly one of the two slices per column is used.
	ints  [][]int64
	strs  [][]string
	nulls [][]bool
	nrows int
}

// NewBuilder creates a builder for a table with the given columns.
func NewBuilder(name string, specs []ColSpec) (*Builder, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("table %q: no columns", name)
	}
	seen := make(map[string]bool, len(specs))
	b := &Builder{
		name:  name,
		specs: specs,
		ints:  make([][]int64, len(specs)),
		strs:  make([][]string, len(specs)),
		nulls: make([][]bool, len(specs)),
	}
	for _, s := range specs {
		if s.Kind != value.KindInt && s.Kind != value.KindStr {
			return nil, fmt.Errorf("table %q: column %q has invalid kind %s", name, s.Name, s.Kind)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("table %q: duplicate column %q", name, s.Name)
		}
		seen[s.Name] = true
	}
	return b, nil
}

// MustBuilder is NewBuilder that panics on error, for statically correct
// specs in generators and tests.
func MustBuilder(name string, specs []ColSpec) *Builder {
	b, err := NewBuilder(name, specs)
	if err != nil {
		panic(err)
	}
	return b
}

// Append adds one row. Values must match the column kinds (NULL allowed
// anywhere).
func (b *Builder) Append(row ...value.Value) error {
	if len(row) != len(b.specs) {
		return fmt.Errorf("table %q: row has %d values, want %d", b.name, len(row), len(b.specs))
	}
	for i, v := range row {
		switch v.K {
		case value.KindNull:
			b.nulls[i] = append(b.nulls[i], true)
			b.ints[i] = append(b.ints[i], 0)
			b.strs[i] = append(b.strs[i], "")
		case b.specs[i].Kind:
			b.nulls[i] = append(b.nulls[i], false)
			if v.K == value.KindInt {
				b.ints[i] = append(b.ints[i], v.I)
				b.strs[i] = append(b.strs[i], "")
			} else {
				b.strs[i] = append(b.strs[i], v.S)
				b.ints[i] = append(b.ints[i], 0)
			}
		default:
			return fmt.Errorf("table %q: column %q: cannot store %s in %s column",
				b.name, b.specs[i].Name, v.K, b.specs[i].Kind)
		}
	}
	b.nrows++
	return nil
}

// MustAppend is Append that panics on error.
func (b *Builder) MustAppend(row ...value.Value) {
	if err := b.Append(row...); err != nil {
		panic(err)
	}
}

// NumRows returns the number of rows appended so far.
func (b *Builder) NumRows() int { return b.nrows }

// Build finalizes the table: each column's distinct non-NULL values are
// sorted into a dictionary (ID 0 = NULL, IDs ascend with value order) and row
// data is re-encoded as dictionary IDs. The builder may keep accumulating
// rows after Build; each Build produces an independent snapshot.
func (b *Builder) Build() (*Table, error) {
	cols := make([]*Column, len(b.specs))
	for i, s := range b.specs {
		c := &Column{name: s.Name, kind: s.Kind, ids: make([]int32, b.nrows)}
		if s.Kind == value.KindInt {
			distinct := make(map[int64]struct{})
			for row := 0; row < b.nrows; row++ {
				if !b.nulls[i][row] {
					distinct[b.ints[i][row]] = struct{}{}
				}
			}
			c.intDict = make([]int64, 0, len(distinct))
			for v := range distinct {
				c.intDict = append(c.intDict, v)
			}
			sort.Slice(c.intDict, func(a, z int) bool { return c.intDict[a] < c.intDict[z] })
			lookup := make(map[int64]int32, len(c.intDict))
			for j, v := range c.intDict {
				lookup[v] = int32(j) + 1
			}
			for row := 0; row < b.nrows; row++ {
				if !b.nulls[i][row] {
					c.ids[row] = lookup[b.ints[i][row]]
				}
			}
		} else {
			distinct := make(map[string]struct{})
			for row := 0; row < b.nrows; row++ {
				if !b.nulls[i][row] {
					distinct[b.strs[i][row]] = struct{}{}
				}
			}
			c.strDict = make([]string, 0, len(distinct))
			for v := range distinct {
				c.strDict = append(c.strDict, v)
			}
			sort.Strings(c.strDict)
			lookup := make(map[string]int32, len(c.strDict))
			for j, v := range c.strDict {
				lookup[v] = int32(j) + 1
			}
			for row := 0; row < b.nrows; row++ {
				if !b.nulls[i][row] {
					c.ids[row] = lookup[b.strs[i][row]]
				}
			}
		}
		cols[i] = c
	}
	return newTable(b.name, cols)
}

// MustBuild is Build that panics on error.
func (b *Builder) MustBuild() *Table {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}
