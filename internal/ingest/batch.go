// Package ingest implements the crash-safe online ingest path: a segmented,
// checksummed, fsync'd write-ahead row journal plus the row-batch model and
// apply machinery that extends a serving snapshot by journaled rows.
//
// The durability contract is append-before-ack: a row batch is acknowledged
// only after its journal record — length-prefixed, CRC-protected, and
// fsync'd — is on disk. Replay after a crash recovers exactly the
// acknowledged prefix: a torn tail (partial record from a crash mid-append)
// is quarantined to a `.corrupt` file and truncated away, mirroring the
// checkpoint loader's convention for corrupt checkpoints.
//
// Dictionaries are frozen at ingest time: appended values must already occur
// in their column's dictionary (the table layer's stability contract that
// makes incremental model updates possible). Rows carrying out-of-dictionary
// values are rejected before they reach the journal.
package ingest

import (
	"encoding/binary"
	"fmt"

	"neurocard/internal/schema"
	"neurocard/internal/table"
	"neurocard/internal/value"
)

// TableRows is a set of rows destined for one table, in column-major header /
// row-major body form (the JSON and binary wire shapes both map onto it).
type TableRows struct {
	Table   string
	Columns []string
	Rows    [][]value.Value
}

// RowBatch is one atomic ingest unit: the rows acknowledged (or rejected)
// together, journaled as a single record. Seq is assigned by the journal at
// append time and is strictly increasing across a journal's lifetime.
type RowBatch struct {
	Seq    uint64
	Tables []TableRows
}

// NumRows returns the total row count across all tables of the batch.
func (b *RowBatch) NumRows() int {
	n := 0
	for _, t := range b.Tables {
		n += len(t.Rows)
	}
	return n
}

// Wire limits: a decoded batch is bounded before any allocation is sized
// from wire-controlled counts, so a corrupt or hostile record cannot balloon
// memory. Records larger than maxRecordBytes are treated as torn.
const (
	maxNameLen     = 1 << 10
	maxRecordBytes = 64 << 20
)

// Value tags of the binary row encoding.
const (
	tagNull byte = 0
	tagInt  byte = 1
	tagStr  byte = 2
)

// EncodeBatch appends the batch's binary encoding (including Seq) to buf and
// returns the extended slice. The encoding is self-describing — table and
// column names travel with the rows — so replay needs no side schema and the
// same bytes serve as the NCB ingest request body.
func EncodeBatch(buf []byte, b *RowBatch) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, b.Seq)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(b.Tables)))
	for _, t := range b.Tables {
		buf = appendString16(buf, t.Table)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(t.Columns)))
		for _, c := range t.Columns {
			buf = appendString16(buf, c)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.Rows)))
		for _, row := range t.Rows {
			for _, v := range row {
				switch {
				case v.IsNull():
					buf = append(buf, tagNull)
				case v.K == value.KindInt:
					buf = append(buf, tagInt)
					buf = binary.LittleEndian.AppendUint64(buf, uint64(v.I))
				default:
					buf = append(buf, tagStr)
					buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.S)))
					buf = append(buf, v.S...)
				}
			}
		}
	}
	return buf
}

// DecodeBatch parses one encoded batch. Every count and length is validated
// against the remaining payload before it sizes an allocation.
func DecodeBatch(p []byte) (*RowBatch, error) {
	d := &decoder{p: p}
	b := &RowBatch{Seq: d.u64()}
	nTables := int(d.u16())
	for i := 0; i < nTables && d.err == nil; i++ {
		t := TableRows{Table: d.string16()}
		nCols := int(d.u16())
		if nCols > len(d.p)-d.off && d.err == nil {
			d.err = fmt.Errorf("ingest: batch declares %d columns with %d bytes left", nCols, len(d.p)-d.off)
		}
		for c := 0; c < nCols && d.err == nil; c++ {
			t.Columns = append(t.Columns, d.string16())
		}
		nRows := int(d.u32())
		// Each row costs at least one tag byte per column.
		if d.err == nil && nCols > 0 && nRows > (len(d.p)-d.off)/nCols {
			d.err = fmt.Errorf("ingest: batch declares %d rows with %d bytes left", nRows, len(d.p)-d.off)
		}
		if d.err == nil && nCols == 0 && nRows > 0 {
			d.err = fmt.Errorf("ingest: batch has %d rows but no columns", nRows)
		}
		for r := 0; r < nRows && d.err == nil; r++ {
			row := make([]value.Value, nCols)
			for c := 0; c < nCols && d.err == nil; c++ {
				row[c] = d.value()
			}
			t.Rows = append(t.Rows, row)
		}
		b.Tables = append(b.Tables, t)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.p) {
		return nil, fmt.Errorf("ingest: %d trailing bytes after batch", len(d.p)-d.off)
	}
	return b, nil
}

func appendString16(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// decoder is a bounds-checked little-endian reader; the first violation
// latches err and every subsequent read returns zero values.
type decoder struct {
	p   []byte
	off int
	err error
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if len(d.p)-d.off < n {
		d.err = fmt.Errorf("ingest: truncated batch: need %d bytes at offset %d, have %d", n, d.off, len(d.p)-d.off)
		return false
	}
	return true
}

func (d *decoder) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.p[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.p[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.p[d.off:])
	d.off += 8
	return v
}

func (d *decoder) string16() string {
	n := int(d.u16())
	if d.err == nil && n > maxNameLen {
		d.err = fmt.Errorf("ingest: name length %d exceeds limit %d", n, maxNameLen)
	}
	if !d.need(n) {
		return ""
	}
	s := string(d.p[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) value() value.Value {
	if !d.need(1) {
		return value.Null
	}
	tag := d.p[d.off]
	d.off++
	switch tag {
	case tagNull:
		return value.Null
	case tagInt:
		return value.Int(int64(d.u64()))
	case tagStr:
		n := int(d.u32())
		if !d.need(n) {
			return value.Null
		}
		s := string(d.p[d.off : d.off+n])
		d.off += n
		return value.Str(s)
	default:
		d.err = fmt.Errorf("ingest: unknown value tag %d at offset %d", tag, d.off-1)
		return value.Null
	}
}

// Validate checks a batch against a schema without applying it: every table
// and column must exist, row widths must match their column lists, and every
// value must already occur in its column's dictionary. This is the server's
// reject-before-journal gate, so a 4xx never consumes journal space.
func Validate(sch *schema.Schema, b *RowBatch) error {
	if len(b.Tables) == 0 {
		return fmt.Errorf("ingest: batch has no tables")
	}
	for _, tr := range b.Tables {
		t := sch.Table(tr.Table)
		if t == nil {
			return fmt.Errorf("ingest: unknown table %q", tr.Table)
		}
		if len(tr.Columns) == 0 {
			return fmt.Errorf("ingest: table %q: no columns", tr.Table)
		}
		if len(tr.Rows) == 0 {
			return fmt.Errorf("ingest: table %q: no rows", tr.Table)
		}
		seen := make(map[string]bool, len(tr.Columns))
		cols := make([]*table.Column, len(tr.Columns))
		for i, name := range tr.Columns {
			c := t.Col(name)
			if c == nil {
				return fmt.Errorf("ingest: table %q has no column %q", tr.Table, name)
			}
			if seen[name] {
				return fmt.Errorf("ingest: table %q lists column %q twice", tr.Table, name)
			}
			seen[name] = true
			cols[i] = c
		}
		for r, row := range tr.Rows {
			if len(row) != len(tr.Columns) {
				return fmt.Errorf("ingest: table %q row %d has %d values, want %d", tr.Table, r, len(row), len(tr.Columns))
			}
			for i, v := range row {
				if _, ok := cols[i].IDForValue(v); !ok {
					return fmt.Errorf("ingest: table %q row %d: value %s not in dictionary of column %q (dictionaries are frozen at ingest time)",
						tr.Table, r, v, tr.Columns[i])
				}
			}
		}
	}
	return nil
}

// Apply extends sch by the batches' rows, in order, returning a new schema
// whose tables share dictionaries with the original (so encoders and models
// built over the original domain stay valid). The input schema is untouched.
func Apply(sch *schema.Schema, batches []*RowBatch) (*schema.Schema, error) {
	if len(batches) == 0 {
		return sch, nil
	}
	tables := make(map[string]*table.Table, sch.NumTables())
	for _, name := range sch.Tables() {
		tables[name] = sch.Table(name)
	}
	for _, b := range batches {
		for _, tr := range b.Tables {
			t, ok := tables[tr.Table]
			if !ok {
				return nil, fmt.Errorf("ingest: batch %d: unknown table %q", b.Seq, tr.Table)
			}
			nt, err := t.AppendRows(tr.Columns, tr.Rows)
			if err != nil {
				return nil, fmt.Errorf("ingest: batch %d: %w", b.Seq, err)
			}
			tables[tr.Table] = nt
		}
	}
	ordered := make([]*table.Table, 0, len(tables))
	var edges []schema.Edge
	for _, name := range sch.Tables() {
		ordered = append(ordered, tables[name])
		if pe, ok := sch.Parent(name); ok {
			edges = append(edges, schema.Edge{
				LeftTable: pe.Parent, LeftCol: pe.ParentCol,
				RightTable: name, RightCol: pe.ChildCol,
			})
		}
	}
	return schema.New(ordered, sch.Root(), edges)
}
