package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"neurocard/internal/faultinject"
)

// Segment file layout:
//
//	header:  magic "NCRDJRNL" (8) · version u32 (4) · first seq u64 (8)
//	records: [payload len u32 · CRC32(payload) u32 · payload]*
//
// A record's payload is EncodeBatch's output (seq + row batch). Records are
// written with a single Write call and fsync'd before the append returns, so
// the only inconsistent on-disk state a crash can produce is a torn tail —
// a partial final record — which Open truncates away after quarantining the
// bytes to `<segment>.corrupt`.
const (
	segMagic      = "NCRDJRNL"
	segVersion    = 1
	segHeaderSize = 8 + 4 + 8
	recHeaderSize = 4 + 4
)

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is zero.
const DefaultSegmentBytes = 4 << 20

// watermarkFile records the highest sequence number absorbed into a durable
// model checkpoint (decimal text, written atomically). Replay drops batches
// at or below it: they are already baked into the checkpoint, and replaying
// them again would double-apply the rows.
const watermarkFile = "absorbed.seq"

// Options tunes a journal.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size;
	// 0 selects DefaultSegmentBytes.
	SegmentBytes int64
	// NoSync skips the fsync on append. Tests only: it voids the
	// durability contract.
	NoSync bool
}

// Stats is a point-in-time journal snapshot for metrics.
type Stats struct {
	Rows     uint64 // rows durably acknowledged over the journal's lifetime
	LastSeq  uint64 // sequence of the last acknowledged batch (0 when empty)
	Segments int    // segment files currently on disk
	Bytes    int64  // bytes across those segments
}

// ReplayResult reports what Open recovered from an existing journal
// directory. Batches excludes records at or below the absorbed watermark
// (MarkAbsorbed): those rows already live in the last durable checkpoint.
type ReplayResult struct {
	Batches     []*RowBatch // committed, unabsorbed batches in append order
	Rows        uint64      // total rows across Batches
	LastSeq     uint64      // sequence of the last committed batch
	Quarantined []string    // .corrupt files written for torn or corrupt tails
}

// Journal is a segmented write-ahead row journal. One goroutine may append
// at a time (Append serializes internally); Stats is safe concurrently.
type Journal struct {
	dir  string
	opts Options

	mu        sync.Mutex
	f         *os.File
	segIndex  uint64
	segBytes  int64 // committed size of the active segment
	prevBytes int64 // bytes across non-active segments
	segments  int
	nextSeq   uint64
	rows      uint64
	broken    error // set when a failed append could not be rolled back
}

func segName(index uint64) string { return fmt.Sprintf("journal-%08d.seg", index) }

// Open replays the journal directory (creating it if needed), truncating and
// quarantining any torn tail, and returns the journal positioned to append
// after the last committed record plus everything it recovered.
func Open(dir string, opts Options) (*Journal, *ReplayResult, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("ingest: journal dir: %w", err)
	}
	names, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{dir: dir, opts: opts}
	res := &ReplayResult{}
	for i, name := range names {
		path := filepath.Join(dir, name)
		clean, err := j.replaySegment(path, res)
		if err != nil {
			return nil, nil, err
		}
		if !clean && i < len(names)-1 {
			// A tear in a non-final segment means every later segment was
			// written after the failure point; none of it can have been
			// acknowledged. Quarantine the stragglers whole.
			for _, later := range names[i+1:] {
				lp := filepath.Join(dir, later)
				if err := os.Rename(lp, lp+".corrupt"); err != nil {
					return nil, nil, fmt.Errorf("ingest: quarantine %s: %w", later, err)
				}
				res.Quarantined = append(res.Quarantined, lp+".corrupt")
			}
			break
		}
	}
	// Re-list: replay may have renamed whole segments away.
	if names, err = listSegments(dir); err != nil {
		return nil, nil, err
	}
	// Batches the last checkpoint already absorbed must not be replayed into
	// the data again.
	if wm, err := readWatermark(dir); err != nil {
		return nil, nil, err
	} else if wm > 0 {
		kept := res.Batches[:0]
		for _, b := range res.Batches {
			if b.Seq > wm {
				kept = append(kept, b)
			} else {
				res.Rows -= uint64(b.NumRows())
			}
		}
		res.Batches = kept
	}
	j.rows = res.Rows
	j.nextSeq = res.LastSeq + 1
	if len(names) == 0 {
		if err := j.createSegment(1); err != nil {
			return nil, nil, err
		}
	} else {
		lastName := names[len(names)-1]
		index, err := parseSegIndex(lastName)
		if err != nil {
			return nil, nil, err
		}
		f, err := os.OpenFile(filepath.Join(dir, lastName), os.O_RDWR, 0)
		if err != nil {
			return nil, nil, fmt.Errorf("ingest: reopen segment: %w", err)
		}
		end, err := f.Seek(0, io.SeekEnd)
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("ingest: seek segment end: %w", err)
		}
		j.f, j.segIndex, j.segBytes = f, index, end
		j.segments = len(names)
		for _, name := range names[:len(names)-1] {
			if fi, err := os.Stat(filepath.Join(dir, name)); err == nil {
				j.prevBytes += fi.Size()
			}
		}
	}
	return j, res, nil
}

func parseSegIndex(name string) (uint64, error) {
	var index uint64
	if _, err := fmt.Sscanf(name, "journal-%d.seg", &index); err != nil {
		return 0, fmt.Errorf("ingest: malformed segment name %q: %w", name, err)
	}
	return index, nil
}

func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: read journal dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".seg" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// replaySegment scans one segment, appending committed batches to res. It
// reports clean=false when it found (and quarantined) a torn or corrupt
// tail. A file too short to hold a header is quarantined whole.
func (j *Journal) replaySegment(path string, res *ReplayResult) (clean bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("ingest: read segment: %w", err)
	}
	if len(data) < segHeaderSize || string(data[:8]) != segMagic ||
		binary.LittleEndian.Uint32(data[8:12]) != segVersion {
		if err := os.Rename(path, path+".corrupt"); err != nil {
			return false, fmt.Errorf("ingest: quarantine %s: %w", path, err)
		}
		res.Quarantined = append(res.Quarantined, path+".corrupt")
		return false, nil
	}
	// A pruned journal starts at the oldest retained segment; its header
	// carries the first sequence number it holds.
	if first := binary.LittleEndian.Uint64(data[12:20]); len(res.Batches) == 0 && first > 0 {
		res.LastSeq = first - 1
	}
	off := segHeaderSize
	good := off // end of the last fully committed record
	for off < len(data) {
		if len(data)-off < recHeaderSize {
			break // torn inside a record header
		}
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		want := binary.LittleEndian.Uint32(data[off+4:])
		if plen < 8 || plen > maxRecordBytes || len(data)-off-recHeaderSize < plen {
			break // implausible length or torn inside the payload
		}
		payload := data[off+recHeaderSize : off+recHeaderSize+plen]
		if crc32.ChecksumIEEE(payload) != want {
			break // corrupt payload
		}
		b, derr := DecodeBatch(payload)
		if derr != nil || b.Seq != res.LastSeq+1 {
			break // undecodable or out-of-sequence record
		}
		res.Batches = append(res.Batches, b)
		res.Rows += uint64(b.NumRows())
		res.LastSeq = b.Seq
		off += recHeaderSize + plen
		good = off
	}
	if good == len(data) {
		return true, nil
	}
	// Quarantine the tail bytes, then truncate the segment back to the last
	// committed record — the same .corrupt convention the checkpoint loader
	// uses, keeping the evidence without poisoning future replays.
	corrupt := path + ".corrupt"
	if err := os.WriteFile(corrupt, data[good:], 0o644); err != nil {
		return false, fmt.Errorf("ingest: quarantine tail of %s: %w", path, err)
	}
	res.Quarantined = append(res.Quarantined, corrupt)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return false, fmt.Errorf("ingest: truncate segment: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(int64(good)); err != nil {
		return false, fmt.Errorf("ingest: truncate segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		return false, fmt.Errorf("ingest: sync truncated segment: %w", err)
	}
	return false, nil
}

// createSegment writes the next segment's header through the checkpoint
// idiom — temp file, fsync, atomic rename, directory fsync — so a crash
// mid-rotation leaves either the old tail segment or a fully formed new one,
// never a half-written header. The new segment becomes the append target.
func (j *Journal) createSegment(index uint64) error {
	tmp, err := os.CreateTemp(j.dir, segName(index)+".tmp-*")
	if err != nil {
		return fmt.Errorf("ingest: create segment: %w", err)
	}
	tmpPath := tmp.Name()
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmpPath)
		}
	}()
	var hdr [segHeaderSize]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], segVersion)
	binary.LittleEndian.PutUint64(hdr[12:20], j.nextSeq)
	if _, err := tmp.Write(hdr[:]); err != nil {
		return fmt.Errorf("ingest: write segment header: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("ingest: sync segment: %w", err)
	}
	final := filepath.Join(j.dir, segName(index))
	if err := os.Rename(tmpPath, final); err != nil {
		return fmt.Errorf("ingest: rename segment: %w", err)
	}
	if d, derr := os.Open(j.dir); derr == nil {
		d.Sync() // best effort, as WriteCheckpointFile does
		d.Close()
	}
	j.f, tmp = tmp, nil
	j.segIndex = index
	j.segBytes = segHeaderSize
	j.segments++
	return nil
}

// Append durably journals the batch: it assigns the next sequence number,
// writes one checksummed record, and fsyncs before returning. Only a nil
// error acknowledges the rows. A failed write is rolled back by truncating
// the segment to its last committed record, so an injected or real torn
// write never leaves a partial record for a later append to bury.
func (j *Journal) Append(b *RowBatch) (seq uint64, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken != nil {
		return 0, fmt.Errorf("ingest: journal is broken: %w", j.broken)
	}
	if j.f == nil {
		return 0, errors.New("ingest: journal is closed")
	}
	b.Seq = j.nextSeq
	payload := EncodeBatch(make([]byte, 0, 256), b)
	if len(payload) > maxRecordBytes {
		return 0, fmt.Errorf("ingest: batch encodes to %d bytes, limit %d", len(payload), maxRecordBytes)
	}
	if j.segBytes > segHeaderSize && j.segBytes+int64(recHeaderSize+len(payload)) > j.opts.SegmentBytes {
		prev, prevSize := j.f, j.segBytes
		if err := j.createSegment(j.segIndex + 1); err != nil {
			return 0, err
		}
		prev.Sync()
		prev.Close()
		j.prevBytes += prevSize
	}
	rec := make([]byte, 0, recHeaderSize+len(payload))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	rec = append(rec, payload...)

	var w io.Writer = j.f
	if faultinject.Enabled() {
		w = faultinject.WrapJournalWriter(w)
	}
	_, werr := w.Write(rec)
	if werr == nil && !j.opts.NoSync {
		werr = j.f.Sync()
	}
	if werr != nil {
		// Roll the partial record back; if that fails the segment tail is in
		// an unknown state and the journal refuses further appends (replay
		// on restart will quarantine and truncate the tail).
		if terr := j.f.Truncate(j.segBytes); terr != nil {
			j.broken = terr
		} else if _, serr := j.f.Seek(j.segBytes, io.SeekStart); serr != nil {
			j.broken = serr
		} else if !j.opts.NoSync {
			j.f.Sync()
		}
		return 0, fmt.Errorf("ingest: append not acknowledged: %w", werr)
	}
	j.segBytes += int64(len(rec))
	j.nextSeq++
	j.rows += uint64(b.NumRows())
	return b.Seq, nil
}

// Stats returns the journal's current counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Rows:     j.rows,
		LastSeq:  j.nextSeq - 1,
		Segments: j.segments,
		Bytes:    j.prevBytes + j.segBytes,
	}
}

// readWatermark returns the absorbed watermark, or 0 when none was written.
func readWatermark(dir string) (uint64, error) {
	data, err := os.ReadFile(filepath.Join(dir, watermarkFile))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("ingest: read watermark: %w", err)
	}
	var wm uint64
	if _, err := fmt.Sscanf(string(data), "%d", &wm); err != nil {
		return 0, fmt.Errorf("ingest: malformed watermark %q: %w", data, err)
	}
	return wm, nil
}

// MarkAbsorbed records that every batch with sequence ≤ seq is baked into a
// durable model checkpoint: it persists the watermark atomically (temp +
// fsync + rename), rotates the active segment so absorbed records stop
// sharing a file with live ones, and prunes segments that became fully
// covered. Call only after the checkpoint itself is durably on disk — the
// watermark is what stops a restart from double-applying those rows.
func (j *Journal) MarkAbsorbed(seq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("ingest: journal is closed")
	}
	tmp, err := os.CreateTemp(j.dir, watermarkFile+".tmp-*")
	if err != nil {
		return fmt.Errorf("ingest: write watermark: %w", err)
	}
	tmpPath := tmp.Name()
	_, werr := fmt.Fprintf(tmp, "%d\n", seq)
	if serr := tmp.Sync(); werr == nil {
		werr = serr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmpPath, filepath.Join(j.dir, watermarkFile))
	}
	if werr != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("ingest: write watermark: %w", werr)
	}
	if d, derr := os.Open(j.dir); derr == nil {
		d.Sync()
		d.Close()
	}
	// Rotate a non-empty active segment so it becomes prunable once a later
	// watermark covers its remaining records.
	if j.segBytes > segHeaderSize {
		prev, prevSize := j.f, j.segBytes
		if err := j.createSegment(j.segIndex + 1); err != nil {
			return err
		}
		prev.Sync()
		prev.Close()
		j.prevBytes += prevSize
	}
	return j.pruneThroughLocked(seq)
}

// PruneThrough removes whole segments whose records are all ≤ seq — called
// after a refresh checkpoints the merged snapshot, which bakes those rows
// into the published checkpoint. The active segment is never removed.
func (j *Journal) PruneThrough(seq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.pruneThroughLocked(seq)
}

func (j *Journal) pruneThroughLocked(seq uint64) error {
	names, err := listSegments(j.dir)
	if err != nil {
		return err
	}
	for i := 0; i+1 < len(names); i++ {
		// A segment is fully covered when the NEXT segment starts at or
		// before seq+1 (its header records its first sequence number).
		next := filepath.Join(j.dir, names[i+1])
		hdr := make([]byte, segHeaderSize)
		f, err := os.Open(next)
		if err != nil {
			return fmt.Errorf("ingest: prune: %w", err)
		}
		_, rerr := io.ReadFull(f, hdr)
		f.Close()
		if rerr != nil {
			return fmt.Errorf("ingest: prune: read header of %s: %w", names[i+1], rerr)
		}
		if binary.LittleEndian.Uint64(hdr[12:20]) > seq+1 {
			break
		}
		path := filepath.Join(j.dir, names[i])
		var size int64
		if fi, serr := os.Stat(path); serr == nil {
			size = fi.Size()
		}
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("ingest: prune: %w", err)
		}
		j.segments--
		j.prevBytes -= size
	}
	return nil
}

// Close syncs and closes the active segment. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
