package ingest

import (
	"testing"

	"neurocard/internal/datagen"
	"neurocard/internal/value"
)

func tinyDataset(t *testing.T) *datagen.Dataset {
	t.Helper()
	d, err := datagen.JOBLight(datagen.Config{Seed: 7, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestValidateAndApply(t *testing.T) {
	d := tinyDataset(t)
	sch := d.Schema
	title := sch.Table("title")
	mk := sch.Table("movie_keyword")
	movieID := mk.MustCol("movie_id").ValueForID(1)
	keyword := mk.MustCol("keyword_id").ValueForID(1)

	b := &RowBatch{Tables: []TableRows{{
		Table:   "movie_keyword",
		Columns: []string{"movie_id", "keyword_id"},
		Rows:    [][]value.Value{{movieID, keyword}, {movieID, value.Null}},
	}}}
	if err := Validate(sch, b); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}

	merged, err := Apply(sch, []*RowBatch{b})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if got := merged.Table("movie_keyword").NumRows(); got != mk.NumRows()+2 {
		t.Fatalf("merged movie_keyword has %d rows, want %d", got, mk.NumRows()+2)
	}
	if merged.Table("title").NumRows() != title.NumRows() {
		t.Fatal("apply touched an unlisted table")
	}
	if sch.Table("movie_keyword").NumRows() != mk.NumRows() {
		t.Fatal("apply mutated the input schema")
	}
	// Dictionary sharing: the merged column reuses the original dictionary.
	if merged.Table("movie_keyword").MustCol("keyword_id").DictSize() != mk.MustCol("keyword_id").DictSize() {
		t.Fatal("apply changed a dictionary")
	}
	if merged.Root() != sch.Root() || len(merged.Tables()) != len(sch.Tables()) {
		t.Fatal("apply changed the join tree")
	}
	for i, name := range sch.Tables() {
		if merged.Tables()[i] != name {
			t.Fatalf("table order changed: %v vs %v", merged.Tables(), sch.Tables())
		}
	}

	// Out-of-dictionary values are rejected by both gates.
	bad := &RowBatch{Tables: []TableRows{{
		Table:   "movie_keyword",
		Columns: []string{"movie_id", "keyword_id"},
		Rows:    [][]value.Value{{value.Int(1 << 40), keyword}},
	}}}
	if err := Validate(sch, bad); err == nil {
		t.Fatal("out-of-dictionary value validated")
	}
	if _, err := Apply(sch, []*RowBatch{bad}); err == nil {
		t.Fatal("out-of-dictionary value applied")
	}

	// Unknown tables and columns are rejected.
	if err := Validate(sch, &RowBatch{Tables: []TableRows{{Table: "nope", Columns: []string{"x"}, Rows: [][]value.Value{{value.Null}}}}}); err == nil {
		t.Fatal("unknown table validated")
	}
	if err := Validate(sch, &RowBatch{Tables: []TableRows{{Table: "movie_keyword", Columns: []string{"nope"}, Rows: [][]value.Value{{value.Null}}}}}); err == nil {
		t.Fatal("unknown column validated")
	}
}
