package ingest

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"neurocard/internal/faultinject"
	"neurocard/internal/value"
)

func testBatch(i int) *RowBatch {
	return &RowBatch{Tables: []TableRows{{
		Table:   "movie_keyword",
		Columns: []string{"movie_id", "keyword_id"},
		Rows: [][]value.Value{
			{value.Int(int64(i + 1)), value.Int(int64(i%7 + 1))},
			{value.Int(int64(i + 2)), value.Null},
		},
	}, {
		Table:   "title",
		Columns: []string{"phonetic_code"},
		Rows:    [][]value.Value{{value.Str("A123")}},
	}}}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	b := testBatch(3)
	b.Seq = 42
	enc := EncodeBatch(nil, b)
	got, err := DecodeBatch(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Seq != 42 || len(got.Tables) != 2 || got.NumRows() != 3 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Tables[0].Table != "movie_keyword" || got.Tables[0].Rows[1][1] != value.Null {
		t.Fatalf("round trip mismatch: %+v", got.Tables[0])
	}
	if got.Tables[1].Rows[0][0].S != "A123" {
		t.Fatalf("string value lost: %+v", got.Tables[1])
	}
	// Every strict prefix must fail to decode, never panic or over-allocate.
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeBatch(enc[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", cut, len(enc))
		}
	}
}

func mustOpen(t *testing.T, dir string, opts Options) (*Journal, *ReplayResult) {
	t.Helper()
	j, res, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	return j, res
}

func TestJournalAppendReplay(t *testing.T) {
	dir := t.TempDir()
	j, res := mustOpen(t, dir, Options{})
	if len(res.Batches) != 0 || res.LastSeq != 0 {
		t.Fatalf("fresh journal replayed %+v", res)
	}
	const n = 5
	for i := 0; i < n; i++ {
		seq, err := j.Append(testBatch(i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d, want %d", i, seq, i+1)
		}
	}
	st := j.Stats()
	if st.Rows != 3*n || st.LastSeq != n || st.Segments != 1 {
		t.Fatalf("stats %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	j2, res2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	if len(res2.Batches) != n || res2.LastSeq != n || res2.Rows != 3*n {
		t.Fatalf("replay %+v", res2)
	}
	for i, b := range res2.Batches {
		want := EncodeBatch(nil, testBatch(i))
		got := EncodeBatch(nil, &RowBatch{Tables: b.Tables})
		if !bytes.Equal(want, got) {
			t.Fatalf("batch %d content changed across replay", i)
		}
		if b.Seq != uint64(i+1) {
			t.Fatalf("batch %d has seq %d", i, b.Seq)
		}
	}
	if len(res2.Quarantined) != 0 {
		t.Fatalf("clean journal quarantined %v", res2.Quarantined)
	}
	// The journal keeps appending after the replayed prefix.
	if seq, err := j2.Append(testBatch(n)); err != nil || seq != n+1 {
		t.Fatalf("append after replay: seq %d, err %v", seq, err)
	}
}

func TestJournalRotation(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{SegmentBytes: 256})
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := j.Append(testBatch(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	st := j.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation at 256-byte segments, got %d segments", st.Segments)
	}
	j.Close()

	j2, res := mustOpen(t, dir, Options{SegmentBytes: 256})
	if len(res.Batches) != n || res.LastSeq != n {
		t.Fatalf("multi-segment replay: %d batches, last seq %d", len(res.Batches), res.LastSeq)
	}

	// Pruning through an early sequence removes fully covered segments but
	// never the active one, and replay still recovers the suffix.
	if err := j2.PruneThrough(res.LastSeq); err != nil {
		t.Fatalf("prune: %v", err)
	}
	pst := j2.Stats()
	if pst.Segments != 1 {
		t.Fatalf("prune kept %d segments", pst.Segments)
	}
	if _, err := j2.Append(testBatch(n)); err != nil {
		t.Fatalf("append after prune: %v", err)
	}
	j2.Close()
	j3, res3 := mustOpen(t, dir, Options{SegmentBytes: 256})
	defer j3.Close()
	if res3.LastSeq != n+1 {
		t.Fatalf("replay after prune: last seq %d, want %d", res3.LastSeq, n+1)
	}
}

// TestJournalTornTailEveryOffset is the torn-write property test: truncate
// the journal at every byte offset of the final record and assert replay
// recovers exactly the committed prefix, quarantines the torn tail to a
// .corrupt file, and leaves the journal appendable.
func TestJournalTornTailEveryOffset(t *testing.T) {
	srcDir := t.TempDir()
	j, _ := mustOpen(t, srcDir, Options{})
	const n = 4
	var lastRecLen int
	for i := 0; i < n; i++ {
		payload := EncodeBatch(nil, &RowBatch{Seq: uint64(i + 1), Tables: testBatch(i).Tables})
		lastRecLen = recHeaderSize + len(payload)
		if _, err := j.Append(testBatch(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	j.Close()
	seg, err := os.ReadFile(filepath.Join(srcDir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	lastStart := len(seg) - lastRecLen

	for cut := lastStart; cut < len(seg); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), seg[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, res := mustOpen(t, dir, Options{})
		if len(res.Batches) != n-1 || res.LastSeq != n-1 {
			t.Fatalf("cut at %d: recovered %d batches (last seq %d), want %d",
				cut, len(res.Batches), res.LastSeq, n-1)
		}
		wantCorrupt := cut > lastStart
		corrupt := filepath.Join(dir, segName(1)+".corrupt")
		if _, err := os.Stat(corrupt); (err == nil) != wantCorrupt {
			t.Fatalf("cut at %d: corrupt file exists=%v, want %v", cut, err == nil, wantCorrupt)
		}
		if wantCorrupt {
			tail, err := os.ReadFile(corrupt)
			if err != nil || !bytes.Equal(tail, seg[lastStart:cut]) {
				t.Fatalf("cut at %d: quarantined tail mismatch (err %v)", cut, err)
			}
		}
		// The truncated segment must hold exactly the committed prefix and
		// accept the next append at the recovered sequence.
		if got, err := os.ReadFile(filepath.Join(dir, segName(1))); err != nil || !bytes.Equal(got, seg[:lastStart]) {
			t.Fatalf("cut at %d: truncated segment mismatch (err %v)", cut, err)
		}
		if seq, err := j2.Append(testBatch(n)); err != nil || seq != n {
			t.Fatalf("cut at %d: append after recovery: seq %d, err %v", cut, seq, err)
		}
		j2.Close()
	}
}

func TestJournalCorruptMiddleRecordDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if _, err := j.Append(testBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	path := filepath.Join(dir, segName(1))
	seg, _ := os.ReadFile(path)
	// Flip one payload byte of the second record.
	payload0 := len(EncodeBatch(nil, &RowBatch{Seq: 1, Tables: testBatch(0).Tables}))
	off := segHeaderSize + recHeaderSize + payload0 + recHeaderSize + 3
	seg[off] ^= 0xff
	if err := os.WriteFile(path, seg, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, res := mustOpen(t, dir, Options{})
	defer j2.Close()
	if len(res.Batches) != 1 || res.LastSeq != 1 {
		t.Fatalf("recovered %d batches, want 1 (corruption must cut the suffix)", len(res.Batches))
	}
	if len(res.Quarantined) != 1 {
		t.Fatalf("quarantined %v", res.Quarantined)
	}
}

func TestJournalTornWriteFaultNotAcked(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	defer j.Close()
	if _, err := j.Append(testBatch(0)); err != nil {
		t.Fatal(err)
	}
	before := j.Stats()

	faultinject.Arm(faultinject.Config{JournalTornWriteProb: 1})
	_, err := j.Append(testBatch(1))
	faultinject.Disarm()
	if !errors.Is(err, faultinject.ErrInjectedJournalTear) {
		t.Fatalf("torn append error = %v, want ErrInjectedJournalTear", err)
	}
	if st := faultinject.ReadStats(); st.JournalTears != 1 {
		t.Fatalf("journal tear not counted: %+v", st)
	}
	if st := j.Stats(); st != before {
		t.Fatalf("torn append changed stats: %+v -> %+v", before, st)
	}
	// The in-place rollback keeps the journal appendable without restart...
	if seq, err := j.Append(testBatch(2)); err != nil || seq != 2 {
		t.Fatalf("append after torn write: seq %d, err %v", seq, err)
	}
	// ...and replay sees only acknowledged batches.
	j.Close()
	j2, res := mustOpen(t, dir, Options{})
	defer j2.Close()
	if len(res.Batches) != 2 || res.Rows != before.Rows*2 {
		t.Fatalf("replay after torn write: %d batches, %d rows", len(res.Batches), res.Rows)
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("rolled-back tear left quarantine files: %v", res.Quarantined)
	}
}

func TestJournalAbsorbedWatermark(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if _, err := j.Append(testBatch(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	// Absorb the first two batches: replay must surface only batch 3, even
	// though all three share the (now rotated) first segment on disk.
	if err := j.MarkAbsorbed(2); err != nil {
		t.Fatalf("mark absorbed: %v", err)
	}
	j.Close()

	j2, res := mustOpen(t, dir, Options{})
	if len(res.Batches) != 1 || res.Batches[0].Seq != 3 || res.Rows != 3 {
		t.Fatalf("replay after MarkAbsorbed(2): %d batches, rows %d, %+v", len(res.Batches), res.Rows, res.Batches)
	}
	if res.LastSeq != 3 {
		t.Fatalf("LastSeq %d, want 3", res.LastSeq)
	}
	// Absorbing everything leaves nothing to replay, and sequence numbers
	// keep climbing — they never restart below the watermark.
	if err := j2.MarkAbsorbed(3); err != nil {
		t.Fatalf("mark absorbed all: %v", err)
	}
	j2.Close()

	j3, res3 := mustOpen(t, dir, Options{})
	defer j3.Close()
	if len(res3.Batches) != 0 || res3.Rows != 0 {
		t.Fatalf("replay after MarkAbsorbed(3): %+v", res3)
	}
	if seq, err := j3.Append(testBatch(9)); err != nil || seq != 4 {
		t.Fatalf("append after full absorb: seq %d, err %v", seq, err)
	}
}

func TestParseSpecJournalTornWrite(t *testing.T) {
	c, err := faultinject.ParseSpec("journal-torn-write=0.5:11,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if c.JournalTornWriteProb != 0.5 || c.JournalTornWriteAt != 11 || c.Seed != 7 {
		t.Fatalf("parsed %+v", c)
	}
	if _, err := faultinject.ParseSpec("journal-torn-write=2"); err == nil {
		t.Fatal("probability out of range accepted")
	}
	if _, err := faultinject.ParseSpec("bogus=1"); err == nil || !strings.Contains(err.Error(), "journal-torn-write") {
		t.Fatalf("unknown-key error should list journal-torn-write: %v", err)
	}
}
