// Package workload generates the paper's three benchmark query sets against
// the synthetic IMDB datasets (§7.1) and computes the Q-error metrics the
// evaluation reports:
//
//   - JOBLight: 70 star queries joining 2-5 tables, equality filters on
//     categorical columns plus range filters on title.production_year only.
//   - JOBLightRanges: 1000 queries distributed uniformly over JOB-light's
//     join graphs; literals are drawn from actual inner-join tuples via the
//     join sampler, and 3-6 comparison operators are placed per query
//     (ranges on numeric/string content columns, equality on categoricals)
//     — the paper's generation recipe, which follows the data distribution
//     and guarantees non-empty results.
//   - JOBM: 113 snowflake queries joining 2-11 of the 16 tables on multiple
//     join keys.
//
// Each generator also has a Rich variant (JOBLightRich, JOBLightRangesRich,
// JOBMRich) drawing from the full predicate set — OR groups, ≠ / NOT IN,
// BETWEEN, IS [NOT] NULL — and Golden builds the fixed-seed mixed workload
// the CI accuracy-regression gate scores against.
//
// Every query is labeled with its true cardinality (exact executor) and its
// join graph's inner-join size (for Figure 6 selectivities).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"neurocard/internal/datagen"
	"neurocard/internal/exec"
	"neurocard/internal/query"
	"neurocard/internal/sampler"
	"neurocard/internal/schema"
	"neurocard/internal/table"
	"neurocard/internal/value"
)

// LabeledQuery is a benchmark query with ground truth attached.
type LabeledQuery struct {
	Query     query.Query
	TrueCard  float64 // exact cardinality (≥ 0)
	InnerSize float64 // unfiltered inner-join size of the query's graph
}

// Selectivity returns TrueCard/InnerSize (Figure 6's x-axis).
func (lq LabeledQuery) Selectivity() float64 {
	if lq.InnerSize == 0 {
		return 0
	}
	return lq.TrueCard / lq.InnerSize
}

// Workload is a named labeled query set.
type Workload struct {
	Name    string
	Queries []LabeledQuery
}

// QError is the evaluation metric: max(act/est, est/act) with both sides
// lower-bounded at 1 (§7.1).
func QError(est, act float64) float64 {
	if est < 1 {
		est = 1
	}
	if act < 1 {
		act = 1
	}
	return math.Max(est/act, act/est)
}

// Summary holds the reported quantiles of a Q-error distribution.
type Summary struct {
	Median, P95, P99, Max float64
}

// Summarize computes the paper's reported quantiles.
func Summarize(qerrs []float64) Summary {
	if len(qerrs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), qerrs...)
	sort.Float64s(s)
	return Summary{
		Median: Quantile(s, 0.5),
		P95:    Quantile(s, 0.95),
		P99:    Quantile(s, 0.99),
		Max:    s[len(s)-1],
	}
}

// Quantile interpolates the q-th quantile of a sorted slice.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// String renders the summary as a table row.
func (s Summary) String() string {
	return fmt.Sprintf("median %.3g  p95 %.3g  p99 %.3g  max %.3g", s.Median, s.P95, s.P99, s.Max)
}

// colClass separates range-filterable columns from equality-only ones.
var rangeCols = map[string]bool{
	"production_year": true,
	"episode_nr":      true,
	"season_nr":       true,
	"nr_order":        true,
	"info_val":        true,
	"phonetic_code":   true,
	"name_pcode":      true,
	"company_id":      true,
}

// tupleDrawer caches per-join-graph inner samplers for literal drawing.
type tupleDrawer struct {
	sch   *schema.Schema
	inner map[string]*sampler.Inner
}

func newTupleDrawer(sch *schema.Schema) *tupleDrawer {
	return &tupleDrawer{sch: sch, inner: make(map[string]*sampler.Inner)}
}

// draw returns one uniform inner-join tuple over the given tables as a map
// table → base row. Returns false when the graph's inner join is empty.
func (td *tupleDrawer) draw(rng *rand.Rand, tables []string) (map[string]int, bool) {
	key := fmt.Sprint(tables)
	in, ok := td.inner[key]
	if !ok {
		sub, err := td.sch.SubSchema(tables)
		if err != nil {
			panic(fmt.Sprintf("workload: invalid join graph %v: %v", tables, err))
		}
		in, err = sampler.NewInner(sub, nil)
		if err != nil {
			panic(fmt.Sprintf("workload: %v", err))
		}
		td.inner[key] = in
	}
	out := make([]int32, len(in.Tables()))
	if !in.Sample(rng, out) {
		return nil, false
	}
	m := make(map[string]int, len(out))
	for i, name := range in.Tables() {
		m[name] = int(out[i])
	}
	return m, true
}

// filterFromTuple builds a filter on (table, col) whose literal is the
// drawn tuple's value, guaranteeing the tuple satisfies it. Returns false
// when the tuple's value is NULL (no filter can be placed).
func filterFromTuple(rng *rand.Rand, sch *schema.Schema, tbl, col string, row int, allowRange bool) (query.Filter, bool) {
	c := sch.Table(tbl).MustCol(col)
	v := c.Value(row)
	if v.IsNull() {
		return query.Filter{}, false
	}
	f := query.Filter{Table: tbl, Col: col, Val: v}
	if allowRange && rangeCols[col] {
		switch rng.Intn(3) {
		case 0:
			f.Op = query.OpLe
		case 1:
			f.Op = query.OpGe
		default:
			f.Op = query.OpEq
		}
	} else {
		// Equality, occasionally widened to IN (still satisfied by v).
		if rng.Intn(5) == 0 {
			f.Op = query.OpIn
			f.Set = []value.Value{v}
			for k := 0; k < 1+rng.Intn(2); k++ {
				alt := c.ValueForID(int32(1 + rng.Intn(c.DictSize()-1)))
				f.Set = append(f.Set, alt)
			}
			f.Val = value.Null
		} else {
			f.Op = query.OpEq
		}
	}
	return f, true
}

// richFilterFromTuple builds a filter on (tbl, col) from the full operator
// set — disjunctions, negations, BETWEEN, and null tests — still guaranteed
// to be satisfied by the drawn tuple, so generated queries stay non-empty.
// Unlike filterFromTuple it never fails: a NULL tuple value places IS NULL
// (the null-aware case the classic generators skip).
func richFilterFromTuple(rng *rand.Rand, sch *schema.Schema, tbl, col string, row int, allowRange bool) (query.Filter, bool) {
	c := sch.Table(tbl).MustCol(col)
	v := c.Value(row)
	f := query.Filter{Table: tbl, Col: col}
	if v.IsNull() {
		f.Op = query.OpIsNull
		if rng.Intn(3) == 0 { // sometimes widen: IS NULL OR = <literal>
			f.Or = []query.Filter{{Op: query.OpEq, Val: randomLiteral(rng, c, value.Null)}}
		}
		return f, true
	}
	id, _ := c.IDForValue(v)
	maxID := int32(c.DictSize()) - 1
	choices := 5
	if allowRange && rangeCols[col] {
		choices = 7 // adds BETWEEN and a one-sided range
	}
	switch rng.Intn(choices) {
	case 0: // equality
		f.Op = query.OpEq
		f.Val = v
	case 1: // ≠ some other value (v still matches)
		f.Op = query.OpNeq
		f.Val = randomLiteral(rng, c, v)
		if f.Val.IsNull() { // single-valued dictionary: fall back to equality
			f.Op, f.Val = query.OpEq, v
		}
	case 2: // NOT IN a set excluding v
		for k := 0; k < 1+rng.Intn(2); k++ {
			if alt := randomLiteral(rng, c, v); !alt.IsNull() {
				f.Set = append(f.Set, alt)
			}
		}
		if len(f.Set) == 0 {
			f.Op, f.Val = query.OpEq, v
		} else {
			f.Op = query.OpNotIn
		}
	case 3: // IS NOT NULL (matches any non-NULL tuple value)
		f.Op = query.OpIsNotNull
	case 4: // OR group anchored on equality with v
		f.Op = query.OpEq
		f.Val = v
		for k := 0; k < 1+rng.Intn(2); k++ {
			if rng.Intn(4) == 0 {
				f.Or = append(f.Or, query.Filter{Op: query.OpIsNull})
			} else if alt := randomLiteral(rng, c, value.Null); !alt.IsNull() {
				f.Or = append(f.Or, query.Filter{Op: query.OpEq, Val: alt})
			}
		}
	case 5: // BETWEEN dictionary neighbors around v (inclusive, so v matches)
		lo := id - int32(rng.Intn(4))
		hi := id + int32(rng.Intn(4))
		if lo < 1 {
			lo = 1
		}
		if hi > maxID {
			hi = maxID
		}
		f.Op = query.OpBetween
		f.Val = c.ValueForID(lo)
		f.Hi = c.ValueForID(hi)
	default: // one-sided range
		if rng.Intn(2) == 0 {
			f.Op = query.OpLe
		} else {
			f.Op = query.OpGe
		}
		f.Val = v
	}
	return f, true
}

// randomLiteral draws a uniform non-NULL dictionary value different from
// avoid (pass value.Null to accept any). Returns value.Null when the
// dictionary has no such value.
func randomLiteral(rng *rand.Rand, c *table.Column, avoid value.Value) value.Value {
	n := c.DictSize() - 1
	if n < 1 {
		return value.Null
	}
	for attempt := 0; attempt < 8; attempt++ {
		cand := c.ValueForID(int32(1 + rng.Intn(n)))
		if avoid.IsNull() || !cand.Equal(avoid) {
			return cand
		}
	}
	return value.Null
}

// label computes ground truth for a query.
func label(sch *schema.Schema, q query.Query) (LabeledQuery, error) {
	card, err := exec.Cardinality(sch, q)
	if err != nil {
		return LabeledQuery{}, err
	}
	inner, err := exec.InnerJoinSize(sch, q.Tables)
	if err != nil {
		return LabeledQuery{}, err
	}
	return LabeledQuery{Query: q, TrueCard: card, InnerSize: inner}, nil
}

// jobLightGraphs returns the 18 join graphs of the JOB-light benchmark
// (title plus 1-4 of its five fact tables, the combinations the original
// 70 queries use).
func jobLightGraphs() [][]string {
	const (
		ci  = "cast_info"
		mc  = "movie_companies"
		mi  = "movie_info"
		mk  = "movie_keyword"
		mii = "movie_info_idx"
	)
	combos := [][]string{
		{ci}, {mc}, {mi}, {mk}, {mii},
		{ci, mc}, {ci, mi}, {ci, mk}, {mc, mi}, {mc, mk}, {mi, mii}, {mc, mii},
		{ci, mi, mk}, {ci, mc, mi}, {mc, mi, mii}, {ci, mc, mk},
		{ci, mc, mi, mk}, {mc, mi, mii, mk},
	}
	graphs := make([][]string, len(combos))
	for i, c := range combos {
		graphs[i] = append([]string{"title"}, c...)
	}
	return graphs
}

// JOBLight generates the 70-query JOB-light analogue: joins of 2-5 tables
// with equality filters on categorical columns and range filters on
// title.production_year only.
func JOBLight(d *datagen.Dataset, seed int64) (*Workload, error) {
	return jobLight(d, seed, false)
}

// JOBLightRich is the disjunctive, null-aware JOB-light variant: the same
// join graphs, with filters drawn from the full operator set (OR groups,
// ≠ / NOT IN, BETWEEN, IS [NOT] NULL) while still guaranteeing non-empty
// results.
func JOBLightRich(d *datagen.Dataset, seed int64) (*Workload, error) {
	return jobLight(d, seed, true)
}

func jobLight(d *datagen.Dataset, seed int64, rich bool) (*Workload, error) {
	rng := rand.New(rand.NewSource(seed))
	graphs := jobLightGraphs()
	td := newTupleDrawer(d.Schema)
	w := &Workload{Name: "JOB-light"}
	if rich {
		w.Name = "JOB-light-rich"
	}
	const n = 70
	for len(w.Queries) < n {
		graph := graphs[rng.Intn(len(graphs))]
		tuple, ok := td.draw(rng, graph)
		if !ok {
			continue
		}
		var filters []query.Filter
		// Range filter on production_year for about half the queries.
		if rng.Intn(2) == 0 {
			if f, ok := pickFilter(rng, d.Schema, "title", "production_year", tuple["title"], true, rich); ok {
				filters = append(filters, f)
			}
		}
		// Filters on 1-3 categorical fact columns.
		cats := []struct{ tbl, col string }{
			{"title", "kind_id"},
			{"cast_info", "role_id"},
			{"movie_companies", "company_type_id"},
			{"movie_info", "info_type_id"},
			{"movie_keyword", "keyword_id"},
			{"movie_info_idx", "info_type_id"},
		}
		rng.Shuffle(len(cats), func(i, j int) { cats[i], cats[j] = cats[j], cats[i] })
		want := 1 + rng.Intn(3)
		for _, cc := range cats {
			if len(filters) >= want+1 {
				break
			}
			row, inGraph := tuple[cc.tbl]
			if !inGraph {
				continue
			}
			if f, ok := pickFilter(rng, d.Schema, cc.tbl, cc.col, row, false, rich); ok {
				// JOB-light proper uses pure equality (no IN).
				if !rich && f.Op == query.OpIn {
					f.Op = query.OpEq
					f.Val = f.Set[0]
					f.Set = nil
				}
				filters = append(filters, f)
			}
		}
		if len(filters) == 0 {
			continue
		}
		lq, err := label(d.Schema, query.Query{Tables: graph, Filters: filters})
		if err != nil {
			return nil, err
		}
		w.Queries = append(w.Queries, lq)
	}
	return w, nil
}

// pickFilter dispatches to the classic or the rich filter generator.
func pickFilter(rng *rand.Rand, sch *schema.Schema, tbl, col string, row int, allowRange, rich bool) (query.Filter, bool) {
	if rich {
		return richFilterFromTuple(rng, sch, tbl, col, row, allowRange)
	}
	return filterFromTuple(rng, sch, tbl, col, row, allowRange)
}

// JOBLightRanges generates the 1000-query JOB-light-ranges analogue: same
// join graphs, literals drawn from inner-join tuples, 3-6 operators per
// query across the full content column set.
func JOBLightRanges(d *datagen.Dataset, n int, seed int64) (*Workload, error) {
	return jobLightRanges(d, n, seed, false)
}

// JOBLightRangesRich is the disjunctive, null-aware JOB-light-ranges
// variant: the full operator set on every content column.
func JOBLightRangesRich(d *datagen.Dataset, n int, seed int64) (*Workload, error) {
	return jobLightRanges(d, n, seed, true)
}

func jobLightRanges(d *datagen.Dataset, n int, seed int64, rich bool) (*Workload, error) {
	rng := rand.New(rand.NewSource(seed))
	graphs := jobLightGraphs()
	td := newTupleDrawer(d.Schema)
	w := &Workload{Name: "JOB-light-ranges"}
	if rich {
		w.Name = "JOB-light-ranges-rich"
	}
	for len(w.Queries) < n {
		// Uniformly distributed over join graphs (§7.1).
		graph := graphs[len(w.Queries)%len(graphs)]
		tuple, ok := td.draw(rng, graph)
		if !ok {
			continue
		}
		// Candidate (table, col) pairs present in this graph.
		type tc struct{ tbl, col string }
		var cands []tc
		for _, tbl := range graph {
			for _, col := range d.ContentCols[tbl] {
				cands = append(cands, tc{tbl, col})
			}
		}
		rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		want := 3 + rng.Intn(4) // 3-6 operators
		var filters []query.Filter
		for _, cc := range cands {
			if len(filters) >= want {
				break
			}
			if f, ok := pickFilter(rng, d.Schema, cc.tbl, cc.col, tuple[cc.tbl], true, rich); ok {
				filters = append(filters, f)
			}
		}
		if len(filters) < 3 {
			continue // tuple too NULL-heavy; redraw
		}
		lq, err := label(d.Schema, query.Query{Tables: graph, Filters: filters})
		if err != nil {
			return nil, err
		}
		w.Queries = append(w.Queries, lq)
	}
	return w, nil
}

// JOBM generates the 113-query JOB-M analogue: connected subtrees of the
// 16-table snowflake containing title, joining 2-11 tables, with 2-5
// filters on content columns.
func JOBM(d *datagen.Dataset, seed int64) (*Workload, error) {
	return jobM(d, seed, false)
}

// JOBMRich is the disjunctive, null-aware JOB-M variant.
func JOBMRich(d *datagen.Dataset, seed int64) (*Workload, error) {
	return jobM(d, seed, true)
}

func jobM(d *datagen.Dataset, seed int64, rich bool) (*Workload, error) {
	rng := rand.New(rand.NewSource(seed))
	td := newTupleDrawer(d.Schema)
	w := &Workload{Name: "JOB-M"}
	if rich {
		w.Name = "JOB-M-rich"
	}
	const n = 113
	for len(w.Queries) < n {
		graph := growSubtree(rng, d.Schema, "title", 2+rng.Intn(10))
		if len(graph) < 2 {
			continue
		}
		tuple, ok := td.draw(rng, graph)
		if !ok {
			continue
		}
		type tc struct{ tbl, col string }
		var cands []tc
		for _, tbl := range graph {
			for _, col := range d.ContentCols[tbl] {
				cands = append(cands, tc{tbl, col})
			}
		}
		rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		want := 2 + rng.Intn(4)
		var filters []query.Filter
		for _, cc := range cands {
			if len(filters) >= want {
				break
			}
			if f, ok := pickFilter(rng, d.Schema, cc.tbl, cc.col, tuple[cc.tbl], true, rich); ok {
				filters = append(filters, f)
			}
		}
		if len(filters) == 0 {
			continue
		}
		lq, err := label(d.Schema, query.Query{Tables: graph, Filters: filters})
		if err != nil {
			return nil, err
		}
		w.Queries = append(w.Queries, lq)
	}
	return w, nil
}

// Golden generates the fixed-seed oracle-labeled workload the accuracy
// regression gate scores against: n queries over the JOB-light join graphs
// mixing classic conjunctive filters with the rich operator set (OR groups,
// negations, BETWEEN, null tests), each labeled with its exact cardinality.
// Every query is non-empty by construction; q-errors against it are finite.
func Golden(d *datagen.Dataset, n int, seed int64) (*Workload, error) {
	rng := rand.New(rand.NewSource(seed))
	graphs := jobLightGraphs()
	td := newTupleDrawer(d.Schema)
	w := &Workload{Name: "golden"}
	for len(w.Queries) < n {
		graph := graphs[len(w.Queries)%len(graphs)]
		tuple, ok := td.draw(rng, graph)
		if !ok {
			continue
		}
		rich := len(w.Queries)%2 == 1 // alternate classic and rich queries
		type tc struct{ tbl, col string }
		var cands []tc
		for _, tbl := range graph {
			for _, col := range d.ContentCols[tbl] {
				cands = append(cands, tc{tbl, col})
			}
		}
		rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		want := 1 + rng.Intn(4)
		var filters []query.Filter
		for _, cc := range cands {
			if len(filters) >= want {
				break
			}
			if f, ok := pickFilter(rng, d.Schema, cc.tbl, cc.col, tuple[cc.tbl], true, rich); ok {
				filters = append(filters, f)
			}
		}
		if len(filters) == 0 {
			continue
		}
		lq, err := label(d.Schema, query.Query{Tables: graph, Filters: filters})
		if err != nil {
			return nil, err
		}
		w.Queries = append(w.Queries, lq)
	}
	return w, nil
}

// growSubtree grows a random connected subtree from start up to maxTables.
func growSubtree(rng *rand.Rand, sch *schema.Schema, start string, maxTables int) []string {
	in := map[string]bool{start: true}
	out := []string{start}
	for len(out) < maxTables {
		var cands []string
		for t := range in {
			for _, c := range sch.Children(t) {
				if !in[c] {
					cands = append(cands, c)
				}
			}
			if e, ok := sch.Parent(t); ok && !in[e.Parent] {
				cands = append(cands, e.Parent)
			}
		}
		if len(cands) == 0 {
			break
		}
		pick := cands[rng.Intn(len(cands))]
		in[pick] = true
		out = append(out, pick)
	}
	sort.Strings(out[1:]) // deterministic order after the root
	return out
}
