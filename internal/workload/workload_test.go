package workload

import (
	"math"
	"testing"

	"neurocard/internal/datagen"
)

func dataset(t *testing.T) *datagen.Dataset {
	t.Helper()
	d, err := datagen.JOBLight(datagen.Config{Seed: 5, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestQError(t *testing.T) {
	cases := []struct{ est, act, want float64 }{
		{10, 10, 1},
		{100, 10, 10},
		{10, 100, 10},
		{0.5, 0.2, 1}, // both clamp to 1
		{0, 50, 50},
	}
	for _, c := range cases {
		if got := QError(c.est, c.act); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("QError(%v,%v) = %v, want %v", c.est, c.act, got, c.want)
		}
	}
}

func TestSummarize(t *testing.T) {
	qerrs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	s := Summarize(qerrs)
	if s.Max != 100 {
		t.Errorf("Max = %v", s.Max)
	}
	if s.Median < 4 || s.Median > 6 {
		t.Errorf("Median = %v", s.Median)
	}
	if s.P99 < s.P95 || s.Max < s.P99 {
		t.Errorf("quantiles not monotone: %+v", s)
	}
	if got := Summarize(nil); got.Max != 0 {
		t.Errorf("empty Summarize = %+v", got)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	if got := Quantile(sorted, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(sorted, 1); got != 4 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(sorted, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("q0.5 = %v", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	// Empty slice: every quantile is 0, no panic.
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := Quantile(nil, q); got != 0 {
			t.Errorf("Quantile(nil, %v) = %v", q, got)
		}
	}
	// n = 1: every quantile is the single element.
	for _, q := range []float64{-0.5, 0, 0.25, 0.5, 0.95, 1, 1.5} {
		if got := Quantile([]float64{7}, q); got != 7 {
			t.Errorf("Quantile([7], %v) = %v", q, got)
		}
	}
	// Out-of-range q clamps to the extremes.
	s := []float64{1, 5, 9}
	if got := Quantile(s, -3); got != 1 {
		t.Errorf("q<0 = %v", got)
	}
	if got := Quantile(s, 3); got != 9 {
		t.Errorf("q>1 = %v", got)
	}
	// Even-length interpolation: p95 of [10, 20] sits between the elements.
	if got := Quantile([]float64{10, 20}, 0.95); math.Abs(got-19.5) > 1e-12 {
		t.Errorf("even-length q0.95 = %v, want 19.5", got)
	}
	if got := Quantile([]float64{10, 20, 30, 40}, 0.25); math.Abs(got-17.5) > 1e-12 {
		t.Errorf("q0.25 over 4 = %v, want 17.5", got)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Errorf("Summarize(nil) = %+v", s)
	}
	if s := Summarize([]float64{3}); s.Median != 3 || s.P95 != 3 || s.P99 != 3 || s.Max != 3 {
		t.Errorf("Summarize([3]) = %+v", s)
	}
	// Even length: median interpolates, Max is exact, input left unsorted.
	in := []float64{4, 1, 3, 2}
	s := Summarize(in)
	if math.Abs(s.Median-2.5) > 1e-12 || s.Max != 4 {
		t.Errorf("Summarize(%v) = %+v", in, s)
	}
	if in[0] != 4 {
		t.Error("Summarize mutated its input")
	}
}

func TestJOBLightWorkload(t *testing.T) {
	d := dataset(t)
	w, err := JOBLight(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 70 {
		t.Fatalf("queries = %d, want 70", len(w.Queries))
	}
	for i, lq := range w.Queries {
		if lq.TrueCard < 1 {
			t.Errorf("query %d (%s) is empty: generation must guarantee non-empty results", i, lq.Query)
		}
		if len(lq.Query.Tables) < 2 || len(lq.Query.Tables) > 5 {
			t.Errorf("query %d joins %d tables, want 2-5", i, len(lq.Query.Tables))
		}
		if lq.Query.Tables[0] != "title" {
			t.Errorf("query %d does not include title first", i)
		}
		// Range ops only on production_year (JOB-light's defining trait).
		for _, f := range lq.Query.Filters {
			isRange := f.Op != 0 && f.Op.String() != "=" && f.Op.String() != "IN"
			if isRange && f.Col != "production_year" {
				t.Errorf("query %d: range filter on %s.%s", i, f.Table, f.Col)
			}
		}
		if lq.InnerSize < lq.TrueCard {
			t.Errorf("query %d: inner size %v < card %v", i, lq.InnerSize, lq.TrueCard)
		}
	}
}

func TestJOBLightRangesWorkload(t *testing.T) {
	d := dataset(t)
	w, err := JOBLightRanges(d, 90, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 90 {
		t.Fatalf("queries = %d", len(w.Queries))
	}
	rangeSeen := false
	graphs := map[string]bool{}
	for i, lq := range w.Queries {
		if lq.TrueCard < 1 {
			t.Errorf("query %d empty", i)
		}
		if len(lq.Query.Filters) < 3 || len(lq.Query.Filters) > 6 {
			t.Errorf("query %d has %d filters, want 3-6", i, len(lq.Query.Filters))
		}
		for _, f := range lq.Query.Filters {
			if f.Op.String() == "<=" || f.Op.String() == ">=" {
				rangeSeen = true
			}
		}
		graphs[graphKey(lq.Query.Tables)] = true
	}
	if !rangeSeen {
		t.Error("no range filters generated")
	}
	if len(graphs) < 10 {
		t.Errorf("only %d distinct join graphs used", len(graphs))
	}
}

func graphKey(tables []string) string {
	out := ""
	for _, t := range tables {
		out += t + ","
	}
	return out
}

func TestJOBMWorkload(t *testing.T) {
	d, err := datagen.JOBM(datagen.Config{Seed: 5, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	w, err := JOBM(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 113 {
		t.Fatalf("queries = %d, want 113", len(w.Queries))
	}
	maxTables := 0
	for i, lq := range w.Queries {
		if lq.TrueCard < 1 {
			t.Errorf("query %d empty", i)
		}
		n := len(lq.Query.Tables)
		if n < 2 || n > 11 {
			t.Errorf("query %d joins %d tables", i, n)
		}
		if n > maxTables {
			maxTables = n
		}
	}
	if maxTables < 6 {
		t.Errorf("largest join only %d tables; want snowflake-deep queries", maxTables)
	}
}

// opCensus counts predicate kinds over a workload, descending into OR
// groups.
func opCensus(w *Workload) map[string]int {
	census := map[string]int{}
	for _, lq := range w.Queries {
		for _, f := range lq.Query.Filters {
			census[f.Op.String()]++
			if len(f.Or) > 0 {
				census["OR"]++
			}
		}
	}
	return census
}

func TestRichWorkloadVariants(t *testing.T) {
	d := dataset(t)
	for name, gen := range map[string]func() (*Workload, error){
		"JOBLightRich":       func() (*Workload, error) { return JOBLightRich(d, 4) },
		"JOBLightRangesRich": func() (*Workload, error) { return JOBLightRangesRich(d, 60, 4) },
	} {
		w, err := gen()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, lq := range w.Queries {
			if lq.TrueCard < 1 {
				t.Errorf("%s query %d (%s) is empty: rich generation must keep tuple satisfaction", name, i, lq.Query)
			}
		}
		census := opCensus(w)
		richOps := census["OR"] + census["!="] + census["NOT IN"] + census["BETWEEN"] +
			census["IS NULL"] + census["IS NOT NULL"]
		if richOps == 0 {
			t.Errorf("%s: no disjunctive/negated/null-aware predicates generated (census %v)", name, census)
		}
		t.Logf("%s op census: %v", name, census)
	}
}

func TestJOBMRichWorkload(t *testing.T) {
	d, err := datagen.JOBM(datagen.Config{Seed: 5, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	w, err := JOBMRich(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 113 {
		t.Fatalf("queries = %d", len(w.Queries))
	}
	for i, lq := range w.Queries {
		if lq.TrueCard < 1 {
			t.Errorf("query %d empty", i)
		}
	}
	census := opCensus(w)
	if census["OR"]+census["IS NULL"]+census["!="]+census["NOT IN"]+census["BETWEEN"] == 0 {
		t.Errorf("no rich predicates in JOB-M-rich (census %v)", census)
	}
}

func TestGoldenWorkload(t *testing.T) {
	d := dataset(t)
	w, err := Golden(d, 80, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 80 {
		t.Fatalf("queries = %d", len(w.Queries))
	}
	for i, lq := range w.Queries {
		if lq.TrueCard < 1 {
			t.Errorf("golden query %d (%s) is empty", i, lq.Query)
		}
	}
	census := opCensus(w)
	if census["OR"] == 0 || census["IS NULL"]+census["IS NOT NULL"] == 0 {
		t.Errorf("golden workload must include disjunctive and null-aware queries (census %v)", census)
	}
	// Fixed seed ⇒ identical regeneration (the gate depends on this).
	w2, err := Golden(d, 80, 13)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Queries {
		if w.Queries[i].Query.String() != w2.Queries[i].Query.String() ||
			w.Queries[i].TrueCard != w2.Queries[i].TrueCard {
			t.Fatalf("golden query %d differs across regenerations", i)
		}
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	d := dataset(t)
	a, err := JOBLight(d, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := JOBLight(d, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Queries {
		if a.Queries[i].Query.String() != b.Queries[i].Query.String() {
			t.Fatalf("query %d differs across runs", i)
		}
		if a.Queries[i].TrueCard != b.Queries[i].TrueCard {
			t.Fatalf("label %d differs across runs", i)
		}
	}
}

func TestSelectivitySpread(t *testing.T) {
	d := dataset(t)
	w, err := JOBLightRanges(d, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	minSel, maxSel := math.Inf(1), 0.0
	for _, lq := range w.Queries {
		sel := lq.Selectivity()
		if sel <= 0 || sel > 1 {
			t.Fatalf("selectivity %v out of (0,1]", sel)
		}
		minSel = math.Min(minSel, sel)
		maxSel = math.Max(maxSel, sel)
	}
	// Figure 6's point: the spectrum spans orders of magnitude.
	if maxSel/minSel < 100 {
		t.Errorf("selectivity spread only %.1f× (min %v, max %v)", maxSel/minSel, minSel, maxSel)
	}
}
