package workload

import (
	"math"
	"testing"

	"neurocard/internal/datagen"
)

func dataset(t *testing.T) *datagen.Dataset {
	t.Helper()
	d, err := datagen.JOBLight(datagen.Config{Seed: 5, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestQError(t *testing.T) {
	cases := []struct{ est, act, want float64 }{
		{10, 10, 1},
		{100, 10, 10},
		{10, 100, 10},
		{0.5, 0.2, 1}, // both clamp to 1
		{0, 50, 50},
	}
	for _, c := range cases {
		if got := QError(c.est, c.act); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("QError(%v,%v) = %v, want %v", c.est, c.act, got, c.want)
		}
	}
}

func TestSummarize(t *testing.T) {
	qerrs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	s := Summarize(qerrs)
	if s.Max != 100 {
		t.Errorf("Max = %v", s.Max)
	}
	if s.Median < 4 || s.Median > 6 {
		t.Errorf("Median = %v", s.Median)
	}
	if s.P99 < s.P95 || s.Max < s.P99 {
		t.Errorf("quantiles not monotone: %+v", s)
	}
	if got := Summarize(nil); got.Max != 0 {
		t.Errorf("empty Summarize = %+v", got)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	if got := Quantile(sorted, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(sorted, 1); got != 4 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(sorted, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("q0.5 = %v", got)
	}
}

func TestJOBLightWorkload(t *testing.T) {
	d := dataset(t)
	w, err := JOBLight(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 70 {
		t.Fatalf("queries = %d, want 70", len(w.Queries))
	}
	for i, lq := range w.Queries {
		if lq.TrueCard < 1 {
			t.Errorf("query %d (%s) is empty: generation must guarantee non-empty results", i, lq.Query)
		}
		if len(lq.Query.Tables) < 2 || len(lq.Query.Tables) > 5 {
			t.Errorf("query %d joins %d tables, want 2-5", i, len(lq.Query.Tables))
		}
		if lq.Query.Tables[0] != "title" {
			t.Errorf("query %d does not include title first", i)
		}
		// Range ops only on production_year (JOB-light's defining trait).
		for _, f := range lq.Query.Filters {
			isRange := f.Op != 0 && f.Op.String() != "=" && f.Op.String() != "IN"
			if isRange && f.Col != "production_year" {
				t.Errorf("query %d: range filter on %s.%s", i, f.Table, f.Col)
			}
		}
		if lq.InnerSize < lq.TrueCard {
			t.Errorf("query %d: inner size %v < card %v", i, lq.InnerSize, lq.TrueCard)
		}
	}
}

func TestJOBLightRangesWorkload(t *testing.T) {
	d := dataset(t)
	w, err := JOBLightRanges(d, 90, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 90 {
		t.Fatalf("queries = %d", len(w.Queries))
	}
	rangeSeen := false
	graphs := map[string]bool{}
	for i, lq := range w.Queries {
		if lq.TrueCard < 1 {
			t.Errorf("query %d empty", i)
		}
		if len(lq.Query.Filters) < 3 || len(lq.Query.Filters) > 6 {
			t.Errorf("query %d has %d filters, want 3-6", i, len(lq.Query.Filters))
		}
		for _, f := range lq.Query.Filters {
			if f.Op.String() == "<=" || f.Op.String() == ">=" {
				rangeSeen = true
			}
		}
		graphs[graphKey(lq.Query.Tables)] = true
	}
	if !rangeSeen {
		t.Error("no range filters generated")
	}
	if len(graphs) < 10 {
		t.Errorf("only %d distinct join graphs used", len(graphs))
	}
}

func graphKey(tables []string) string {
	out := ""
	for _, t := range tables {
		out += t + ","
	}
	return out
}

func TestJOBMWorkload(t *testing.T) {
	d, err := datagen.JOBM(datagen.Config{Seed: 5, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	w, err := JOBM(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 113 {
		t.Fatalf("queries = %d, want 113", len(w.Queries))
	}
	maxTables := 0
	for i, lq := range w.Queries {
		if lq.TrueCard < 1 {
			t.Errorf("query %d empty", i)
		}
		n := len(lq.Query.Tables)
		if n < 2 || n > 11 {
			t.Errorf("query %d joins %d tables", i, n)
		}
		if n > maxTables {
			maxTables = n
		}
	}
	if maxTables < 6 {
		t.Errorf("largest join only %d tables; want snowflake-deep queries", maxTables)
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	d := dataset(t)
	a, err := JOBLight(d, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := JOBLight(d, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Queries {
		if a.Queries[i].Query.String() != b.Queries[i].Query.String() {
			t.Fatalf("query %d differs across runs", i)
		}
		if a.Queries[i].TrueCard != b.Queries[i].TrueCard {
			t.Fatalf("label %d differs across runs", i)
		}
	}
}

func TestSelectivitySpread(t *testing.T) {
	d := dataset(t)
	w, err := JOBLightRanges(d, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	minSel, maxSel := math.Inf(1), 0.0
	for _, lq := range w.Queries {
		sel := lq.Selectivity()
		if sel <= 0 || sel > 1 {
			t.Fatalf("selectivity %v out of (0,1]", sel)
		}
		minSel = math.Min(minSel, sel)
		maxSel = math.Max(maxSel, sel)
	}
	// Figure 6's point: the spectrum spans orders of magnitude.
	if maxSel/minSel < 100 {
		t.Errorf("selectivity spread only %.1f× (min %v, max %v)", maxSel/minSel, minSel, maxSel)
	}
}
