// Package schema models a join schema as a tree of tables connected by
// single-column equi-join edges (the paper's §3.3 formulation: multi-way,
// multi-key equi-joins over an acyclic schema). A table may carry several
// join-key columns (one per incident edge), which is how JOB-M-style
// multi-key joins are expressed. Queries are connected subtrees of the
// schema.
//
// The package also implements the §6 bookkeeping needed for schema
// subsetting: given a query's table subset Q, every omitted table R has a
// unique join key (the key on R's side of the first edge from R toward Q)
// whose fanout the estimator must divide out.
package schema

import (
	"fmt"
	"sort"

	"neurocard/internal/table"
	"neurocard/internal/value"
)

// Edge declares one equi-join relationship between two tables. Direction is
// irrelevant at declaration time; the schema orients edges away from the
// root.
type Edge struct {
	LeftTable, LeftCol   string
	RightTable, RightCol string
}

// ParentEdge describes the oriented edge connecting a non-root table to its
// parent.
type ParentEdge struct {
	Parent    string
	ParentCol string // join key column on the parent side
	ChildCol  string // join key column on the child side
}

// Schema is a validated join tree. It is immutable and safe for concurrent
// use.
type Schema struct {
	tables map[string]*table.Table
	root   string
	order  []string // BFS order from root; order[0] == root

	parent   map[string]ParentEdge // child table -> oriented edge
	children map[string][]string   // parent table -> children, in edge order
	adjacent map[string][]neighbor
}

type neighbor struct {
	table    string
	selfCol  string // join key column on this table's side
	otherCol string
}

// New validates the tables and edges and returns a schema rooted at root.
// Requirements: unique table names, every edge endpoint exists with an int
// join column, and the edge set forms a tree spanning all tables (connected,
// acyclic).
func New(tables []*table.Table, root string, edges []Edge) (*Schema, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("schema: no tables")
	}
	s := &Schema{
		tables:   make(map[string]*table.Table, len(tables)),
		root:     root,
		parent:   make(map[string]ParentEdge),
		children: make(map[string][]string),
		adjacent: make(map[string][]neighbor),
	}
	for _, t := range tables {
		if _, dup := s.tables[t.Name()]; dup {
			return nil, fmt.Errorf("schema: duplicate table %q", t.Name())
		}
		s.tables[t.Name()] = t
	}
	if _, ok := s.tables[root]; !ok {
		return nil, fmt.Errorf("schema: root table %q not found", root)
	}
	if len(edges) != len(tables)-1 {
		return nil, fmt.Errorf("schema: %d edges for %d tables; a join tree needs exactly %d",
			len(edges), len(tables), len(tables)-1)
	}
	for _, e := range edges {
		if err := s.checkEndpoint(e.LeftTable, e.LeftCol); err != nil {
			return nil, err
		}
		if err := s.checkEndpoint(e.RightTable, e.RightCol); err != nil {
			return nil, err
		}
		if e.LeftTable == e.RightTable {
			return nil, fmt.Errorf("schema: self-join edge on %q; duplicate the table under a new name instead", e.LeftTable)
		}
		s.adjacent[e.LeftTable] = append(s.adjacent[e.LeftTable], neighbor{e.RightTable, e.LeftCol, e.RightCol})
		s.adjacent[e.RightTable] = append(s.adjacent[e.RightTable], neighbor{e.LeftTable, e.RightCol, e.LeftCol})
	}

	// BFS from root to orient edges and verify the tree is connected (with
	// the edge-count check above, connected ⇒ acyclic).
	visited := map[string]bool{root: true}
	s.order = []string{root}
	for i := 0; i < len(s.order); i++ {
		cur := s.order[i]
		for _, nb := range s.adjacent[cur] {
			if visited[nb.table] {
				continue
			}
			visited[nb.table] = true
			s.order = append(s.order, nb.table)
			s.parent[nb.table] = ParentEdge{Parent: cur, ParentCol: nb.selfCol, ChildCol: nb.otherCol}
			s.children[cur] = append(s.children[cur], nb.table)
		}
	}
	if len(s.order) != len(tables) {
		var missing []string
		for name := range s.tables {
			if !visited[name] {
				missing = append(missing, name)
			}
		}
		sort.Strings(missing)
		return nil, fmt.Errorf("schema: tables not connected to root %q: %v", root, missing)
	}
	return s, nil
}

func (s *Schema) checkEndpoint(tbl, col string) error {
	t, ok := s.tables[tbl]
	if !ok {
		return fmt.Errorf("schema: edge references unknown table %q", tbl)
	}
	c := t.Col(col)
	if c == nil {
		return fmt.Errorf("schema: table %q has no join column %q", tbl, col)
	}
	if c.Kind() != value.KindInt {
		return fmt.Errorf("schema: join column %s.%s must be int, got %s", tbl, col, c.Kind())
	}
	return nil
}

// Root returns the root table name.
func (s *Schema) Root() string { return s.root }

// Tables returns all table names in BFS order from the root.
func (s *Schema) Tables() []string { return s.order }

// NumTables returns the number of tables in the schema.
func (s *Schema) NumTables() int { return len(s.order) }

// Table returns the named table, or nil if absent.
func (s *Schema) Table(name string) *table.Table { return s.tables[name] }

// Has reports whether the schema contains the named table.
func (s *Schema) Has(name string) bool { _, ok := s.tables[name]; return ok }

// Parent returns the oriented parent edge of a non-root table.
func (s *Schema) Parent(name string) (ParentEdge, bool) {
	e, ok := s.parent[name]
	return e, ok
}

// Children returns the child tables of name in edge-declaration order.
func (s *Schema) Children(name string) []string { return s.children[name] }

// JoinKeys returns the distinct join-key column names of a table (its side of
// every incident edge), in a deterministic order.
func (s *Schema) JoinKeys(name string) []string {
	seen := make(map[string]bool)
	var keys []string
	if e, ok := s.parent[name]; ok {
		keys = append(keys, e.ChildCol)
		seen[e.ChildCol] = true
	}
	for _, child := range s.children[name] {
		pc := s.parent[child].ParentCol
		if !seen[pc] {
			seen[pc] = true
			keys = append(keys, pc)
		}
	}
	return keys
}

// ValidateQuerySet checks that the given table names exist and form a
// non-empty connected subtree of the schema.
func (s *Schema) ValidateQuerySet(names []string) error {
	if len(names) == 0 {
		return fmt.Errorf("schema: query joins no tables")
	}
	set := make(map[string]bool, len(names))
	for _, n := range names {
		if !s.Has(n) {
			return fmt.Errorf("schema: query references unknown table %q", n)
		}
		if set[n] {
			return fmt.Errorf("schema: query lists table %q twice", n)
		}
		set[n] = true
	}
	// Connectivity: BFS within the subset from any member.
	start := names[0]
	frontier := []string{start}
	reached := map[string]bool{start: true}
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, nb := range s.adjacent[cur] {
			if set[nb.table] && !reached[nb.table] {
				reached[nb.table] = true
				frontier = append(frontier, nb.table)
			}
		}
	}
	if len(reached) != len(set) {
		return fmt.Errorf("schema: query tables %v are not a connected subtree", names)
	}
	return nil
}

// SubtreeRoot returns the member of the (validated, connected) query set that
// is highest in the schema tree, i.e. the unique member whose parent is
// outside the set (or the schema root).
func (s *Schema) SubtreeRoot(names []string) string {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	for _, n := range names {
		e, ok := s.parent[n]
		if !ok || !set[e.Parent] {
			return n
		}
	}
	// Unreachable for a validated connected set.
	panic(fmt.Sprintf("schema: no subtree root in %v", names))
}

// FanoutKey returns, for a table omitted from a query over the (validated,
// connected) table set Q, the join-key column of the omitted table whose
// fanout must be divided out (§6, "Handling fanout scaling for multi-key
// joins"): the key attached to the edge incident to the omitted table on the
// unique path from it to Q.
func (s *Schema) FanoutKey(omitted string, query map[string]bool) (string, error) {
	if query[omitted] {
		return "", fmt.Errorf("schema: table %q is part of the query, not omitted", omitted)
	}
	if !s.Has(omitted) {
		return "", fmt.Errorf("schema: unknown table %q", omitted)
	}
	// BFS from the omitted table; the first hop of the shortest path to any
	// query member identifies the incident edge. In a tree the path is
	// unique, so the first hop is well defined.
	type state struct {
		table    string
		firstCol string // omitted-side key column of the first edge taken
	}
	frontier := make([]state, 0, len(s.adjacent[omitted]))
	visited := map[string]bool{omitted: true}
	for _, nb := range s.adjacent[omitted] {
		if query[nb.table] {
			return nb.selfCol, nil
		}
		visited[nb.table] = true
		frontier = append(frontier, state{nb.table, nb.selfCol})
	}
	for len(frontier) > 0 {
		next := frontier[:0:0]
		for _, st := range frontier {
			for _, nb := range s.adjacent[st.table] {
				if visited[nb.table] {
					continue
				}
				if query[nb.table] {
					return st.firstCol, nil
				}
				visited[nb.table] = true
				next = append(next, state{nb.table, st.firstCol})
			}
		}
		frontier = next
	}
	return "", fmt.Errorf("schema: no path from %q to the query tables", omitted)
}

// SubSchema builds a new schema over a validated connected subset of tables,
// rooted at the subset's subtree root. Used to train per-subset models
// (DeepDB-style baselines, per-table ablation).
func (s *Schema) SubSchema(names []string) (*Schema, error) {
	if err := s.ValidateQuerySet(names); err != nil {
		return nil, err
	}
	set := make(map[string]bool, len(names))
	tables := make([]*table.Table, 0, len(names))
	for _, n := range names {
		set[n] = true
		tables = append(tables, s.tables[n])
	}
	var edges []Edge
	for _, n := range names {
		if e, ok := s.parent[n]; ok && set[e.Parent] {
			edges = append(edges, Edge{
				LeftTable: e.Parent, LeftCol: e.ParentCol,
				RightTable: n, RightCol: e.ChildCol,
			})
		}
	}
	return New(tables, s.SubtreeRoot(names), edges)
}
