package schema

import (
	"strings"
	"testing"

	"neurocard/internal/table"
	"neurocard/internal/value"
)

// keyTable builds a single-int-column table named name with column col.
func keyTable(name string, cols ...string) *table.Table {
	specs := make([]table.ColSpec, len(cols))
	for i, c := range cols {
		specs[i] = table.ColSpec{Name: c, Kind: value.KindInt}
	}
	b := table.MustBuilder(name, specs)
	row := make([]value.Value, len(cols))
	for i := range row {
		row[i] = value.Int(int64(i))
	}
	b.MustAppend(row...)
	return b.MustBuild()
}

// chainSchema builds A -x- B -y- C.
func chainSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := New(
		[]*table.Table{keyTable("A", "x"), keyTable("B", "x", "y"), keyTable("C", "y")},
		"A",
		[]Edge{
			{LeftTable: "A", LeftCol: "x", RightTable: "B", RightCol: "x"},
			{LeftTable: "B", LeftCol: "y", RightTable: "C", RightCol: "y"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// starSchema builds title at the root with three children.
func starSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := New(
		[]*table.Table{
			keyTable("title", "id"),
			keyTable("cast_info", "movie_id", "person_id"),
			keyTable("movie_keyword", "movie_id"),
			keyTable("name", "id"),
		},
		"title",
		[]Edge{
			{LeftTable: "title", LeftCol: "id", RightTable: "cast_info", RightCol: "movie_id"},
			{LeftTable: "title", LeftCol: "id", RightTable: "movie_keyword", RightCol: "movie_id"},
			{LeftTable: "cast_info", LeftCol: "person_id", RightTable: "name", RightCol: "id"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOrientation(t *testing.T) {
	s := chainSchema(t)
	if s.Root() != "A" {
		t.Errorf("Root = %q", s.Root())
	}
	if got := s.Tables(); len(got) != 3 || got[0] != "A" {
		t.Errorf("Tables = %v", got)
	}
	e, ok := s.Parent("B")
	if !ok || e.Parent != "A" || e.ParentCol != "x" || e.ChildCol != "x" {
		t.Errorf("Parent(B) = %+v, %v", e, ok)
	}
	e, ok = s.Parent("C")
	if !ok || e.Parent != "B" || e.ParentCol != "y" || e.ChildCol != "y" {
		t.Errorf("Parent(C) = %+v, %v", e, ok)
	}
	if _, ok := s.Parent("A"); ok {
		t.Error("root has a parent")
	}
	if got := s.Children("A"); len(got) != 1 || got[0] != "B" {
		t.Errorf("Children(A) = %v", got)
	}
}

func TestRerootOrientation(t *testing.T) {
	// Same chain rooted at C: edges flip direction.
	s, err := New(
		[]*table.Table{keyTable("A", "x"), keyTable("B", "x", "y"), keyTable("C", "y")},
		"C",
		[]Edge{
			{LeftTable: "A", LeftCol: "x", RightTable: "B", RightCol: "x"},
			{LeftTable: "B", LeftCol: "y", RightTable: "C", RightCol: "y"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := s.Parent("B")
	if e.Parent != "C" || e.ParentCol != "y" || e.ChildCol != "y" {
		t.Errorf("Parent(B) = %+v", e)
	}
	e, _ = s.Parent("A")
	if e.Parent != "B" || e.ParentCol != "x" || e.ChildCol != "x" {
		t.Errorf("Parent(A) = %+v", e)
	}
}

func TestJoinKeys(t *testing.T) {
	s := starSchema(t)
	if got := s.JoinKeys("title"); len(got) != 1 || got[0] != "id" {
		t.Errorf("JoinKeys(title) = %v (shared key must be deduplicated)", got)
	}
	got := s.JoinKeys("cast_info")
	if len(got) != 2 || got[0] != "movie_id" || got[1] != "person_id" {
		t.Errorf("JoinKeys(cast_info) = %v", got)
	}
	if got := s.JoinKeys("name"); len(got) != 1 || got[0] != "id" {
		t.Errorf("JoinKeys(name) = %v", got)
	}
}

func TestValidationErrors(t *testing.T) {
	a, b, c := keyTable("A", "x"), keyTable("B", "x", "y"), keyTable("C", "y")
	cases := []struct {
		name   string
		tables []*table.Table
		root   string
		edges  []Edge
		errSub string
	}{
		{"no tables", nil, "A", nil, "no tables"},
		{"bad root", []*table.Table{a}, "Z", nil, "root"},
		{"missing edge table", []*table.Table{a, b}, "A",
			[]Edge{{LeftTable: "A", LeftCol: "x", RightTable: "Z", RightCol: "x"}}, "unknown table"},
		{"missing edge column", []*table.Table{a, b}, "A",
			[]Edge{{LeftTable: "A", LeftCol: "nope", RightTable: "B", RightCol: "x"}}, "no join column"},
		{"self join", []*table.Table{a, b}, "A",
			[]Edge{{LeftTable: "A", LeftCol: "x", RightTable: "A", RightCol: "x"}}, "self-join"},
		{"wrong edge count", []*table.Table{a, b, c}, "A",
			[]Edge{{LeftTable: "A", LeftCol: "x", RightTable: "B", RightCol: "x"}}, "join tree needs"},
		{"disconnected", []*table.Table{a, b, c}, "A",
			[]Edge{
				{LeftTable: "A", LeftCol: "x", RightTable: "B", RightCol: "x"},
				{LeftTable: "A", LeftCol: "x", RightTable: "B", RightCol: "y"},
			}, "not connected"},
	}
	for _, tc := range cases {
		_, err := New(tc.tables, tc.root, tc.edges)
		if err == nil || !strings.Contains(err.Error(), tc.errSub) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.errSub)
		}
	}
}

func TestStringJoinKeyRejected(t *testing.T) {
	b := table.MustBuilder("S", []table.ColSpec{{Name: "k", Kind: value.KindStr}})
	b.MustAppend(value.Str("v"))
	strTbl := b.MustBuild()
	_, err := New(
		[]*table.Table{keyTable("A", "x"), strTbl},
		"A",
		[]Edge{{LeftTable: "A", LeftCol: "x", RightTable: "S", RightCol: "k"}},
	)
	if err == nil || !strings.Contains(err.Error(), "must be int") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateQuerySet(t *testing.T) {
	s := starSchema(t)
	good := [][]string{
		{"title"},
		{"title", "cast_info"},
		{"cast_info", "name"},
		{"title", "cast_info", "name", "movie_keyword"},
	}
	for _, q := range good {
		if err := s.ValidateQuerySet(q); err != nil {
			t.Errorf("ValidateQuerySet(%v) = %v", q, err)
		}
	}
	bad := [][]string{
		{},
		{"nope"},
		{"title", "title"},
		{"title", "name"},              // not adjacent
		{"movie_keyword", "cast_info"}, // connected only through title
		{"name", "movie_keyword"},      // two leaves
	}
	for _, q := range bad {
		if err := s.ValidateQuerySet(q); err == nil {
			t.Errorf("ValidateQuerySet(%v) accepted", q)
		}
	}
}

func TestSubtreeRoot(t *testing.T) {
	s := starSchema(t)
	cases := []struct {
		set  []string
		want string
	}{
		{[]string{"title", "cast_info"}, "title"},
		{[]string{"cast_info", "name"}, "cast_info"},
		{[]string{"name"}, "name"},
		{[]string{"title", "cast_info", "movie_keyword", "name"}, "title"},
	}
	for _, tc := range cases {
		if got := s.SubtreeRoot(tc.set); got != tc.want {
			t.Errorf("SubtreeRoot(%v) = %q, want %q", tc.set, got, tc.want)
		}
	}
}

func TestFanoutKey(t *testing.T) {
	s := starSchema(t)
	q := map[string]bool{"title": true}
	// cast_info omitted: edge incident to it toward title carries movie_id.
	if got, err := s.FanoutKey("cast_info", q); err != nil || got != "movie_id" {
		t.Errorf("FanoutKey(cast_info) = %q, %v", got, err)
	}
	// name omitted: path name→cast_info→title; edge incident to name uses name.id.
	if got, err := s.FanoutKey("name", q); err != nil || got != "id" {
		t.Errorf("FanoutKey(name) = %q, %v", got, err)
	}
	// Query {cast_info, name}: omitted title attaches via title.id.
	q2 := map[string]bool{"cast_info": true, "name": true}
	if got, err := s.FanoutKey("title", q2); err != nil || got != "id" {
		t.Errorf("FanoutKey(title) = %q, %v", got, err)
	}
	// movie_keyword omitted from q2: path mk→title→cast_info; incident edge key mk.movie_id.
	if got, err := s.FanoutKey("movie_keyword", q2); err != nil || got != "movie_id" {
		t.Errorf("FanoutKey(movie_keyword) = %q, %v", got, err)
	}
	if _, err := s.FanoutKey("title", map[string]bool{"title": true}); err == nil {
		t.Error("FanoutKey on a queried table did not fail")
	}
}

// TestFanoutKeyPaperExample reproduces §6's worked example: schema A-x-B-y-C,
// query {A}; omitted B downsizes via B.x, omitted C via C.y.
func TestFanoutKeyPaperExample(t *testing.T) {
	s := chainSchema(t)
	q := map[string]bool{"A": true}
	if got, _ := s.FanoutKey("B", q); got != "x" {
		t.Errorf("FanoutKey(B) = %q, want x", got)
	}
	if got, _ := s.FanoutKey("C", q); got != "y" {
		t.Errorf("FanoutKey(C) = %q, want y", got)
	}
}

func TestSubSchema(t *testing.T) {
	s := starSchema(t)
	sub, err := s.SubSchema([]string{"name", "cast_info"})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Root() != "cast_info" {
		t.Errorf("sub root = %q", sub.Root())
	}
	if sub.NumTables() != 2 {
		t.Errorf("sub tables = %v", sub.Tables())
	}
	e, ok := sub.Parent("name")
	if !ok || e.Parent != "cast_info" || e.ParentCol != "person_id" {
		t.Errorf("sub Parent(name) = %+v, %v", e, ok)
	}
	if _, err := s.SubSchema([]string{"name", "movie_keyword"}); err == nil {
		t.Error("disconnected SubSchema accepted")
	}
}
