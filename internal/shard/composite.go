package shard

import (
	"fmt"

	"neurocard/internal/core"
	"neurocard/internal/query"
)

// Composite serves a logical model from in-process shard estimators: the
// planner routes each query, every sub-query runs on its shard's
// core.Estimator, and the products are combined with the plan's
// cross-shard factor. It is the harness/evaluation counterpart of the
// serving daemon's registry-backed routing and implements the indexed
// estimation interfaces, so parallel workload evaluation stays
// deterministic.
type Composite struct {
	pl   *Planner
	ests map[string]*core.Estimator
}

// NewComposite binds a manifest to one estimator per shard name.
func NewComposite(man *Manifest, ests map[string]*core.Estimator) (*Composite, error) {
	pl, err := NewPlanner(man)
	if err != nil {
		return nil, err
	}
	for _, s := range man.Shards {
		if ests[s.Name] == nil {
			return nil, fmt.Errorf("shard: no estimator for shard %q", s.Name)
		}
	}
	return &Composite{pl: pl, ests: ests}, nil
}

// Planner exposes the composite's router.
func (c *Composite) Planner() *Planner { return c.pl }

// Estimate answers one query with fresh randomness per shard model.
func (c *Composite) Estimate(q query.Query) (float64, error) {
	return c.estimate(q, func(est *core.Estimator, sub query.Query) (float64, error) {
		return est.Estimate(sub)
	})
}

// EstimateIndexed answers query idx of a workload deterministically: every
// shard derives its randomness from (its configured seed, idx), matching
// core.Estimator's convention.
func (c *Composite) EstimateIndexed(q query.Query, idx int64) (float64, error) {
	return c.estimate(q, func(est *core.Estimator, sub query.Query) (float64, error) {
		return est.EstimateIndexed(sub, idx)
	})
}

// EstimateIndexedSerial is EstimateIndexed on inline kernels, for callers
// that already saturate the CPU with concurrent queries.
func (c *Composite) EstimateIndexedSerial(q query.Query, idx int64) (float64, error) {
	return c.estimate(q, func(est *core.Estimator, sub query.Query) (float64, error) {
		return est.EstimateIndexedSerial(sub, idx)
	})
}

func (c *Composite) estimate(q query.Query, one func(*core.Estimator, query.Query) (float64, error)) (float64, error) {
	pl, err := c.pl.Plan(q)
	if err != nil {
		return 0, err
	}
	est := pl.Factor
	for _, sub := range pl.Subs {
		v, err := one(c.ests[sub.Shard], sub.Query)
		if err != nil {
			return 0, fmt.Errorf("shard %s: %w", sub.Shard, err)
		}
		est *= v
	}
	return est, nil
}
