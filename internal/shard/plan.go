package shard

import (
	"fmt"
	"math"
	"sort"

	"neurocard/internal/query"
)

// SubQuery is the slice of a query one shard model answers: the query's
// tables and filters restricted to one connected component within that
// shard.
type SubQuery struct {
	Shard string
	Query query.Query
}

// Crossing is one schema edge crossed between two sub-queries, with the
// combiner factor it contributes. Independent marks edges whose offline
// join statistics were missing, where the factor degraded to the
// key-independence approximation.
type Crossing struct {
	Edge        EdgeStat
	Factor      float64
	Independent bool
}

// Plan is the routing decision for one query: the per-shard sub-queries
// whose estimates are multiplied together, and the cross-shard factor
// (the product of every crossing's factor) that stitches them into a
// full-join estimate.
type Plan struct {
	Logical   string
	Subs      []SubQuery
	Crossings []Crossing
	Factor    float64
}

// edgeKey identifies an edge regardless of endpoint order.
type edgeKey struct {
	t1, c1, t2, c2 string
}

func newEdgeKey(t1, c1, t2, c2 string) edgeKey {
	if t1 > t2 {
		t1, c1, t2, c2 = t2, c2, t1, c1
	}
	return edgeKey{t1, c1, t2, c2}
}

// Planner routes queries over one manifest. It is immutable after
// construction and safe for concurrent use.
type Planner struct {
	man    *Manifest
	owners map[string][]int // table -> shard indexes covering it, ascending
	adj    map[string][]int // table -> incident edge indexes
}

// NewPlanner validates the manifest and builds the routing tables.
func NewPlanner(man *Manifest) (*Planner, error) {
	if err := man.Validate(); err != nil {
		return nil, err
	}
	p := &Planner{
		man:    man,
		owners: make(map[string][]int),
		adj:    make(map[string][]int),
	}
	for i, s := range man.Shards {
		for _, t := range s.Tables {
			p.owners[t] = append(p.owners[t], i)
		}
	}
	for i, e := range man.Edges {
		p.adj[e.LeftTable] = append(p.adj[e.LeftTable], i)
		p.adj[e.RightTable] = append(p.adj[e.RightTable], i)
	}
	return p, nil
}

// Manifest returns the planner's manifest.
func (p *Planner) Manifest() *Manifest { return p.man }

// Plan routes a query: validates it against the manifest's schema, assigns
// its tables to the smallest covering set of shards, splits the query into
// per-shard connected sub-queries, and prices every crossed edge. Queries
// fully inside one shard plan to a single sub-query with factor 1.
func (p *Planner) Plan(q query.Query) (*Plan, error) {
	if len(q.Tables) == 0 {
		return nil, fmt.Errorf("shard: query joins no tables")
	}
	inQuery := make(map[string]bool, len(q.Tables))
	for _, t := range q.Tables {
		if _, ok := p.owners[t]; !ok {
			return nil, fmt.Errorf("shard: logical model %q covers no table %q", p.man.Logical, t)
		}
		if inQuery[t] {
			return nil, fmt.Errorf("shard: query lists table %q twice", t)
		}
		inQuery[t] = true
	}
	for _, f := range q.Filters {
		if !inQuery[f.Table] {
			return nil, fmt.Errorf("shard: filter %s references a table outside the join", f)
		}
	}
	if err := p.checkConnected(q.Tables, inQuery); err != nil {
		return nil, err
	}

	assign := p.assign(q.Tables)
	subs := p.split(q, assign)

	// Index each table's sub-query, then price every query edge whose
	// endpoints landed in different sub-queries. Contracting the
	// sub-queries of a connected tree query yields a tree, so exactly
	// len(subs)-1 edges cross.
	subOf := make(map[string]int, len(q.Tables))
	for i, sub := range subs {
		for _, t := range sub.Query.Tables {
			subOf[t] = i
		}
	}
	pl := &Plan{Logical: p.man.Logical, Subs: subs, Factor: 1}
	for _, e := range p.man.Edges {
		if !inQuery[e.LeftTable] || !inQuery[e.RightTable] {
			continue
		}
		if subOf[e.LeftTable] == subOf[e.RightTable] {
			continue
		}
		f, independent := crossFactor(e)
		pl.Crossings = append(pl.Crossings, Crossing{Edge: e, Factor: f, Independent: independent})
		pl.Factor *= f
	}
	if len(pl.Crossings) != len(subs)-1 {
		return nil, fmt.Errorf("shard: internal: %d sub-queries joined by %d crossings (want %d)",
			len(subs), len(pl.Crossings), len(subs)-1)
	}
	return pl, nil
}

// checkConnected verifies the query tables form a connected subgraph of the
// manifest's edge set (the same contract schema.ValidateQuerySet enforces
// for monolithic models).
func (p *Planner) checkConnected(tables []string, inQuery map[string]bool) error {
	reached := map[string]bool{tables[0]: true}
	frontier := []string{tables[0]}
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, ei := range p.adj[cur] {
			e := p.man.Edges[ei]
			for _, nb := range [2]string{e.LeftTable, e.RightTable} {
				if inQuery[nb] && !reached[nb] {
					reached[nb] = true
					frontier = append(frontier, nb)
				}
			}
		}
	}
	if len(reached) != len(tables) {
		return fmt.Errorf("shard: query tables %v are not a connected subtree", tables)
	}
	return nil
}

// assign maps each query table to one owning shard index, minimizing the
// number of shards the query touches. Single-owner tables (a disjoint
// partition, the common case) are direct and force their shard into use;
// multi-owner tables ride along with an already-used shard when one covers
// them, and the remainder falls to a greedy minimum set cover — repeatedly
// take the shard covering the most unassigned tables, ties broken by shard
// name.
func (p *Planner) assign(tables []string) map[string]int {
	assign := make(map[string]int, len(tables))
	used := make(map[int]bool)
	var multi []string
	for _, t := range tables {
		if owners := p.owners[t]; len(owners) == 1 {
			assign[t] = owners[0]
			used[owners[0]] = true
		} else {
			multi = append(multi, t)
		}
	}
	rest := multi[:0]
	for _, t := range multi {
		placed := false
		for _, o := range p.owners[t] {
			if used[o] {
				assign[t] = o
				placed = true
				break
			}
		}
		if !placed {
			rest = append(rest, t)
		}
	}
	multi = rest
	for len(multi) > 0 {
		best, bestGain := -1, 0
		for si, s := range p.man.Shards {
			gain := 0
			inShard := make(map[string]bool, len(s.Tables))
			for _, t := range s.Tables {
				inShard[t] = true
			}
			for _, t := range multi {
				if inShard[t] {
					gain++
				}
			}
			if gain > bestGain || (gain == bestGain && gain > 0 && s.Name < p.man.Shards[best].Name) {
				best, bestGain = si, gain
			}
		}
		inBest := make(map[string]bool, len(p.man.Shards[best].Tables))
		for _, t := range p.man.Shards[best].Tables {
			inBest[t] = true
		}
		rest := multi[:0]
		for _, t := range multi {
			if inBest[t] {
				assign[t] = best
			} else {
				rest = append(rest, t)
			}
		}
		multi = rest
	}
	return assign
}

// split groups the query's tables by assigned shard and breaks each group
// into connected components within that shard's internal edges; every
// component becomes one sub-query carrying the query's filters on its
// tables. Table order inside a sub-query follows the original query, so
// plans are deterministic for a fixed query.
func (p *Planner) split(q query.Query, assign map[string]int) []SubQuery {
	// Union-find over the query tables: two tables merge when a manifest
	// edge connects them, both sit in the same assigned shard, and the
	// edge is internal to that shard's table set.
	parent := make(map[string]string, len(q.Tables))
	for _, t := range q.Tables {
		parent[t] = t
	}
	var find func(string) string
	find = func(t string) string {
		if parent[t] != t {
			parent[t] = find(parent[t])
		}
		return parent[t]
	}
	inShard := make([]map[string]bool, len(p.man.Shards))
	for i, s := range p.man.Shards {
		inShard[i] = make(map[string]bool, len(s.Tables))
		for _, t := range s.Tables {
			inShard[i][t] = true
		}
	}
	for _, e := range p.man.Edges {
		l, r := e.LeftTable, e.RightTable
		li, lok := assign[l]
		ri, rok := assign[r]
		if !lok || !rok || li != ri {
			continue
		}
		if inShard[li][l] && inShard[li][r] {
			parent[find(l)] = find(r)
		}
	}
	comps := make(map[string]*SubQuery)
	var order []string
	for _, t := range q.Tables {
		root := find(t)
		sub, ok := comps[root]
		if !ok {
			sub = &SubQuery{Shard: p.man.Shards[assign[t]].Name}
			comps[root] = sub
			order = append(order, root)
		}
		sub.Query.Tables = append(sub.Query.Tables, t)
		sub.Query.Filters = append(sub.Query.Filters, q.FiltersOn(t)...)
	}
	// Deterministic sub-query order: by first table's position in the
	// query, which `order` already records.
	subs := make([]SubQuery, 0, len(order))
	for _, root := range order {
		subs = append(subs, *comps[root])
	}
	sort.SliceStable(subs, func(i, j int) bool { return subs[i].Shard < subs[j].Shard })
	return subs
}

// crossFactor prices one crossed edge: the Glue-style connectivity ratio
// J/(N_L·N_R) when the offline join statistics exist, else the
// key-independence fallback 1/max(distinct), else 1/max(rows), else 1.
func crossFactor(e EdgeStat) (factor float64, independent bool) {
	if e.JoinRows > 0 && e.LeftRows > 0 && e.RightRows > 0 {
		return e.JoinRows / (e.LeftRows * e.RightRows), false
	}
	if d := math.Max(e.LeftDistinct, e.RightDistinct); d > 0 {
		return 1 / d, true
	}
	if r := math.Max(e.LeftRows, e.RightRows); r > 0 {
		return 1 / r, true
	}
	return 1, true
}
